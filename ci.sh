#!/bin/sh
# ci.sh — the repo's test tiers.
#
#   tier 1 (default):  go vet + build + full test suite (shuffled)
#                      (+ staticcheck when installed, + the parallel-
#                      routing and parallel-placement determinism
#                      batteries under -race, + the golden-corpus
#                      check, + a coverage floor on the placement
#                      packages, + 5s fuzz smoke of the Appendix-A
#                      netlist parser, + the observability allocation
#                      guard, + the store-tier -race battery (LRU /
#                      disk / singleflight / fleet), + the fleet chaos
#                      battery under -race (peers blackholed / killed /
#                      restored mid-run), + the async job battery under
#                      -race (submit/stream/cancel lifecycle, SSE
#                      ordering, jobs chaos gate), + the API-surface
#                      golden check pinning the HTTP contract, + the
#                      pipeline latency benchmark emitting
#                      BENCH_pipeline.json, + the service-tier
#                      benchmark emitting BENCH_service.json with
#                      restart-survival hit-rate, re-shard convergence
#                      and async-job latency records)
#   tier 2 (-race):    tier 1 with the race detector (slower; exercises
#                      the netartd worker pool / cache / stats paths and
#                      the chaos suite's injected panics)
#
# Usage: ./ci.sh [-race]
set -eu
cd "$(dirname "$0")"

RACE=""
if [ "${1:-}" = "-race" ]; then
	RACE="-race"
fi

echo "== go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck ./..."
	staticcheck ./...
else
	echo "== staticcheck not installed; skipping"
fi

echo "== go build ./..."
go build ./...

# -shuffle=on randomizes test (and subtest-source) execution order, so
# accidental inter-test state dependencies fail loudly instead of
# riding on declaration order. The seed is printed on failure for
# replay with -shuffle=SEED.
echo "== go test ${RACE} -shuffle=on ./..."
go test ${RACE} -shuffle=on ./...

# Determinism batteries under the race detector: the parallel routing
# AND parallel placement schedulers must be data-race-free AND
# byte-identical to their sequential twins (segments, plane cells,
# stats, placement fingerprints, ASCII, SVG). Tier 2's full -race pass
# above already covers them; tier 1 runs just the batteries with
# -race -short so every default CI run still proves the contract.
if [ -z "${RACE}" ]; then
	echo "== determinism batteries: go test -race -short -run 'Parallel|Rendered' ./internal/route ./internal/gen ./internal/place"
	go test -race -short -run 'Parallel|Rendered' ./internal/route ./internal/gen ./internal/place
fi

# Golden corpus: the pinned ASCII/SVG artwork of every built-in
# workload must match byte for byte. After an intentional pipeline
# change, regenerate with `go test ./internal/gen -run TestGoldenCorpus
# -update` and commit the diff. (The full `go test ./...` above runs
# this too; the explicit step makes a corpus drift fail with its own
# headline instead of hiding in the package list.)
echo "== golden corpus: go test -run TestGoldenCorpus ./internal/gen"
go test -run TestGoldenCorpus ./internal/gen

# Coverage floor on the placement stack: the packages this repo's
# property/determinism batteries guard must stay thoroughly executed.
# The floor is deliberately below current coverage (see git log) — it
# is a ratchet against rot, not a target.
echo "== coverage floor (>= 85%): ./internal/place ./internal/boxes ./internal/partition"
COV_OUT="$(go test -cover ./internal/place ./internal/boxes ./internal/partition)"
echo "$COV_OUT"
echo "$COV_OUT" | awk '
	/coverage:/ {
		for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i+1)
		sub(/%.*/, "", pct)
		if (pct + 0 < 85) { print "ci.sh: FAIL — " $2 " coverage " pct "% below the 85% floor"; bad = 1 }
	}
	END { exit bad }
' || exit 1

# Fuzz smoke: a short bounded run of the netlist parser fuzz target.
# Regressions show up as crashers within seconds; the long exploratory
# runs stay a manual job (go test -fuzz=FuzzParseDesign ./internal/netlist).
echo "== go test -fuzz=FuzzParseDesign -fuzztime=5s ./internal/netlist"
go test -run='^$' -fuzz=FuzzParseDesign -fuzztime=5s ./internal/netlist

# Allocation guard: the disabled observer / metric paths must stay
# allocation-free, or every un-traced request pays for observability it
# didn't ask for. Every Benchmark*Disabled must report 0 allocs/op.
echo "== allocation guard: go test -bench='Disabled$' -benchmem ./internal/obs"
BENCH_OUT="$(go test -run='^$' -bench='Disabled$' -benchmem ./internal/obs)"
echo "$BENCH_OUT"
if ! echo "$BENCH_OUT" | grep -q '^Benchmark.*Disabled'; then
	echo "ci.sh: FAIL — no Disabled benchmarks ran" >&2
	exit 1
fi
if echo "$BENCH_OUT" | grep '^Benchmark.*Disabled' | grep -qv ' 0 allocs/op'; then
	echo "ci.sh: FAIL — disabled observability path allocates" >&2
	exit 1
fi

# Store tier: the pluggable result store (mem/disk/tiered LRU, crash
# consistency, GC), the singleflight group and the consistent-hash
# fleet layer must be data-race-free. Tier 2's full -race pass above
# already covers them; tier 1 runs the store packages plus the
# service-level restart-survival / stampede / in-process-fleet tests
# under -race explicitly so a concurrency regression fails with its
# own headline.
if [ -z "${RACE}" ]; then
	echo "== store tier: go test -race ./internal/store/..."
	go test -race ./internal/store/...
	echo "== store tier: go test -race -run 'TestRestartSurvival|TestSingleflightCollapse|TestFleet' ./internal/service"
	go test -race -run 'TestRestartSurvival|TestSingleflightCollapse|TestFleet' ./internal/service
fi

# Fleet chaos battery: three replicas under mixed traffic while peers
# are blackholed, killed and restored through the network-layer fault
# plan. Zero non-4xx errors, artwork byte-identical to a fleet-less
# reference, deterministic re-sharding, hedge + breaker metrics
# populated — all under the race detector, bounded by -timeout.
echo "== fleet chaos battery: go test -race -timeout 120s -run 'TestFleetChaosBattery|TestSingleflightCollapsesProxiedRequest|TestSingleflightFollowersSurviveOpenBreaker' ./internal/service"
go test -race -timeout 120s -run 'TestFleetChaosBattery|TestSingleflightCollapsesProxiedRequest|TestSingleflightFollowersSurviveOpenBreaker' ./internal/service

# Async job battery: the /v2/jobs lifecycle (cancel while queued,
# cancel mid-route, TTL eviction, SSE disconnect, restart from the
# disk store), the job-vs-sync byte-identity and SSE commit-order
# checks, and the jobs chaos gate (pipeline faults must surface as
# failed job states, never as 5xx on the async HTTP surface) — all
# under the race detector. Tier 2's full -race pass above already
# covers these; the explicit tier-1 step gives regressions their own
# headline.
if [ -z "${RACE}" ]; then
	echo "== async job battery: go test -race ./internal/jobs + 'TestJob|TestChaosJobs' ./internal/service"
	go test -race ./internal/jobs
	go test -race -timeout 300s -run 'TestJob|TestChaosJobs' ./internal/service
fi

# API-surface tripwire: the HTTP route table and every response shape
# are pinned to internal/service/testdata/api_surface.golden. An
# intentional contract change regenerates the fixture with
# `go test ./internal/service -run TestAPISurface -update` — anything
# else failing here is an accidental API break.
echo "== API surface: go test -run TestAPISurface ./internal/service"
go test -run TestAPISurface ./internal/service

# Pipeline latency record: cold (full pipeline) and warm (cache hit)
# generate latencies per built-in workload, as machine-readable JSON.
# The -gate flag compares the fresh numbers against the committed
# record before overwriting it: a cold route stage more than 20% over
# the committed route_budget_ms (in practice: the life workload; the
# sub-millisecond workloads are noise-exempt) fails the build, as does
# parallel_speedup < 1.0 on hosts with 4+ CPUs.
echo "== go run ./cmd/benchpipe -gate BENCH_pipeline.json -out BENCH_pipeline.json"
go run ./cmd/benchpipe -gate BENCH_pipeline.json -out BENCH_pipeline.json

# Service tier record: store cold/warm tails, restart-survival hit
# rate (must be 1.0 — checked below), singleflight stampede outcome
# and the 3-replica fleet numbers, as machine-readable JSON.
echo "== go run ./cmd/benchpipe -service -workloads fig61,quickstart -out BENCH_service.json"
go run ./cmd/benchpipe -service -workloads fig61,quickstart -out BENCH_service.json
if ! grep -q '"hit_rate": 1' BENCH_service.json; then
	echo "ci.sh: FAIL — restart-survival hit rate below 1.0 in BENCH_service.json" >&2
	exit 1
fi
# Re-shard convergence gate: after a replica is killed, its keys must
# remap onto the live set within 3 probe intervals and serve warm.
if ! grep -q '"reshard_converged": true' BENCH_service.json; then
	echo "ci.sh: FAIL — fleet did not re-shard within the detection budget in BENCH_service.json" >&2
	exit 1
fi
if ! grep -q '"reshard_served_warm": true' BENCH_service.json; then
	echo "ci.sh: FAIL — remapped key not served warm within the detection budget in BENCH_service.json" >&2
	exit 1
fi

echo "ci.sh: all green"
