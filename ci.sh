#!/bin/sh
# ci.sh — the repo's test tiers.
#
#   tier 1 (default):  go vet + build + full test suite
#                      (+ staticcheck when installed, + the parallel-
#                      routing determinism battery under -race, + 5s
#                      fuzz smoke of the Appendix-A netlist parser,
#                      + the observability allocation guard, + the
#                      pipeline latency benchmark emitting
#                      BENCH_pipeline.json)
#   tier 2 (-race):    tier 1 with the race detector (slower; exercises
#                      the netartd worker pool / cache / stats paths and
#                      the chaos suite's injected panics)
#
# Usage: ./ci.sh [-race]
set -eu
cd "$(dirname "$0")"

RACE=""
if [ "${1:-}" = "-race" ]; then
	RACE="-race"
fi

echo "== go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck ./..."
	staticcheck ./...
else
	echo "== staticcheck not installed; skipping"
fi

echo "== go build ./..."
go build ./...

echo "== go test ${RACE} ./..."
go test ${RACE} ./...

# Determinism battery under the race detector: the parallel routing
# scheduler must be data-race-free AND byte-identical to the sequential
# router (segments, plane cells, stats, ASCII, SVG). Tier 2's full
# -race pass above already covers it; tier 1 runs just the battery with
# -race -short so every default CI run still proves the contract.
if [ -z "${RACE}" ]; then
	echo "== determinism battery: go test -race -short -run 'Parallel|Rendered' ./internal/route ./internal/gen"
	go test -race -short -run 'Parallel|Rendered' ./internal/route ./internal/gen
fi

# Fuzz smoke: a short bounded run of the netlist parser fuzz target.
# Regressions show up as crashers within seconds; the long exploratory
# runs stay a manual job (go test -fuzz=FuzzParseDesign ./internal/netlist).
echo "== go test -fuzz=FuzzParseDesign -fuzztime=5s ./internal/netlist"
go test -run='^$' -fuzz=FuzzParseDesign -fuzztime=5s ./internal/netlist

# Allocation guard: the disabled observer / metric paths must stay
# allocation-free, or every un-traced request pays for observability it
# didn't ask for. Every Benchmark*Disabled must report 0 allocs/op.
echo "== allocation guard: go test -bench='Disabled$' -benchmem ./internal/obs"
BENCH_OUT="$(go test -run='^$' -bench='Disabled$' -benchmem ./internal/obs)"
echo "$BENCH_OUT"
if ! echo "$BENCH_OUT" | grep -q '^Benchmark.*Disabled'; then
	echo "ci.sh: FAIL — no Disabled benchmarks ran" >&2
	exit 1
fi
if echo "$BENCH_OUT" | grep '^Benchmark.*Disabled' | grep -qv ' 0 allocs/op'; then
	echo "ci.sh: FAIL — disabled observability path allocates" >&2
	exit 1
fi

# Pipeline latency record: cold (full pipeline) and warm (cache hit)
# generate latencies per built-in workload, as machine-readable JSON.
echo "== go run ./cmd/benchpipe -out BENCH_pipeline.json"
go run ./cmd/benchpipe -out BENCH_pipeline.json

echo "ci.sh: all green"
