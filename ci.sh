#!/bin/sh
# ci.sh — the repo's test tiers.
#
#   tier 1 (default):  go vet + build + full test suite
#                      (+ staticcheck when installed, + 5s fuzz smoke
#                      of the Appendix-A netlist parser)
#   tier 2 (-race):    tier 1 with the race detector (slower; exercises
#                      the netartd worker pool / cache / stats paths and
#                      the chaos suite's injected panics)
#
# Usage: ./ci.sh [-race]
set -eu
cd "$(dirname "$0")"

RACE=""
if [ "${1:-}" = "-race" ]; then
	RACE="-race"
fi

echo "== go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck ./..."
	staticcheck ./...
else
	echo "== staticcheck not installed; skipping"
fi

echo "== go build ./..."
go build ./...

echo "== go test ${RACE} ./..."
go test ${RACE} ./...

# Fuzz smoke: a short bounded run of the netlist parser fuzz target.
# Regressions show up as crashers within seconds; the long exploratory
# runs stay a manual job (go test -fuzz=FuzzParseDesign ./internal/netlist).
echo "== go test -fuzz=FuzzParseDesign -fuzztime=5s ./internal/netlist"
go test -run='^$' -fuzz=FuzzParseDesign -fuzztime=5s ./internal/netlist

echo "ci.sh: all green"
