#!/bin/sh
# ci.sh — the repo's test tiers.
#
#   tier 1 (default):  go vet + build + full test suite
#   tier 2 (-race):    tier 1 with the race detector (slower; exercises
#                      the netartd worker pool / cache / stats paths)
#
# Usage: ./ci.sh [-race]
set -eu
cd "$(dirname "$0")"

RACE=""
if [ "${1:-}" = "-race" ]; then
	RACE="-race"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ${RACE} ./..."
go test ${RACE} ./...

echo "ci.sh: all green"
