module netart

go 1.22
