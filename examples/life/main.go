// Life reproduces figures 6.6 and 6.7: the 27-module / 222-net game of
// LIFE network routed over a manual placement, then generated fully
// automatically. The interesting observation is the paper's own: "the
// placement is the crucial part of the generator. If the placement is
// bad then the routing becomes slower" — and the automatic diagram is
// visibly denser and slower to route than the hand-placed one.
//
// Run with: go run ./examples/life [-svgdir DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"netart/internal/gen"
	"netart/internal/schematic"
)

func main() {
	svgdir := flag.String("svgdir", "", "write SVG renderings into DIR")
	flag.Parse()

	all := gen.Experiments()
	fmt.Println("fig   placement      route-time  wire   bends  cross  unrouted")
	var handTime, autoTime time.Duration
	for _, e := range []gen.Experiment{all[5], all[6]} { // 6.6 and 6.7
		row, dg, err := gen.RunExperiment(e)
		if err != nil {
			log.Fatal(err)
		}
		if err := dg.Verify(); err != nil {
			log.Fatal(err)
		}
		kind := "automatic"
		if row.HandOnly {
			kind = "by hand"
			handTime = row.RouteTime
		} else {
			autoTime = row.RouteTime
		}
		m := row.Metrics
		fmt.Printf("%-4s  %-12s %10.3fs  %5d  %5d  %5d  %8d\n",
			row.Figure, kind, row.RouteTime.Seconds(), m.WireLength, m.Bends, m.Crossings, row.Unrouted)
		if *svgdir != "" {
			if err := writeSVG(dg, filepath.Join(*svgdir, "life_"+row.Figure+".svg")); err != nil {
				log.Fatal(err)
			}
		}
	}
	if handTime > 0 {
		fmt.Printf("\nrouting the automatic placement took %.1fx the hand placement\n",
			autoTime.Seconds()/handTime.Seconds())
		fmt.Println("(the paper measured 11:36 vs 1:32, a factor of ~7.6)")
	}
}

func writeSVG(dg *schematic.Diagram, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dg.WriteSVG(f)
}
