// Quickstart builds a small network with the library API, runs the
// automatic schematic diagram generator (placement + line-expansion
// routing) and prints the resulting diagram as ASCII art together with
// its readability metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"netart/internal/gen"
	"netart/internal/library"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
)

func main() {
	// A tiny synchronous pipeline: two registers around an adder, a
	// comparator watching the result.
	lib := library.Builtin()
	d := netlist.NewDesign("quickstart")

	add := func(inst, tpl string) {
		spec, err := lib.Template(tpl)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := d.AddModule(inst, tpl, spec.W, spec.H, spec.Terms); err != nil {
			log.Fatal(err)
		}
	}
	add("in_reg", "REG")
	add("adder", "ADD")
	add("out_reg", "REG")
	add("watch", "CMP")

	for _, st := range []struct {
		name string
		typ  netlist.TermType
	}{{"DIN", netlist.In}, {"CLK", netlist.In}, {"DOUT", netlist.Out}, {"ALARM", netlist.Out}} {
		if _, err := d.AddSysTerm(st.name, st.typ); err != nil {
			log.Fatal(err)
		}
	}

	connect := func(net string, pins ...[2]string) {
		for _, p := range pins {
			var err error
			if p[0] == "root" {
				err = d.ConnectSys(net, p[1])
			} else {
				err = d.Connect(net, p[0], p[1])
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	connect("din", [2]string{"root", "DIN"}, [2]string{"in_reg", "D"})
	connect("a", [2]string{"in_reg", "Q"}, [2]string{"adder", "A"}, [2]string{"adder", "B"})
	connect("sum", [2]string{"adder", "S"}, [2]string{"out_reg", "D"}, [2]string{"watch", "A"})
	connect("dout", [2]string{"out_reg", "Q"}, [2]string{"root", "DOUT"})
	connect("alarm", [2]string{"watch", "GT"}, [2]string{"root", "ALARM"})
	connect("clk", [2]string{"root", "CLK"}, [2]string{"in_reg", "CLK"}, [2]string{"out_reg", "CLK"})

	// Generate: partition → boxes → place → route, §4/§5 of the paper.
	rep, err := gen.Run(context.Background(), d, gen.Options{
		Place: place.Options{PartSize: 4, BoxSize: 4},
		Route: route.Options{Claimpoints: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	dg := rep.Diagram
	if err := dg.Verify(); err != nil {
		log.Fatal("generated diagram failed verification: ", err)
	}

	fmt.Println(dg.ASCII())
	m := dg.Metrics()
	fmt.Println(dg.Summary())
	fmt.Printf("signal flow left-to-right: %.0f%%\n", m.FlowRight*100)
	fmt.Printf("wire length %d tracks, %d bends, %d crossings, %d branch nodes\n",
		m.WireLength, m.Bends, m.Crossings, m.Branches)
}
