// Prerouted demonstrates the §5.7 router extensions: a net drawn by
// hand is preserved exactly while the router completes the rest, and
// the claimpoint mechanism rescues nets whose terminals would otherwise
// be walled in by earlier wiring.
//
// Run with: go run ./examples/prerouted
package main

import (
	"fmt"
	"log"

	"netart/internal/gen"
	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/schematic"
	"netart/internal/workload"
)

func main() {
	// Part 1: a hand-drawn wire survives automatic routing.
	d := workload.Fig61()
	pr, err := place.Place(d, place.Options{PartSize: 6, BoxSize: 6})
	if err != nil {
		log.Fatal(err)
	}
	// Draw net n3 (m2.Y -> m3.A) by hand: the exact straight connection
	// the router would find, but now it is ours.
	n3 := d.Net("n3")
	a := pr.Mods[d.Module("m2")].TermPos(d.Module("m2").Term("Y"))
	b := pr.Mods[d.Module("m3")].TermPos(d.Module("m3").Term("A"))
	hand := []route.Segment{{A: a, B: geom.Pt(b.X, a.Y)}, {A: geom.Pt(b.X, a.Y), B: b}}

	rr, err := route.Route(pr, route.Options{
		Claimpoints: true,
		Prerouted:   map[*netlist.Net][]route.Segment{n3: hand},
	})
	if err != nil {
		log.Fatal(err)
	}
	dg := schematic.FromRouting(rr)
	if err := dg.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("with a hand-drawn n3 preserved:")
	fmt.Println(dg.Summary())
	fmt.Printf("n3 geometry: %v (as drawn)\n\n", rr.Net(n3).Segments)

	// Part 2: claimpoints ablation on the LIFE network (§5.7 reports
	// "a decrease of about 75% in the number of unroutable nets").
	fmt.Println("claimpoint ablation on the LIFE network (hand placement):")
	for _, cfg := range []struct {
		label  string
		claims bool
		retry  bool
	}{
		{"no claimpoints, no retry", false, false},
		{"no claimpoints, retry   ", false, true},
		{"claimpoints + retry     ", true, true},
	} {
		e := gen.Experiments()[5] // figure 6.6
		e.Options.Route = route.Options{Claimpoints: cfg.claims, NoRetry: !cfg.retry}
		row, _, err := gen.RunExperiment(e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %d of %d nets unroutable\n", cfg.label, row.Unrouted, row.Nets)
	}
}
