// Datapath reproduces the parameter sweep of figures 6.2–6.5: the same
// 16-module / 24-net controller + datapath network generated with four
// different placement settings, showing how the partition size (-p) and
// box size (-b) shape the diagram — clustering only, functional groups,
// strings of modules, and a manual tweak.
//
// Run with: go run ./examples/datapath [-svgdir DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netart/internal/gen"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/schematic"
	"netart/internal/workload"
)

func main() {
	svgdir := flag.String("svgdir", "", "write one SVG per configuration into DIR")
	flag.Parse()

	configs := []struct {
		fig  string
		p, b int
		hand bool
	}{
		{"6.2", 1, 1, false},
		{"6.3", 5, 1, false},
		{"6.4", 7, 5, false},
		{"6.5", 1, 1, true},
	}

	fmt.Println("fig   p  b  partitions  area  wire  bends  cross  flow  unrouted")
	for _, cfg := range configs {
		d := workload.Datapath16()
		opts := gen.Options{
			Place: place.Options{PartSize: cfg.p, BoxSize: cfg.b},
			Route: route.Options{Claimpoints: true},
		}
		if cfg.hand {
			opts.Place.Fixed = map[*netlist.Module]place.Fixed{}
			for name, hp := range workload.Datapath16HandTweak() {
				opts.Place.Fixed[d.Module(name)] = place.Fixed{Pos: hp.Pos, Orient: hp.Orient}
			}
		}
		rep, err := gen.Run(context.Background(), d, opts)
		if err != nil {
			log.Fatal(err)
		}
		dg := rep.Diagram
		if err := dg.Verify(); err != nil {
			log.Fatal(err)
		}
		m := dg.Metrics()
		fmt.Printf("%-4s %2d %2d  %10d %5d %5d  %5d  %5d  %.2f  %8d\n",
			cfg.fig, cfg.p, cfg.b, len(dg.Placement.Parts),
			m.Area, m.WireLength, m.Bends, m.Crossings, m.FlowRight, m.Unrouted)

		if *svgdir != "" {
			if err := writeSVG(dg, filepath.Join(*svgdir, "fig"+cfg.fig+".svg")); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *svgdir != "" {
		fmt.Println("SVG renderings written to", *svgdir)
	}
}

func writeSVG(dg *schematic.Diagram, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dg.WriteSVG(f)
}
