// Eureka adds the unrouted nets to a schematic diagram (Appendix F of
// Koster & Stok, EUT 89-E-219).
//
// Usage:
//
//	eureka [-u] [-d] [-r] [-l] [-s] [-noclaims] [-route-order shortest|design]
//	       [-route-window on|off] [-o out.esc] graphic-file net-list-file
//	       [call-file] [io-file]
//
// The graphic file is an ESCHER diagram holding the placement and any
// prerouted nets; the net-list file gives the connection rules
// (Appendix A). When call/io files are omitted, the network is rebuilt
// from the graphic file's instances and contacts against the library.
// Nets already drawn in the graphic file are kept as prerouted
// obstacles; the router adds the missing connections.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"netart/internal/cli"
	"netart/internal/gen"
	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/route"
	"netart/internal/schematic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eureka:", err)
		os.Exit(1)
	}
}

func run() error {
	u := flag.Bool("u", false, "fix the upper border at its location")
	d := flag.Bool("d", false, "fix the lower border")
	r := flag.Bool("r", false, "fix the right border")
	l := flag.Bool("l", false, "fix the left border")
	s := flag.Bool("s", false, "rank minimum-bend paths by length before crossings")
	noclaims := flag.Bool("noclaims", false, "disable the claimpoint extension")
	routeOrder := flag.String("route-order", "shortest",
		"net routing order: shortest (default, §7 extension) or design (the paper's order)")
	routeWindow := flag.String("route-window", "on",
		"bounded routing search windows: on (default) or off (full-plane, results identical)")
	ripup := flag.Bool("ripup", false, "rip-up-and-reroute pass for failed nets (extension)")
	routeWorkers := flag.Int("route-workers", 0,
		"speculative routing workers (0/1 = sequential; results are byte-identical)")
	trace := flag.Bool("trace", false, "print the routing span tree to stderr")
	out := flag.String("o", "", "output file (default stdout)")
	name := flag.String("name", "", "design name (default: graphic file's tname)")
	flag.Parse()

	if flag.NArg() < 2 || flag.NArg() > 4 {
		return fmt.Errorf("usage: eureka [options] graphic-file net-list-file [call-file] [io-file]")
	}
	pre, err := cli.ReadDiagram(flag.Arg(0))
	if err != nil {
		return err
	}
	designName := *name
	if designName == "" {
		designName = pre.Name
	}

	var dsn *netlist.Design
	if flag.NArg() >= 3 {
		ioFile := ""
		if flag.NArg() == 4 {
			ioFile = flag.Arg(3)
		}
		dsn, err = cli.LoadDesign(designName, flag.Arg(1), flag.Arg(2), ioFile)
		if err != nil {
			return err
		}
	} else {
		dsn, err = designFromDiagram(designName, pre, flag.Arg(1))
		if err != nil {
			return err
		}
	}

	pr, err := pre.ApplyPlacement(dsn)
	if err != nil {
		return err
	}
	// Eureka is the routing half of the pipeline: gen.Run with
	// Options.Placement routes over the existing placement (the design
	// argument may be nil — the placement carries it).
	shortest, err := route.ParseOrder(*routeOrder)
	if err != nil {
		return err
	}
	noWindow, err := route.ParseWindow(*routeWindow)
	if err != nil {
		return err
	}
	ropts := route.Options{
		Claimpoints:        !*noclaims,
		SwapObjective:      *s,
		OrderShortestFirst: shortest,
		NoWindow:           noWindow,
		RipUp:              *ripup,
		Prerouted:          pre.PreroutedFor(dsn),
	}
	ropts.FixedBorder[geom.Up] = *u
	ropts.FixedBorder[geom.Down] = *d
	ropts.FixedBorder[geom.Right] = *r
	ropts.FixedBorder[geom.Left] = *l

	opts := gen.Options{Route: ropts, Placement: pr, RouteWorkers: *routeWorkers}
	if *trace {
		opts.Observer = obs.NewObserver(nil, "route")
	}
	rep, err := gen.Run(context.Background(), nil, opts)
	if err != nil {
		return err
	}
	dg := rep.Diagram
	for _, rn := range rep.Routing.Nets {
		if !rn.OK() {
			fmt.Fprintf(os.Stderr, "eureka: warning: net %q unroutable (%d terminal(s) open)\n",
				rn.Net.Name, len(rn.Failed))
		}
	}
	fmt.Fprintln(os.Stderr, dg.Summary())
	if rep.Trace != nil {
		fmt.Fprint(os.Stderr, obs.FormatTree(rep.Trace))
	}
	if err := dg.Verify(); err != nil {
		return fmt.Errorf("self check failed: %w", err)
	}
	return cli.WriteDiagram(*out, dg)
}

// designFromDiagram rebuilds the network from the graphic file's
// instances (resolved against the library) and contacts, then applies
// the net-list records.
func designFromDiagram(name string, pre *schematic.ESCHERDiagram, netFile string) (*netlist.Design, error) {
	lib, err := cli.UserLibrary()
	if err != nil {
		return nil, err
	}
	dsn := netlist.NewDesign(name)
	for _, inst := range pre.Modules {
		spec, err := lib.Template(inst.Template)
		if err != nil {
			return nil, fmt.Errorf("instance %q: %w", inst.Name, err)
		}
		if _, err := dsn.AddModule(inst.Name, inst.Template, spec.W, spec.H, spec.Terms); err != nil {
			return nil, err
		}
	}
	for _, c := range pre.Contacts {
		if _, err := dsn.AddSysTerm(c.Name, c.Type); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(netFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := netlist.ParseNetListFile(f)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.Instance == netlist.RootInstance {
			err = dsn.ConnectSys(rec.Net, rec.Terminal)
		} else {
			err = dsn.Connect(rec.Net, rec.Instance, rec.Terminal)
		}
		if err != nil {
			return nil, err
		}
	}
	return dsn, nil
}
