// Pablo places the modules and terminals of a schematic diagram
// (Appendix E of Koster & Stok, EUT 89-E-219).
//
// Usage:
//
//	pablo [-p N] [-b N] [-c N] [-e N] [-i N] [-s N] [-g preplaced.esc]
//	      [-o out.esc] net-list-file call-file [io-file]
//
// The positional files follow the Appendix A formats; templates resolve
// against the builtin library plus any Appendix C files in $USER_LIB.
// The output is an ESCHER-readable diagram (Appendix D) containing the
// placement, written to -o or stdout. With -g, the given diagram's
// instances are pinned and the remaining modules are placed around
// them ("the preplaced part will form a partition on its own").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"netart/internal/cli"
	"netart/internal/gen"
	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/place"
	"netart/internal/schematic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pablo:", err)
		os.Exit(1)
	}
}

func run() error {
	p := flag.Int("p", 1, "maximum number of modules per partition")
	b := flag.Int("b", 1, "maximum string length per box")
	c := flag.Int("c", 0, "maximum outgoing nets per partition (0 = unlimited)")
	e := flag.Int("e", 0, "extra tracks around each partition")
	i := flag.Int("i", 0, "extra tracks around each box")
	s := flag.Int("s", 0, "extra tracks around each module")
	g := flag.String("g", "", "ESCHER diagram with a preplaced part to keep fixed")
	placeWorkers := flag.Int("place-workers", 0,
		"parallel placement workers (0/1 = sequential; results are byte-identical)")
	trace := flag.Bool("trace", false, "print the placement span tree to stderr")
	out := flag.String("o", "", "output file (default stdout)")
	name := flag.String("name", "design", "design name for the output diagram")
	flag.Parse()

	if flag.NArg() < 2 || flag.NArg() > 3 {
		return fmt.Errorf("usage: pablo [options] net-list-file call-file [io-file]")
	}
	ioFile := ""
	if flag.NArg() == 3 {
		ioFile = flag.Arg(2)
	}
	d, err := cli.LoadDesign(*name, flag.Arg(0), flag.Arg(1), ioFile)
	if err != nil {
		return err
	}

	// Pablo is the placement half of the pipeline: gen.Run with
	// StopAfterPlace runs placement only and leaves Report.Diagram nil.
	opts := gen.Options{
		Place: place.Options{
			PartSize: *p, BoxSize: *b, MaxConnections: *c,
			PartSpacing: *e, BoxSpacing: *i, ModSpacing: *s,
		},
		PlaceWorkers:   *placeWorkers,
		StopAfterPlace: true,
	}
	if *g != "" {
		pre, err := cli.ReadDiagram(*g)
		if err != nil {
			return err
		}
		opts.Place.Fixed = map[*netlist.Module]place.Fixed{}
		for _, inst := range pre.Modules {
			m := d.Module(inst.Name)
			if m == nil {
				return fmt.Errorf("preplaced instance %q not in the network", inst.Name)
			}
			opts.Place.Fixed[m] = place.Fixed{Pos: inst.Min, Orient: inst.Orient}
		}
	}
	if *trace {
		opts.Observer = obs.NewObserver(nil, "place")
	}

	rep, err := gen.Run(context.Background(), d, opts)
	if err != nil {
		return err
	}
	if err := rep.Placement.Verify(); err != nil {
		return err
	}
	dg := schematic.FromPlacement(rep.Placement)
	fmt.Fprintln(os.Stderr, dg.Summary())
	if rep.Trace != nil {
		fmt.Fprint(os.Stderr, obs.FormatTree(rep.Trace))
	}
	return cli.WriteDiagram(*out, dg)
}
