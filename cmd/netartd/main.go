// Netartd is the schematic-generation daemon: the netlist→schematic
// pipeline of Koster & Stok (EUT 89-E-219) behind an HTTP/JSON API.
// Requests run on a bounded worker pool with per-request deadlines
// propagated into the routing wavefronts; identical requests are
// served from a content-addressed LRU result cache.
//
// Usage:
//
//	netartd [-addr :8417] [-workers N] [-queue N] [-cache N]
//	        [-timeout 30s] [-max-timeout 2m]
//
// Endpoints:
//
//	POST /v1/generate  {"workload":"life","format":"svg"} → diagram
//	POST /v1/batch     {"requests":[...]}                 → per-item results
//	GET  /v1/healthz   liveness
//	GET  /v1/stats     counters, cache hit/miss, stage latency histograms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"netart/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netartd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8417", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent generation workers")
	queue := flag.Int("queue", 0, "queued requests before shedding with 429 (0 = 4×workers)")
	cacheEnts := flag.Int("cache", 256, "result cache entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request generation deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper bound for client-supplied timeouts")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEnts,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("netartd: listening on %s (%d workers, queue %d, cache %d entries)",
			*addr, *workers, *queue, *cacheEnts)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("netartd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
