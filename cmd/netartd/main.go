// Netartd is the schematic-generation daemon: the netlist→schematic
// pipeline of Koster & Stok (EUT 89-E-219) behind an HTTP/JSON API.
// Requests run on a bounded worker pool with per-request deadlines
// propagated into the routing wavefronts; identical requests are
// served from a content-addressed LRU result cache.
//
// The daemon is hardened for long-running operation: panics anywhere
// in the pipeline are isolated per request and surfaced in /v1/stats,
// oversized bodies and pathological designs are rejected early (413 /
// 422), transient batch-item failures are retried with jittered
// backoff, and a degradation policy decides whether an incompletely
// routable design fails or ships as annotated partial artwork.
//
// Usage:
//
//	netartd [-addr :8417] [-workers N] [-queue N] [-cache N]
//	        [-timeout 30s] [-max-timeout 2m]
//	        [-jobs-max 256] [-jobs-ttl 15m]
//	        [-store mem|disk|tiered] [-store-dir DIR] [-store-max-bytes N]
//	        [-peers URL,URL,...] [-self URL]
//	        [-peer-probe-interval 2s] [-peer-fail-threshold 3]
//	        [-proxy-hedge-after 0] [-peer-timeout 0]
//	        [-degrade-mode none|strict|escalate|best-effort]
//	        [-batch-retries N] [-retry-base 10ms] [-retry-max 250ms]
//	        [-max-body BYTES] [-max-modules N] [-max-nets N] [-max-area N]
//	        [-faults SPEC] [-fault-seed N]
//
// The result store is pluggable: -store mem keeps the in-process LRU
// (the default), -store disk persists results as content-addressed
// files under -store-dir so a restarted daemon comes back warm, and
// -store tiered layers the LRU over the disk store (write-through,
// promotion on hit). -store-max-bytes garbage-collects the disk tier
// by LRU order.
//
// A fleet of replicas shards the store by content hash: start each
// replica with the same -peers list and its own -self URL, and every
// design hash gets exactly one consistent-hash owner that cold
// requests are proxied to (single hop; if the owner is down the
// replica computes locally, so the fleet degrades to independent
// daemons, never to errors). Each replica actively health-probes its
// peers every -peer-probe-interval (jittered) and keeps a per-peer
// circuit breaker that opens after -peer-fail-threshold consecutive
// transport failures; keys owned by a down peer remap deterministically
// onto the live set and move back when the breaker re-closes. Proxied
// calls retry once on transient failure, and -proxy-hedge-after hedges
// a slow proxy with a second request to the next-ranked live replica
// (first response wins — safe because the pipeline is deterministic).
//
// Fault injection (chaos testing) is enabled with -faults or the
// NETART_FAULTS environment variable, e.g.
//
//	netartd -faults 'route.wavefront:error:0.05;render:panic:0.01:x3'
//
// (sites: parse, place.box, route.wavefront, render; modes: error,
// panic, latency). While faults are armed the result cache is
// bypassed so injected failures cannot poison cached artwork.
// Clauses whose site starts with "peer" arm the network layer instead
// of the pipeline: peer[@HOSTPAT]:error|latency|blackhole|5xx with the
// same [:prob][:duration][:xN] suffixes (HOSTPAT is a colon-free
// substring of the peer's host:port, e.g. a port number), e.g.
//
//	netartd -faults 'peer@9002:blackhole:0.2;peer:5xx:0.05:x10'
//
// injects faults into proxied peer calls so breaker opening, hedging,
// and re-sharding can be exercised end to end.
//
// Endpoints:
//
//	POST /v1/generate  {"workload":"life","format":"svg"} → diagram
//	POST /v1/batch     {"requests":[...]}                 → per-item results
//	POST /v2/generate  like /v1 plus the full generation report
//	                   (stage timings, routing attempts, search
//	                   counters, span tree) under "report"
//	POST /v2/batch     the /v2 shape fanned out over the pool
//	POST /v2/jobs      submit an async job → 202 {job_id, status_url,
//	                   stream_url}; runs through the same pool, cache,
//	                   and fleet layers as /v2/generate
//	GET  /v2/jobs/{id} job status document (state machine, per-stage
//	                   progress, routed-net counts; result when done)
//	DELETE /v2/jobs/{id}        cancel (the deadline context unwinds
//	                   the routing wavefronts)
//	GET  /v2/jobs/{id}/events   progress + result as SSE: placement
//	                   geometry, then routed nets strictly in canonical
//	                   commit order, then the full report
//	GET  /v1/healthz   liveness (+ "degraded" advisory status)
//	GET  /v1/stats     counters, cache hit/miss, stage latency
//	                   histograms, recovered panics
//	GET  /metrics      the same counters and per-stage histograms in
//	                   Prometheus text exposition format
//	GET  /debug/pprof/ net/http/pprof profiles (disable with -pprof=false)
//
// Successful generate responses carry an X-Netart-Trace-Id header so a
// response can be correlated with its span tree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netart/internal/gen"
	"netart/internal/resilience"
	"netart/internal/service"
	"netart/internal/store/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netartd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8417", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent generation workers")
	queue := flag.Int("queue", 0, "queued requests before shedding with 429 (0 = 4×workers)")
	cacheEnts := flag.Int("cache", 256, "result cache entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request generation deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper bound for client-supplied timeouts")
	jobsMax := flag.Int("jobs-max", 256,
		"async job records tracked at once (submissions shed with 429 beyond)")
	jobsTTL := flag.Duration("jobs-ttl", 15*time.Minute,
		"how long a finished job's status and event log stay fetchable")

	storeBackend := flag.String("store", "mem", "result store backend: mem, disk, tiered")
	storeDir := flag.String("store-dir", "", "disk store root (required for -store disk|tiered)")
	storeMaxBytes := flag.Int64("store-max-bytes", 256<<20,
		"disk-tier size bound, GC'd by LRU beyond it (negative disables)")
	peers := flag.String("peers", "",
		"comma-separated replica base URLs of a netartd fleet (enables consistent-hash sharding)")
	self := flag.String("self", "", "this replica's own base URL as peers see it (required with -peers)")
	probeInterval := flag.Duration("peer-probe-interval", 2*time.Second,
		"fleet health-probe interval per peer (jittered; <=0 disables active probing)")
	failThreshold := flag.Int("peer-fail-threshold", 3,
		"consecutive peer transport failures that open its circuit breaker")
	hedgeAfter := flag.Duration("proxy-hedge-after", 0,
		"hedge a proxied request to the next live peer after this delay (0 disables)")
	peerTimeout := flag.Duration("peer-timeout", 0,
		"client-side bound per proxied peer call (0 = request deadline only)")

	degrade := flag.String("degrade-mode", "none",
		"default routing-failure policy: none, strict, escalate, best-effort")
	routeWorkers := flag.Int("route-workers", 0,
		"default speculative routing workers per request (0/1 = sequential; results are byte-identical)")
	placeWorkers := flag.Int("place-workers", 0,
		"default parallel placement workers per request (0/1 = sequential; results are byte-identical)")
	verifyRouting := flag.Bool("verify-routing", false,
		"machine-check every response's wire geometry against its netlist before serving")
	batchRetries := flag.Int("batch-retries", 2,
		"extra attempts for transient batch-item failures (negative disables)")
	retryBase := flag.Duration("retry-base", 10*time.Millisecond, "base backoff between batch retries")
	retryMax := flag.Duration("retry-max", 250*time.Millisecond, "backoff cap between batch retries")

	maxBody := flag.Int64("max-body", 8<<20, "request body cap in bytes (413 beyond)")
	maxModules := flag.Int("max-modules", 4096, "design module cap (422 beyond; negative disables)")
	maxNets := flag.Int("max-nets", 16384, "design net cap (422 beyond; negative disables)")
	maxArea := flag.Int("max-area", 4<<20, "routing-plane point cap (422 beyond; negative disables)")

	faults := flag.String("faults", "",
		"fault-injection spec site:mode[:prob][:latency][:xN][;...] (also env "+resilience.EnvFaults+")")
	faultSeed := flag.Int64("fault-seed", 0, "injector RNG seed (0 = time-based)")
	pprofOn := flag.Bool("pprof", true, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	dm, err := gen.ParseDegradeMode(*degrade)
	if err != nil {
		return err
	}

	// One -faults spec arms both injectors: clauses starting with
	// "peer" go to the fleet's network-layer fault plan, the rest to
	// the pipeline injector. The environment spec is the fallback so
	// chaos runs need no command-line changes.
	spec, seed := *faults, *faultSeed
	if spec == "" {
		spec = os.Getenv(resilience.EnvFaults)
		if s := os.Getenv(resilience.EnvFaultSeed); spec != "" && s != "" {
			if v, perr := strconv.ParseInt(s, 10, 64); perr == nil {
				seed = v
			} else {
				return fmt.Errorf("bad %s %q: %v", resilience.EnvFaultSeed, s, perr)
			}
		}
	}
	peerSpec, pipeSpec := cluster.SplitFaultSpec(spec)
	inj, err := resilience.ParseSpec(pipeSpec, seed)
	if err != nil {
		return err
	}
	plan, err := cluster.ParseFaultSpec(peerSpec, seed)
	if err != nil {
		return err
	}
	if inj != nil {
		log.Printf("netartd: fault injection armed: %s (result cache bypassed)", inj)
	}
	if plan != nil {
		log.Printf("netartd: peer-layer fault injection armed: %s", peerSpec)
	}

	// The Config convention inverts the flag's: 0 means default there,
	// so a disabling flag value (<=0) maps to a negative interval.
	cfgProbe := *probeInterval
	if cfgProbe <= 0 {
		cfgProbe = -1
	}

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	srv, err := service.NewServer(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEnts,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		JobsMax:        *jobsMax,
		JobsTTL:        *jobsTTL,
		MaxBodyBytes:   *maxBody,
		MaxModules:     *maxModules,
		MaxNets:        *maxNets,
		MaxPlaneArea:   *maxArea,
		DegradeMode:    dm,
		RouteWorkers:   *routeWorkers,
		PlaceWorkers:   *placeWorkers,
		VerifyRouting:  *verifyRouting,
		BatchRetries:   *batchRetries,
		RetryBase:      *retryBase,
		RetryMax:       *retryMax,
		Inject:         inj,
		StoreBackend:   *storeBackend,
		StoreDir:       *storeDir,
		StoreMaxBytes:  *storeMaxBytes,
		Peers:             peerList,
		SelfURL:           *self,
		PeerProbeInterval: cfgProbe,
		PeerFailThreshold: *failThreshold,
		ProxyHedgeAfter:   *hedgeAfter,
		PeerTimeout:       *peerTimeout,
		PeerFaults:        plan,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Mount the service surface on a wrapper mux so the pprof handlers
	// can be added (or withheld) without the service package importing
	// net/http/pprof and its DefaultServeMux side effects.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("netartd: listening on %s (%d workers, queue %d, cache %d entries, store %s, degrade %s)",
			*addr, *workers, *queue, *cacheEnts, *storeBackend, dm)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("netartd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
