package main

// The -service mode benchmarks the daemon tier rather than the raw
// pipeline: store cold/warm tails, restart survival over a real disk
// store, singleflight collapse under a concurrent stampede, and a
// 3-replica in-process fleet with consistent-hash routing. CI runs it
// as `go run ./cmd/benchpipe -service -out BENCH_service.json` so
// every build leaves a machine-readable record of the service-layer
// guarantees next to the pipeline numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"netart/internal/jobs"
	"netart/internal/service"
	"netart/internal/store/cluster"
)

// latencyStats summarizes one latency sample set.
type latencyStats struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func summarize(ms []float64) latencyStats {
	if len(ms) == 0 {
		return latencyStats{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return latencyStats{
		Count: len(sorted),
		P50Ms: q(0.50),
		P99Ms: q(0.99),
		MaxMs: sorted[len(sorted)-1],
	}
}

// serviceWorkload is one workload's store-tier numbers.
type serviceWorkload struct {
	Workload string       `json:"workload"`
	ColdMs   float64      `json:"cold_ms"`
	Warm     latencyStats `json:"warm"`
	Speedup  float64      `json:"speedup"`
}

// restartResult is the restart-survival section: every pre-restart
// request must come back as a cache hit with identical artwork.
type restartResult struct {
	Requests      int     `json:"requests"`
	Hits          int     `json:"hits"`
	HitRate       float64 `json:"hit_rate"`
	BodiesMatched bool    `json:"bodies_matched"`
	ReloadedMs    float64 `json:"reload_open_ms"`
}

// singleflightResult is the stampede section: N concurrent identical
// cold requests, counted by singleflight outcome.
type singleflightResult struct {
	Concurrency int          `json:"concurrency"`
	Leaders     uint64       `json:"leaders"`
	Shared      uint64       `json:"shared"`
	Canceled    uint64       `json:"canceled"`
	PipelineRan uint64       `json:"pipeline_runs"`
	Latency     latencyStats `json:"latency"`
}

// jobWorkload is one workload's async-API numbers: the latency from
// POST /v2/jobs to the first SSE event (the stream going live) and to
// the terminal state event (end to end), plus the event volume the
// stream carried. The cache is disabled for this section so every job
// actually computes and streams per-net progress.
type jobWorkload struct {
	Workload           string  `json:"workload"`
	TimeToFirstEventMs float64 `json:"time_to_first_event_ms"`
	EndToEndMs         float64 `json:"end_to_end_ms"`
	Events             int     `json:"events"`
	NetEvents          int     `json:"net_events"`
	State              string  `json:"state"`
}

// fleetResult is the replica-fleet section.
type fleetResult struct {
	Replicas     int          `json:"replicas"`
	Requests     int          `json:"requests"`
	CacheHits    uint64       `json:"cache_hits"`
	HitRate      float64      `json:"hit_rate"`
	PeerSelf     uint64       `json:"peer_self"`
	PeerProxied  uint64       `json:"peer_proxied"`
	PeerReceived uint64       `json:"peer_received"`
	PeerFallback uint64       `json:"peer_fallback"`
	Cold         latencyStats `json:"cold"`
	Warm         latencyStats `json:"warm"`
	// KilledReplicaServed reports whether a request owned by a killed
	// replica was still served (local-compute fallback).
	KilledReplicaServed bool `json:"killed_replica_served"`

	// Failure-management numbers (health probing + circuit breakers).
	// ProbeIntervalMs is the configured probe period; ReshardMs is how
	// long after a replica's death its keys took to remap onto the live
	// set, and ReshardConverged holds when that fits the detection
	// budget (3 × probe interval). ReshardServedWarm reports whether a
	// remapped key was served from cache within that same budget.
	ProbeIntervalMs   float64 `json:"probe_interval_ms"`
	ReshardMs         float64 `json:"reshard_ms"`
	ReshardConverged  bool    `json:"reshard_converged"`
	ReshardServedWarm bool    `json:"reshard_served_warm"`
	// Flapping is the request-latency profile while one peer flaps
	// (blackholed and restored repeatedly): the tails show what a
	// partition costs when hedged proxying is on.
	Flapping latencyStats `json:"flapping"`
}

// serviceBenchFile is the top-level shape of BENCH_service.json.
type serviceBenchFile struct {
	GeneratedAt  string             `json:"generated_at"`
	CPUs         int                `json:"cpus"`
	GoMaxProcs   int                `json:"gomaxprocs"`
	StoreBackend string             `json:"store_backend"`
	Workloads    []serviceWorkload  `json:"workloads"`
	Restart      restartResult      `json:"restart"`
	Singleflight singleflightResult `json:"singleflight"`
	Jobs         []jobWorkload      `json:"jobs"`
	Fleet        fleetResult        `json:"fleet"`
}

// normalizeBody strips per-request fields so artwork can be compared
// across restarts.
func normalizeBody(r *service.ResponseV2) string {
	c := *r
	c.Cached = false
	c.ElapsedMs = 0
	c.Report.Trace = nil
	b, _ := json.Marshal(&c)
	return string(b)
}

func benchRequest(w string) service.Request {
	req := service.Request{Workload: w, Format: service.FormatSummary}
	if w == "life" {
		req.Options = service.GenOptions{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}
	}
	return req
}

func runService(workloads []string, warmRuns int, out string) error {
	ctx := context.Background()
	file := serviceBenchFile{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		CPUs:         runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		StoreBackend: "tiered",
	}

	dir, err := os.MkdirTemp("", "netart-bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := service.Config{Workers: 2, StoreBackend: "tiered", StoreDir: dir, CacheEntries: 64}

	// ---- Store tier: cold vs warm tails, then restart survival. ----
	srv, err := service.NewServer(cfg)
	if err != nil {
		return err
	}
	bodies := map[string]string{}
	for _, w := range workloads {
		req := benchRequest(w)
		cold, err := srv.GenerateV2(ctx, &req)
		if err != nil {
			return fmt.Errorf("service bench %s (cold): %w", w, err)
		}
		bodies[w] = normalizeBody(cold)
		var warm []float64
		for i := 0; i < warmRuns; i++ {
			r, err := srv.GenerateV2(ctx, &req)
			if err != nil {
				return fmt.Errorf("service bench %s (warm): %w", w, err)
			}
			if !r.Cached {
				return fmt.Errorf("service bench %s: warm run missed", w)
			}
			warm = append(warm, r.ElapsedMs)
		}
		res := serviceWorkload{Workload: w, ColdMs: cold.ElapsedMs, Warm: summarize(warm)}
		if res.Warm.P50Ms > 0 {
			res.Speedup = res.ColdMs / res.Warm.P50Ms
		}
		file.Workloads = append(file.Workloads, res)
		fmt.Fprintf(os.Stderr, "benchpipe: service %-10s cold %8.3fms  warm p50 %6.3fms p99 %6.3fms\n",
			w, res.ColdMs, res.Warm.P50Ms, res.Warm.P99Ms)
	}
	srv.Close()

	// Restart over the same directory: every request must hit.
	t0 := time.Now()
	srv2, err := service.NewServer(cfg)
	if err != nil {
		return err
	}
	file.Restart.ReloadedMs = float64(time.Since(t0).Microseconds()) / 1000.0
	file.Restart.BodiesMatched = true
	for _, w := range workloads {
		req := benchRequest(w)
		r, err := srv2.GenerateV2(ctx, &req)
		if err != nil {
			return fmt.Errorf("service bench %s (restart): %w", w, err)
		}
		file.Restart.Requests++
		if r.Cached {
			file.Restart.Hits++
		}
		if normalizeBody(r) != bodies[w] {
			file.Restart.BodiesMatched = false
		}
	}
	srv2.Close()
	if file.Restart.Requests > 0 {
		file.Restart.HitRate = float64(file.Restart.Hits) / float64(file.Restart.Requests)
	}
	fmt.Fprintf(os.Stderr, "benchpipe: restart survival %d/%d hits (rate %.2f), bodies matched %v\n",
		file.Restart.Hits, file.Restart.Requests, file.Restart.HitRate, file.Restart.BodiesMatched)

	// ---- Singleflight: a 32-way stampede on one cold key. ----
	const stampede = 32
	sfSrv, err := service.NewServer(service.Config{Workers: stampede, QueueDepth: stampede, CacheEntries: 64})
	if err != nil {
		return err
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		sfLats []float64
	)
	req := benchRequest(workloads[0])
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, gerr := sfSrv.GenerateV2(ctx, &req)
			if gerr != nil {
				return
			}
			mu.Lock()
			sfLats = append(sfLats, r.ElapsedMs)
			mu.Unlock()
		}()
	}
	wg.Wait()
	m := sfSrv.Metrics()
	file.Singleflight = singleflightResult{
		Concurrency: stampede,
		Leaders:     m.SFLeader.Value(),
		Shared:      m.SFShared.Value(),
		Canceled:    m.SFCanceled.Value(),
		PipelineRan: sfSrv.Stats().Stages["route"].Count,
		Latency:     summarize(sfLats),
	}
	sfSrv.Close()
	fmt.Fprintf(os.Stderr, "benchpipe: singleflight %d-way: %d leader / %d shared / %d pipeline runs\n",
		stampede, file.Singleflight.Leaders, file.Singleflight.Shared, file.Singleflight.PipelineRan)

	// ---- Async jobs: submit → first SSE event → terminal state. ----
	jr, err := runJobsBench(ctx, workloads)
	if err != nil {
		return err
	}
	file.Jobs = jr
	for _, j := range jr {
		fmt.Fprintf(os.Stderr, "benchpipe: jobs %-10s first event %8.3fms  end-to-end %8.3fms  (%d events, %d nets)\n",
			j.Workload, j.TimeToFirstEventMs, j.EndToEndMs, j.Events, j.NetEvents)
	}

	// ---- Fleet: 3 replicas, consistent-hash routing over HTTP. ----
	fr, err := runFleetBench(ctx, workloads)
	if err != nil {
		return err
	}
	file.Fleet = *fr
	fmt.Fprintf(os.Stderr, "benchpipe: fleet %d replicas: hit rate %.2f, self %d / proxied %d / received %d / fallback %d\n",
		fr.Replicas, fr.HitRate, fr.PeerSelf, fr.PeerProxied, fr.PeerReceived, fr.PeerFallback)
	fmt.Fprintf(os.Stderr, "benchpipe: fleet re-shard %.1fms after kill (converged %v, served warm %v); flapping p50 %.3fms p99 %.3fms over %d reqs\n",
		fr.ReshardMs, fr.ReshardConverged, fr.ReshardServedWarm,
		fr.Flapping.P50Ms, fr.Flapping.P99Ms, fr.Flapping.Count)

	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// runJobsBench measures the async job path end to end, in process:
// submit each workload through SubmitJob, subscribe to its event log,
// and record time-to-first-event and submit-to-terminal latency.
func runJobsBench(ctx context.Context, workloads []string) ([]jobWorkload, error) {
	srv, err := service.NewServer(service.Config{Workers: 2, CacheEntries: 0})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var out []jobWorkload
	for _, w := range workloads {
		req := benchRequest(w)
		t0 := time.Now()
		sub, err := srv.SubmitJob(ctx, &req)
		if err != nil {
			return nil, fmt.Errorf("jobs bench %s (submit): %w", w, err)
		}
		j := srv.Jobs().Get(sub.JobID)
		if j == nil {
			return nil, fmt.Errorf("jobs bench %s: job vanished after submit", w)
		}
		res := jobWorkload{Workload: w}
		events := j.Subscribe()
		for {
			ev, err := events.Next(ctx)
			if err == jobs.ErrDone {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("jobs bench %s (stream): %w", w, err)
			}
			if res.Events == 0 {
				res.TimeToFirstEventMs = float64(time.Since(t0).Microseconds()) / 1000.0
			}
			res.Events++
			if ev.Type == "net" {
				res.NetEvents++
			}
		}
		res.EndToEndMs = float64(time.Since(t0).Microseconds()) / 1000.0
		res.State = string(j.State())
		if res.State != string(jobs.StateDone) {
			return nil, fmt.Errorf("jobs bench %s: job ended %s", w, res.State)
		}
		out = append(out, res)
	}
	return out, nil
}

func runFleetBench(ctx context.Context, workloads []string) (*fleetResult, error) {
	const n = 3
	type rep struct {
		srv  *service.Server
		http *http.Server
		ln   net.Listener
		url  string
	}
	reps := make([]*rep, n)
	urls := make([]string, n)
	for i := range reps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		reps[i] = &rep{ln: ln, url: "http://" + ln.Addr().String()}
		urls[i] = reps[i].url
	}
	const probeInterval = 200 * time.Millisecond
	plan := cluster.NewFaultPlan(1)
	for _, r := range reps {
		srv, err := service.NewServer(service.Config{
			Workers: 2, CacheEntries: 64, Peers: urls, SelfURL: r.url,
			PeerProbeInterval: probeInterval,
			PeerFailThreshold: 2,
			ProxyHedgeAfter:   25 * time.Millisecond,
			PeerTimeout:       2 * time.Second,
			PeerFaults:        plan,
		})
		if err != nil {
			return nil, err
		}
		r.srv = srv
		r.http = &http.Server{Handler: srv.Handler()}
		go r.http.Serve(r.ln)
	}
	stop := func(r *rep) {
		if r.http != nil {
			c, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = r.http.Shutdown(c)
			cancel()
			r.http = nil
			r.srv.Close()
		}
	}
	defer func() {
		for _, r := range reps {
			stop(r)
		}
	}()

	out := &fleetResult{Replicas: n}
	var cold, warm []float64
	// Round one: every request is cold somewhere — each key computes on
	// its owner. Round two: everything is warm.
	keys := map[string]string{} // workload → cache key
	for round := 0; round < 2; round++ {
		for _, w := range workloads {
			req := benchRequest(w)
			for _, r := range reps {
				t0 := time.Now()
				resp, err := r.srv.GenerateV2(ctx, &req)
				if err != nil {
					return nil, fmt.Errorf("fleet bench %s: %w", w, err)
				}
				keys[w] = resp.CacheKey
				out.Requests++
				ms := float64(time.Since(t0).Microseconds()) / 1000.0
				if round == 0 {
					cold = append(cold, ms)
				} else {
					warm = append(warm, ms)
				}
			}
		}
	}
	for _, r := range reps {
		st := r.srv.Stats()
		out.CacheHits += st.Cache.Hits
		m := r.srv.Metrics()
		out.PeerSelf += m.PeerSelf.Value()
		out.PeerProxied += m.PeerProxied.Value()
		out.PeerReceived += m.PeerReceived.Value()
		out.PeerFallback += m.PeerFallback.Value()
	}
	if out.Requests > 0 {
		out.HitRate = float64(out.CacheHits) / float64(out.Requests)
	}
	out.Cold = summarize(cold)
	out.Warm = summarize(warm)

	out.ProbeIntervalMs = float64(probeInterval.Milliseconds())

	// ---- Flapping peer: blackhole and restore one replica in short
	// cycles while traffic flows through another. With hedged proxying
	// the partition shows up in the tails, never as an error.
	flap := reps[1]
	var flapping []float64
	for cycle := 0; cycle < 3; cycle++ {
		plan.Blackhole(flap.url)
		for phase := 0; phase < 2; phase++ {
			deadline := time.Now().Add(150 * time.Millisecond)
			for i := 0; time.Now().Before(deadline); i++ {
				req := benchRequest(workloads[i%len(workloads)])
				t0 := time.Now()
				if _, err := reps[0].srv.GenerateV2(ctx, &req); err != nil {
					return nil, fmt.Errorf("fleet bench (flapping): %w", err)
				}
				flapping = append(flapping, float64(time.Since(t0).Microseconds())/1000.0)
			}
			plan.Restore(flap.url)
		}
	}
	out.Flapping = summarize(flapping)
	// Let every breaker re-close before the kill phase measures
	// detection from a clean state.
	settle := time.Now().Add(10 * probeInterval)
	for time.Now().Before(settle) {
		closed := true
		for _, ps := range reps[0].srv.Fleet().PeerStates() {
			if ps.State != cluster.StateClosed {
				closed = false
			}
		}
		if closed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ---- Kill one replica that owns at least one key; a survivor must
	// still serve that key (fallback or re-shard), its breaker must
	// open, and ownership must remap within the detection budget.
	view, err := cluster.New(urls[0], urls)
	if err != nil {
		return nil, err
	}
	victim := reps[1]
	victimReq := benchRequest(workloads[0])
	victimKey := keys[workloads[0]]
	for w, k := range keys {
		if owner := view.Owner(k); owner != urls[0] {
			victimReq = benchRequest(w)
			victimKey = k
			for _, r := range reps {
				if r.url == owner {
					victim = r
				}
			}
			break
		}
	}
	killedAt := time.Now()
	stop(victim)
	// Re-shard convergence: the victim's key must move to a live owner
	// — failing probes alone drive the detection (FailThreshold
	// consecutive refusals) — within 3 probe intervals of the kill.
	budget := killedAt.Add(3 * probeInterval)
	for time.Now().Before(budget) {
		if reps[0].srv.Fleet().Owner(victimKey) != victim.url {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	out.ReshardMs = float64(time.Since(killedAt).Microseconds()) / 1000.0
	out.ReshardConverged = reps[0].srv.Fleet().Owner(victimKey) != victim.url
	// The dead owner's key still serves (re-shard or fallback)...
	if _, err := reps[0].srv.GenerateV2(ctx, &victimReq); err == nil {
		out.KilledReplicaServed = true
	}
	// ...and serves warm within a further detection budget: once the
	// key remapped, its first compute fills a live replica's cache.
	warmBudget := time.Now().Add(3 * probeInterval)
	for time.Now().Before(warmBudget) && !out.ReshardServedWarm {
		if r, err := reps[0].srv.GenerateV2(ctx, &victimReq); err == nil && r.Cached {
			out.ReshardServedWarm = true
		}
	}
	out.PeerFallback = reps[0].srv.Metrics().PeerFallback.Value()
	return out, nil
}

func splitWorkloads(spec string) []string {
	var out []string
	for _, w := range strings.Split(spec, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}
