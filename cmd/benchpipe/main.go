// Benchpipe measures the end-to-end latency of the netlist→schematic
// pipeline through the service core and writes the results as JSON.
// It reports two numbers per workload:
//
//   - cold: the first generate (full parse→place→route→render run,
//     the cache misses), with the per-stage breakdown;
//   - warm: the best repeat of the identical request served from the
//     content-addressed result cache.
//
// The ratio between them is the cache's value proposition; the cold
// stage breakdown shows where the pipeline spends its time. CI runs
// this as `go run ./cmd/benchpipe -out BENCH_pipeline.json` so every
// build leaves a machine-readable latency record next to the binaries.
//
// Usage:
//
//	benchpipe [-out BENCH_pipeline.json] [-workloads fig61,datapath,life]
//	          [-warm-runs 5]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"netart/internal/gen"
	"netart/internal/service"
)

// workloadResult is the per-workload slice of the output file.
type workloadResult struct {
	Workload string `json:"workload"`
	// ColdMs is the first (uncached) request's wall time; ColdStages
	// breaks it down per stage (parse_ms, place_ms, route_ms,
	// render_ms — the same wire names as the service APIs).
	ColdMs     float64          `json:"cold_ms"`
	ColdStages gen.StageTimings `json:"cold_stages"`
	// WarmMs is the best of -warm-runs cache-hit repeats.
	WarmMs   float64 `json:"warm_ms"`
	WarmRuns int     `json:"warm_runs"`
	// Speedup is ColdMs / WarmMs (0 when WarmMs is 0).
	Speedup  float64 `json:"speedup"`
	Unrouted int     `json:"unrouted"`
}

// benchFile is the top-level shape of BENCH_pipeline.json.
type benchFile struct {
	GeneratedAt string           `json:"generated_at"`
	Results     []workloadResult `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "BENCH_pipeline.json", "output file (- for stdout)")
	workloads := flag.String("workloads", "fig61,datapath,life", "comma-separated built-in workloads")
	warmRuns := flag.Int("warm-runs", 5, "cache-hit repeats per workload (best is reported)")
	flag.Parse()

	srv := service.New(service.Config{Workers: 1, CacheEntries: 64})
	defer srv.Close()
	ctx := context.Background()

	file := benchFile{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		req := service.Request{Workload: w, Format: service.FormatSummary}
		if w == "life" {
			// Figure 6.7 options: the spacing the dense LIFE fabric needs.
			req.Options = service.GenOptions{PartSize: 5, BoxSize: 5,
				ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}
		}

		cold, err := srv.GenerateV2(ctx, &req)
		if err != nil {
			return fmt.Errorf("workload %s (cold): %w", w, err)
		}
		if cold.Cached {
			return fmt.Errorf("workload %s: first request reported cached", w)
		}
		res := workloadResult{
			Workload:   w,
			ColdMs:     cold.ElapsedMs,
			ColdStages: cold.Report.Timings,
			WarmRuns:   *warmRuns,
			Unrouted:   cold.Unrouted,
		}
		for i := 0; i < *warmRuns; i++ {
			warm, err := srv.GenerateV2(ctx, &req)
			if err != nil {
				return fmt.Errorf("workload %s (warm %d): %w", w, i, err)
			}
			if !warm.Cached {
				return fmt.Errorf("workload %s: warm request %d missed the cache", w, i)
			}
			if i == 0 || warm.ElapsedMs < res.WarmMs {
				res.WarmMs = warm.ElapsedMs
			}
		}
		if res.WarmMs > 0 {
			res.Speedup = res.ColdMs / res.WarmMs
		}
		file.Results = append(file.Results, res)
		fmt.Fprintf(os.Stderr, "benchpipe: %-10s cold %8.3fms  warm %8.3fms  (%.0fx)\n",
			w, res.ColdMs, res.WarmMs, res.Speedup)
	}

	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(*out, b, 0o644)
}
