// Benchpipe measures the end-to-end latency of the netlist→schematic
// pipeline through the service core and writes the results as JSON.
// It reports two numbers per workload:
//
//   - cold: the first generate (full parse→place→route→render run,
//     the cache misses), with the per-stage breakdown;
//   - warm: the best repeat of the identical request served from the
//     content-addressed result cache.
//
// The ratio between them is the cache's value proposition; the cold
// stage breakdown shows where the pipeline spends its time. CI runs
// this as `go run ./cmd/benchpipe -out BENCH_pipeline.json` so every
// build leaves a machine-readable latency record next to the binaries.
//
// A route-workers sweep rides along: each workload's route stage is
// re-run (cache off) at every worker count in -route-workers, and the
// per-workload parallel_speedup field reports sequential route time
// over the best parallel route time. A matching place-workers sweep
// does the same for the placement stage (-place-workers, place_sweep,
// place_parallel_speedup). The record carries cpus and gomaxprocs so
// a speedup of ~1.0 on a single-core runner reads as the hardware
// fact it is, not a scheduler defect — the determinism batteries, not
// this bench, are the parallel stages' correctness gates.
//
// With -service the bench targets the daemon tier instead: store
// cold/warm tail latency over a tiered disk-backed store, restart
// survival (hit rate and artwork identity across a stop/start over
// the same store directory), singleflight collapse under a 32-way
// stampede, the async job API (time to first SSE event and
// submit-to-terminal latency per workload), and a 3-replica
// in-process fleet with consistent-hash routing (hit rate, peer
// outcome counts, kill-one degradation). The output then defaults to
// BENCH_service.json.
//
// Each workload also records route_budget_ms — 1.2x its best observed
// sequential route time (cold stage or workers<=1 sweep point). With
// -gate FILE the run loads the committed bench record first and fails
// (after writing -out) when its own best route time exceeds the
// committed budget, or when parallel_speedup falls below
// 1.0 on a host with 4+ CPUs; CI runs
// `benchpipe -gate BENCH_pipeline.json -out BENCH_pipeline.json` so a
// >20% route-stage regression against the committed record fails the
// build.
//
// Usage:
//
//	benchpipe [-out BENCH_pipeline.json] [-workloads fig61,datapath,life]
//	          [-warm-runs 5] [-route-workers 1,2,4,N] [-place-workers 1,2,4,N]
//	          [-gate BENCH_pipeline.json]
//	benchpipe -service [-out BENCH_service.json] [-workloads fig61,quickstart]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netart/internal/gen"
	"netart/internal/service"
)

// workloadResult is the per-workload slice of the output file.
type workloadResult struct {
	Workload string `json:"workload"`
	// ColdMs is the first (uncached) request's wall time; ColdStages
	// breaks it down per stage (parse_ms, place_ms, route_ms,
	// render_ms — the same wire names as the service APIs).
	ColdMs     float64          `json:"cold_ms"`
	ColdStages gen.StageTimings `json:"cold_stages"`
	// WarmMs is the best of -warm-runs cache-hit repeats.
	WarmMs   float64 `json:"warm_ms"`
	WarmRuns int     `json:"warm_runs"`
	// Speedup is ColdMs / WarmMs (0 when WarmMs is 0).
	Speedup  float64 `json:"speedup"`
	Unrouted int     `json:"unrouted"`
	// RouteSweep is the route-stage latency at each -route-workers
	// value (cache bypassed; best of two runs per point).
	RouteSweep []routeSweepPoint `json:"route_sweep,omitempty"`
	// ParallelSpeedup is the sequential route_ms over the best
	// parallel route_ms in the sweep (0 when the sweep has no
	// parallel points). On a single-core host this hovers around 1.0
	// regardless of worker count — see cpus/gomaxprocs at the top
	// level.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// RouteBudgetMs is the regression budget for this workload's route
	// stage: 1.2x the best observed sequential route time (20% headroom
	// over the committed number). The -gate flag of a later run compares
	// its own best observation against the committed file's budget.
	RouteBudgetMs float64 `json:"route_budget_ms,omitempty"`
	// PlaceSweep is the place-stage latency at each -place-workers
	// value (cache bypassed; best of two runs per point), and
	// PlaceParallelSpeedup the sequential place_ms over the best
	// parallel place_ms — the placement twin of the route sweep.
	PlaceSweep           []placeSweepPoint `json:"place_sweep,omitempty"`
	PlaceParallelSpeedup float64           `json:"place_parallel_speedup,omitempty"`
}

// routeSweepPoint is one (worker count, route latency) sample.
type routeSweepPoint struct {
	Workers int     `json:"workers"`
	RouteMs float64 `json:"route_ms"`
}

// placeSweepPoint is one (worker count, place latency) sample.
type placeSweepPoint struct {
	Workers int     `json:"workers"`
	PlaceMs float64 `json:"place_ms"`
}

// benchFile is the top-level shape of BENCH_pipeline.json.
type benchFile struct {
	GeneratedAt string `json:"generated_at"`
	// CPUs and GoMaxProcs describe the hardware the numbers were
	// taken on; parallel_speedup is meaningless without them.
	CPUs       int              `json:"cpus"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []workloadResult `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

// parseSweep expands a -route-workers/-place-workers spec into a
// deduplicated list of worker counts; "N" means GOMAXPROCS. flagName
// is only used for error messages.
func parseSweep(flagName, spec string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n := runtime.GOMAXPROCS(0)
		if part != "N" && part != "n" {
			v, err := strconv.Atoi(part)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad %s entry %q", flagName, part)
			}
			n = v
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out, nil
}

func run() error {
	out := flag.String("out", "", "output file (- for stdout; default BENCH_pipeline.json, or BENCH_service.json with -service)")
	workloads := flag.String("workloads", "fig61,datapath,life", "comma-separated built-in workloads")
	warmRuns := flag.Int("warm-runs", 5, "cache-hit repeats per workload (best is reported)")
	sweepSpec := flag.String("route-workers", "1,2,4,N",
		"comma-separated route-worker counts for the sweep (N = GOMAXPROCS; empty disables)")
	placeSpec := flag.String("place-workers", "1,2,4,N",
		"comma-separated place-worker counts for the sweep (N = GOMAXPROCS; empty disables)")
	serviceMode := flag.Bool("service", false,
		"benchmark the service tier instead (store cold/warm tails, restart survival, singleflight stampede, 3-replica fleet)")
	gate := flag.String("gate", "",
		"committed bench file to gate against: fail when a workload's fresh cold route_ms exceeds the committed route_budget_ms, or when parallel_speedup drops below 1.0 on a 4+ CPU host")
	flag.Parse()

	if *serviceMode {
		if *out == "" {
			*out = "BENCH_service.json"
		}
		return runService(splitWorkloads(*workloads), *warmRuns, *out)
	}
	if *out == "" {
		*out = "BENCH_pipeline.json"
	}

	// Load the committed gate file before measuring so -gate and -out
	// may name the same path (CI gates against the committed record,
	// then overwrites it with the fresh one).
	var committed *benchFile
	if *gate != "" {
		b, err := os.ReadFile(*gate)
		if err != nil {
			return fmt.Errorf("-gate: %w", err)
		}
		committed = &benchFile{}
		if err := json.Unmarshal(b, committed); err != nil {
			return fmt.Errorf("-gate %s: %w", *gate, err)
		}
	}

	sweep, err := parseSweep("-route-workers", *sweepSpec)
	if err != nil {
		return err
	}
	placeSweep, err := parseSweep("-place-workers", *placeSpec)
	if err != nil {
		return err
	}

	srv := service.New(service.Config{Workers: 1, CacheEntries: 64})
	defer srv.Close()
	// The sweep server has no cache: route_workers is deliberately
	// excluded from the cache key (parallel output is byte-identical),
	// so sweep points after the first would otherwise be cache hits.
	sweepSrv := service.New(service.Config{Workers: 1, CacheEntries: 0})
	defer sweepSrv.Close()
	ctx := context.Background()

	file := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		req := service.Request{Workload: w, Format: service.FormatSummary}
		if w == "life" {
			// Figure 6.7 options: the spacing the dense LIFE fabric needs.
			req.Options = service.GenOptions{PartSize: 5, BoxSize: 5,
				ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}
		}

		cold, err := srv.GenerateV2(ctx, &req)
		if err != nil {
			return fmt.Errorf("workload %s (cold): %w", w, err)
		}
		if cold.Cached {
			return fmt.Errorf("workload %s: first request reported cached", w)
		}
		res := workloadResult{
			Workload:   w,
			ColdMs:     cold.ElapsedMs,
			ColdStages: cold.Report.Timings,
			WarmRuns:   *warmRuns,
			Unrouted:   cold.Unrouted,
		}
		for i := 0; i < *warmRuns; i++ {
			warm, err := srv.GenerateV2(ctx, &req)
			if err != nil {
				return fmt.Errorf("workload %s (warm %d): %w", w, i, err)
			}
			if !warm.Cached {
				return fmt.Errorf("workload %s: warm request %d missed the cache", w, i)
			}
			if i == 0 || warm.ElapsedMs < res.WarmMs {
				res.WarmMs = warm.ElapsedMs
			}
		}
		if res.WarmMs > 0 {
			res.Speedup = res.ColdMs / res.WarmMs
		}

		// Route-workers sweep: same request, cache off, each worker
		// count best-of-two. Only the route stage is compared — parse,
		// place and render are identical work at every point.
		var seqMs, bestParMs float64
		for _, workers := range sweep {
			sreq := req
			sreq.Options.RouteWorkers = workers
			var best float64
			for rep := 0; rep < 2; rep++ {
				r, err := sweepSrv.GenerateV2(ctx, &sreq)
				if err != nil {
					return fmt.Errorf("workload %s (sweep workers=%d): %w", w, workers, err)
				}
				ms := float64(r.Report.Timings.Route) / float64(time.Millisecond)
				if rep == 0 || ms < best {
					best = ms
				}
			}
			res.RouteSweep = append(res.RouteSweep, routeSweepPoint{Workers: workers, RouteMs: best})
			if workers <= 1 {
				seqMs = best
			} else if bestParMs == 0 || best < bestParMs {
				bestParMs = best
			}
		}
		if seqMs > 0 && bestParMs > 0 {
			res.ParallelSpeedup = seqMs / bestParMs
		}

		// Place-workers sweep: identical shape, comparing only the
		// place stage. route_workers is left at the request default so
		// the placement delta is the only variable.
		var seqPlaceMs, bestParPlaceMs float64
		for _, workers := range placeSweep {
			sreq := req
			sreq.Options.PlaceWorkers = workers
			var best float64
			for rep := 0; rep < 2; rep++ {
				r, err := sweepSrv.GenerateV2(ctx, &sreq)
				if err != nil {
					return fmt.Errorf("workload %s (place sweep workers=%d): %w", w, workers, err)
				}
				ms := float64(r.Report.Timings.Place) / float64(time.Millisecond)
				if rep == 0 || ms < best {
					best = ms
				}
			}
			res.PlaceSweep = append(res.PlaceSweep, placeSweepPoint{Workers: workers, PlaceMs: best})
			if workers <= 1 {
				seqPlaceMs = best
			} else if bestParPlaceMs == 0 || best < bestParPlaceMs {
				bestParPlaceMs = best
			}
		}
		if seqPlaceMs > 0 && bestParPlaceMs > 0 {
			res.PlaceParallelSpeedup = seqPlaceMs / bestParPlaceMs
		}
		res.RouteBudgetMs = routeBudget(minRouteMs(res))

		file.Results = append(file.Results, res)
		fmt.Fprintf(os.Stderr, "benchpipe: %-10s cold %8.3fms  warm %8.3fms  (%.0fx)  par-route %.2fx  par-place %.2fx\n",
			w, res.ColdMs, res.WarmMs, res.Speedup, res.ParallelSpeedup, res.PlaceParallelSpeedup)
	}

	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(b); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	// Gate after writing: the fresh record stays on disk for triage
	// even when the comparison fails the build.
	if committed != nil {
		return gateAgainst(committed, file.Results)
	}
	return nil
}

// gateMinRouteMs is the floor below which the route-budget gate does
// not apply: workloads whose committed route stage is this fast (fig61
// routes in well under a millisecond) are noise-dominated, so a 20%
// band around them would gate scheduler jitter, not regressions.
const gateMinRouteMs = 50

// routeBudget derives the regression budget from a measured route
// time: 20% headroom over the committed number.
func routeBudget(routeMs float64) float64 { return routeMs * 1.2 }

// minRouteMs is a workload's best observed sequential route time: the
// cold stage or any workers<=1 sweep point, whichever is lower. Both
// budget and gate use this minimum — a single cold measurement swings
// ±30% on a busy single-core runner, and gating noise against noise
// would make the 20% band meaningless.
func minRouteMs(r workloadResult) float64 {
	ms := durMs(r.ColdStages.Route)
	for _, p := range r.RouteSweep {
		if p.Workers <= 1 && p.RouteMs > 0 && p.RouteMs < ms {
			ms = p.RouteMs
		}
	}
	return ms
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

// gateAgainst compares the fresh results with the committed bench
// record. Two checks per workload present in both files:
//
//   - the fresh cold route_ms must not exceed the committed budget
//     (route_budget_ms, or 1.2x the committed route_ms for records
//     that predate the budget field) — skipped for noise-dominated
//     workloads under gateMinRouteMs;
//   - parallel_speedup must stay >= 1.0, checked only on hosts with
//     4+ CPUs (on smaller hosts the sweep measures scheduling
//     overhead, not parallelism — see the cpus field).
func gateAgainst(committed *benchFile, fresh []workloadResult) error {
	byName := map[string]workloadResult{}
	for _, r := range fresh {
		byName[r.Workload] = r
	}
	var failures []string
	for _, c := range committed.Results {
		r, ok := byName[c.Workload]
		if !ok {
			continue
		}
		cms := minRouteMs(c)
		if cms >= gateMinRouteMs {
			budget := c.RouteBudgetMs
			if budget == 0 {
				budget = routeBudget(cms)
			}
			if got := minRouteMs(r); got > budget {
				failures = append(failures, fmt.Sprintf(
					"%s: best route %.3fms exceeds committed budget %.3fms (committed best %.3fms)",
					c.Workload, got, budget, cms))
			}
		}
		if runtime.NumCPU() >= 4 && r.ParallelSpeedup > 0 && r.ParallelSpeedup < 1.0 {
			failures = append(failures, fmt.Sprintf(
				"%s: parallel_speedup %.2f < 1.0 on a %d-CPU host",
				c.Workload, r.ParallelSpeedup, runtime.NumCPU()))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate against committed bench failed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "benchpipe: gate passed (route budgets held, parallel speedup ok)")
	return nil
}
