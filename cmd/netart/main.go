// Netart is the combined automatic schematic diagram generator: the
// placement and routing phases of Koster & Stok (EUT 89-E-219) run back
// to back, turning an Appendix A network description into a rendered
// schematic.
//
// Usage:
//
//	netart -demo fig61|datapath|life [render flags]
//	netart -table61
//	netart [options] net-list-file call-file [io-file]
//
// Render flags: -ascii (print a character rendering), -svg FILE,
// -esc FILE (ESCHER diagram). Placement knobs match pablo (-p -b -c -e
// -i -s); routing knobs match eureka (-swap, -noclaims, -route-order,
// -route-window).
// -trace prints the per-stage span tree (wall time, outcome, stage
// attributes such as partition counts and wavefront expansions) to
// stderr after generation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"netart/internal/cli"
	"netart/internal/gen"
	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netart:", err)
		os.Exit(1)
	}
}

func run() error {
	demo := flag.String("demo", "", "built-in workload: fig61, datapath, cpu or life")
	table := flag.Bool("table61", false, "run the full §6 suite and print Table 6.1")
	placer := flag.String("placer", "paper", "placement algorithm: paper, epitaxial, mincut, columns")
	p := flag.Int("p", 7, "maximum modules per partition")
	b := flag.Int("b", 5, "maximum string length per box")
	c := flag.Int("c", 0, "maximum outgoing nets per partition (0 = unlimited)")
	e := flag.Int("e", 0, "extra tracks around each partition")
	i := flag.Int("i", 0, "extra tracks around each box")
	s := flag.Int("s", 0, "extra tracks around each module")
	swap := flag.Bool("swap", false, "rank minimum-bend paths by length before crossings")
	noclaims := flag.Bool("noclaims", false, "disable the claimpoint extension")
	routeOrder := flag.String("route-order", "shortest",
		"net routing order: shortest (default, §7 extension) or design (the paper's order)")
	routeWindow := flag.String("route-window", "on",
		"bounded routing search windows: on (default) or off (full-plane, results identical)")
	ripup := flag.Bool("ripup", false, "rip-up-and-reroute pass for failed nets (extension)")
	routeWorkers := flag.Int("route-workers", 0,
		"speculative routing workers (0/1 = sequential; results are byte-identical)")
	placeWorkers := flag.Int("place-workers", 0,
		"parallel placement workers (0/1 = sequential; results are byte-identical)")
	verify := flag.Bool("verify-routing", false,
		"machine-check the routed geometry against the netlist before rendering")
	trace := flag.Bool("trace", false, "print the per-stage span tree to stderr")
	ascii := flag.Bool("ascii", false, "print an ASCII rendering")
	svg := flag.String("svg", "", "write an SVG rendering to FILE")
	esc := flag.String("esc", "", "write the ESCHER diagram to FILE")
	name := flag.String("name", "design", "design name")
	flag.Parse()

	if *table {
		rows, err := gen.Table61()
		if err != nil {
			return err
		}
		fmt.Print(gen.FormatTable61(rows))
		return nil
	}

	var d *netlist.Design
	switch {
	case *demo == "fig61":
		d = workload.Fig61()
		*p, *b = 6, 6
	case *demo == "datapath":
		d = workload.Datapath16()
	case *demo == "cpu":
		d = workload.CPU()
		*s, *i = 1, 1
	case *demo == "life":
		d = workload.Life27()
		*i, *e, *s = 2, 3, 1
		*p = 5
	case *demo != "":
		return fmt.Errorf("unknown demo %q (fig61, datapath, cpu, life)", *demo)
	default:
		if flag.NArg() < 2 || flag.NArg() > 3 {
			return fmt.Errorf("usage: netart [options] net-list-file call-file [io-file]")
		}
		ioFile := ""
		if flag.NArg() == 3 {
			ioFile = flag.Arg(2)
		}
		var err error
		d, err = cli.LoadDesign(*name, flag.Arg(0), flag.Arg(1), ioFile)
		if err != nil {
			return err
		}
	}

	shortest, err := route.ParseOrder(*routeOrder)
	if err != nil {
		return err
	}
	noWindow, err := route.ParseWindow(*routeWindow)
	if err != nil {
		return err
	}
	opts := gen.Options{
		Place: place.Options{
			PartSize: *p, BoxSize: *b, MaxConnections: *c,
			PartSpacing: *e, BoxSpacing: *i, ModSpacing: *s,
		},
		Route: route.Options{
			Claimpoints:        !*noclaims,
			SwapObjective:      *swap,
			OrderShortestFirst: shortest,
			NoWindow:           noWindow,
			RipUp:              *ripup,
		},
		RouteWorkers: *routeWorkers,
		PlaceWorkers: *placeWorkers,
	}
	switch *placer {
	case "paper":
		opts.Placer = gen.PlacePaper
	case "epitaxial":
		opts.Placer = gen.PlaceEpitaxial
	case "mincut":
		opts.Placer = gen.PlaceMinCut
	case "columns":
		opts.Placer = gen.PlaceLogicColumns
	default:
		return fmt.Errorf("unknown placer %q", *placer)
	}

	if *trace {
		opts.Observer = obs.NewObserver(nil, "generate")
	}
	rep, err := gen.Run(context.Background(), d, opts)
	if err != nil {
		return err
	}
	dg := rep.Diagram
	if err := dg.Verify(); err != nil {
		return fmt.Errorf("self check failed: %w", err)
	}
	if *verify && rep.Routing != nil {
		if err := route.VerifyEquivalence(rep.Routing); err != nil {
			return fmt.Errorf("equivalence check failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "equivalence: wire geometry matches the netlist")
	}
	fmt.Fprintln(os.Stderr, dg.Summary())
	if rep.Trace != nil {
		fmt.Fprint(os.Stderr, obs.FormatTree(rep.Trace))
	}

	if *ascii {
		fmt.Print(dg.ASCII())
	}
	if *svg != "" {
		if err := cli.WriteSVG(*svg, dg); err != nil {
			return err
		}
	}
	if *esc != "" || (!*ascii && *svg == "") {
		if err := cli.WriteDiagram(*esc, dg); err != nil {
			return err
		}
	}
	return nil
}
