// Quinto adds a new module to the library (Appendix B of Koster &
// Stok, EUT 89-E-219).
//
// Usage:
//
//	quinto [-loose] [file]
//
// The input (a file argument or stdin) is an Appendix B module
// description:
//
//	module <MODULE-NAME> <WIDTH> <HEIGHT>
//	<TYPE> <TERM-NAME> <X> <Y>
//
// By default the Appendix B constraint applies: width, height and
// coordinates must be divisible by 10 (the ESCHER grid); -loose accepts
// track-unit coordinates directly. The generated Appendix C template
// representation is written into $USER_LIB/<module-name> (or stdout
// when USER_LIB is unset).
//
// -check validates the new module by driving it through the full
// pipeline: a one-instance design is built with every terminal wired
// to a system contact, then placed and routed via gen.Run. A module
// whose terminals cannot all be reached (overlapping positions, pins
// off the outline) fails here instead of at first use. -trace prints
// the validation run's span tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netart/internal/gen"
	"netart/internal/library"
	"netart/internal/netlist"
	"netart/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quinto:", err)
		os.Exit(1)
	}
}

func run() error {
	loose := flag.Bool("loose", false, "accept track-unit coordinates (skip the divisible-by-10 rule)")
	check := flag.Bool("check", false, "validate the module by placing and routing a one-instance design")
	trace := flag.Bool("trace", false, "with -check: print the validation span tree to stderr")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		return fmt.Errorf("usage: quinto [-loose] [file]")
	}

	spec, err := library.ParseModuleDescription(in, !*loose)
	if err != nil {
		return err
	}

	if *check {
		if err := checkModule(spec, *trace); err != nil {
			return fmt.Errorf("module %s failed validation: %w", spec.Name, err)
		}
		fmt.Fprintf(os.Stderr, "quinto: module %s validated (placed and routed, all %d terminal(s) reachable)\n",
			spec.Name, len(spec.Terms))
	}

	dir := os.Getenv("USER_LIB")
	out := io.Writer(os.Stdout)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, spec.Name))
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Fprintf(os.Stderr, "quinto: added %s (%dx%d, %d terminals) to %s\n",
			spec.Name, spec.W, spec.H, len(spec.Terms), dir)
	}
	return library.WriteTemplateFile(out, spec, "userlib")
}

// checkModule builds a one-instance design from the new template —
// every terminal wired through its own net to a system contact — and
// runs it through the canonical gen.Run pipeline. Success means the
// module places and every terminal is routable.
func checkModule(spec netlist.TemplateSpec, trace bool) error {
	d := netlist.NewDesign("check-" + spec.Name)
	if _, err := d.AddModule("u1", spec.Name, spec.W, spec.H, spec.Terms); err != nil {
		return err
	}
	for _, t := range spec.Terms {
		if _, err := d.AddSysTerm("p_"+t.Name, netlist.InOut); err != nil {
			return err
		}
		net := "n_" + t.Name
		if err := d.Connect(net, "u1", t.Name); err != nil {
			return err
		}
		if err := d.ConnectSys(net, "p_"+t.Name); err != nil {
			return err
		}
	}

	opts := gen.DefaultOptions()
	if trace {
		opts.Observer = obs.NewObserver(nil, "check")
	}
	rep, err := gen.Run(context.Background(), d, opts)
	if err != nil {
		return err
	}
	if rep.Trace != nil {
		fmt.Fprint(os.Stderr, obs.FormatTree(rep.Trace))
	}
	if n := rep.Unrouted(); n > 0 {
		return fmt.Errorf("%d terminal net(s) unroutable", n)
	}
	return rep.Diagram.Verify()
}
