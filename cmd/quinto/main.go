// Quinto adds a new module to the library (Appendix B of Koster &
// Stok, EUT 89-E-219).
//
// Usage:
//
//	quinto [-loose] [file]
//
// The input (a file argument or stdin) is an Appendix B module
// description:
//
//	module <MODULE-NAME> <WIDTH> <HEIGHT>
//	<TYPE> <TERM-NAME> <X> <Y>
//
// By default the Appendix B constraint applies: width, height and
// coordinates must be divisible by 10 (the ESCHER grid); -loose accepts
// track-unit coordinates directly. The generated Appendix C template
// representation is written into $USER_LIB/<module-name> (or stdout
// when USER_LIB is unset).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netart/internal/library"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quinto:", err)
		os.Exit(1)
	}
}

func run() error {
	loose := flag.Bool("loose", false, "accept track-unit coordinates (skip the divisible-by-10 rule)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		return fmt.Errorf("usage: quinto [-loose] [file]")
	}

	spec, err := library.ParseModuleDescription(in, !*loose)
	if err != nil {
		return err
	}

	dir := os.Getenv("USER_LIB")
	out := io.Writer(os.Stdout)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, spec.Name))
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Fprintf(os.Stderr, "quinto: added %s (%dx%d, %d terminals) to %s\n",
			spec.Name, spec.W, spec.H, len(spec.Terms), dir)
	}
	return library.WriteTemplateFile(out, spec, "userlib")
}
