// Package resilience is the failure substrate of the netlist→schematic
// pipeline: a deterministic fault-injection framework addressed by
// named pipeline sites, panic isolation that converts crashes into
// structured StageError values, transient-error classification with
// exponential-backoff retry schedules, and resource guards that reject
// pathological inputs before they consume a worker.
//
// The package deliberately depends on nothing but the standard library
// so every layer (place, route, gen, service) can import it without
// cycles. A nil *Injector is fully functional and free: all methods
// are nil-receiver safe, so production builds pay one pointer compare
// per site when chaos testing is off.
package resilience

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one addressable fault-injection point in the pipeline.
// Sites are stable strings so they can be spelled in env vars, flags
// and test specs.
type Site string

// The named injection points threaded through the pipeline. Each is
// fired once per unit of the work it names: SiteParse per request
// parse, SitePlaceBox per placed box, SiteRouteWavefront per wavefront
// search, SiteRender per rendering.
const (
	SiteParse          Site = "parse"
	SitePlaceBox       Site = "place.box"
	SiteRouteWavefront Site = "route.wavefront"
	SiteRender         Site = "render"
)

// KnownSites lists every site the pipeline fires, in pipeline order.
func KnownSites() []Site {
	return []Site{SiteParse, SitePlaceBox, SiteRouteWavefront, SiteRender}
}

func knownSite(s Site) bool {
	for _, k := range KnownSites() {
		if k == s {
			return true
		}
	}
	return false
}

// Mode is the kind of fault a rule injects.
type Mode int

// The fault modes: return an error, panic, or sleep (artificial
// latency). Latency faults return nil from Fire after sleeping, so
// they exercise timeout/deadline paths without changing control flow.
const (
	ModeError Mode = iota
	ModePanic
	ModeLatency
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeLatency:
		return "latency"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

func parseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "panic":
		return ModePanic, nil
	case "latency":
		return ModeLatency, nil
	default:
		return 0, fmt.Errorf("resilience: unknown fault mode %q (error, panic, latency)", s)
	}
}

// Rule arms one fault at one site.
type Rule struct {
	Site Site
	Mode Mode
	// Prob is the per-Fire probability in (0,1]; 0 means 1 (always).
	Prob float64
	// Latency is the sleep of a ModeLatency fault (default 10ms).
	Latency time.Duration
	// Count caps how many times the rule may fire; 0 means unlimited.
	Count int
}

type armedRule struct {
	rule  Rule
	fires int
}

func (a *armedRule) spent() bool {
	return a.rule.Count > 0 && a.fires >= a.rule.Count
}

// InjectedError is the error returned by a ModeError fault. It is
// transient by definition: the fault simulates a recoverable condition,
// so retry layers treat it as worth another attempt.
type InjectedError struct {
	Site Site
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("resilience: injected fault at %s", e.Site)
}

// Transient marks injected errors as retryable (see IsTransient).
func (e *InjectedError) Transient() bool { return true }

// InjectedPanic is the value a ModePanic fault panics with; Recover
// detects it to classify the resulting StageError as transient.
type InjectedPanic struct {
	Site Site
}

// String implements fmt.Stringer.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected panic at %s", p.Site)
}

// Injector holds the armed fault rules of one pipeline instance. The
// zero of usefulness is the nil Injector: Fire, Enabled and Counts are
// all nil-safe, so call sites never branch on configuration.
//
// Determinism: all probability draws come from one seeded PRNG behind
// the injector's mutex, so a single-threaded pipeline run with a fixed
// seed produces an identical fault sequence every time. Concurrent
// runs interleave draws but each individual decision stays seeded.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	bySite map[Site][]*armedRule
	nrules int
	fired  map[Site]uint64
	// sleep is stubbed in tests; production uses time.Sleep.
	sleep func(time.Duration)
}

// NewInjector returns an empty injector with a deterministic PRNG.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		bySite: map[Site][]*armedRule{},
		fired:  map[Site]uint64{},
		sleep:  time.Sleep,
	}
}

// Arm adds one rule. Unknown sites are rejected so typos in chaos
// specs fail loudly instead of silently never firing.
func (in *Injector) Arm(r Rule) error {
	if !knownSite(r.Site) {
		return fmt.Errorf("resilience: unknown site %q (known: %v)", r.Site, KnownSites())
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("resilience: rule probability %v out of [0,1]", r.Prob)
	}
	if r.Prob == 0 {
		r.Prob = 1
	}
	if r.Mode == ModeLatency && r.Latency <= 0 {
		r.Latency = 10 * time.Millisecond
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.bySite[r.Site] = append(in.bySite[r.Site], &armedRule{rule: r})
	in.nrules++
	return nil
}

// Enabled reports whether any rule is armed. Nil-safe; the pipeline
// uses it to skip work (e.g. result caching) that chaos runs would
// poison.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nrules > 0
}

// Fire evaluates the rules armed at site. It returns an *InjectedError
// (ModeError), panics with InjectedPanic (ModePanic), or sleeps and
// returns nil (ModeLatency). With no matching rule — or a nil injector
// — it returns nil. At most one rule fires per call, in Arm order.
func (in *Injector) Fire(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var act *armedRule
	for _, r := range in.bySite[site] {
		if r.spent() {
			continue
		}
		if r.rule.Prob >= 1 || in.rng.Float64() < r.rule.Prob {
			act = r
			break
		}
	}
	if act == nil {
		in.mu.Unlock()
		return nil
	}
	act.fires++
	in.fired[site]++
	mode, lat, sleep := act.rule.Mode, act.rule.Latency, in.sleep
	in.mu.Unlock()

	switch mode {
	case ModePanic:
		panic(InjectedPanic{Site: site})
	case ModeLatency:
		sleep(lat)
		return nil
	default:
		return &InjectedError{Site: site}
	}
}

// Counts reports how many faults have fired per site (for tests and
// chaos-run assertions). Nil-safe.
func (in *Injector) Counts() map[Site]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]uint64, len(in.fired))
	for s, n := range in.fired {
		out[s] = n
	}
	return out
}

// String renders the armed rules for logs, in deterministic order.
func (in *Injector) String() string {
	if in == nil {
		return "<no faults>"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var sites []string
	for s := range in.bySite {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var parts []string
	for _, s := range sites {
		for _, r := range in.bySite[Site(s)] {
			c := fmt.Sprintf("%s:%s:p=%g", s, r.rule.Mode, r.rule.Prob)
			if r.rule.Mode == ModeLatency {
				c += ":" + r.rule.Latency.String()
			}
			if r.rule.Count > 0 {
				c += fmt.Sprintf(":x%d", r.rule.Count)
			}
			parts = append(parts, c)
		}
	}
	if len(parts) == 0 {
		return "<no faults>"
	}
	return strings.Join(parts, ",")
}

// ParseSpec compiles a fault-spec string into an injector. The spec is
// a comma- or semicolon-separated list of clauses:
//
//	site:mode[:TOKEN]...
//
// where site is one of parse, place.box, route.wavefront, render; mode
// is error, panic or latency; and each optional TOKEN is either a
// probability ("0.25"), a duration ("15ms", latency mode only), or a
// firing cap ("x3"). Examples:
//
//	route.wavefront:error                 always fail every search
//	render:panic:0.1                      panic 10% of renders
//	parse:latency:0.5:20ms                20ms stall on half the parses
//	place.box:error:x2                    fail the first two boxes only
//
// An empty spec returns (nil, nil): the nil injector, zero cost.
func ParseSpec(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := NewInjector(seed)
	for _, clause := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fields := strings.Split(clause, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("resilience: clause %q needs at least site:mode", clause)
		}
		mode, err := parseMode(fields[1])
		if err != nil {
			return nil, err
		}
		r := Rule{Site: Site(fields[0]), Mode: mode}
		for _, tok := range fields[2:] {
			switch {
			case strings.HasPrefix(tok, "x"):
				n, err := strconv.Atoi(tok[1:])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("resilience: clause %q: bad count %q", clause, tok)
				}
				r.Count = n
			default:
				if p, err := strconv.ParseFloat(tok, 64); err == nil {
					r.Prob = p
					continue
				}
				if d, err := time.ParseDuration(tok); err == nil {
					r.Latency = d
					continue
				}
				return nil, fmt.Errorf("resilience: clause %q: token %q is neither probability, duration nor xN", clause, tok)
			}
		}
		if err := in.Arm(r); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Env variable names read by FromEnv.
const (
	EnvFaults    = "NETART_FAULTS"
	EnvFaultSeed = "NETART_FAULT_SEED"
)

// FromEnv builds an injector from NETART_FAULTS / NETART_FAULT_SEED.
// Unset or empty NETART_FAULTS yields (nil, nil), keeping production
// runs injector-free without any configuration.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvFaults)
	if spec == "" {
		return nil, nil
	}
	seed := int64(1)
	if s := os.Getenv(EnvFaultSeed); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("resilience: %s=%q is not an integer", EnvFaultSeed, s)
		}
		seed = v
	}
	return ParseSpec(spec, seed)
}
