package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// StageError is a panic converted into a value: the pipeline stage it
// escaped from, the panic payload, and a trimmed stack. The service
// layer surfaces these in /v1/stats instead of letting one poisoned
// request crash the daemon.
type StageError struct {
	Stage string
	Cause any
	Stack string
}

// Error implements error.
func (e *StageError) Error() string {
	return fmt.Sprintf("resilience: panic in stage %q: %v", e.Stage, e.Cause)
}

// Transient reports whether the panic was an injected fault (chaos
// testing) rather than a genuine bug; only injected panics are safe to
// retry automatically.
func (e *StageError) Transient() bool {
	_, ok := e.Cause.(InjectedPanic)
	return ok
}

// AsStageError unwraps err down to a *StageError, if one is present.
func AsStageError(err error) (*StageError, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// maxStackLines bounds the retained stack trace: enough frames to find
// the crash site, small enough for a JSON stats payload.
const maxStackLines = 24

func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	if len(lines) > maxStackLines {
		lines = append(lines[:maxStackLines], "...")
	}
	return strings.Join(lines, "\n")
}

// Recover runs fn and converts any panic into a *StageError tagged
// with the stage name. Non-panicking calls pass their error through
// untouched. This is the isolation boundary every worker-pool task and
// every pipeline stage runs under.
func Recover(stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: stage, Cause: r, Stack: trimStack(debug.Stack())}
		}
	}()
	return fn()
}
