package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.Fire(SiteParse); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Enabled() {
		t.Fatal("nil injector claims enabled")
	}
	if in.Counts() != nil {
		t.Fatal("nil injector has counts")
	}
	if got := in.String(); got != "<no faults>" {
		t.Fatalf("nil injector String() = %q", got)
	}
}

func TestInjectorErrorMode(t *testing.T) {
	in := NewInjector(1)
	if err := in.Arm(Rule{Site: SiteRouteWavefront, Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	err := in.Fire(SiteRouteWavefront)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteRouteWavefront {
		t.Fatalf("want InjectedError at route.wavefront, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatal("injected error must classify transient")
	}
	// Other sites stay silent.
	if err := in.Fire(SiteRender); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if got := in.Counts()[SiteRouteWavefront]; got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestInjectorPanicMode(t *testing.T) {
	in := NewInjector(1)
	if err := in.Arm(Rule{Site: SiteRender, Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	err := Recover("render", func() error { return in.Fire(SiteRender) })
	se, ok := AsStageError(err)
	if !ok {
		t.Fatalf("want StageError, got %v", err)
	}
	if se.Stage != "render" {
		t.Fatalf("stage = %q", se.Stage)
	}
	if _, ok := se.Cause.(InjectedPanic); !ok {
		t.Fatalf("cause = %#v, want InjectedPanic", se.Cause)
	}
	if !se.Transient() || !IsTransient(err) {
		t.Fatal("injected panic must classify transient")
	}
	if se.Stack == "" {
		t.Fatal("StageError lost its stack")
	}
}

func TestInjectorLatencyMode(t *testing.T) {
	in := NewInjector(1)
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept = d }
	if err := in.Arm(Rule{Site: SiteParse, Mode: ModeLatency, Latency: 42 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := in.Fire(SiteParse); err != nil {
		t.Fatalf("latency fault returned error: %v", err)
	}
	if slept != 42*time.Millisecond {
		t.Fatalf("slept %v, want 42ms", slept)
	}
}

func TestInjectorCountCapAndDeterminism(t *testing.T) {
	in := NewInjector(7)
	if err := in.Arm(Rule{Site: SiteParse, Mode: ModeError, Count: 2}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Fire(SiteParse) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("capped rule fired %d times, want 2", fired)
	}

	// Same seed + same probability sequence → identical decisions.
	seq := func(seed int64) string {
		in := NewInjector(seed)
		if err := in.Arm(Rule{Site: SiteRender, Mode: ModeError, Prob: 0.5}); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.Fire(SiteRender) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	if seq(3) != seq(3) {
		t.Fatal("same seed produced different fault sequences")
	}
	if seq(3) == seq(4) {
		t.Fatal("different seeds produced identical sequences (suspicious)")
	}
}

func TestInjectorRejectsBadRules(t *testing.T) {
	in := NewInjector(1)
	if err := in.Arm(Rule{Site: "nonsense", Mode: ModeError}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := in.Arm(Rule{Site: SiteParse, Mode: ModeError, Prob: 1.5}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("route.wavefront:error, render:panic:0.1; parse:latency:0.5:20ms, place.box:error:x2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Enabled() {
		t.Fatal("spec armed nothing")
	}
	s := in.String()
	for _, want := range []string{"route.wavefront:error:p=1", "render:panic:p=0.1", "parse:latency:p=0.5:20ms", "place.box:error:p=1:x2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}

	if in, err := ParseSpec("", 1); err != nil || in != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{"route.wavefront", "parse:flaky", "nowhere:error", "parse:error:zz", "parse:error:x0"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRecoverPassthrough(t *testing.T) {
	want := errors.New("plain")
	if got := Recover("s", func() error { return want }); got != want {
		t.Fatalf("got %v", got)
	}
	if got := Recover("s", func() error { return nil }); got != nil {
		t.Fatalf("got %v", got)
	}
	err := Recover("route", func() error { panic("boom") })
	se, ok := AsStageError(err)
	if !ok || se.Stage != "route" || se.Cause != "boom" {
		t.Fatalf("got %#v", err)
	}
	if se.Transient() {
		t.Fatal("genuine panic classified transient")
	}
	// Wrapped StageErrors still unwrap.
	wrapped := fmt.Errorf("outer: %w", err)
	if _, ok := AsStageError(wrapped); !ok {
		t.Fatal("wrapped StageError not found")
	}
}

func TestBackoffScheduleBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	lo := func(d time.Duration) time.Duration { return d / 2 }
	for retry, step := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond, 4: 80 * time.Millisecond, 9: 80 * time.Millisecond} {
		min := p.Backoff(retry, func() float64 { return 0 })
		max := p.Backoff(retry, func() float64 { return 0.999999 })
		if min != lo(step) {
			t.Errorf("retry %d: floor %v, want %v", retry, min, lo(step))
		}
		if max < lo(step) || max > step {
			t.Errorf("retry %d: ceiling %v outside (%v, %v]", retry, max, lo(step), step)
		}
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	perm := errors.New("permanent")
	n, err := Retry(context.Background(), RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}, nil, nil, func(int) error {
		calls++
		return perm
	})
	if n != 1 || calls != 1 || !errors.Is(err, perm) {
		t.Fatalf("permanent error retried: n=%d calls=%d err=%v", n, calls, err)
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	calls := 0
	n, err := Retry(context.Background(), RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}, nil, nil, func(int) error {
		calls++
		if calls < 3 {
			return &InjectedError{Site: SiteRender}
		}
		return nil
	})
	if err != nil || n != 3 || calls != 3 {
		t.Fatalf("n=%d calls=%d err=%v", n, calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	n, err := Retry(ctx, RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour}, nil, nil, func(int) error {
		calls++
		return &InjectedError{Site: SiteParse}
	})
	if n != 1 || calls != 1 {
		t.Fatalf("cancelled retry kept going: n=%d calls=%d", n, calls)
	}
	if err == nil {
		t.Fatal("lost the attempt error")
	}
}

func TestGuards(t *testing.T) {
	var zero Guards
	if err := zero.CheckCounts(1<<30, 1<<30); err != nil {
		t.Fatalf("zero guards rejected: %v", err)
	}
	if err := zero.CheckArea(1<<15, 1<<15); err != nil {
		t.Fatalf("zero guards rejected area: %v", err)
	}

	g := Guards{MaxModules: 10, MaxNets: 20, MaxPlaneArea: 100}
	if err := g.CheckCounts(10, 20); err != nil {
		t.Fatalf("at-limit rejected: %v", err)
	}
	err := g.CheckCounts(11, 0)
	le, ok := AsLimitError(err)
	if !ok || le.Got != 11 || le.Limit != 10 {
		t.Fatalf("got %v", err)
	}
	if _, ok := AsLimitError(g.CheckCounts(0, 21)); !ok {
		t.Fatal("net cap not enforced")
	}
	if err := g.CheckArea(10, 10); err != nil {
		t.Fatalf("at-limit area rejected: %v", err)
	}
	if _, ok := AsLimitError(g.CheckArea(101, 1)); !ok {
		t.Fatal("area cap not enforced")
	}
	// Overflow-safe.
	if _, ok := AsLimitError(g.CheckArea(1<<31, 1<<31)); !ok {
		t.Fatal("overflowing area slipped past the guard")
	}
	if IsTransient(err) {
		t.Fatal("limit errors must be permanent")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvFaults, "")
	if in, err := FromEnv(); err != nil || in != nil {
		t.Fatalf("empty env: (%v, %v)", in, err)
	}
	t.Setenv(EnvFaults, "render:error:0.5")
	t.Setenv(EnvFaultSeed, "99")
	in, err := FromEnv()
	if err != nil || !in.Enabled() {
		t.Fatalf("env spec failed: (%v, %v)", in, err)
	}
	t.Setenv(EnvFaultSeed, "not-a-number")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
}
