package resilience

import (
	"errors"
	"fmt"
)

// LimitError reports an input that exceeds a configured resource cap.
// The service layer maps it to HTTP 422: the request is well-formed
// but unprocessable at this deployment's limits, and retrying it
// unchanged can never help (Transient() is deliberately absent).
type LimitError struct {
	What  string
	Got   int
	Limit int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("resilience: %s %d exceeds limit %d", e.What, e.Got, e.Limit)
}

// AsLimitError unwraps err down to a *LimitError, if one is present.
func AsLimitError(err error) (*LimitError, bool) {
	var le *LimitError
	if errors.As(err, &le) {
		return le, true
	}
	return nil, false
}

// Guards holds the resource caps applied before a request reaches the
// worker pool (counts) and before the router allocates its plane
// (area). Zero fields disable the corresponding check, so the zero
// Guards is a no-op.
type Guards struct {
	MaxModules   int
	MaxNets      int
	MaxPlaneArea int
}

// CheckCounts validates the design-size caps.
func (g Guards) CheckCounts(modules, nets int) error {
	if g.MaxModules > 0 && modules > g.MaxModules {
		return &LimitError{What: "module count", Got: modules, Limit: g.MaxModules}
	}
	if g.MaxNets > 0 && nets > g.MaxNets {
		return &LimitError{What: "net count", Got: nets, Limit: g.MaxNets}
	}
	return nil
}

// CheckArea validates the routing-plane area cap for a w×h plane,
// overflow-safe for degenerate inputs.
func (g Guards) CheckArea(w, h int) error {
	if g.MaxPlaneArea <= 0 {
		return nil
	}
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	if a := int64(w) * int64(h); a > int64(g.MaxPlaneArea) {
		got := g.MaxPlaneArea + 1 // clamp for the report on 32-bit overflow
		if a <= int64(^uint(0)>>1) {
			got = int(a)
		}
		return &LimitError{What: "routing-plane area", Got: got, Limit: g.MaxPlaneArea}
	}
	return nil
}
