package resilience

import (
	"context"
	"errors"
	"time"
)

// transient is the classification interface: errors that opt in to
// automatic retry implement Transient() true.
type transient interface {
	Transient() bool
}

// IsTransient walks the unwrap chain of err and reports whether any
// link classifies itself as transient (worth retrying). Injected
// faults are transient; StageErrors are transient only when the panic
// was injected; everything else defaults to permanent — retrying a
// genuine bug or a malformed input just burns workers.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transient); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// RetryPolicy is a bounded exponential-backoff schedule with full
// jitter. The zero value means "one attempt, no retries", so callers
// that never configure retry get the old behavior. Both the /v1/batch
// item path and the fleet proxy layer (internal/store/cluster) retry
// through this one policy — RetryPolicy, Backoff and IsTransient are
// the repo's single retry stack, there is no second one.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (<=1 disables retry).
	MaxAttempts int
	// BaseDelay seeds the schedule (default 10ms); retry n waits
	// BaseDelay·2^(n-1) scaled by jitter.
	BaseDelay time.Duration
	// MaxDelay caps any single wait (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// Backoff returns the wait before retry number `retry` (1-based): the
// capped exponential step scaled into [½,1] by rnd, a "equal jitter"
// schedule that decorrelates the retry storms of concurrent batch
// items while keeping a floor so tests can bound the delay from both
// sides. rnd must return values in [0,1); pass rand.Float64 or a
// deterministic stub.
func (p RetryPolicy) Backoff(retry int, rnd func() float64) time.Duration {
	p = p.withDefaults()
	if retry < 1 {
		retry = 1
	}
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Equal jitter: half fixed, half uniform.
	return d/2 + time.Duration(rnd()*float64(d/2))
}

// Retry runs fn until it succeeds, the classifier rejects the error,
// attempts are exhausted, or ctx is done. classify decides
// retryability (nil means IsTransient); rnd feeds the jitter (nil
// means a fixed mid-range 0.5 for determinism). It returns the number
// of attempts actually made and the final error.
func Retry(ctx context.Context, p RetryPolicy, classify func(error) bool, rnd func() float64, fn func(attempt int) error) (int, error) {
	p = p.withDefaults()
	if classify == nil {
		classify = IsTransient
	}
	if rnd == nil {
		rnd = func() float64 { return 0.5 }
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn(attempt)
		if err == nil || attempt >= p.MaxAttempts || !classify(err) {
			return attempt, err
		}
		if ctx != nil {
			t := time.NewTimer(p.Backoff(attempt, rnd))
			select {
			case <-ctx.Done():
				t.Stop()
				return attempt, err
			case <-t.C:
			}
		} else {
			time.Sleep(p.Backoff(attempt, rnd))
		}
	}
}
