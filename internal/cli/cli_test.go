package cli

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netart/internal/gen"
	"netart/internal/library"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadDesignFromFiles(t *testing.T) {
	dir := t.TempDir()
	netF := writeFile(t, dir, "d.net", "w g0 Y\nw g1 A\nx root X\nx g0 A\n")
	callF := writeFile(t, dir, "d.call", "g0 INV\ng1 INV\n")
	ioF := writeFile(t, dir, "d.io", "X in\n")
	d, err := LoadDesign("d", netF, callF, ioF)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Modules) != 2 || len(d.Nets) != 2 || len(d.SysTerms) != 1 {
		t.Errorf("loaded %d modules, %d nets, %d terminals",
			len(d.Modules), len(d.Nets), len(d.SysTerms))
	}
}

func TestLoadDesignWithoutIO(t *testing.T) {
	dir := t.TempDir()
	netF := writeFile(t, dir, "d.net", "w g0 Y\nw g1 A\n")
	callF := writeFile(t, dir, "d.call", "g0 INV\ng1 INV\n")
	d, err := LoadDesign("d", netF, callF, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SysTerms) != 0 {
		t.Error("unexpected system terminals")
	}
}

func TestLoadDesignErrors(t *testing.T) {
	dir := t.TempDir()
	netF := writeFile(t, dir, "d.net", "w g0 Y\n")
	callF := writeFile(t, dir, "d.call", "g0 NOSUCH\n")
	if _, err := LoadDesign("d", netF, callF, ""); err == nil {
		t.Error("unknown template accepted")
	}
	if _, err := LoadDesign("d", filepath.Join(dir, "missing"), callF, ""); err == nil {
		t.Error("missing net file accepted")
	}
	if _, err := LoadDesign("d", netF, filepath.Join(dir, "missing"), ""); err == nil {
		t.Error("missing call file accepted")
	}
	if _, err := LoadDesign("d", netF, callF, filepath.Join(dir, "missing")); err == nil {
		t.Error("missing io file accepted")
	}
}

func TestUserLibraryExtension(t *testing.T) {
	dir := t.TempDir()
	// A valid Appendix C template file plus a junk file to skip.
	spec := library.Builtin()
	and2, err := spec.Template("AND2")
	if err != nil {
		t.Fatal(err)
	}
	and2.Name = "CUSTOM_GATE"
	f, err := os.Create(filepath.Join(dir, "CUSTOM_GATE"))
	if err != nil {
		t.Fatal(err)
	}
	if err := library.WriteTemplateFile(f, and2, "userlib"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	writeFile(t, dir, "junk.txt", "not a template\n")

	t.Setenv("USER_LIB", dir)
	lib, err := UserLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if !lib.Has("CUSTOM_GATE") {
		t.Error("user template not loaded")
	}
	if !lib.Has("AND2") {
		t.Error("builtin templates lost")
	}
}

func TestUserLibraryMissingDir(t *testing.T) {
	t.Setenv("USER_LIB", filepath.Join(t.TempDir(), "nope"))
	if _, err := UserLibrary(); err == nil {
		t.Error("missing USER_LIB directory accepted")
	}
}

func TestDiagramFileRoundTrip(t *testing.T) {
	rep, err := gen.Run(context.Background(), workload.Fig61(), gen.Options{
		Place: place.Options{PartSize: 6, BoxSize: 6},
		Route: route.Options{Claimpoints: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	dg := rep.Diagram
	dir := t.TempDir()
	p := filepath.Join(dir, "out.esc")
	if err := WriteDiagram(p, dg); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadDiagram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Modules) != 6 {
		t.Errorf("round trip: %d instances", len(parsed.Modules))
	}
	if _, err := ReadDiagram(filepath.Join(dir, "missing.esc")); err == nil {
		t.Error("missing diagram accepted")
	}
}

func TestWriteSVGFile(t *testing.T) {
	rep, err := gen.Run(context.Background(), workload.Fig61(), gen.Options{
		Place: place.Options{PartSize: 6, BoxSize: 6},
		Route: route.Options{Claimpoints: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	dg := rep.Diagram
	p := filepath.Join(t.TempDir(), "out.svg")
	if err := WriteSVG(p, dg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG output missing header")
	}
}
