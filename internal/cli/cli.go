// Package cli holds the file plumbing shared by the pablo, eureka,
// quinto and netart commands: loading Appendix A network descriptions
// against the module library, reading and writing ESCHER diagrams, and
// extending the builtin library with the user's Appendix C template
// files.
package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netart/internal/library"
	"netart/internal/netlist"
	"netart/internal/schematic"
)

// UserLibrary returns the builtin library extended with every Appendix
// C template file found in the $USER_LIB directory (the environment
// variable the paper's tools use, Appendix B/E/F).
func UserLibrary() (*library.Library, error) {
	lib := library.Builtin()
	dir := os.Getenv("USER_LIB")
	if dir == "" {
		return lib, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("USER_LIB: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		spec, err := library.ReadTemplateFile(f)
		f.Close()
		if err != nil {
			continue // not a template file; skip
		}
		if !lib.Has(spec.Name) {
			if err := lib.Add(spec); err != nil {
				return nil, err
			}
		}
	}
	return lib, nil
}

// LoadDesign reads the Appendix A triple (net-list, call, optional io
// file) and resolves templates against the user library.
func LoadDesign(name, netFile, callFile, ioFile string) (*netlist.Design, error) {
	lib, err := UserLibrary()
	if err != nil {
		return nil, err
	}
	callR, err := os.Open(callFile)
	if err != nil {
		return nil, err
	}
	defer callR.Close()
	netR, err := os.Open(netFile)
	if err != nil {
		return nil, err
	}
	defer netR.Close()
	var ioR io.Reader
	if ioFile != "" {
		f, err := os.Open(ioFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ioR = f
	}
	return netlist.Load(name, callR, netR, ioR, lib)
}

// ReadDiagram parses an ESCHER diagram file.
func ReadDiagram(path string) (*schematic.ESCHERDiagram, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return schematic.ReadESCHER(f)
}

// WriteDiagram writes an ESCHER diagram to path, or stdout when path is
// empty.
func WriteDiagram(path string, dg *schematic.Diagram) error {
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return schematic.WriteESCHER(w, dg, "userlib")
}

// WriteSVG writes the diagram as SVG to path, or stdout when empty.
func WriteSVG(path string, dg *schematic.Diagram) error {
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dg.WriteSVG(w)
}
