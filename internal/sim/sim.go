// Package sim is the functional stand-in for the ESCHER+ simulator the
// paper used to validate routed diagrams (§6: "To check whether the
// routing has been done correctly, the schematic diagram has been
// simulated by the simulator in ESCHER+. The results were positive.").
//
// It simulates a diagram at the gate level in two steps:
//
//  1. Extraction: the electrical connectivity is rebuilt from the
//     routed artwork geometry alone — two wire segments are joined
//     when they share a point at which at least one of them ends
//     (corners, junctions, terminals); two segments merely crossing at
//     interior points stay separate nets. Routing errors therefore
//     surface as shorts, opens or mis-binds during extraction.
//  2. Evaluation: modules evaluate by template semantics (the builtin
//     gate library plus the LIFE cell), combinational logic to a
//     fixpoint, sequential elements on an explicit clock step.
package sim

import (
	"fmt"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/route"
	"netart/internal/schematic"
)

// Bit is a simulated logic value; the simulator is two-valued with an
// explicit undefined state for undriven nets.
type Bit int8

// The logic values.
const (
	X Bit = iota - 1 // undefined / undriven
	Lo
	Hi
)

// String implements fmt.Stringer.
func (b Bit) String() string {
	switch b {
	case Lo:
		return "0"
	case Hi:
		return "1"
	default:
		return "x"
	}
}

// bitOf converts a bool.
func bitOf(v bool) Bit {
	if v {
		return Hi
	}
	return Lo
}

// ExtractedNet is one electrical net recovered from the artwork.
type ExtractedNet struct {
	Terminals []*netlist.Terminal
}

// Extract rebuilds the connectivity of a routed diagram from its wire
// geometry. It returns one ExtractedNet per connected wire component
// (plus singleton pseudo-nets for terminals the artwork leaves
// unconnected are NOT returned — opens show up as missing terminals).
func Extract(dg *schematic.Diagram) ([]ExtractedNet, error) {
	if dg.Routing == nil {
		return nil, fmt.Errorf("sim: diagram has no routing to extract")
	}
	// Collect every segment of every net, forgetting net identity.
	var segs []route.Segment
	for _, rn := range dg.Routing.Nets {
		segs = append(segs, rn.Segments...)
	}
	// Union-find over segments: joined when sharing a point where at
	// least one of the two has an endpoint. Interior-interior sharing
	// is a crossing and does not connect.
	parent := make([]int, len(segs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Index segments by the points they touch.
	type touch struct {
		seg int
		end bool // the point is an endpoint of the segment
	}
	at := map[geom.Point][]touch{}
	for i, s := range segs {
		for _, p := range s.Points() {
			at[p] = append(at[p], touch{i, p == s.A || p == s.B})
		}
	}
	for _, ts := range at {
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if ts[i].end || ts[j].end {
					union(ts[i].seg, ts[j].seg)
				}
			}
		}
	}

	// Attach terminals to the component owning their point.
	comp := map[int][]*netlist.Terminal{}
	attach := func(t *netlist.Terminal) error {
		p, err := dg.Placement.TermPos(t)
		if err != nil {
			return err
		}
		for _, tc := range at[p] {
			comp[find(tc.seg)] = append(comp[find(tc.seg)], t)
			return nil
		}
		return nil // open: terminal not on any wire
	}
	for _, m := range dg.Design.Modules {
		for _, t := range m.Terms {
			if t.Net == nil {
				continue
			}
			if err := attach(t); err != nil {
				return nil, err
			}
		}
	}
	for _, st := range dg.Design.SysTerms {
		if st.Net == nil {
			continue
		}
		if err := attach(st); err != nil {
			return nil, err
		}
	}

	var out []ExtractedNet
	for _, terms := range comp {
		out = append(out, ExtractedNet{Terminals: terms})
	}
	return out, nil
}

// CheckExtraction compares the artwork connectivity against the
// intended netlist: every complete net of the design must come back as
// exactly one component carrying exactly its own terminals. This is
// the "results were positive" check of §6 in executable form.
func CheckExtraction(dg *schematic.Diagram) error {
	nets, err := Extract(dg)
	if err != nil {
		return err
	}
	byTerm := map[*netlist.Terminal]int{}
	for i, en := range nets {
		for _, t := range en.Terminals {
			if prev, dup := byTerm[t]; dup && prev != i {
				return fmt.Errorf("sim: terminal %s extracted into two nets", t.Label())
			}
			byTerm[t] = i
		}
	}
	for _, rn := range dg.Routing.Nets {
		if !rn.OK() || rn.Net.Degree() < 2 {
			continue
		}
		want := rn.Net.Terms
		id, ok := byTerm[want[0]]
		if !ok {
			return fmt.Errorf("sim: net %q: terminal %s is open in the artwork",
				rn.Net.Name, want[0].Label())
		}
		for _, t := range want[1:] {
			got, ok := byTerm[t]
			if !ok {
				return fmt.Errorf("sim: net %q: terminal %s is open in the artwork",
					rn.Net.Name, t.Label())
			}
			if got != id {
				return fmt.Errorf("sim: net %q split in the artwork at %s",
					rn.Net.Name, t.Label())
			}
		}
		// No foreign terminal may share the component (short).
		for _, t := range nets[id].Terminals {
			if t.Net != rn.Net {
				return fmt.Errorf("sim: net %q shorted to %q at terminal %s",
					rn.Net.Name, t.Net.Name, t.Label())
			}
		}
	}
	return nil
}
