package sim

import (
	"fmt"

	"netart/internal/netlist"
	"netart/internal/schematic"
)

// Simulator evaluates a design over a connectivity — either the ideal
// netlist connectivity or the connectivity extracted from routed
// artwork, so a simulation run validates the artwork end to end.
type Simulator struct {
	design *netlist.Design
	// netOf maps each connected terminal to a net index; values holds
	// the current value per net index.
	netOf  map[*netlist.Terminal]int
	nNets  int
	values []Bit
	inputs map[*netlist.Terminal]Bit
	state  map[*netlist.Module]Bit // one state bit per sequential module
}

// NewFromDesign builds a simulator over the intended netlist
// connectivity.
func NewFromDesign(d *netlist.Design) *Simulator {
	s := &Simulator{
		design: d,
		netOf:  map[*netlist.Terminal]int{},
		inputs: map[*netlist.Terminal]Bit{},
		state:  map[*netlist.Module]Bit{},
	}
	for i, n := range d.Nets {
		for _, t := range n.Terms {
			s.netOf[t] = i
		}
	}
	s.nNets = len(d.Nets)
	s.values = make([]Bit, s.nNets)
	s.reset()
	return s
}

// NewFromDiagram builds a simulator over the connectivity extracted
// from the routed artwork. It fails when the extraction disagrees with
// the intended netlist (shorts, opens, splits).
func NewFromDiagram(dg *schematic.Diagram) (*Simulator, error) {
	if err := CheckExtraction(dg); err != nil {
		return nil, err
	}
	nets, err := Extract(dg)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		design: dg.Design,
		netOf:  map[*netlist.Terminal]int{},
		inputs: map[*netlist.Terminal]Bit{},
		state:  map[*netlist.Module]Bit{},
	}
	for i, en := range nets {
		for _, t := range en.Terminals {
			s.netOf[t] = i
		}
	}
	s.nNets = len(nets)
	s.values = make([]Bit, s.nNets)
	s.reset()
	return s, nil
}

func (s *Simulator) reset() {
	for i := range s.values {
		s.values[i] = X
	}
	for _, m := range s.design.Modules {
		if isSequential(m.Template) {
			s.state[m] = Lo
		}
	}
}

// SetInput drives a system input terminal.
func (s *Simulator) SetInput(name string, b Bit) error {
	st := s.design.SysTerm(name)
	if st == nil {
		return fmt.Errorf("sim: unknown system terminal %q", name)
	}
	if !st.Type.CanSink() && st.Type != netlist.In {
		return fmt.Errorf("sim: system terminal %q is not an input", name)
	}
	s.inputs[st] = b
	return nil
}

// SetState initializes the state bit of a sequential module.
func (s *Simulator) SetState(mod string, b Bit) error {
	m := s.design.Module(mod)
	if m == nil {
		return fmt.Errorf("sim: unknown module %q", mod)
	}
	if !isSequential(m.Template) {
		return fmt.Errorf("sim: module %q (%s) has no state", mod, m.Template)
	}
	s.state[m] = b
	return nil
}

// State reads a sequential module's state bit.
func (s *Simulator) State(mod string) (Bit, error) {
	m := s.design.Module(mod)
	if m == nil {
		return X, fmt.Errorf("sim: unknown module %q", mod)
	}
	b, ok := s.state[m]
	if !ok {
		return X, fmt.Errorf("sim: module %q has no state", mod)
	}
	return b, nil
}

// net reads the value of the net a terminal sits on.
func (s *Simulator) net(t *netlist.Terminal) Bit {
	i, ok := s.netOf[t]
	if !ok {
		return X
	}
	return s.values[i]
}

// Output reads a system output terminal.
func (s *Simulator) Output(name string) (Bit, error) {
	st := s.design.SysTerm(name)
	if st == nil {
		return X, fmt.Errorf("sim: unknown system terminal %q", name)
	}
	return s.net(st), nil
}

// Probe reads the net on a module terminal.
func (s *Simulator) Probe(mod, term string) (Bit, error) {
	m := s.design.Module(mod)
	if m == nil {
		return X, fmt.Errorf("sim: unknown module %q", mod)
	}
	t := m.Term(term)
	if t == nil {
		return X, fmt.Errorf("sim: unknown terminal %s.%s", mod, term)
	}
	return s.net(t), nil
}

// Eval relaxes the combinational logic to a fixpoint. Nets with
// conflicting drivers resolve to X; true combinational cycles that do
// not converge keep their X values.
func (s *Simulator) Eval() error {
	limit := s.nNets + len(s.design.Modules) + 8
	for iter := 0; iter < limit; iter++ {
		next := make([]Bit, s.nNets)
		for i := range next {
			next[i] = X
		}
		drive := func(t *netlist.Terminal, v Bit) {
			i, ok := s.netOf[t]
			if !ok || v == X {
				return
			}
			switch next[i] {
			case X:
				next[i] = v
			case v:
				// agreeing drivers
			default:
				next[i] = X // conflict
			}
		}
		for st, v := range s.inputs {
			drive(st, v)
		}
		for _, m := range s.design.Modules {
			outs := s.evalModule(m)
			for name, v := range outs {
				if t := m.Term(name); t != nil {
					drive(t, v)
				}
			}
		}
		changed := false
		for i := range next {
			if next[i] != s.values[i] {
				changed = true
			}
		}
		s.values = next
		if !changed {
			return nil
		}
	}
	return nil // fixpoint not reached: remaining nets stay X
}

// Step performs one clock cycle: settle combinational logic, latch
// every sequential module's next state simultaneously, settle again.
func (s *Simulator) Step() error {
	if err := s.Eval(); err != nil {
		return err
	}
	nextState := map[*netlist.Module]Bit{}
	for _, m := range s.design.Modules {
		if !isSequential(m.Template) {
			continue
		}
		nextState[m] = s.nextState(m)
	}
	for m, v := range nextState {
		s.state[m] = v
	}
	return s.Eval()
}

// isSequential reports whether the template holds state.
func isSequential(tpl string) bool {
	switch tpl {
	case "DFF", "REG", "LATCH", "CNT", "LIFE8", "CLKGEN", "SEQ":
		return true
	default:
		return false
	}
}

// in reads an input terminal value of m by name. A terminal with no
// net attached reads as inactive (tied low), the usual convention for
// floating inputs; a terminal on an undriven net reads X.
func (s *Simulator) in(m *netlist.Module, name string) Bit {
	t := m.Term(name)
	if t == nil {
		return X
	}
	if t.Net == nil {
		return Lo
	}
	return s.net(t)
}

// Logic helpers over three-valued bits: strict (any X in, X out) except
// where a dominant value decides (as in standard multi-valued logic).
func and(a, b Bit) Bit {
	if a == Lo || b == Lo {
		return Lo
	}
	if a == Hi && b == Hi {
		return Hi
	}
	return X
}

func or(a, b Bit) Bit {
	if a == Hi || b == Hi {
		return Hi
	}
	if a == Lo && b == Lo {
		return Lo
	}
	return X
}

func not(a Bit) Bit {
	switch a {
	case Hi:
		return Lo
	case Lo:
		return Hi
	default:
		return X
	}
}

func xor(a, b Bit) Bit {
	if a == X || b == X {
		return X
	}
	return bitOf(a != b)
}

// evalModule computes the module's output values from its input nets
// and state.
func (s *Simulator) evalModule(m *netlist.Module) map[string]Bit {
	in := func(n string) Bit { return s.in(m, n) }
	st := s.state[m]
	switch m.Template {
	case "INV":
		return map[string]Bit{"Y": not(in("A"))}
	case "BUF":
		return map[string]Bit{"Y": in("A")}
	case "AND2":
		return map[string]Bit{"Y": and(in("A"), in("B"))}
	case "OR2":
		return map[string]Bit{"Y": or(in("A"), in("B"))}
	case "NAND2":
		return map[string]Bit{"Y": not(and(in("A"), in("B")))}
	case "NOR2":
		return map[string]Bit{"Y": not(or(in("A"), in("B")))}
	case "XOR2":
		return map[string]Bit{"Y": xor(in("A"), in("B"))}
	case "XNOR2":
		return map[string]Bit{"Y": not(xor(in("A"), in("B")))}
	case "AND3":
		return map[string]Bit{"Y": and(in("A"), and(in("B"), in("C")))}
	case "OR3":
		return map[string]Bit{"Y": or(in("A"), or(in("B"), in("C")))}
	case "NAND3":
		return map[string]Bit{"Y": not(and(in("A"), and(in("B"), in("C"))))}
	case "NOR3":
		return map[string]Bit{"Y": not(or(in("A"), or(in("B"), in("C"))))}
	case "DFF":
		return map[string]Bit{"Q": st, "QN": not(st)}
	case "LATCH":
		// Transparent when EN: output follows D combinationally.
		if in("EN") == Hi {
			return map[string]Bit{"Q": in("D")}
		}
		return map[string]Bit{"Q": st}
	case "REG":
		return map[string]Bit{"Q": st}
	case "CNT":
		return map[string]Bit{"Q": st}
	case "MUX2":
		switch in("S") {
		case Hi:
			return map[string]Bit{"Y": in("B")}
		case Lo:
			return map[string]Bit{"Y": in("A")}
		default:
			return map[string]Bit{"Y": X}
		}
	case "DEMUX2":
		switch in("S") {
		case Hi:
			return map[string]Bit{"Y0": Lo, "Y1": in("A")}
		case Lo:
			return map[string]Bit{"Y0": in("A"), "Y1": Lo}
		default:
			return map[string]Bit{"Y0": X, "Y1": X}
		}
	case "ADD":
		return map[string]Bit{"S": xor(in("A"), in("B")), "CO": and(in("A"), in("B"))}
	case "ALU":
		// OP low: AND; OP high: XOR. Z flags a low result.
		var f Bit
		switch in("OP") {
		case Hi:
			f = xor(in("A"), in("B"))
		case Lo:
			f = and(in("A"), in("B"))
		default:
			f = X
		}
		return map[string]Bit{"F": f, "Z": not(f)}
	case "CMP":
		return map[string]Bit{
			"EQ": not(xor(in("A"), in("B"))),
			"GT": and(in("A"), not(in("B"))),
		}
	case "SHIFT":
		return map[string]Bit{"Y": in("A")}
	case "RAM":
		return map[string]Bit{"DOUT": st} // degenerate 1-bit memory
	case "ROM":
		return map[string]Bit{"DATA": Lo}
	case "TBUF":
		if in("EN") == Hi {
			return map[string]Bit{"Y": in("A")}
		}
		return map[string]Bit{"Y": X}
	case "CTRL":
		// A simple decode of the status and instruction inputs.
		stat, ir := in("STAT"), in("IR")
		return map[string]Bit{
			"C0": stat, "C1": not(stat), "C2": ir,
			"C3": not(ir), "C4": and(stat, ir), "C5": or(stat, ir),
		}
	case "CLKGEN":
		return map[string]Bit{"CLK": st} // toggles every Step
	case "SEQ":
		return map[string]Bit{"PH0": st, "PH1": not(st), "DONE": Lo}
	case "INPAD":
		return map[string]Bit{"PAD": X}
	case "OUTPAD":
		return nil
	case "LIFE8":
		// Every output mirrors the cell state.
		out := map[string]Bit{"STATE": st}
		for _, o := range []string{"ON", "OS", "OW", "OE", "ONW", "ONE", "OSW", "OSE"} {
			out[o] = st
		}
		return out
	default:
		return nil // unknown template: outputs stay undriven
	}
}

// nextState computes a sequential module's state after a clock edge.
func (s *Simulator) nextState(m *netlist.Module) Bit {
	in := func(n string) Bit { return s.in(m, n) }
	st := s.state[m]
	switch m.Template {
	case "DFF":
		return in("D")
	case "LATCH":
		if in("EN") == Hi {
			return in("D")
		}
		return st
	case "REG":
		if in("EN") == Hi {
			return in("D")
		}
		return st
	case "CNT":
		if in("RST") == Hi {
			return Lo
		}
		if in("EN") == Hi {
			return not(st)
		}
		return st
	case "CLKGEN":
		return not(st)
	case "SEQ":
		return not(st)
	case "LIFE8":
		// Conway's rule over the eight neighbour inputs; an undefined
		// neighbour makes the next state undefined.
		alive := 0
		for _, nm := range []string{"IN", "IS", "IW", "IE", "INW", "INE", "ISW", "ISE"} {
			switch in(nm) {
			case Hi:
				alive++
			case X:
				return X
			}
		}
		if st == X {
			return X
		}
		return bitOf(alive == 3 || (st == Hi && alive == 2))
	default:
		return st
	}
}
