package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"netart/internal/library"

	"netart/internal/gen"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/schematic"
	"netart/internal/workload"
)

func TestBitString(t *testing.T) {
	if Lo.String() != "0" || Hi.String() != "1" || X.String() != "x" {
		t.Error("Bit strings wrong")
	}
}

func TestGateSemantics(t *testing.T) {
	// One instance of each combinational gate, driven through system
	// terminals, evaluated on the ideal netlist.
	d := workload.Fig61() // BUF INV AND2 OR2 XOR2 INV chain
	s := NewFromDesign(d)
	if err := s.SetInput("IN", Hi); err != nil {
		t.Fatal(err)
	}
	if err := s.Eval(); err != nil {
		t.Fatal(err)
	}
	// Chain: BUF(1)=1 -> INV(1)=0 -> AND2(0, x)=0 -> OR2(0,x)=x ...
	v, err := s.Probe("m1", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if v != Lo {
		t.Errorf("INV output = %v, want 0", v)
	}
	v, _ = s.Probe("m2", "Y") // AND2 with B unconnected (reads low): 0
	if v != Lo {
		t.Errorf("AND2(0,floating) = %v, want 0", v)
	}
	v, _ = s.Probe("m3", "Y") // OR2(0, floating) = 0
	if v != Lo {
		t.Errorf("OR2(0,floating) = %v, want 0", v)
	}
}

func TestThreeValuedHelpers(t *testing.T) {
	cases := []struct {
		name    string
		f       func(Bit, Bit) Bit
		a, b, w Bit
	}{
		{"and", and, Hi, Hi, Hi}, {"and", and, Lo, X, Lo}, {"and", and, Hi, X, X},
		{"or", or, Lo, Lo, Lo}, {"or", or, Hi, X, Hi}, {"or", or, Lo, X, X},
		{"xor", xor, Hi, Lo, Hi}, {"xor", xor, Hi, Hi, Lo}, {"xor", xor, Hi, X, X},
	}
	for _, c := range cases {
		if got := c.f(c.a, c.b); got != c.w {
			t.Errorf("%s(%v,%v) = %v, want %v", c.name, c.a, c.b, got, c.w)
		}
	}
	if not(Hi) != Lo || not(Lo) != Hi || not(X) != X {
		t.Error("not wrong")
	}
}

func TestSequentialStep(t *testing.T) {
	// DFF pipeline: input appears at Q one step later.
	lib := map[string]string{"d0": "DFF", "d1": "DFF"}
	d := netlist.NewDesign("pipe")
	for inst, tpl := range lib {
		spec := builtinSpec(t, tpl)
		if _, err := d.AddModule(inst, tpl, spec.W, spec.H, spec.Terms); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddSysTerm("D", netlist.In); err != nil {
		t.Fatal(err)
	}
	mustConn(t, d, "nd", [2]string{"root", "D"}, [2]string{"d0", "D"})
	mustConn(t, d, "nq", [2]string{"d0", "Q"}, [2]string{"d1", "D"})

	s := NewFromDesign(d)
	if err := s.SetInput("D", Hi); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	got0, _ := s.State("d0")
	got1, _ := s.State("d1")
	if got0 != Hi || got1 != Lo {
		t.Errorf("after 1 step: d0=%v d1=%v, want 1, 0", got0, got1)
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	got1, _ = s.State("d1")
	if got1 != Hi {
		t.Errorf("after 2 steps: d1=%v, want 1", got1)
	}
}

func builtinSpec(t *testing.T, name string) netlist.TemplateSpec {
	t.Helper()
	lib := libOnce()
	spec, err := lib.Template(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func mustConn(t *testing.T, d *netlist.Design, net string, pins ...[2]string) {
	t.Helper()
	for _, p := range pins {
		var err error
		if p[0] == "root" {
			err = d.ConnectSys(net, p[1])
		} else {
			err = d.Connect(net, p[0], p[1])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func routedDiagram(t *testing.T, d *netlist.Design, po place.Options) *schematic.Diagram {
	t.Helper()
	pr, err := place.Place(d, po)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.Route(pr, route.Options{Claimpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	return schematic.FromRouting(rr)
}

func TestExtractMatchesNetlist(t *testing.T) {
	dg := routedDiagram(t, workload.Fig61(), place.Options{PartSize: 6, BoxSize: 6})
	if err := CheckExtraction(dg); err != nil {
		t.Fatal(err)
	}
	dg2 := routedDiagram(t, workload.Datapath16(), place.Options{PartSize: 7, BoxSize: 5})
	if err := CheckExtraction(dg2); err != nil {
		t.Fatal(err)
	}
}

func TestExtractDetectsShort(t *testing.T) {
	dg := routedDiagram(t, workload.Fig61(), place.Options{PartSize: 6, BoxSize: 6})
	// Splice the first two nets' geometries together with a fake strap
	// between their wire endpoints: extraction must scream.
	var a, b *route.RoutedNet
	for _, rn := range dg.Routing.Nets {
		if len(rn.Segments) == 0 {
			continue
		}
		if a == nil {
			a = rn
			continue
		}
		b = rn
		break
	}
	if a == nil || b == nil {
		t.Skip("not enough routed nets")
	}
	pa := a.Segments[0].A
	pb := b.Segments[0].A
	a.Segments = append(a.Segments,
		route.Segment{A: pa, B: route.Segment{}.A.Add(pa.Sub(pa))}, // no-op placeholder removed below
	)
	a.Segments = a.Segments[:len(a.Segments)-1]
	// Straight strap in two legs via a corner point.
	corner := pa
	corner.Y = pb.Y
	a.Segments = append(a.Segments,
		route.Segment{A: pa, B: corner},
		route.Segment{A: corner, B: pb},
	)
	if err := CheckExtraction(dg); err == nil {
		t.Error("short not detected")
	}
}

func TestExtractDetectsOpen(t *testing.T) {
	dg := routedDiagram(t, workload.Fig61(), place.Options{PartSize: 6, BoxSize: 6})
	for _, rn := range dg.Routing.Nets {
		if len(rn.Segments) > 0 {
			rn.Segments = rn.Segments[:len(rn.Segments)-1] // drop the last leg
			break
		}
	}
	if err := CheckExtraction(dg); err == nil {
		t.Error("open not detected")
	}
}

func TestSimulateRoutedDatapath(t *testing.T) {
	// Simulate the ARTWORK of the datapath: drive the inputs and check
	// a value propagates through mux -> reg -> alu -> reg -> cmp.
	dg := routedDiagram(t, workload.Datapath16(), place.Options{PartSize: 7, BoxSize: 5})
	s, err := NewFromDiagram(dg)
	if err != nil {
		t.Fatal(err)
	}
	// ctrl.STAT is fed by cmp0.EQ; drive the data inputs and step.
	for _, in := range []string{"DIN0", "DIN1", "DIN2"} {
		if err := s.SetInput(in, Hi); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetInput("CLK", Hi); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// After settling, DOUT = cmp2.GT = regb2.Q AND NOT(unconnected B)=x?
	// cmp2.B is unconnected so GT = and(A, not(x)): defined only if A=0.
	// Check instead that the pipeline registers captured real values.
	if v, _ := s.State("rega2"); v == X {
		t.Error("rega2 never captured a defined value through the artwork")
	}
}

// conwayNext computes the reference next generation for the 5x5 board
// with dead borders.
func conwayNext(board [5][5]bool) [5][5]bool {
	var out [5][5]bool
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			n := 0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					rr, cc := r+dr, c+dc
					if rr >= 0 && rr < 5 && cc >= 0 && cc < 5 && board[rr][cc] {
						n++
					}
				}
			}
			out[r][c] = n == 3 || (board[r][c] && n == 2)
		}
	}
	return out
}

// TestLifeDiagramComputesConway is the reproduction of the §6
// simulation check: route the LIFE network over the hand placement,
// extract the connectivity from the drawn wires alone, load a glider,
// and verify the artwork computes real Game of Life generations.
func TestLifeDiagramComputesConway(t *testing.T) {
	if testing.Short() {
		t.Skip("LIFE routing is expensive")
	}
	d := workload.Life27()
	hp := workload.LifeHandPlacement()
	fixed := map[*netlist.Module]place.Fixed{}
	for _, m := range d.Modules {
		h := hp[m.Name]
		fixed[m] = place.Fixed{Pos: h.Pos, Orient: h.Orient}
	}
	pr, err := place.Place(d, place.Options{Fixed: fixed})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.Route(pr, route.Options{Claimpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.UnroutedCount() != 0 {
		t.Fatalf("%d unrouted nets; cannot simulate an incomplete diagram", rr.UnroutedCount())
	}
	dg := schematic.FromRouting(rr)
	s, err := NewFromDiagram(dg)
	if err != nil {
		t.Fatal(err)
	}

	// Dead border inputs.
	for i := 0; ; i++ {
		name := fmt.Sprintf("BIN%d", i)
		if d.SysTerm(name) == nil {
			break
		}
		if err := s.SetInput(name, Lo); err != nil {
			t.Fatal(err)
		}
	}

	// A glider in the top-left corner.
	board := [5][5]bool{}
	board[0][1] = true
	board[1][2] = true
	board[2][0] = true
	board[2][1] = true
	board[2][2] = true
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if err := s.SetState(fmt.Sprintf("cell_%d_%d", r, c), bitOf(board[r][c])); err != nil {
				t.Fatal(err)
			}
		}
	}

	for gen := 0; gen < 3; gen++ {
		want := conwayNext(board)
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				got, err := s.State(fmt.Sprintf("cell_%d_%d", r, c))
				if err != nil {
					t.Fatal(err)
				}
				if got != bitOf(want[r][c]) {
					t.Fatalf("generation %d: cell (%d,%d) = %v, want %v — the routed artwork does not compute LIFE",
						gen+1, r, c, got, bitOf(want[r][c]))
				}
				// The observation terminals mirror the cell states.
				obs := fmt.Sprintf("OBS%d", r*5+c)
				if v, _ := s.Output(obs); v != got {
					t.Errorf("observer %s = %v, cell = %v", obs, v, got)
				}
			}
		}
		board = want
	}
}

func TestSimulatorErrors(t *testing.T) {
	s := NewFromDesign(workload.Fig61())
	if err := s.SetInput("nope", Hi); err == nil {
		t.Error("unknown input accepted")
	}
	if err := s.SetState("nope", Hi); err == nil {
		t.Error("unknown module state accepted")
	}
	if err := s.SetState("m0", Hi); err == nil {
		t.Error("state on combinational module accepted")
	}
	if _, err := s.State("m0"); err == nil {
		t.Error("state read on combinational module accepted")
	}
	if _, err := s.Output("nope"); err == nil {
		t.Error("unknown output accepted")
	}
	if _, err := s.Probe("nope", "Y"); err == nil {
		t.Error("unknown module probe accepted")
	}
	if _, err := s.Probe("m0", "nope"); err == nil {
		t.Error("unknown terminal probe accepted")
	}
}

func TestGenerateAndSimulate(t *testing.T) {
	// Full pipeline through the gen facade: generate, then simulate
	// the artwork.
	rep, err := gen.Run(context.Background(), workload.Fig61(), gen.Options{
		Place: place.Options{PartSize: 6, BoxSize: 6},
		Route: route.Options{Claimpoints: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFromDiagram(rep.Diagram)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("IN", Lo); err != nil {
		t.Fatal(err)
	}
	if err := s.Eval(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Probe("m1", "Y"); v != Hi { // INV(BUF(0)) = 1
		t.Errorf("artwork INV output = %v, want 1", v)
	}
}

// libOnce caches the builtin library for the test helpers.
func libOnce() *library.Library {
	libMu.Lock()
	defer libMu.Unlock()
	if cachedLib == nil {
		cachedLib = library.Builtin()
	}
	return cachedLib
}

var (
	libMu     sync.Mutex
	cachedLib *library.Library
)
