package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4) at /metrics. Registration
// happens at construction time; observation is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one metric family: a name, a type, a help line, and its
// labeled children in registration order.
type family struct {
	name, typ, help string
	children        []sampler
}

// sampler writes the sample lines of one labeled child.
type sampler interface {
	sample(w io.Writer, name string)
}

func (r *Registry) register(name, typ, help string, s sampler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.children = append(f.children, s)
}

// Counter is a monotonically increasing lock-free counter.
type Counter struct {
	labels string // pre-rendered `key="value",...` or ""
	v      atomic.Uint64
}

// Counter registers (or extends) a counter family and returns the
// child identified by labels (pass "" for an unlabeled counter).
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{labels: labels}
	r.register(name, "counter", help, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) sample(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(c.labels), c.v.Load())
}

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Gauge registers (or extends) a gauge family.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{labels: labels}
	r.register(name, "gauge", help, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) sample(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(g.labels), g.v.Load())
}

// gaugeFunc samples a live value at scrape time (queue depth, cache
// entries, uptime).
type gaugeFunc struct {
	labels string
	fn     func() float64
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.register(name, "gauge", help, &gaugeFunc{labels: labels, fn: fn})
}

func (g *gaugeFunc) sample(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(g.labels),
		strconv.FormatFloat(g.fn(), 'g', -1, 64))
}

// HistBuckets is the bucket count of the latency histograms: bucket i
// holds observations with ceil(log2(µs)) == i, spanning 1µs to ~2.1s
// with the last bucket catching everything slower.
const HistBuckets = 22

// Histogram is a lock-free log2 latency histogram over microseconds.
// Observation is a handful of atomic adds; snapshots are torn-read
// tolerant (counters only grow; scrapes are diagnostic).
type Histogram struct {
	labels  string
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Histogram registers (or extends) a histogram family.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{labels: labels}
	r.register(name, "histogram", help, h)
	return h
}

func bucketFor(us uint64) int {
	b := 0
	for v := us; v > 1 && b < HistBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUs.Add(us)
	h.buckets[bucketFor(us)].Add(1)
	for {
		old := h.maxUs.Load()
		if us <= old || h.maxUs.CompareAndSwap(old, us) {
			return
		}
	}
}

// HistogramData is a consistent-enough snapshot of one histogram.
type HistogramData struct {
	Count   uint64
	SumUs   uint64
	MaxUs   uint64
	Buckets [HistBuckets]uint64
}

// Snapshot returns the current histogram state.
func (h *Histogram) Snapshot() HistogramData {
	d := HistogramData{
		Count: h.count.Load(),
		SumUs: h.sumUs.Load(),
		MaxUs: h.maxUs.Load(),
	}
	for i := range h.buckets {
		d.Buckets[i] = h.buckets[i].Load()
	}
	return d
}

// QuantileMs estimates the q-th quantile in milliseconds as the upper
// bound of the bucket holding the q-th observation (log2 resolution).
func (d HistogramData) QuantileMs(q float64) float64 {
	if d.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(d.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range d.Buckets {
		seen += c
		if seen >= rank {
			return float64(uint64(1)<<uint(i)) / 1000.0
		}
	}
	return float64(uint64(1)<<uint(HistBuckets-1)) / 1000.0
}

func (h *Histogram) sample(w io.Writer, name string) {
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := strconv.FormatFloat(float64(uint64(1)<<uint(i))/1e6, 'g', -1, 64)
		if i == HistBuckets-1 {
			le = "+Inf"
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(joinLabels(h.labels, `le="`+le+`"`)), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(h.labels),
		strconv.FormatFloat(float64(h.sumUs.Load())/1e6, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(h.labels), cum)
}

func renderLabels(kv string) string {
	if kv == "" {
		return ""
	}
	return "{" + kv + "}"
}

func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// WritePrometheus renders every family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.children {
			c.sample(bw, f.name)
		}
	}
	bw.Flush()
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Ring is a bounded ring of recent events (newest last): the general
// form of the service's recovered-panic ring.
type Ring[T any] struct {
	mu  sync.Mutex
	max int
	buf []T
}

// NewRing returns a ring retaining at most max entries.
func NewRing[T any](max int) *Ring[T] {
	if max <= 0 {
		max = 1
	}
	return &Ring[T]{max: max}
}

// Append adds v, evicting the oldest entry when full.
func (r *Ring[T]) Append(v T) {
	r.mu.Lock()
	r.buf = append(r.buf, v)
	if len(r.buf) > r.max {
		r.buf = r.buf[len(r.buf)-r.max:]
	}
	r.mu.Unlock()
}

// Snapshot returns a copy of the retained entries, oldest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]T(nil), r.buf...)
}

// sortedKeys is a tiny helper kept close to the exposition code.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
