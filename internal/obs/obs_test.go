package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	o := NewObserver(nil, "request")
	if o.TraceID() == "" {
		t.Fatal("traced observer has empty trace id")
	}

	parse := o.StartSpan("parse")
	parse.SetAttr("bytes", 128)
	parse.End()

	routeSp := o.StartSpan("route")
	att := o.StartSpan("route.attempt")
	att.SetAttrString("config", "line-expansion")
	att.End()
	att2 := o.StartSpan("route.attempt")
	att2.SetAttrString("config", "lee+rip-up")
	att2.EndError(errors.New("boom"))
	routeSp.SetAttr("searches", 42)
	routeSp.End()

	td := o.Snapshot()
	if td == nil {
		t.Fatal("nil snapshot from traced observer")
	}
	if td.Root.Stage != "request" {
		t.Fatalf("root stage = %q, want request", td.Root.Stage)
	}
	if len(td.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (parse, route)", len(td.Root.Children))
	}
	rt := td.Find("route")
	if rt == nil {
		t.Fatal("route span missing")
	}
	if len(rt.Children) != 2 {
		t.Fatalf("route children = %d, want 2 nested attempts", len(rt.Children))
	}
	if rt.Attrs["searches"] != int64(42) {
		t.Fatalf("route searches attr = %v, want 42", rt.Attrs["searches"])
	}
	if got := rt.Children[1].Outcome; got != OutcomeError {
		t.Fatalf("failed attempt outcome = %q, want error", got)
	}
	if rt.Children[1].Error != "boom" {
		t.Fatalf("failed attempt error = %q", rt.Children[1].Error)
	}
	if td.Find("parse").Attrs["bytes"] != int64(128) {
		t.Fatal("parse attr lost")
	}
}

func TestSpanPanicAndDegradedOutcomes(t *testing.T) {
	o := NewObserver(nil, "generate")

	place := o.StartSpan("place")
	// A recovered panic ends the stage through EndPanic; a child span
	// opened before the panic never ends — pop-through must keep the
	// stack coherent so later stages still attach to the root.
	_ = o.StartSpan("place.partition")
	place.EndPanic("index out of range")

	route := o.StartSpan("route")
	route.Degrade()
	route.End()

	td := o.Snapshot()
	if got := td.Find("place").Outcome; got != OutcomePanic {
		t.Fatalf("place outcome = %q, want panic", got)
	}
	if !strings.Contains(td.Find("place").Error, "index out of range") {
		t.Fatalf("place error = %q", td.Find("place").Error)
	}
	rt := td.Find("route")
	if rt.Outcome != OutcomeDegraded {
		t.Fatalf("route outcome = %q, want degraded", rt.Outcome)
	}
	// route must be a child of the root, not of the abandoned
	// place.partition span.
	for _, c := range td.Root.Children {
		if c.Stage == "route" {
			return
		}
	}
	t.Fatalf("route span not attached to root; tree:\n%s", FormatTree(td))
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	sp := o.StartSpan("place")
	sp.SetAttr("modules", 3)
	sp.SetAttrString("cfg", "x")
	sp.Degrade()
	sp.EndError(errors.New("x"))
	sp.End()
	if o.Snapshot() != nil {
		t.Fatal("nil observer returned a snapshot")
	}
	if o.TraceID() != "" {
		t.Fatal("nil observer returned a trace id")
	}
	if o.Metrics() != nil {
		t.Fatal("nil observer returned metrics")
	}
	// Metric-less, trace-less observer behaves like nil.
	o2 := NewObserver(nil, "")
	if sp := o2.StartSpan("x"); sp != nil {
		t.Fatal("disabled observer allocated a span")
	}
}

func TestSpanFeedsStageHistogram(t *testing.T) {
	p := NewPipeline()
	o := NewObserver(p, "request")
	sp := o.StartSpan("place")
	time.Sleep(time.Millisecond)
	sp.End()
	if got := p.Stage("place").Snapshot().Count; got != 1 {
		t.Fatalf("place histogram count = %d, want 1", got)
	}
	// Unknown stage names must not panic and must not be recorded.
	sp2 := o.StartSpan("route.attempt")
	sp2.End()
	if got := p.Stage("route").Snapshot().Count; got != 0 {
		t.Fatalf("route histogram count = %d, want 0", got)
	}
}

func TestFormatTree(t *testing.T) {
	o := NewObserver(nil, "request")
	sp := o.StartSpan("place")
	sp.SetAttr("partitions", 4)
	sp.End()
	out := FormatTree(o.Snapshot())
	if !strings.Contains(out, "place") || !strings.Contains(out, "partitions=4") {
		t.Fatalf("format tree missing content:\n%s", out)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	for i := 0; i < 5; i++ {
		r.Append(i)
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("ring snapshot = %v, want [2 3 4]", got)
	}
}
