package obs

import (
	"time"
)

// Stage names with a dedicated latency histogram. "total" is observed
// by the service around the whole request; the others are observed
// automatically when the matching span ends.
var StageNames = []string{"parse", "place", "route", "render", "total"}

// Pipeline is the canonical metric set of the generation pipeline:
// request/outcome counters, cache counters, in-flight gauge, and one
// latency histogram per stage — everything /metrics exports and
// /v1/stats + /v1/healthz read, so the two surfaces can never drift.
type Pipeline struct {
	Reg   *Registry
	Start time.Time

	// Requests counts accepted generation requests (incl. batch items).
	Requests *Counter
	// Outcome counters; one request increments exactly one of
	// OK/Failed/Shed/Timeouts/Rejected (Degraded rides on OK).
	OK       *Counter
	Failed   *Counter
	Shed     *Counter
	Timeouts *Counter
	Rejected *Counter
	Degraded *Counter
	// Retries counts extra attempts spent by the batch retry layer;
	// Panics counts panics recovered by the isolation layer.
	Retries *Counter
	Panics  *Counter

	// Cache event counters.
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheEvictions *Counter

	// Inflight tracks requests currently inside the pipeline.
	Inflight *Gauge

	// Traces counts snapshots taken (one per traced request).
	Traces *Counter

	// Speculation counters of the parallel router: per examined
	// speculation exactly one of hit/miss increments, and each miss is
	// followed by a requeue (the net re-routed in commit order).
	SpecHits     *Counter
	SpecMisses   *Counter
	SpecRequeues *Counter
	// RouteWorkerBusy records each routing worker's busy wall time, one
	// observation per worker per parallel route attempt.
	RouteWorkerBusy *Histogram

	// Store tier event counters (netart_store_events_total{tier,event}):
	// the per-tier view of the pluggable result store — "mem"/"disk"
	// crossed with hit/miss/put/evict/promote/error. The legacy
	// netart_cache_events_total counters above stay the request-level
	// view (did the store as a whole serve this request); these count
	// what each tier did to produce that answer.
	storeEvents map[string]*Counter

	// Singleflight counters: per collapsed generate exactly one of
	// leader/shared/canceled increments — leader executed the
	// pipeline, shared received the leader's result, canceled gave up
	// waiting because its own deadline expired.
	SFLeader   *Counter
	SFShared   *Counter
	SFCanceled *Counter

	// Peer-routing counters of the fleet sharding layer: one increment
	// per cold request that reached the ownership decision. self =
	// this replica owns the key; proxied = forwarded to the owner and
	// served its answer; fallback = owner unreachable, computed
	// locally; received = served a request a peer forwarded here.
	PeerSelf     *Counter
	PeerProxied  *Counter
	PeerFallback *Counter
	PeerReceived *Counter

	// Fleet-health counters (netart_peer_transitions_total{to}): one
	// increment per circuit-breaker transition, labeled by the state
	// entered. open = a peer left the ownership set (its keys remap),
	// half_open = a recovery trial started, closed = it rejoined.
	PeerOpened     *Counter
	PeerHalfOpened *Counter
	PeerClosed     *Counter
	// Hedged-proxy counters (netart_proxy_hedge_total{event}):
	// launched = the owner missed the hedge deadline and a twin was
	// sent to the next live peer; won = the twin answered first.
	HedgeLaunched *Counter
	HedgeWon      *Counter
	// ProxyRetries counts extra proxy attempts spent on transient
	// peer failures (netart_proxy_retries_total).
	ProxyRetries *Counter

	// Async-job counters of the /v2/jobs subsystem. JobsSubmitted
	// counts accepted submissions; exactly one of JobsDone/JobsFailed/
	// JobsCanceled increments when a job reaches its terminal state;
	// JobsEvicted counts records dropped from the ring (TTL expiry or
	// capacity pressure); JobsEvents counts progress events appended to
	// job event logs (what SSE subscribers replay).
	JobsSubmitted *Counter
	JobsDone      *Counter
	JobsFailed    *Counter
	JobsCanceled  *Counter
	JobsEvicted   *Counter
	JobsEvents    *Counter

	// Placement scheduler counters of the parallel placement engine:
	// partition tasks share no mutable state, so — unlike routing
	// speculations — every examined task commits; the single
	// "committed" outcome keeps the metric shape parallel to
	// netart_route_speculation_total while staying honest about the
	// scheduler's conflict-free construction.
	PlaceSpecCommitted *Counter
	// PlaceWorkerBusy records each placement worker's busy wall time,
	// one observation per worker per parallel placement.
	PlaceWorkerBusy *Histogram

	stages map[string]*Histogram
}

// NewPipeline builds the metric set on a fresh registry.
func NewPipeline() *Pipeline {
	reg := NewRegistry()
	p := &Pipeline{Reg: reg, Start: time.Now()}

	p.Requests = reg.Counter("netart_requests_total",
		"Generation requests accepted (including batch items).", "")
	outcome := func(o string) *Counter {
		return reg.Counter("netart_request_outcomes_total",
			"Request outcomes by class.", `outcome="`+o+`"`)
	}
	p.OK = outcome("ok")
	p.Failed = outcome("failed")
	p.Shed = outcome("shed")
	p.Timeouts = outcome("timeout")
	p.Rejected = outcome("rejected")
	p.Degraded = reg.Counter("netart_degraded_total",
		"Successful responses that carried a best-effort degradation report.", "")
	p.Retries = reg.Counter("netart_batch_retries_total",
		"Extra attempts spent by the batch retry layer.", "")
	p.Panics = reg.Counter("netart_panics_recovered_total",
		"Panics converted into stage errors by the isolation layer.", "")

	cache := func(ev string) *Counter {
		return reg.Counter("netart_cache_events_total",
			"Result cache events by kind.", `event="`+ev+`"`)
	}
	p.CacheHits = cache("hit")
	p.CacheMisses = cache("miss")
	p.CacheEvictions = cache("eviction")

	p.storeEvents = make(map[string]*Counter, len(StoreTiers)*len(StoreEventNames))
	for _, tier := range StoreTiers {
		for _, ev := range StoreEventNames {
			p.storeEvents[tier+"\x00"+ev] = reg.Counter("netart_store_events_total",
				"Result-store events by tier and kind.",
				`tier="`+tier+`",event="`+ev+`"`)
		}
	}

	sf := func(o string) *Counter {
		return reg.Counter("netart_singleflight_total",
			"Singleflight outcomes of collapsed generate requests.", `outcome="`+o+`"`)
	}
	p.SFLeader = sf("leader")
	p.SFShared = sf("shared")
	p.SFCanceled = sf("canceled")

	peer := func(o string) *Counter {
		return reg.Counter("netart_peer_requests_total",
			"Fleet-sharding routing outcomes for cold requests.", `outcome="`+o+`"`)
	}
	p.PeerSelf = peer("self")
	p.PeerProxied = peer("proxied")
	p.PeerFallback = peer("fallback")
	p.PeerReceived = peer("received")

	trans := func(to string) *Counter {
		return reg.Counter("netart_peer_transitions_total",
			"Per-peer circuit-breaker transitions by state entered.", `to="`+to+`"`)
	}
	p.PeerOpened = trans("open")
	p.PeerHalfOpened = trans("half_open")
	p.PeerClosed = trans("closed")
	hedge := func(ev string) *Counter {
		return reg.Counter("netart_proxy_hedge_total",
			"Hedged proxy requests by event.", `event="`+ev+`"`)
	}
	p.HedgeLaunched = hedge("launched")
	p.HedgeWon = hedge("won")
	p.ProxyRetries = reg.Counter("netart_proxy_retries_total",
		"Extra proxy attempts spent on transient peer failures.", "")

	p.Inflight = reg.Gauge("netart_inflight_requests",
		"Requests currently inside the pipeline.", "")
	p.Traces = reg.Counter("netart_traces_total",
		"Span-tree snapshots taken (one per traced request).", "")

	specOutcome := func(o string) *Counter {
		return reg.Counter("netart_route_speculation_total",
			"Parallel-router speculation outcomes.", `outcome="`+o+`"`)
	}
	p.SpecHits = specOutcome("hit")
	p.SpecMisses = specOutcome("miss")
	p.SpecRequeues = specOutcome("requeue")
	p.RouteWorkerBusy = reg.Histogram("netart_route_worker_busy_seconds",
		"Busy wall time per routing worker per parallel route attempt.", "")

	p.JobsSubmitted = reg.Counter("netart_jobs_submitted_total",
		"Async jobs accepted by POST /v2/jobs.", "")
	job := func(state string) *Counter {
		return reg.Counter("netart_jobs_total",
			"Async jobs finished, by terminal state.", `state="`+state+`"`)
	}
	p.JobsDone = job("done")
	p.JobsFailed = job("failed")
	p.JobsCanceled = job("canceled")
	p.JobsEvicted = reg.Counter("netart_jobs_evicted_total",
		"Job records evicted from the ring (TTL expiry or capacity pressure).", "")
	p.JobsEvents = reg.Counter("netart_jobs_events_total",
		"Progress events appended to job event logs.", "")

	p.PlaceSpecCommitted = reg.Counter("netart_place_speculation_total",
		"Parallel-placement scheduler outcomes (partition tasks are conflict-free, so every task commits).",
		`outcome="committed"`)
	p.PlaceWorkerBusy = reg.Histogram("netart_place_worker_busy_seconds",
		"Busy wall time per placement worker per parallel placement.", "")

	p.stages = make(map[string]*Histogram, len(StageNames))
	for _, name := range StageNames {
		p.stages[name] = reg.Histogram("netart_stage_duration_seconds",
			"Wall time per pipeline stage.", `stage="`+name+`"`)
	}

	reg.GaugeFunc("netart_uptime_seconds", "Seconds since process start.", "",
		func() float64 { return time.Since(p.Start).Seconds() })
	return p
}

// StoreTiers and StoreEventNames enumerate the pre-registered
// children of netart_store_events_total. Registration stays
// construction-time (the observation path is a lock-free map read of
// an immutable map); an unknown (tier, event) pair is dropped rather
// than lazily registered.
var (
	StoreTiers      = []string{"mem", "disk"}
	StoreEventNames = []string{"hit", "miss", "put", "evict", "promote", "error"}
)

// StoreEvent counts one store event; unknown tiers/events are ignored.
func (p *Pipeline) StoreEvent(tier, event string) {
	if p == nil {
		return
	}
	if c := p.storeEvents[tier+"\x00"+event]; c != nil {
		c.Inc()
	}
}

// StoreEventValue reads one store event counter (0 when unknown).
func (p *Pipeline) StoreEventValue(tier, event string) uint64 {
	if p == nil {
		return 0
	}
	if c := p.storeEvents[tier+"\x00"+event]; c != nil {
		return c.Value()
	}
	return 0
}

// Stage returns the histogram for a stage name, or nil for stages
// without one (ladder rung spans observe nothing).
func (p *Pipeline) Stage(name string) *Histogram {
	if p == nil {
		return nil
	}
	return p.stages[name]
}

// StageObserve records one stage duration; unknown stages are ignored.
func (p *Pipeline) StageObserve(name string, d time.Duration) {
	if p == nil {
		return
	}
	if h := p.stages[name]; h != nil {
		h.Observe(d)
	}
}

// StageSnapshots returns the per-stage histogram snapshots keyed by
// stage name (the /v1/stats "stages" object).
func (p *Pipeline) StageSnapshots() map[string]HistogramData {
	out := make(map[string]HistogramData, len(p.stages))
	for _, name := range sortedKeys(p.stages) {
		out[name] = p.stages[name].Snapshot()
	}
	return out
}
