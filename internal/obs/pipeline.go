package obs

import (
	"time"
)

// Stage names with a dedicated latency histogram. "total" is observed
// by the service around the whole request; the others are observed
// automatically when the matching span ends.
var StageNames = []string{"parse", "place", "route", "render", "total"}

// Pipeline is the canonical metric set of the generation pipeline:
// request/outcome counters, cache counters, in-flight gauge, and one
// latency histogram per stage — everything /metrics exports and
// /v1/stats + /v1/healthz read, so the two surfaces can never drift.
type Pipeline struct {
	Reg   *Registry
	Start time.Time

	// Requests counts accepted generation requests (incl. batch items).
	Requests *Counter
	// Outcome counters; one request increments exactly one of
	// OK/Failed/Shed/Timeouts/Rejected (Degraded rides on OK).
	OK       *Counter
	Failed   *Counter
	Shed     *Counter
	Timeouts *Counter
	Rejected *Counter
	Degraded *Counter
	// Retries counts extra attempts spent by the batch retry layer;
	// Panics counts panics recovered by the isolation layer.
	Retries *Counter
	Panics  *Counter

	// Cache event counters.
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheEvictions *Counter

	// Inflight tracks requests currently inside the pipeline.
	Inflight *Gauge

	// Traces counts snapshots taken (one per traced request).
	Traces *Counter

	// Speculation counters of the parallel router: per examined
	// speculation exactly one of hit/miss increments, and each miss is
	// followed by a requeue (the net re-routed in commit order).
	SpecHits     *Counter
	SpecMisses   *Counter
	SpecRequeues *Counter
	// RouteWorkerBusy records each routing worker's busy wall time, one
	// observation per worker per parallel route attempt.
	RouteWorkerBusy *Histogram

	// Placement scheduler counters of the parallel placement engine:
	// partition tasks share no mutable state, so — unlike routing
	// speculations — every examined task commits; the single
	// "committed" outcome keeps the metric shape parallel to
	// netart_route_speculation_total while staying honest about the
	// scheduler's conflict-free construction.
	PlaceSpecCommitted *Counter
	// PlaceWorkerBusy records each placement worker's busy wall time,
	// one observation per worker per parallel placement.
	PlaceWorkerBusy *Histogram

	stages map[string]*Histogram
}

// NewPipeline builds the metric set on a fresh registry.
func NewPipeline() *Pipeline {
	reg := NewRegistry()
	p := &Pipeline{Reg: reg, Start: time.Now()}

	p.Requests = reg.Counter("netart_requests_total",
		"Generation requests accepted (including batch items).", "")
	outcome := func(o string) *Counter {
		return reg.Counter("netart_request_outcomes_total",
			"Request outcomes by class.", `outcome="`+o+`"`)
	}
	p.OK = outcome("ok")
	p.Failed = outcome("failed")
	p.Shed = outcome("shed")
	p.Timeouts = outcome("timeout")
	p.Rejected = outcome("rejected")
	p.Degraded = reg.Counter("netart_degraded_total",
		"Successful responses that carried a best-effort degradation report.", "")
	p.Retries = reg.Counter("netart_batch_retries_total",
		"Extra attempts spent by the batch retry layer.", "")
	p.Panics = reg.Counter("netart_panics_recovered_total",
		"Panics converted into stage errors by the isolation layer.", "")

	cache := func(ev string) *Counter {
		return reg.Counter("netart_cache_events_total",
			"Result cache events by kind.", `event="`+ev+`"`)
	}
	p.CacheHits = cache("hit")
	p.CacheMisses = cache("miss")
	p.CacheEvictions = cache("eviction")

	p.Inflight = reg.Gauge("netart_inflight_requests",
		"Requests currently inside the pipeline.", "")
	p.Traces = reg.Counter("netart_traces_total",
		"Span-tree snapshots taken (one per traced request).", "")

	specOutcome := func(o string) *Counter {
		return reg.Counter("netart_route_speculation_total",
			"Parallel-router speculation outcomes.", `outcome="`+o+`"`)
	}
	p.SpecHits = specOutcome("hit")
	p.SpecMisses = specOutcome("miss")
	p.SpecRequeues = specOutcome("requeue")
	p.RouteWorkerBusy = reg.Histogram("netart_route_worker_busy_seconds",
		"Busy wall time per routing worker per parallel route attempt.", "")

	p.PlaceSpecCommitted = reg.Counter("netart_place_speculation_total",
		"Parallel-placement scheduler outcomes (partition tasks are conflict-free, so every task commits).",
		`outcome="committed"`)
	p.PlaceWorkerBusy = reg.Histogram("netart_place_worker_busy_seconds",
		"Busy wall time per placement worker per parallel placement.", "")

	p.stages = make(map[string]*Histogram, len(StageNames))
	for _, name := range StageNames {
		p.stages[name] = reg.Histogram("netart_stage_duration_seconds",
			"Wall time per pipeline stage.", `stage="`+name+`"`)
	}

	reg.GaugeFunc("netart_uptime_seconds", "Seconds since process start.", "",
		func() float64 { return time.Since(p.Start).Seconds() })
	return p
}

// Stage returns the histogram for a stage name, or nil for stages
// without one (ladder rung spans observe nothing).
func (p *Pipeline) Stage(name string) *Histogram {
	if p == nil {
		return nil
	}
	return p.stages[name]
}

// StageObserve records one stage duration; unknown stages are ignored.
func (p *Pipeline) StageObserve(name string, d time.Duration) {
	if p == nil {
		return
	}
	if h := p.stages[name]; h != nil {
		h.Observe(d)
	}
}

// StageSnapshots returns the per-stage histogram snapshots keyed by
// stage name (the /v1/stats "stages" object).
func (p *Pipeline) StageSnapshots() map[string]HistogramData {
	out := make(map[string]HistogramData, len(p.stages))
	for _, name := range sortedKeys(p.stages) {
		out[name] = p.stages[name].Snapshot()
	}
	return out
}
