package obs

import (
	"testing"
	"time"
)

// BenchmarkObserverDisabled guards the nil-observer fast path: a full
// stage's worth of span calls on a disabled observer must be
// allocation-free (ci.sh fails the build if allocs/op != 0). This is
// the same discipline the nil *resilience.Injector follows.
func BenchmarkObserverDisabled(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("place")
		sp.SetAttr("partitions", 4)
		sp.SetAttr("boxes", 9)
		sp.Degrade()
		sp.End()
	}
}

// BenchmarkStageObserveDisabled guards the nil metric sink.
func BenchmarkStageObserveDisabled(b *testing.B) {
	var p *Pipeline
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.StageObserve("route", time.Millisecond)
	}
}

// BenchmarkHistogramObserve measures the enabled hot path (a handful
// of atomic adds; allocations here would leak into every request).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
