// Package obs is the zero-dependency observability layer of the
// netlist→schematic pipeline: per-request span trees (stage tracing),
// lock-free counters/gauges/histograms, and a Prometheus-text
// exposition handler.
//
// The package follows the nil-injector discipline established by
// internal/resilience: every method on *Observer and *Span is safe on
// a nil receiver and the disabled path is allocation-free, so the
// pipeline threads one observer pointer unconditionally and pays one
// pointer compare per stage when observability is off (guarded by
// BenchmarkObserverDisabled; see ci.sh).
//
// Span model (documented in DESIGN.md "Observability"): one request
// produces one Trace whose root span is named by the entry point
// ("request" in netartd, "generate" in the CLIs). The pipeline stages
// hang directly off the root in execution order — parse, place, route,
// render — and every escalation rung of the degradation ladder is a
// child of route named "route.attempt". Spans carry integer/string
// attributes (partitions, boxes, wavefront searches, rip-up attempts,
// …), a wall-clock duration, and an outcome: ok, error, panic, or
// degraded.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Outcome values of a finished span.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomePanic    = "panic"
	OutcomeDegraded = "degraded"
)

// Observer is the handle threaded through the pipeline. It couples an
// optional metric sink (per-stage latency histograms; see Pipeline)
// with an optional span recorder. Both halves are independent: the
// service observes metrics and traces, the CLIs trace only, and a nil
// *Observer disables everything at zero allocation cost.
type Observer struct {
	m     *Pipeline
	trace *Trace
}

// NewObserver builds an observer. m, when non-nil, receives one
// histogram observation per finished stage span; rootName, when
// non-empty, starts a trace whose root span is already running.
func NewObserver(m *Pipeline, rootName string) *Observer {
	o := &Observer{m: m}
	if rootName != "" {
		o.trace = newTrace(rootName)
	}
	return o
}

// Metrics returns the observer's metric sink (nil-safe).
func (o *Observer) Metrics() *Pipeline {
	if o == nil {
		return nil
	}
	return o.m
}

// TraceID returns the request's trace identifier, or "" when tracing
// is disabled.
func (o *Observer) TraceID() string {
	if o == nil || o.trace == nil {
		return ""
	}
	return o.trace.id
}

// StartSpan opens a span named name as a child of the innermost open
// span. It returns nil — and allocates nothing — when the observer is
// nil or records neither metrics nor traces.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil || (o.trace == nil && o.m == nil) {
		return nil
	}
	sp := &Span{obs: o, name: name, start: time.Now(), outcome: OutcomeOK}
	if o.trace != nil {
		o.trace.push(sp)
	}
	return sp
}

// Snapshot closes the root span (duration = time since the trace
// started) and returns the JSON-ready span tree, or nil when tracing
// is disabled. It may be called more than once; later calls refresh
// the root duration.
func (o *Observer) Snapshot() *TraceData {
	if o == nil || o.trace == nil {
		return nil
	}
	return o.trace.snapshot()
}

// Span is one timed pipeline stage. All methods are nil-safe no-ops so
// disabled observability costs only the pointer compare. When the span
// belongs to a trace, every mutation (attributes, outcome, end) runs
// under the trace mutex, so Observer.Snapshot may be called at any
// point of a live run — the async job API serves mid-run status
// documents from exactly such snapshots. Without a trace (metric-only
// observers) no lock is taken and no snapshot exists to race.
type Span struct {
	obs     *Observer
	name    string
	start   time.Time
	dur     time.Duration
	outcome string
	errMsg  string
	attrs   []Attr
	child   []*Span
	ended   bool
}

// Attr is one span attribute. Exactly one of Int/Str is meaningful,
// discriminated by IsStr.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// traceOf returns the trace whose mutex guards this span's fields, or
// nil for metric-only spans (single-goroutine, never snapshotted).
func (s *Span) traceOf() *Trace {
	if s.obs == nil {
		return nil
	}
	return s.obs.trace
}

// SetAttr records an integer attribute (counts: partitions, boxes,
// wavefront searches, …).
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	if tr := s.traceOf(); tr != nil {
		tr.mu.Lock()
		defer tr.mu.Unlock()
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// SetAttrString records a string attribute (configuration names).
func (s *Span) SetAttrString(key, v string) {
	if s == nil {
		return
	}
	if tr := s.traceOf(); tr != nil {
		tr.mu.Lock()
		defer tr.mu.Unlock()
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
}

// Degrade marks the span's outcome as degraded (a kept partial
// result) without ending it.
func (s *Span) Degrade() {
	if s == nil {
		return
	}
	if tr := s.traceOf(); tr != nil {
		tr.mu.Lock()
		defer tr.mu.Unlock()
	}
	s.outcome = OutcomeDegraded
}

// End closes the span with its current outcome (ok unless Degrade was
// called), records the duration, and feeds the stage histogram when a
// metric sink is attached.
func (s *Span) End() { s.end("", "") }

// EndError closes the span with outcome error (or panic when the
// error chain carries a recovered panic marker; see EndPanic) and
// remembers the rendered error.
func (s *Span) EndError(err error) {
	if s == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	s.end(OutcomeError, msg)
}

// EndPanic closes the span with outcome panic.
func (s *Span) EndPanic(cause any) {
	if s == nil {
		return
	}
	s.end(OutcomePanic, fmt.Sprint(cause))
}

func (s *Span) end(outcome, errMsg string) {
	if s == nil {
		return
	}
	tr := s.traceOf()
	if tr != nil {
		tr.mu.Lock()
	}
	if s.ended {
		if tr != nil {
			tr.mu.Unlock()
		}
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if outcome != "" {
		s.outcome = outcome
	}
	s.errMsg = errMsg
	if tr != nil {
		// Pop this span — and anything opened after it that a recovered
		// panic abandoned without an End — from the open stack, under
		// the same lock that made the field writes above visible.
		for i := len(tr.stack) - 1; i > 0; i-- {
			if tr.stack[i] == s {
				tr.stack = tr.stack[:i]
				break
			}
		}
		tr.mu.Unlock()
	}
	if s.obs != nil && s.obs.m != nil {
		s.obs.m.StageObserve(s.name, s.dur)
	}
}

// Trace is one request's span tree. The pipeline runs a request on a
// single goroutine, but the mutex guards every span mutation so
// concurrent readers (a stats scrape, or a job-status snapshot taken
// mid-run) always see a coherent tree.
type Trace struct {
	id    string
	start time.Time
	root  *Span
	mu    sync.Mutex
	stack []*Span // open spans, root first
}

func newTrace(rootName string) *Trace {
	t := &Trace{id: newTraceID(), start: time.Now()}
	t.root = &Span{name: rootName, start: t.start, outcome: OutcomeOK}
	t.stack = []*Span{t.root}
	return t
}

// NewTraceID returns a fresh trace identifier. The service stamps it
// on error responses that never reached the traced pipeline, so every
// non-2xx answer still carries a correlation id.
func NewTraceID() string { return newTraceID() }

// newTraceID returns 16 hex characters of crypto randomness (falling
// back to a time-derived ID if the entropy pool fails, which the Go
// runtime treats as impossible).
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

func (t *Trace) push(sp *Span) {
	t.mu.Lock()
	parent := t.stack[len(t.stack)-1]
	parent.child = append(parent.child, sp)
	t.stack = append(t.stack, sp)
	t.mu.Unlock()
}

func (t *Trace) snapshot() *TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.dur = time.Since(t.start)
	t.root.ended = true
	return &TraceData{TraceID: t.id, Root: snapshotSpan(t.root)}
}

// TraceData is the JSON-ready form of a finished trace, served in the
// /v2 "trace" response field and printed by the CLIs' -trace flag.
type TraceData struct {
	TraceID string    `json:"trace_id"`
	Root    *SpanData `json:"root"`
}

// SpanData is the JSON-ready form of one span.
type SpanData struct {
	Stage     string         `json:"stage"`
	ElapsedUs int64          `json:"elapsed_us"`
	Outcome   string         `json:"outcome"`
	Error     string         `json:"error,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Children  []*SpanData    `json:"children,omitempty"`
}

func snapshotSpan(s *Span) *SpanData {
	d := &SpanData{
		Stage:     s.name,
		ElapsedUs: s.dur.Microseconds(),
		Outcome:   s.outcome,
		Error:     s.errMsg,
	}
	if !s.ended {
		d.ElapsedUs = time.Since(s.start).Microseconds()
		d.Outcome = "open"
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.IsStr {
				d.Attrs[a.Key] = a.Str
			} else {
				d.Attrs[a.Key] = a.Int
			}
		}
	}
	for _, c := range s.child {
		d.Children = append(d.Children, snapshotSpan(c))
	}
	return d
}

// Find returns the first span in the tree (pre-order) named stage, or
// nil. Convenience for tests and tools.
func (t *TraceData) Find(stage string) *SpanData {
	if t == nil {
		return nil
	}
	return t.Root.find(stage)
}

func (s *SpanData) find(stage string) *SpanData {
	if s == nil {
		return nil
	}
	if s.Stage == stage {
		return s
	}
	for _, c := range s.Children {
		if m := c.find(stage); m != nil {
			return m
		}
	}
	return nil
}

// FormatTree renders the span tree as indented text for terminal
// output (netart -trace):
//
//	request 12.3ms ok
//	  parse 0.2ms ok
//	  place 3.1ms ok partitions=4 boxes=9
//	  ...
func FormatTree(t *TraceData) string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.TraceID)
	formatSpan(&b, t.Root, 0)
	return b.String()
}

func formatSpan(b *strings.Builder, s *SpanData, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %.3fms %s", s.Stage, float64(s.ElapsedUs)/1000.0, s.Outcome)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%v", k, s.Attrs[k])
		}
	}
	if s.Error != "" {
		fmt.Fprintf(b, " error=%q", s.Error)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		formatSpan(b, c, depth+1)
	}
}
