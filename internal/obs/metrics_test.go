package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a strict-enough parser of the text exposition
// format: # HELP / # TYPE comment lines, then samples of the form
// name{k="v",...} value. It fails the test on anything malformed, so
// the golden test below doubles as a format check.
func parsePrometheus(t *testing.T, text string) []promSample {
	t.Helper()
	var out []promSample
	types := map[string]string{}
	helped := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			if !helped[parts[0]] {
				t.Fatalf("line %d: TYPE before HELP for %q", ln+1, parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			s.name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			for _, kv := range strings.Split(rest[i+1:j], ",") {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					t.Fatalf("line %d: malformed label %q", ln+1, kv)
				}
				val, err := strconv.Unquote(kv[eq+1:])
				if err != nil {
					t.Fatalf("line %d: label value not quoted: %q", ln+1, kv)
				}
				s.labels[kv[:eq]] = val
			}
			rest = strings.TrimSpace(rest[j+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			s.name, rest = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		s.value = v
		// Every sample must belong to a declared family (histograms
		// declare name, samples use name_bucket/_sum/_count).
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suf) && types[strings.TrimSuffix(base, suf)] == "histogram" {
				base = strings.TrimSuffix(base, suf)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, s.name)
		}
		out = append(out, s)
	}
	return out
}

func find(samples []promSample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value, true
		}
	}
	return 0, false
}

func TestRegistryPrometheusExposition(t *testing.T) {
	p := NewPipeline()
	p.Requests.Add(7)
	p.OK.Add(5)
	p.Failed.Add(2)
	p.CacheHits.Inc()
	p.Inflight.Set(3)
	p.StageObserve("place", 3*time.Millisecond)
	p.StageObserve("place", 100*time.Microsecond)
	p.StageObserve("route", 12*time.Millisecond)

	var buf bytes.Buffer
	p.Reg.WritePrometheus(&buf)
	samples := parsePrometheus(t, buf.String())

	if v, ok := find(samples, "netart_requests_total", nil); !ok || v != 7 {
		t.Fatalf("netart_requests_total = %v (found %v), want 7", v, ok)
	}
	if v, ok := find(samples, "netart_request_outcomes_total", map[string]string{"outcome": "ok"}); !ok || v != 5 {
		t.Fatalf(`outcomes{outcome="ok"} = %v (found %v), want 5`, v, ok)
	}
	if v, ok := find(samples, "netart_cache_events_total", map[string]string{"event": "hit"}); !ok || v != 1 {
		t.Fatalf(`cache{event="hit"} = %v (found %v), want 1`, v, ok)
	}
	if v, ok := find(samples, "netart_inflight_requests", nil); !ok || v != 3 {
		t.Fatalf("inflight = %v (found %v), want 3", v, ok)
	}
	if v, ok := find(samples, "netart_stage_duration_seconds_count",
		map[string]string{"stage": "place"}); !ok || v != 2 {
		t.Fatalf(`stage count{stage="place"} = %v (found %v), want 2`, v, ok)
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	var last float64 = -1
	var sawInf bool
	for _, s := range samples {
		if s.name != "netart_stage_duration_seconds_bucket" || s.labels["stage"] != "place" {
			continue
		}
		if s.value < last {
			t.Fatalf("place buckets not cumulative: %v after %v", s.value, last)
		}
		last = s.value
		if s.labels["le"] == "+Inf" {
			sawInf = true
			if s.value != 2 {
				t.Fatalf("+Inf bucket = %v, want 2", s.value)
			}
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
	// Sum is in seconds.
	if v, ok := find(samples, "netart_stage_duration_seconds_sum",
		map[string]string{"stage": "place"}); !ok || v < 0.003 || v > 0.004 {
		t.Fatalf("place sum = %v (found %v), want ~0.0031", v, ok)
	}
	if v, ok := find(samples, "netart_uptime_seconds", nil); !ok || v < 0 {
		t.Fatalf("uptime = %v (found %v)", v, ok)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(500 * time.Millisecond)
	d := h.Snapshot()
	if p50 := d.QuantileMs(0.50); p50 > 1 {
		t.Fatalf("p50 = %vms, want sub-millisecond", p50)
	}
	if p99 := d.QuantileMs(0.99); p99 > 1 {
		t.Fatalf("p99 = %vms, want sub-millisecond (99/100 fast)", p99)
	}
	if d.MaxUs < 400_000 {
		t.Fatalf("max = %dus, want >= 400ms", d.MaxUs)
	}
	if fmt.Sprintf("%d", d.Count) != "100" {
		t.Fatalf("count = %d", d.Count)
	}
}
