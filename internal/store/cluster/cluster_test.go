package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func mustFleet(t *testing.T, self string, peers []string) *Fleet {
	t.Helper()
	f, err := New(self, peers)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", []string{"http://a:1"}); err == nil {
		t.Error("empty self accepted")
	}
	if _, err := New("ftp://a:1", nil); err == nil {
		t.Error("non-http scheme accepted")
	}
	if _, err := New("http://", nil); err == nil {
		t.Error("hostless URL accepted")
	}
	// Self is deduplicated and added when missing; trailing slashes and
	// spacing normalize away.
	f := mustFleet(t, "http://a:1/", []string{" http://b:2 ", "http://a:1", "", "http://b:2/"})
	if got := f.Peers(); len(got) != 2 {
		t.Fatalf("peers = %v, want 2 normalized entries", got)
	}
	if f.Self() != "http://a:1" {
		t.Fatalf("self = %q", f.Self())
	}
}

func TestSingleReplicaDisabled(t *testing.T) {
	f := mustFleet(t, "http://a:1", nil)
	if f.Enabled() {
		t.Error("single-replica fleet claims to be enabled")
	}
	if !f.OwnedBySelf(testKey(1)) {
		t.Error("single replica does not own its keys")
	}
	var nilFleet *Fleet
	if nilFleet.Enabled() {
		t.Error("nil fleet enabled")
	}
}

// TestOwnershipDeterministic: every replica's view agrees on who owns
// each key, regardless of the order the peer list was given in.
func TestOwnershipDeterministic(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	fa := mustFleet(t, urls[0], urls)
	fb := mustFleet(t, urls[1], []string{urls[2], urls[0], urls[1]}) // shuffled
	fc := mustFleet(t, urls[2], urls[:2])                            // self omitted from list

	for i := 0; i < 200; i++ {
		k := testKey(i)
		oa, ob, oc := fa.Owner(k), fb.Owner(k), fc.Owner(k)
		if oa != ob || ob != oc {
			t.Fatalf("key %d: owners disagree: %s / %s / %s", i, oa, ob, oc)
		}
		owners := 0
		for _, f := range []*Fleet{fa, fb, fc} {
			if f.OwnedBySelf(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %d claimed by %d replicas, want exactly 1", i, owners)
		}
	}
}

// TestDistribution: rendezvous hashing spreads keys roughly evenly.
func TestDistribution(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	f := mustFleet(t, urls[0], urls)
	counts := map[string]int{}
	const N = 3000
	for i := 0; i < N; i++ {
		counts[f.Owner(testKey(i))]++
	}
	for _, u := range urls {
		if c := counts[u]; c < N/6 || c > N/2 {
			t.Errorf("replica %s owns %d of %d keys (grossly uneven)", u, c, N)
		}
	}
}

// TestMinimalRemapping: removing one peer must remap only the keys it
// owned; every other key keeps its owner.
func TestMinimalRemapping(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	full := mustFleet(t, urls[0], urls)
	reduced := mustFleet(t, urls[0], urls[:2]) // c removed

	for i := 0; i < 500; i++ {
		k := testKey(i)
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != urls[2] && after != before {
			t.Fatalf("key %d moved from %s to %s though its owner survived", i, before, after)
		}
		if before == urls[2] && after == urls[2] {
			t.Fatalf("key %d still owned by the removed peer", i)
		}
	}
}

func TestProxyErrorFormatting(t *testing.T) {
	e := &ProxyError{Owner: "http://a:1", Status: 503}
	if e.Error() == "" {
		t.Error("empty status error text")
	}
	e2 := &ProxyError{Owner: "http://a:1", Err: fmt.Errorf("refused")}
	if e2.Error() == "" || e2.Unwrap() == nil {
		t.Error("transport error text/unwrap broken")
	}
}
