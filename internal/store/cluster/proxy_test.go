package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netart/internal/resilience"
)

// retryNone disables retries for tests that count calls.
func retryNone() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 1}
}

// eventLog collects Options.OnEvent calls.
type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) record(ev string) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) count(ev string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e == ev {
			n++
		}
	}
	return n
}

// TestProxyRetriesTransient: a 500-then-200 owner is retried once
// under the default policy, the retry is reported, and the breaker
// stays closed (a 5xx is transport-level success).
func TestProxyRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HopHeader) == "" {
			t.Error("proxied request missing hop header")
		}
		if calls.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("artwork"))
	}))
	defer owner.Close()

	var log eventLog
	f, err := New("http://self:1", []string{owner.URL}, Options{OnEvent: log.record})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	out, status, err := f.Proxy(context.Background(), testKey(1), normalized(t, owner.URL), []byte(`{}`))
	if err != nil {
		t.Fatalf("proxy failed after retry: %v", err)
	}
	if status != 200 || string(out) != "artwork" {
		t.Fatalf("status=%d body=%q", status, out)
	}
	if calls.Load() != 2 {
		t.Errorf("owner called %d times, want 2", calls.Load())
	}
	if log.count(EventProxyRetry) != 1 {
		t.Errorf("retry events = %d, want 1", log.count(EventProxyRetry))
	}
}

func normalized(t *testing.T, raw string) string {
	t.Helper()
	n, err := normalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestProxyBodyCap: a response longer than MaxResponseBytes is a
// proxy failure, not an OOM.
func TestProxyBodyCap(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 256)))
	}))
	defer owner.Close()

	f, err := New("http://self:1", []string{owner.URL}, Options{
		MaxResponseBytes: 64,
		Retry:            retryNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	_, _, perr := f.Proxy(context.Background(), testKey(1), normalized(t, owner.URL), []byte(`{}`))
	if perr == nil {
		t.Fatal("oversized response accepted")
	}
	if !strings.Contains(perr.Error(), "exceeds 64 bytes") {
		t.Errorf("error = %v", perr)
	}
}

// TestProxyErrorBodySnippet: a 5xx owner's error body rides in the
// ProxyError message, capped at 512 bytes.
func TestProxyErrorBodySnippet(t *testing.T) {
	long := strings.Repeat("e", 600)
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"pool saturated"}`+long, http.StatusServiceUnavailable)
	}))
	defer owner.Close()

	f, err := New("http://self:1", []string{owner.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	_, _, perr := f.Proxy(context.Background(), testKey(1), normalized(t, owner.URL), []byte(`{}`))
	if perr == nil {
		t.Fatal("5xx answer accepted")
	}
	var pe *ProxyError
	if !asProxyError(perr, &pe) {
		t.Fatalf("error type %T, want *ProxyError", perr)
	}
	if pe.Status != http.StatusServiceUnavailable {
		t.Errorf("status = %d", pe.Status)
	}
	if !strings.Contains(pe.Error(), "pool saturated") {
		t.Errorf("message lost the owner's error body: %v", pe)
	}
	if len(pe.Body) > proxyErrSnippet {
		t.Errorf("snippet %d bytes, cap %d", len(pe.Body), proxyErrSnippet)
	}
	if !pe.Transient() {
		t.Error("503 not classified transient")
	}
}

func asProxyError(err error, out **ProxyError) bool {
	pe, ok := err.(*ProxyError)
	if ok {
		*out = pe
	}
	return ok
}

// TestProxy4xxReturned: the owner's 4xx verdict is returned to the
// caller, not treated as a proxy failure.
func TestProxy4xxReturned(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown workload"}`, http.StatusBadRequest)
	}))
	defer owner.Close()

	f, err := New("http://self:1", []string{owner.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	out, status, perr := f.Proxy(context.Background(), testKey(1), normalized(t, owner.URL), []byte(`{}`))
	if perr != nil {
		t.Fatalf("4xx answer became an error: %v", perr)
	}
	if status != http.StatusBadRequest || !strings.Contains(string(out), "unknown workload") {
		t.Errorf("status=%d body=%q", status, out)
	}
}

// TestProxyHedgeWins: a blackholed owner is out-raced by a hedged
// request to the next live peer; both hedge events fire and the hedge
// target sees the hop header.
func TestProxyHedgeWins(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: net/http only watches for client
		// disconnect once the request body is consumed, and the hedge
		// loser's cancel must unblock this handler.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // blackhole until the loser is canceled
	}))
	defer owner.Close()
	var hopSeen atomic.Bool
	third := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hopSeen.Store(r.Header.Get(HopHeader) != "")
		w.Write([]byte("hedged artwork"))
	}))
	defer third.Close()

	var log eventLog
	f, err := New("http://self:1", []string{owner.URL, third.URL}, Options{
		HedgeAfter: 20 * time.Millisecond,
		OnEvent:    log.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	out, status, perr := f.Proxy(ctx, testKey(1), normalized(t, owner.URL), []byte(`{}`))
	if perr != nil {
		t.Fatalf("hedged proxy failed: %v", perr)
	}
	if status != 200 || string(out) != "hedged artwork" {
		t.Fatalf("status=%d body=%q", status, out)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("hedge took %v; the blackholed owner's timeout leaked through", d)
	}
	if log.count(EventHedgeLaunched) != 1 || log.count(EventHedgeWon) != 1 {
		t.Errorf("hedge events launched=%d won=%d, want 1/1",
			log.count(EventHedgeLaunched), log.count(EventHedgeWon))
	}
	if !hopSeen.Load() {
		t.Error("hedge target did not receive the hop header")
	}
}

// TestProxyNoHedgeWithoutThirdPeer: a two-replica fleet has no hedge
// target; the proxy degrades to the plain retry path.
func TestProxyNoHedgeWithoutThirdPeer(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer owner.Close()

	var log eventLog
	f, err := New("http://self:1", []string{owner.URL}, Options{
		HedgeAfter: time.Nanosecond,
		OnEvent:    log.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, _, err := f.Proxy(context.Background(), testKey(1), normalized(t, owner.URL), []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if log.count(EventHedgeLaunched) != 0 {
		t.Error("hedge launched with no third peer")
	}
}

// TestOwnerRemapsAroundOpenBreaker is the dynamic re-sharding core:
// opening a peer's breaker removes it from the ownership set, its keys
// remap deterministically to live peers, and closing the breaker maps
// them straight back.
func TestOwnerRemapsAroundOpenBreaker(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	f, err := New(urls[0], urls, Options{
		Probe: &HealthOptions{ProbeInterval: -1, FailThreshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A peer-set view with the victim removed predicts the remap.
	var victim string
	var victimKeys []string
	for i := 0; victim == "" || len(victimKeys) < 5; i++ {
		if i > 10000 {
			t.Fatal("could not collect victim-owned keys")
		}
		k := testKey(i)
		o := f.Owner(k)
		if o == f.Self() {
			continue
		}
		if victim == "" {
			victim = o
		}
		if o == victim {
			victimKeys = append(victimKeys, k)
		}
	}
	var survivors []string
	for _, u := range urls {
		if u != victim {
			survivors = append(survivors, u)
		}
	}
	reduced := mustFleet(t, urls[0], survivors)

	f.health.failure(victim) // threshold 1: opens immediately
	if f.StateOf(victim) != StateOpen {
		t.Fatal("breaker did not open")
	}
	for _, k := range victimKeys {
		if got, want := f.Owner(k), reduced.Owner(k); got != want {
			t.Fatalf("key %s remapped to %s, want %s", k, got, want)
		}
	}
	// Keys the victim never owned keep their owner through the outage.
	for i := 0; i < 200; i++ {
		k := testKey(i)
		if reduced.Owner(k) == f.Owner(k) {
			continue
		}
		t.Fatalf("key %d changed owner though its owner is live", i)
	}

	f.health.success(victim)
	for _, k := range victimKeys {
		if f.Owner(k) != victim {
			t.Fatal("recovered peer did not get its keys back")
		}
	}

	// PeerStates reflects the cycle for the metrics gauge.
	for _, ps := range f.PeerStates() {
		if ps.State != StateClosed {
			t.Errorf("peer %s state %v after recovery", ps.URL, ps.State)
		}
	}
}

// TestProxyFailureOpensBreaker: repeated transport failures through
// the real proxy path open the owner's breaker.
func TestProxyFailureOpensBreaker(t *testing.T) {
	plan := NewFaultPlan(1)
	f, err := New("http://self:1", []string{"http://victim:9"}, Options{
		Transport: &FaultTransport{Plan: plan},
		Retry:     retryNone(),
		Probe:     &HealthOptions{ProbeInterval: -1, FailThreshold: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan.Kill("victim:9")

	victim := "http://victim:9"
	for i := 0; i < 2; i++ {
		if _, _, err := f.Proxy(context.Background(), testKey(i), victim, []byte(`{}`)); err == nil {
			t.Fatal("killed peer answered")
		}
	}
	if f.StateOf(victim) != StateOpen {
		t.Fatalf("breaker state %v after 2 transport failures, want open", f.StateOf(victim))
	}
	if f.Owner(testKey(1)) != f.Self() {
		t.Error("with the only remote peer down, self must own everything")
	}
}
