package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Network-layer fault injection: where internal/resilience injects
// faults into pipeline stages, FaultTransport injects them into the
// fleet's peer traffic — probes and proxies alike — at the
// http.RoundTripper seam. The chaos batteries use it to kill,
// blackhole and restore peers mid-run without rebinding listeners.

// FaultMode is one kind of injected network failure.
type FaultMode int

const (
	// FaultError fails the round trip instantly (connection refused).
	FaultError FaultMode = iota
	// FaultLatency sleeps, then forwards the request normally.
	FaultLatency
	// FaultBlackhole hangs until the request context ends — the
	// packets-dropped partition, the failure mode timeouts exist for.
	FaultBlackhole
	// Fault5xx forwards nothing and synthesizes a 503 answer: the
	// peer's TCP stack is fine, the peer is not.
	Fault5xx
)

func (m FaultMode) String() string {
	switch m {
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultBlackhole:
		return "blackhole"
	case Fault5xx:
		return "5xx"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// FaultRule arms one probabilistic fault against matching peers.
type FaultRule struct {
	// HostPat is a substring of the target host:port; "" matches every
	// peer. It cannot contain ':' (the spec separator) — single out
	// one replica by its port.
	HostPat string
	Mode    FaultMode
	// Prob is the per-request fire probability in (0,1]; 0 means 1.
	Prob float64
	// Latency is the FaultLatency sleep (default 10ms).
	Latency time.Duration
	// Count caps total fires; 0 is unlimited.
	Count int
}

// FaultPlan is a seeded set of fault rules plus dynamic per-host
// overrides (Kill / Blackhole / Restore). One plan is typically
// shared by every replica of an in-process test fleet, so "this peer
// is down" is a single switch seen by all of them.
type FaultPlan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*armedFault
	down  map[string]FaultMode // host → unconditional mode
	fired map[string]uint64    // mode name → fires
}

type armedFault struct {
	rule  FaultRule
	fires int
}

// NewFaultPlan builds an empty plan with a deterministic RNG.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:   rand.New(rand.NewSource(seed)),
		down:  make(map[string]FaultMode),
		fired: make(map[string]uint64),
	}
}

// Arm adds a probabilistic rule.
func (p *FaultPlan) Arm(r FaultRule) {
	if r.Prob <= 0 || r.Prob > 1 {
		r.Prob = 1
	}
	if r.Mode == FaultLatency && r.Latency <= 0 {
		r.Latency = 10 * time.Millisecond
	}
	p.mu.Lock()
	p.rules = append(p.rules, &armedFault{rule: r})
	p.mu.Unlock()
}

// Kill makes every request to host fail instantly (the process died).
func (p *FaultPlan) Kill(host string) { p.set(host, FaultError) }

// Blackhole makes every request to host hang until its context ends
// (the network partition).
func (p *FaultPlan) Blackhole(host string) { p.set(host, FaultBlackhole) }

// Restore lifts a Kill or Blackhole.
func (p *FaultPlan) Restore(host string) {
	p.mu.Lock()
	delete(p.down, hostOf(host))
	p.mu.Unlock()
}

func (p *FaultPlan) set(host string, m FaultMode) {
	p.mu.Lock()
	p.down[hostOf(host)] = m
	p.mu.Unlock()
}

// hostOf accepts a bare host:port or a full URL.
func hostOf(s string) string {
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	return strings.TrimSuffix(s, "/")
}

// Counts snapshots fires per mode name (test assertions).
func (p *FaultPlan) Counts() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.fired))
	for k, v := range p.fired {
		out[k] = v
	}
	return out
}

// decide picks at most one fault for a request to host: dynamic
// overrides first, then armed rules in order.
func (p *FaultPlan) decide(host string) (FaultMode, time.Duration, bool) {
	if p == nil {
		return 0, 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.down[host]; ok {
		p.fired[m.String()]++
		return m, 0, true
	}
	for _, a := range p.rules {
		if a.rule.Count > 0 && a.fires >= a.rule.Count {
			continue
		}
		if a.rule.HostPat != "" && !strings.Contains(host, a.rule.HostPat) {
			continue
		}
		if a.rule.Prob < 1 && p.rng.Float64() >= a.rule.Prob {
			continue
		}
		a.fires++
		p.fired[a.rule.Mode.String()]++
		return a.rule.Mode, a.rule.Latency, true
	}
	return 0, 0, false
}

// FaultTransport injects a plan's faults under any http.RoundTripper.
// A nil Plan (or no matching rule) forwards transparently.
type FaultTransport struct {
	Base http.RoundTripper // nil means http.DefaultTransport
	Plan *FaultPlan
}

func (t *FaultTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	mode, lat, ok := t.Plan.decide(req.URL.Host)
	if !ok {
		return t.base().RoundTrip(req)
	}
	switch mode {
	case FaultLatency:
		select {
		case <-time.After(lat):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base().RoundTrip(req)
	case FaultBlackhole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Fault5xx:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"cluster: injected 503"}`)),
			Request:    req,
		}, nil
	default: // FaultError
		return nil, fmt.Errorf("cluster: injected transport error to %s", req.URL.Host)
	}
}

// SplitFaultSpec separates the peer-layer clauses (those starting
// with "peer") of a combined -faults spec from the pipeline-layer
// clauses understood by resilience.ParseSpec, so one flag can arm
// both injectors.
func SplitFaultSpec(spec string) (peer, pipeline string) {
	var ps, rs []string
	for _, clause := range splitClauses(spec) {
		if strings.HasPrefix(clause, "peer:") || strings.HasPrefix(clause, "peer@") {
			ps = append(ps, clause)
		} else {
			rs = append(rs, clause)
		}
	}
	return strings.Join(ps, ";"), strings.Join(rs, ";")
}

func splitClauses(spec string) []string {
	var out []string
	for _, c := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// ParseFaultSpec compiles peer-layer fault clauses into a plan:
//
//	peer[@HOSTPAT]:MODE[:TOKEN[:TOKEN...]]
//
// MODE is error, latency, blackhole or 5xx. Each TOKEN is a fire
// probability (0.05), a latency duration (150ms), or a fire cap (x3)
// — the same token grammar as resilience.ParseSpec. HOSTPAT matches
// as a ':'-free substring of the peer's host:port. An empty spec
// returns (nil, nil).
func ParseFaultSpec(spec string, seed int64) (*FaultPlan, error) {
	clauses := splitClauses(spec)
	if len(clauses) == 0 {
		return nil, nil
	}
	plan := NewFaultPlan(seed)
	for _, clause := range clauses {
		fields := strings.Split(clause, ":")
		head := fields[0]
		if !strings.HasPrefix(head, "peer") {
			return nil, fmt.Errorf("cluster: clause %q is not a peer fault (want peer[@HOST]:mode...)", clause)
		}
		var r FaultRule
		if rest := strings.TrimPrefix(head, "peer"); rest != "" {
			if !strings.HasPrefix(rest, "@") || len(rest) < 2 {
				return nil, fmt.Errorf("cluster: bad peer clause %q (want peer[@HOST]:mode...)", clause)
			}
			r.HostPat = rest[1:]
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("cluster: clause %q needs a mode (error, latency, blackhole, 5xx)", clause)
		}
		switch fields[1] {
		case "error":
			r.Mode = FaultError
		case "latency":
			r.Mode = FaultLatency
		case "blackhole":
			r.Mode = FaultBlackhole
		case "5xx":
			r.Mode = Fault5xx
		default:
			return nil, fmt.Errorf("cluster: unknown peer fault mode %q (error, latency, blackhole, 5xx)", fields[1])
		}
		for _, tok := range fields[2:] {
			if strings.HasPrefix(tok, "x") {
				n, err := strconv.Atoi(tok[1:])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("cluster: bad fire cap %q in %q", tok, clause)
				}
				r.Count = n
				continue
			}
			if v, err := strconv.ParseFloat(tok, 64); err == nil {
				if v <= 0 || v > 1 {
					return nil, fmt.Errorf("cluster: probability %q in %q outside (0,1]", tok, clause)
				}
				r.Prob = v
				continue
			}
			if d, err := time.ParseDuration(tok); err == nil {
				r.Latency = d
				continue
			}
			return nil, fmt.Errorf("cluster: unrecognized token %q in %q (probability, duration, or xN)", tok, clause)
		}
		plan.Arm(r)
	}
	return plan, nil
}
