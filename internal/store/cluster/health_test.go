package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestProberOpensAndRecovers drives a real prober against an httptest
// peer that can be flipped between healthy and sick: the breaker must
// open while healthz answers 500 and re-close after it recovers.
func TestProberOpensAndRecovers(t *testing.T) {
	var sick atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" {
			t.Errorf("probe hit %s, want /v1/healthz", r.URL.Path)
		}
		if sick.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer peer.Close()

	var mu sync.Mutex
	var transitions []State
	h := newHealth([]string{"http://self:1", peer.URL}, "http://self:1", nil, HealthOptions{
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 2,
		OpenFor:       30 * time.Millisecond,
		OnTransition: func(p string, from, to State) {
			if p != peer.URL {
				t.Errorf("transition for %q, want %q", p, peer.URL)
			}
			mu.Lock()
			transitions = append(transitions, to)
			mu.Unlock()
		},
	})
	h.start()
	defer h.close()

	if !h.live(peer.URL) {
		t.Fatal("healthy peer not live at start")
	}
	if !h.live("http://self:1") {
		t.Fatal("self must always read live")
	}

	sick.Store(true)
	waitFor(t, 2*time.Second, func() bool { return h.stateOf(peer.URL) == StateOpen },
		"breaker never opened while healthz answered 500")
	if h.live(peer.URL) {
		t.Error("open peer still counted live")
	}

	sick.Store(false)
	waitFor(t, 2*time.Second, func() bool { return h.live(peer.URL) },
		"breaker never re-closed after the peer recovered")

	mu.Lock()
	defer mu.Unlock()
	sawOpen, sawClosed := false, false
	for _, s := range transitions {
		if s == StateOpen {
			sawOpen = true
		}
		if sawOpen && s == StateClosed {
			sawClosed = true
		}
	}
	if !sawOpen || !sawClosed {
		t.Errorf("transition sequence %v missing open and/or re-close", transitions)
	}
}

// TestProberDisabled: ProbeInterval <= 0 builds breakers (proxy
// outcomes still drive them) but launches no probe goroutines.
func TestProberDisabled(t *testing.T) {
	var probes atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
	}))
	defer peer.Close()

	h := newHealth([]string{peer.URL}, "http://self:1", nil, HealthOptions{ProbeInterval: -1})
	h.start()
	defer h.close()

	time.Sleep(30 * time.Millisecond)
	if n := probes.Load(); n != 0 {
		t.Fatalf("disabled prober sent %d probes", n)
	}
	// Breakers still exist and respond to explicit outcomes.
	h.failure(peer.URL)
	h.failure(peer.URL)
	h.failure(peer.URL)
	if h.live(peer.URL) {
		t.Fatal("proxy failures did not open the breaker with probing disabled")
	}
}

// TestHealthNilReceiver: a fleet without a health layer treats every
// peer as permanently live.
func TestHealthNilReceiver(t *testing.T) {
	var h *health
	if !h.live("http://a:1") {
		t.Error("nil health not live")
	}
	if h.stateOf("http://a:1") != StateClosed {
		t.Error("nil health state not closed")
	}
	h.success("http://a:1")
	h.failure("http://a:1")
	h.close()
}

func TestHealthOptionDefaults(t *testing.T) {
	o := HealthOptions{ProbeInterval: 2 * time.Second}.withDefaults()
	if o.ProbeTimeout != 600*time.Millisecond {
		t.Errorf("ProbeTimeout = %v, want 600ms", o.ProbeTimeout)
	}
	if o.FailThreshold != 3 {
		t.Errorf("FailThreshold = %d, want 3", o.FailThreshold)
	}
	if o.OpenFor != 4*time.Second {
		t.Errorf("OpenFor = %v, want 4s", o.OpenFor)
	}
	// Without probing the timeout and open window fall back to 1s.
	o = HealthOptions{ProbeInterval: -5}.withDefaults()
	if o.ProbeInterval != 0 || o.ProbeTimeout != time.Second || o.OpenFor != time.Second {
		t.Errorf("disabled defaults = %+v", o)
	}
	// A very long interval caps the probe timeout at 1s.
	o = HealthOptions{ProbeInterval: time.Minute}.withDefaults()
	if o.ProbeTimeout != time.Second {
		t.Errorf("ProbeTimeout = %v, want capped 1s", o.ProbeTimeout)
	}
}

func TestJitteredRange(t *testing.T) {
	h := &health{opts: HealthOptions{ProbeInterval: time.Second}}
	for i := 0; i < 100; i++ {
		d := h.jittered()
		if d < 400*time.Millisecond || d >= 700*time.Millisecond {
			t.Fatalf("jittered() = %v outside [0.4s, 0.7s)", d)
		}
	}
}
