package cluster

import (
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position in the closed → open →
// half-open cycle. Closed is the healthy state (traffic and probes
// flow), Open means the peer has failed FailThreshold consecutive
// times and is excluded from ownership, HalfOpen admits exactly one
// trial probe to decide between reopening and closing.
type State int

const (
	StateClosed State = iota
	StateHalfOpen
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// GaugeValue renders the state for the netart_peer_state gauge:
// 1 closed (live), 0.5 half-open (probing), 0 open (down).
func (s State) GaugeValue() float64 {
	switch s {
	case StateClosed:
		return 1
	case StateHalfOpen:
		return 0.5
	default:
		return 0
	}
}

// Breaker is one peer's circuit breaker. Failures are consecutive
// transport-level outcomes (a probe that timed out, a proxy whose
// connection failed); any success resets the count and closes the
// breaker. The half-open state admits exactly one in-flight trial —
// concurrent Allow calls while a trial is pending are rejected, so a
// recovering peer is not stampeded.
type Breaker struct {
	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool // a half-open trial is in flight

	threshold    int
	openFor      time.Duration
	now          func() time.Time
	onTransition func(from, to State)
}

// newBreaker builds a closed breaker. onTransition (may be nil) is
// called under the breaker's lock and must not call back into it.
func newBreaker(threshold int, openFor time.Duration, now func() time.Time, onTransition func(from, to State)) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if openFor <= 0 {
		openFor = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, openFor: openFor, now: now, onTransition: onTransition}
}

// transition moves to a new state and fires the callback; callers
// hold b.mu.
func (b *Breaker) transition(to State) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// State reports the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a probe may be sent now. Closed always
// allows; open allows nothing until openFor has elapsed, then moves
// to half-open and admits one trial; half-open admits one trial at a
// time. The proxy path never calls Allow — non-closed peers are
// already excluded from ownership — so Allow gates probes only.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.transition(StateHalfOpen)
		b.probing = true
		return true
	default: // StateHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed round trip: the failure streak resets
// and the breaker closes from any state. Closing straight from open
// is deliberate — a proxy response that arrives while the peer is
// marked down proves the peer reachable, and waiting out the
// half-open dance would only delay the remap back.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails = 0
	b.transition(StateClosed)
}

// Failure records a transport-level failure. Closed opens after
// threshold consecutive failures; a failed half-open trial reopens
// and restarts the openFor clock. Failures while already open are
// ignored — late losers of a hedge race must not extend the reopen
// clock and keep a recovered peer down.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case StateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.now()
			b.transition(StateOpen)
		}
	case StateHalfOpen:
		b.openedAt = b.now()
		b.transition(StateOpen)
	}
}
