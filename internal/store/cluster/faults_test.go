package cluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// okRT is a stub base transport answering 200 to everything.
type okRT struct{ calls int }

func (rt *okRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.calls++
	return &http.Response{
		StatusCode: 200,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

func faultReq(t *testing.T, host string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+host+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestSplitFaultSpec(t *testing.T) {
	peer, pipe := SplitFaultSpec("route.wavefront:error:0.05;peer:5xx:0.1;render:panic,peer@9002:blackhole")
	if peer != "peer:5xx:0.1;peer@9002:blackhole" {
		t.Errorf("peer spec = %q", peer)
	}
	if pipe != "route.wavefront:error:0.05;render:panic" {
		t.Errorf("pipeline spec = %q", pipe)
	}
	if p, r := SplitFaultSpec(""); p != "" || r != "" {
		t.Errorf("empty spec split to %q / %q", p, r)
	}
}

func TestParseFaultSpec(t *testing.T) {
	plan, err := ParseFaultSpec("peer@9002:latency:0.5:150ms:x3;peer:error", 42)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || len(plan.rules) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	r := plan.rules[0].rule
	if r.HostPat != "9002" || r.Mode != FaultLatency || r.Prob != 0.5 ||
		r.Latency != 150*time.Millisecond || r.Count != 3 {
		t.Errorf("rule 0 = %+v", r)
	}
	if r2 := plan.rules[1].rule; r2.HostPat != "" || r2.Mode != FaultError {
		t.Errorf("rule 1 = %+v", r2)
	}

	if p, err := ParseFaultSpec("", 0); p != nil || err != nil {
		t.Errorf("empty spec: plan=%v err=%v", p, err)
	}
	for _, bad := range []string{
		"route:error",      // not a peer clause
		"peer9002:error",   // missing @
		"peer@:error",      // empty host pattern
		"peer",             // no mode
		"peer:reboot",      // unknown mode
		"peer:error:1.5",   // probability out of range
		"peer:error:x0",    // zero fire cap
		"peer:error:bogus", // unrecognized token
	} {
		if _, err := ParseFaultSpec(bad, 0); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFaultTransportModes(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.Arm(FaultRule{HostPat: "err-host", Mode: FaultError})
	plan.Arm(FaultRule{HostPat: "5xx-host", Mode: Fault5xx})
	plan.Arm(FaultRule{HostPat: "lat-host", Mode: FaultLatency, Latency: 5 * time.Millisecond})
	base := &okRT{}
	ft := &FaultTransport{Base: base, Plan: plan}

	if _, err := ft.RoundTrip(faultReq(t, "err-host:1")); err == nil {
		t.Error("error mode round trip succeeded")
	}

	resp, err := ft.RoundTrip(faultReq(t, "5xx-host:1"))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("5xx mode: resp=%v err=%v", resp, err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "injected 503") {
			t.Errorf("5xx body = %q", body)
		}
	}
	if base.calls != 0 {
		t.Errorf("synthesized modes reached the base transport %d times", base.calls)
	}

	start := time.Now()
	if _, err := ft.RoundTrip(faultReq(t, "lat-host:1")); err != nil {
		t.Errorf("latency mode failed: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("latency mode did not sleep")
	}
	if base.calls != 1 {
		t.Errorf("latency mode forwarded %d times, want 1", base.calls)
	}

	// Unmatched hosts forward transparently.
	if _, err := ft.RoundTrip(faultReq(t, "clean-host:1")); err != nil || base.calls != 2 {
		t.Errorf("clean host: err=%v calls=%d", err, base.calls)
	}

	counts := plan.Counts()
	if counts["error"] != 1 || counts["5xx"] != 1 || counts["latency"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFaultBlackholeHangsUntilCancel(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.Blackhole("http://dark-host:1")
	ft := &FaultTransport{Base: &okRT{}, Plan: plan}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := faultReq(t, "dark-host:1").WithContext(ctx)
	start := time.Now()
	_, err := ft.RoundTrip(req)
	if err == nil {
		t.Fatal("blackholed round trip succeeded")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("blackhole returned before the context ended")
	}
}

func TestFaultPlanKillRestore(t *testing.T) {
	plan := NewFaultPlan(1)
	base := &okRT{}
	ft := &FaultTransport{Base: base, Plan: plan}

	// Kill accepts full URLs; decide matches on host:port.
	plan.Kill("http://victim:9001/")
	if _, err := ft.RoundTrip(faultReq(t, "victim:9001")); err == nil {
		t.Fatal("killed host answered")
	}
	plan.Restore("victim:9001")
	if _, err := ft.RoundTrip(faultReq(t, "victim:9001")); err != nil {
		t.Fatalf("restored host still failing: %v", err)
	}
}

func TestFaultRuleCountCap(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.Arm(FaultRule{Mode: FaultError, Count: 2})
	ft := &FaultTransport{Base: &okRT{}, Plan: plan}
	fails := 0
	for i := 0; i < 5; i++ {
		if _, err := ft.RoundTrip(faultReq(t, "h:1")); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("capped rule fired %d times, want 2", fails)
	}
}

func TestFaultPlanSeededProbability(t *testing.T) {
	// Same seed → identical fire pattern; the probability roughly holds.
	pattern := func(seed int64) (string, int) {
		plan := NewFaultPlan(seed)
		plan.Arm(FaultRule{Mode: FaultError, Prob: 0.3})
		var sb strings.Builder
		fires := 0
		for i := 0; i < 200; i++ {
			if _, _, ok := plan.decide("h:1"); ok {
				sb.WriteByte('x')
				fires++
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String(), fires
	}
	p1, fires := pattern(7)
	p2, _ := pattern(7)
	if p1 != p2 {
		t.Error("same seed produced different fire patterns")
	}
	if fires < 30 || fires > 90 {
		t.Errorf("prob 0.3 fired %d/200 times", fires)
	}
}

func TestNilFaultPlan(t *testing.T) {
	var p *FaultPlan
	if _, _, ok := p.decide("h:1"); ok {
		t.Error("nil plan decided a fault")
	}
}
