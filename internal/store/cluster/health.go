package cluster

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// HealthOptions configures the fleet health layer: one circuit
// breaker per remote peer, optionally driven by an active prober
// that GETs each peer's /v1/healthz on a jittered schedule.
type HealthOptions struct {
	// ProbeInterval is the target probe period per peer. Probes fire
	// at a jittered 40–70% of it (see jittered), so FailThreshold
	// consecutive failures — each bounded by ProbeTimeout — complete
	// within FailThreshold × ProbeInterval worst case, which keeps
	// dead-peer detection inside the "re-shard within probe-interval
	// × 3" budget for the default threshold. 0 disables active
	// probing: breakers still open on proxy failures, but an open
	// breaker never half-opens again (no prober to trial it), so the
	// remap is permanent until restart.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default
	// ProbeInterval×3/10, capped at 1s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure count that opens a
	// peer's breaker (default 3).
	FailThreshold int
	// OpenFor is how long an open breaker rejects before half-opening
	// (default 2×ProbeInterval, or 1s without probing).
	OpenFor time.Duration
	// OnTransition observes every breaker state change (metrics).
	// Called synchronously from probe and proxy paths; must be fast.
	OnTransition func(peer string, from, to State)

	// now is stubbed by tests; nil means time.Now.
	now func() time.Time
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.ProbeInterval < 0 {
		o.ProbeInterval = 0
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval * 3 / 10
		if o.ProbeTimeout > time.Second || o.ProbeTimeout <= 0 {
			o.ProbeTimeout = time.Second
		}
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 2 * o.ProbeInterval
		if o.OpenFor <= 0 {
			o.OpenFor = time.Second
		}
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// health is the per-fleet health state: a breaker per remote peer and
// (when probing is enabled) one probe goroutine per peer. All methods
// are nil-receiver safe — a fleet without a health layer treats every
// peer as permanently live, preserving the static-ownership behavior.
type health struct {
	opts     HealthOptions
	client   *http.Client
	breakers map[string]*Breaker
	stop     chan struct{}
	wg       sync.WaitGroup
}

// newHealth builds the breakers for every peer except self. The probe
// client shares the fleet's transport, so network-layer fault
// injection (FaultTransport) applies to probes exactly as it does to
// proxies — a blackholed peer fails its probes too.
func newHealth(peers []string, self string, transport http.RoundTripper, opts HealthOptions) *health {
	opts = opts.withDefaults()
	h := &health{
		opts:     opts,
		client:   &http.Client{Transport: transport, Timeout: opts.ProbeTimeout},
		breakers: make(map[string]*Breaker),
		stop:     make(chan struct{}),
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		peer := p
		var onT func(from, to State)
		if opts.OnTransition != nil {
			onT = func(from, to State) { opts.OnTransition(peer, from, to) }
		}
		h.breakers[peer] = newBreaker(opts.FailThreshold, opts.OpenFor, opts.now, onT)
	}
	return h
}

// start launches the probe loops (no-op when probing is disabled).
func (h *health) start() {
	if h.opts.ProbeInterval <= 0 {
		return
	}
	for peer := range h.breakers {
		h.wg.Add(1)
		go h.probeLoop(peer)
	}
}

// probeLoop probes one peer forever at a jittered interval. The
// breaker's Allow gates the half-open dance: while open, ticks pass
// without traffic until OpenFor elapses, then exactly one trial probe
// decides recovery.
func (h *health) probeLoop(peer string) {
	defer h.wg.Done()
	b := h.breakers[peer]
	t := time.NewTimer(h.jittered())
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
		if b.Allow() {
			if h.probe(peer) {
				b.Success()
			} else {
				b.Failure()
			}
		}
		t.Reset(h.jittered())
	}
}

// jittered spreads probes over [0.4, 0.7) of the interval — equal
// jitter below the nominal period, so independent replicas
// decorrelate while each failure round trip (delay + ProbeTimeout)
// stays under one full interval. math/rand's global source is
// concurrency-safe and deliberately unseeded here: probe phase is an
// execution detail, never a result.
func (h *health) jittered() time.Duration {
	i := float64(h.opts.ProbeInterval)
	return time.Duration(0.4*i + rand.Float64()*0.3*i)
}

// probe reports whether peer's /v1/healthz answered 2xx in time.
// Probes judge the HTTP status where proxies judge only transport: a
// sick-but-responsive peer (healthz 5xx) should leave the ownership
// set even though its TCP stack still answers.
func (h *health) probe(peer string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// close stops the probe loops and waits for them.
func (h *health) close() {
	if h == nil {
		return
	}
	close(h.stop)
	h.wg.Wait()
}

// live reports whether peer participates in ownership: closed breaker
// or no breaker at all (self, unknown, or no health layer).
func (h *health) live(peer string) bool {
	if h == nil {
		return true
	}
	b, ok := h.breakers[peer]
	return !ok || b.State() == StateClosed
}

// stateOf reports peer's breaker state (closed when untracked).
func (h *health) stateOf(peer string) State {
	if h == nil {
		return StateClosed
	}
	if b, ok := h.breakers[peer]; ok {
		return b.State()
	}
	return StateClosed
}

// success / failure feed live proxy outcomes into the breaker, so
// traffic and probes drive the same state machine.
func (h *health) success(peer string) {
	if h == nil {
		return
	}
	if b, ok := h.breakers[peer]; ok {
		b.Success()
	}
}

func (h *health) failure(peer string) {
	if h == nil {
		return
	}
	if b, ok := h.breakers[peer]; ok {
		b.Failure()
	}
}
