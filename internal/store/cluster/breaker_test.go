package cluster

import (
	"testing"
	"time"
)

// stubClock is a manually-advanced clock for breaker timing tests.
type stubClock struct{ t time.Time }

func (c *stubClock) now() time.Time          { return c.t }
func (c *stubClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newStubClock() *stubClock               { return &stubClock{t: time.Unix(1000, 0)} }
func (c *stubClock) breaker(threshold int, openFor time.Duration, onT func(from, to State)) *Breaker {
	return newBreaker(threshold, openFor, c.now, onT)
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newStubClock()
	b := clk.breaker(3, time.Second, nil)
	if b.State() != StateClosed {
		t.Fatalf("new breaker state = %v", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatalf("opened after 2/3 failures")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker allowed a probe before OpenFor elapsed")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := newStubClock()
	b := clk.breaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("success did not reset the consecutive-failure streak")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("third consecutive failure after reset did not open")
	}
}

func TestBreakerHalfOpenCycle(t *testing.T) {
	clk := newStubClock()
	var transitions []string
	b := clk.breaker(1, time.Second, func(from, to State) {
		transitions = append(transitions, from.String()+">"+to.String())
	})
	b.Failure() // threshold 1: opens immediately
	if b.State() != StateOpen {
		t.Fatal("did not open")
	}
	if b.Allow() {
		t.Fatal("allowed while OpenFor pending")
	}
	clk.advance(time.Second)
	// OpenFor elapsed: the next Allow admits exactly one trial.
	if !b.Allow() {
		t.Fatal("did not half-open after OpenFor")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second trial admitted while one is in flight")
	}
	// Trial fails: reopen and restart the clock.
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("failed trial did not reopen")
	}
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopen did not restart the OpenFor clock")
	}
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("did not half-open again")
	}
	// Trial succeeds: closed, streak reset.
	b.Success()
	if b.State() != StateClosed {
		t.Fatal("successful trial did not close")
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (%v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestBreakerSuccessClosesFromOpen(t *testing.T) {
	// A proxy response arriving while the peer is marked down proves it
	// reachable; the breaker closes without the half-open dance.
	clk := newStubClock()
	b := clk.breaker(1, time.Minute, nil)
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("did not open")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatal("success while open did not close")
	}
}

func TestBreakerIgnoresFailuresWhileOpen(t *testing.T) {
	// Late losers of a hedge race must not extend the reopen clock.
	clk := newStubClock()
	b := clk.breaker(1, time.Second, nil)
	b.Failure()
	clk.advance(900 * time.Millisecond)
	b.Failure() // must NOT reset openedAt
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("failure while open extended the reopen clock")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0, nil, nil)
	b.Failure() // threshold floors at 1
	if b.State() != StateOpen {
		t.Fatal("threshold 0 did not floor to 1")
	}
}

func TestStateStrings(t *testing.T) {
	cases := []struct {
		s     State
		str   string
		gauge float64
	}{
		{StateClosed, "closed", 1},
		{StateHalfOpen, "half-open", 0.5},
		{StateOpen, "open", 0},
	}
	for _, c := range cases {
		if c.s.String() != c.str {
			t.Errorf("%d.String() = %q, want %q", c.s, c.s.String(), c.str)
		}
		if c.s.GaugeValue() != c.gauge {
			t.Errorf("%d.GaugeValue() = %v, want %v", c.s, c.s.GaugeValue(), c.gauge)
		}
	}
}
