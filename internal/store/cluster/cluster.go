// Package cluster gives a fleet of netartd replicas consistent-hash
// ownership of design hashes. Every replica is configured with the
// same static peer list; rendezvous (highest-random-weight) hashing
// maps each content-addressed cache key to exactly one owner, so a
// warm result lives on one replica and every other replica proxies
// cold requests for that key to it instead of recomputing.
//
// Rendezvous hashing was chosen over a ring because the peer lists
// here are small and static: ownership is a pure function of (peers,
// key) with no virtual-node state, every replica computes the same
// answer independently, and removing a peer remaps only the keys that
// peer owned.
//
// Failure model: proxying is an optimization, never a dependency. A
// proxy that fails for transport reasons (owner down, timeout, 5xx)
// falls back to local computation — the fleet degrades to independent
// replicas, not to errors. Proxied requests carry a hop-marker header
// and a replica never forwards a request that arrived with it, so a
// stale or disagreeing peer list cannot create a forwarding loop
// longer than one hop.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// HopHeader marks a request already forwarded once by a peer; the
// receiving replica must compute locally rather than forward again.
const HopHeader = "X-Netart-Peer-Hop"

// Fleet is one replica's view of the peer set.
type Fleet struct {
	self   string
	peers  []string // normalized, sorted, includes self
	client *http.Client
}

// New builds a fleet view. self must appear in peers (it is added
// when missing, so `-peers` can list just the others); every URL is
// normalized (scheme://host[:port], no trailing slash).
func New(self string, peers []string) (*Fleet, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: peer list set but self URL empty")
	}
	selfN, err := normalize(self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	seen := map[string]bool{selfN: true}
	all := []string{selfN}
	for _, p := range peers {
		if strings.TrimSpace(p) == "" {
			continue
		}
		n, err := normalize(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	sort.Strings(all)
	return &Fleet{
		self:  selfN,
		peers: all,
		// No client-level timeout: the per-request context already
		// carries the generation deadline, and a proxied route can
		// legitimately take as long as a local one.
		client: &http.Client{},
	}, nil
}

func normalize(raw string) (string, error) {
	u, err := url.Parse(strings.TrimRight(strings.TrimSpace(raw), "/"))
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("need http(s) URL, got %q", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host in %q", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// Enabled reports whether sharding is on (more than one replica).
func (f *Fleet) Enabled() bool { return f != nil && len(f.peers) > 1 }

// Self returns this replica's normalized URL.
func (f *Fleet) Self() string { return f.self }

// Peers returns the full normalized peer list (self included).
func (f *Fleet) Peers() []string { return append([]string(nil), f.peers...) }

// Owner returns the peer URL that owns key: the peer with the highest
// rendezvous score. Ties (astronomically unlikely with 64-bit scores)
// break on the sorted peer order, so every replica agrees.
func (f *Fleet) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, p := range f.peers {
		if s := score(p, key); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// OwnedBySelf reports whether this replica owns key.
func (f *Fleet) OwnedBySelf(key string) bool {
	return !f.Enabled() || f.Owner(key) == f.self
}

// score is the rendezvous weight of (peer, key): the first 8 bytes of
// SHA-256(peer NUL key). SHA-256 keeps the weight independent of the
// cache key's own hash structure.
func score(peer, key string) uint64 {
	h := sha256.New()
	io.WriteString(h, peer)
	h.Write([]byte{0})
	io.WriteString(h, key)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// ProxyError is a transport-level proxy failure: the owner was
// unreachable or answered with a server-side status. The caller
// should fall back to local computation.
type ProxyError struct {
	Owner  string
	Status int // 0 for transport errors
	Err    error
}

func (e *ProxyError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: owner %s answered %d", e.Owner, e.Status)
	}
	return fmt.Sprintf("cluster: owner %s unreachable: %v", e.Owner, e.Err)
}

func (e *ProxyError) Unwrap() error { return e.Err }

// Proxy forwards a generate request body (JSON) to the owner's
// /v2/generate, marked with the hop header. It returns the owner's
// response body and status for 2xx and 4xx answers; 5xx, 429 and
// transport failures come back as *ProxyError so the caller can fall
// back to local computation. 4xx answers are returned, not retried
// locally: the owner judged the request itself invalid, and the local
// pipeline would only reach the same verdict the slow way.
func (f *Fleet) Proxy(ctx context.Context, owner string, body []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		owner+"/v2/generate", bytes.NewReader(body))
	if err != nil {
		return nil, 0, &ProxyError{Owner: owner, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, &ProxyError{Owner: owner, Err: err}
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, &ProxyError{Owner: owner, Err: err}
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return nil, 0, &ProxyError{Owner: owner, Status: resp.StatusCode}
	}
	return out, resp.StatusCode, nil
}

// Close releases idle proxy connections.
func (f *Fleet) Close() {
	if f != nil {
		f.client.CloseIdleConnections()
	}
}

// Timeout sets an overall client-side bound on proxied calls in
// addition to per-request contexts (used by tests and benches that
// want fast failure detection against dead peers).
func (f *Fleet) Timeout(d time.Duration) { f.client.Timeout = d }
