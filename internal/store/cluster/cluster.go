// Package cluster gives a fleet of netartd replicas consistent-hash
// ownership of design hashes. Every replica is configured with the
// same static peer list; rendezvous (highest-random-weight) hashing
// maps each content-addressed cache key to exactly one owner, so a
// warm result lives on one replica and every other replica proxies
// cold requests for that key to it instead of recomputing.
//
// Rendezvous hashing was chosen over a ring because the peer lists
// here are small and static: ownership is a pure function of (peers,
// key) with no virtual-node state, every replica computes the same
// answer independently, and removing a peer remaps only the keys that
// peer owned.
//
// Liveness is layered under the hash (health.go, breaker.go): each
// remote peer gets a circuit breaker driven by active /v1/healthz
// probes and live proxy outcomes, and Owner ranks only the live peer
// set. A dead owner's keys therefore remap deterministically to the
// next-highest-weight live peer — and remap back when it recovers —
// which is safe because the owner is a cache of record, not a data
// owner: a remapped key is just a cold miss.
//
// Failure model: proxying is an optimization, never a dependency. A
// proxy that fails for transport reasons (owner down, timeout, 5xx)
// is retried once with equal-jitter backoff, optionally hedged to the
// next-ranked live peer, and finally falls back to local computation
// — the fleet degrades to independent replicas, not to errors.
// Proxied requests carry a hop-marker header and a replica never
// forwards a request that arrived with it, so a stale or disagreeing
// peer list cannot create a forwarding loop longer than one hop.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"netart/internal/resilience"
)

// HopHeader marks a request already forwarded once by a peer; the
// receiving replica must compute locally rather than forward again.
const HopHeader = "X-Netart-Peer-Hop"

// Fleet event names reported through Options.OnEvent (metrics hooks).
const (
	EventProxyRetry    = "proxy_retry"
	EventHedgeLaunched = "hedge_launched"
	EventHedgeWon      = "hedge_won"
)

// Options tunes a fleet view. The zero value preserves the static
// behavior: no client timeout beyond the request context, no health
// layer (every peer permanently live), no retry, no hedging.
type Options struct {
	// Timeout is an overall client-side bound per proxied call, in
	// addition to the per-request context (0 = context only). Fixed at
	// construction — the shared http.Client is never mutated after the
	// fleet may be serving.
	Timeout time.Duration
	// Transport underlies all peer traffic, probes included; nil uses
	// http.DefaultTransport. Chaos tests pass a *FaultTransport.
	Transport http.RoundTripper
	// MaxResponseBytes caps a proxied response body read (default
	// 8 MiB, matching the service's MaxBodyBytes); a longer body is a
	// proxy failure, so a misbehaving peer cannot OOM this replica.
	MaxResponseBytes int64
	// Retry bounds proxy retries against one peer; the zero value
	// defaults to {MaxAttempts: 2, BaseDelay: 10ms, MaxDelay: 100ms} —
	// one extra attempt with equal-jitter backoff for transient
	// failures (transport errors, 5xx, 429).
	Retry resilience.RetryPolicy
	// HedgeAfter, when positive, launches a second request to the
	// next-ranked live peer if the owner has not answered within the
	// delay; the first response wins and the loser is canceled. Safe
	// because the pipeline is deterministic: every replica produces
	// byte-identical artwork for a key, so it cannot matter which
	// answer wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Probe enables the health layer (breakers + optional prober);
	// nil keeps ownership static.
	Probe *HealthOptions
	// OnEvent observes proxy-path events (Event* constants).
	OnEvent func(event string)
}

// Fleet is one replica's view of the peer set.
type Fleet struct {
	self   string
	peers  []string // normalized, sorted, includes self
	client *http.Client
	opts   Options
	health *health
}

// New builds a fleet view. self must appear in peers (it is added
// when missing, so `-peers` can list just the others); every URL is
// normalized (scheme://host[:port], no trailing slash). Options are
// variadic for compatibility: view-only callers (ownership math in
// tests and benches) pass none and get the static zero-value
// behavior.
func New(self string, peers []string, opts ...Options) (*Fleet, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if self == "" {
		return nil, fmt.Errorf("cluster: peer list set but self URL empty")
	}
	selfN, err := normalize(self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	seen := map[string]bool{selfN: true}
	all := []string{selfN}
	for _, p := range peers {
		if strings.TrimSpace(p) == "" {
			continue
		}
		n, err := normalize(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	sort.Strings(all)
	if o.MaxResponseBytes <= 0 {
		o.MaxResponseBytes = 8 << 20
	}
	if o.Retry.MaxAttempts < 1 {
		o.Retry = resilience.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
		}
	}
	f := &Fleet{
		self:  selfN,
		peers: all,
		opts:  o,
		// No default client timeout: the per-request context already
		// carries the generation deadline, and a proxied route can
		// legitimately take as long as a local one. Options.Timeout
		// tightens it for deployments that want fast failure.
		client: &http.Client{Transport: o.Transport, Timeout: o.Timeout},
	}
	if o.Probe != nil && len(all) > 1 {
		f.health = newHealth(all, selfN, o.Transport, *o.Probe)
		f.health.start()
	}
	return f, nil
}

func normalize(raw string) (string, error) {
	u, err := url.Parse(strings.TrimRight(strings.TrimSpace(raw), "/"))
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("need http(s) URL, got %q", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host in %q", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// Enabled reports whether sharding is on (more than one replica).
func (f *Fleet) Enabled() bool { return f != nil && len(f.peers) > 1 }

// Self returns this replica's normalized URL.
func (f *Fleet) Self() string { return f.self }

// Peers returns the full normalized peer list (self included).
func (f *Fleet) Peers() []string { return append([]string(nil), f.peers...) }

// Owner returns the live peer with the highest rendezvous score for
// key. Peers whose breaker is not closed are excluded, so a down
// owner's keys remap deterministically to the next-highest-weight
// live peer on every replica that observes the same health state, and
// remap back when it recovers. Self is always live — with every peer
// down this degrades to independent local computation, never to
// errors. Ties (astronomically unlikely with 64-bit scores) break on
// the sorted peer order, so every replica agrees.
func (f *Fleet) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, p := range f.peers {
		if p != f.self && !f.health.live(p) {
			continue
		}
		if s := score(p, key); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// nextLive returns the highest-scoring live peer for key other than
// exclude and self — the hedge target when the owner is slow. Empty
// when no third party exists.
func (f *Fleet) nextLive(key, exclude string) string {
	var best string
	var bestScore uint64
	for _, p := range f.peers {
		if p == exclude || p == f.self || !f.health.live(p) {
			continue
		}
		if s := score(p, key); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// OwnedBySelf reports whether this replica owns key.
func (f *Fleet) OwnedBySelf(key string) bool {
	return !f.Enabled() || f.Owner(key) == f.self
}

// StateOf reports a peer's breaker state; self, unknown peers and
// fleets without a health layer read as closed.
func (f *Fleet) StateOf(peer string) State {
	if f == nil {
		return StateClosed
	}
	return f.health.stateOf(peer)
}

// PeerState pairs a peer URL with its breaker state.
type PeerState struct {
	URL   string
	State State
}

// PeerStates lists every peer (self included) with its breaker state,
// in sorted URL order.
func (f *Fleet) PeerStates() []PeerState {
	if f == nil {
		return nil
	}
	out := make([]PeerState, 0, len(f.peers))
	for _, p := range f.peers {
		out = append(out, PeerState{URL: p, State: f.StateOf(p)})
	}
	return out
}

// score is the rendezvous weight of (peer, key): the first 8 bytes of
// SHA-256(peer NUL key). SHA-256 keeps the weight independent of the
// cache key's own hash structure.
func score(peer, key string) uint64 {
	h := sha256.New()
	io.WriteString(h, peer)
	h.Write([]byte{0})
	io.WriteString(h, key)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// proxyErrSnippet bounds how much of an owner's error body rides in
// the ProxyError message.
const proxyErrSnippet = 512

// ProxyError is a proxy failure: the owner was unreachable, answered
// with a server-side status, or sent an oversized body. The caller
// should fall back to local computation.
type ProxyError struct {
	Owner  string
	Status int    // 0 for transport errors
	Body   string // first proxyErrSnippet bytes of the owner's error body
	Err    error
}

func (e *ProxyError) Error() string {
	if e.Status != 0 {
		if e.Body != "" {
			return fmt.Sprintf("cluster: owner %s answered %d: %s", e.Owner, e.Status, e.Body)
		}
		return fmt.Sprintf("cluster: owner %s answered %d", e.Owner, e.Status)
	}
	return fmt.Sprintf("cluster: owner %s unreachable: %v", e.Owner, e.Err)
}

func (e *ProxyError) Unwrap() error { return e.Err }

// Transient classifies proxy failures for resilience.Retry: transport
// errors and server-side statuses (5xx, 429) are worth one more
// attempt — the owner may be restarting or momentarily overloaded.
func (e *ProxyError) Transient() bool {
	return e.Status == 0 || e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// snippet trims a response body for the error message: whitespace
// collapsed at the edges, hard-capped at proxyErrSnippet bytes.
func snippet(body []byte) string {
	s := strings.TrimSpace(string(body))
	if len(s) > proxyErrSnippet {
		s = s[:proxyErrSnippet]
	}
	return s
}

// event reports a proxy-path event to the metrics hook.
func (f *Fleet) event(ev string) {
	if f.opts.OnEvent != nil {
		f.opts.OnEvent(ev)
	}
}

// noteSuccess / noteFailure feed a proxy outcome into the peer's
// breaker (live traffic and probes drive the same state machine).
func (f *Fleet) noteSuccess(peer string) {
	if peer != f.self {
		f.health.success(peer)
	}
}

func (f *Fleet) noteFailure(peer string) {
	if peer != f.self {
		f.health.failure(peer)
	}
}

// proxyOnce performs one forwarded call to peer's /v2/generate.
// Breaker accounting judges transport only: any complete HTTP answer
// — even a 5xx — proves the peer reachable and counts as a success,
// while connection failures count against it. Canceled attempts
// (ctx already done: a hedge race was lost, or the caller's deadline
// expired) are ambiguous and count neither way; the prober owns
// slow-failure detection.
func (f *Fleet) proxyOnce(ctx context.Context, peer string, body []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/v2/generate", bytes.NewReader(body))
	if err != nil {
		return nil, 0, &ProxyError{Owner: peer, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			f.noteFailure(peer)
		}
		return nil, 0, &ProxyError{Owner: peer, Err: err}
	}
	defer resp.Body.Close()
	// The read is capped so a misbehaving peer cannot OOM this
	// replica; an over-long body is a transport-class failure and the
	// local fallback still serves the request.
	out, err := io.ReadAll(io.LimitReader(resp.Body, f.opts.MaxResponseBytes+1))
	if err != nil {
		if ctx.Err() == nil {
			f.noteFailure(peer)
		}
		return nil, 0, &ProxyError{Owner: peer, Err: err}
	}
	f.noteSuccess(peer)
	if int64(len(out)) > f.opts.MaxResponseBytes {
		return nil, 0, &ProxyError{Owner: peer,
			Err: fmt.Errorf("response exceeds %d bytes", f.opts.MaxResponseBytes)}
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return nil, 0, &ProxyError{Owner: peer, Status: resp.StatusCode, Body: snippet(out)}
	}
	return out, resp.StatusCode, nil
}

// proxyRetry is the bounded-retry call against one peer: transient
// failures (ProxyError.Transient — transport errors, 5xx, 429) earn
// extra attempts under the fleet's retry policy with equal-jitter
// backoff; everything else returns immediately.
func (f *Fleet) proxyRetry(ctx context.Context, peer string, body []byte) ([]byte, int, error) {
	var out []byte
	var status int
	_, err := resilience.Retry(ctx, f.opts.Retry, nil, nil, func(attempt int) error {
		if attempt > 1 {
			f.event(EventProxyRetry)
		}
		var perr error
		out, status, perr = f.proxyOnce(ctx, peer, body)
		return perr
	})
	if err != nil {
		return nil, 0, err
	}
	return out, status, nil
}

// Proxy forwards a generate request body (JSON) for key to the
// owner's /v2/generate, marked with the hop header. It returns the
// answering peer's body and status for 2xx and 4xx answers; 5xx, 429
// and transport failures come back as *ProxyError so the caller can
// fall back to local computation. 4xx answers are returned, not
// retried locally: the owner judged the request itself invalid, and
// the local pipeline would only reach the same verdict the slow way.
//
// With HedgeAfter set and a third live peer available, a primary that
// has not answered within the delay gets a hedged twin sent to the
// next-ranked live peer; the first response wins and cancels the
// loser. The hedge target computes locally (the forwarded request
// carries the hop header), so a blackholed owner costs HedgeAfter
// plus one computation instead of a full transport timeout.
func (f *Fleet) Proxy(ctx context.Context, key, owner string, body []byte) ([]byte, int, error) {
	hedge := ""
	if f.opts.HedgeAfter > 0 {
		hedge = f.nextLive(key, owner)
	}
	if hedge == "" {
		return f.proxyRetry(ctx, owner, body)
	}

	type answer struct {
		out    []byte
		status int
		err    error
		peer   string
	}
	// Both attempts share one cancelable child context; the results
	// channel is buffered so a canceled loser's goroutine can always
	// deliver and exit.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan answer, 2)
	go func() {
		out, status, err := f.proxyRetry(actx, owner, body)
		results <- answer{out, status, err, owner}
	}()
	timer := time.NewTimer(f.opts.HedgeAfter)
	defer timer.Stop()
	inflight := 1
	hedged := false
	var firstErr error
	for inflight > 0 {
		select {
		case a := <-results:
			inflight--
			if a.err == nil {
				if hedged && a.peer != owner {
					f.event(EventHedgeWon)
				}
				return a.out, a.status, nil
			}
			if firstErr == nil || a.peer == owner {
				// Prefer the owner's error in the caller's message.
				firstErr = a.err
			}
			if !hedged {
				// The primary failed before the hedge delay: return
				// now — the caller is about to fall back locally,
				// which beats starting a second network attempt.
				return nil, 0, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				inflight++
				f.event(EventHedgeLaunched)
				go func() {
					out, status, err := f.proxyOnce(actx, hedge, body)
					results <- answer{out, status, err, hedge}
				}()
			}
		}
	}
	return nil, 0, firstErr
}

// Close stops the health prober and releases idle proxy connections.
func (f *Fleet) Close() {
	if f == nil {
		return
	}
	f.health.close()
	f.client.CloseIdleConnections()
}
