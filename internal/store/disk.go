package store

import (
	"container/list"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Disk file format: an entry is a single file
//
//	<root>/<namespace>/<key[:2]>/<key>
//
// holding a fixed header followed by the value bytes:
//
//	offset 0  8B  magic "NARTSTO1"
//	offset 8  4B  big-endian CRC-32 (IEEE) of the value bytes
//	offset 12 8B  big-endian value length
//	offset 20     value bytes
//
// Writes go to a ".tmp-*" file in the same directory and are renamed
// into place, so a reader never observes a half-written entry under a
// real key and a crash mid-Put leaves only a temp file behind (swept
// on the next startup scan). Reads verify the magic, length and CRC;
// any mismatch removes the file and degrades to a miss — corruption
// costs a recomputation, never a failed request or a poisoned result.
const (
	diskMagic      = "NARTSTO1"
	diskHeaderSize = 8 + 4 + 8
	tmpPrefix      = ".tmp-"
)

// DiskOptions configures a disk store.
type DiskOptions struct {
	// Namespace isolates entries written under one cache-key version
	// from every other: the store lives in <root>/<namespace>. Bumping
	// the key version strands (rather than misserves) old entries.
	// Empty means "v1".
	Namespace string
	// MaxBytes bounds the total value bytes on disk; the least
	// recently used entries are garbage-collected beyond it. <= 0
	// means unbounded. A single value larger than MaxBytes is not
	// stored at all.
	MaxBytes int64
	// Recorder receives tier "disk" events.
	Recorder Recorder
}

// Disk is the persistent tier: one content-addressed file per entry
// with CRC-checked reads, atomic temp+rename writes, LRU-by-recency
// GC against MaxBytes, and a startup scan that rebuilds the index
// (recency seeded from file mtimes) while sweeping temp files and
// corrupt entries.
type Disk struct {
	dir      string // <root>/<namespace>
	maxBytes int64
	rec      Recorder

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits, misses, puts, evicts, errs atomic.Uint64
}

type diskEntry struct {
	key  string
	size int64 // value bytes (header excluded)
}

// NewDisk opens (creating if needed) a disk store rooted at root. The
// startup scan walks the namespace directory, removes temp files and
// entries whose name or header is invalid, and rebuilds the LRU index
// ordered by file mtime — so warm results survive a daemon restart
// with their approximate recency intact. A scan problem with one
// entry never fails the open.
func NewDisk(root string, opts DiskOptions) (*Disk, error) {
	if root == "" {
		return nil, fmt.Errorf("store: disk store needs a root directory")
	}
	ns := opts.Namespace
	if ns == "" {
		ns = "v1"
	}
	d := &Disk{
		dir:      filepath.Join(root, ns),
		maxBytes: opts.MaxBytes,
		rec:      opts.Recorder,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// scan rebuilds the index from the files on disk (see NewDisk).
func (d *Disk) scan() error {
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var entries []found
	err := filepath.WalkDir(d.dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A crash mid-Put left this behind; it was never visible
			// under a real key, so removing it is always safe.
			_ = os.Remove(path)
			return nil
		}
		size, ok := d.validate(path, name)
		if !ok {
			_ = os.Remove(path)
			d.errs.Add(1)
			d.rec.emit("disk", EventError)
			return nil
		}
		info, ierr := de.Info()
		if ierr != nil {
			return nil
		}
		entries = append(entries, found{key: name, size: size, mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", d.dir, err)
	}
	// Oldest first, so the newest file ends up at the LRU front.
	// mtime ties (coarse filesystems) break on the key for determinism.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].key < entries[j].key
	})
	for _, e := range entries {
		d.items[e.key] = d.ll.PushFront(&diskEntry{key: e.key, size: e.size})
		d.bytes += e.size
	}
	return nil
}

// validate checks an entry file's name, magic and length (the CRC is
// deferred to read time: the scan stays O(entries), not O(bytes)).
// Returns the value size and whether the entry is acceptable.
func (d *Disk) validate(path, name string) (int64, bool) {
	if !validKey(name) || filepath.Base(filepath.Dir(path)) != name[:2] {
		return 0, false
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [diskHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, false
	}
	if string(hdr[:8]) != diskMagic {
		return 0, false
	}
	size := int64(binary.BigEndian.Uint64(hdr[12:20]))
	info, err := f.Stat()
	if err != nil || info.Size() != diskHeaderSize+size {
		return 0, false
	}
	return size, true
}

// validKey accepts lowercase-hex content addresses of sane length —
// the only names Put will create, and a guard against path tricks.
func validKey(key string) bool {
	if len(key) < 4 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, key[:2], key)
}

// Get reads and CRC-verifies the entry. File IO runs outside the
// index lock so concurrent reads do not serialize; a verification
// failure removes the entry and counts an error, and the caller sees
// a plain miss.
func (d *Disk) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	d.mu.Lock()
	el, ok := d.items[key]
	if ok {
		d.ll.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		d.misses.Add(1)
		d.rec.emit("disk", EventMiss)
		return nil, false, nil
	}

	val, err := d.readEntry(key)
	if err != nil {
		// Corrupt or vanished (GC raced us): drop index and file, then
		// miss — otherwise the next startup scan would re-index the
		// corrupt bytes.
		if d.removeEntry(key) {
			_ = os.Remove(d.path(key))
		}
		d.errs.Add(1)
		d.rec.emit("disk", EventError)
		d.misses.Add(1)
		d.rec.emit("disk", EventMiss)
		return nil, false, nil
	}
	// Touch the mtime so recency survives a restart (best effort).
	now := time.Now()
	_ = os.Chtimes(d.path(key), now, now)
	d.hits.Add(1)
	d.rec.emit("disk", EventHit)
	return val, true, nil
}

func (d *Disk) readEntry(key string) ([]byte, error) {
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, err
	}
	if len(b) < diskHeaderSize || string(b[:8]) != diskMagic {
		return nil, fmt.Errorf("store: %s: bad header", key)
	}
	want := binary.BigEndian.Uint32(b[8:12])
	size := binary.BigEndian.Uint64(b[12:20])
	val := b[diskHeaderSize:]
	if uint64(len(val)) != size {
		return nil, fmt.Errorf("store: %s: length mismatch", key)
	}
	if got := crc32.ChecksumIEEE(val); got != want {
		return nil, fmt.Errorf("store: %s: crc mismatch", key)
	}
	return val, nil
}

// Put writes the entry atomically (temp file + rename) and then
// garbage-collects least-recently-used entries beyond MaxBytes.
func (d *Disk) Put(ctx context.Context, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !validKey(key) {
		d.errs.Add(1)
		d.rec.emit("disk", EventError)
		return fmt.Errorf("store: invalid key %q", key)
	}
	if d.maxBytes > 0 && int64(len(value)) > d.maxBytes {
		// Never admit a value the size bound could not retain.
		return nil
	}
	if err := d.writeEntry(key, value); err != nil {
		d.errs.Add(1)
		d.rec.emit("disk", EventError)
		return err
	}

	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		e := el.Value.(*diskEntry)
		d.bytes += int64(len(value)) - e.size
		e.size = int64(len(value))
		d.ll.MoveToFront(el)
	} else {
		d.items[key] = d.ll.PushFront(&diskEntry{key: key, size: int64(len(value))})
		d.bytes += int64(len(value))
	}
	var victims []string
	for d.maxBytes > 0 && d.bytes > d.maxBytes && d.ll.Len() > 1 {
		tail := d.ll.Back()
		e := tail.Value.(*diskEntry)
		d.ll.Remove(tail)
		delete(d.items, e.key)
		d.bytes -= e.size
		victims = append(victims, e.key)
	}
	d.mu.Unlock()

	d.puts.Add(1)
	d.rec.emit("disk", EventPut)
	for _, k := range victims {
		_ = os.Remove(d.path(k))
		d.evicts.Add(1)
		d.rec.emit("disk", EventEvict)
	}
	return nil
}

func (d *Disk) writeEntry(key string, value []byte) error {
	dir := filepath.Dir(d.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	var hdr [diskHeaderSize]byte
	copy(hdr[:8], diskMagic)
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(value))
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(value)))
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(value)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, d.path(key))
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	return nil
}

// Delete removes the entry and its file if present.
func (d *Disk) Delete(_ context.Context, key string) error {
	if d.removeEntry(key) {
		_ = os.Remove(d.path(key))
	}
	return nil
}

// removeEntry drops key from the index; reports whether it was there.
func (d *Disk) removeEntry(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.items[key]
	if !ok {
		return false
	}
	d.bytes -= el.Value.(*diskEntry).size
	d.ll.Remove(el)
	delete(d.items, key)
	return true
}

// Len reports the current entry count.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ll.Len()
}

// Stats reports the tier counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	entries, bytes := d.ll.Len(), d.bytes
	d.mu.Unlock()
	return Stats{
		Tier:      "disk",
		Entries:   entries,
		Bytes:     bytes,
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Puts:      d.puts.Load(),
		Evictions: d.evicts.Load(),
		Errors:    d.errs.Load(),
	}
}

// Close is cheap: every Put already rests on disk (write-through
// persistence is continuous, not deferred to shutdown).
func (d *Disk) Close() error { return nil }
