package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestMemBasic(t *testing.T) {
	ctx := context.Background()
	m := NewMem(4, nil)
	if _, ok, _ := m.Get(ctx, "aa00"); ok {
		t.Fatal("empty store returned a hit")
	}
	if err := m.Put(ctx, "aa00", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := m.Get(ctx, "aa00")
	if err != nil || !ok || string(val) != "hello" {
		t.Fatalf("Get = %q, %v, %v; want hello, true, nil", val, ok, err)
	}
	st := m.Stats()
	if st.Tier != "mem" || st.Entries != 1 || st.Bytes != 5 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := m.Delete(ctx, "aa00"); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 || m.Stats().Bytes != 0 {
		t.Fatalf("after delete: len=%d bytes=%d", m.Len(), m.Stats().Bytes)
	}
}

func TestMemLRUEviction(t *testing.T) {
	ctx := context.Background()
	var events []string
	m := NewMem(2, func(tier, ev string) { events = append(events, tier+"/"+ev) })
	keys := func(i int) string { return fmt.Sprintf("ab%02d", i) }
	for i := 0; i < 3; i++ {
		if err := m.Put(ctx, keys(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if _, ok, _ := m.Get(ctx, keys(0)); ok {
		t.Error("oldest entry survived eviction")
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	var evicts int
	for _, e := range events {
		if e == "mem/evict" {
			evicts++
		}
	}
	if evicts != 1 {
		t.Errorf("recorder saw %d evict events, want 1", evicts)
	}

	// A Get refreshes recency: key 1 must now outlive key 2.
	if _, ok, _ := m.Get(ctx, keys(1)); !ok {
		t.Fatal("key 1 missing")
	}
	if err := m.Put(ctx, keys(3), []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get(ctx, keys(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok, _ := m.Get(ctx, keys(2)); ok {
		t.Error("least recently used entry survived")
	}
}

func TestMemOverwriteTracksBytes(t *testing.T) {
	ctx := context.Background()
	m := NewMem(4, nil)
	m.Put(ctx, "aa00", []byte("short"))
	m.Put(ctx, "aa00", []byte("a much longer value"))
	if st := m.Stats(); st.Entries != 1 || st.Bytes != int64(len("a much longer value")) {
		t.Fatalf("stats after overwrite = %+v", st)
	}
}

func TestMemConcurrent(t *testing.T) {
	ctx := context.Background()
	m := NewMem(32, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("ab%02d", (g+i)%40)
				m.Put(ctx, k, []byte(k))
				if val, ok, _ := m.Get(ctx, k); ok && string(val) != k {
					t.Errorf("key %s returned %q", k, val)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() > 32 {
		t.Fatalf("len = %d exceeds capacity 32", m.Len())
	}
}
