package store

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Mem is the in-memory tier: a mutex-guarded LRU over value bytes,
// bounded by entry count. It is the old service result cache hoisted
// behind the Store interface; values are immutable shared state (the
// caller must not mutate a returned slice).
type Mem struct {
	mu      sync.Mutex
	maxEnts int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	bytes   int64
	rec     Recorder

	hits, misses, puts, evicts atomic.Uint64
}

type memEntry struct {
	key string
	val []byte
}

// NewMem returns a memory store holding up to maxEntries values;
// maxEntries <= 0 means unbounded (callers that want "disabled"
// simply don't construct a store).
func NewMem(maxEntries int, rec Recorder) *Mem {
	return &Mem{
		maxEnts: maxEntries,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		rec:     rec,
	}
}

// Get returns the stored bytes and promotes the entry to MRU.
func (m *Mem) Get(_ context.Context, key string) ([]byte, bool, error) {
	m.mu.Lock()
	el, ok := m.items[key]
	if !ok {
		m.mu.Unlock()
		m.misses.Add(1)
		m.rec.emit("mem", EventMiss)
		return nil, false, nil
	}
	m.ll.MoveToFront(el)
	val := el.Value.(*memEntry).val
	m.mu.Unlock()
	m.hits.Add(1)
	m.rec.emit("mem", EventHit)
	return val, true, nil
}

// Put stores value, evicting from the LRU tail when over capacity.
func (m *Mem) Put(_ context.Context, key string, value []byte) error {
	m.mu.Lock()
	if el, ok := m.items[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += int64(len(value)) - int64(len(e.val))
		e.val = value
		m.ll.MoveToFront(el)
		m.mu.Unlock()
		m.puts.Add(1)
		m.rec.emit("mem", EventPut)
		return nil
	}
	m.items[key] = m.ll.PushFront(&memEntry{key: key, val: value})
	m.bytes += int64(len(value))
	var evicted int
	for m.maxEnts > 0 && m.ll.Len() > m.maxEnts {
		tail := m.ll.Back()
		e := tail.Value.(*memEntry)
		m.ll.Remove(tail)
		delete(m.items, e.key)
		m.bytes -= int64(len(e.val))
		evicted++
	}
	m.mu.Unlock()
	m.puts.Add(1)
	m.rec.emit("mem", EventPut)
	for i := 0; i < evicted; i++ {
		m.evicts.Add(1)
		m.rec.emit("mem", EventEvict)
	}
	return nil
}

// Delete removes key if present.
func (m *Mem) Delete(_ context.Context, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		m.bytes -= int64(len(el.Value.(*memEntry).val))
		m.ll.Remove(el)
		delete(m.items, key)
	}
	return nil
}

// Len reports the current entry count.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Stats reports the tier counters.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	entries, bytes := m.ll.Len(), m.bytes
	m.mu.Unlock()
	return Stats{
		Tier:      "mem",
		Entries:   entries,
		Bytes:     bytes,
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Puts:      m.puts.Load(),
		Evictions: m.evicts.Load(),
	}
}

// Close is a no-op: memory does not outlive the process.
func (m *Mem) Close() error { return nil }
