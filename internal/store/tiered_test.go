package store

import (
	"context"
	"errors"
	"testing"
)

// failingStore is a lower tier whose writes always fail (a full or
// dying disk); reads miss.
type failingStore struct {
	errs uint64
}

func (f *failingStore) Get(context.Context, string) ([]byte, bool, error) {
	return nil, false, nil
}
func (f *failingStore) Put(context.Context, string, []byte) error {
	f.errs++
	return errors.New("disk on fire")
}
func (f *failingStore) Delete(context.Context, string) error { return nil }
func (f *failingStore) Len() int                             { return 0 }
func (f *failingStore) Stats() Stats                         { return Stats{Tier: "disk", Errors: f.errs} }
func (f *failingStore) Close() error                         { return nil }

func TestTieredWriteThrough(t *testing.T) {
	ctx := context.Background()
	upper := NewMem(8, nil)
	lower := NewMem(8, nil) // stands in for disk; same interface
	tr := NewTiered(upper, lower, nil)

	if err := tr.Put(ctx, "aa01", []byte("art")); err != nil {
		t.Fatal(err)
	}
	if upper.Len() != 1 || lower.Len() != 1 {
		t.Fatalf("write-through: upper=%d lower=%d, want 1/1", upper.Len(), lower.Len())
	}
	val, ok, err := tr.Get(ctx, "aa01")
	if err != nil || !ok || string(val) != "art" {
		t.Fatalf("Get = %q, %v, %v", val, ok, err)
	}
	// The hit came from the upper tier: the lower saw no Get at all.
	if st := lower.Stats(); st.Hits != 0 {
		t.Errorf("lower tier served a hit the upper should have: %+v", st)
	}
}

func TestTieredPromotion(t *testing.T) {
	ctx := context.Background()
	var promotes int
	upper := NewMem(8, nil)
	lower := NewMem(8, nil)
	tr := NewTiered(upper, lower, func(tier, ev string) {
		if tier == "mem" && ev == EventPromote {
			promotes++
		}
	})

	// Seed only the lower tier (the state after a restart: disk warm,
	// memory cold).
	if err := lower.Put(ctx, "aa02", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := tr.Get(ctx, "aa02")
	if err != nil || !ok || string(val) != "persisted" {
		t.Fatalf("Get = %q, %v, %v", val, ok, err)
	}
	if promotes != 1 {
		t.Fatalf("promotes = %d, want 1", promotes)
	}
	if upper.Len() != 1 {
		t.Fatal("lower-tier hit was not promoted into the upper tier")
	}
	// The repeat is served from memory.
	if _, ok, _ := tr.Get(ctx, "aa02"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := lower.Stats(); st.Hits != 1 {
		t.Errorf("lower hits = %d, want exactly 1 (repeat must hit memory)", st.Hits)
	}
}

// TestTieredAbsorbsLowerFailure: a dying lower tier degrades the store
// to memory-only service; the caller never sees the error.
func TestTieredAbsorbsLowerFailure(t *testing.T) {
	ctx := context.Background()
	upper := NewMem(8, nil)
	lower := &failingStore{}
	tr := NewTiered(upper, lower, nil)

	if err := tr.Put(ctx, "aa03", []byte("art")); err != nil {
		t.Fatalf("lower-tier failure leaked to the caller: %v", err)
	}
	if val, ok, _ := tr.Get(ctx, "aa03"); !ok || string(val) != "art" {
		t.Fatalf("memory tier stopped serving: %q, %v", val, ok)
	}
	// The failure is visible to the health surface through Stats.
	var errs uint64
	for _, st := range tr.Stats().Flatten() {
		if st.Tier == "disk" {
			errs += st.Errors
		}
	}
	if errs == 0 {
		t.Error("lower-tier errors invisible in flattened stats")
	}
	// Len falls back to the upper tier when the lower reports nothing.
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTieredStatsShape(t *testing.T) {
	tr := NewTiered(NewMem(2, nil), NewMem(4, nil), nil)
	st := tr.Stats()
	if st.Tier != "tiered" || len(st.Tiers) != 2 {
		t.Fatalf("stats shape = %+v", st)
	}
	if flat := st.Flatten(); len(flat) != 2 {
		t.Fatalf("flatten returned %d tiers, want 2", len(flat))
	}
}
