// Package store is the pluggable persistent result-store tier of the
// netartd daemon: content-addressed response bytes behind a single
// Store interface with three compositions — an in-memory LRU (Mem), a
// content-addressed on-disk store that survives restarts (Disk), and a
// memory-over-disk write-through combination (Tiered).
//
// Keys are content addresses (the service's hex SHA-256 cache keys),
// values are opaque byte blobs (the canonical JSON serialization of a
// finished response). Because the pipeline is deterministic and the
// key hashes every result-affecting input, a stored value never goes
// stale: the only reasons to drop an entry are capacity (LRU
// eviction) and corruption (CRC mismatch on disk).
//
// Stores are namespaced by the cache-key version: bumping the version
// changes the disk layout root, so entries written by an older key
// scheme are ignored rather than ever served against the wrong key.
//
// The sibling packages store/singleflight (collapse of concurrent
// identical computations) and store/cluster (consistent-hash
// ownership of keys across a replica fleet) build the fleet tier on
// top of this interface.
package store

import "context"

// Store is the result-store contract shared by every backend. All
// methods are safe for concurrent use. Get and Put take a context so
// slow backends (disk today, network tomorrow) stay cancelable.
type Store interface {
	// Get returns the value bytes for key. The second result is false
	// on a miss; a nil error with found=false is the normal miss path.
	// Backends degrade corruption into a miss (recorded in Stats) so a
	// damaged entry costs a recomputation, never a failed request.
	Get(ctx context.Context, key string) ([]byte, bool, error)
	// Put stores value under key, evicting older entries as its
	// capacity bounds require. Backends that cannot persist (a failing
	// disk) record the error in Stats and return it; callers may treat
	// a failed Put as advisory — the result is still correct, it just
	// will not be served from this store later.
	Put(ctx context.Context, key string, value []byte) error
	// Delete removes key if present (no error when absent).
	Delete(ctx context.Context, key string) error
	// Len reports the current entry count.
	Len() int
	// Stats reports the backend's counters; tiered backends report one
	// Stats per tier under Tiers.
	Stats() Stats
	// Close releases the backend's resources. Write-through backends
	// persist continuously, so Close is cheap; it must be safe to call
	// once after all other calls have returned.
	Close() error
}

// Stats is one backend's observable state. Counter semantics follow
// the event names passed to the Recorder.
type Stats struct {
	Tier      string  `json:"tier"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Puts      uint64  `json:"puts"`
	Evictions uint64  `json:"evictions"`
	Errors    uint64  `json:"errors"`
	Tiers     []Stats `json:"tiers,omitempty"`
}

// Flatten returns the leaf tiers of a stats tree (itself when leaf).
func (s Stats) Flatten() []Stats {
	if len(s.Tiers) == 0 {
		return []Stats{s}
	}
	var out []Stats
	for _, t := range s.Tiers {
		out = append(out, t.Flatten()...)
	}
	return out
}

// Event names reported to a Recorder. Tier names are "mem" and "disk".
const (
	EventHit     = "hit"     // Get found the key in this tier
	EventMiss    = "miss"    // Get did not find the key in this tier
	EventPut     = "put"     // a value was stored in this tier
	EventEvict   = "evict"   // capacity bound dropped an entry
	EventPromote = "promote" // a lower-tier hit was copied into this tier
	EventError   = "error"   // an IO/corruption fault was absorbed
)

// Recorder receives one call per store event; backends call it in
// addition to maintaining their own Stats counters so an external
// metric set (obs) can mirror store activity without polling. A nil
// Recorder is valid and free.
type Recorder func(tier, event string)

func (r Recorder) emit(tier, event string) {
	if r != nil {
		r(tier, event)
	}
}
