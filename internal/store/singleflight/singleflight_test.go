package singleflight

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleCallerIsLeader(t *testing.T) {
	var g Group
	v, outcome, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || outcome != Leader || v.(int) != 42 {
		t.Fatalf("Do = %v, %v, %v", v, outcome, err)
	}
}

func TestConcurrentCallersCollapse(t *testing.T) {
	const N = 32
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	outcomes := make([]Outcome, N)
	values := make([]any, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, o, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				execs.Add(1)
				// Hold until every follower has joined, so the collapse
				// is exact rather than racy.
				<-release
				return "result", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			outcomes[i], values[i] = o, v
		}(i)
	}
	// Wait until the leader is in and all N-1 followers are blocked.
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiters("k") < N-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined", g.Waiters("k"))
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	var leaders, shared int
	for i := 0; i < N; i++ {
		switch outcomes[i] {
		case Leader:
			leaders++
		case Shared:
			shared++
		}
		if values[i] != "result" {
			t.Errorf("caller %d got %v", i, values[i])
		}
	}
	if leaders != 1 || shared != N-1 {
		t.Fatalf("leaders=%d shared=%d, want 1/%d", leaders, shared, N-1)
	}
}

func TestDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(context.Background(), fmt.Sprintf("k%d", i), func(context.Context) (any, error) {
				execs.Add(1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if n := execs.Load(); n != 4 {
		t.Fatalf("fn executed %d times, want 4", n)
	}
}

// TestFollowerHonorsOwnContext: a follower whose context expires while
// the leader is still working returns Canceled with its own ctx error;
// the leader is unaffected.
func TestFollowerHonorsOwnContext(t *testing.T) {
	var g Group
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, o, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			close(leaderIn)
			<-release
			return "late", nil
		})
		if o != Leader || err != nil || v != "late" {
			t.Errorf("leader: %v, %v, %v", v, o, err)
		}
	}()
	<-leaderIn

	fctx, fcancel := context.WithCancel(context.Background())
	var followerDone sync.WaitGroup
	followerDone.Add(1)
	go func() {
		defer followerDone.Done()
		_, o, err := g.Do(fctx, "k", func(context.Context) (any, error) {
			t.Error("follower executed fn")
			return nil, nil
		})
		if o != Canceled || !errors.Is(err, context.Canceled) {
			t.Errorf("follower: %v, %v", o, err)
		}
	}()
	waitWaiters(t, &g, "k", 1)
	fcancel()
	followerDone.Wait()
	if n := g.Waiters("k"); n != 0 {
		t.Errorf("departed follower still counted: %d", n)
	}
	close(release)
	wg.Wait()
}

// TestLeaderCancellationPromotesFollower: when the leader's own
// context is canceled mid-flight, its failed result is not shared —
// a waiting follower is promoted and re-executes fn.
func TestLeaderCancellationPromotesFollower(t *testing.T) {
	var g Group
	var execs atomic.Int64
	lctx, lcancel := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, o, err := g.Do(lctx, "k", func(ctx context.Context) (any, error) {
			execs.Add(1)
			close(leaderIn)
			<-ctx.Done() // simulate a computation that dies with its ctx
			return nil, ctx.Err()
		})
		if o != Leader || err == nil {
			t.Errorf("canceled leader: %v, %v", o, err)
		}
	}()
	<-leaderIn

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, o, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			execs.Add(1)
			return "recomputed", nil
		})
		// The follower must be promoted to leader and succeed.
		if o != Leader || err != nil || v != "recomputed" {
			t.Errorf("promoted follower: %v, %v, %v", v, o, err)
		}
	}()
	waitWaiters(t, &g, "k", 1)
	lcancel()
	wg.Wait()
	if n := execs.Load(); n != 2 {
		t.Fatalf("fn executed %d times, want 2 (leader + promoted follower)", n)
	}
}

// TestNoGoroutineLeak: the group spawns no goroutines of its own, so
// heavy churn must leave the goroutine count where it started.
func TestNoGoroutineLeak(t *testing.T) {
	var g Group
	before := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				defer cancel()
				g.Do(ctx, "churn", func(context.Context) (any, error) {
					time.Sleep(100 * time.Microsecond)
					return nil, nil
				})
			}()
		}
		wg.Wait()
	}
	// Give exiting goroutines a moment to be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d", before, after)
	}
}

func waitWaiters(t *testing.T, g *Group, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiters(key) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters on %q, want %d", g.Waiters(key), key, n)
		}
		runtime.Gosched()
	}
}
