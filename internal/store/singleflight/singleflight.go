// Package singleflight collapses concurrent identical computations:
// the first caller for a key becomes the leader and executes the
// function; callers that arrive while it runs become followers and
// block on the leader's result. On a deterministic, content-addressed
// pipeline this turns an N-way stampede on a cold key into one
// pipeline execution and N-1 shared results.
//
// Unlike x/sync/singleflight, this group is cancellation-aware in
// both directions: a follower honors its own context while waiting,
// and a leader whose context is canceled does not poison the key —
// its result is marked abandoned and the waiting followers re-enter,
// one of them being promoted to the new leader (no work is lost to a
// departed caller). No goroutines are spawned: the leader's function
// runs synchronously on the leader's own goroutine, so the group
// cannot leak.
package singleflight

import (
	"context"
	"sync"
)

// Outcome classifies how one Do call obtained its result.
type Outcome string

const (
	// Leader executed fn itself (including followers promoted after a
	// canceled leader).
	Leader Outcome = "leader"
	// Shared received the leader's result without executing fn.
	Shared Outcome = "shared"
	// Canceled gave up waiting because its own context ended; the
	// returned error is the context's.
	Canceled Outcome = "canceled"
)

// call is one in-flight computation.
type call struct {
	done    chan struct{} // closed when the leader finishes
	val     any
	err     error
	waiters int
	// abandoned marks a result produced by a canceled leader: it must
	// not be shared, and followers retry instead.
	abandoned bool
}

// Group collapses concurrent Do calls per key. The zero value is
// ready to use.
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do executes fn once per key among concurrent callers and returns
// its result to all of them. The leader runs fn synchronously under
// its own ctx; followers block until the leader finishes or their own
// ctx is done. When the leader's ctx is canceled its (failed) result
// is returned to the leader alone, and one waiting follower is
// promoted to re-execute fn.
func (g *Group) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, Outcome, error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[string]*call)
		}
		if c, ok := g.calls[key]; ok {
			c.waiters++
			g.mu.Unlock()
			select {
			case <-c.done:
				// The call is already out of the map; no need to
				// un-count ourselves from a finished call.
				if c.abandoned {
					continue // promotion: race to become the new leader
				}
				return c.val, Shared, c.err
			case <-ctx.Done():
				g.mu.Lock()
				c.waiters--
				g.mu.Unlock()
				return nil, Canceled, ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		val, err := fn(ctx)

		g.mu.Lock()
		delete(g.calls, key)
		c.val, c.err = val, err
		c.abandoned = err != nil && ctx.Err() != nil
		close(c.done)
		g.mu.Unlock()
		return val, Leader, err
	}
}

// Waiters reports how many followers are currently blocked on key's
// in-flight call (0 when no call is in flight). Leaders can poll it
// to coordinate tests and benchmarks deterministically.
func (g *Group) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
