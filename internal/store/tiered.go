package store

import "context"

// Tiered composes a fast upper tier (memory) over a persistent lower
// tier (disk): reads promote lower-tier hits into the upper tier,
// writes go through to both. A failing lower tier degrades the store
// to memory-only service — its errors are counted in Stats (the
// health surface reads them) but never propagated to the caller,
// because a result that cannot be persisted is still a correct
// result.
type Tiered struct {
	upper, lower Store
	rec          Recorder
}

// NewTiered composes upper over lower.
func NewTiered(upper, lower Store, rec Recorder) *Tiered {
	return &Tiered{upper: upper, lower: lower, rec: rec}
}

// Get tries the upper tier first, then the lower; a lower-tier hit is
// promoted (copied up) so repeats are memory-fast.
func (t *Tiered) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if val, ok, err := t.upper.Get(ctx, key); err != nil || ok {
		return val, ok, err
	}
	val, ok, err := t.lower.Get(ctx, key)
	if err != nil || !ok {
		return nil, false, err
	}
	if perr := t.upper.Put(ctx, key, val); perr == nil {
		t.rec.emit("mem", EventPromote)
	}
	return val, true, nil
}

// Put writes through to both tiers. See the type comment for why a
// lower-tier write error is absorbed rather than returned.
func (t *Tiered) Put(ctx context.Context, key string, value []byte) error {
	if err := t.upper.Put(ctx, key, value); err != nil {
		return err
	}
	_ = t.lower.Put(ctx, key, value)
	return nil
}

// Delete removes the key from both tiers.
func (t *Tiered) Delete(ctx context.Context, key string) error {
	uerr := t.upper.Delete(ctx, key)
	lerr := t.lower.Delete(ctx, key)
	if uerr != nil {
		return uerr
	}
	return lerr
}

// Len reports the lower tier's count (the superset under
// write-through; the upper tier holds a hot subset).
func (t *Tiered) Len() int {
	if n := t.lower.Len(); n > 0 {
		return n
	}
	// A failing lower tier reports what memory still serves.
	return t.upper.Len()
}

// Stats reports both tiers under Tiers.
func (t *Tiered) Stats() Stats {
	return Stats{
		Tier:  "tiered",
		Tiers: []Stats{t.upper.Stats(), t.lower.Stats()},
	}
}

// Close closes both tiers.
func (t *Tiered) Close() error {
	uerr := t.upper.Close()
	lerr := t.lower.Close()
	if uerr != nil {
		return uerr
	}
	return lerr
}
