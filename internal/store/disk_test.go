package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func diskKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func newTestDisk(t *testing.T, opts DiskOptions) (*Disk, string) {
	t.Helper()
	root := t.TempDir()
	d, err := NewDisk(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, root
}

func TestDiskRoundTrip(t *testing.T) {
	ctx := context.Background()
	d, root := newTestDisk(t, DiskOptions{})
	k := diskKey(1)
	if err := d.Put(ctx, k, []byte("artwork")); err != nil {
		t.Fatal(err)
	}
	// Layout: <root>/v1/<key[:2]>/<key>.
	if _, err := os.Stat(filepath.Join(root, "v1", k[:2], k)); err != nil {
		t.Fatalf("entry file not at expected path: %v", err)
	}
	val, ok, err := d.Get(ctx, k)
	if err != nil || !ok || string(val) != "artwork" {
		t.Fatalf("Get = %q, %v, %v", val, ok, err)
	}
	if st := d.Stats(); st.Tier != "disk" || st.Entries != 1 || st.Bytes != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if err := d.Delete(ctx, k); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "v1", k[:2], k)); !os.IsNotExist(err) {
		t.Fatalf("entry file survived Delete: %v", err)
	}
}

func TestDiskRejectsInvalidKeys(t *testing.T) {
	ctx := context.Background()
	d, _ := newTestDisk(t, DiskOptions{})
	for _, k := range []string{"", "ab", "../../../../etc/passwd", "ABCDEF", "zz zz", diskKey(0) + "Z"} {
		if err := d.Put(ctx, k, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", k)
		}
	}
}

func TestDiskRestartReload(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	d1, err := NewDisk(root, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d1.Put(ctx, diskKey(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same root must serve every entry.
	d2, err := NewDisk(root, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 5 {
		t.Fatalf("reloaded %d entries, want 5", d2.Len())
	}
	for i := 0; i < 5; i++ {
		val, ok, err := d2.Get(ctx, diskKey(i))
		if err != nil || !ok || string(val) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d after restart: %q, %v, %v", i, val, ok, err)
		}
	}
}

func TestDiskNamespaceIsolation(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	d1, err := NewDisk(root, DiskOptions{Namespace: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(ctx, diskKey(1), []byte("v1 artwork"))

	// A bumped key version opens a different namespace and must not see
	// (or serve) entries written under the old scheme.
	d2, err := NewDisk(root, DiskOptions{Namespace: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 0 {
		t.Fatalf("v2 namespace reloaded %d entries from v1", d2.Len())
	}
	if _, ok, _ := d2.Get(ctx, diskKey(1)); ok {
		t.Fatal("v2 namespace served a v1 entry")
	}
}

// TestDiskCrashTempFileSwept simulates a crash mid-Put: a temp file in
// the entry directory is never visible as an entry and is removed by
// the next startup scan.
func TestDiskCrashTempFileSwept(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	d1, err := NewDisk(root, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := diskKey(1)
	d1.Put(ctx, k, []byte("good"))

	// A crash between CreateTemp and rename leaves this behind.
	dir := filepath.Join(root, "v1", k[:2])
	tmp := filepath.Join(dir, ".tmp-crashed123")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDisk(root, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("scan indexed %d entries, want 1 (temp file must not count)", d2.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the startup scan: %v", err)
	}
	if _, ok, _ := d2.Get(ctx, k); !ok {
		t.Fatal("good entry lost while sweeping temp files")
	}
}

// TestDiskCorruptCRC flips a payload byte on disk and checks the read
// degrades to a miss, removes the file, and counts an error — never a
// failed request, never the corrupt bytes.
func TestDiskCorruptCRC(t *testing.T) {
	ctx := context.Background()
	d, root := newTestDisk(t, DiskOptions{})
	k := diskKey(1)
	if err := d.Put(ctx, k, []byte("pristine artwork bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "v1", k[:2], k)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[diskHeaderSize+3] ^= 0xFF // flip one payload byte; header CRC now disagrees
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	val, ok, err := d.Get(ctx, k)
	if err != nil || ok {
		t.Fatalf("corrupt entry: Get = %q, %v, %v; want miss with nil error", val, ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry file not removed: %v", err)
	}
	st := d.Stats()
	if st.Errors != 1 || st.Entries != 0 {
		t.Fatalf("stats after corruption = %+v, want 1 error / 0 entries", st)
	}
	// The key is recomputable: a fresh Put must fully restore service.
	if err := d.Put(ctx, k, []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if val, ok, _ := d.Get(ctx, k); !ok || string(val) != "recomputed" {
		t.Fatalf("after re-put: %q, %v", val, ok)
	}
}

// TestDiskScanSkipsBadEntries seeds the namespace with garbage files —
// wrong name, truncated header, bad magic — and checks the startup
// scan drops all of them while keeping the valid entry.
func TestDiskScanSkipsBadEntries(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	d1, err := NewDisk(root, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := diskKey(1)
	d1.Put(ctx, good, []byte("keep me"))

	ns := filepath.Join(root, "v1")
	bad := diskKey(2)
	badDir := filepath.Join(ns, bad[:2])
	os.MkdirAll(badDir, 0o755)
	// Truncated: shorter than the header.
	os.WriteFile(filepath.Join(badDir, bad), []byte("tiny"), 0o644)
	// Bad magic, full-size header.
	wrong := diskKey(3)
	wrongDir := filepath.Join(ns, wrong[:2])
	os.MkdirAll(wrongDir, 0o755)
	os.WriteFile(filepath.Join(wrongDir, wrong), append([]byte("WRONGMAG"), make([]byte, 20)...), 0o644)
	// Not a hex key at all.
	os.WriteFile(filepath.Join(ns, "README.txt"), []byte("hello"), 0o644)

	d2, err := NewDisk(root, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("scan indexed %d entries, want 1", d2.Len())
	}
	if val, ok, _ := d2.Get(ctx, good); !ok || string(val) != "keep me" {
		t.Fatalf("good entry lost: %q, %v", val, ok)
	}
	if st := d2.Stats(); st.Errors == 0 {
		t.Error("scan absorbed bad entries without counting errors")
	}
	for _, p := range []string{filepath.Join(badDir, bad), filepath.Join(wrongDir, wrong)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("bad entry %s survived the scan", p)
		}
	}
}

func TestDiskGCBound(t *testing.T) {
	ctx := context.Background()
	// Each value is 100 bytes; bound at 350 → at most 3 entries fit.
	d, _ := newTestDisk(t, DiskOptions{MaxBytes: 350})
	val := make([]byte, 100)
	for i := 0; i < 6; i++ {
		if err := d.Put(ctx, diskKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Bytes > 350 {
		t.Fatalf("bytes = %d exceeds the 350 bound", st.Bytes)
	}
	if st.Entries != 3 || st.Evictions != 3 {
		t.Fatalf("stats = %+v, want 3 entries / 3 evictions", st)
	}
	// LRU order: the oldest puts are the victims.
	for i := 0; i < 3; i++ {
		if _, ok, _ := d.Get(ctx, diskKey(i)); ok {
			t.Errorf("old entry %d survived GC", i)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok, _ := d.Get(ctx, diskKey(i)); !ok {
			t.Errorf("recent entry %d lost to GC", i)
		}
	}
}

func TestDiskOversizedValueSkipped(t *testing.T) {
	ctx := context.Background()
	d, _ := newTestDisk(t, DiskOptions{MaxBytes: 10})
	if err := d.Put(ctx, diskKey(1), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("value larger than MaxBytes was admitted")
	}
}

func TestDiskCanceledContext(t *testing.T) {
	d, _ := newTestDisk(t, DiskOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Put(ctx, diskKey(1), []byte("x")); err == nil {
		t.Error("Put ignored a canceled context")
	}
	if _, _, err := d.Get(ctx, diskKey(1)); err == nil {
		t.Error("Get ignored a canceled context")
	}
}
