package library

import (
	"netart/internal/geom"
	"netart/internal/netlist"
)

// Builtin returns a library populated with the standard cell set used by
// the examples and workloads: simple gates, storage elements and the
// register-transfer blocks appearing in the paper's figures (registers,
// ALU, multiplexers, a controller, the LIFE cell).
//
// All sizes are in track units. Input terminals sit on the left side,
// outputs on the right, clock/select terminals on the bottom — matching
// the drawing conventions of §3.2 so that the default orientation
// already flows left to right.
func Builtin() *Library {
	l := New()
	add := func(name string, w, h int, terms ...netlist.TermSpec) {
		if err := l.Add(netlist.TemplateSpec{Name: name, W: w, H: h, Terms: terms}); err != nil {
			panic("library: builtin: " + err.Error()) // static data; cannot fail
		}
	}
	in := func(name string, x, y int) netlist.TermSpec {
		return netlist.TermSpec{Name: name, Type: netlist.In, Pos: geom.Pt(x, y)}
	}
	out := func(name string, x, y int) netlist.TermSpec {
		return netlist.TermSpec{Name: name, Type: netlist.Out, Pos: geom.Pt(x, y)}
	}
	io := func(name string, x, y int) netlist.TermSpec {
		return netlist.TermSpec{Name: name, Type: netlist.InOut, Pos: geom.Pt(x, y)}
	}

	// Single input gates.
	add("INV", 2, 2, in("A", 0, 1), out("Y", 2, 1))
	add("BUF", 2, 2, in("A", 0, 1), out("Y", 2, 1))

	// Two input gates.
	for _, g := range []string{"AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"} {
		add(g, 3, 3, in("A", 0, 2), in("B", 0, 1), out("Y", 3, 1))
	}

	// Three input gates.
	for _, g := range []string{"AND3", "OR3", "NAND3", "NOR3"} {
		add(g, 3, 4, in("A", 0, 3), in("B", 0, 2), in("C", 0, 1), out("Y", 3, 2))
	}

	// Storage.
	add("DFF", 4, 4, in("D", 0, 3), in("CLK", 2, 0), out("Q", 4, 3), out("QN", 4, 1))
	add("LATCH", 4, 4, in("D", 0, 3), in("EN", 0, 1), out("Q", 4, 3))
	add("REG", 5, 4, in("D", 0, 3), in("EN", 0, 1), in("CLK", 2, 0), out("Q", 5, 2))

	// Selection and arithmetic.
	add("MUX2", 4, 4, in("A", 0, 3), in("B", 0, 1), in("S", 2, 0), out("Y", 4, 2))
	add("DEMUX2", 4, 4, in("A", 0, 2), in("S", 2, 0), out("Y0", 4, 3), out("Y1", 4, 1))
	add("ADD", 5, 4, in("A", 0, 3), in("B", 0, 1), out("S", 5, 2), out("CO", 2, 4))
	add("ALU", 6, 5, in("A", 0, 4), in("B", 0, 2), in("OP", 3, 0), out("F", 6, 3), out("Z", 6, 1))
	add("CMP", 5, 4, in("A", 0, 3), in("B", 0, 1), out("EQ", 5, 3), out("GT", 5, 1))
	add("SHIFT", 5, 4, in("A", 0, 3), in("N", 0, 1), in("DIR", 2, 0), out("Y", 5, 2))
	add("CNT", 5, 4, in("EN", 0, 3), in("RST", 0, 1), in("CLK", 2, 0), out("Q", 5, 2))

	// Memories and buses.
	add("RAM", 7, 6, in("ADDR", 0, 5), in("DIN", 0, 3), in("WE", 0, 1), in("CLK", 3, 0),
		out("DOUT", 7, 3))
	add("ROM", 6, 5, in("ADDR", 0, 3), out("DATA", 6, 3))
	add("TBUF", 3, 3, in("A", 0, 2), in("EN", 1, 0), io("Y", 3, 2))

	// The controller of the figure 6.2-6.5 network: one status input, a
	// clock and many control outputs fanning out to the datapath.
	add("CTRL", 7, 7,
		in("STAT", 0, 4), in("IR", 0, 2), in("CLK", 3, 0),
		out("C0", 7, 6), out("C1", 7, 5), out("C2", 7, 4),
		out("C3", 7, 3), out("C4", 7, 2), out("C5", 7, 1))

	// The game-of-LIFE cell of figure 6.6/6.7: eight neighbour inputs, a
	// clock, and a state output. Four inputs on the left, four on the
	// bottom, so routing approaches from two sides like the original.
	add("LIFECELL", 6, 6,
		in("N", 0, 5), in("S", 0, 4), in("E", 0, 2), in("W", 0, 1),
		in("NE", 1, 0), in("NW", 2, 0), in("SE", 4, 0), in("SW", 5, 0),
		in("CLK", 6, 1), out("ALIVE", 6, 4))
	add("CLKGEN", 4, 3, in("EN", 0, 1), out("CLK", 4, 1))
	add("SEQ", 6, 5, in("GO", 0, 3), in("CLK", 3, 0),
		out("PH0", 6, 4), out("PH1", 6, 2), out("DONE", 6, 1))

	// Pads for designs that model their border explicitly.
	add("INPAD", 2, 2, out("PAD", 2, 1))
	add("OUTPAD", 2, 2, in("PAD", 0, 1))
	return l
}
