package library

import (
	"strings"
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
)

func TestBuiltinSane(t *testing.T) {
	l := Builtin()
	if l.Len() < 20 {
		t.Fatalf("builtin library has only %d templates", l.Len())
	}
	for _, name := range l.Names() {
		spec, err := l.Template(name)
		if err != nil {
			t.Fatalf("Template(%q): %v", name, err)
		}
		if spec.W <= 0 || spec.H <= 0 {
			t.Errorf("%s: bad size %dx%d", name, spec.W, spec.H)
		}
		if len(spec.Terms) == 0 {
			t.Errorf("%s: no terminals", name)
		}
		seen := map[geom.Point]bool{}
		for _, term := range spec.Terms {
			if seen[term.Pos] {
				t.Errorf("%s: two terminals share position %v", name, term.Pos)
			}
			seen[term.Pos] = true
		}
	}
}

func TestBuiltinInstantiates(t *testing.T) {
	// Every builtin template must be instantiable as a design module,
	// which revalidates boundary positions through netlist.AddModule.
	l := Builtin()
	d := netlist.NewDesign("all")
	for _, name := range l.Names() {
		spec, _ := l.Template(name)
		if _, err := d.AddModule("i_"+name, name, spec.W, spec.H, spec.Terms); err != nil {
			t.Errorf("instantiate %s: %v", name, err)
		}
	}
}

func TestLibraryAddErrors(t *testing.T) {
	l := New()
	ok := netlist.TemplateSpec{Name: "T", W: 2, H: 2, Terms: []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
	}}
	if err := l.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(ok); err == nil {
		t.Error("duplicate template accepted")
	}
	if err := l.Add(netlist.TemplateSpec{Name: "", W: 2, H: 2}); err == nil {
		t.Error("empty name accepted")
	}
	if err := l.Add(netlist.TemplateSpec{Name: "Z", W: 0, H: 2}); err == nil {
		t.Error("zero width accepted")
	}
	bad := netlist.TemplateSpec{Name: "B", W: 4, H: 4, Terms: []netlist.TermSpec{
		{Name: "X", Type: netlist.In, Pos: geom.Pt(2, 2)},
	}}
	if err := l.Add(bad); err == nil {
		t.Error("interior terminal accepted")
	}
	dup := netlist.TemplateSpec{Name: "D", W: 4, H: 4, Terms: []netlist.TermSpec{
		{Name: "X", Type: netlist.In, Pos: geom.Pt(0, 1)},
		{Name: "X", Type: netlist.In, Pos: geom.Pt(0, 2)},
	}}
	if err := l.Add(dup); err == nil {
		t.Error("duplicate terminal name accepted")
	}
	if !l.Has("T") || l.Has("nope") {
		t.Error("Has wrong")
	}
	if _, err := l.Template("nope"); err == nil {
		t.Error("unknown template lookup should fail")
	}
}

const quintoSample = `module ANDX 30 30
in A 0 20
in B 0 10
out Y 30 10
`

func TestParseModuleDescriptionStrict(t *testing.T) {
	spec, err := ParseModuleDescription(strings.NewReader(quintoSample), true)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "ANDX" || spec.W != 3 || spec.H != 3 {
		t.Errorf("spec = %+v", spec)
	}
	if len(spec.Terms) != 3 {
		t.Fatalf("terms = %d", len(spec.Terms))
	}
	if spec.Terms[0].Pos != geom.Pt(0, 2) {
		t.Errorf("A at %v", spec.Terms[0].Pos)
	}
	if spec.Terms[2].Type != netlist.Out {
		t.Errorf("Y type = %v", spec.Terms[2].Type)
	}
}

func TestParseModuleDescriptionLoose(t *testing.T) {
	spec, err := ParseModuleDescription(strings.NewReader("module G 3 3\nin A 0 1\nout Y 3 1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if spec.W != 3 || spec.Terms[0].Pos != geom.Pt(0, 1) {
		t.Errorf("spec = %+v", spec)
	}
}

func TestParseModuleDescriptionErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"module G 3 3\n",                 // no terminals
		"gibberish\n",                    // bad heading
		"module G x 3\nin A 0 1\n",       // bad size
		"module G 3 3\nin A 0\n",         // short term record
		"module G 3 3\nsideways A 0 1\n", // bad type
		"module G 3 3\nin A zero 1\n",    // bad coordinate
		"module G 3 3\nin A 1 1\n",       // interior terminal
		"module G 35 30\nin A 0 10\n",    // strict: width not /10
		"module G 30 30\nin A 0 15\n",    // strict: coord not /10
	}
	for i, src := range cases {
		strict := i >= 8
		if _, err := ParseModuleDescription(strings.NewReader(src), strict); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestWriteModuleDescriptionRoundTrip(t *testing.T) {
	spec := netlist.TemplateSpec{Name: "RT", W: 4, H: 3, Terms: []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 2)},
		{Name: "B", Type: netlist.InOut, Pos: geom.Pt(2, 0)},
		{Name: "Y", Type: netlist.Out, Pos: geom.Pt(4, 1)},
	}}
	var b strings.Builder
	if err := WriteModuleDescription(&b, spec, true); err != nil {
		t.Fatal(err)
	}
	got, err := ParseModuleDescription(strings.NewReader(b.String()), true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || got.W != spec.W || got.H != spec.H || len(got.Terms) != 3 {
		t.Errorf("round trip: %+v", got)
	}
	for i := range got.Terms {
		if got.Terms[i] != spec.Terms[i] {
			t.Errorf("term %d: %+v != %+v", i, got.Terms[i], spec.Terms[i])
		}
	}
}

func TestTemplateFileRoundTrip(t *testing.T) {
	l := Builtin()
	for _, name := range []string{"AND2", "DFF", "LIFECELL", "CTRL"} {
		spec, _ := l.Template(name)
		var b strings.Builder
		if err := WriteTemplateFile(&b, spec, "userlib"); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTemplateFile(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: %v\nfile:\n%s", name, err, b.String())
		}
		if got.Name != spec.Name || got.W != spec.W || got.H != spec.H {
			t.Errorf("%s: header changed: %+v", name, got)
		}
		if len(got.Terms) != len(spec.Terms) {
			t.Fatalf("%s: %d terms, want %d", name, len(got.Terms), len(spec.Terms))
		}
		for i := range got.Terms {
			if got.Terms[i] != spec.Terms[i] {
				t.Errorf("%s term %d: %+v != %+v", name, i, got.Terms[i], spec.Terms[i])
			}
		}
	}
}

func TestReadTemplateFileErrors(t *testing.T) {
	cases := []string{
		"",
		"not the magic\n",
		"#TUE-ES-871\nbogus record\n",
		"#TUE-ES-871\nwhoknows: 1\n",
		"#TUE-ES-871\ncname: orphan\n",
		"#TUE-ES-871\ntname: X\nrepr: 0 1 1 0 0\n", // short repr
		"#TUE-ES-871\ntname: X\n",                  // missing repr
	}
	for i, src := range cases {
		if _, err := ReadTemplateFile(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestSortedSpecs(t *testing.T) {
	l := New()
	for _, n := range []string{"Z", "A", "M"} {
		if err := l.Add(netlist.TemplateSpec{Name: n, W: 2, H: 2, Terms: []netlist.TermSpec{
			{Name: "T", Type: netlist.In, Pos: geom.Pt(0, 1)},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	specs := l.SortedSpecs()
	if specs[0].Name != "A" || specs[1].Name != "M" || specs[2].Name != "Z" {
		t.Errorf("order: %s %s %s", specs[0].Name, specs[1].Name, specs[2].Name)
	}
}
