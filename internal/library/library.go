// Package library implements the module library of the generator system
// (figure 3.1 of Koster & Stok): a catalogue of module templates giving,
// for every template name, the symbol size and the subsystem terminals
// with their types and boundary positions.
//
// It provides the QUINTO module-description format of Appendix B, the
// ESCHER template representation of Appendix C, and a built-in library
// of common gates and register-transfer blocks used by the example
// networks and workloads.
package library

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// Library is a set of module templates addressable by name. It
// implements netlist.TemplateSource.
type Library struct {
	templates map[string]netlist.TemplateSpec
	order     []string
}

// New returns an empty library.
func New() *Library {
	return &Library{templates: map[string]netlist.TemplateSpec{}}
}

// Add registers a template. It validates the geometry the same way the
// design builder does: positive size, terminals on the boundary, unique
// terminal names. Re-adding an existing name is an error (the paper's
// QUINTO makes a fresh directory per module).
func (l *Library) Add(spec netlist.TemplateSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("library: empty template name")
	}
	if _, dup := l.templates[spec.Name]; dup {
		return fmt.Errorf("library: duplicate template %q", spec.Name)
	}
	if spec.W <= 0 || spec.H <= 0 {
		return fmt.Errorf("library: template %q has non-positive size %dx%d", spec.Name, spec.W, spec.H)
	}
	seen := map[string]bool{}
	for _, t := range spec.Terms {
		if seen[t.Name] {
			return fmt.Errorf("library: template %q has duplicate terminal %q", spec.Name, t.Name)
		}
		seen[t.Name] = true
		if !onBoundary(t.Pos, spec.W, spec.H) {
			return fmt.Errorf("library: template %q terminal %q at %v not on %dx%d boundary",
				spec.Name, t.Name, t.Pos, spec.W, spec.H)
		}
	}
	l.templates[spec.Name] = spec
	l.order = append(l.order, spec.Name)
	return nil
}

func onBoundary(p geom.Point, w, h int) bool {
	if p.X < 0 || p.X > w || p.Y < 0 || p.Y > h {
		return false
	}
	return p.X == 0 || p.X == w || p.Y == 0 || p.Y == h
}

// Template resolves a template by name, implementing
// netlist.TemplateSource.
func (l *Library) Template(name string) (netlist.TemplateSpec, error) {
	spec, ok := l.templates[name]
	if !ok {
		return netlist.TemplateSpec{}, fmt.Errorf("library: unknown template %q", name)
	}
	return spec, nil
}

// Has reports whether the library contains the named template.
func (l *Library) Has(name string) bool {
	_, ok := l.templates[name]
	return ok
}

// Names returns the template names in insertion order.
func (l *Library) Names() []string { return append([]string(nil), l.order...) }

// Len returns the number of templates.
func (l *Library) Len() int { return len(l.order) }

// ParseModuleDescription reads the Appendix B QUINTO file format:
//
//	module <MODULE-NAME> <WIDTH> <HEIGHT>
//	<TYPE> <TERM-NAME> <X> <Y>        (one line per terminal)
//
// When strict is true the Appendix B divisibility constraint is
// enforced: width, height and terminal coordinates must be divisible by
// 10 (the format targets the ESCHER editor's 10-unit grid); the parsed
// spec is then scaled down by 10 to track units. When strict is false
// coordinates are taken verbatim.
func ParseModuleDescription(r io.Reader, strict bool) (netlist.TemplateSpec, error) {
	var spec netlist.TemplateSpec
	sc := bufio.NewScanner(r)
	lineNo := 0
	sawHeading := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if !sawHeading {
			if len(f) != 4 || f[0] != "module" {
				return spec, fmt.Errorf("library: line %d: want \"module <name> <w> <h>\", got %q", lineNo, line)
			}
			w, err1 := strconv.Atoi(f[2])
			h, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil {
				return spec, fmt.Errorf("library: line %d: bad size in %q", lineNo, line)
			}
			spec.Name, spec.W, spec.H = f[1], w, h
			sawHeading = true
			continue
		}
		if len(f) != 4 {
			return spec, fmt.Errorf("library: line %d: want \"<type> <name> <x> <y>\", got %q", lineNo, line)
		}
		typ, err := netlist.ParseTermType(f[0])
		if err != nil {
			return spec, fmt.Errorf("library: line %d: %w", lineNo, err)
		}
		x, err1 := strconv.Atoi(f[2])
		y, err2 := strconv.Atoi(f[3])
		if err1 != nil || err2 != nil {
			return spec, fmt.Errorf("library: line %d: bad coordinates in %q", lineNo, line)
		}
		spec.Terms = append(spec.Terms, netlist.TermSpec{Name: f[1], Type: typ, Pos: geom.Pt(x, y)})
	}
	if err := sc.Err(); err != nil {
		return spec, fmt.Errorf("library: reading module description: %w", err)
	}
	if !sawHeading {
		return spec, fmt.Errorf("library: empty module description")
	}
	if len(spec.Terms) == 0 {
		return spec, fmt.Errorf("library: module %q has no terminals", spec.Name)
	}
	if strict {
		if err := checkTens(spec); err != nil {
			return spec, err
		}
		spec = scale(spec, 10)
	}
	for _, t := range spec.Terms {
		if !onBoundary(t.Pos, spec.W, spec.H) {
			return spec, fmt.Errorf("library: module %q terminal %q at %v not on the outside of the module",
				spec.Name, t.Name, t.Pos)
		}
	}
	return spec, nil
}

func checkTens(spec netlist.TemplateSpec) error {
	if spec.W%10 != 0 || spec.H%10 != 0 {
		return fmt.Errorf("library: module %q: width and height must be divisible by 10", spec.Name)
	}
	for _, t := range spec.Terms {
		if t.Pos.X%10 != 0 || t.Pos.Y%10 != 0 {
			return fmt.Errorf("library: module %q terminal %q: coordinates must be divisible by 10",
				spec.Name, t.Name)
		}
	}
	return nil
}

func scale(spec netlist.TemplateSpec, by int) netlist.TemplateSpec {
	out := spec
	out.W /= by
	out.H /= by
	out.Terms = make([]netlist.TermSpec, len(spec.Terms))
	for i, t := range spec.Terms {
		out.Terms[i] = netlist.TermSpec{Name: t.Name, Type: t.Type,
			Pos: geom.Pt(t.Pos.X/by, t.Pos.Y/by)}
	}
	return out
}

// WriteModuleDescription writes the Appendix B format. When tens is true
// coordinates are multiplied by 10 to satisfy the format's grid
// constraint (the inverse of strict parsing).
func WriteModuleDescription(w io.Writer, spec netlist.TemplateSpec, tens bool) error {
	mul := 1
	if tens {
		mul = 10
	}
	if _, err := fmt.Fprintf(w, "module %s %d %d\n", spec.Name, spec.W*mul, spec.H*mul); err != nil {
		return err
	}
	for _, t := range spec.Terms {
		if _, err := fmt.Fprintf(w, "%s %s %d %d\n", t.Type, t.Name, t.Pos.X*mul, t.Pos.Y*mul); err != nil {
			return err
		}
	}
	return nil
}

// contactType maps between the paper's numeric io-types (Appendix C:
// 0=inout, 1=in, 2=out) and netlist.TermType.
func contactType(code int) (netlist.TermType, error) {
	switch code {
	case 0:
		return netlist.InOut, nil
	case 1:
		return netlist.In, nil
	case 2:
		return netlist.Out, nil
	default:
		return 0, fmt.Errorf("library: unknown contact io-type %d", code)
	}
}

func contactCode(t netlist.TermType) int {
	switch t {
	case netlist.InOut:
		return 0
	case netlist.In:
		return 1
	default:
		return 2
	}
}

// escherMagic is the header string of every template and diagram file of
// the ESCHER tool family (Appendix C/D).
const escherMagic = "#TUE-ES-871"

// WriteTemplateFile writes the Appendix C module representation: the
// record sequence #TUE-ES-871, temp:, tname:, lname:, repr:, one
// contact: + cname: pair per terminal, a four-record box symbol and an
// empty contents record. The creation time field is written as 0 so
// output is reproducible.
func WriteTemplateFile(w io.Writer, spec netlist.TemplateSpec, libName string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, escherMagic)
	fmt.Fprintln(bw, "temp: 0 1 1 1 0")
	fmt.Fprintf(bw, "tname: %s\n", spec.Name)
	fmt.Fprintf(bw, "lname: %s\n", libName)
	fmt.Fprintf(bw, "repr: 0 1 1 0 0 %d %d 0\n", spec.W, spec.H)
	for i, t := range spec.Terms {
		more := 1
		if i == len(spec.Terms)-1 {
			more = 0
		}
		fmt.Fprintf(bw, "contact: %d 1 %d 0 0 %d %d 0 1 0\n",
			more, contactCode(t.Type), t.Pos.X, t.Pos.Y)
		fmt.Fprintf(bw, "cname: %s\n", t.Name)
	}
	// The rectangular symbol outline, as four symbol records (App. C).
	fmt.Fprintf(bw, "symbol: 1 35 %d %d %d 0\n", spec.W, spec.H, spec.W)
	fmt.Fprintf(bw, "symbol: 1 35 0 %d %d %d\n", spec.H, spec.W, spec.H)
	fmt.Fprintf(bw, "symbol: 1 35 %d 0 0 0\n", spec.W)
	fmt.Fprintf(bw, "symbol: 0 35 0 0 0 %d\n", spec.H)
	fmt.Fprintln(bw, "contents: 0 0")
	return bw.Flush()
}

// ReadTemplateFile parses the Appendix C representation back into a
// template spec. Only the records the generator needs (tname, repr
// size, contacts with names) are interpreted; symbol and contents
// records are validated for presence but otherwise skipped.
func ReadTemplateFile(r io.Reader) (netlist.TemplateSpec, error) {
	var spec netlist.TemplateSpec
	sc := bufio.NewScanner(r)
	lineNo := 0
	var pendingContact *netlist.TermSpec
	sawMagic := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !sawMagic {
			if line != escherMagic {
				return spec, fmt.Errorf("library: line %d: missing %s header", lineNo, escherMagic)
			}
			sawMagic = true
			continue
		}
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			return spec, fmt.Errorf("library: line %d: malformed record %q", lineNo, line)
		}
		fields := strings.Fields(rest)
		switch key {
		case "tname":
			spec.Name = strings.TrimSpace(rest)
		case "lname", "temp", "symbol", "contents", "formal":
			// not needed for generation
		case "repr":
			if len(fields) < 7 {
				return spec, fmt.Errorf("library: line %d: short repr record", lineNo)
			}
			w, err1 := strconv.Atoi(fields[5])
			h, err2 := strconv.Atoi(fields[6])
			if err1 != nil || err2 != nil {
				return spec, fmt.Errorf("library: line %d: bad repr size", lineNo)
			}
			spec.W, spec.H = w, h
		case "contact":
			if len(fields) < 7 {
				return spec, fmt.Errorf("library: line %d: short contact record", lineNo)
			}
			code, err := strconv.Atoi(fields[2])
			if err != nil {
				return spec, fmt.Errorf("library: line %d: bad contact type", lineNo)
			}
			typ, err := contactType(code)
			if err != nil {
				return spec, fmt.Errorf("library: line %d: %w", lineNo, err)
			}
			x, err1 := strconv.Atoi(fields[5])
			y, err2 := strconv.Atoi(fields[6])
			if err1 != nil || err2 != nil {
				return spec, fmt.Errorf("library: line %d: bad contact position", lineNo)
			}
			pendingContact = &netlist.TermSpec{Type: typ, Pos: geom.Pt(x, y)}
		case "cname":
			if pendingContact == nil {
				return spec, fmt.Errorf("library: line %d: cname without contact", lineNo)
			}
			pendingContact.Name = strings.TrimSpace(rest)
			spec.Terms = append(spec.Terms, *pendingContact)
			pendingContact = nil
		default:
			return spec, fmt.Errorf("library: line %d: unknown record %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return spec, err
	}
	if !sawMagic {
		return spec, fmt.Errorf("library: empty template file")
	}
	if spec.Name == "" || spec.W == 0 {
		return spec, fmt.Errorf("library: template file missing tname or repr record")
	}
	return spec, nil
}

// SortedSpecs returns all templates ordered by name (for deterministic
// dumps).
func (l *Library) SortedSpecs() []netlist.TemplateSpec {
	names := append([]string(nil), l.order...)
	sort.Strings(names)
	out := make([]netlist.TemplateSpec, len(names))
	for i, n := range names {
		out[i] = l.templates[n]
	}
	return out
}
