package schematic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
)

// This file implements the ESCHER-readable diagram file of Appendix D:
// the #TUE-ES-871 header, the template records (tname/lname/repr),
// contact records for the system terminals, subsys records for the
// placed module instances and node records for the net geometry.
//
// Node records follow the appendix's linked-wire representation: a node
// at (x, y) carries up/down/left/right lengths of connected net stubs.
// The writer emits one node per wire-tree vertex with the stub lengths
// toward its neighbours; the reader reassembles segments from the
// up/right stubs (each physical segment appears exactly once that way).

const escherMagic = "#TUE-ES-871"

// ioCode maps the terminal type to the appendix's 0/1/2 coding.
func ioCode(t netlist.TermType) int {
	switch t {
	case netlist.InOut:
		return 0
	case netlist.In:
		return 1
	default:
		return 2
	}
}

func ioType(code int) (netlist.TermType, error) {
	switch code {
	case 0:
		return netlist.InOut, nil
	case 1:
		return netlist.In, nil
	case 2:
		return netlist.Out, nil
	default:
		return 0, fmt.Errorf("schematic: bad io code %d", code)
	}
}

// WriteESCHER writes the diagram in the Appendix D format. Creation
// times are written as 0 for reproducible output.
func WriteESCHER(w io.Writer, d *Diagram, libName string) error {
	bw := bufio.NewWriter(w)
	b := d.Placement.Bounds
	fmt.Fprintln(bw, escherMagic)
	fmt.Fprintln(bw, "temp: 0 1 1 0 1")
	fmt.Fprintf(bw, "tname: %s\n", d.Design.Name)
	fmt.Fprintf(bw, "lname: %s\n", libName)
	fmt.Fprintf(bw, "repr: 0 1 0 %d %d %d %d 0\n", b.Min.X, b.Min.Y, b.Max.X, b.Max.Y)

	// Contacts: the system terminals with their placed positions.
	for i, st := range d.Design.SysTerms {
		more := 1
		if i == len(d.Design.SysTerms)-1 {
			more = 0
		}
		p := d.Placement.SysPos[st]
		fmt.Fprintf(bw, "contact: %d 1 %d 0 0 %d %d 0 1 0\n", more, ioCode(st.Type), p.X, p.Y)
		fmt.Fprintf(bw, "cname: %s\n", st.Name)
	}

	fmt.Fprintln(bw, "contents: 1 1")

	// Subsystem records: one per placed module.
	for i, m := range d.Design.Modules {
		pm := d.Placement.Mods[m]
		r := pm.Rect()
		c := r.Center()
		more := 1
		if i == len(d.Design.Modules)-1 {
			more = 0
		}
		tpl := m.Template
		if tpl == "" {
			tpl = m.Name
		}
		fmt.Fprintf(bw, "subsys: %d 1 1 1 0 %d %d %d %d %d %d %d 0\n",
			more, c.X, c.Y, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y, int(pm.Orient))
		fmt.Fprintf(bw, "instname: %s\n", m.Name)
		fmt.Fprintf(bw, "tempname: %s\n", tpl)
		fmt.Fprintf(bw, "libname: %s\n", libName)
	}

	// Node records: wire-tree vertices with directional stub lengths.
	type nodeRec struct {
		net                   *netlist.Net
		p                     geom.Point
		up, down, left, right int
	}
	var nodes []nodeRec
	if d.Routing != nil {
		for _, rn := range d.Routing.Nets {
			g := buildGraph(rn.Segments)
			// Vertices: terminals, bends, branches, endpoints — any
			// point whose adjacency is not a straight pass-through.
			isVertex := func(p geom.Point, ns []geom.Point) bool {
				if len(ns) != 2 {
					return true
				}
				d0, d1 := ns[0].Sub(p), ns[1].Sub(p)
				return d0.X*d1.X+d0.Y*d1.Y == 0
			}
			// Walk from each vertex along each direction to the next
			// vertex, recording the stub length.
			var pts []geom.Point
			for p := range g.adj {
				pts = append(pts, p)
			}
			sort.Slice(pts, func(i, j int) bool {
				if pts[i].X != pts[j].X {
					return pts[i].X < pts[j].X
				}
				return pts[i].Y < pts[j].Y
			})
			for _, p := range pts {
				ns := g.adj[p]
				if !isVertex(p, ns) {
					continue
				}
				rec := nodeRec{net: rn.Net, p: p}
				for _, q := range ns {
					dir := q.Sub(p)
					run := p
					length := 0
					for {
						run = run.Add(dir)
						length++
						if isVertex(run, g.adj[run]) {
							break
						}
					}
					switch dir {
					case geom.Pt(0, 1):
						rec.up = length
					case geom.Pt(0, -1):
						rec.down = length
					case geom.Pt(-1, 0):
						rec.left = length
					case geom.Pt(1, 0):
						rec.right = length
					}
				}
				nodes = append(nodes, rec)
			}
		}
	}
	for i, nr := range nodes {
		more := 1
		if i == len(nodes)-1 {
			more = 0
		}
		// b0 next, b1 net-flag, b2 origin(0=net), b3 origin-name
		// follows, b4 contact-name, b5 electric, b6 b7 position,
		// b8..b10 ranges/abut, b11 uplength, b12..b14, b15 downlength,
		// b16..b18, b19 leftlength, b20..b22, b23 rightlength,
		// b24..b26, b27 io-type (3 = net).
		fmt.Fprintf(bw, "node: %d 0 0 1 0 1 %d %d 0 0 0 %d 0 0 0 %d 0 0 0 %d 0 0 0 %d 0 0 0 3\n",
			more, nr.p.X, nr.p.Y, nr.up, nr.down, nr.left, nr.right)
		fmt.Fprintf(bw, "oname: %s\n", nr.net.Name)
	}
	if len(nodes) == 0 {
		fmt.Fprintln(bw, "node: 0 0 0 0 0 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3")
	}
	return bw.Flush()
}

// ESCHERDiagram is the parsed content of an Appendix D file: enough to
// rebuild a placement (for PABLO -g preplacement and EUREKA input) and
// the prerouted net geometry.
type ESCHERDiagram struct {
	Name     string
	Modules  []ESCHERInstance
	Contacts []ESCHERContact
	Wires    map[string][]route.Segment // net name -> segments
}

// ESCHERInstance is one subsys record.
type ESCHERInstance struct {
	Name     string
	Template string
	Min, Max geom.Point
	Orient   geom.Orient
}

// ESCHERContact is one contact record (a system terminal).
type ESCHERContact struct {
	Name string
	Type netlist.TermType
	Pos  geom.Point
}

// ReadESCHER parses an Appendix D diagram file.
func ReadESCHER(r io.Reader) (*ESCHERDiagram, error) {
	out := &ESCHERDiagram{Wires: map[string][]route.Segment{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	sawMagic := false
	var pendingInst *ESCHERInstance
	var pendingContact *ESCHERContact
	var pendingNode *struct {
		p                     geom.Point
		up, down, left, right int
	}

	intFields := func(rest string, want int, what string) ([]int, error) {
		f := strings.Fields(rest)
		if len(f) < want {
			return nil, fmt.Errorf("schematic: line %d: short %s record", lineNo, what)
		}
		out := make([]int, len(f))
		for i, s := range f {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("schematic: line %d: bad %s field %q", lineNo, what, s)
			}
			out[i] = v
		}
		return out, nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !sawMagic {
			if line != escherMagic {
				return nil, fmt.Errorf("schematic: line %d: missing %s header", lineNo, escherMagic)
			}
			sawMagic = true
			continue
		}
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("schematic: line %d: malformed record %q", lineNo, line)
		}
		switch key {
		case "temp", "lname", "repr", "contents", "symbol", "formal":
			// structural, nothing to extract
		case "tname":
			out.Name = strings.TrimSpace(rest)
		case "contact":
			f, err := intFields(rest, 7, "contact")
			if err != nil {
				return nil, err
			}
			typ, err := ioType(f[2])
			if err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
			pendingContact = &ESCHERContact{Type: typ, Pos: geom.Pt(f[5], f[6])}
		case "cname":
			if pendingContact == nil {
				return nil, fmt.Errorf("schematic: line %d: cname without contact", lineNo)
			}
			pendingContact.Name = strings.TrimSpace(rest)
			out.Contacts = append(out.Contacts, *pendingContact)
			pendingContact = nil
		case "subsys":
			f, err := intFields(rest, 12, "subsys")
			if err != nil {
				return nil, err
			}
			pendingInst = &ESCHERInstance{
				Min:    geom.Pt(f[7], f[8]),
				Max:    geom.Pt(f[9], f[10]),
				Orient: geom.Orient(((f[11] % 4) + 4) % 4),
			}
		case "instname":
			if pendingInst == nil {
				return nil, fmt.Errorf("schematic: line %d: instname without subsys", lineNo)
			}
			pendingInst.Name = strings.TrimSpace(rest)
		case "tempname":
			if pendingInst == nil {
				return nil, fmt.Errorf("schematic: line %d: tempname without subsys", lineNo)
			}
			pendingInst.Template = strings.TrimSpace(rest)
			// libname follows but the instance is complete for us.
			out.Modules = append(out.Modules, *pendingInst)
			pendingInst = nil
		case "libname":
			// after tempname; ignored
		case "node":
			f, err := intFields(rest, 28, "node")
			if err != nil {
				return nil, err
			}
			pendingNode = &struct {
				p                     geom.Point
				up, down, left, right int
			}{geom.Pt(f[6], f[7]), f[11], f[15], f[19], f[23]}
			if f[3] == 0 { // no origin name follows: bare node
				pendingNode = nil
			}
		case "oname":
			if pendingNode == nil {
				return nil, fmt.Errorf("schematic: line %d: oname without node", lineNo)
			}
			name := strings.TrimSpace(rest)
			n := pendingNode
			add := func(a, b geom.Point) {
				out.Wires[name] = append(out.Wires[name], route.Segment{A: a, B: b})
			}
			// Up and right stubs reconstruct each segment once; left
			// and down stubs are the mirror ends.
			if n.up > 0 {
				add(n.p, n.p.Add(geom.Pt(0, n.up)))
			}
			if n.right > 0 {
				add(n.p, n.p.Add(geom.Pt(n.right, 0)))
			}
			pendingNode = nil
		default:
			return nil, fmt.Errorf("schematic: line %d: unknown record %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawMagic {
		return nil, fmt.Errorf("schematic: empty ESCHER file")
	}
	return out, nil
}

// ApplyPlacement builds a place.Result for design d from the parsed
// diagram's instances and contacts (PABLO -g / EUREKA input).
func (e *ESCHERDiagram) ApplyPlacement(d *netlist.Design) (*place.Result, error) {
	res := &place.Result{
		Design: d,
		Mods:   map[*netlist.Module]*place.PlacedModule{},
		SysPos: map[*netlist.Terminal]geom.Point{},
	}
	for _, inst := range e.Modules {
		m := d.Module(inst.Name)
		if m == nil {
			return nil, fmt.Errorf("schematic: diagram instance %q not in design", inst.Name)
		}
		res.Mods[m] = &place.PlacedModule{Mod: m, Pos: inst.Min, Orient: inst.Orient}
	}
	for _, c := range e.Contacts {
		st := d.SysTerm(c.Name)
		if st == nil {
			return nil, fmt.Errorf("schematic: diagram contact %q not in design", c.Name)
		}
		res.SysPos[st] = c.Pos
	}
	if len(res.Mods) != len(d.Modules) {
		return nil, fmt.Errorf("schematic: diagram places %d of %d modules",
			len(res.Mods), len(d.Modules))
	}
	var b geom.Rect
	first := true
	for _, pm := range res.Mods {
		if first {
			b, first = pm.Rect(), false
		} else {
			b = b.Union(pm.Rect())
		}
	}
	res.ModuleBounds = b
	for _, p := range res.SysPos {
		b = b.Union(geom.Rect{Min: p, Max: p.Add(geom.Pt(1, 1))})
	}
	res.Bounds = b
	return res, nil
}

// PreroutedFor converts the parsed wires into the router's prerouted
// map for design d, skipping wire names not present in the design.
func (e *ESCHERDiagram) PreroutedFor(d *netlist.Design) map[*netlist.Net][]route.Segment {
	out := map[*netlist.Net][]route.Segment{}
	for name, segs := range e.Wires {
		if n := d.Net(name); n != nil {
			out[n] = segs
		}
	}
	return out
}
