// Package schematic models the finished diagram — placed modules,
// placed system terminals and routed nets — and provides the quality
// metrics of §3.2 (wire length, bends, crossovers, branching nodes,
// signal flow), an independent structural verifier (standing in for the
// ESCHER simulation check of §6), text and SVG renderers, and the
// ESCHER file format of Appendix D.
package schematic

import (
	"fmt"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
)

// Diagram bundles a placement with an optional routing.
type Diagram struct {
	Design    *netlist.Design
	Placement *place.Result
	Routing   *route.Result // nil for placement-only diagrams
	// Degraded is non-nil when the diagram is a best-effort partial
	// result: the generation pipeline exhausted its degradation ladder
	// and kept the least-bad routing instead of failing the request.
	// Renderers append it as a diagnostic block so a degraded artwork
	// is never mistaken for a clean one.
	Degraded *Degradation
}

// Degradation reports what a partial diagram still preserves and what
// it lost — the machine-checkable record of a best-effort generation
// (the paper treats unrouted nets as reportable, not fatal; §6 lists
// them per figure).
type Degradation struct {
	// Attempts names the degradation-ladder rungs that were tried, in
	// order (e.g. "route[line-expansion]", "route[dual-front]",
	// "route[lee+rip-up]").
	Attempts []string
	// Unrouted lists the incomplete nets as "net: term1 term2 ..."
	// (the terminals that stayed unconnected).
	Unrouted []string
	// Reason is a one-line human summary.
	Reason string
}

// Block renders the degradation report as a multi-line diagnostic
// block, one line per fact, suitable for appending to any text
// rendering.
func (dg *Degradation) Block() string {
	if dg == nil {
		return ""
	}
	s := "DEGRADED: " + dg.Reason + "\n"
	if len(dg.Attempts) > 0 {
		s += "  attempts:"
		for _, a := range dg.Attempts {
			s += " " + a
		}
		s += "\n"
	}
	for _, u := range dg.Unrouted {
		s += "  unrouted " + u + "\n"
	}
	return s
}

// FromPlacement wraps a placement-only diagram (the intermediate result
// of figure 3.2 before nets are added).
func FromPlacement(pr *place.Result) *Diagram {
	return &Diagram{Design: pr.Design, Placement: pr}
}

// FromRouting wraps a fully generated diagram.
func FromRouting(rr *route.Result) *Diagram {
	return &Diagram{Design: rr.Placement.Design, Placement: rr.Placement, Routing: rr}
}

// Metrics are the readability measures of §3.2: "The traceability of
// wires is enhanced by reducing wire length, the number of crossovers
// and the number of bends... the number of branching nodes is kept as
// low as possible", plus the left-to-right signal flow of Rule 3 and
// the unrouted count of §6.
type Metrics struct {
	WireLength int
	Bends      int
	Crossings  int
	Branches   int
	Unrouted   int
	Area       int
	// FlowRight is the fraction of driver→sink module pairs whose
	// driver terminal lies left of the sink terminal (Rule 3), in
	// [0,1]; NaN-free: 0 when no pairs exist.
	FlowRight float64
}

// netGraph is the point adjacency of one net's wire tree.
type netGraph struct {
	adj map[geom.Point][]geom.Point
}

func buildGraph(segs []route.Segment) *netGraph {
	g := &netGraph{adj: map[geom.Point][]geom.Point{}}
	link := func(a, b geom.Point) {
		for _, x := range g.adj[a] {
			if x == b {
				return
			}
		}
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	for _, s := range segs {
		pts := s.Points()
		for i := 1; i < len(pts); i++ {
			link(pts[i-1], pts[i])
		}
	}
	return g
}

// bendsAndBranches counts direction changes at degree-2 points and
// points of degree three or more.
func (g *netGraph) bendsAndBranches() (bends, branches int) {
	for p, ns := range g.adj {
		switch {
		case len(ns) == 2:
			d0 := ns[0].Sub(p)
			d1 := ns[1].Sub(p)
			if d0.X*d1.X+d0.Y*d1.Y == 0 { // perpendicular
				bends++
			}
		case len(ns) >= 3:
			branches++
		}
	}
	return bends, branches
}

// connected reports whether all the given points lie in one component
// of the graph.
func (g *netGraph) connected(pts []geom.Point) bool {
	if len(g.adj) == 0 {
		return len(pts) == 0
	}
	start := pts[0]
	if _, ok := g.adj[start]; !ok {
		return false
	}
	seen := map[geom.Point]bool{start: true}
	stack := []geom.Point{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range g.adj[p] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	for _, p := range pts {
		if !seen[p] {
			return false
		}
	}
	// Also require the whole tree to be one component (no stray
	// islands).
	for p := range g.adj {
		if !seen[p] {
			return false
		}
	}
	return true
}

// Metrics computes the diagram's quality measures.
func (d *Diagram) Metrics() Metrics {
	var m Metrics
	m.Area = d.Placement.Bounds.Area()
	m.FlowRight = flowScore(d.Placement)
	if d.Routing == nil {
		return m
	}
	occupied := map[geom.Point][2]int32{} // point -> [hNet, vNet]
	for _, rn := range d.Routing.Nets {
		if !rn.OK() {
			m.Unrouted++
		}
		id := d.Routing.NetID[rn.Net]
		g := buildGraph(rn.Segments)
		b, br := g.bendsAndBranches()
		m.Bends += b
		m.Branches += br
		for _, s := range rn.Segments {
			m.WireLength += s.Len()
			for _, p := range s.Points() {
				o := occupied[p]
				if s.Horizontal() {
					o[0] = id
				} else {
					o[1] = id
				}
				occupied[p] = o
			}
		}
	}
	for _, o := range occupied {
		if o[0] != 0 && o[1] != 0 && o[0] != o[1] {
			m.Crossings++
		}
	}
	return m
}

// flowScore computes Rule 3 compliance: over all (driver terminal, sink
// terminal) pairs of each net living on distinct modules, the fraction
// where the driver's x is strictly less than the sink's x.
func flowScore(pr *place.Result) float64 {
	good, total := 0, 0
	for _, n := range pr.Design.Nets {
		for _, drv := range n.Terms {
			if drv.Module == nil || !drv.Type.CanDrive() {
				continue
			}
			dp, err := pr.TermPos(drv)
			if err != nil {
				continue
			}
			for _, snk := range n.Terms {
				if snk.Module == nil || snk.Module == drv.Module || !snk.Type.CanSink() {
					continue
				}
				if drv.Type == netlist.InOut && snk.Type == netlist.InOut {
					continue
				}
				sp, err := pr.TermPos(snk)
				if err != nil {
					continue
				}
				total++
				if dp.X < sp.X {
					good++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}

// Verify checks the routed diagram independently of the router's own
// bookkeeping — the role the ESCHER simulation played in §6 ("To check
// whether the routing has been done correctly, the schematic diagram
// has been simulated"): every complete net's geometry must form one
// connected tree touching exactly its own terminals, wires may not
// enter module interiors or foreign terminals, no two nets may share a
// point in the same axis, and every crossing must be a plain
// perpendicular crossing of two straight runs.
func (d *Diagram) Verify() error {
	if err := d.Placement.Verify(); err != nil {
		return err
	}
	if d.Routing == nil {
		return nil
	}

	termOwner := map[geom.Point]*netlist.Net{}
	for _, n := range d.Design.Nets {
		for _, t := range n.Terms {
			p, err := d.Placement.TermPos(t)
			if err != nil {
				return err
			}
			if prev, dup := termOwner[p]; dup && prev != n {
				return fmt.Errorf("schematic: terminal position %v shared by nets %q and %q",
					p, prev.Name, n.Name)
			}
			termOwner[p] = n
		}
	}

	type occ struct {
		h, v *netlist.Net
	}
	occupied := map[geom.Point]*occ{}

	for _, rn := range d.Routing.Nets {
		for _, s := range rn.Segments {
			if s.A.X != s.B.X && s.A.Y != s.B.Y {
				return fmt.Errorf("schematic: net %q has a diagonal segment", rn.Net.Name)
			}
			for _, p := range s.Points() {
				// Module interiors are forbidden; outlines only at own
				// terminals.
				for _, mod := range d.Design.Modules {
					r := d.Placement.Mods[mod].Rect()
					inside := p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y
					if inside {
						return fmt.Errorf("schematic: net %q enters module %q at %v",
							rn.Net.Name, mod.Name, p)
					}
				}
				if owner, isTerm := termOwner[p]; isTerm && owner != rn.Net {
					return fmt.Errorf("schematic: net %q touches terminal of %q at %v",
						rn.Net.Name, owner.Name, p)
				}
				o := occupied[p]
				if o == nil {
					o = &occ{}
					occupied[p] = o
				}
				if s.Horizontal() {
					if o.h != nil && o.h != rn.Net {
						return fmt.Errorf("schematic: nets %q and %q overlap horizontally at %v",
							o.h.Name, rn.Net.Name, p)
					}
					o.h = rn.Net
				} else {
					if o.v != nil && o.v != rn.Net {
						return fmt.Errorf("schematic: nets %q and %q overlap vertically at %v",
							o.v.Name, rn.Net.Name, p)
					}
					o.v = rn.Net
				}
			}
		}
	}

	// Crossing points of two different nets must be straight-through
	// for both (no net ends or bends on a crossing).
	for _, rn := range d.Routing.Nets {
		g := buildGraph(rn.Segments)
		for p, ns := range g.adj {
			o := occupied[p]
			if o == nil || o.h == nil || o.v == nil || o.h == o.v {
				continue
			}
			// p is a crossing: this net must pass straight through.
			if len(ns) != 2 {
				return fmt.Errorf("schematic: net %q has a non-straight joint on a crossing at %v",
					rn.Net.Name, p)
			}
			d0, d1 := ns[0].Sub(p), ns[1].Sub(p)
			if d0.X*d1.X+d0.Y*d1.Y == 0 {
				return fmt.Errorf("schematic: net %q bends on a crossing at %v", rn.Net.Name, p)
			}
		}
	}

	// Connectivity: every complete net forms one tree over its
	// terminals.
	for _, rn := range d.Routing.Nets {
		if !rn.OK() || rn.Net.Degree() < 2 {
			continue
		}
		var pts []geom.Point
		for _, t := range rn.Net.Terms {
			p, err := d.Placement.TermPos(t)
			if err != nil {
				return err
			}
			pts = append(pts, p)
		}
		g := buildGraph(rn.Segments)
		if !g.connected(pts) {
			return fmt.Errorf("schematic: net %q geometry does not connect its terminals", rn.Net.Name)
		}
	}
	return nil
}
