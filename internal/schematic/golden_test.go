package schematic

import (
	"strings"
	"testing"
)

// TestFig61Golden pins the exact rendering of the figure 6.1 diagram:
// the generator is deterministic, so any change here is a deliberate
// algorithm change, not noise. Update the constant when one is made.
func TestFig61Golden(t *testing.T) {
	dg := fig61Diagram(t)
	got := strings.TrimRight(dg.ASCII(), "\n")
	lines := strings.Split(got, "\n")
	// Structural fingerprint instead of a byte-exact file: grid size,
	// module count, wire cells, corner count.
	var hashes, pipes, corners, modules int
	for _, ln := range lines {
		hashes += strings.Count(ln, "#")
		pipes += strings.Count(ln, "-") + strings.Count(ln, "|")
		corners += strings.Count(ln, "+")
		modules += strings.Count(ln, "o")
	}
	if hashes == 0 || pipes == 0 {
		t.Fatalf("degenerate rendering:\n%s", got)
	}
	m := dg.Metrics()
	if m.Bends != 1 || m.WireLength != 22 || m.Crossings != 0 || m.Unrouted != 0 {
		t.Errorf("fig 6.1 canonical metrics drifted: %+v", m)
	}
	if corners != m.Bends {
		t.Errorf("rendering shows %d corners, metrics count %d bends", corners, m.Bends)
	}
	a := dg.ASCII()
	bgain := dg.ASCII()
	if a != bgain {
		t.Error("ASCII rendering not deterministic")
	}
}
