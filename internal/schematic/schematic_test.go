package schematic

import (
	"strings"
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

func buildDiagram(t *testing.T, d *netlist.Design, po place.Options, ro route.Options) *Diagram {
	t.Helper()
	pr, err := place.Place(d, po)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.Route(pr, ro)
	if err != nil {
		t.Fatal(err)
	}
	return FromRouting(rr)
}

func fig61Diagram(t *testing.T) *Diagram {
	return buildDiagram(t, workload.Fig61(),
		place.Options{PartSize: 6, BoxSize: 6},
		route.Options{Claimpoints: true})
}

func TestVerifyAcceptsGeneratedDiagram(t *testing.T) {
	dg := fig61Diagram(t)
	if err := dg.Verify(); err != nil {
		t.Fatalf("generated diagram rejected: %v", err)
	}
}

func TestVerifyDatapathVariants(t *testing.T) {
	for _, po := range []place.Options{
		{PartSize: 1, BoxSize: 1},
		{PartSize: 5, BoxSize: 1},
		{PartSize: 7, BoxSize: 5},
	} {
		dg := buildDiagram(t, workload.Datapath16(), po, route.Options{Claimpoints: true})
		if err := dg.Verify(); err != nil {
			t.Errorf("p=%d b=%d rejected: %v", po.PartSize, po.BoxSize, err)
		}
	}
}

func TestVerifyCatchesCorruptedNet(t *testing.T) {
	dg := fig61Diagram(t)
	// Corrupt one routed net: shift its segments by one, disconnecting
	// it from the terminals.
	for _, rn := range dg.Routing.Nets {
		if len(rn.Segments) == 0 {
			continue
		}
		for i := range rn.Segments {
			rn.Segments[i].A = rn.Segments[i].A.Add(geom.Pt(0, 1))
			rn.Segments[i].B = rn.Segments[i].B.Add(geom.Pt(0, 1))
		}
		break
	}
	if err := dg.Verify(); err == nil {
		t.Error("corrupted diagram accepted")
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	dg := fig61Diagram(t)
	// Force two nets onto the same horizontal run.
	var first []route.Segment
	for _, rn := range dg.Routing.Nets {
		if len(rn.Segments) > 0 && first == nil {
			first = rn.Segments
			continue
		}
		if first != nil && len(rn.Segments) > 0 {
			rn.Segments = append(rn.Segments, first[0])
			break
		}
	}
	if err := dg.Verify(); err == nil {
		t.Error("overlapping nets accepted")
	}
}

func TestMetricsFig61(t *testing.T) {
	dg := fig61Diagram(t)
	m := dg.Metrics()
	if m.Unrouted != 0 {
		t.Errorf("unrouted = %d", m.Unrouted)
	}
	if m.WireLength <= 0 {
		t.Error("no wire length measured")
	}
	// A placed string should flow fully left to right.
	if m.FlowRight < 0.99 {
		t.Errorf("flow score %.2f, want ~1.0 for a string", m.FlowRight)
	}
	// The chain nets are straight or nearly so.
	if m.Bends > 12 {
		t.Errorf("too many bends for a string: %d", m.Bends)
	}
	if m.Area <= 0 {
		t.Error("area not computed")
	}
}

func TestMetricsCrossingsCounted(t *testing.T) {
	// Hand-build a crossing: two nets crossing at one point.
	d := netlist.NewDesign("x")
	mk := func(nm string, x, y int, ts ...netlist.TermSpec) {
		m, err := d.AddModule(nm, "", 2, 2, ts)
		if err != nil {
			t.Fatal(err)
		}
		_ = m
	}
	mk("A", 0, 0, netlist.TermSpec{Name: "Y", Type: netlist.Out, Pos: geom.Pt(2, 1)})
	mk("B", 0, 0, netlist.TermSpec{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)})
	mk("C", 0, 0, netlist.TermSpec{Name: "Y", Type: netlist.Out, Pos: geom.Pt(1, 0)})
	mk("D", 0, 0, netlist.TermSpec{Name: "A", Type: netlist.In, Pos: geom.Pt(1, 2)})
	pr := &place.Result{
		Design: d,
		Mods: map[*netlist.Module]*place.PlacedModule{
			d.Module("A"): {Mod: d.Module("A"), Pos: geom.Pt(0, 4)},
			d.Module("B"): {Mod: d.Module("B"), Pos: geom.Pt(10, 4)},
			d.Module("C"): {Mod: d.Module("C"), Pos: geom.Pt(5, 10)},
			d.Module("D"): {Mod: d.Module("D"), Pos: geom.Pt(5, 0)},
		},
		SysPos: map[*netlist.Terminal]geom.Point{},
	}
	if err := d.Connect("h", "A", "Y"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("h", "B", "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("v", "C", "Y"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("v", "D", "A"); err != nil {
		t.Fatal(err)
	}
	var b geom.Rect
	first := true
	for _, pm := range pr.Mods {
		if first {
			b, first = pm.Rect(), false
		} else {
			b = b.Union(pm.Rect())
		}
	}
	pr.ModuleBounds, pr.Bounds = b, b
	rr, err := route.Route(pr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dg := FromRouting(rr)
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
	m := dg.Metrics()
	if m.Crossings != 1 {
		t.Errorf("crossings = %d, want 1", m.Crossings)
	}
}

func TestMetricsBranchesOnFanout(t *testing.T) {
	// The datapath clock net has degree 8: its tree must contain
	// branching nodes.
	dg := buildDiagram(t, workload.Datapath16(),
		place.Options{PartSize: 5, BoxSize: 5}, route.Options{Claimpoints: true})
	m := dg.Metrics()
	if m.Branches == 0 {
		t.Error("no branching nodes despite multipoint nets")
	}
}

func TestPlacementOnlyMetrics(t *testing.T) {
	pr, err := place.Place(workload.Fig61(), place.Options{PartSize: 6, BoxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	dg := FromPlacement(pr)
	m := dg.Metrics()
	if m.WireLength != 0 || m.Bends != 0 {
		t.Error("placement-only diagram has wire metrics")
	}
	if m.FlowRight < 0.99 {
		t.Errorf("flow score %.2f", m.FlowRight)
	}
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIRender(t *testing.T) {
	dg := fig61Diagram(t)
	art := dg.ASCII()
	if !strings.Contains(art, "#") {
		t.Error("no module outlines in ASCII output")
	}
	if !strings.Contains(art, "-") && !strings.Contains(art, "|") {
		t.Error("no wires in ASCII output")
	}
	// m2 is an AND2 (3x3): wide enough for its two-character name.
	if !strings.Contains(art, "m2") {
		t.Error("no instance names in ASCII output")
	}
	if !strings.Contains(art, "O") {
		t.Error("no system terminal in ASCII output")
	}
}

func TestASCIITooLarge(t *testing.T) {
	pr := &place.Result{
		Design: netlist.NewDesign("big"),
		Mods:   map[*netlist.Module]*place.PlacedModule{},
		SysPos: map[*netlist.Terminal]geom.Point{},
		Bounds: geom.R(0, 0, 10000, 10000),
	}
	dg := FromPlacement(pr)
	if !strings.Contains(dg.ASCII(), "too large") {
		t.Error("oversized grid not degraded to summary")
	}
}

func TestSVGRender(t *testing.T) {
	dg := fig61Diagram(t)
	var sb strings.Builder
	if err := dg.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "m0"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSummary(t *testing.T) {
	dg := fig61Diagram(t)
	s := dg.Summary()
	if !strings.Contains(s, "fig61") || !strings.Contains(s, "unrouted=0") {
		t.Errorf("summary = %q", s)
	}
}

func TestSegmentsOf(t *testing.T) {
	dg := fig61Diagram(t)
	if segs := dg.SegmentsOf("n1"); len(segs) == 0 {
		t.Error("no segments for routed net n1")
	}
	if segs := dg.SegmentsOf("nope"); segs != nil {
		t.Error("segments for unknown net")
	}
	if segs := FromPlacement(dg.Placement).SegmentsOf("n1"); segs != nil {
		t.Error("segments from placement-only diagram")
	}
}
