package schematic

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"netart/internal/geom"
	"netart/internal/route"
)

// ASCII renders the diagram as a character grid: module outlines as
// '#' with the instance name inside, wires as '-', '|', corners '+',
// crossings 'x', subsystem terminals 'o' and system terminals 'O'.
// Grids larger than maxASCII columns or rows degrade to a summary line
// instead of an unreadable wall of text.
func (d *Diagram) ASCII() string {
	const maxASCII = 400
	b := d.Placement.Bounds
	minP := b.Min.Sub(geom.Pt(2, 2))
	maxP := b.Max.Add(geom.Pt(2, 2))
	if d.Routing != nil {
		minP = d.Routing.Plane.Bounds.Min
		maxP = d.Routing.Plane.Bounds.Max
	}
	w := maxP.X - minP.X + 1
	h := maxP.Y - minP.Y + 1
	if w <= 0 || h <= 0 || w > maxASCII || h > maxASCII {
		return fmt.Sprintf("[diagram %dx%d too large for ASCII rendering]\n", w, h)
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	set := func(p geom.Point, c byte) {
		x, y := p.X-minP.X, p.Y-minP.Y
		if x < 0 || x >= w || y < 0 || y >= h {
			return
		}
		grid[h-1-y][x] = c // y grows upward, rows print top-down
	}
	at := func(p geom.Point) byte {
		x, y := p.X-minP.X, p.Y-minP.Y
		if x < 0 || x >= w || y < 0 || y >= h {
			return ' '
		}
		return grid[h-1-y][x]
	}

	// Wires first so modules overwrite their own outline cleanly.
	if d.Routing != nil {
		for _, rn := range d.Routing.Nets {
			for _, s := range rn.Segments {
				c := byte('-')
				if !s.Horizontal() {
					c = '|'
				}
				for _, p := range s.Points() {
					prev := at(p)
					switch {
					case prev == '-' && c == '|', prev == '|' && c == '-':
						set(p, 'x')
					case prev == '+' || prev == 'x':
						// keep
					default:
						set(p, c)
					}
				}
			}
			g := buildGraph(rn.Segments)
			for p, ns := range g.adj {
				if len(ns) >= 3 {
					set(p, '*')
					continue
				}
				if len(ns) == 2 {
					d0, d1 := ns[0].Sub(p), ns[1].Sub(p)
					if d0.X*d1.X+d0.Y*d1.Y == 0 {
						set(p, '+')
					}
				}
			}
		}
	}

	// Modules.
	for _, m := range d.Design.Modules {
		pm, ok := d.Placement.Mods[m]
		if !ok {
			continue
		}
		r := pm.Rect()
		for x := r.Min.X; x <= r.Max.X; x++ {
			for y := r.Min.Y; y <= r.Max.Y; y++ {
				edge := x == r.Min.X || x == r.Max.X || y == r.Min.Y || y == r.Max.Y
				if edge {
					set(geom.Pt(x, y), '#')
				} else {
					set(geom.Pt(x, y), ' ')
				}
			}
		}
		// Instance name inside (clipped).
		name := m.Name
		nx, ny := r.Min.X+1, (r.Min.Y+r.Max.Y)/2
		for i := 0; i < len(name) && nx+i < r.Max.X; i++ {
			set(geom.Pt(nx+i, ny), name[i])
		}
		// Terminals on the outline.
		for _, t := range m.Terms {
			if t.Net != nil {
				set(pm.TermPos(t), 'o')
			}
		}
	}
	for _, st := range d.Design.SysTerms {
		if p, ok := d.Placement.SysPos[st]; ok {
			set(p, 'O')
		}
	}

	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	if d.Degraded != nil {
		sb.WriteString(d.Degraded.Block())
	}
	return sb.String()
}

// svgPalette cycles distinguishable wire colors.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

// WriteSVG renders the diagram as a standalone SVG document.
func (d *Diagram) WriteSVG(w io.Writer) error {
	const scale = 10
	b := d.Placement.Bounds
	minP := b.Min.Sub(geom.Pt(3, 3))
	maxP := b.Max.Add(geom.Pt(3, 3))
	if d.Routing != nil {
		minP = d.Routing.Plane.Bounds.Min.Sub(geom.Pt(1, 1))
		maxP = d.Routing.Plane.Bounds.Max.Add(geom.Pt(1, 1))
	}
	width := (maxP.X - minP.X + 1) * scale
	height := (maxP.Y - minP.Y + 1) * scale
	tx := func(p geom.Point) (int, int) {
		return (p.X - minP.X) * scale, (maxP.Y - p.Y) * scale
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Wires.
	if d.Routing != nil {
		for i, rn := range d.Routing.Nets {
			color := svgPalette[i%len(svgPalette)]
			for _, s := range rn.Segments {
				x1, y1 := tx(s.A)
				x2, y2 := tx(s.B)
				fmt.Fprintf(&sb,
					`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"><title>%s</title></line>`+"\n",
					x1, y1, x2, y2, color, escapeXML(rn.Net.Name))
			}
			g := buildGraph(rn.Segments)
			var branches []geom.Point
			for p, ns := range g.adj {
				if len(ns) >= 3 {
					branches = append(branches, p)
				}
			}
			sort.Slice(branches, func(a, b int) bool {
				if branches[a].X != branches[b].X {
					return branches[a].X < branches[b].X
				}
				return branches[a].Y < branches[b].Y
			})
			for _, p := range branches {
				x, y := tx(p)
				fmt.Fprintf(&sb, `<circle cx="%d" cy="%d" r="3" fill="%s"/>`+"\n", x, y, color)
			}
		}
	}

	// Modules.
	for _, m := range d.Design.Modules {
		pm, ok := d.Placement.Mods[m]
		if !ok {
			continue
		}
		r := pm.Rect()
		x, y := tx(geom.Pt(r.Min.X, r.Max.Y))
		fmt.Fprintf(&sb,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="#f5f0e8" stroke="black" stroke-width="2"/>`+"\n",
			x, y, r.Dx()*scale, r.Dy()*scale)
		cx, cy := tx(r.Center())
		fmt.Fprintf(&sb,
			`<text x="%d" y="%d" font-size="%d" text-anchor="middle" font-family="monospace">%s</text>`+"\n",
			cx, cy+scale/3, scale, escapeXML(m.Name))
		for _, t := range m.Terms {
			if t.Net == nil {
				continue
			}
			px, py := tx(pm.TermPos(t))
			fmt.Fprintf(&sb, `<circle cx="%d" cy="%d" r="2.5" fill="black"><title>%s</title></circle>`+"\n",
				px, py, escapeXML(t.Label()))
		}
	}

	// System terminals.
	for _, st := range d.Design.SysTerms {
		p, ok := d.Placement.SysPos[st]
		if !ok {
			continue
		}
		x, y := tx(p)
		fmt.Fprintf(&sb,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="#404040"><title>%s</title></rect>`+"\n",
			x-scale/4, y-scale/4, scale/2, scale/2, escapeXML(st.Name))
		fmt.Fprintf(&sb,
			`<text x="%d" y="%d" font-size="%d" text-anchor="middle" font-family="monospace">%s</text>`+"\n",
			x, y-scale/2, scale*3/4, escapeXML(st.Name))
	}

	// Degradation diagnostic: a machine-findable comment plus a visible
	// banner so a partial artwork is never mistaken for a clean one.
	if d.Degraded != nil {
		fmt.Fprintf(&sb, "<!-- %s -->\n", escapeXML(strings.TrimRight(d.Degraded.Block(), "\n")))
		fmt.Fprintf(&sb,
			`<text x="4" y="%d" font-size="%d" fill="#b00020" font-family="monospace">DEGRADED: %s</text>`+"\n",
			height-scale/2, scale, escapeXML(d.Degraded.Reason))
	}

	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Summary returns a one-line description of the diagram suitable for
// CLI output and experiment logs.
func (d *Diagram) Summary() string {
	m := d.Metrics()
	routed := ""
	if d.Routing != nil {
		routed = fmt.Sprintf(" wire=%d bends=%d cross=%d branch=%d unrouted=%d",
			m.WireLength, m.Bends, m.Crossings, m.Branches, m.Unrouted)
	}
	s := fmt.Sprintf("%s: %d modules %d nets area=%d flow=%.2f%s",
		d.Design.Name, len(d.Design.Modules), len(d.Design.Nets), m.Area, m.FlowRight, routed)
	if d.Degraded != nil {
		s += "\n" + strings.TrimRight(d.Degraded.Block(), "\n")
	}
	return s
}

// SegmentsOf is a convenience accessor used by renders and tools.
func (d *Diagram) SegmentsOf(netName string) []route.Segment {
	if d.Routing == nil {
		return nil
	}
	n := d.Design.Net(netName)
	if n == nil {
		return nil
	}
	rn := d.Routing.Net(n)
	if rn == nil {
		return nil
	}
	return rn.Segments
}
