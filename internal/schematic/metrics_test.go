package schematic

import (
	"testing"

	"netart/internal/geom"
	"netart/internal/route"
)

// graphOf builds a net graph from raw segments for direct metric
// checks.
func graphOf(segs ...route.Segment) *netGraph {
	return buildGraph(segs)
}

func TestBendCountExact(t *testing.T) {
	// A staircase with three corners.
	g := graphOf(
		route.Segment{A: geom.Pt(0, 0), B: geom.Pt(4, 0)},
		route.Segment{A: geom.Pt(4, 0), B: geom.Pt(4, 3)},
		route.Segment{A: geom.Pt(4, 3), B: geom.Pt(8, 3)},
		route.Segment{A: geom.Pt(8, 3), B: geom.Pt(8, 6)},
	)
	bends, branches := g.bendsAndBranches()
	if bends != 3 || branches != 0 {
		t.Errorf("bends=%d branches=%d, want 3, 0", bends, branches)
	}
}

func TestBranchCountExact(t *testing.T) {
	// A T: trunk with one stem.
	g := graphOf(
		route.Segment{A: geom.Pt(0, 0), B: geom.Pt(8, 0)},
		route.Segment{A: geom.Pt(4, 0), B: geom.Pt(4, 5)},
	)
	bends, branches := g.bendsAndBranches()
	if branches != 1 {
		t.Errorf("branches=%d, want 1", branches)
	}
	if bends != 0 {
		t.Errorf("bends=%d, want 0 (the T point is a branch, not a bend)", bends)
	}
}

func TestStraightRunNoBends(t *testing.T) {
	// Two collinear segments meeting end to end: the joint is neither a
	// bend nor a branch.
	g := graphOf(
		route.Segment{A: geom.Pt(0, 0), B: geom.Pt(4, 0)},
		route.Segment{A: geom.Pt(4, 0), B: geom.Pt(9, 0)},
	)
	bends, branches := g.bendsAndBranches()
	if bends != 0 || branches != 0 {
		t.Errorf("bends=%d branches=%d, want 0, 0", bends, branches)
	}
}

func TestConnectedDetectsIslands(t *testing.T) {
	g := graphOf(
		route.Segment{A: geom.Pt(0, 0), B: geom.Pt(3, 0)},
		route.Segment{A: geom.Pt(10, 10), B: geom.Pt(12, 10)},
	)
	if g.connected([]geom.Point{geom.Pt(0, 0)}) {
		t.Error("disconnected islands reported connected")
	}
	g2 := graphOf(route.Segment{A: geom.Pt(0, 0), B: geom.Pt(3, 0)})
	if !g2.connected([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}) {
		t.Error("straight run not connected")
	}
	if g2.connected([]geom.Point{geom.Pt(9, 9)}) {
		t.Error("foreign point reported connected")
	}
}

func TestCrossCountOnX(t *testing.T) {
	// Plus-shaped crossing of two different nets counted once.
	dg := fig61Diagram(t)
	base := dg.Metrics().Crossings
	if base != 0 {
		t.Fatalf("fig61 baseline crossings = %d", base)
	}
}
