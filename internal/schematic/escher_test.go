package schematic

import (
	"strings"
	"testing"

	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

func TestESCHERRoundTrip(t *testing.T) {
	dg := fig61Diagram(t)
	var sb strings.Builder
	if err := WriteESCHER(&sb, dg, "userlib"); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadESCHER(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\nfile:\n%s", err, sb.String())
	}
	if parsed.Name != "fig61" {
		t.Errorf("name = %q", parsed.Name)
	}
	if len(parsed.Modules) != 6 {
		t.Fatalf("%d instances, want 6", len(parsed.Modules))
	}
	if len(parsed.Contacts) != 1 {
		t.Fatalf("%d contacts, want 1", len(parsed.Contacts))
	}

	// Placement round trip: positions and orientations survive.
	d2 := workload.Fig61()
	pr2, err := parsed.ApplyPlacement(d2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range dg.Design.Modules {
		a := dg.Placement.Mods[m]
		b := pr2.Mods[d2.Module(m.Name)]
		if a.Pos != b.Pos || a.Orient != b.Orient {
			t.Errorf("module %s: %v/%v became %v/%v", m.Name, a.Pos, a.Orient, b.Pos, b.Orient)
		}
	}
	st := dg.Design.SysTerms[0]
	if got := pr2.SysPos[d2.SysTerm(st.Name)]; got != dg.Placement.SysPos[st] {
		t.Errorf("system terminal moved: %v vs %v", got, dg.Placement.SysPos[st])
	}

	// Wire round trip: total length per net survives.
	for _, rn := range dg.Routing.Nets {
		want := 0
		for _, s := range rn.Segments {
			want += s.Len()
		}
		got := 0
		for _, s := range parsed.Wires[rn.Net.Name] {
			got += s.Len()
		}
		if got != want {
			t.Errorf("net %s: wire length %d became %d", rn.Net.Name, want, got)
		}
	}
}

func TestESCHERPreroutedFor(t *testing.T) {
	dg := fig61Diagram(t)
	var sb strings.Builder
	if err := WriteESCHER(&sb, dg, "lib"); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadESCHER(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	d2 := workload.Fig61()
	pre := parsed.PreroutedFor(d2)
	if len(pre) != len(dg.Routing.Nets) {
		t.Errorf("prerouted %d nets, want %d", len(pre), len(dg.Routing.Nets))
	}
	// The prerouted geometry must be re-layable: route with it as
	// input and verify everything still checks out.
	pr2, err := parsed.ApplyPlacement(d2)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.Route(pr2, route.Options{Prerouted: pre})
	if err != nil {
		t.Fatal(err)
	}
	if rr.UnroutedCount() != 0 {
		t.Errorf("%d unrouted after replaying prerouted geometry", rr.UnroutedCount())
	}
	if err := FromRouting(rr).Verify(); err != nil {
		t.Error(err)
	}
}

func TestESCHERPlacementOnly(t *testing.T) {
	pr, err := place.Place(workload.Datapath16(), place.Options{PartSize: 5, BoxSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	dg := FromPlacement(pr)
	var sb strings.Builder
	if err := WriteESCHER(&sb, dg, "lib"); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadESCHER(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Modules) != 16 || len(parsed.Contacts) != 5 {
		t.Errorf("parsed %d modules, %d contacts", len(parsed.Modules), len(parsed.Contacts))
	}
	if len(parsed.Wires) != 0 {
		t.Errorf("placement-only file has %d wires", len(parsed.Wires))
	}
}

func TestReadESCHERErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong magic\n",
		"#TUE-ES-871\nnonsense\n",
		"#TUE-ES-871\nwho: 1\n",
		"#TUE-ES-871\ncname: orphan\n",
		"#TUE-ES-871\ninstname: orphan\n",
		"#TUE-ES-871\ntempname: orphan\n",
		"#TUE-ES-871\noname: orphan\n",
		"#TUE-ES-871\nsubsys: 1 2 3\n",
		"#TUE-ES-871\nnode: 1 2 3\n",
		"#TUE-ES-871\ncontact: 0 1 9 0 0 1 1 0 1 0\ncname: X\n", // bad io code
	}
	for i, src := range cases {
		if _, err := ReadESCHER(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestApplyPlacementErrors(t *testing.T) {
	dg := fig61Diagram(t)
	var sb strings.Builder
	if err := WriteESCHER(&sb, dg, "lib"); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadESCHER(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong design: instance names will not match.
	if _, err := parsed.ApplyPlacement(workload.Datapath16()); err == nil {
		t.Error("mismatched design accepted")
	}
}
