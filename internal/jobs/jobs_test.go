package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestManager(t *testing.T, max int, ttl time.Duration) (*Manager, *time.Time) {
	t.Helper()
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewManager(max, ttl, Hooks{})
	m.now = func() time.Time { return clock }
	return m, &clock
}

func TestLifecycleDone(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	j, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateQueued {
		t.Fatalf("state = %q, want queued", got)
	}
	if !j.Start() {
		t.Fatal("Start() = false on a queued job")
	}
	j.Publish("net", map[string]int{"index": 0})
	j.Finish("result-payload")
	if got := j.State(); got != StateDone {
		t.Fatalf("state = %q, want done", got)
	}
	if j.Result() != "result-payload" {
		t.Fatalf("Result() = %v", j.Result())
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Done() not closed after Finish")
	}
	// Terminal jobs reject further transitions and drop new events.
	j.Fail(500, "late")
	j.Publish("net", nil)
	st := j.Status()
	if st.State != StateDone || st.Code != 0 || st.Error != "" {
		t.Fatalf("post-terminal mutation leaked: %+v", st)
	}
	// Log: state(running), net, state(done).
	if st.Events != 3 {
		t.Fatalf("events = %d, want 3", st.Events)
	}
}

func TestCancelQueued(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	j, err := m.Create(cancel)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Cancel() {
		t.Fatal("Cancel() = false on a queued job")
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("state = %q, want canceled", got)
	}
	if ctx.Err() == nil {
		t.Fatal("pipeline context not canceled")
	}
	if j.Start() {
		t.Fatal("Start() = true on a canceled job (pool must skip it)")
	}
	if j.Cancel() {
		t.Fatal("second Cancel() = true on a terminal job")
	}
}

func TestCancelRunning(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	j, _ := m.Create(cancel)
	j.Start()
	if !j.Cancel() {
		t.Fatal("Cancel() = false on a running job")
	}
	// A running job only gets its context canceled; the runner reports
	// the unwind.
	if got := j.State(); got != StateRunning {
		t.Fatalf("state = %q, want running until the pipeline unwinds", got)
	}
	if ctx.Err() == nil {
		t.Fatal("pipeline context not canceled")
	}
	j.FinishCanceled("canceled by client")
	if got := j.State(); got != StateCanceled {
		t.Fatalf("state = %q, want canceled", got)
	}
}

func TestTTLEviction(t *testing.T) {
	m, clock := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	j.Finish(nil)
	id := j.ID()
	if m.Get(id) == nil {
		t.Fatal("job evicted before TTL")
	}
	*clock = clock.Add(time.Minute + time.Second)
	if m.Get(id) != nil {
		t.Fatal("job survived TTL sweep")
	}
	if tracked, _ := m.Counts(); tracked != 0 {
		t.Fatalf("tracked = %d after sweep, want 0", tracked)
	}
}

func TestTTLNeverEvictsLiveJobs(t *testing.T) {
	m, clock := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	*clock = clock.Add(24 * time.Hour)
	if m.Get(j.ID()) == nil {
		t.Fatal("live job evicted by TTL sweep")
	}
}

func TestCapacityEvictsOldestTerminalFirst(t *testing.T) {
	m, _ := newTestManager(t, 2, time.Hour)
	a, _ := m.Create(nil)
	a.Start()
	a.Finish(nil)
	b, _ := m.Create(nil)
	b.Start()
	b.Finish(nil)
	// Ring is full of terminal records: a third create evicts the oldest.
	c, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(a.ID()) != nil {
		t.Fatal("oldest terminal record not evicted under capacity pressure")
	}
	if m.Get(b.ID()) == nil || m.Get(c.ID()) == nil {
		t.Fatal("wrong record evicted")
	}
}

func TestCreateErrFullWhenAllLive(t *testing.T) {
	m, _ := newTestManager(t, 2, time.Hour)
	if _, err := m.Create(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(nil); !errors.Is(err, ErrFull) {
		t.Fatalf("Create on a live-full ring: err = %v, want ErrFull", err)
	}
}

func TestSubscriptionReplayAndLive(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	j.Publish("a", 1)
	j.Publish("b", 2)

	sub := j.Subscribe()
	ctx := context.Background()
	var types []string
	for i := 0; i < 3; i++ { // state(running), a, b
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != i {
			t.Fatalf("seq = %d, want %d", ev.Seq, i)
		}
		types = append(types, ev.Type)
	}
	if types[0] != "state" || types[1] != "a" || types[2] != "b" {
		t.Fatalf("replay order = %v", types)
	}

	// A blocked Next wakes on the next publish.
	got := make(chan Event, 1)
	go func() {
		ev, err := sub.Next(ctx)
		if err != nil {
			return
		}
		got <- ev
	}()
	time.Sleep(10 * time.Millisecond)
	j.Publish("c", 3)
	select {
	case ev := <-got:
		if ev.Type != "c" {
			t.Fatalf("live event = %q, want c", ev.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber not woken by publish")
	}

	j.Finish(nil)
	if ev, err := sub.Next(ctx); err != nil || ev.Type != "state" {
		t.Fatalf("terminal event = %v, %v", ev, err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, ErrDone) {
		t.Fatalf("drained terminal stream: err = %v, want ErrDone", err)
	}
}

func TestSubscribeFromResume(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	j.Publish("a", nil)
	j.Publish("b", nil)
	// Last-Event-ID = 1 resumes at seq 2.
	sub := j.SubscribeFrom(2)
	ev, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 || ev.Type != "b" {
		t.Fatalf("resumed at %d %q, want 2 b", ev.Seq, ev.Type)
	}
}

func TestNextContextCancel(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	sub := j.Subscribe()
	if _, err := sub.Next(context.Background()); err != nil {
		t.Fatal(err) // the state(running) event
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Next with dead ctx: err = %v", err)
	}
}

func TestSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	_ = j.Subscribe() // never reads
	doneCh := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			j.Publish("net", i)
		}
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked by an idle subscriber")
	}
}

func TestHooksFire(t *testing.T) {
	var mu sync.Mutex
	var events, evicted int
	var finished []State
	m := NewManager(2, time.Hour, Hooks{
		OnEvent:  func() { mu.Lock(); events++; mu.Unlock() },
		OnFinish: func(s State) { mu.Lock(); finished = append(finished, s); mu.Unlock() },
		OnEvict:  func() { mu.Lock(); evicted++; mu.Unlock() },
	})
	a, _ := m.Create(nil)
	a.Start()
	a.Fail(504, "timeout")
	b, _ := m.Create(nil)
	b.Cancel()
	if _, err := m.Create(nil); err != nil { // evicts a (oldest terminal)
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// a: state(running)+state(failed); b: state(canceled).
	if events != 3 {
		t.Errorf("OnEvent fired %d times, want 3", events)
	}
	if len(finished) != 2 || finished[0] != StateFailed || finished[1] != StateCanceled {
		t.Errorf("OnFinish sequence = %v", finished)
	}
	if evicted != 1 {
		t.Errorf("OnEvict fired %d times, want 1", evicted)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	m, _ := newTestManager(t, 8, time.Minute)
	j, _ := m.Create(nil)
	j.Start()
	const n = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := j.Subscribe()
			ctx := context.Background()
			last := -1
			for {
				ev, err := sub.Next(ctx)
				if errors.Is(err, ErrDone) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				if ev.Seq != last+1 {
					t.Errorf("gap: seq %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
			}
		}()
	}
	for i := 0; i < n; i++ {
		j.Publish("net", i)
	}
	j.Finish(nil)
	wg.Wait()
}
