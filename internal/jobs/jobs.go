// Package jobs is the async job subsystem behind the service's
// /v2/jobs API: a bounded ring of job records, each carrying a
// queued → running → done|failed|canceled state machine, an
// append-only event log that SSE subscribers replay and then follow
// live, and a cancel hook into the context threaded through the
// pipeline's wavefront loops.
//
// Design points:
//
//   - The ring is capacity-bounded (Manager max): submissions beyond
//     it fail with ErrFull, which the service maps to the same 429 the
//     worker queue sheds with. Terminal records are evicted lazily —
//     on every Create/Get/Counts — once their TTL expires, and early
//     under capacity pressure (oldest terminal first), so a burst of
//     finished jobs can never starve new submissions while live jobs
//     are never evicted.
//   - Subscribers pull from the event log at their own pace (an index
//     per subscription, a broadcast channel for wakeups), so a slow or
//     disconnected SSE client never blocks the pipeline goroutine that
//     publishes events.
//   - The package stores results and attachments as opaque any values;
//     the wire shapes live in the service layer.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's position in the lifecycle state machine.
type State string

// The job states. Transitions: queued → running → done|failed|canceled,
// plus the short-circuit queued → canceled for jobs canceled before a
// worker picked them up.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state ends the lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry of a job's append-only event log. Seq numbers
// start at 0 and increase by one, so SSE clients can resume with
// Last-Event-ID. Data is an owner-defined JSON-marshalable payload.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	Data any    `json:"data,omitempty"`
}

// StateChange is the Data payload of the "state" events the manager
// publishes on every transition.
type StateChange struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	Code  int    `json:"code,omitempty"`
}

// Hooks observes manager lifecycle for metrics. All callbacks are
// optional and must be cheap; they run with no job lock held but may
// run concurrently.
type Hooks struct {
	// OnEvent fires once per event appended to any job's log.
	OnEvent func()
	// OnFinish fires once per job reaching a terminal state.
	OnFinish func(State)
	// OnEvict fires once per record evicted from the ring.
	OnEvict func()
}

// ErrFull is returned by Create when the ring holds max non-evictable
// (live or unexpired-terminal-but-needed) records; the service maps it
// to 429 exactly like a full worker queue.
var ErrFull = errors.New("jobs: job table full")

// ErrDone ends a subscription: every event has been delivered and the
// job is terminal, so no further events can appear.
var ErrDone = errors.New("jobs: event stream complete")

// Manager owns the bounded job ring.
type Manager struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	now   func() time.Time // injectable for deterministic TTL tests
	jobs  map[string]*Job
	order []*Job // insertion order; eviction scans oldest-first
	hooks Hooks
}

// NewManager builds a manager holding at most max records, evicting
// terminal records ttl after they finish. Non-positive values use the
// defaults (256 records, 15 minutes).
func NewManager(max int, ttl time.Duration, hooks Hooks) *Manager {
	if max <= 0 {
		max = 256
	}
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	return &Manager{
		max:   max,
		ttl:   ttl,
		now:   time.Now,
		jobs:  make(map[string]*Job),
		hooks: hooks,
	}
}

// Create registers a new queued job. cancel, when non-nil, is invoked
// by Job.Cancel to abort the job's pipeline context. Returns ErrFull
// when the ring cannot make room (every record is live).
func (m *Manager) Create(cancel context.CancelFunc) (*Job, error) {
	m.mu.Lock()
	now := m.now()
	m.sweepLocked(now)
	evicted := 0
	// Capacity pressure: old finished jobs must not block new work, so
	// terminal records are evicted oldest-first even before their TTL.
	for len(m.order) >= m.max {
		if !m.evictOldestTerminalLocked() {
			m.mu.Unlock()
			return nil, ErrFull
		}
		evicted++
	}
	j := &Job{
		id:      newID(),
		mgr:     m,
		state:   StateQueued,
		created: now,
		cancel:  cancel,
		update:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.mu.Unlock()
	m.notifyEvict(evicted)
	return j, nil
}

// Get returns the job record, or nil when unknown or already evicted.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	evicted := len(m.order)
	m.sweepLocked(m.now())
	evicted -= len(m.order)
	j := m.jobs[id]
	m.mu.Unlock()
	m.notifyEvict(evicted)
	return j
}

// Remove drops a record from the ring regardless of state. The service
// uses it to undo a Create whose pool submission failed — the client
// got an error, so no record should linger. Fires no eviction hook.
func (m *Manager) Remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; !ok {
		return
	}
	delete(m.jobs, id)
	for i, j := range m.order {
		if j.id == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Counts reports the number of tracked records and how many of them
// are live (queued or running); stats and gauges read it.
func (m *Manager) Counts() (tracked, live int) {
	m.mu.Lock()
	evicted := len(m.order)
	m.sweepLocked(m.now())
	evicted -= len(m.order)
	tracked = len(m.order)
	for _, j := range m.order {
		if !j.State().Terminal() {
			live++
		}
	}
	m.mu.Unlock()
	m.notifyEvict(evicted)
	return tracked, live
}

// sweepLocked drops terminal records whose TTL expired.
func (m *Manager) sweepLocked(now time.Time) {
	keep := m.order[:0]
	for _, j := range m.order {
		if j.expired(now, m.ttl) {
			delete(m.jobs, j.id)
			continue
		}
		keep = append(keep, j)
	}
	for i := len(keep); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = keep
}

// evictOldestTerminalLocked removes the oldest terminal record;
// false means every record is live.
func (m *Manager) evictOldestTerminalLocked() bool {
	for i, j := range m.order {
		if j.State().Terminal() {
			delete(m.jobs, j.id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			return true
		}
	}
	return false
}

func (m *Manager) notifyEvict(n int) {
	if m.hooks.OnEvict == nil {
		return
	}
	for i := 0; i < n; i++ {
		m.hooks.OnEvict()
	}
}

// newID returns 16 hex characters of crypto randomness (the same
// shape as obs trace ids; collisions are vanishingly unlikely within
// a ring of hundreds).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Job is one async generation job: state machine, event log, cancel
// hook, and the owner's opaque result/attachment.
type Job struct {
	id      string
	mgr     *Manager
	created time.Time

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	events   []Event
	update   chan struct{} // closed+replaced on every append
	cancel   context.CancelFunc
	errMsg   string
	errCode  int
	result   any
	attach   any
	stage    string
	netsDone int
	netsAll  int

	done chan struct{} // closed once, on reaching a terminal state
}

// ID returns the job identifier (16 hex characters).
func (j *Job) ID() string { return j.id }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// expired reports whether the record may be TTL-swept.
func (j *Job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && now.Sub(j.finished) >= ttl
}

// appendLocked adds one event and wakes subscribers. Caller holds j.mu.
func (j *Job) appendLocked(typ string, data any) {
	j.events = append(j.events, Event{Seq: len(j.events), Type: typ, Data: data})
	close(j.update)
	j.update = make(chan struct{})
	if j.mgr != nil && j.mgr.hooks.OnEvent != nil {
		// Counter increment only; safe under the job lock.
		j.mgr.hooks.OnEvent()
	}
}

// Publish appends a progress event to the log. Events published after
// the job turned terminal are dropped: the terminal "state" event is
// always the last one a subscriber sees.
func (j *Job) Publish(typ string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.appendLocked(typ, data)
}

// SetProgress updates the live progress counters the status document
// reports (current stage, nets committed so far, nets total).
func (j *Job) SetProgress(stage string, done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stage = stage
	j.netsDone = done
	j.netsAll = total
}

// Attach stores an owner payload on the job (the service attaches the
// live trace observer so status snapshots can derive per-stage
// progress); Attachment returns it.
func (j *Job) Attach(v any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attach = v
}

// Attachment returns the value stored by Attach (nil before).
func (j *Job) Attachment() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attach
}

// Result returns the value stored by Finish (nil before completion).
func (j *Job) Result() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Start moves queued → running. False means the job was canceled
// before a worker picked it up; the caller must not run it.
func (j *Job) Start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = j.mgr.now()
	j.stage = "running"
	j.appendLocked("state", StateChange{State: StateRunning})
	return true
}

// finishLocked performs a terminal transition. Caller holds j.mu.
func (j *Job) finishLocked(st State, code int, msg string) {
	j.state = st
	j.finished = j.mgr.now()
	j.errCode = code
	j.errMsg = msg
	j.appendLocked("state", StateChange{State: st, Error: msg, Code: code})
	close(j.done)
	if j.mgr.hooks.OnFinish != nil {
		j.mgr.hooks.OnFinish(st)
	}
}

// Finish moves the job to done and stores its result. No-op when the
// job is already terminal.
func (j *Job) Finish(result any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.result = result
	j.finishLocked(StateDone, 0, "")
}

// Fail moves the job to failed with the HTTP-style status code its
// synchronous twin would have answered. No-op when already terminal.
func (j *Job) Fail(code int, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finishLocked(StateFailed, code, msg)
}

// Cancel requests cancellation: a queued job turns canceled
// immediately (the pool will skip it), a running job gets its pipeline
// context canceled and turns canceled when the pipeline unwinds (see
// FinishCanceled). False means the job was already terminal.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	cancel := j.cancel
	if j.state == StateQueued {
		j.finishLocked(StateCanceled, 0, "canceled before start")
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// FinishCanceled records that the pipeline unwound from a
// cancellation. No-op when already terminal.
func (j *Job) FinishCanceled(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finishLocked(StateCanceled, 0, msg)
}

// Status is a point-in-time snapshot of a job record.
type Status struct {
	ID         string
	State      State
	Created    time.Time
	Started    time.Time
	Finished   time.Time
	Events     int
	Stage      string
	NetsRouted int
	NetsTotal  int
	Error      string
	Code       int
	Result     any
}

// Status snapshots the record.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:         j.id,
		State:      j.state,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
		Events:     len(j.events),
		Stage:      j.stage,
		NetsRouted: j.netsDone,
		NetsTotal:  j.netsAll,
		Error:      j.errMsg,
		Code:       j.errCode,
		Result:     j.result,
	}
}

// Subscription iterates a job's event log: replay from a starting
// sequence number, then follow live appends.
type Subscription struct {
	j    *Job
	next int
}

// Subscribe starts a subscription at the beginning of the log.
func (j *Job) Subscribe() *Subscription { return j.SubscribeFrom(0) }

// SubscribeFrom starts a subscription at sequence number from
// (clamped to [0, len(log)]); SSE resume passes Last-Event-ID+1.
func (j *Job) SubscribeFrom(from int) *Subscription {
	if from < 0 {
		from = 0
	}
	return &Subscription{j: j, next: from}
}

// Next returns the next event, blocking until one is available. It
// returns ErrDone once the log is drained and the job is terminal, or
// ctx.Err() when the subscriber's context ends first. Each
// subscription owns its cursor, so slow consumers only delay
// themselves.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		s.j.mu.Lock()
		if s.next < len(s.j.events) {
			ev := s.j.events[s.next]
			s.next++
			s.j.mu.Unlock()
			return ev, nil
		}
		terminal := s.j.state.Terminal()
		update := s.j.update
		s.j.mu.Unlock()
		if terminal {
			return Event{}, ErrDone
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-update:
		}
	}
}
