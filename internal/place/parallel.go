package place

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netart/internal/boxes"
	"netart/internal/netlist"
	"netart/internal/partition"
	"netart/internal/resilience"
)

// This file implements the deterministic parallel placement engine,
// the placement analogue of the routing speculation scheduler
// (internal/route/parallel.go). The unit of work is one partition:
// module placement inside every box of the partition (§4.6.4) followed
// by the center-of-gravity box placement within it (§4.6.5). Each task
// reads only immutable shared state — the design and the partition's
// own boxes — and writes a private *placedPart, so unlike routing no
// read-set validation is needed: every speculation trivially commits.
// What the scheduler preserves is the *commit discipline*: results are
// taken strictly in canonical partition order, so the downstream
// partition placement (§4.6.6), terminal placement (§4.6.7) and error
// reporting see exactly the sequential sequence, and the final Result
// is byte-identical to the sequential path for every design, option
// set and worker count. The worker count is an execution hint, never a
// result parameter; the determinism battery (parallel_test.go and the
// rendered-level half in internal/gen) enforces the contract.
//
// One caveat, shared with the parallel router: with an armed fault
// injector the *firing order* of place.box fault sites differs between
// sequential and parallel runs (workers fire them as they reach each
// box), so injected-fault outcomes are reproducible only for a fixed
// worker count. The committed error, however, is always the canonical
// one: the committer scans partitions in order and returns the first
// failure, exactly like the sequential loop.

// SpecStats reports the parallel placement scheduler's work. Purely
// diagnostic; it is the only Result field that varies with the worker
// count.
type SpecStats struct {
	// Workers is the worker count the placement ran with (after
	// clamping to the partition count).
	Workers int `json:"workers"`
	// Partitions counts the partition tasks the committer examined.
	Partitions int `json:"partitions"`
	// Boxes counts the module strings placed across all tasks.
	Boxes int `json:"boxes"`
	// Committed counts tasks committed as computed. Partition tasks
	// share no mutable state, so every examined task commits
	// (Committed == Partitions); the counter exists so a future
	// scheduler with cross-partition speculation can report misses.
	Committed int `json:"committed"`
	// WorkerParts is the number of tasks each worker completed.
	WorkerParts []int `json:"worker_partitions"`
	// WorkerBusy is each worker's wall-clock busy time in seconds,
	// from first claim to exit.
	WorkerBusy []float64 `json:"worker_busy_seconds"`
}

// placeOnePartition is the per-partition task shared by the sequential
// and parallel paths: place every box's module string, then the boxes
// within the partition, all in local coordinates.
func placeOnePartition(d *netlist.Design, p *partition.Part, bxs []*boxes.Box, opts Options) (*placedPart, error) {
	pp := &placedPart{part: p}
	for _, b := range bxs {
		if err := opts.Inject.Fire(resilience.SitePlaceBox); err != nil {
			return nil, fmt.Errorf("place: box placement: %w", err)
		}
		pb, err := placeBoxModules(b, opts)
		if err != nil {
			return nil, err
		}
		pp.boxes = append(pp.boxes, pb)
	}
	placeBoxesInPartition(d, pp, opts)
	return pp, nil
}

// placeParts runs the per-partition placement work for all partitions,
// sequentially or on opts.Workers goroutines, and returns the placed
// partitions in canonical order. The SpecStats result is nil for
// sequential runs.
func placeParts(d *netlist.Design, parts []*partition.Part, bxs [][]*boxes.Box, opts Options) ([]*placedPart, *SpecStats, error) {
	workers := opts.Workers
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers <= 1 {
		placedParts := make([]*placedPart, len(parts))
		for i, p := range parts {
			pp, err := placeOnePartition(d, p, bxs[i], opts)
			if err != nil {
				return nil, nil, err
			}
			placedParts[i] = pp
		}
		return placedParts, nil, nil
	}
	return placePartsParallel(d, parts, bxs, opts, workers)
}

// partResult is what a worker hands the committer for one partition.
type partResult struct {
	pp       *placedPart
	err      error
	panicVal any // recovered panic; the committer re-raises it
}

// placePartsParallel is the Workers>1 implementation of placeParts: a
// pool of workers claims partition indices in canonical order by
// fetch-and-add, computes each task against the shared read-only
// design, and the committer collects results strictly in order. The
// first canonical error (or forwarded panic) wins, exactly as in the
// sequential loop; remaining workers are told to stop and their
// in-flight work is discarded.
func placePartsParallel(d *netlist.Design, parts []*partition.Part, bxs [][]*boxes.Box,
	opts Options, workers int) ([]*placedPart, *SpecStats, error) {
	n := len(parts)
	spec := &SpecStats{
		Workers:     workers,
		WorkerParts: make([]int, workers),
		WorkerBusy:  make([]float64, workers),
	}
	ready := make([]chan *partResult, n)
	for i := range ready {
		// Buffered so a worker never blocks on a send: exactly one
		// result is produced per index.
		ready[i] = make(chan *partResult, 1)
	}
	var (
		next    atomic.Int64
		stopped = make(chan struct{})
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			defer func() { spec.WorkerBusy[w] = time.Since(start).Seconds() }()
			for {
				select {
				case <-stopped:
					return
				default:
				}
				k := int(next.Add(1) - 1)
				if k >= n {
					return
				}
				res := &partResult{}
				func() {
					defer func() {
						if r := recover(); r != nil {
							// A panic (typically an injected fault) must
							// not crash the process from a bare
							// goroutine; forward it so the committer
							// re-raises it on the caller's stack, inside
							// the caller's resilience.Recover boundary.
							res.panicVal = r
						}
					}()
					res.pp, res.err = placeOnePartition(d, parts[k], bxs[k], opts)
					if res.err == nil {
						spec.WorkerParts[w]++
					}
				}()
				ready[k] <- res
				if res.panicVal != nil {
					return // retire the worker; the committer re-raises
				}
			}
		}(w)
	}

	placedParts := make([]*placedPart, 0, n)
	var firstErr error
	var panicked any
	for k := 0; k < n; k++ {
		res := <-ready[k]
		if res.panicVal != nil {
			panicked = res.panicVal
			break
		}
		if res.err != nil {
			firstErr = res.err
			break
		}
		spec.Partitions++
		spec.Committed++
		spec.Boxes += len(res.pp.boxes)
		placedParts = append(placedParts, res.pp)
	}
	close(stopped)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return placedParts, spec, nil
}
