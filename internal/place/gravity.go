package place

import (
	"math"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// This file implements the gravity-center driven placement of boxes
// within partitions (§4.6.5), partitions within the diagram (§4.6.6)
// and system terminals on the border (§4.6.7).

// fpoint is a float gravity center; the paper divides integer sums, we
// keep fractions until the final target rounding to avoid bias.
type fpoint struct{ x, y float64 }

func (p fpoint) sub(q fpoint) geom.Point {
	return geom.Pt(int(math.Round(p.x-q.x)), int(math.Round(p.y-q.y)))
}

// modSet collects the modules of a placed box.
func (pb *placedBox) modSet() map[*netlist.Module]bool {
	s := map[*netlist.Module]bool{}
	for _, pm := range pb.mods {
		s[pm.Mod] = true
	}
	return s
}

// sharedNets returns the nets that have a terminal in set a and a
// terminal in set b.
func sharedNets(d *netlist.Design, a, b map[*netlist.Module]bool) map[*netlist.Net]bool {
	out := map[*netlist.Net]bool{}
	for _, n := range d.Nets {
		inA, inB := false, false
		for _, t := range n.Terms {
			if t.Module == nil {
				continue
			}
			if a[t.Module] {
				inA = true
			}
			if b[t.Module] {
				inB = true
			}
		}
		if inA && inB {
			out[n] = true
		}
	}
	return out
}

// gravity averages the positions of the terminals of mods that lie on
// one of the given nets. pos maps a placed module to the function
// giving absolute terminal positions. ok is false when no terminal
// qualifies.
func gravity(mods []*PlacedModule, origin geom.Point, nets map[*netlist.Net]bool) (fpoint, bool) {
	var sx, sy float64
	n := 0
	for _, pm := range mods {
		for _, t := range pm.Mod.Terms {
			if t.Net == nil || !nets[t.Net] {
				continue
			}
			p := origin.Add(pm.TermPos(t))
			sx += float64(p.X)
			sy += float64(p.Y)
			n++
		}
	}
	if n == 0 {
		return fpoint{}, false
	}
	return fpoint{sx / float64(n), sy / float64(n)}, true
}

// placeBoxesInPartition implements BOX_PLACEMENT for one partition: the
// largest box is placed first; each following box is the most heavily
// connected unplaced one and lands at the free position minimizing the
// distance between the gravity centers of the shared-net terminals.
// Box origins are normalized so the partition's lower-left is (0,0);
// pp.size receives the partition bounding box inflated by PartSpacing.
func placeBoxesInPartition(d *netlist.Design, pp *placedPart, opts Options) {
	if len(pp.boxes) == 0 {
		pp.size = geom.Pt(0, 0)
		return
	}
	// Largest box first (ties: first formed, which was the longest
	// string anyway).
	first := 0
	for i, pb := range pp.boxes {
		if pb.box.Len() > pp.boxes[first].box.Len() {
			first = i
		}
	}
	pp.boxes[0], pp.boxes[first] = pp.boxes[first], pp.boxes[0]
	pp.boxes[0].origin = geom.Pt(0, 0)

	placedRects := []geom.Rect{{Min: geom.Pt(0, 0), Max: pp.boxes[0].size}}
	placedIdx := []int{0}
	pending := make([]int, 0, len(pp.boxes)-1)
	for i := 1; i < len(pp.boxes); i++ {
		pending = append(pending, i)
	}

	for len(pending) > 0 {
		// SELECT_NEXT_BOX: most nets shared with the placed boxes.
		placedSet := map[*netlist.Module]bool{}
		for _, i := range placedIdx {
			for m := range pp.boxes[i].modSet() {
				placedSet[m] = true
			}
		}
		bestI, bestConn := 0, -1
		for pi, i := range pending {
			conn := len(sharedNets(d, pp.boxes[i].modSet(), placedSet))
			if conn > bestConn {
				bestI, bestConn = pi, conn
			}
		}
		i := pending[bestI]
		pending = append(pending[:bestI], pending[bestI+1:]...)
		pb := pp.boxes[i]

		nets := sharedNets(d, pb.modSet(), placedSet)
		g0, ok0 := gravity(pb.mods, geom.Pt(0, 0), nets)
		var g1 fpoint
		ok1 := false
		if ok0 {
			var sx, sy float64
			n := 0
			for _, j := range placedIdx {
				q := pp.boxes[j]
				if g, ok := gravity(q.mods, q.origin, nets); ok {
					// gravity returns a mean; re-weight by recomputing
					// the sums from each placed box.
					cnt := termCount(q.mods, nets)
					sx += g.x * float64(cnt)
					sy += g.y * float64(cnt)
					n += cnt
				}
			}
			if n > 0 {
				g1 = fpoint{sx / float64(n), sy / float64(n)}
				ok1 = true
			}
		}
		var target geom.Point
		if ok0 && ok1 {
			target = g1.sub(g0)
		} else {
			// No shared nets: abut to the right of what is placed.
			target = geom.Pt(boundsOf(placedRects).Max.X+1, 0)
		}
		pb.origin = bestFreeOrigin(target, pb.size, placedRects, opts.BoxSpacing)
		placedRects = append(placedRects, geom.Rect{Min: pb.origin, Max: pb.origin.Add(pb.size)})
		placedIdx = append(placedIdx, i)
	}

	// Normalize: shift so the partition's own lower-left is (0,0) plus
	// the partition margin.
	b := boundsOf(placedRects)
	shift := geom.Pt(opts.PartSpacing-b.Min.X, opts.PartSpacing-b.Min.Y)
	for _, pb := range pp.boxes {
		pb.origin = pb.origin.Add(shift)
	}
	pp.size = geom.Pt(b.Dx()+2*opts.PartSpacing, b.Dy()+2*opts.PartSpacing)
}

func termCount(mods []*PlacedModule, nets map[*netlist.Net]bool) int {
	n := 0
	for _, pm := range mods {
		for _, t := range pm.Mod.Terms {
			if t.Net != nil && nets[t.Net] {
				n++
			}
		}
	}
	return n
}

func boundsOf(rects []geom.Rect) geom.Rect {
	var b geom.Rect
	for i, r := range rects {
		if i == 0 {
			b = r
		} else {
			b = b.Union(r)
		}
	}
	return b
}

// partModSet collects all modules of a placed partition.
func (pp *placedPart) partModSet() map[*netlist.Module]bool {
	s := map[*netlist.Module]bool{}
	if pp.fixed {
		for _, pm := range pp.mods {
			s[pm.Mod] = true
		}
		return s
	}
	for _, pb := range pp.boxes {
		for _, pm := range pb.mods {
			s[pm.Mod] = true
		}
	}
	return s
}

// partGravity averages the terminal positions of pp's modules on the
// given nets, with box origins applied and the partition origin added
// when absolute is true.
func (pp *placedPart) partGravity(nets map[*netlist.Net]bool, absolute bool) (fpoint, int) {
	var sx, sy float64
	n := 0
	addTerm := func(p geom.Point) {
		sx += float64(p.X)
		sy += float64(p.Y)
		n++
	}
	if pp.fixed {
		for _, pm := range pp.mods {
			for _, t := range pm.Mod.Terms {
				if t.Net != nil && nets[t.Net] {
					addTerm(pm.TermPos(t)) // already absolute
				}
			}
		}
	} else {
		for _, pb := range pp.boxes {
			for _, pm := range pb.mods {
				for _, t := range pm.Mod.Terms {
					if t.Net == nil || !nets[t.Net] {
						continue
					}
					p := pb.origin.Add(pm.TermPos(t))
					if absolute {
						p = p.Add(pp.origin)
					}
					addTerm(p)
				}
			}
		}
	}
	if n == 0 {
		return fpoint{}, 0
	}
	return fpoint{sx / float64(n), sy / float64(n)}, n
}

// pinnedPartition builds the pseudo partition holding the manually
// preplaced modules (PABLO -g: "the preplaced part will form a partition
// on its own"). Returns nil when nothing is pinned.
func pinnedPartition(d *netlist.Design, opts Options) *placedPart {
	if len(opts.Fixed) == 0 {
		return nil
	}
	pp := &placedPart{fixed: true}
	for _, m := range d.Modules {
		fx, ok := opts.Fixed[m]
		if !ok {
			continue
		}
		pp.mods = append(pp.mods, &PlacedModule{Mod: m, Pos: fx.Pos, Orient: fx.Orient})
	}
	var b geom.Rect
	for i, pm := range pp.mods {
		if i == 0 {
			b = pm.Rect()
		} else {
			b = b.Union(pm.Rect())
		}
	}
	// Surround the pinned block with the same white space a box would
	// get, so the automatically placed partitions keep routing room
	// clear of its terminals.
	halo := [4]int{}
	for _, pm := range pp.mods {
		for di, dir := range geom.Dirs {
			if s := spacing(pm.Mod, pm.Orient, dir, opts.ModSpacing); s > halo[di] {
				halo[di] = s
			}
		}
	}
	l, r := halo[geom.Left], halo[geom.Right]
	dn, up := halo[geom.Down], halo[geom.Up]
	pp.origin = b.Min.Sub(geom.Pt(l, dn))
	pp.size = geom.Pt(b.Dx()+l+r, b.Dy()+dn+up)
	return pp
}

// placePartitions implements PARTITION_PLACEMENT: the partition with the
// most modules (or the pinned preplaced partition) is placed first; each
// following partition is the most heavily connected one and lands at the
// free position minimizing the gravity center distance.
func placePartitions(d *netlist.Design, parts []*placedPart, pinned *placedPart, opts Options) {
	var placed []*placedPart
	var placedRects []geom.Rect
	pending := append([]*placedPart(nil), parts...)

	if pinned != nil {
		placed = append(placed, pinned)
		placedRects = append(placedRects, geom.Rect{Min: pinned.origin, Max: pinned.origin.Add(pinned.size)})
	} else if len(pending) > 0 {
		first := 0
		for i, pp := range pending {
			if len(pp.partModSet()) > len(pending[first].partModSet()) {
				first = i
			}
		}
		p := pending[first]
		pending = append(pending[:first], pending[first+1:]...)
		p.origin = geom.Pt(0, 0)
		placed = append(placed, p)
		placedRects = append(placedRects, geom.Rect{Min: p.origin, Max: p.origin.Add(p.size)})
	}

	for len(pending) > 0 {
		placedSet := map[*netlist.Module]bool{}
		for _, pp := range placed {
			for m := range pp.partModSet() {
				placedSet[m] = true
			}
		}
		bestI, bestConn := 0, -1
		for i, pp := range pending {
			conn := len(sharedNets(d, pp.partModSet(), placedSet))
			if conn > bestConn {
				bestI, bestConn = i, conn
			}
		}
		pp := pending[bestI]
		pending = append(pending[:bestI], pending[bestI+1:]...)

		nets := sharedNets(d, pp.partModSet(), placedSet)
		g0, n0 := pp.partGravity(nets, false)
		var g1 fpoint
		n1 := 0
		{
			var sx, sy float64
			for _, q := range placed {
				g, n := q.partGravity(nets, true)
				sx += g.x * float64(n)
				sy += g.y * float64(n)
				n1 += n
			}
			if n1 > 0 {
				g1 = fpoint{sx / float64(n1), sy / float64(n1)}
			}
		}
		var target geom.Point
		if n0 > 0 && n1 > 0 {
			target = g1.sub(g0)
		} else {
			target = geom.Pt(boundsOf(placedRects).Max.X+1, 0)
		}
		pp.origin = bestFreeOrigin(target, pp.size, placedRects, opts.PartSpacing)
		placed = append(placed, pp)
		placedRects = append(placedRects, geom.Rect{Min: pp.origin, Max: pp.origin.Add(pp.size)})
	}
}

// bestFreeOrigin finds the origin closest to target (squared Euclidean
// distance, the paper's criterion in PLACE_BOX / PLACE_PARTITION) such
// that the rectangle of the given size, inflated by spacing, overlaps
// none of the placed rectangles. The ring search is exact: a candidate
// found at distance d is only accepted once every ring with minimum
// distance <= d has been scanned.
func bestFreeOrigin(target, size geom.Point, placed []geom.Rect, spacing int) geom.Point {
	free := func(p geom.Point) bool {
		r := geom.Rect{Min: p, Max: p.Add(size)}.Inset(-spacing)
		for _, q := range placed {
			if r.Overlaps(q) {
				return false
			}
		}
		return true
	}
	if len(placed) == 0 {
		return target
	}
	ext := boundsOf(placed)
	// Anything beyond the placed extent plus our own size is certainly
	// free, so the search terminates within this radius.
	limit := ext.Dx() + ext.Dy() + size.X + size.Y + 2*spacing + 4

	best := geom.Point{}
	bestD := math.MaxInt
	found := false
	for r := 0; r <= limit; r++ {
		if found && bestD <= r*r {
			break
		}
		for _, p := range chebyshevRing(target, r) {
			if !free(p) {
				continue
			}
			if d := p.SqDist(target); d < bestD {
				best, bestD, found = p, d, true
			}
		}
	}
	if !found {
		// Unreachable in practice; fall back to the right of everything.
		return geom.Pt(ext.Max.X+spacing+1, target.Y)
	}
	return best
}

// chebyshevRing enumerates the grid points at Chebyshev distance r from
// c.
func chebyshevRing(c geom.Point, r int) []geom.Point {
	if r == 0 {
		return []geom.Point{c}
	}
	out := make([]geom.Point, 0, 8*r)
	for x := -r; x <= r; x++ {
		out = append(out, c.Add(geom.Pt(x, r)), c.Add(geom.Pt(x, -r)))
	}
	for y := -r + 1; y <= r-1; y++ {
		out = append(out, c.Add(geom.Pt(r, y)), c.Add(geom.Pt(-r, y)))
	}
	return out
}

// placeTerminals implements TERMINAL_PLACEMENT (§4.6.7): every system
// terminal goes to the free position on the ring one track outside the
// module bounding box that is closest to the gravity center of the
// subsystem terminals on its net.
func placeTerminals(r *Result) {
	if len(r.Design.SysTerms) == 0 {
		return
	}
	ring := perimeterRing(r.ModuleBounds)
	occupied := map[geom.Point]bool{}
	// A ring position that is the outward escape cell of a connected
	// subsystem terminal would make that terminal unroutable (its only
	// approach track would be blocked); reserve those cells.
	for _, m := range r.Design.Modules {
		pm, ok := r.Mods[m]
		if !ok {
			continue
		}
		for _, tm := range m.Terms {
			if tm.Net == nil {
				continue
			}
			out := pm.TermPos(tm).Add(pm.TermSide(tm).Delta())
			occupied[out] = true
		}
	}
	for _, st := range r.Design.SysTerms {
		g, ok := terminalGravity(r, st)
		if !ok {
			g = r.ModuleBounds.Center()
		}
		best := geom.Point{}
		bestD := math.MaxInt
		for _, p := range ring {
			if occupied[p] {
				continue
			}
			if d := p.SqDist(g); d < bestD {
				best, bestD = p, d
			}
		}
		// The ring always has more positions than terminals for any
		// non-degenerate design; if it were exhausted we grow outward.
		if bestD == math.MaxInt {
			ring = perimeterRing(r.ModuleBounds.Inset(-2))
			for _, p := range ring {
				if occupied[p] {
					continue
				}
				if d := p.SqDist(g); d < bestD {
					best, bestD = p, d
				}
			}
		}
		occupied[best] = true
		r.SysPos[st] = best
	}
}

// terminalGravity returns the mean position of the subsystem terminals
// connected to st's net.
func terminalGravity(r *Result, st *netlist.Terminal) (geom.Point, bool) {
	if st.Net == nil {
		return geom.Point{}, false
	}
	var sx, sy, n int
	for _, t := range st.Net.Terms {
		if t.Module == nil {
			continue
		}
		pm, ok := r.Mods[t.Module]
		if !ok {
			continue
		}
		p := pm.TermPos(t)
		sx += p.X
		sy += p.Y
		n++
	}
	if n == 0 {
		return geom.Point{}, false
	}
	return geom.Pt(sx/n, sy/n), true
}

// perimeterRing lists the grid positions one track outside b. b uses
// cell semantics (Max exclusive), but module symbols occupy their
// outline points inclusively, so the ring runs from Min-1 to Max+1 in
// point coordinates.
func perimeterRing(b geom.Rect) []geom.Point {
	x0, y0 := b.Min.X-1, b.Min.Y-1
	x1, y1 := b.Max.X+1, b.Max.Y+1
	var out []geom.Point
	for x := x0; x <= x1; x++ {
		out = append(out, geom.Pt(x, y0), geom.Pt(x, y1))
	}
	for y := y0 + 1; y <= y1-1; y++ {
		out = append(out, geom.Pt(x0, y), geom.Pt(x1, y))
	}
	return out
}
