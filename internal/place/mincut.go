package place

import (
	"sort"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// MinCut implements the min-cut bipartitioning placement of §4.2.3
// (after Lauther [5]) as a baseline: the module set is recursively
// split into two halves so that the number of nets crossing the cut is
// minimized while the total module areas stay balanced; the cut
// direction alternates per level, assigning each subset a sub-rectangle
// of the placement area. Leaves (single modules) are placed in their
// region; a final legalization pass resolves the residual overlaps the
// discrete module sizes cause.
//
// As §4.5 explains, the approach minimizes congestion but "does not
// concern about the signal flow direction" — the property the
// comparison bench measures.
func MinCut(d *netlist.Design, spacing int) (*Result, error) {
	res := &Result{
		Design: d,
		Mods:   map[*netlist.Module]*PlacedModule{},
		SysPos: map[*netlist.Terminal]geom.Point{},
	}
	if spacing < 1 {
		spacing = 1
	}
	if len(d.Modules) == 0 {
		placeTerminals(res)
		res.Bounds = fullBounds(res)
		return res, nil
	}

	// Total area (with spacing halo) decides the root region.
	area := 0
	maxW, maxH := 0, 0
	for _, m := range d.Modules {
		area += (m.W + 2*spacing) * (m.H + 2*spacing)
		maxW = geom.Max(maxW, m.W+2*spacing)
		maxH = geom.Max(maxH, m.H+2*spacing)
	}
	side := 1
	for side*side < area*2 {
		side++
	}
	side = geom.Max(side, geom.Max(maxW, maxH))
	root := geom.R(0, 0, side, side)

	var targets []struct {
		m  *netlist.Module
		at geom.Point
	}
	var recurse func(mods []*netlist.Module, region geom.Rect, vertical bool)
	recurse = func(mods []*netlist.Module, region geom.Rect, vertical bool) {
		if len(mods) == 0 {
			return
		}
		if len(mods) == 1 {
			c := region.Center()
			targets = append(targets, struct {
				m  *netlist.Module
				at geom.Point
			}{mods[0], geom.Pt(c.X-mods[0].W/2, c.Y-mods[0].H/2)})
			return
		}
		a, b := bipartition(d, mods)
		areaOf := func(set []*netlist.Module) int {
			s := 0
			for _, m := range set {
				s += (m.W + 2*spacing) * (m.H + 2*spacing)
			}
			return s
		}
		fracNum, fracDen := areaOf(a), areaOf(a)+areaOf(b)
		if fracDen == 0 {
			fracNum, fracDen = 1, 2
		}
		var ra, rb geom.Rect
		if vertical { // vertical cut line: split x
			cut := region.Min.X + region.Dx()*fracNum/fracDen
			cut = geom.Min(geom.Max(cut, region.Min.X+1), region.Max.X-1)
			ra = geom.Rect{Min: region.Min, Max: geom.Pt(cut, region.Max.Y)}
			rb = geom.Rect{Min: geom.Pt(cut, region.Min.Y), Max: region.Max}
		} else {
			cut := region.Min.Y + region.Dy()*fracNum/fracDen
			cut = geom.Min(geom.Max(cut, region.Min.Y+1), region.Max.Y-1)
			ra = geom.Rect{Min: region.Min, Max: geom.Pt(region.Max.X, cut)}
			rb = geom.Rect{Min: geom.Pt(region.Min.X, cut), Max: region.Max}
		}
		recurse(a, ra, !vertical)
		recurse(b, rb, !vertical)
	}
	recurse(append([]*netlist.Module(nil), d.Modules...), root, true)

	// Legalize: place each module at the free position nearest its
	// region target (region order keeps the global structure).
	var placedRects []geom.Rect
	for _, tg := range targets {
		pos := tg.at
		if len(placedRects) > 0 {
			pos = bestFreeOrigin(tg.at, geom.Pt(tg.m.W, tg.m.H), placedRects, spacing)
		}
		pm := &PlacedModule{Mod: tg.m, Pos: pos}
		res.Mods[tg.m] = pm
		placedRects = append(placedRects, pm.Rect())
	}

	res.ModuleBounds = moduleBounds(res)
	placeTerminals(res)
	res.Bounds = fullBounds(res)
	return res, nil
}

// bipartition splits modules into two halves minimizing the nets cut,
// by greedy improvement from an area-balanced seed split (a light
// variant of the iterative improvement the min-cut algorithm runs
// until "the overall count of nets cut can not be reduced further").
func bipartition(d *netlist.Design, mods []*netlist.Module) (a, b []*netlist.Module) {
	// Seed: alternate by connectivity-sorted order for a balanced start.
	sorted := append([]*netlist.Module(nil), mods...)
	all := map[*netlist.Module]bool{}
	for _, m := range mods {
		all[m] = true
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return netlist.NetsBetween(sorted[i], all) > netlist.NetsBetween(sorted[j], all)
	})
	inA := map[*netlist.Module]bool{}
	for i, m := range sorted {
		if i%2 == 0 {
			inA[m] = true
		}
	}
	inSet := map[*netlist.Module]bool{}
	for _, m := range mods {
		inSet[m] = true
	}

	cut := func() int {
		c := 0
		for _, n := range d.Nets {
			hasA, hasB := false, false
			for _, t := range n.Terms {
				if t.Module == nil || !inSet[t.Module] {
					continue
				}
				if inA[t.Module] {
					hasA = true
				} else {
					hasB = true
				}
			}
			if hasA && hasB {
				c++
			}
		}
		return c
	}
	sizeA := 0
	for _, m := range mods {
		if inA[m] {
			sizeA++
		}
	}
	// Greedy single moves while the cut improves and balance holds
	// within one module of half.
	cur := cut()
	for improved := true; improved; {
		improved = false
		for _, m := range mods {
			wasA := inA[m]
			newSizeA := sizeA
			if wasA {
				newSizeA--
			} else {
				newSizeA++
			}
			if newSizeA < len(mods)/2-1 || newSizeA > (len(mods)+1)/2+1 {
				continue
			}
			inA[m] = !wasA
			if c := cut(); c < cur {
				cur = c
				sizeA = newSizeA
				improved = true
			} else {
				inA[m] = wasA
			}
		}
	}
	for _, m := range mods {
		if inA[m] {
			a = append(a, m)
		} else {
			b = append(b, m)
		}
	}
	if len(a) == 0 {
		a, b = b[:1], b[1:]
	}
	if len(b) == 0 {
		b, a = a[:1], a[1:]
	}
	return a, b
}

// CutCount returns the number of nets with modules on both sides of the
// vertical line x (used by the comparison bench's crossing-count
// metric).
func CutCount(res *Result, x int) int {
	c := 0
	for _, n := range res.Design.Nets {
		left, right := false, false
		for _, t := range n.Terms {
			if t.Module == nil {
				continue
			}
			pm, ok := res.Mods[t.Module]
			if !ok {
				continue
			}
			if pm.Rect().Center().X < x {
				left = true
			} else {
				right = true
			}
		}
		if left && right {
			c++
		}
	}
	return c
}
