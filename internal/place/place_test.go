package place

import (
	"testing"
	"testing/quick"

	"netart/internal/boxes"
	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/workload"
)

func mustPlace(t *testing.T, d *netlist.Design, opts Options) *Result {
	t.Helper()
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPlaceFig61(t *testing.T) {
	d := workload.Fig61()
	res := mustPlace(t, d, Options{PartSize: 6, BoxSize: 6})
	if len(res.Parts) != 1 {
		t.Fatalf("%d partitions, want 1", len(res.Parts))
	}
	if len(res.Parts[0].Boxes) != 1 {
		t.Fatalf("%d boxes, want 1", len(res.Parts[0].Boxes))
	}
	// Left-to-right signal flow: each string module strictly right of
	// its predecessor.
	b := res.Parts[0].Boxes[0].Box
	for i := 1; i < b.Len(); i++ {
		prev := res.Mods[b.Modules[i-1]]
		cur := res.Mods[b.Modules[i]]
		pw, _ := prev.Size()
		if cur.Pos.X < prev.Pos.X+pw {
			t.Errorf("module %s not right of %s", cur.Mod.Name, prev.Mod.Name)
		}
	}
}

// stringBends counts the bends needed to connect t0 to t1 given their
// positions and outward sides, for the bend lemma check: 0 bends when
// aligned on opposing horizontal sides, else as routed with one or two
// corners.
func stringBends(p0, p1 geom.Point, s0, s1 geom.Dir) int {
	if s0 == geom.Right && s1 == geom.Left && p0.Y == p1.Y {
		return 0
	}
	if s0.Horizontal() != s1.Horizontal() {
		return 1 // an L path suffices when the escape directions differ in axis
	}
	return 2
}

func TestBendLemma(t *testing.T) {
	// §4.6.4 lemma: the in-string nets of a placed string need at most
	// two bends each, and zero when the connecting sides oppose.
	d := workload.Fig61()
	res := mustPlace(t, d, Options{PartSize: 6, BoxSize: 6})
	b := res.Parts[0].Boxes[0].Box
	for i := 1; i < b.Len(); i++ {
		prev, cur := b.Modules[i-1], b.Modules[i]
		tp, tc, ok := boxes.StringNet(prev, cur)
		if !ok {
			t.Fatalf("string broken at %s", cur.Name)
		}
		pp := res.Mods[prev].TermPos(tp)
		pc := res.Mods[cur].TermPos(tc)
		sp := res.Mods[prev].TermSide(tp)
		sc := res.Mods[cur].TermSide(tc)
		if sc != geom.Left {
			t.Errorf("module %s input terminal faces %v, want left", cur.Name, sc)
		}
		if n := stringBends(pp, pc, sp, sc); n > 2 {
			t.Errorf("net %s->%s needs %d bends, lemma says <= 2", prev.Name, cur.Name, n)
		}
		if sp == geom.Right && pp.Y != pc.Y {
			t.Errorf("opposing sides not aligned: %v vs %v", pp, pc)
		}
	}
}

func TestPlaceDatapathVariants(t *testing.T) {
	// The parameter sweep of figures 6.2-6.4 must all verify.
	d := workload.Datapath16()
	for _, opt := range []Options{
		{PartSize: 1, BoxSize: 1},
		{PartSize: 5, BoxSize: 1},
		{PartSize: 7, BoxSize: 5},
	} {
		res := mustPlace(t, d, opt)
		if len(res.Mods) != 16 {
			t.Errorf("p=%d b=%d: %d modules placed", opt.PartSize, opt.BoxSize, len(res.Mods))
		}
		if len(res.SysPos) != 5 {
			t.Errorf("p=%d b=%d: %d system terminals placed", opt.PartSize, opt.BoxSize, len(res.SysPos))
		}
	}
}

func TestPartitionCountsMatchFigures(t *testing.T) {
	d := workload.Datapath16()
	// Figure 6.2: p=1 -> 16 partitions. Figure 6.3: p=5 -> >= 4.
	res := mustPlace(t, d, Options{PartSize: 1, BoxSize: 1})
	if len(res.Parts) != 16 {
		t.Errorf("p=1: %d partitions, want 16", len(res.Parts))
	}
	res = mustPlace(t, d, Options{PartSize: 5, BoxSize: 1})
	if len(res.Parts) < 4 {
		t.Errorf("p=5: %d partitions, want >= 4", len(res.Parts))
	}
	// Figure 6.4: p=7 b=5 -> 3 partitions (16 modules / 7 >= 3).
	res = mustPlace(t, d, Options{PartSize: 7, BoxSize: 5})
	if len(res.Parts) < 3 {
		t.Errorf("p=7: %d partitions, want >= 3", len(res.Parts))
	}
}

func TestPlaceLife(t *testing.T) {
	d := workload.Life27()
	res := mustPlace(t, d, Options{PartSize: 7, BoxSize: 5})
	if len(res.Mods) != 27 {
		t.Errorf("%d modules placed", len(res.Mods))
	}
}

func TestSpacingGrowsWithTerminals(t *testing.T) {
	// A side with more connected nets gets more white space.
	d := workload.Datapath16()
	ctrl := d.Module("ctrl")
	right := spacing(ctrl, geom.R0, geom.Right, 0)
	up := spacing(ctrl, geom.R0, geom.Up, 0)
	if right <= up {
		t.Errorf("controller right spacing %d <= up spacing %d", right, up)
	}
	// Slack adds through.
	if spacing(ctrl, geom.R0, geom.Right, 3) != right+3 {
		t.Error("slack not added")
	}
}

func TestPreplacedPinned(t *testing.T) {
	d := workload.Datapath16()
	ctrl := d.Module("ctrl")
	fx := Fixed{Pos: geom.Pt(0, 40)}
	res := mustPlace(t, d, Options{
		PartSize: 1, BoxSize: 1,
		Fixed: map[*netlist.Module]Fixed{ctrl: fx},
	})
	got := res.Mods[ctrl]
	if got.Pos != fx.Pos || got.Orient != fx.Orient {
		t.Errorf("pinned module moved: %v %v", got.Pos, got.Orient)
	}
	// The pinned module forms its own pseudo partition, so the
	// automatic partitions cover the other 15 modules.
	total := 0
	for _, pp := range res.Parts {
		total += len(pp.Part.Modules)
	}
	if total != 15 {
		t.Errorf("automatic partitions cover %d modules, want 15", total)
	}
}

func TestSysTerminalsOnPerimeter(t *testing.T) {
	d := workload.Datapath16()
	res := mustPlace(t, d, Options{PartSize: 5, BoxSize: 5})
	b := res.ModuleBounds
	for _, st := range d.SysTerms {
		p := res.SysPos[st]
		onRing := p.X == b.Min.X-1 || p.X == b.Max.X+1 || p.Y == b.Min.Y-1 || p.Y == b.Max.Y+1
		if !onRing {
			t.Errorf("terminal %s at %v not on the perimeter of %v", st.Name, p, b)
		}
	}
}

func TestInputTerminalsTendLeft(t *testing.T) {
	// Rule 4: with left-to-right strings, input system terminals should
	// gravitate to the left half, outputs to the right half.
	d := workload.Fig61()
	res := mustPlace(t, d, Options{PartSize: 6, BoxSize: 6})
	in := res.SysPos[d.SysTerm("IN")]
	cx := res.ModuleBounds.Center().X
	if in.X > cx {
		t.Errorf("input terminal at x=%d right of center %d", in.X, cx)
	}
}

func TestTermPosAndSide(t *testing.T) {
	d := workload.Fig61()
	res := mustPlace(t, d, Options{PartSize: 6, BoxSize: 6})
	for _, m := range d.Modules {
		pm := res.Mods[m]
		r := pm.Rect()
		for _, tm := range m.Terms {
			p, err := res.TermPos(tm)
			if err != nil {
				t.Fatal(err)
			}
			// Terminal positions are on the closed boundary of the
			// rotated module rectangle.
			if p.X < r.Min.X || p.X > r.Max.X || p.Y < r.Min.Y || p.Y > r.Max.Y {
				t.Errorf("terminal %s at %v outside module rect %v", tm.Label(), p, r)
			}
		}
	}
	st := d.SysTerm("IN")
	if _, err := res.TermPos(st); err != nil {
		t.Fatal(err)
	}
	if _, err := res.TermSide(st); err != nil {
		t.Fatal(err)
	}
	// Unknown terminal errors.
	other := netlist.NewDesign("x")
	om, _ := other.AddModule("om", "", 2, 2, []netlist.TermSpec{
		{Name: "T", Type: netlist.In, Pos: geom.Pt(0, 1)},
	})
	if _, err := res.TermPos(om.Term("T")); err == nil {
		t.Error("foreign terminal accepted")
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a := mustPlace(t, workload.Datapath16(), Options{PartSize: 5, BoxSize: 3})
	b := mustPlace(t, workload.Datapath16(), Options{PartSize: 5, BoxSize: 3})
	for _, m := range a.Design.Modules {
		pa := a.Mods[m]
		pb := b.Mods[b.Design.Module(m.Name)]
		if pa.Pos != pb.Pos || pa.Orient != pb.Orient {
			t.Fatalf("module %s placed at %v/%v vs %v/%v",
				m.Name, pa.Pos, pa.Orient, pb.Pos, pb.Orient)
		}
	}
}

func TestPlacePropertyNoOverlap(t *testing.T) {
	// Property: random networks and random knob settings never produce
	// overlapping modules or unplaced elements.
	f := func(seed int64, pRaw, bRaw, sRaw uint8) bool {
		d := workload.Random(12, seed)
		opts := Options{
			PartSize:    1 + int(pRaw)%8,
			BoxSize:     1 + int(bRaw)%5,
			ModSpacing:  int(sRaw) % 3,
			BoxSpacing:  int(sRaw) % 2,
			PartSpacing: int(sRaw) % 2,
		}
		res, err := Place(d, opts)
		if err != nil {
			return false
		}
		return res.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpacingSeparatesPartitions(t *testing.T) {
	d := workload.Datapath16()
	tight := mustPlace(t, d, Options{PartSize: 5, BoxSize: 5})
	loose := mustPlace(t, d, Options{PartSize: 5, BoxSize: 5, PartSpacing: 4})
	if loose.ModuleBounds.Area() <= tight.ModuleBounds.Area() {
		t.Errorf("partition spacing did not grow the diagram: %v vs %v",
			loose.ModuleBounds, tight.ModuleBounds)
	}
}

func TestHeavilyConnectedNearby(t *testing.T) {
	// Rule 2: connected module pairs should on average sit closer than
	// unconnected pairs.
	d := workload.Datapath16()
	res := mustPlace(t, d, Options{PartSize: 5, BoxSize: 5})
	var connSum, connN, disSum, disN int
	for i, a := range d.Modules {
		for _, b := range d.Modules[i+1:] {
			dist := res.Mods[a].Rect().Center().Manhattan(res.Mods[b].Rect().Center())
			if netlist.Connected(a, b) {
				connSum += dist
				connN++
			} else {
				disSum += dist
				disN++
			}
		}
	}
	if connN == 0 || disN == 0 {
		t.Skip("degenerate connectivity")
	}
	if connSum*disN >= disSum*connN { // avg(conn) >= avg(dis)
		t.Errorf("connected pairs avg distance %d/%d not below unconnected %d/%d",
			connSum, connN, disSum, disN)
	}
}

func TestPlaceEmptyDesign(t *testing.T) {
	d := netlist.NewDesign("empty")
	res, err := Place(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mods) != 0 || len(res.SysPos) != 0 {
		t.Error("empty design placed something")
	}
}

func TestPlaceSingleModule(t *testing.T) {
	lib := workload.Fig61() // reuse a module from a built design
	_ = lib
	d := netlist.NewDesign("one")
	if _, err := d.AddModule("only", "", 4, 3, []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	res := mustPlace(t, d, Options{})
	if len(res.Mods) != 1 {
		t.Fatal("module not placed")
	}
}
