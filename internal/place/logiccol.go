package place

import (
	"sort"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// LogicColumns implements the logic-schematic placement of §4.3 as a
// baseline: modules are levelized into columns — the first column holds
// the units with no module-driven inputs, the next holds units fed
// exclusively by earlier columns, and so on (back edges, which the
// paper's sources exclude "for reasons of simplicity", fall into the
// first column where all their resolved predecessors sit). Inside each
// column the symbols are permuted to reduce net crossings with the
// barycenter heuristic standing in for the exhaustive permutation the
// paper calls impractical.
//
// The resulting style is rigid (§4.5: "they impose a lot of undesirable
// constraints") but yields perfectly columnar left-to-right diagrams on
// combinational networks, which is what the comparison bench contrasts
// with the paper's own placer.
func LogicColumns(d *netlist.Design, spacing int) (*Result, error) {
	res := &Result{
		Design: d,
		Mods:   map[*netlist.Module]*PlacedModule{},
		SysPos: map[*netlist.Terminal]geom.Point{},
	}
	if spacing < 1 {
		spacing = 2
	}
	if len(d.Modules) == 0 {
		placeTerminals(res)
		res.Bounds = fullBounds(res)
		return res, nil
	}

	cols := levelize(d)
	// Crossing reduction: a few barycenter sweeps, left to right and
	// back.
	order := map[*netlist.Module]int{}
	for _, col := range cols {
		for i, m := range col {
			order[m] = i
		}
	}
	for sweep := 0; sweep < 4; sweep++ {
		forward := sweep%2 == 0
		for ci := range cols {
			c := ci
			if !forward {
				c = len(cols) - 1 - ci
			}
			barycenterSort(cols[c], order)
			for i, m := range cols[c] {
				order[m] = i
			}
		}
	}

	// Geometry: columns left to right; modules stacked bottom-up.
	x := 0
	for _, col := range cols {
		colW := 0
		y := 0
		for _, m := range col {
			res.Mods[m] = &PlacedModule{Mod: m, Pos: geom.Pt(x, y)}
			y += m.H + spacing
			colW = geom.Max(colW, m.W)
		}
		x += colW + 2*spacing
	}

	res.ModuleBounds = moduleBounds(res)
	placeTerminals(res)
	res.Bounds = fullBounds(res)
	return res, nil
}

// levelize assigns each module to a column: column 0 holds modules with
// no in-edges from other modules; column k holds modules whose module
// predecessors all sit in columns < k. Cycles are broken by placing the
// remaining modules of a stuck iteration into the current column.
func levelize(d *netlist.Design) [][]*netlist.Module {
	preds := map[*netlist.Module]map[*netlist.Module]bool{}
	for _, m := range d.Modules {
		preds[m] = map[*netlist.Module]bool{}
	}
	for _, n := range d.Nets {
		for _, drv := range n.Terms {
			if drv.Module == nil || !drv.Type.CanDrive() {
				continue
			}
			for _, snk := range n.Terms {
				if snk.Module == nil || snk.Module == drv.Module || !snk.Type.CanSink() {
					continue
				}
				if drv.Type == netlist.InOut && snk.Type == netlist.InOut {
					continue // undirected: no ordering information
				}
				preds[snk.Module][drv.Module] = true
			}
		}
	}
	assigned := map[*netlist.Module]bool{}
	var cols [][]*netlist.Module
	remaining := len(d.Modules)
	for remaining > 0 {
		var col []*netlist.Module
		for _, m := range d.Modules {
			if assigned[m] {
				continue
			}
			ready := true
			for p := range preds[m] {
				if !assigned[p] {
					ready = false
					break
				}
			}
			if ready {
				col = append(col, m)
			}
		}
		if len(col) == 0 {
			// Cycle: break it by admitting the module with the fewest
			// unresolved predecessors (the paper's sources "often
			// exclude" such back edges, §4.3).
			var best *netlist.Module
			bestOpen := 1 << 30
			for _, m := range d.Modules {
				if assigned[m] {
					continue
				}
				open := 0
				for p := range preds[m] {
					if !assigned[p] {
						open++
					}
				}
				if open < bestOpen {
					best, bestOpen = m, open
				}
			}
			col = append(col, best)
		}
		for _, m := range col {
			assigned[m] = true
		}
		remaining -= len(col)
		cols = append(cols, col)
	}
	return cols
}

// barycenterSort orders a column by the mean position of each module's
// connected neighbours in the other columns.
func barycenterSort(col []*netlist.Module, order map[*netlist.Module]int) {
	weight := func(m *netlist.Module) float64 {
		sum, n := 0.0, 0
		for _, t := range m.Terms {
			if t.Net == nil {
				continue
			}
			for _, u := range t.Net.Terms {
				if u.Module == nil || u.Module == m {
					continue
				}
				if pos, ok := order[u.Module]; ok {
					sum += float64(pos)
					n++
				}
			}
		}
		if n == 0 {
			return float64(order[m])
		}
		return sum / float64(n)
	}
	ws := map[*netlist.Module]float64{}
	for _, m := range col {
		ws[m] = weight(m)
	}
	sort.SliceStable(col, func(i, j int) bool { return ws[col[i]] < ws[col[j]] })
}

// ColumnCrossings counts, for adjacent column pairs of a columnar
// placement, the pairwise net crossings (the objective of §4.3's
// permutation step). It works on any Result by bucketing modules into
// x-bands.
func ColumnCrossings(res *Result) int {
	type edge struct{ a, b int } // y-order indices in adjacent bands
	// Band modules by x center.
	xs := map[int][]*netlist.Module{}
	var keys []int
	for _, m := range res.Design.Modules {
		pm, ok := res.Mods[m]
		if !ok {
			continue
		}
		x := pm.Rect().Center().X
		if _, seen := xs[x]; !seen {
			keys = append(keys, x)
		}
		xs[x] = append(xs[x], m)
	}
	sort.Ints(keys)
	crossings := 0
	for ki := 0; ki+1 < len(keys); ki++ {
		left, right := xs[keys[ki]], xs[keys[ki+1]]
		idx := map[*netlist.Module]int{}
		sort.SliceStable(left, func(i, j int) bool {
			return res.Mods[left[i]].Pos.Y < res.Mods[left[j]].Pos.Y
		})
		sort.SliceStable(right, func(i, j int) bool {
			return res.Mods[right[i]].Pos.Y < res.Mods[right[j]].Pos.Y
		})
		for i, m := range left {
			idx[m] = i
		}
		for i, m := range right {
			idx[m] = i
		}
		var edges []edge
		for _, n := range res.Design.Nets {
			var ls, rs []int
			for _, t := range n.Terms {
				if t.Module == nil {
					continue
				}
				if contains(left, t.Module) {
					ls = append(ls, idx[t.Module])
				}
				if contains(right, t.Module) {
					rs = append(rs, idx[t.Module])
				}
			}
			for _, a := range ls {
				for _, b := range rs {
					edges = append(edges, edge{a, b})
				}
			}
		}
		for i := 0; i < len(edges); i++ {
			for j := i + 1; j < len(edges); j++ {
				if (edges[i].a-edges[j].a)*(edges[i].b-edges[j].b) < 0 {
					crossings++
				}
			}
		}
	}
	return crossings
}

func contains(mods []*netlist.Module, m *netlist.Module) bool {
	for _, x := range mods {
		if x == m {
			return true
		}
	}
	return false
}
