package place

import (
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/workload"
)

func checkBaselineResult(t *testing.T, res *Result) {
	t.Helper()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEpitaxialPlacesAll(t *testing.T) {
	for _, mk := range []func() *netlist.Design{workload.Fig61, workload.Datapath16} {
		d := mk()
		res, err := Epitaxial(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		checkBaselineResult(t, res)
		if len(res.Mods) != len(d.Modules) {
			t.Errorf("placed %d of %d modules", len(res.Mods), len(d.Modules))
		}
	}
}

func TestEpitaxialSeedIsMostConnected(t *testing.T) {
	d := workload.Datapath16()
	res, err := Epitaxial(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The controller (highest degree) seeds the growth at the origin.
	if got := res.Mods[d.Module("ctrl")].Pos; got != geom.Pt(0, 0) {
		t.Errorf("seed position %v, want origin", got)
	}
}

func TestEpitaxialKeepsConnectedClose(t *testing.T) {
	d := workload.Datapath16()
	res, err := Epitaxial(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	var connSum, connN, disSum, disN int
	for i, a := range d.Modules {
		for _, b := range d.Modules[i+1:] {
			dist := res.Mods[a].Rect().Center().Manhattan(res.Mods[b].Rect().Center())
			if netlist.Connected(a, b) {
				connSum += dist
				connN++
			} else {
				disSum += dist
				disN++
			}
		}
	}
	if connSum*disN >= disSum*connN {
		t.Errorf("epitaxial growth did not keep connected modules close: %d/%d vs %d/%d",
			connSum, connN, disSum, disN)
	}
}

func TestEpitaxialEmpty(t *testing.T) {
	res, err := Epitaxial(netlist.NewDesign("e"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mods) != 0 {
		t.Error("placed modules in an empty design")
	}
}

func TestMinCutPlacesAll(t *testing.T) {
	for _, mk := range []func() *netlist.Design{workload.Fig61, workload.Datapath16, workload.Life27} {
		d := mk()
		res, err := MinCut(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		checkBaselineResult(t, res)
		if len(res.Mods) != len(d.Modules) {
			t.Errorf("placed %d of %d modules", len(res.Mods), len(d.Modules))
		}
	}
}

func TestMinCutBipartitionBalanced(t *testing.T) {
	d := workload.Datapath16()
	a, b := bipartition(d, d.Modules)
	if len(a)+len(b) != len(d.Modules) {
		t.Fatalf("partition lost modules: %d + %d", len(a), len(b))
	}
	if geom.Abs(len(a)-len(b)) > 3 {
		t.Errorf("unbalanced split: %d vs %d", len(a), len(b))
	}
	// A lane (mux0,rega0,alu0,...) is densely connected; the split
	// should not scatter every lane across the cut. Count cut nets vs
	// a naive alternating split for a sanity lower bar.
	inA := map[*netlist.Module]bool{}
	for _, m := range a {
		inA[m] = true
	}
	cutNow := 0
	for _, n := range d.Nets {
		hasA, hasB := false, false
		for _, tm := range n.Terms {
			if tm.Module == nil {
				continue
			}
			if inA[tm.Module] {
				hasA = true
			} else {
				hasB = true
			}
		}
		if hasA && hasB {
			cutNow++
		}
	}
	if cutNow > len(d.Nets)*3/4 {
		t.Errorf("min-cut split cuts %d of %d nets", cutNow, len(d.Nets))
	}
}

func TestCutCount(t *testing.T) {
	d := workload.Fig61()
	res, err := Place(d, Options{PartSize: 6, BoxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	// A string placement cut in the middle severs the chain nets: the
	// count must be positive but small.
	mid := res.ModuleBounds.Center().X
	c := CutCount(res, mid)
	if c < 1 || c > 3 {
		t.Errorf("mid cut count = %d, want 1..3 for a chain", c)
	}
}

func TestLogicColumnsLevelization(t *testing.T) {
	d := workload.Fig61()
	cols := levelize(d)
	// The chain must levelize into 6 columns of one module each.
	if len(cols) != 6 {
		t.Fatalf("%d columns, want 6", len(cols))
	}
	for i, col := range cols {
		if len(col) != 1 {
			t.Fatalf("column %d has %d modules", i, len(col))
		}
		want := "m" + string(rune('0'+i))
		if col[0].Name != want {
			t.Errorf("column %d holds %s, want %s", i, col[0].Name, want)
		}
	}
}

func TestLogicColumnsPlacesAll(t *testing.T) {
	d := workload.Datapath16()
	res, err := LogicColumns(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBaselineResult(t, res)
	if len(res.Mods) != 16 {
		t.Errorf("placed %d of 16", len(res.Mods))
	}
	// Signal flow: drivers never right of their sinks' column band.
	for _, n := range d.Nets {
		for _, drv := range n.Terms {
			if drv.Module == nil || drv.Type != netlist.Out {
				continue
			}
			for _, snk := range n.Terms {
				if snk.Module == nil || snk.Type != netlist.In || snk.Module == drv.Module {
					continue
				}
				dx := res.Mods[drv.Module].Pos.X
				sx := res.Mods[snk.Module].Pos.X
				if dx > sx {
					// Allowed only for feedback (cycle) edges; the
					// datapath has one (stat): tolerate a few.
					t.Logf("right-to-left edge %s -> %s", drv.Module.Name, snk.Module.Name)
				}
			}
		}
	}
}

func TestLogicColumnsCycleBroken(t *testing.T) {
	// A two-module cycle must still levelize and place.
	d := netlist.NewDesign("cycle")
	for _, nm := range []string{"a", "b"} {
		if _, err := d.AddModule(nm, "", 3, 3, []netlist.TermSpec{
			{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
			{Name: "Y", Type: netlist.Out, Pos: geom.Pt(3, 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range [][3]string{{"n1", "a", "Y"}, {"n1", "b", "A"}, {"n2", "b", "Y"}, {"n2", "a", "A"}} {
		if err := d.Connect(c[0], c[1], c[2]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := LogicColumns(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBaselineResult(t, res)
}

func TestColumnCrossingsZeroForParallel(t *testing.T) {
	// Two parallel chains placed in columns have zero crossings.
	d := netlist.NewDesign("par")
	mk := func(nm string) {
		if _, err := d.AddModule(nm, "", 3, 3, []netlist.TermSpec{
			{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
			{Name: "Y", Type: netlist.Out, Pos: geom.Pt(3, 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, nm := range []string{"a1", "a2", "b1", "b2"} {
		mk(nm)
	}
	conn := func(net, m1, m2 string) {
		if err := d.Connect(net, m1, "Y"); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(net, m2, "A"); err != nil {
			t.Fatal(err)
		}
	}
	conn("na", "a1", "a2")
	conn("nb", "b1", "b2")
	res, err := LogicColumns(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ColumnCrossings(res); got != 0 {
		t.Errorf("parallel chains have %d crossings, want 0", got)
	}
}

func TestBarycenterReducesCrossings(t *testing.T) {
	// A crossed pair: chains a1->b2 and b1->a2 where the natural order
	// crosses; barycenter sweeps should settle to zero crossings.
	d := netlist.NewDesign("crossed")
	mk := func(nm string) {
		if _, err := d.AddModule(nm, "", 3, 3, []netlist.TermSpec{
			{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
			{Name: "Y", Type: netlist.Out, Pos: geom.Pt(3, 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, nm := range []string{"a1", "b1", "a2", "b2"} {
		mk(nm)
	}
	conn := func(net, m1, m2 string) {
		if err := d.Connect(net, m1, "Y"); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(net, m2, "A"); err != nil {
			t.Fatal(err)
		}
	}
	conn("nx", "a1", "b2")
	conn("ny", "b1", "a2")
	res, err := LogicColumns(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ColumnCrossings(res); got != 0 {
		t.Errorf("barycenter left %d crossings", got)
	}
}
