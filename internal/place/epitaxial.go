package place

import (
	"math"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// Epitaxial implements the epitaxial growth placement of §4.2.2 as a
// baseline: starting from a seed (the most heavily connected module),
// the algorithm repeatedly takes the unplaced module with the maximum
// number of connections to the placed structure and moves it to the
// best available position, judged by the total wire length of its
// connections — "usually by trying all available positions and
// comparing the required length of all connections".
//
// Modules keep their library orientation; the paper's own placer (the
// Place function) is the one that rotates for signal flow. System
// terminals are placed on the perimeter exactly as in the main placer.
func Epitaxial(d *netlist.Design, spacing int) (*Result, error) {
	res := &Result{
		Design: d,
		Mods:   map[*netlist.Module]*PlacedModule{},
		SysPos: map[*netlist.Terminal]geom.Point{},
	}
	if len(d.Modules) == 0 {
		placeTerminals(res)
		res.Bounds = fullBounds(res)
		return res, nil
	}
	if spacing < 1 {
		spacing = 1
	}

	placedSet := map[*netlist.Module]bool{}
	var placedRects []geom.Rect

	// Seed: the module with the most distinct nets to other modules.
	all := d.ModuleSet()
	seed := d.Modules[0]
	best := -1
	for _, m := range d.Modules {
		if n := netlist.NetsBetween(m, all); n > best {
			seed, best = m, n
		}
	}
	place := func(m *netlist.Module, pos geom.Point) {
		pm := &PlacedModule{Mod: m, Pos: pos}
		res.Mods[m] = pm
		placedSet[m] = true
		// Record the rect inflated by the module's own white space so
		// facing sides accumulate both modules' routing room.
		r := pm.Rect()
		r.Min = r.Min.Sub(geom.Pt(spacing0(m, geom.Left, spacing), spacing0(m, geom.Down, spacing)))
		r.Max = r.Max.Add(geom.Pt(spacing0(m, geom.Right, spacing), spacing0(m, geom.Up, spacing)))
		placedRects = append(placedRects, r)
	}
	place(seed, geom.Pt(0, 0))

	for len(placedSet) < len(d.Modules) {
		// Next: unplaced module with max connections to the placed
		// structure (ties: design order).
		var next *netlist.Module
		bestConn := -1
		for _, m := range d.Modules {
			if placedSet[m] {
				continue
			}
			if c := netlist.NetsBetween(m, placedSet); c > bestConn {
				next, bestConn = m, c
			}
		}
		// Gravity of the placed terminals this module connects to.
		var sx, sy, n int
		for _, t := range next.Terms {
			if t.Net == nil {
				continue
			}
			for _, u := range t.Net.Terms {
				if u.Module == nil || !placedSet[u.Module] {
					continue
				}
				p := res.Mods[u.Module].TermPos(u)
				sx += p.X
				sy += p.Y
				n++
			}
		}
		target := boundsOf(placedRects).Center()
		if n > 0 {
			target = geom.Pt(sx/n, sy/n)
		}
		// Try all available positions around the target, comparing the
		// required length of all connections; the ring search
		// enumerates positions by distance so the scan is exhaustive
		// over the relevant neighbourhood.
		pos := bestWireLengthOrigin(res, next, target, placedRects, spacing)
		place(next, pos)
	}

	res.ModuleBounds = moduleBounds(res)
	placeTerminals(res)
	res.Bounds = fullBounds(res)
	return res, nil
}

// bestWireLengthOrigin scans candidate origins ring by ring around the
// target and returns the free position minimizing the total Manhattan
// wire length of the module's connections to already placed terminals.
// Scanning stops once a full ring beyond the current best cannot
// improve (wire length grows at least linearly with the ring radius).
func bestWireLengthOrigin(res *Result, m *netlist.Module, target geom.Point,
	placed []geom.Rect, spacingSlack int) geom.Point {

	// Per-side white space proportional to the connected terminal
	// count, as in the paper's own module placement: without it the
	// greedy packing walls terminals in and the routing baseline
	// degenerates.
	halo := [4]int{}
	for di, dir := range geom.Dirs {
		halo[di] = spacing0(m, dir, spacingSlack)
	}
	free := func(p geom.Point) bool {
		r := geom.Rect{
			Min: p.Sub(geom.Pt(halo[geom.Left], halo[geom.Down])),
			Max: p.Add(geom.Pt(m.W+halo[geom.Right], m.H+halo[geom.Up])),
		}
		for _, q := range placed {
			if r.Overlaps(q) {
				return false
			}
		}
		return true
	}
	// Collect the placed endpoints per net once.
	var anchors []geom.Point
	var termOff []geom.Point // offsets of m's terminals on those nets
	for _, t := range m.Terms {
		if t.Net == nil {
			continue
		}
		for _, u := range t.Net.Terms {
			if u.Module == nil || u.Module == m {
				continue
			}
			pm, ok := res.Mods[u.Module]
			if !ok {
				continue
			}
			anchors = append(anchors, pm.TermPos(u))
			termOff = append(termOff, t.Pos)
		}
	}
	cost := func(p geom.Point) int {
		c := 0
		for i, a := range anchors {
			c += p.Add(termOff[i]).Manhattan(a)
		}
		return c
	}

	ext := boundsOf(placed)
	limit := ext.Dx() + ext.Dy() + m.W + m.H + 2*spacingSlack + 12
	bestPos := geom.Point{}
	bestCost := math.MaxInt
	found := false
	for r := 0; r <= limit; r++ {
		if found && len(anchors) == 0 {
			break // no connections: the nearest free spot is as good as any
		}
		for _, p := range chebyshevRing(target, r) {
			if !free(p) {
				continue
			}
			if c := cost(p); c < bestCost {
				bestPos, bestCost, found = p, c, true
			}
		}
	}
	if !found {
		return geom.Pt(ext.Max.X+halo[geom.Left]+1, target.Y)
	}
	return bestPos
}

// spacing0 is the unrotated per-side white space: connected nets on
// that side plus the slack (without the paper placer's +1, since both
// neighbours contribute here).
func spacing0(m *netlist.Module, side geom.Dir, slack int) int {
	return spacing(m, geom.R0, side, 0) + (slack - 1)
}
