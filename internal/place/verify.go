package place

import (
	"fmt"

	"netart/internal/boxes"
	"netart/internal/geom"
	"netart/internal/netlist"
)

// This file extends the §4.4 placement postcondition (Result.Verify)
// with the box-level properties of §4.6.4 and Appendix E. Where Verify
// checks the global contract — everything placed, nothing overlapping —
// VerifyBoxes re-derives the per-string invariants the module placer is
// supposed to establish and checks them against the finished Result:
//
//   - white space: each side of a module gets f = #distinct-nets-on-
//     that-side + 1 + slack empty tracks (Appendix E), and the box
//     rectangle is exactly the modules plus their white space — the
//     left/right gaps are equalities, not just minima;
//   - orientation: every non-head module is rotated so the terminal
//     connecting it to its predecessor faces left, and the head's
//     string terminal faces right, giving the left-to-right signal
//     flow of §4.6.4;
//   - the minimum-bend lemma: the net connecting two consecutive
//     string modules can be realized with at most two bends without
//     crossing any module outline in the box.
//
// The property battery (properties_test.go) runs this on random
// designs at every battery worker count, so the parallel engine is
// held to the paper's invariants, not merely to sequential equality.

// VerifyBoxes checks the §4.6.4 module-placement invariants of every
// placed box against the options the placement ran with. It returns
// nil for results without structural info (baseline placers).
func (r *Result) VerifyBoxes(opts Options) error {
	slack := opts.ModSpacing
	for pi, pp := range r.Parts {
		for bi, pb := range pp.Boxes {
			if err := r.verifyBox(pi, bi, pb, slack); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Result) verifyBox(pi, bi int, pb *PlacedBox, slack int) error {
	b := pb.Box
	if b.Len() == 0 {
		return fmt.Errorf("place: partition %d box %d is empty", pi, bi)
	}
	pms := make([]*PlacedModule, b.Len())
	for i, m := range b.Modules {
		pm, ok := r.Mods[m]
		if !ok {
			return fmt.Errorf("place: partition %d box %d: module %q not placed", pi, bi, m.Name)
		}
		if !pb.Rect.Contains(pm.Pos) {
			return fmt.Errorf("place: module %q at %v outside its box %v", m.Name, pm.Pos, pb.Rect)
		}
		pms[i] = pm
	}

	ctx := func(m *netlist.Module) string {
		return fmt.Sprintf("place: partition %d box %d module %q", pi, bi, m.Name)
	}

	// Horizontal white space: exact equalities against spacing().
	head := pms[0]
	if got, want := head.Pos.X-pb.Rect.Min.X, spacing(head.Mod, head.Orient, geom.Left, slack); got != want {
		return fmt.Errorf("%s: left white space %d, Appendix E wants %d", ctx(head.Mod), got, want)
	}
	last := pms[len(pms)-1]
	lw, _ := last.Size()
	if got, want := pb.Rect.Max.X-(last.Pos.X+lw), spacing(last.Mod, last.Orient, geom.Right, slack); got != want {
		return fmt.Errorf("%s: right white space %d, Appendix E wants %d", ctx(last.Mod), got, want)
	}
	for i := 1; i < len(pms); i++ {
		prev, cur := pms[i-1], pms[i]
		pw, _ := prev.Size()
		gap := cur.Pos.X - (prev.Pos.X + pw)
		want := spacing(prev.Mod, prev.Orient, geom.Right, slack) +
			spacing(cur.Mod, cur.Orient, geom.Left, slack)
		if gap != want {
			return fmt.Errorf("%s: gap to %q is %d tracks, white space rule wants %d",
				ctx(prev.Mod), cur.Mod.Name, gap, want)
		}
	}

	// Vertical white space: every module keeps its top/bottom tracks
	// free inside the box, and the box is exactly as tall as the
	// extreme module-plus-white-space — no slab of unexplained space.
	minDown, maxUp := 0, 0
	for i, pm := range pms {
		_, h := pm.Size()
		down := pm.Pos.Y - spacing(pm.Mod, pm.Orient, geom.Down, slack)
		up := pm.Pos.Y + h + spacing(pm.Mod, pm.Orient, geom.Up, slack)
		if down < pb.Rect.Min.Y {
			return fmt.Errorf("%s: bottom white space crosses the box floor (%d < %d)",
				ctx(pm.Mod), down, pb.Rect.Min.Y)
		}
		if up > pb.Rect.Max.Y {
			return fmt.Errorf("%s: top white space crosses the box ceiling (%d > %d)",
				ctx(pm.Mod), up, pb.Rect.Max.Y)
		}
		if i == 0 {
			minDown, maxUp = down, up
		} else {
			minDown, maxUp = geom.Min(minDown, down), geom.Max(maxUp, up)
		}
	}
	if minDown != pb.Rect.Min.Y {
		return fmt.Errorf("place: partition %d box %d: floor at %d but tightest module white space ends at %d",
			pi, bi, pb.Rect.Min.Y, minDown)
	}
	if maxUp != pb.Rect.Max.Y {
		return fmt.Errorf("place: partition %d box %d: ceiling at %d but tallest module white space ends at %d",
			pi, bi, pb.Rect.Max.Y, maxUp)
	}

	// Orientation and the minimum-bend lemma along the string.
	if len(pms) > 1 {
		tHead, _, ok := boxes.StringNet(b.Modules[0], b.Modules[1])
		if !ok {
			return fmt.Errorf("place: partition %d box %d: string broken between %q and %q",
				pi, bi, b.Modules[0].Name, b.Modules[1].Name)
		}
		if side := head.TermSide(tHead); side != geom.Right {
			return fmt.Errorf("%s: string terminal %q faces %v, want right", ctx(head.Mod), tHead.Name, side)
		}
	}
	for i := 1; i < len(pms); i++ {
		prev, cur := pms[i-1], pms[i]
		tPrev, tCur, ok := boxes.StringNet(prev.Mod, cur.Mod)
		if !ok {
			return fmt.Errorf("place: partition %d box %d: string broken between %q and %q",
				pi, bi, prev.Mod.Name, cur.Mod.Name)
		}
		if side := cur.TermSide(tCur); side != geom.Left {
			return fmt.Errorf("%s: input terminal %q faces %v, want left", ctx(cur.Mod), tCur.Name, side)
		}
		bends := minBends(prev, tPrev, cur, tCur, pms, pb.Rect)
		if bends > 2 {
			return fmt.Errorf("%s: net %q to %q needs %d bends, §4.6.4 guarantees at most 2",
				ctx(prev.Mod), tPrev.Net.Name, cur.Mod.Name, bends)
		}
	}
	return nil
}

// bendState is one (position, heading) node of the min-bend search.
type bendState struct {
	pos geom.Point
	dir geom.Dir
}

// minBends runs an obstacle-aware minimum-bend search (0-1 BFS over
// position×heading states) for the wire connecting tPrev on prev to
// tCur on cur: it leaves tPrev in the direction of the terminal's side,
// must arrive at tCur heading right (into the left-facing terminal),
// may not touch any module outline in the box except at the two
// terminals, and must stay within the box (inflated by one track of
// grace). It returns the minimum number of bends, or a large count
// when no path exists.
func minBends(prev *PlacedModule, tPrev *netlist.Terminal,
	cur *PlacedModule, tCur *netlist.Terminal,
	mods []*PlacedModule, box geom.Rect) int {
	const unreachable = 1 << 20
	start := bendState{prev.TermPos(tPrev), prev.TermSide(tPrev)}
	goal := bendState{cur.TermPos(tCur), geom.Right}
	bound := box.Inset(-1)

	// Module outlines block the wire: rects are inclusive of their Max
	// edge here, because terminals live on the outline itself.
	blocked := func(p geom.Point) bool {
		if p == start.pos || p == goal.pos {
			return false
		}
		for _, pm := range mods {
			r := pm.Rect()
			if p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y {
				return true
			}
		}
		return false
	}
	inBound := func(p geom.Point) bool {
		return p.X >= bound.Min.X && p.X <= bound.Max.X &&
			p.Y >= bound.Min.Y && p.Y <= bound.Max.Y
	}

	// 0-1 BFS: moving straight costs 0 bends, turning costs 1.
	cost := map[bendState]int{start: 0}
	deque := []bendState{start}
	for len(deque) > 0 {
		s := deque[0]
		deque = deque[1:]
		c := cost[s]
		if s == goal {
			return c
		}
		// Straight step (cost 0) goes to the front of the deque.
		if np := s.pos.Add(s.dir.Delta()); inBound(np) && !blocked(np) {
			ns := bendState{np, s.dir}
			if old, seen := cost[ns]; !seen || c < old {
				cost[ns] = c
				deque = append([]bendState{ns}, deque...)
			}
		}
		// Turns (cost 1) go to the back.
		for _, nd := range geom.Dirs {
			if nd == s.dir || nd == s.dir.Opposite() {
				continue
			}
			ns := bendState{s.pos, nd}
			if old, seen := cost[ns]; !seen || c+1 < old {
				cost[ns] = c + 1
				deque = append(deque, ns)
			}
		}
	}
	return unreachable
}
