package place

import (
	"fmt"
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/workload"
)

// The property battery: instead of comparing against pinned output,
// these tests re-derive the §4.6.4 invariants (white-space rule,
// input-terminal orientation, minimum-bend lemma) via VerifyBoxes on
// every named workload, a sweep of seeded random designs, and every
// determinism-battery worker count. A placement can only pass by
// actually satisfying the paper's construction, so the battery catches
// classes of bugs byte-comparison cannot (e.g. a sequential and
// parallel path that are identically wrong).

// placeVerified places the design and runs both verifiers.
func placeVerified(t *testing.T, d *netlist.Design, opts Options) *Result {
	t.Helper()
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyBoxes(opts); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBoxPropertiesWorkloads(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		opts  Options
	}{
		{"fig61", workload.Fig61, Options{PartSize: 6, BoxSize: 6}},
		{"quickstart", workload.Quickstart, Options{PartSize: 4, BoxSize: 4}},
		{"datapath", workload.Datapath16, Options{PartSize: 7, BoxSize: 5}},
		{"datapath-slack", workload.Datapath16, Options{PartSize: 7, BoxSize: 5, ModSpacing: 2}},
		{"cpu", workload.CPU, Options{PartSize: 7, BoxSize: 5, ModSpacing: 1, BoxSpacing: 1}},
		{"life", workload.Life27, Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "life" && testing.Short() {
				t.Skip("life battery skipped in -short mode")
			}
			placeVerified(t, tc.build(), tc.opts)
		})
	}
}

// TestBoxPropertiesSeeded checks the invariants on random designs at
// every battery worker count: the parallel engine must satisfy the
// paper's construction, not merely match the sequential bytes. BoxSize
// must be at least 2 so multi-module strings actually form.
func TestBoxPropertiesSeeded(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			for _, w := range placeBatteryWorkers {
				opts := Options{PartSize: 4, BoxSize: 3, ModSpacing: int(seed % 3), Workers: w}
				res := placeVerified(t, workload.Random(12, seed), opts)
				// Strings must actually exercise the multi-module
				// invariants somewhere in the sweep: a corpus of
				// singleton boxes would vacuously pass.
				if seed == 0 && boxCount(res) == len(res.Design.Modules) {
					t.Log("all boxes are singletons for this seed")
				}
			}
		})
	}
}

func boxCount(r *Result) int {
	n := 0
	for _, pp := range r.Parts {
		n += len(pp.Boxes)
	}
	return n
}

// TestVerifyBoxesCatchesCorruption proves the verifier has teeth: a
// placement nudged off the white-space rule, or de-rotated, must fail.
func TestVerifyBoxesCatchesCorruption(t *testing.T) {
	opts := Options{PartSize: 6, BoxSize: 6}
	res := placeVerified(t, workload.Fig61(), opts)

	// Find a box with at least two modules and shift a non-head module
	// one track right: the inter-module gap equality must break.
	var victim *PlacedModule
	for _, pp := range res.Parts {
		for _, pb := range pp.Boxes {
			if len(pb.Box.Modules) > 1 {
				victim = res.Mods[pb.Box.Modules[1]]
			}
		}
	}
	if victim == nil {
		t.Fatal("fig61 produced no multi-module box")
	}
	victim.Pos = victim.Pos.Add(geom.Pt(1, 0))
	if err := res.VerifyBoxes(opts); err == nil {
		t.Error("VerifyBoxes accepted a placement with a corrupted module gap")
	}
	victim.Pos = victim.Pos.Sub(geom.Pt(1, 0))
	if err := res.VerifyBoxes(opts); err != nil {
		t.Fatalf("restored placement still fails: %v", err)
	}

	// De-rotate the module: its input terminal no longer faces left.
	old := victim.Orient
	for o := geom.R0; o < 4; o++ {
		if o != old {
			victim.Orient = o
			break
		}
	}
	if err := res.VerifyBoxes(opts); err == nil {
		t.Error("VerifyBoxes accepted a de-rotated module")
	}
	victim.Orient = old
	if err := res.VerifyBoxes(opts); err != nil {
		t.Fatalf("restored orientation still fails: %v", err)
	}
}
