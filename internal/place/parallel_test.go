package place

import (
	"fmt"
	"strings"
	"testing"

	"netart/internal/netlist"
	"netart/internal/workload"
)

// This file is the placement half of the determinism battery, the twin
// of internal/route/parallel_test.go: every field of the placement
// Result except the Parallel diagnostics must be byte-identical for
// every worker count, on the named workloads and across a sweep of
// seeded random designs. ci.sh runs this battery under -race, so a
// scheduler data race fails the build even when the output happens to
// match.

// placeBatteryWorkers is the worker sweep the battery compares against
// the sequential (Workers=0) baseline.
var placeBatteryWorkers = []int{1, 2, 4, 8}

// fingerprint serializes every Result field that must not vary with
// the worker count: module positions and orientations in design order,
// system-terminal positions, partition and box rectangles, and the two
// bounding boxes. Result.Parallel is deliberately excluded — it is the
// scheduler's own diagnostics and documented to vary.
func fingerprint(r *Result) string {
	var b strings.Builder
	for _, m := range r.Design.Modules {
		pm := r.Mods[m]
		if pm == nil {
			fmt.Fprintf(&b, "mod %s unplaced\n", m.Name)
			continue
		}
		fmt.Fprintf(&b, "mod %s pos=%v orient=%v\n", m.Name, pm.Pos, pm.Orient)
	}
	for _, t := range r.Design.SysTerms {
		fmt.Fprintf(&b, "sys %s pos=%v\n", t.Name, r.SysPos[t])
	}
	for i, pp := range r.Parts {
		fmt.Fprintf(&b, "part %d rect=%v mods=%d\n", i, pp.Rect, len(pp.Part.Modules))
		for j, pb := range pp.Boxes {
			fmt.Fprintf(&b, "part %d box %d rect=%v size=%d\n", i, j, pb.Rect, len(pb.Box.Modules))
		}
	}
	fmt.Fprintf(&b, "modbounds=%v bounds=%v\n", r.ModuleBounds, r.Bounds)
	return b.String()
}

func TestParallelPlacementDeterministicWorkloads(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		opts  Options
	}{
		{"fig61", workload.Fig61, Options{PartSize: 6, BoxSize: 6}},
		{"quickstart", workload.Quickstart, Options{PartSize: 4, BoxSize: 4}},
		{"datapath", workload.Datapath16, Options{PartSize: 7, BoxSize: 5}},
		{"cpu", workload.CPU, Options{PartSize: 7, BoxSize: 5, ModSpacing: 1, BoxSpacing: 1}},
		{"life", workload.Life27, Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "life" && testing.Short() {
				t.Skip("life battery skipped in -short mode")
			}
			seqRes, err := Place(tc.build(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if seqRes.Parallel != nil {
				t.Error("sequential placement reported parallel stats")
			}
			seq := fingerprint(seqRes)
			for _, w := range placeBatteryWorkers {
				po := tc.opts
				po.Workers = w
				parRes, err := Place(tc.build(), po)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := fingerprint(parRes); got != seq {
					t.Errorf("workers=%d: placement diverges from sequential\n%s",
						w, firstDiffLine(seq, got))
				}
				if w > 1 {
					checkSpecStats(t, parRes, w)
				} else if parRes.Parallel != nil {
					t.Errorf("workers=%d: expected sequential path, got parallel stats", w)
				}
			}
		})
	}
}

// TestParallelPlacementDeterministicSeeded sweeps seeded random designs
// across the battery worker counts.
func TestParallelPlacementDeterministicSeeded(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 5
	}
	opts := Options{PartSize: 4, BoxSize: 2}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			seqRes, err := Place(workload.Random(12, seed), opts)
			if err != nil {
				t.Fatal(err)
			}
			seq := fingerprint(seqRes)
			for _, w := range placeBatteryWorkers {
				po := opts
				po.Workers = w
				parRes, err := Place(workload.Random(12, seed), po)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := fingerprint(parRes); got != seq {
					t.Errorf("workers=%d: placement diverges from sequential\n%s",
						w, firstDiffLine(seq, got))
				}
			}
		})
	}
}

// checkSpecStats sanity-checks the scheduler diagnostics of a parallel
// run: every partition examined must have committed (tasks are
// conflict-free), per-worker task counts must add up, and the clamped
// worker count must be positive.
func checkSpecStats(t *testing.T, r *Result, requested int) {
	t.Helper()
	ss := r.Parallel
	if ss == nil {
		if len(r.Parts) <= 1 {
			return // clamped to the sequential path: nothing to report
		}
		t.Fatalf("workers=%d with %d partitions produced no parallel stats",
			requested, len(r.Parts))
	}
	if ss.Workers < 2 || ss.Workers > requested {
		t.Errorf("stats worker count %d outside (1, %d]", ss.Workers, requested)
	}
	if ss.Committed != ss.Partitions {
		t.Errorf("committed %d != partitions %d (tasks are conflict-free)",
			ss.Committed, ss.Partitions)
	}
	if ss.Partitions != len(r.Parts) {
		t.Errorf("stats partitions %d, result has %d", ss.Partitions, len(r.Parts))
	}
	var sum int
	for _, n := range ss.WorkerParts {
		sum += n
	}
	// Workers may compute tasks the committer never needed (claimed
	// past a failure), so the per-worker sum is >= the committed count.
	if sum < ss.Committed {
		t.Errorf("worker task counts sum to %d, committed %d", sum, ss.Committed)
	}
	if len(ss.WorkerBusy) != ss.Workers {
		t.Errorf("busy samples %d for %d workers", len(ss.WorkerBusy), ss.Workers)
	}
}

// firstDiffLine locates the first diverging fingerprint line.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first divergence at line %d:\n  seq: %s\n  par: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}
