// Package place implements the placement phase of the schematic diagram
// generator (Koster & Stok §4.6): module placement inside boxes, box
// placement inside partitions, partition placement, and system terminal
// placement. It also provides the surveyed baseline placers (epitaxial
// growth, min-cut bipartitioning, logic-schematic columns) used for the
// comparison benchmarks.
package place

import (
	"fmt"

	"netart/internal/boxes"
	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/partition"
	"netart/internal/resilience"
)

// Options mirrors the PABLO command line of Appendix E.
type Options struct {
	PartSize       int // -p: maximum modules per partition (default 1)
	BoxSize        int // -b: maximum string length (default 1)
	MaxConnections int // -c: external net budget per partition (default unlimited)
	PartSpacing    int // -e: extra tracks around each partition
	BoxSpacing     int // -i: extra tracks around each box
	ModSpacing     int // -s: extra tracks around each module
	// Fixed holds manually preplaced modules (-g). They form a
	// partition of their own, pinned at their given absolute positions;
	// the remaining modules are placed around them.
	Fixed map[*netlist.Module]Fixed
	// Inject, when non-nil, arms the resilience.SitePlaceBox fault
	// site: it is fired once per box before module placement, so chaos
	// tests can force deterministic placement failures. Nil costs one
	// pointer compare per box.
	Inject *resilience.Injector
	// Workers is the parallel placement worker count: box formation and
	// the per-partition work (module placement inside every box plus
	// the §4.6.5 center-of-gravity box placement) run on up to Workers
	// goroutines, with results committed strictly in canonical
	// partition order. 0 or 1 places sequentially. The parallel path is
	// byte-identical to the sequential one for every design and option
	// set (enforced by the determinism battery in parallel_test.go):
	// the knob is an execution hint, never a result parameter.
	Workers int
}

// Fixed pins one module at an absolute position and orientation.
type Fixed struct {
	Pos    geom.Point
	Orient geom.Orient
}

// PlacedModule is a module with its absolute lower-left position and
// orientation.
type PlacedModule struct {
	Mod    *netlist.Module
	Pos    geom.Point
	Orient geom.Orient
}

// Size returns the rotated module dimensions.
func (p *PlacedModule) Size() (w, h int) {
	return p.Orient.RotateSize(p.Mod.W, p.Mod.H)
}

// Rect returns the occupied rectangle.
func (p *PlacedModule) Rect() geom.Rect {
	w, h := p.Size()
	return geom.Rect{Min: p.Pos, Max: p.Pos.Add(geom.Pt(w, h))}
}

// TermPos returns the absolute position of one of the module's
// terminals.
func (p *PlacedModule) TermPos(t *netlist.Terminal) geom.Point {
	return p.Pos.Add(p.Orient.RotatePoint(t.Pos, p.Mod.W, p.Mod.H))
}

// TermSide returns the side of the placed (rotated) module the terminal
// sits on.
func (p *PlacedModule) TermSide(t *netlist.Terminal) geom.Dir {
	side, err := t.Side()
	if err != nil {
		return geom.Left // unreachable for validated designs
	}
	return p.Orient.RotateDir(side)
}

// PlacedBox is a placed string of modules with its bounding rectangle
// (absolute coordinates).
type PlacedBox struct {
	Box  *boxes.Box
	Rect geom.Rect
}

// PlacedPart is a placed partition.
type PlacedPart struct {
	Part  *partition.Part
	Boxes []*PlacedBox
	Rect  geom.Rect
}

// Result is the output of the placement phase: the input to routing.
type Result struct {
	Design *netlist.Design
	Mods   map[*netlist.Module]*PlacedModule
	SysPos map[*netlist.Terminal]geom.Point
	Parts  []*PlacedPart // structural info; nil for baseline placers

	// ModuleBounds encloses all module symbols; Bounds additionally
	// encloses the system terminals.
	ModuleBounds geom.Rect
	Bounds       geom.Rect

	// Parallel carries the parallel scheduler's diagnostics when the
	// placement ran with Options.Workers > 1; nil for sequential runs.
	// It is the only field that may differ between worker counts —
	// everything else is byte-identical.
	Parallel *SpecStats
}

// TermPos returns the absolute position of any terminal, subsystem or
// system.
func (r *Result) TermPos(t *netlist.Terminal) (geom.Point, error) {
	if t.Module == nil {
		p, ok := r.SysPos[t]
		if !ok {
			return geom.Point{}, fmt.Errorf("place: system terminal %q not placed", t.Name)
		}
		return p, nil
	}
	pm, ok := r.Mods[t.Module]
	if !ok {
		return geom.Point{}, fmt.Errorf("place: module %q not placed", t.Module.Name)
	}
	return pm.TermPos(t), nil
}

// TermSide returns the outward side of any placed terminal: the module
// side for subsystem terminals, or the side of the diagram border the
// system terminal sits on (pointing back toward the diagram).
func (r *Result) TermSide(t *netlist.Terminal) (geom.Dir, error) {
	if t.Module != nil {
		pm, ok := r.Mods[t.Module]
		if !ok {
			return 0, fmt.Errorf("place: module %q not placed", t.Module.Name)
		}
		return pm.TermSide(t), nil
	}
	p, ok := r.SysPos[t]
	if !ok {
		return 0, fmt.Errorf("place: system terminal %q not placed", t.Name)
	}
	b := r.ModuleBounds
	switch {
	case p.X < b.Min.X:
		return geom.Right, nil // sits left of the diagram, points right
	case p.X >= b.Max.X:
		return geom.Left, nil
	case p.Y < b.Min.Y:
		return geom.Up, nil
	default:
		return geom.Down, nil
	}
}

// Overlap reports the first pair of overlapping module rectangles, or
// ok=false when the placement is overlap free. Used by tests and by
// Verify.
func (r *Result) Overlap() (a, b *netlist.Module, ok bool) {
	mods := r.Design.Modules
	for i := 0; i < len(mods); i++ {
		pi, ok1 := r.Mods[mods[i]]
		if !ok1 {
			continue
		}
		for j := i + 1; j < len(mods); j++ {
			pj, ok2 := r.Mods[mods[j]]
			if !ok2 {
				continue
			}
			if pi.Rect().Overlaps(pj.Rect()) {
				return mods[i], mods[j], true
			}
		}
	}
	return nil, nil, false
}

// Verify checks the placement postcondition of §4.4: every module and
// system terminal placed, no overlaps, no terminal inside a module.
func (r *Result) Verify() error {
	for _, m := range r.Design.Modules {
		if _, ok := r.Mods[m]; !ok {
			return fmt.Errorf("place: module %q not placed", m.Name)
		}
	}
	for _, t := range r.Design.SysTerms {
		if _, ok := r.SysPos[t]; !ok {
			return fmt.Errorf("place: system terminal %q not placed", t.Name)
		}
	}
	if a, b, bad := r.Overlap(); bad {
		return fmt.Errorf("place: modules %q and %q overlap", a.Name, b.Name)
	}
	seen := map[geom.Point]*netlist.Terminal{}
	for _, t := range r.Design.SysTerms {
		p := r.SysPos[t]
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("place: system terminals %q and %q share %v", prev.Name, t.Name, p)
		}
		seen[p] = t
		for _, m := range r.Design.Modules {
			if r.Mods[m].Rect().Contains(p) {
				return fmt.Errorf("place: system terminal %q inside module %q", t.Name, m.Name)
			}
		}
	}
	return nil
}

// Place runs the full placement phase of the paper.
func Place(d *netlist.Design, opts Options) (*Result, error) {
	// Split modules into preplaced and free.
	var free []*netlist.Module
	for _, m := range d.Modules {
		if _, pinned := opts.Fixed[m]; !pinned {
			free = append(free, m)
		}
	}

	parts := partition.PartitionSubset(d, free, partition.Config{
		MaxSize:        opts.PartSize,
		MaxConnections: opts.MaxConnections,
	})
	bxs := boxes.Form(d, parts, boxes.Config{MaxBoxSize: opts.BoxSize, Workers: opts.Workers})

	// Module placement inside every box, then box placement inside
	// every partition, all in local coordinates. Partitions are
	// independent at this stage, so the work fans out over
	// Options.Workers goroutines with results committed in canonical
	// partition order (parallel.go); the sequential path is the
	// Workers<=1 special case of the same task function.
	placedParts, spec, err := placeParts(d, parts, bxs, opts)
	if err != nil {
		return nil, err
	}

	// Partition placement in absolute coordinates, then composition.
	res := &Result{
		Design:   d,
		Mods:     map[*netlist.Module]*PlacedModule{},
		SysPos:   map[*netlist.Terminal]geom.Point{},
		Parallel: spec,
	}
	pinned := pinnedPartition(d, opts)
	placePartitions(d, placedParts, pinned, opts)

	if pinned != nil {
		for _, pm := range pinned.mods {
			res.Mods[pm.Mod] = pm
		}
	}
	for _, pp := range placedParts {
		placed := &PlacedPart{Part: pp.part}
		for _, pb := range pp.boxes {
			boxRect := geom.Rect{
				Min: pp.origin.Add(pb.origin),
				Max: pp.origin.Add(pb.origin).Add(pb.size),
			}
			placed.Boxes = append(placed.Boxes, &PlacedBox{Box: pb.box, Rect: boxRect})
			for _, pm := range pb.mods {
				abs := &PlacedModule{
					Mod:    pm.Mod,
					Pos:    pp.origin.Add(pb.origin).Add(pm.Pos),
					Orient: pm.Orient,
				}
				res.Mods[abs.Mod] = abs
			}
		}
		placed.Rect = geom.Rect{Min: pp.origin, Max: pp.origin.Add(pp.size)}
		res.Parts = append(res.Parts, placed)
	}

	res.ModuleBounds = moduleBounds(res)
	placeTerminals(res)
	res.Bounds = fullBounds(res)
	return res, nil
}

// moduleBounds computes the rectangle enclosing all module symbols.
func moduleBounds(r *Result) geom.Rect {
	var b geom.Rect
	first := true
	for _, pm := range r.Mods {
		if first {
			b, first = pm.Rect(), false
		} else {
			b = b.Union(pm.Rect())
		}
	}
	return b
}

func fullBounds(r *Result) geom.Rect {
	b := r.ModuleBounds
	for _, p := range r.SysPos {
		b = b.Union(geom.Rect{Min: p, Max: p.Add(geom.Pt(1, 1))})
	}
	return b
}

// spacing returns the white space the paper adds on one side of a
// module: the number of distinct connected nets on that side plus one,
// plus the user slack (Appendix E, -s).
func spacing(m *netlist.Module, o geom.Orient, side geom.Dir, slack int) int {
	seen := map[*netlist.Net]bool{}
	count := 0
	for _, t := range m.Terms {
		if t.Net == nil || seen[t.Net] {
			continue
		}
		orig, err := t.Side()
		if err != nil {
			continue
		}
		if o.RotateDir(orig) == side {
			seen[t.Net] = true
			count++
		}
	}
	return count + 1 + slack
}

// placedPart and placedBox are working structures in local coordinates.
type placedPart struct {
	part   *partition.Part
	boxes  []*placedBox
	size   geom.Point
	origin geom.Point // absolute, set by partition placement
	mods   []*PlacedModule
	fixed  bool // pinned preplaced pseudo partition
}

type placedBox struct {
	box    *boxes.Box
	mods   []*PlacedModule // positions local to the box (lower-left 0,0)
	size   geom.Point
	origin geom.Point // local to the partition, set by box placement
}

// placeBoxModules implements MODULE_PLACEMENT and PLACE_MODULE
// (§4.6.4) for one string: each module is rotated so the terminal
// connecting to its predecessor faces left, shifted vertically so at
// most two bends arise in the connecting net, and surrounded by white
// space proportional to its connected terminal count per side.
func placeBoxModules(b *boxes.Box, opts Options) (*placedBox, error) {
	slack := opts.ModSpacing
	mods := make([]*PlacedModule, 0, b.Len())

	head := b.Head()
	headOrient := geom.R0
	if b.Len() > 1 {
		tPrev, _, ok := boxes.StringNet(head, b.Modules[1])
		if !ok {
			return nil, fmt.Errorf("place: box string broken between %q and %q",
				head.Name, b.Modules[1].Name)
		}
		side, err := tPrev.Side()
		if err != nil {
			return nil, err
		}
		headOrient = geom.OrientTaking(side, geom.Right)
	}

	// INIT_MODULE_PLACEMENT.
	hx := spacing(head, headOrient, geom.Left, slack)
	hy := spacing(head, headOrient, geom.Down, slack)
	hw, hh := headOrient.RotateSize(head.W, head.H)
	prev := &PlacedModule{Mod: head, Pos: geom.Pt(hx, hy), Orient: headOrient}
	mods = append(mods, prev)
	left, down := 0, 0
	right := hx + hw + spacing(head, headOrient, geom.Right, slack)
	up := hy + hh + spacing(head, headOrient, geom.Up, slack)

	for i := 1; i < b.Len(); i++ {
		m := b.Modules[i]
		tPrev, tCur, ok := boxes.StringNet(prev.Mod, m)
		if !ok {
			return nil, fmt.Errorf("place: box string broken between %q and %q",
				prev.Mod.Name, m.Name)
		}
		curSide, err := tCur.Side()
		if err != nil {
			return nil, err
		}
		orient := geom.OrientTaking(curSide, geom.Left)

		prevTermPosLocal := prev.Orient.RotatePoint(tPrev.Pos, prev.Mod.W, prev.Mod.H)
		curTermPos := orient.RotatePoint(tCur.Pos, m.W, m.H)
		_, prevH := prev.Size()
		sidePrev := prev.TermSide(tPrev)

		var y int
		switch sidePrev {
		case geom.Right:
			y = prev.Pos.Y + prevTermPosLocal.Y - curTermPos.Y
		case geom.Up:
			y = prev.Pos.Y + prevTermPosLocal.Y - curTermPos.Y + 1
		case geom.Down:
			y = prev.Pos.Y - 1 - curTermPos.Y
		default: // left: route around the shorter way
			if prevH-prevTermPosLocal.Y > prevTermPosLocal.Y {
				y = prev.Pos.Y - 1 - curTermPos.Y
			} else {
				y = prev.Pos.Y + prevH + 1 - curTermPos.Y
			}
		}

		x := right + spacing(m, orient, geom.Left, slack)
		pm := &PlacedModule{Mod: m, Pos: geom.Pt(x, y), Orient: orient}
		mods = append(mods, pm)
		w, h := pm.Size()
		right = x + w + spacing(m, orient, geom.Right, slack)
		up = geom.Max(up, y+h+spacing(m, orient, geom.Up, slack))
		down = geom.Min(down, y-spacing(m, orient, geom.Down, slack))
		prev = pm
	}

	// Normalize to a (0,0) lower-left box frame (the paper's
	// translation-box correction).
	for _, pm := range mods {
		pm.Pos = pm.Pos.Sub(geom.Pt(left, down))
	}
	return &placedBox{
		box:  b,
		mods: mods,
		size: geom.Pt(right-left, up-down),
	}, nil
}
