package place

import (
	"testing"

	"netart/internal/boxes"
	"netart/internal/geom"
	"netart/internal/netlist"
)

// chainDesign builds a two-module string where the driver's output
// terminal sits on the given side of its (unrotated) module, to
// exercise every vertical-shift branch of PLACE_MODULE (§4.6.4).
func chainDesign(t *testing.T, outSide geom.Dir, outPos geom.Point) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("chain2")
	// Driver: 4x4 with the output at outPos (caller guarantees it is on
	// outSide) and a dummy input on the left so the head orientation
	// logic has substance.
	_, err := d.AddModule("drv", "", 4, 4, []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 2)},
		{Name: "Y", Type: netlist.Out, Pos: outPos},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.AddModule("snk", "", 4, 4, []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
		{Name: "Y", Type: netlist.Out, Pos: geom.Pt(4, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("w", "drv", "Y"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("w", "snk", "A"); err != nil {
		t.Fatal(err)
	}
	// Verify the fixture: the terminal really is on the claimed side.
	side, err := d.Module("drv").Term("Y").Side()
	if err != nil {
		t.Fatal(err)
	}
	if side != outSide {
		t.Fatalf("fixture: terminal at %v is on %v, wanted %v", outPos, side, outSide)
	}
	return d
}

// placeChain places the two-module design as one box and returns the
// placement.
func placeChain(t *testing.T, d *netlist.Design) *Result {
	t.Helper()
	res, err := Place(d, Options{PartSize: 2, BoxSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 || len(res.Parts[0].Boxes) != 1 ||
		res.Parts[0].Boxes[0].Box.Len() != 2 {
		t.Fatalf("expected one 2-string box, got %+v", res.Parts)
	}
	return res
}

// checkStringGeometry verifies the §4.6.4 invariants for the placed
// pair: the driver's connecting terminal faces right after rotation,
// the sink's faces left, the sink sits strictly right of the driver,
// and when the sides oppose, the terminals are vertically aligned.
func checkStringGeometry(t *testing.T, res *Result) {
	t.Helper()
	d := res.Design
	drv, snk := d.Module("drv"), d.Module("snk")
	tPrev, tCur, ok := boxes.StringNet(drv, snk)
	if !ok {
		t.Fatal("string link lost")
	}
	pd, ps := res.Mods[drv], res.Mods[snk]
	if got := ps.TermSide(tCur); got != geom.Left {
		t.Errorf("sink terminal faces %v, want left", got)
	}
	dw, _ := pd.Size()
	if ps.Pos.X < pd.Pos.X+dw {
		t.Error("sink not strictly right of driver")
	}
	if pd.TermSide(tPrev) == geom.Right {
		// Head was rotated so the connecting terminal faces right; the
		// shift formula must align the terminals for a straight net.
		if pd.TermPos(tPrev).Y != ps.TermPos(tCur).Y {
			t.Errorf("opposing terminals not aligned: %v vs %v",
				pd.TermPos(tPrev), ps.TermPos(tCur))
		}
	}
}

func TestPlaceModuleSideCases(t *testing.T) {
	cases := []struct {
		name string
		side geom.Dir
		pos  geom.Point
	}{
		{"right", geom.Right, geom.Pt(4, 2)},
		{"up", geom.Up, geom.Pt(2, 4)},
		{"down", geom.Down, geom.Pt(2, 0)},
		{"left-lower", geom.Left, geom.Pt(0, 1)},
		{"left-upper", geom.Left, geom.Pt(0, 3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := chainDesign(t, c.side, c.pos)
			res := placeChain(t, d)
			checkStringGeometry(t, res)
		})
	}
}

func TestHeadRotationFacesRight(t *testing.T) {
	// The head of a multi-module string is rotated so its connecting
	// terminal ends up on the right, whatever its library side was.
	for _, c := range []struct {
		name string
		pos  geom.Point
	}{
		{"from-up", geom.Pt(2, 4)},
		{"from-down", geom.Pt(2, 0)},
		{"from-left", geom.Pt(0, 1)},
		{"from-right", geom.Pt(4, 2)},
	} {
		t.Run(c.name, func(t *testing.T) {
			d := chainDesign(t, sideOfPos(c.pos), c.pos)
			res := placeChain(t, d)
			drv := d.Module("drv")
			tPrev, _, _ := boxes.StringNet(drv, d.Module("snk"))
			if got := res.Mods[drv].TermSide(tPrev); got != geom.Right {
				t.Errorf("head terminal faces %v after rotation, want right", got)
			}
		})
	}
}

func sideOfPos(p geom.Point) geom.Dir {
	switch {
	case p.X == 0:
		return geom.Left
	case p.X == 4:
		return geom.Right
	case p.Y == 4:
		return geom.Up
	default:
		return geom.Down
	}
}

func TestWhitespaceScalesWithConnectedNets(t *testing.T) {
	// Two singleton boxes: the one with more connected terminals on a
	// side gets more room on that side, visible in the box rectangle.
	d := netlist.NewDesign("w")
	_, err := d.AddModule("busy", "", 4, 4, []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
		{Name: "B", Type: netlist.In, Pos: geom.Pt(0, 2)},
		{Name: "C", Type: netlist.In, Pos: geom.Pt(0, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.AddModule("quiet", "", 4, 4, []netlist.TermSpec{
		{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give each terminal its own net to a shared driver so the counts
	// differ: busy has 3 connected nets on its left, quiet has 1.
	_, err = d.AddModule("src", "", 4, 4, []netlist.TermSpec{
		{Name: "Y1", Type: netlist.Out, Pos: geom.Pt(4, 1)},
		{Name: "Y2", Type: netlist.Out, Pos: geom.Pt(4, 2)},
		{Name: "Y3", Type: netlist.Out, Pos: geom.Pt(4, 3)},
		{Name: "Y4", Type: netlist.Out, Pos: geom.Pt(2, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][3]string{
		{"n1", "Y1", "A"}, {"n2", "Y2", "B"}, {"n3", "Y3", "C"},
	} {
		if err := d.Connect(c[0], "src", c[1]); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(c[0], "busy", c[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Connect("n4", "src", "Y4"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("n4", "quiet", "A"); err != nil {
		t.Fatal(err)
	}

	busy := spacing(d.Module("busy"), geom.R0, geom.Left, 0)
	quiet := spacing(d.Module("quiet"), geom.R0, geom.Left, 0)
	if busy != 4 || quiet != 2 { // count+1
		t.Errorf("spacing busy=%d quiet=%d, want 4 and 2", busy, quiet)
	}
}

func TestSingletonBoxKeepsLibraryOrientation(t *testing.T) {
	d := chainDesign(t, geom.Right, geom.Pt(4, 2))
	res, err := Place(d, Options{PartSize: 1, BoxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Modules {
		if res.Mods[m].Orient != geom.R0 {
			t.Errorf("singleton module %s rotated to %v", m.Name, res.Mods[m].Orient)
		}
	}
}
