// Package service wraps the netlist→schematic pipeline of gen in a
// long-running, concurrency-safe HTTP/JSON daemon: a bounded worker
// pool executes generation requests under per-request deadlines, a
// content-addressed LRU cache serves repeated requests without
// recomputation, and atomic counters plus per-stage latency histograms
// make the whole thing observable at /v1/stats. cmd/netartd is the
// binary front end.
package service

import (
	"fmt"
	"strings"

	"netart/internal/gen"
	"netart/internal/obs"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/schematic"
)

// Request is the body of POST /v1/generate: either a built-in workload
// name or an inline Appendix A description (net-list + call records,
// optional io records), plus placement/routing options and the desired
// output format.
type Request struct {
	// Workload names a built-in network: fig61, datapath, cpu, life, or
	// chain (with ChainLength modules). Mutually exclusive with Netlist.
	Workload string `json:"workload,omitempty"`
	// ChainLength sizes the chain workload (default 16).
	ChainLength int `json:"chain_length,omitempty"`

	// Netlist/Calls/IO carry an inline Appendix A description: the
	// net-list records (<NET> <INSTANCE> <TERMINAL>), the call records
	// (<INSTANCE> <TEMPLATE>), and the optional io records
	// (<TERMINAL> in|out|inout). Templates resolve against the builtin
	// library.
	Netlist string `json:"netlist,omitempty"`
	Calls   string `json:"calls,omitempty"`
	IO      string `json:"io,omitempty"`
	// Name labels an inline design (default "design").
	Name string `json:"name,omitempty"`

	Options GenOptions `json:"options"`

	// Format selects the rendering: svg, escher, ascii, json, or
	// summary (default).
	Format string `json:"format,omitempty"`

	// TimeoutMs bounds this request's generation time; 0 uses the
	// server default. The deadline is propagated into the routing
	// wavefront loops via context.Context.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// GenOptions is the JSON shape of the placement and routing knobs; the
// zero value reproduces gen.DefaultOptions.
type GenOptions struct {
	Placer         string `json:"placer,omitempty"` // paper, epitaxial, mincut, columns
	PartSize       int    `json:"part_size,omitempty"`
	BoxSize        int    `json:"box_size,omitempty"`
	MaxConnections int    `json:"max_connections,omitempty"`
	PartSpacing    int    `json:"part_spacing,omitempty"`
	BoxSpacing     int    `json:"box_spacing,omitempty"`
	ModSpacing     int    `json:"mod_spacing,omitempty"`

	Algorithm     string `json:"algorithm,omitempty"` // line-expansion, lee-bends, lee-length, hightower
	NoClaimpoints bool   `json:"no_claimpoints,omitempty"`
	SwapObjective bool   `json:"swap_objective,omitempty"`
	// RouteOrder selects the net routing order: "shortest" (default —
	// increasing estimated length, the §7 extension) or "design" (the
	// paper's order). Replaces the former shortest_first boolean.
	RouteOrder string `json:"route_order,omitempty"`
	// RouteWindow toggles the bounded search windows of the routing hot
	// path: "on" (default) or "off" (full-plane searches, the seed
	// behavior). Windowed results are byte-identical to full-plane ones
	// — the exactness ladder guarantees it and the windowed≡full
	// property battery in internal/route enforces it — so, exactly like
	// route_workers, the knob is an execution hint and does NOT
	// participate in the cache key.
	RouteWindow string `json:"route_window,omitempty"`
	RipUp       bool   `json:"rip_up,omitempty"`
	DualFront   bool   `json:"dual_front,omitempty"`
	Margin      int    `json:"margin,omitempty"`

	// DegradeMode selects the failure policy for incomplete routings:
	// none, strict, escalate, or best-effort (see gen.DegradeMode).
	// Empty inherits the server default.
	DegradeMode string `json:"degrade_mode,omitempty"`

	// RouteWorkers sets the router's speculative parallelism (see
	// route.Options.Workers); 0 inherits the server default, 1 forces
	// sequential routing. The parallel router is byte-identical to the
	// sequential one, so this knob is an execution hint, not a result
	// parameter: it deliberately does NOT participate in the cache key.
	RouteWorkers int `json:"route_workers,omitempty"`

	// PlaceWorkers sets the placement engine's parallelism (see
	// place.Options.Workers); 0 inherits the server default, 1 forces
	// sequential placement. Parallel placement commits partition tasks
	// in canonical order and is byte-identical to the sequential path,
	// so — exactly like route_workers — the knob is an execution hint
	// and does NOT participate in the cache key.
	PlaceWorkers int `json:"place_workers,omitempty"`
}

// resolve maps the JSON options onto gen.Options, filling defaults.
func (o GenOptions) resolve() (gen.Options, error) {
	opts := gen.Options{
		Place: place.Options{
			PartSize:       o.PartSize,
			BoxSize:        o.BoxSize,
			MaxConnections: o.MaxConnections,
			PartSpacing:    o.PartSpacing,
			BoxSpacing:     o.BoxSpacing,
			ModSpacing:     o.ModSpacing,
		},
		Route: route.Options{
			Claimpoints:   !o.NoClaimpoints,
			SwapObjective: o.SwapObjective,
			RipUp:         o.RipUp,
			DualFront:     o.DualFront,
			Margin:        o.Margin,
		},
	}
	var err error
	if opts.Route.OrderShortestFirst, err = route.ParseOrder(o.RouteOrder); err != nil {
		return opts, err
	}
	if opts.Route.NoWindow, err = route.ParseWindow(o.RouteWindow); err != nil {
		return opts, err
	}
	if opts.Place.PartSize == 0 {
		opts.Place.PartSize = 7
	}
	if opts.Place.BoxSize == 0 {
		opts.Place.BoxSize = 5
	}
	switch o.Placer {
	case "", "paper":
		opts.Placer = gen.PlacePaper
	case "epitaxial":
		opts.Placer = gen.PlaceEpitaxial
	case "mincut":
		opts.Placer = gen.PlaceMinCut
	case "columns":
		opts.Placer = gen.PlaceLogicColumns
	default:
		return opts, fmt.Errorf("unknown placer %q (paper, epitaxial, mincut, columns)", o.Placer)
	}
	switch o.Algorithm {
	case "", "line-expansion":
		opts.Route.Algorithm = route.AlgoLineExpansion
	case "lee-bends":
		opts.Route.Algorithm = route.AlgoLee
	case "lee-length":
		opts.Route.Algorithm = route.AlgoLeeLength
	case "hightower":
		opts.Route.Algorithm = route.AlgoHightower
	default:
		return opts, fmt.Errorf("unknown algorithm %q (line-expansion, lee-bends, lee-length, hightower)", o.Algorithm)
	}
	dm, err := gen.ParseDegradeMode(o.DegradeMode)
	if err != nil {
		return opts, err
	}
	opts.Degrade = dm
	if o.RouteWorkers < 0 {
		return opts, fmt.Errorf("route_workers must be >= 0, got %d", o.RouteWorkers)
	}
	opts.RouteWorkers = o.RouteWorkers
	if o.PlaceWorkers < 0 {
		return opts, fmt.Errorf("place_workers must be >= 0, got %d", o.PlaceWorkers)
	}
	opts.PlaceWorkers = o.PlaceWorkers
	return opts, nil
}

// canonical renders the options in a fixed field order for the cache
// key; every result-affecting field participates, so any knob change
// misses the cache. The degradation policy is passed in resolved form
// because an empty request field inherits the server default — two
// requests with different effective policies must never share a cache
// entry. RouteWorkers and PlaceWorkers are deliberately absent: the
// parallel router's and the parallel placement engine's outputs are
// byte-identical to their sequential counterparts for every input
// (enforced by the determinism batteries in internal/route,
// internal/place and internal/gen), so requests differing only in
// worker counts may — and should — share one cache entry.
func (o GenOptions) canonical(degrade gen.DegradeMode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "placer=%s part=%d box=%d conn=%d", orDefault(o.Placer, "paper"),
		orDefaultInt(o.PartSize, 7), orDefaultInt(o.BoxSize, 5), o.MaxConnections)
	fmt.Fprintf(&b, " pspc=%d bspc=%d mspc=%d", o.PartSpacing, o.BoxSpacing, o.ModSpacing)
	fmt.Fprintf(&b, " algo=%s claims=%t swap=%t order=%s ripup=%t dual=%t margin=%d",
		orDefault(o.Algorithm, "line-expansion"), !o.NoClaimpoints, o.SwapObjective,
		orDefault(o.RouteOrder, "shortest"), o.RipUp, o.DualFront, o.Margin)
	fmt.Fprintf(&b, " degrade=%s", degrade)
	return b.String()
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func orDefaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// DegradedReport is attached to a response when the degradation ladder
// accepted a partial routing rather than failing the request: it names
// the routing configurations that were attempted and the nets that
// remained unrouted in the best result.
type DegradedReport struct {
	Reason   string   `json:"reason"`
	Attempts []string `json:"attempts,omitempty"`
	Unrouted []string `json:"unrouted"`
}

// degradedReport converts the schematic's degradation block.
func degradedReport(d *schematic.Degradation) *DegradedReport {
	if d == nil {
		return nil
	}
	return &DegradedReport{
		Reason:   d.Reason,
		Attempts: append([]string(nil), d.Attempts...),
		Unrouted: append([]string(nil), d.Unrouted...),
	}
}

// Report is the stable JSON view of a gen.Report: per-stage timings
// (shared wire names with /v1's "stages"), the routing attempts the
// degradation ladder made, the router's work counters, the
// degradation block, and the request's span tree.
type Report struct {
	Timings  gen.StageTimings  `json:"timings"`
	Attempts []string          `json:"attempts,omitempty"`
	Search   route.SearchStats `json:"route_stats"`
	Degraded *DegradedReport   `json:"degraded,omitempty"`
	Trace    *obs.TraceData    `json:"trace,omitempty"`
}

// Response is the body of a successful /v1/generate call (kept
// wire-identical to the pre-/v2 daemon; new fields go to ResponseV2).
type Response struct {
	Name     string            `json:"name"`
	Format   string            `json:"format"`
	Diagram  string            `json:"diagram"`
	Metrics  schematic.Metrics `json:"metrics"`
	Unrouted int               `json:"unrouted"`
	Cached   bool              `json:"cached"`
	// Degraded is set when the result is a best-effort partial routing
	// (see gen.DegradeBestEffort); callers that require complete
	// diagrams should check it before trusting the artwork.
	Degraded *DegradedReport `json:"degraded,omitempty"`
	// CacheKey is the hex SHA-256 content address of this result.
	CacheKey  string           `json:"cache_key"`
	ElapsedMs float64          `json:"elapsed_ms"`
	Stages    gen.StageTimings `json:"stages"`
}

// ResponseV2 is the body of a successful /v2/generate call: the /v1
// fields plus the full generation report (timings, attempts, search
// counters, degradation, span tree) under "report".
type ResponseV2 struct {
	Name      string            `json:"name"`
	Format    string            `json:"format"`
	Diagram   string            `json:"diagram"`
	Metrics   schematic.Metrics `json:"metrics"`
	Unrouted  int               `json:"unrouted"`
	Cached    bool              `json:"cached"`
	CacheKey  string            `json:"cache_key"`
	ElapsedMs float64           `json:"elapsed_ms"`
	Report    Report            `json:"report"`
}

// V1 adapts a v2 response to the /v1 wire shape (thin adapter; the
// pipeline only ever produces v2 responses).
func (r *ResponseV2) V1() *Response {
	return &Response{
		Name:      r.Name,
		Format:    r.Format,
		Diagram:   r.Diagram,
		Metrics:   r.Metrics,
		Unrouted:  r.Unrouted,
		Cached:    r.Cached,
		Degraded:  r.Report.Degraded,
		CacheKey:  r.CacheKey,
		ElapsedMs: r.ElapsedMs,
		Stages:    r.Report.Timings,
	}
}

// TraceID returns the response's trace identifier ("" when absent).
func (r *ResponseV2) TraceID() string {
	if r.Report.Trace == nil {
		return ""
	}
	return r.Report.Trace.TraceID
}

// ErrorResponse is the unified error envelope: every non-2xx JSON
// response across /v1 and /v2 (generate, batch, jobs, method/path
// errors) carries exactly this shape. Code repeats the HTTP status so
// the verdict survives embedding (batch items, proxied peer errors);
// TraceID is an edge-generated correlation id also set in the
// X-Netart-Trace-Id response header.
type ErrorResponse struct {
	Error   string `json:"error"`
	Code    int    `json:"code,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

// BatchRequest is the body of POST /v1/batch and /v2/batch.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one outcome inside a BatchResponse: exactly one of
// Response or Error is set.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
	// Status is the HTTP status the item would have had standalone.
	Status int `json:"status"`
	// Attempts counts how many times this item was executed; >1 means
	// the bounded-retry layer re-ran it after a transient failure.
	Attempts int `json:"attempts,omitempty"`
}

// BatchResponse preserves request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// BatchItemV2 is one outcome inside a /v2 batch response.
type BatchItemV2 struct {
	Response *ResponseV2 `json:"response,omitempty"`
	Error    string      `json:"error,omitempty"`
	Status   int         `json:"status"`
	Attempts int         `json:"attempts,omitempty"`
}

// V1 adapts a v2 batch item to the /v1 wire shape.
func (it BatchItemV2) V1() BatchItem {
	out := BatchItem{Error: it.Error, Status: it.Status, Attempts: it.Attempts}
	if it.Response != nil {
		out.Response = it.Response.V1()
	}
	return out
}

// BatchResponseV2 preserves request order.
type BatchResponseV2 struct {
	Results []BatchItemV2 `json:"results"`
}

// HealthResponse is the body of GET /v1/healthz. Status is "ok" or
// "degraded"; degraded is advisory (still HTTP 200) and Reasons says
// why — a nearly-full queue or recovered panics since start.
type HealthResponse struct {
	Status  string   `json:"status"`
	Workers int      `json:"workers"`
	Queue   int      `json:"queue_depth"`
	Queued  int      `json:"queued"`
	Panics  uint64   `json:"panics"`
	Reasons []string `json:"reasons,omitempty"`
	// Store summarizes the result store when one is configured; disk
	// errors degrade the status (memory tier and recomputation still
	// serve, so degradation is advisory like the other reasons).
	Store *StoreHealth `json:"store,omitempty"`
	// Fleet summarizes peer health when this daemon is part of a
	// fleet; down peers degrade the status (their keys remap to live
	// replicas, so this too is advisory).
	Fleet   *FleetHealth `json:"fleet,omitempty"`
	UptimeS float64      `json:"uptime_s"`
}

// StoreHealth is the healthz view of the result store.
type StoreHealth struct {
	Backend    string `json:"backend"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	DiskErrors uint64 `json:"disk_errors"`
}

// FleetHealth is the healthz/stats view of the fleet health layer:
// this replica's opinion of every peer's circuit breaker. Down peers
// degrade the status (advisory — their keys remap to live replicas
// and every request still serves).
type FleetHealth struct {
	Self string `json:"self"`
	// Down counts peers currently excluded from the ownership set
	// (breaker open or half-open).
	Down  int          `json:"down"`
	Peers []PeerHealth `json:"peers"`
}

// PeerHealth is one peer's breaker state as this replica sees it.
type PeerHealth struct {
	URL   string `json:"url"`
	State string `json:"state"` // closed | half-open | open
	Live  bool   `json:"live"`
}
