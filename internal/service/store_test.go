package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// normalizeResp strips the per-request fields (elapsed time, trace,
// cache flag) so two responses can be compared for byte-identical
// artwork. Everything else — diagram, metrics, cache key, stage
// timings, attempts — is the stored result and must match exactly.
func normalizeResp(t *testing.T, r *ResponseV2) []byte {
	t.Helper()
	c := *r
	c.Cached = false
	c.ElapsedMs = 0
	c.Report.Trace = nil
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// corruptOnlyDiskEntry flips a payload byte in every entry file under
// the store directory (there is exactly one in the tests that use it).
func corruptOnlyDiskEntry(t *testing.T, root string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		b[len(b)-1] ^= 0xFF
		n++
		return os.WriteFile(path, b, 0o644)
	})
	if err != nil || n == 0 {
		t.Fatalf("corrupting store entries: n=%d err=%v", n, err)
	}
}

// TestRestartSurvival is the tentpole acceptance check: a tiered store
// over a temp dir is filled, the server is stopped, a fresh server
// over the same directory must serve the same request as a cache hit
// with byte-identical artwork.
func TestRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, StoreBackend: "tiered", StoreDir: dir, CacheEntries: 64}
	req := &Request{Workload: "fig61", Format: FormatSummary}
	ctx := context.Background()

	s1, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.GenerateV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold request claims to be cached")
	}
	// Same process, warm memory tier: sanity-check the hit path.
	warm, err := s1.GenerateV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat request missed the warm store")
	}
	s1.Close()

	// "Restart": a fresh server over the same store directory.
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Cache.Entries; got != 1 {
		t.Fatalf("restarted store reloaded %d entries, want 1", got)
	}
	revived, err := s2.GenerateV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !revived.Cached {
		t.Fatal("restarted server recomputed instead of serving the persisted entry")
	}
	if a, b := normalizeResp(t, first), normalizeResp(t, revived); string(a) != string(b) {
		t.Fatalf("artwork changed across restart:\n%s\n%s", a, b)
	}
	if hits := s2.Stats().Cache.Hits; hits != 1 {
		t.Fatalf("restarted server counted %d hits, want 1", hits)
	}
}

// TestStoreDiskBackend exercises the disk-only composition through the
// service (no memory tier at all).
func TestStoreDiskBackend(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(Config{Workers: 1, StoreBackend: "disk", StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	req := &Request{Workload: "fig61", Format: FormatSummary}
	if _, err := s.GenerateV2(ctx, req); err != nil {
		t.Fatal(err)
	}
	r2, err := s.GenerateV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("disk backend did not serve the repeat")
	}
	st := s.Stats().Store
	if st == nil || st.Backend != "disk" || len(st.Tiers) != 1 || st.Tiers[0].Tier != "disk" {
		t.Fatalf("store stats = %+v", st)
	}
	if st.Tiers[0].Hits != 1 || st.Tiers[0].Puts != 1 {
		t.Fatalf("disk tier counters = %+v, want 1 hit / 1 put", st.Tiers[0])
	}
}

// TestStoreConfigErrors: disk-backed stores without a directory and
// unknown backends must fail construction, not at request time.
func TestStoreConfigErrors(t *testing.T) {
	if _, err := NewServer(Config{StoreBackend: "disk"}); err == nil {
		t.Error("disk backend without StoreDir accepted")
	}
	if _, err := NewServer(Config{StoreBackend: "etcd"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := NewServer(Config{Peers: []string{"http://a:1"}}); err == nil {
		t.Error("peer list without SelfURL accepted")
	}
}

// TestSingleflightCollapse is the tentpole acceptance check: 32
// concurrent identical cold requests execute the pipeline exactly
// once — 1 leader, 31 shared — and produce identical bodies.
func TestSingleflightCollapse(t *testing.T) {
	const N = 32
	s, err := NewServer(Config{Workers: N, QueueDepth: N, CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := &Request{Workload: "fig61", Format: FormatSummary}
	// Recompute the content address the way process() does, so the
	// leader can hold until every follower is blocked on that key.
	design, canonical, err := s.resolveDesign(req)
	if err != nil || design == nil {
		t.Fatal(err)
	}
	opts, err := req.Options.resolve()
	if err != nil {
		t.Fatal(err)
	}
	key := makeCacheKey(canonical, req.Options.canonical(opts.Degrade), FormatSummary).String()

	s.flightHook = func() {
		deadline := time.Now().Add(10 * time.Second)
		for s.flight.Waiters(key) < N-1 {
			if time.Now().After(deadline) {
				t.Errorf("only %d followers joined before the leader ran", s.flight.Waiters(key))
				return
			}
			runtime.Gosched()
		}
	}

	ctx := context.Background()
	responses := make([]*ResponseV2, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, gerr := s.GenerateV2(ctx, req)
			if gerr != nil {
				t.Errorf("request %d: %v", i, gerr)
				return
			}
			responses[i] = r
		}(i)
	}
	wg.Wait()

	if got := s.obs.SFLeader.Value(); got != 1 {
		t.Errorf("singleflight leader count = %d, want 1", got)
	}
	if got := s.obs.SFShared.Value(); got != N-1 {
		t.Errorf("singleflight shared count = %d, want %d", got, N-1)
	}
	// The pipeline ran once: one route-stage observation.
	if got := s.Stats().Stages["route"].Count; got != 1 {
		t.Errorf("route stage ran %d times, want 1", got)
	}
	base := normalizeResp(t, responses[0])
	for i := 1; i < N; i++ {
		if responses[i] == nil {
			continue
		}
		if b := normalizeResp(t, responses[i]); string(b) != string(base) {
			t.Fatalf("response %d differs from response 0:\n%s\n%s", i, b, base)
		}
	}
}

// TestHealthzStoreSection: /v1/healthz reports the store backend and
// shape, and a failing disk tier degrades the status while the memory
// tier keeps serving.
func TestHealthzStoreSection(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, StoreBackend: "tiered", StoreDir: dir, CacheEntries: 8})

	if _, err := s.GenerateV2(context.Background(), &Request{Workload: "fig61", Format: FormatSummary}); err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	_, body := getJSON(t, ts.URL+"/v1/healthz")
	decode(t, body, &h)
	if h.Status != "ok" {
		t.Fatalf("status = %q, reasons = %v", h.Status, h.Reasons)
	}
	if h.Store == nil || h.Store.Backend != "tiered" || h.Store.Entries != 1 || h.Store.Bytes <= 0 {
		t.Fatalf("store health = %+v", h.Store)
	}
	if h.Store.DiskErrors != 0 {
		t.Fatalf("fresh store reports %d disk errors", h.Store.DiskErrors)
	}

	// Damage the persisted entry the way a failing disk would, then
	// restart over the same dir (cold memory tier) so the next request
	// reads — and rejects — the corrupt disk entry.
	corruptOnlyDiskEntry(t, dir)
	s2, ts2 := newTestServer(t, Config{Workers: 1, StoreBackend: "tiered", StoreDir: dir, CacheEntries: 8})
	if _, err := s2.GenerateV2(context.Background(), &Request{Workload: "fig61", Format: FormatSummary}); err != nil {
		t.Fatal(err)
	}
	var h2 HealthResponse
	_, body2 := getJSON(t, ts2.URL+"/v1/healthz")
	decode(t, body2, &h2)
	if h2.Store == nil || h2.Store.DiskErrors == 0 {
		t.Fatalf("corrupt disk entry not reflected in health: %+v", h2.Store)
	}
	if h2.Status != "degraded" {
		t.Fatalf("status = %q with %d disk errors, want degraded", h2.Status, h2.Store.DiskErrors)
	}
	found := false
	for _, r := range h2.Reasons {
		if strings.HasPrefix(r, "store:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no store reason in %v", h2.Reasons)
	}
}
