package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"netart/internal/obs"
	"netart/internal/resilience"
	"netart/internal/store"
)

// keyVersion versions the cache-key scheme AND the store namespace:
// the disk layout lives under <store-dir>/<keyVersion>, so bumping
// the scheme strands old persisted entries instead of ever serving
// one against a key built by different rules.
const keyVersion = "v1"

// cacheKey is the content address of one generation request: the
// SHA-256 of the canonical netlist serialization plus the canonical
// option string plus the output format (see DESIGN.md "Service result
// cache"). Canonicalizing through the parsed design means two
// syntactically different but semantically identical inline netlists
// (reordered records, comments, whitespace) hash to the same key.
type cacheKey [sha256.Size]byte

// makeCacheKey hashes the canonical request identity. Fields are
// length-prefixed by separator bytes so concatenations cannot collide.
func makeCacheKey(canonicalDesign, canonicalOptions, format string) cacheKey {
	h := sha256.New()
	h.Write([]byte("netartd/" + keyVersion + "\x00"))
	h.Write([]byte(canonicalDesign))
	h.Write([]byte{0})
	h.Write([]byte(canonicalOptions))
	h.Write([]byte{0})
	h.Write([]byte(format))
	var k cacheKey
	h.Sum(k[:0])
	return k
}

func (k cacheKey) String() string { return hex.EncodeToString(k[:]) }

// resultStore adapts the pluggable store.Store tier to the service:
// it owns the ResponseV2 ↔ bytes serialization, the request-level
// hit/miss counters (the per-tier view lives in
// netart_store_events_total), and — in exactly one place — the rule
// that the store is bypassed while fault injection is armed, so every
// backend (mem, disk, tiered) inherits it.
type resultStore struct {
	backend store.Store // nil disables caching entirely
	backing string      // config backend name, for the health surface
	inject  *resilience.Injector

	// Request-level event counters shared with /metrics and /v1/stats.
	hits   *obs.Counter
	misses *obs.Counter
}

// newResultStore wraps backend (which may be nil = caching disabled).
func newResultStore(backend store.Store, backing string, inject *resilience.Injector, m *obs.Pipeline) *resultStore {
	return &resultStore{
		backend: backend,
		backing: backing,
		inject:  inject,
		hits:    m.CacheHits,
		misses:  m.CacheMisses,
	}
}

// faultsArmed is THE single site of the cache-while-faults-armed
// rule: while any injection rule is armed, cached artwork must not
// be served (a chaos run must not be masked by earlier hits) and
// results must not be stored (an injected failure must never poison
// cached artwork). get, put, and the singleflight/peer layers all
// consult this one helper.
func (c *resultStore) faultsArmed() bool { return c.inject.Enabled() }

// enabled reports whether lookups/stores run at all.
func (c *resultStore) enabled() bool { return c.backend != nil && !c.faultsArmed() }

// get returns the stored response for k. Misses are counted except
// while faults are armed (bypass, not a miss); a disabled store
// counts misses, matching the previous cache semantics.
func (c *resultStore) get(ctx context.Context, k cacheKey) (ResponseV2, bool) {
	if c.faultsArmed() {
		return ResponseV2{}, false
	}
	if c.backend == nil {
		c.misses.Add(1)
		return ResponseV2{}, false
	}
	val, ok, err := c.backend.Get(ctx, k.String())
	if err != nil || !ok {
		c.misses.Add(1)
		return ResponseV2{}, false
	}
	var resp ResponseV2
	if uerr := json.Unmarshal(val, &resp); uerr != nil {
		// A value that stopped parsing is treated like corruption:
		// drop it and recompute.
		_ = c.backend.Delete(ctx, k.String())
		c.misses.Add(1)
		return ResponseV2{}, false
	}
	c.hits.Add(1)
	return resp, true
}

// put stores a response under k. Store errors are advisory (counted
// by the backend; the response is still correct and served).
func (c *resultStore) put(ctx context.Context, k cacheKey, resp ResponseV2) {
	if !c.enabled() {
		return
	}
	val, err := json.Marshal(resp)
	if err != nil {
		return
	}
	_ = c.backend.Put(ctx, k.String(), val)
}

// len reports the backend entry count (0 when disabled).
func (c *resultStore) len() int {
	if c.backend == nil {
		return 0
	}
	return c.backend.Len()
}

// tiers returns the backend's per-tier stats, flattened.
func (c *resultStore) tiers() []store.Stats {
	if c.backend == nil {
		return nil
	}
	return c.backend.Stats().Flatten()
}

// bytes sums the stored bytes across tiers; diskErrors sums the error
// counters of persistent tiers (the healthz degradation signal).
func (c *resultStore) bytes() int64 {
	var n int64
	for _, t := range c.tiers() {
		n += t.Bytes
	}
	return n
}

func (c *resultStore) diskErrors() uint64 {
	var n uint64
	for _, t := range c.tiers() {
		if t.Tier == "disk" {
			n += t.Errors
		}
	}
	return n
}

// close releases the backend.
func (c *resultStore) close() {
	if c.backend != nil {
		_ = c.backend.Close()
	}
}

// CacheStats is the /v1/stats slice owned by the result store. Hits
// and misses are request-level (any-tier); Evictions counts the
// memory tier, matching the pre-store-tier wire meaning.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *resultStore) stats(capacity int, evictions *obs.Counter) CacheStats {
	return CacheStats{
		Entries:   c.len(),
		Capacity:  capacity,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: evictions.Value(),
	}
}

// StoreTierStats is the /v1/stats and /v1/healthz view of one store
// tier.
type StoreTierStats struct {
	Tier      string `json:"tier"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Errors    uint64 `json:"errors"`
}

// StoreStats is the "store" block of /v1/stats.
type StoreStats struct {
	Backend string           `json:"backend"`
	Tiers   []StoreTierStats `json:"tiers,omitempty"`
}

func (c *resultStore) storeStats() *StoreStats {
	if c.backend == nil {
		return nil
	}
	out := &StoreStats{Backend: c.backing}
	for _, t := range c.tiers() {
		out.Tiers = append(out.Tiers, StoreTierStats{
			Tier:      t.Tier,
			Entries:   t.Entries,
			Bytes:     t.Bytes,
			Hits:      t.Hits,
			Misses:    t.Misses,
			Puts:      t.Puts,
			Evictions: t.Evictions,
			Errors:    t.Errors,
		})
	}
	return out
}
