package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"netart/internal/obs"
)

// cacheKey is the content address of one generation request: the
// SHA-256 of the canonical netlist serialization plus the canonical
// option string plus the output format (see DESIGN.md "Service result
// cache"). Canonicalizing through the parsed design means two
// syntactically different but semantically identical inline netlists
// (reordered records, comments, whitespace) hash to the same key.
type cacheKey [sha256.Size]byte

// makeCacheKey hashes the canonical request identity. Fields are
// length-prefixed by separator bytes so concatenations cannot collide.
func makeCacheKey(canonicalDesign, canonicalOptions, format string) cacheKey {
	h := sha256.New()
	h.Write([]byte("netartd/v1\x00"))
	h.Write([]byte(canonicalDesign))
	h.Write([]byte{0})
	h.Write([]byte(canonicalOptions))
	h.Write([]byte{0})
	h.Write([]byte(format))
	var k cacheKey
	h.Sum(k[:0])
	return k
}

func (k cacheKey) String() string { return hex.EncodeToString(k[:]) }

// resultCache is a mutex-guarded LRU over finished responses keyed by
// content address. Entries store the Response by value; readers get a
// copy, so a cached response is immutable shared state.
type resultCache struct {
	mu      sync.Mutex
	maxEnts int
	ll      *list.List // front = most recently used
	items   map[cacheKey]*list.Element

	// The event counters live in the shared obs metric set, so
	// /metrics and the CacheStats block of /v1/stats read the same
	// values (single source of truth).
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheEntry struct {
	key  cacheKey
	resp ResponseV2
}

// newResultCache returns a cache holding up to maxEntries responses;
// maxEntries <= 0 disables caching (every lookup misses).
func newResultCache(maxEntries int, m *obs.Pipeline) *resultCache {
	return &resultCache{
		maxEnts:   maxEntries,
		ll:        list.New(),
		items:     make(map[cacheKey]*list.Element),
		hits:      m.CacheHits,
		misses:    m.CacheMisses,
		evictions: m.CacheEvictions,
	}
}

// get returns a copy of the cached response and promotes the entry.
func (c *resultCache) get(k cacheKey) (ResponseV2, bool) {
	if c.maxEnts <= 0 {
		c.misses.Add(1)
		return ResponseV2{}, false
	}
	c.mu.Lock()
	el, ok := c.items[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return ResponseV2{}, false
	}
	c.ll.MoveToFront(el)
	resp := el.Value.(*cacheEntry).resp
	c.mu.Unlock()
	c.hits.Add(1)
	return resp, true
}

// put stores a response, evicting from the LRU tail when full.
func (c *resultCache) put(k cacheKey, resp ResponseV2) {
	if c.maxEnts <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, resp: resp})
	for c.ll.Len() > c.maxEnts {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the /v1/stats slice owned by the result cache.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *resultCache) stats() CacheStats {
	return CacheStats{
		Entries:   c.len(),
		Capacity:  c.maxEnts,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
	}
}
