package service

import (
	"context"
	"testing"
)

// Tests for the route_workers knob: it must reach the router, must not
// change the artwork, and — because it cannot change the artwork — must
// share cache entries with sequential requests.

// TestRouteWorkersByteIdenticalResponse renders the same workload
// sequentially and in parallel on two independent servers (no shared
// cache) and asserts the responses are byte-identical.
func TestRouteWorkersByteIdenticalResponse(t *testing.T) {
	req := func(workers int) *Request {
		return &Request{Workload: "datapath", Format: "ascii",
			Options: GenOptions{RouteWorkers: workers}}
	}
	run := func(workers int) *Response {
		s := New(Config{Workers: 1, CacheEntries: 0, VerifyRouting: true})
		defer s.Close()
		resp, err := s.Generate(context.Background(), req(workers))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	seq := run(1)
	for _, w := range []int{2, 4} {
		par := run(w)
		if par.Diagram != seq.Diagram {
			t.Errorf("route_workers=%d: diagram diverges from sequential", w)
		}
		if par.CacheKey != seq.CacheKey {
			t.Errorf("route_workers=%d: cache key %s != sequential %s — the knob must not enter the key",
				w, par.CacheKey, seq.CacheKey)
		}
		if par.Unrouted != seq.Unrouted {
			t.Errorf("route_workers=%d: unrouted %d != %d", w, par.Unrouted, seq.Unrouted)
		}
	}
}

// TestRouteWorkersSharesCacheEntry: a parallel request after an
// identical sequential one must hit the cache (and vice versa), because
// route_workers is an execution hint, not a result parameter.
func TestRouteWorkersSharesCacheEntry(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 16})
	defer s.Close()
	ctx := context.Background()

	seq, err := s.Generate(ctx, &Request{Workload: "fig61", Format: "ascii"})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cached {
		t.Fatal("first request reported cached")
	}
	par, err := s.Generate(ctx, &Request{Workload: "fig61", Format: "ascii",
		Options: GenOptions{RouteWorkers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Cached {
		t.Error("parallel request missed the cache despite the byte-identity contract")
	}
	if par.Diagram != seq.Diagram {
		t.Error("cached parallel response diverges from sequential original")
	}
}

// TestRouteWorkersServerDefault: a server-wide RouteWorkers default
// applies to requests that don't pick their own, and a request override
// wins.
func TestRouteWorkersServerDefault(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0, RouteWorkers: 4, VerifyRouting: true})
	defer s.Close()
	if _, err := s.Generate(context.Background(),
		&Request{Workload: "datapath", Format: "summary"}); err != nil {
		t.Fatalf("server-default parallel routing failed: %v", err)
	}
	if _, err := s.Generate(context.Background(),
		&Request{Workload: "datapath", Format: "summary",
			Options: GenOptions{RouteWorkers: 1}}); err != nil {
		t.Fatalf("request override to sequential failed: %v", err)
	}
}

// TestRouteWorkersRejectsNegative pins the 400 on a nonsense value.
func TestRouteWorkersRejectsNegative(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	_, err := s.Generate(context.Background(),
		&Request{Workload: "fig61", Options: GenOptions{RouteWorkers: -2}})
	se, ok := err.(*svcError)
	if !ok || se.status != 400 {
		t.Fatalf("negative route_workers: got %v, want 400 svcError", err)
	}
}
