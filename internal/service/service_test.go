package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netart/internal/gen"
	"netart/internal/obs"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/store"
	"netart/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestGenerateLifeEndToEnd serves the LIFE workload through the real
// HTTP stack: placement, routing and SVG rendering of the 27-module /
// 222-net network, the paper's hardest figure.
func TestGenerateLifeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	httpResp, body := postJSON(t, ts.URL+"/v1/generate", Request{
		Workload: "life",
		Format:   FormatSVG,
		Options: GenOptions{
			PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3,
		},
	})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", httpResp.StatusCode, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Diagram, "<svg") {
		t.Error("svg rendering missing <svg element")
	}
	if resp.Metrics.WireLength == 0 {
		t.Error("expected non-zero wire length for the LIFE network")
	}
	if resp.Unrouted > 5 {
		t.Errorf("unexpectedly many unrouted nets: %d", resp.Unrouted)
	}
	if resp.Stages.Place <= 0 || resp.Stages.Route <= 0 {
		t.Errorf("missing stage timings: %+v", resp.Stages)
	}
	if resp.Cached {
		t.Error("first request must not report cached")
	}
}

// TestConcurrentGenerateClones runs GenerateCtx on clones of the LIFE
// design from 8 goroutines through the service core; under -race this
// is the concurrency acceptance gate (one parsed design, many
// concurrent generations).
func TestConcurrentGenerateClones(t *testing.T) {
	// The race detector slows the LIFE pipeline by an order of
	// magnitude and all 8 runs share the cores, so give the service
	// half far more than the 30s default deadline.
	s := New(Config{Workers: 8, QueueDepth: 16,
		DefaultTimeout: 10 * time.Minute, MaxTimeout: 10 * time.Minute})
	defer s.Close()

	base := workload.Life27()
	// Figure 6.7 options: the spacing the dense LIFE fabric needs.
	lifeOpts := gen.Options{
		Place: place.Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
		Route: route.Options{Claimpoints: true},
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	resps := make([]*Response, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the goroutines exercise the HTTP-free service core
			// on the shared built-in design, half run GenerateCtx on
			// private clones directly.
			if i%2 == 0 {
				resps[i], errs[i] = s.Generate(context.Background(), &Request{
					Workload: "life",
					Format:   FormatSummary,
					Options: GenOptions{
						PartSize: 5, BoxSize: 5,
						ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3,
					},
				})
				return
			}
			clone := base.Clone()
			_, err := gen.Run(context.Background(), clone, lifeOpts)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
	for i, r := range resps {
		if i%2 == 0 && r == nil {
			t.Errorf("goroutine %d: no response", i)
		}
	}
}

// TestCacheHitMiss asserts identical requests hit the cache and any
// option change misses it.
func TestCacheHitMiss(t *testing.T) {
	s := New(Config{Workers: 2, CacheEntries: 8})
	defer s.Close()
	ctx := context.Background()

	req := Request{Workload: "fig61", Format: FormatASCII,
		Options: GenOptions{PartSize: 6, BoxSize: 6}}

	first, err := s.Generate(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}

	second, err := s.Generate(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical request missed the cache")
	}
	if second.Diagram != first.Diagram {
		t.Fatal("cached diagram differs from original")
	}
	if second.CacheKey != first.CacheKey {
		t.Fatal("cache keys differ for identical requests")
	}

	// Any differing option must produce a different key and a miss.
	diff := req
	diff.Options.SwapObjective = true
	third, err := s.Generate(ctx, &diff)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("request with different options hit the cache")
	}
	if third.CacheKey == first.CacheKey {
		t.Fatal("different options produced the same cache key")
	}

	// Different format too: the rendered artifact is part of the key.
	diffFmt := req
	diffFmt.Format = FormatSummary
	fourth, err := s.Generate(ctx, &diffFmt)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Fatal("request with different format hit the cache")
	}

	cs := s.cache.stats(s.cfg.CacheEntries, s.obs.CacheEvictions)
	if cs.Hits != 1 || cs.Misses != 3 {
		t.Errorf("cache stats = %+v, want 1 hit / 3 misses", cs)
	}
}

// TestInlineNetlistCanonicalization asserts two syntactically different
// but semantically identical inline netlists share one cache entry.
func TestInlineNetlistCanonicalization(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 8})
	defer s.Close()
	ctx := context.Background()

	calls := "a INV\nb INV\n"
	netsA := "w a Y\nw b A\n"
	netsB := "# same network, reordered with a comment\nw b A\nw a Y\n"

	ra, err := s.Generate(ctx, &Request{Calls: calls, Netlist: netsA, Format: FormatSummary})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.Generate(ctx, &Request{Calls: calls, Netlist: netsB, Format: FormatSummary})
	if err != nil {
		t.Fatal(err)
	}
	if ra.CacheKey != rb.CacheKey {
		t.Fatalf("reordered netlist changed the cache key:\n%s\n%s", ra.CacheKey, rb.CacheKey)
	}
	if !rb.Cached {
		t.Error("canonically identical inline request missed the cache")
	}
}

// TestLRUEviction fills the cache beyond capacity and checks eviction
// counters plus the entry cap, through the service wrapper (the LRU
// mechanics themselves are covered in internal/store).
func TestLRUEviction(t *testing.T) {
	m := obs.NewPipeline()
	backend := store.NewMem(2, func(tier, event string) {
		m.StoreEvent(tier, event)
		if event == store.EventEvict {
			m.CacheEvictions.Inc()
		}
	})
	c := newResultStore(backend, "mem", nil, m)
	ctx := context.Background()
	k := func(i int) cacheKey { return makeCacheKey(fmt.Sprintf("d%d", i), "o", "f") }
	for i := 0; i < 4; i++ {
		c.put(ctx, k(i), ResponseV2{Name: fmt.Sprintf("r%d", i)})
	}
	if got := c.len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	if ev := m.CacheEvictions.Value(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
	if _, ok := c.get(ctx, k(0)); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.get(ctx, k(3)); !ok {
		t.Error("newest entry missing")
	}
}

// TestQueueShedding holds the single worker busy, fills the one queue
// slot, and asserts the next request is shed with 429.
func TestQueueShedding(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 0})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testHook = func() {
		started <- struct{}{}
		<-release
	}

	run := func() error {
		_, err := s.Generate(context.Background(), &Request{Workload: "fig61", Format: FormatSummary})
		return err
	}
	errc := make(chan error, 2)
	go func() { errc <- run() }() // occupies the worker
	<-started                     // worker is now blocked in the hook

	go func() { errc <- run() }() // occupies the single queue slot
	// Wait until the queued task is actually buffered.
	deadline := time.After(2 * time.Second)
	for s.pool.queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("queued task never appeared")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Third request: worker busy + queue full → shed.
	_, err := s.Generate(context.Background(), &Request{Workload: "fig61", Format: FormatSummary})
	se, ok := err.(*svcError)
	if !ok || se.status != http.StatusTooManyRequests {
		t.Fatalf("want 429 svcError, got %v", err)
	}
	if got := s.obs.Shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Errorf("held request %d failed: %v", i, err)
		}
	}
}

// TestRequestTimeout asserts an expired per-request deadline surfaces
// as 504 and bumps the timeout counter.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0})
	defer s.Close()
	s.testHook = func() { time.Sleep(5 * time.Millisecond) }

	_, err := s.Generate(context.Background(), &Request{
		Workload: "life", Format: FormatSummary, TimeoutMs: 1,
	})
	se, ok := err.(*svcError)
	if !ok || se.status != http.StatusGatewayTimeout {
		t.Fatalf("want 504 svcError, got %v", err)
	}
	if got := s.obs.Timeouts.Value(); got == 0 {
		t.Error("timeout counter not bumped")
	}
}

// TestStatsEndpoint exercises /v1/stats and /v1/healthz over HTTP after
// real traffic and asserts non-zero per-stage latency counts plus cache
// hit/miss totals — the observability acceptance gate.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 8})

	req := Request{Workload: "fig61", Format: FormatSummary, Options: GenOptions{PartSize: 6, BoxSize: 6}}
	for i := 0; i < 2; i++ { // second run hits the cache
		if resp, body := postJSON(t, ts.URL+"/v1/generate", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("generate status %d: %s", resp.StatusCode, body)
		}
	}

	httpResp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Requests: []Request{
			{Workload: "datapath", Format: FormatSummary},
			{Workload: "nope"},
		},
	})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", httpResp.StatusCode, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Results[0].Response == nil || batch.Results[0].Status != http.StatusOK {
		t.Errorf("batch item 0 = %+v, want ok", batch.Results[0])
	}
	if batch.Results[1].Error == "" || batch.Results[1].Status != http.StatusBadRequest {
		t.Errorf("batch item 1 = %+v, want 400", batch.Results[1])
	}

	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers != 2 {
		t.Errorf("healthz = %+v", health)
	}

	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.OK < 3 {
		t.Errorf("ok counter = %d, want >= 3", stats.OK)
	}
	if stats.Failed == 0 {
		t.Error("failed counter not bumped by bad batch item")
	}
	for _, stage := range []string{"parse", "place", "route", "render", "total"} {
		if stats.Stages[stage].Count == 0 {
			t.Errorf("stage %q has zero latency observations", stage)
		}
	}
	if stats.Cache.Hits == 0 || stats.Cache.Misses == 0 {
		t.Errorf("cache stats = %+v, want non-zero hits and misses", stats.Cache)
	}
}

// TestBadRequests covers the validation surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  Request
	}{
		{"empty", Request{}},
		{"unknown workload", Request{Workload: "warp-core"}},
		{"both sources", Request{Workload: "fig61", Netlist: "w a Y", Calls: "a INV"}},
		{"bad placer", Request{Workload: "fig61", Options: GenOptions{Placer: "astral"}}},
		{"bad format", Request{Workload: "fig61", Format: "hologram"}},
		{"netlist without calls", Request{Netlist: "w a Y"}},
		{"unparsable netlist", Request{Netlist: "one-field", Calls: "a INV"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/generate", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/generate status = %d, want 405", resp.StatusCode)
	}
}

// TestJSONFormat checks the structured rendering carries placements and
// routed segments.
func TestJSONFormat(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	resp, err := s.Generate(context.Background(), &Request{Workload: "fig61", Format: FormatJSON,
		Options: GenOptions{PartSize: 6, BoxSize: 6}})
	if err != nil {
		t.Fatal(err)
	}
	var dg jsonDiagram
	if err := json.Unmarshal([]byte(resp.Diagram), &dg); err != nil {
		t.Fatalf("json diagram does not parse: %v", err)
	}
	if len(dg.Modules) == 0 || len(dg.Nets) == 0 {
		t.Fatalf("json diagram empty: %d modules, %d nets", len(dg.Modules), len(dg.Nets))
	}
	segs := 0
	for _, n := range dg.Nets {
		segs += len(n.Segments)
	}
	if segs == 0 {
		t.Error("json diagram has no routed segments")
	}
}
