package service

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netart/internal/store/cluster"
)

// coldKey computes the cache key a request would map to, the way
// process() does, without running the pipeline — so tests can reason
// about ownership of keys that are still cold.
func coldKey(t *testing.T, s *Server, req *Request) string {
	t.Helper()
	_, canonical, err := s.resolveDesign(req)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.Options.resolve()
	if err != nil {
		t.Fatal(err)
	}
	format, err := resolveFormat(req.Format)
	if err != nil {
		t.Fatal(err)
	}
	return makeCacheKey(canonical, req.Options.canonical(opts.Degrade), format).String()
}

// chainOwnedBy finds a chain request whose (cold) key is owned by
// want, searching chain lengths from 2 up.
func chainOwnedBy(t *testing.T, s *Server, want string) (*Request, string) {
	t.Helper()
	for n := 2; n < 128; n++ {
		req := &Request{Workload: "chain", ChainLength: n, Format: FormatSummary}
		key := coldKey(t, s, req)
		if s.fleet.Owner(key) == want {
			return req, key
		}
	}
	t.Fatalf("no chain key owned by %s found", want)
	return nil, ""
}

// artworkOf projects a response onto its deterministic fields. The
// full wire body carries per-run stage timings (normalizeResp-style
// comparison only works between copies of one stored result), but the
// artwork itself — diagram, metrics, content address — must be
// byte-identical no matter which replica computed it, warm or cold,
// proxied, hedged or fallback.
func artworkOf(t *testing.T, r *ResponseV2) string {
	t.Helper()
	if r.Diagram == "" || r.CacheKey == "" {
		t.Error("response missing diagram or cache key")
	}
	return r.CacheKey + "\x00" + r.Format + "\x00" + r.Diagram
}

// pollUntil polls cond until it holds or the deadline passes; reports
// how long it took and whether it converged.
func pollUntil(d time.Duration, cond func() bool) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return time.Since(start), true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(start), cond()
}

// TestFleetChaosBattery is the network chaos battery: three replicas
// under mixed traffic while peers are blackholed, killed and restored
// mid-run via a shared fault plan. Invariants: every request answers
// 200 with artwork byte-identical to a fleet-less reference, a down
// owner's keys remap to live replicas within the detection budget and
// remap back on recovery, and the failure-management metrics
// (breaker transitions, hedges, peer state gauge) are populated.
func TestFleetChaosBattery(t *testing.T) {
	const (
		probeInterval = 200 * time.Millisecond
		hedgeAfter    = 30 * time.Millisecond
	)
	plan := cluster.NewFaultPlan(1)
	reps := startFleet(t, 3, Config{
		Workers:           2,
		CacheEntries:      64,
		PeerProbeInterval: probeInterval,
		PeerFailThreshold: 2,
		ProxyHedgeAfter:   hedgeAfter,
		PeerTimeout:       2 * time.Second,
		PeerFaults:        plan,
	})
	ref, err := NewServer(Config{Workers: 2, CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ctx := context.Background()

	// The workload mix, with reference bodies from the fleet-less
	// server: every answer during the chaos run must match these bytes.
	requests := []*Request{
		{Workload: "fig61", Format: FormatSummary},
		{Workload: "quickstart", Format: FormatSummary},
		{Workload: "chain", ChainLength: 4, Format: FormatSummary},
		{Workload: "chain", ChainLength: 6, Format: FormatSummary},
		{Workload: "chain", ChainLength: 8, Format: FormatSummary},
	}
	reference := make([]string, len(requests))
	for i, req := range requests {
		resp, rerr := ref.GenerateV2(ctx, req)
		if rerr != nil {
			t.Fatal(rerr)
		}
		reference[i] = artworkOf(t, resp)
	}
	// Warm the fleet: each request once, entering via a different
	// replica, so owners hold the results and later traffic mixes warm
	// proxied hits with cold computes.
	for i, req := range requests {
		if _, err := reps[i%3].srv.GenerateV2(ctx, req); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}

	// Pick the outage victims: victim owns victimKey and is not
	// reps[0] (the entry point for synchronous checks); victim2 is the
	// third replica.
	victimReq, victimKey := chainOwnedBy(t, reps[0].srv, reps[1].url)
	victim := reps[1]
	victim2 := reps[2]
	if string(victimKey) == "" || victimReq == nil {
		t.Fatal("no victim key")
	}
	victimRef := ""
	if resp, rerr := ref.GenerateV2(ctx, victimReq); rerr == nil {
		victimRef = artworkOf(t, resp)
	} else {
		t.Fatal(rerr)
	}

	// Background traffic: four clients loop over the mix through every
	// replica. The zero-error invariant: chaos may add latency, never
	// failures — a blackholed owner costs a hedge, a killed one a
	// fallback compute.
	stop := make(chan struct{})
	var traffic sync.WaitGroup
	var served atomic.Int64
	for g := 0; g < 4; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ri := (g + i) % len(requests)
				resp, gerr := reps[(g+i)%3].srv.GenerateV2(ctx, requests[ri])
				if gerr != nil {
					t.Errorf("traffic %d/%d failed: %v", g, i, gerr)
					return
				}
				if got := artworkOf(t, resp); got != reference[ri] {
					t.Errorf("traffic %d/%d: artwork differs from the reference", g, i)
					return
				}
				served.Add(1)
			}
		}(g)
	}

	// Episode 1: blackhole the victim (packets dropped, TCP hangs).
	plan.Blackhole(victim.url)
	// A synchronous request for the victim's key before the breaker
	// opens must be rescued by the hedge: the proxy to the blackholed
	// owner hangs, the hedged twin answers.
	if resp, gerr := reps[0].srv.GenerateV2(ctx, victimReq); gerr != nil {
		t.Fatalf("request during blackhole failed: %v", gerr)
	} else if artworkOf(t, resp) != victimRef {
		t.Fatal("blackhole-era artwork differs from the reference")
	}
	// Both survivors must re-shard the victim's keys within the
	// detection budget (FailThreshold consecutive probe failures).
	elapsed, ok := pollUntil(3*probeInterval+500*time.Millisecond, func() bool {
		return reps[0].srv.fleet.Owner(victimKey) != victim.url &&
			victim2.srv.fleet.Owner(victimKey) != victim.url
	})
	if !ok {
		t.Fatalf("victim's keys never remapped (waited %v)", elapsed)
	}
	t.Logf("blackhole detected and re-sharded in %v", elapsed)
	// The remapped key serves correctly from the survivors.
	for _, r := range []*replica{reps[0], victim2} {
		if resp, gerr := r.srv.GenerateV2(ctx, victimReq); gerr != nil {
			t.Fatalf("remapped key failed on %s: %v", r.url, gerr)
		} else if artworkOf(t, resp) != victimRef {
			t.Fatal("remapped artwork differs from the reference")
		}
	}
	// The survivors' health surfaces report the outage.
	if _, ok := pollUntil(time.Second, func() bool {
		fh := reps[0].srv.Stats().Fleet
		return fh != nil && fh.Down >= 1
	}); !ok {
		t.Error("stats fleet section never reported the down peer")
	}

	// Restore: ownership must return to the recovered peer once its
	// breaker half-opens and re-closes (OpenFor + one probe).
	plan.Restore(victim.url)
	elapsed, ok = pollUntil(10*probeInterval, func() bool {
		return reps[0].srv.fleet.Owner(victimKey) == victim.url &&
			victim2.srv.fleet.Owner(victimKey) == victim.url
	})
	if !ok {
		t.Fatalf("ownership never returned after restore (waited %v)", elapsed)
	}
	t.Logf("recovery re-converged in %v", elapsed)

	// Episode 2: kill the third replica (connections refused — the
	// fast failure mode; proxy outcomes drive the breaker without
	// waiting for probes).
	plan.Kill(victim2.url)
	elapsed, ok = pollUntil(3*probeInterval+500*time.Millisecond, func() bool {
		return reps[0].srv.fleet.StateOf(victim2.url) == cluster.StateOpen
	})
	if !ok {
		t.Fatalf("killed peer's breaker never opened (waited %v)", elapsed)
	}
	plan.Restore(victim2.url)
	if _, ok = pollUntil(10*probeInterval, func() bool {
		for _, r := range reps {
			for _, ps := range r.srv.fleet.PeerStates() {
				if ps.State != cluster.StateClosed {
					return false
				}
			}
		}
		return true
	}); !ok {
		t.Fatal("fleet never fully re-converged after the last restore")
	}

	close(stop)
	traffic.Wait()
	if served.Load() < 20 {
		t.Errorf("only %d traffic requests completed during the run", served.Load())
	}

	// The failure-management metrics saw the run: at least one breaker
	// opened and at least one hedge launched fleet-wide.
	var opened, hedged uint64
	for _, r := range reps {
		opened += r.srv.obs.PeerOpened.Value()
		hedged += r.srv.obs.HedgeLaunched.Value()
	}
	if opened == 0 {
		t.Error("no breaker open transition was counted")
	}
	if hedged == 0 {
		t.Error("no hedge launch was counted")
	}

	// The Prometheus surface exposes the new families.
	var metrics strings.Builder
	for _, r := range reps {
		resp, merr := http.Get(r.url + "/metrics")
		if merr != nil {
			t.Fatal(merr)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics.Write(b)
	}
	for _, want := range []string{
		"netart_peer_state{",
		`netart_peer_transitions_total{to="open"}`,
		"netart_proxy_hedge_total{",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSingleflightCollapsesProxiedRequest: concurrent identical cold
// requests for a peer-owned key collapse into one singleflight leader
// whose single proxied call serves every follower — one network hop
// and one pipeline run fleet-wide for N concurrent clients.
func TestSingleflightCollapsesProxiedRequest(t *testing.T) {
	const N = 8
	reps := startFleet(t, 2, Config{Workers: N, QueueDepth: 2 * N, CacheEntries: 64})
	req, key := chainOwnedBy(t, reps[0].srv, reps[1].url)

	reps[0].srv.flightHook = func() {
		deadline := time.Now().Add(10 * time.Second)
		for reps[0].srv.flight.Waiters(key) < N-1 {
			if time.Now().After(deadline) {
				t.Errorf("only %d followers joined before the leader proxied", reps[0].srv.flight.Waiters(key))
				return
			}
			runtime.Gosched()
		}
	}

	ctx := context.Background()
	responses := make([]*ResponseV2, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, gerr := reps[0].srv.GenerateV2(ctx, req)
			if gerr != nil {
				t.Errorf("request %d: %v", i, gerr)
				return
			}
			responses[i] = r
		}(i)
	}
	wg.Wait()

	if got := reps[0].srv.obs.SFLeader.Value(); got != 1 {
		t.Errorf("leader count = %d, want 1", got)
	}
	if got := reps[0].srv.obs.SFShared.Value(); got != N-1 {
		t.Errorf("shared count = %d, want %d", got, N-1)
	}
	if got := reps[0].srv.obs.PeerProxied.Value(); got != 1 {
		t.Errorf("proxied count = %d, want 1 (followers must ride the leader's hop)", got)
	}
	// The pipeline ran exactly once, on the owner.
	if got := reps[0].srv.Stats().Stages["route"].Count; got != 0 {
		t.Errorf("non-owner ran the pipeline %d times", got)
	}
	if got := reps[1].srv.Stats().Stages["route"].Count; got != 1 {
		t.Errorf("owner ran the pipeline %d times, want 1", got)
	}
	var base string
	for i, r := range responses {
		if r == nil {
			continue
		}
		b := string(normalizeResp(t, r))
		if base == "" {
			base = b
		} else if b != base {
			t.Fatalf("response %d differs from the shared result", i)
		}
	}
}

// TestSingleflightFollowersSurviveOpenBreaker: the owner dies while a
// crowd is collapsed behind one singleflight leader. The leader's
// proxy failures open the breaker, the leader falls back to local
// computation, every follower shares that result, and subsequent
// ownership has remapped to the survivor.
func TestSingleflightFollowersSurviveOpenBreaker(t *testing.T) {
	const N = 4
	plan := cluster.NewFaultPlan(1)
	reps := startFleet(t, 2, Config{
		Workers:           N,
		QueueDepth:        2 * N,
		CacheEntries:      64,
		PeerProbeInterval: -1, // no prober: proxy outcomes alone drive the breaker
		PeerFailThreshold: 2,
		PeerFaults:        plan,
	})
	req, key := chainOwnedBy(t, reps[0].srv, reps[1].url)
	plan.Kill(reps[1].url)

	reps[0].srv.flightHook = func() {
		deadline := time.Now().Add(10 * time.Second)
		for reps[0].srv.flight.Waiters(key) < N-1 {
			if time.Now().After(deadline) {
				t.Errorf("only %d followers joined", reps[0].srv.flight.Waiters(key))
				return
			}
			runtime.Gosched()
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, gerr := reps[0].srv.GenerateV2(ctx, req)
			if gerr != nil {
				t.Errorf("request %d failed though the fallback should serve it: %v", i, gerr)
				return
			}
			if resp.Diagram == "" {
				t.Errorf("request %d: empty artwork", i)
			}
		}(i)
	}
	wg.Wait()

	// The leader's one proxy call burned both retry attempts against
	// the killed owner — exactly the fail threshold — so the breaker is
	// open and the fallback was counted.
	if got := reps[0].srv.fleet.StateOf(reps[1].url); got != cluster.StateOpen {
		t.Errorf("owner breaker state = %v, want open", got)
	}
	if got := reps[0].srv.obs.PeerFallback.Value(); got != 1 {
		t.Errorf("fallback count = %d, want 1", got)
	}
	if got := reps[0].srv.obs.SFShared.Value(); got != N-1 {
		t.Errorf("shared count = %d, want %d", got, N-1)
	}
	// With the only remote peer down and no prober to ever half-open
	// it, the survivor owns everything — including the key that opened
	// the breaker.
	if owner := reps[0].srv.fleet.Owner(key); owner != reps[0].url {
		t.Errorf("key still owned by %s after the breaker opened", owner)
	}
}
