package service

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// updateSurface rewrites the API-surface golden fixture; run
//
//	go test ./internal/service -run TestAPISurface -update
//
// after an intentional contract change and commit the diff.
var updateSurface = flag.Bool("update", false, "rewrite testdata/api_surface.golden")

// surfaceRoots maps the routes() Response names to their Go types so
// the golden fixture pins the wire shapes, not just the paths. The
// error envelope rides along: every endpoint can produce it.
func surfaceRoots() map[string]reflect.Type {
	return map[string]reflect.Type{
		"Response":        reflect.TypeOf(Response{}),
		"ResponseV2":      reflect.TypeOf(ResponseV2{}),
		"BatchResponse":   reflect.TypeOf(BatchResponse{}),
		"BatchResponseV2": reflect.TypeOf(BatchResponseV2{}),
		"SubmitResponse":  reflect.TypeOf(SubmitResponse{}),
		"JobStatus":       reflect.TypeOf(JobStatus{}),
		"HealthResponse":  reflect.TypeOf(HealthResponse{}),
		"StatsResponse":   reflect.TypeOf(StatsResponse{}),
		"ErrorResponse":   reflect.TypeOf(ErrorResponse{}),
	}
}

// renderSurface serializes the HTTP surface: the routes() table first,
// then every reachable response struct with its JSON field names and
// types, in deterministic order. Any drift — a new route, a renamed
// field, a type change — shows up as a one-line diff.
func renderSurface(s *Server) string {
	var b strings.Builder
	b.WriteString("# netartd HTTP API surface. Regenerate with:\n")
	b.WriteString("#   go test ./internal/service -run TestAPISurface -update\n\n")
	b.WriteString("[routes]\n")
	for _, rt := range s.routes() {
		fmt.Fprintf(&b, "%-11s %-24s -> %s\n",
			strings.Join(rt.Methods, ","), rt.Pattern, rt.Response)
	}

	roots := surfaceRoots()
	// Walk breadth-first from the named roots; collect every struct
	// type in this package that can appear on the wire.
	shapes := map[string]reflect.Type{}
	var queue []reflect.Type
	names := make([]string, 0, len(roots))
	for n := range roots {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		queue = append(queue, roots[n])
	}
	selfPkg := reflect.TypeOf(Response{}).PkgPath()
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		t = deref(t)
		if t.Kind() != reflect.Struct || t.PkgPath() != selfPkg || t.Name() == "" {
			continue
		}
		if _, seen := shapes[t.Name()]; seen {
			continue
		}
		shapes[t.Name()] = t
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			queue = append(queue, f.Type)
		}
	}

	shapeNames := make([]string, 0, len(shapes))
	for n := range shapes {
		shapeNames = append(shapeNames, n)
	}
	sort.Strings(shapeNames)
	for _, n := range shapeNames {
		t := shapes[n]
		fmt.Fprintf(&b, "\n[%s]\n", n)
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag, opts, _ := strings.Cut(f.Tag.Get("json"), ",")
			if tag == "-" {
				continue
			}
			if tag == "" {
				tag = f.Name
			}
			suffix := ""
			if strings.Contains(opts, "omitempty") {
				suffix = " omitempty"
			}
			fmt.Fprintf(&b, "%-16s %s%s\n", tag, typeName(f.Type, selfPkg), suffix)
		}
	}
	return b.String()
}

func deref(t reflect.Type) reflect.Type {
	for t.Kind() == reflect.Pointer || t.Kind() == reflect.Slice ||
		t.Kind() == reflect.Array || t.Kind() == reflect.Map {
		t = t.Elem()
	}
	return t
}

// typeName renders a field type with this package's qualifier dropped,
// so the fixture reads "[]BatchItem" rather than "[]service.BatchItem".
func typeName(t reflect.Type, selfPkg string) string {
	s := t.String()
	self := filepath.Base(selfPkg) + "."
	return strings.ReplaceAll(s, self, "")
}

// TestAPISurface pins the public HTTP contract: the route table and
// every response shape must match testdata/api_surface.golden exactly.
// This is the CI tripwire for accidental API changes — intentional
// ones regenerate the fixture with -update and review the diff.
func TestAPISurface(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	got := renderSurface(s)

	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateSurface {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("API surface drifted from %s — if intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
