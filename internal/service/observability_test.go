package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed Prometheus sample: a metric name plus its
// sorted label pairs.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// key renders the sample identity as name{k="v",...} with sorted keys.
func (s promSample) key() string {
	if len(s.labels) == 0 {
		return s.name
	}
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	// insertion sort (tiny label sets)
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// parsePromText parses Prometheus text exposition format strictly:
// every non-comment line must be `name[{labels}] value`, every sample's
// family must have been announced by # TYPE, and histogram bucket
// series must be cumulative. Returns samples keyed by identity.
func parsePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := parsePromLine(t, line)
		base := sp.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(sp.name, suffix); fam != sp.name && types[fam] == "histogram" {
				base = fam
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no # TYPE announcement", line)
		}
		k := sp.key()
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate sample %q", k)
		}
		out[k] = sp.value
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	sp := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		sp.name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			t.Fatalf("malformed labels in %q", line)
		}
		for _, kv := range strings.Split(rest[i+1:j], ",") {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				t.Fatalf("malformed label %q in %q", kv, line)
			}
			val, err := strconv.Unquote(kv[eq+1:])
			if err != nil {
				t.Fatalf("unquotable label value %q in %q: %v", kv, line, err)
			}
			sp.labels[kv[:eq]] = val
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		f := strings.Fields(rest)
		if len(f) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		sp.name, rest = f[0], f[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("unparsable value in %q: %v", line, err)
	}
	sp.value = v
	return sp
}

// TestMetricsEndpoint drives real traffic (a fresh generate, a cache
// hit, a rejected workload) and asserts /metrics is well-formed
// Prometheus text carrying per-stage latency histograms plus cache,
// outcome and panic counters — and that the numbers agree exactly with
// /v1/stats, the single-source-of-truth acceptance gate.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 8})

	req := Request{Workload: "fig61", Format: FormatSummary, Options: GenOptions{PartSize: 6, BoxSize: 6}}
	for i := 0; i < 2; i++ { // second request hits the cache
		if resp, body := postJSON(t, ts.URL+"/v1/generate", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("generate status %d: %s", resp.StatusCode, body)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/generate", Request{Workload: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload status = %d, want 400", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	samples := parsePromText(t, readAll(t, mr))

	// Per-stage histograms: count > 0 for every pipeline stage, and the
	// +Inf bucket equals the count (cumulative buckets).
	for _, stage := range []string{"parse", "place", "route", "render", "total"} {
		count := samples[fmt.Sprintf(`netart_stage_duration_seconds_count{stage=%q}`, stage)]
		if count == 0 {
			t.Errorf("stage %q histogram has zero observations", stage)
		}
		inf := samples[fmt.Sprintf(`netart_stage_duration_seconds_bucket{le="+Inf",stage=%q}`, stage)]
		if inf != count {
			t.Errorf("stage %q +Inf bucket = %v, want count %v", stage, inf, count)
		}
	}

	// Cache, outcome, and panic counters.
	if hits := samples[`netart_cache_events_total{event="hit"}`]; hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
	if misses := samples[`netart_cache_events_total{event="miss"}`]; misses < 1 {
		t.Errorf("cache misses = %v, want >= 1", misses)
	}
	if ok := samples[`netart_request_outcomes_total{outcome="ok"}`]; ok != 2 {
		t.Errorf("ok outcomes = %v, want 2", ok)
	}
	if _, present := samples["netart_panics_recovered_total"]; !present {
		t.Error("netart_panics_recovered_total missing from /metrics")
	}
	if _, present := samples["netart_uptime_seconds"]; !present {
		t.Error("netart_uptime_seconds missing from /metrics")
	}

	// Single source of truth: /v1/stats must report the same numbers
	// the Prometheus surface exports.
	stats := s.Stats()
	if got := samples["netart_requests_total"]; got != float64(stats.Requests) {
		t.Errorf("requests: /metrics %v vs /v1/stats %d", got, stats.Requests)
	}
	if got := samples[`netart_request_outcomes_total{outcome="ok"}`]; got != float64(stats.OK) {
		t.Errorf("ok: /metrics %v vs /v1/stats %d", got, stats.OK)
	}
	if got := samples[`netart_cache_events_total{event="hit"}`]; got != float64(stats.Cache.Hits) {
		t.Errorf("cache hits: /metrics %v vs /v1/stats %d", got, stats.Cache.Hits)
	}
	for _, stage := range []string{"place", "route", "total"} {
		got := samples[fmt.Sprintf(`netart_stage_duration_seconds_count{stage=%q}`, stage)]
		if got != float64(stats.Stages[stage].Count) {
			t.Errorf("stage %q count: /metrics %v vs /v1/stats %d", stage, got, stats.Stages[stage].Count)
		}
	}
}

func readAll(t *testing.T, r *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// TestV2GenerateReportAndTraceHeader asserts /v2/generate embeds the
// full generation report — stage timings, routing attempts, search
// counters, span tree — and stamps X-Netart-Trace-Id to match it.
func TestV2GenerateReportAndTraceHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 0})

	httpResp, body := postJSON(t, ts.URL+"/v2/generate", Request{
		Workload: "fig61", Format: FormatASCII, Options: GenOptions{PartSize: 6, BoxSize: 6}})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", httpResp.StatusCode, body)
	}
	var v2 ResponseV2
	if err := json.Unmarshal(body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Report.Timings.Place <= 0 || v2.Report.Timings.Route <= 0 {
		t.Errorf("report timings not filled: %+v", v2.Report.Timings)
	}
	if len(v2.Report.Attempts) == 0 {
		t.Error("report carries no routing attempts")
	}
	if v2.Report.Search.Searches == 0 {
		t.Errorf("report search counters empty: %+v", v2.Report.Search)
	}
	tr := v2.Report.Trace
	if tr == nil || tr.TraceID == "" {
		t.Fatal("report carries no trace")
	}
	for _, stage := range []string{"request", "parse", "place", "route", "render"} {
		if tr.Find(stage) == nil {
			t.Errorf("span %q missing from trace tree", stage)
		}
	}
	if got := httpResp.Header.Get("X-Netart-Trace-Id"); got != tr.TraceID {
		t.Errorf("trace header = %q, want %q", got, tr.TraceID)
	}

	// The raw /v2 body has a "report" object; /v1 must not.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["report"]; !ok {
		t.Error(`/v2 body missing "report"`)
	}

	v1Resp, v1Body := postJSON(t, ts.URL+"/v1/generate", Request{
		Workload: "fig61", Format: FormatASCII, Options: GenOptions{PartSize: 6, BoxSize: 6}})
	if v1Resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 status %d: %s", v1Resp.StatusCode, v1Body)
	}
	if v1Resp.Header.Get("X-Netart-Trace-Id") == "" {
		t.Error("v1 response missing trace header")
	}
	var rawV1 map[string]json.RawMessage
	if err := json.Unmarshal(v1Body, &rawV1); err != nil {
		t.Fatal(err)
	}
	if _, ok := rawV1["report"]; ok {
		t.Error(`/v1 body unexpectedly carries "report"`)
	}
	for _, key := range []string{"stages", "diagram", "metrics", "cache_key"} {
		if _, ok := rawV1[key]; !ok {
			t.Errorf("/v1 body missing %q", key)
		}
	}
}

// TestV1V2AdapterEquivalence asserts the v1 shape is exactly the v2
// response minus the report: same diagram, metrics, cache key, and the
// v1 "stages" equal the v2 report timings — the adapter cannot drift
// because it is derived, and this test pins the derivation.
func TestV1V2AdapterEquivalence(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0})
	defer s.Close()

	v2, err := s.GenerateV2(context.Background(), &Request{
		Workload: "datapath", Format: FormatSummary})
	if err != nil {
		t.Fatal(err)
	}
	v1 := v2.V1()
	if v1.Name != v2.Name || v1.Format != v2.Format || v1.Diagram != v2.Diagram {
		t.Error("identity fields differ between v1 and v2")
	}
	if !reflect.DeepEqual(v1.Metrics, v2.Metrics) {
		t.Errorf("metrics differ: %+v vs %+v", v1.Metrics, v2.Metrics)
	}
	if v1.Unrouted != v2.Unrouted || v1.Cached != v2.Cached || v1.CacheKey != v2.CacheKey {
		t.Error("routing/cache fields differ between v1 and v2")
	}
	if v1.ElapsedMs != v2.ElapsedMs {
		t.Errorf("elapsed differs: %v vs %v", v1.ElapsedMs, v2.ElapsedMs)
	}
	if v1.Stages != v2.Report.Timings {
		t.Errorf("v1 stages %+v != v2 report timings %+v", v1.Stages, v2.Report.Timings)
	}
	if !reflect.DeepEqual(v1.Degraded, v2.Report.Degraded) {
		t.Errorf("degraded blocks differ: %+v vs %+v", v1.Degraded, v2.Report.Degraded)
	}
}

// TestBatchV2 exercises /v2/batch: good items carry reports with
// traces, bad items carry per-item errors, order is preserved.
func TestBatchV2(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 0})

	httpResp, body := postJSON(t, ts.URL+"/v2/batch", BatchRequest{
		Requests: []Request{
			{Workload: "fig61", Format: FormatSummary, Options: GenOptions{PartSize: 6, BoxSize: 6}},
			{Workload: "nope"},
		},
	})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", httpResp.StatusCode, body)
	}
	var batch BatchResponseV2
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(batch.Results))
	}
	good := batch.Results[0]
	if good.Response == nil || good.Status != http.StatusOK {
		t.Fatalf("item 0 = %+v, want ok", good)
	}
	if good.Response.Report.Trace == nil {
		t.Error("batch item report carries no trace")
	}
	bad := batch.Results[1]
	if bad.Error == "" || bad.Status != http.StatusBadRequest {
		t.Errorf("item 1 = %+v, want 400 with error", bad)
	}
}
