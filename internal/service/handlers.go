package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"netart/internal/obs"
	"netart/internal/resilience"
	"netart/internal/store/cluster"
)

// maxBatchItems bounds one batch call; bigger batches should be split
// client-side so the queue-based load shedding stays meaningful.
const maxBatchItems = 64

// apiRoute is one row of the public HTTP surface. The routes() table
// is the single source of truth: Handler() registers exactly these
// rows (with method dispatch derived from Methods), and the
// API-surface golden test pins the table plus the response shapes so
// an accidental route or contract change fails CI.
type apiRoute struct {
	// Pattern is the ServeMux pattern ({id} wildcards allowed).
	Pattern string
	// Methods lists the accepted HTTP methods; anything else answers
	// 405 with the JSON error envelope and an Allow header.
	Methods []string
	// Response names the top-level response type (golden fixture key).
	Response string
	handler  http.HandlerFunc
}

// routes declares the daemon's HTTP surface:
//
//	POST   /v1/generate         one generation request (stable wire shape)
//	POST   /v1/batch            up to 64 requests fanned out over the pool
//	POST   /v2/generate         like /v1 but the response embeds the full
//	                            generation report (timings, attempts,
//	                            search counters, degradation, span tree)
//	POST   /v2/batch            the /v2 shape fanned out over the pool
//	POST   /v2/jobs             submit an async job → 202 + job id
//	GET    /v2/jobs/{id}        job status document (live progress)
//	DELETE /v2/jobs/{id}        cancel the job, answer its status
//	GET    /v2/jobs/{id}/events job progress + result as an SSE stream
//	GET    /v1/healthz          liveness + pool shape (+ advisories)
//	GET    /v1/stats            counters, cache stats, histograms
//	GET    /metrics             the same numbers in Prometheus text
//
// The /v1 handlers are thin adapters over the v2 pipeline: the server
// only ever produces ResponseV2 and the v1 shape is derived via
// (*ResponseV2).V1(), so the two surfaces cannot drift.
func (s *Server) routes() []apiRoute {
	return []apiRoute{
		{"/v1/generate", []string{http.MethodPost}, "Response", s.handleGenerate},
		{"/v1/batch", []string{http.MethodPost}, "BatchResponse", s.handleBatch},
		{"/v2/generate", []string{http.MethodPost}, "ResponseV2", s.handleGenerateV2},
		{"/v2/batch", []string{http.MethodPost}, "BatchResponseV2", s.handleBatchV2},
		{"/v2/jobs", []string{http.MethodPost}, "SubmitResponse", s.handleJobs},
		{"/v2/jobs/{id}", []string{http.MethodGet, http.MethodDelete}, "JobStatus", s.handleJob},
		{"/v2/jobs/{id}/events", []string{http.MethodGet}, "text/event-stream", s.handleJobEvents},
		{"/v1/healthz", []string{http.MethodGet}, "HealthResponse", s.handleHealthz},
		{"/v1/stats", []string{http.MethodGet}, "StatsResponse", s.handleStats},
		{"/metrics", []string{http.MethodGet}, "text/plain", s.obs.Reg.Handler().ServeHTTP},
	}
}

// Handler builds the daemon's http.Handler from the routes() table.
// Method dispatch happens here — patterns carry no method prefix — so
// a wrong-method call gets the JSON error envelope, not the mux's
// plain-text 405; unknown paths likewise answer a JSON 404.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		rt := rt
		mux.HandleFunc(rt.Pattern, func(w http.ResponseWriter, r *http.Request) {
			if !methodAllowed(rt.Methods, r.Method) {
				w.Header().Set("Allow", strings.Join(rt.Methods, ", "))
				writeErrorStatus(w, http.StatusMethodNotAllowed,
					"use "+strings.Join(rt.Methods, " or "))
				return
			}
			rt.handler(w, r)
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErrorStatus(w, http.StatusNotFound, "unknown endpoint "+r.URL.Path)
	})
	return mux
}

func methodAllowed(methods []string, m string) bool {
	for _, a := range methods {
		if a == m {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErrorStatus writes the unified error envelope every non-2xx
// JSON response across /v1 and /v2 shares: {error, code, trace_id},
// with the trace id duplicated in the X-Netart-Trace-Id header. Code
// repeats the HTTP status so batch items and proxied errors keep it
// when the transport status is lost. The trace id is edge-generated —
// errors surface before or instead of the traced pipeline — so it
// correlates log lines about this failure, not a span tree.
func writeErrorStatus(w http.ResponseWriter, status int, msg string) {
	id := obs.NewTraceID()
	w.Header().Set(traceHeader, id)
	writeJSON(w, status, ErrorResponse{Error: msg, Code: status, TraceID: id})
}

func writeError(w http.ResponseWriter, err error) {
	var se *svcError
	if errors.As(err, &se) {
		writeErrorStatus(w, se.status, se.msg)
		return
	}
	writeErrorStatus(w, http.StatusInternalServerError, err.Error())
}

// decodeBody reads a JSON body under the configured size cap; an
// oversized body becomes a clean 413 before any of it is parsed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &svcError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	return nil
}

// requirePost is a defense-in-depth check for handlers invoked
// outside Handler()'s method dispatch (direct tests, embedders).
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErrorStatus(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

// traceHeader is set on every successful generate response (v1 and v2)
// so callers can correlate a response with server-side trace output
// without parsing the body.
const traceHeader = "X-Netart-Trace-Id"

// generateV2 is the shared core of both generate handlers: decode,
// run, stamp the trace header, and hand the v2 response to render.
func (s *Server) generateV2(w http.ResponseWriter, r *http.Request, render func(*ResponseV2)) {
	if !requirePost(w, r) {
		return
	}
	var req Request
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	if r.Header.Get(cluster.HopHeader) != "" {
		// A peer forwarded this request here: mark the context so the
		// fleet layer computes locally instead of forwarding again.
		ctx = withPeerHop(ctx)
	}
	resp, err := s.GenerateV2(ctx, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	if id := resp.TraceID(); id != "" {
		w.Header().Set(traceHeader, id)
	}
	render(resp)
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	s.generateV2(w, r, func(resp *ResponseV2) {
		writeJSON(w, http.StatusOK, resp.V1())
	})
}

func (s *Server) handleGenerateV2(w http.ResponseWriter, r *http.Request) {
	s.generateV2(w, r, func(resp *ResponseV2) {
		writeJSON(w, http.StatusOK, resp)
	})
}

// retryPolicy derives the batch backoff schedule from the config.
func (s *Server) retryPolicy() resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: 1 + s.cfg.BatchRetries,
		BaseDelay:   s.cfg.RetryBase,
		MaxDelay:    s.cfg.RetryMax,
	}
}

// statusOf extracts the HTTP status an error maps to (500 fallback).
func statusOf(err error) int {
	var se *svcError
	if errors.As(err, &se) {
		return se.status
	}
	return http.StatusInternalServerError
}

// retryableBatch classifies a batch-item failure: retry injected
// faults and injected panics (the error chain says Transient), shed
// items (429 — the queue may have drained by the next attempt), and
// in-pool timeouts whose parent request is still alive. Permanent
// failures — bad requests, resource caps, genuine panics — fail the
// item immediately.
func retryableBatch(parent interface{ Err() error }) func(error) bool {
	return func(err error) bool {
		if resilience.IsTransient(err) {
			return true
		}
		switch statusOf(err) {
		case http.StatusTooManyRequests:
			return true
		case http.StatusGatewayTimeout:
			return parent.Err() == nil
		}
		return false
	}
}

// runBatch fans the items out over the worker pool concurrently and
// reports per-item outcomes in request order. Items shed by the full
// queue fail individually with 429 — one oversized batch cannot wedge
// the daemon. Transient item failures are retried with exponential
// backoff and jitter, bounded by Config.BatchRetries; the per-item
// attempt count is reported so callers can see the retry spend.
// Returns a client error (to report whole-batch) or the item results.
func (s *Server) runBatch(w http.ResponseWriter, r *http.Request) ([]BatchItemV2, error) {
	var batch BatchRequest
	if err := s.decodeBody(w, r, &batch); err != nil {
		return nil, err
	}
	if len(batch.Requests) == 0 {
		return nil, badRequest("batch carries no requests")
	}
	if len(batch.Requests) > maxBatchItems {
		return nil, badRequest("batch carries %d requests (max %d)", len(batch.Requests), maxBatchItems)
	}
	policy := s.retryPolicy()
	classify := retryableBatch(r.Context())
	results := make([]BatchItemV2, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp *ResponseV2
			attempts, err := resilience.Retry(r.Context(), policy, classify, rand.Float64,
				func(attempt int) error {
					if attempt > 1 {
						s.obs.Retries.Inc()
					}
					var gerr error
					resp, gerr = s.GenerateV2(r.Context(), &batch.Requests[i])
					return gerr
				})
			if err != nil {
				results[i] = BatchItemV2{Error: err.Error(), Status: statusOf(err), Attempts: attempts}
				return
			}
			results[i] = BatchItemV2{Response: resp, Status: http.StatusOK, Attempts: attempts}
		}(i)
	}
	wg.Wait()
	return results, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	items, err := s.runBatch(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	out := BatchResponse{Results: make([]BatchItem, len(items))}
	for i, it := range items {
		out.Results[i] = it.V1()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	items, err := s.runBatch(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponseV2{Results: items})
}

// handleHealthz reports liveness plus an advisory health grade: the
// status degrades (still HTTP 200 — the daemon is alive and serving)
// when the queue is over 80% full or any panic has been recovered
// since start. Orchestrators that want to act on degradation read
// Status/Reasons instead of the HTTP code. The panic count and uptime
// come from the shared obs metric set, so healthz, /v1/stats and
// /metrics always agree.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued := s.pool.queued()
	panics := s.obs.Panics.Value()
	status := "ok"
	var reasons []string
	if s.cfg.QueueDepth > 0 && queued*5 > s.cfg.QueueDepth*4 {
		status = "degraded"
		reasons = append(reasons, fmt.Sprintf("queue %d/%d over 80%% full", queued, s.cfg.QueueDepth))
	}
	if panics > 0 {
		status = "degraded"
		reasons = append(reasons, fmt.Sprintf("%d panic(s) recovered since start", panics))
	}
	var sh *StoreHealth
	if s.cache.backend != nil {
		sh = &StoreHealth{
			Backend:    s.cache.backing,
			Entries:    s.cache.len(),
			Bytes:      s.cache.bytes(),
			DiskErrors: s.cache.diskErrors(),
		}
		if sh.DiskErrors > 0 {
			// The disk tier is misbehaving (I/O failures or corrupt
			// entries); requests still succeed — the memory tier and
			// recomputation keep serving — so this is advisory.
			status = "degraded"
			reasons = append(reasons, fmt.Sprintf(
				"store: %d disk error(s); memory tier still serving", sh.DiskErrors))
		}
	}
	fh := s.fleetHealth()
	if fh != nil && fh.Down > 0 {
		// Down peers are advisory for the same reason disk errors are:
		// their keys remap to live replicas, so requests still serve.
		status = "degraded"
		reasons = append(reasons, fmt.Sprintf(
			"fleet: %d peer(s) down; their keys remapped to live replicas", fh.Down))
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  status,
		Workers: s.cfg.Workers,
		Queue:   s.cfg.QueueDepth,
		Queued:  queued,
		Panics:  panics,
		Reasons: reasons,
		Store:   sh,
		Fleet:   fh,
		UptimeS: time.Since(s.stats.start()).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
