package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// maxBodyBytes bounds request bodies; inline netlists larger than this
// are rejected with 413 before parsing.
const maxBodyBytes = 8 << 20

// maxBatchItems bounds one batch call; bigger batches should be split
// client-side so the queue-based load shedding stays meaningful.
const maxBatchItems = 64

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/generate  one generation request
//	POST /v1/batch     up to 64 requests fanned out over the pool
//	GET  /v1/healthz   liveness + pool shape
//	GET  /v1/stats     counters, cache stats, latency histograms
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var se *svcError
	if errors.As(err, &se) {
		writeJSON(w, se.status, ErrorResponse{Error: se.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &svcError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", maxBodyBytes)}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	return nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
		return false
	}
	return true
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req Request
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Generate(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch fans the items out over the worker pool concurrently and
// reports per-item outcomes in request order. Items shed by the full
// queue fail individually with 429 — one oversized batch cannot wedge
// the daemon.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var batch BatchRequest
	if err := decodeBody(w, r, &batch); err != nil {
		writeError(w, err)
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, badRequest("batch carries no requests"))
		return
	}
	if len(batch.Requests) > maxBatchItems {
		writeError(w, badRequest("batch carries %d requests (max %d)", len(batch.Requests), maxBatchItems))
		return
	}
	results := make([]BatchItem, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Generate(r.Context(), &batch.Requests[i])
			if err != nil {
				status := http.StatusInternalServerError
				var se *svcError
				if errors.As(err, &se) {
					status = se.status
				}
				results[i] = BatchItem{Error: err.Error(), Status: status}
				return
			}
			results[i] = BatchItem{Response: resp, Status: http.StatusOK}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Workers: s.cfg.Workers,
		Queue:   s.cfg.QueueDepth,
		UptimeS: time.Since(s.stats.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
