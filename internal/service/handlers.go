package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"netart/internal/resilience"
	"netart/internal/store/cluster"
)

// maxBatchItems bounds one batch call; bigger batches should be split
// client-side so the queue-based load shedding stays meaningful.
const maxBatchItems = 64

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/generate  one generation request (stable wire shape)
//	POST /v1/batch     up to 64 requests fanned out over the pool
//	POST /v2/generate  like /v1 but the response embeds the full
//	                   generation report (timings, attempts, search
//	                   counters, degradation, span tree)
//	POST /v2/batch     the /v2 shape fanned out over the pool
//	GET  /v1/healthz   liveness + pool shape (+ degraded advisories)
//	GET  /v1/stats     counters, cache stats, latency histograms
//	GET  /metrics      the same numbers in Prometheus text format
//
// The /v1 handlers are thin adapters over the v2 pipeline: the server
// only ever produces ResponseV2 and the v1 shape is derived via
// (*ResponseV2).V1(), so the two surfaces cannot drift.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v2/generate", s.handleGenerateV2)
	mux.HandleFunc("/v2/batch", s.handleBatchV2)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.Handle("/metrics", s.obs.Reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var se *svcError
	if errors.As(err, &se) {
		writeJSON(w, se.status, ErrorResponse{Error: se.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
}

// decodeBody reads a JSON body under the configured size cap; an
// oversized body becomes a clean 413 before any of it is parsed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &svcError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	return nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
		return false
	}
	return true
}

// traceHeader is set on every successful generate response (v1 and v2)
// so callers can correlate a response with server-side trace output
// without parsing the body.
const traceHeader = "X-Netart-Trace-Id"

// generateV2 is the shared core of both generate handlers: decode,
// run, stamp the trace header, and hand the v2 response to render.
func (s *Server) generateV2(w http.ResponseWriter, r *http.Request, render func(*ResponseV2)) {
	if !requirePost(w, r) {
		return
	}
	var req Request
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	if r.Header.Get(cluster.HopHeader) != "" {
		// A peer forwarded this request here: mark the context so the
		// fleet layer computes locally instead of forwarding again.
		ctx = withPeerHop(ctx)
	}
	resp, err := s.GenerateV2(ctx, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	if id := resp.TraceID(); id != "" {
		w.Header().Set(traceHeader, id)
	}
	render(resp)
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	s.generateV2(w, r, func(resp *ResponseV2) {
		writeJSON(w, http.StatusOK, resp.V1())
	})
}

func (s *Server) handleGenerateV2(w http.ResponseWriter, r *http.Request) {
	s.generateV2(w, r, func(resp *ResponseV2) {
		writeJSON(w, http.StatusOK, resp)
	})
}

// retryPolicy derives the batch backoff schedule from the config.
func (s *Server) retryPolicy() resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: 1 + s.cfg.BatchRetries,
		BaseDelay:   s.cfg.RetryBase,
		MaxDelay:    s.cfg.RetryMax,
	}
}

// statusOf extracts the HTTP status an error maps to (500 fallback).
func statusOf(err error) int {
	var se *svcError
	if errors.As(err, &se) {
		return se.status
	}
	return http.StatusInternalServerError
}

// retryableBatch classifies a batch-item failure: retry injected
// faults and injected panics (the error chain says Transient), shed
// items (429 — the queue may have drained by the next attempt), and
// in-pool timeouts whose parent request is still alive. Permanent
// failures — bad requests, resource caps, genuine panics — fail the
// item immediately.
func retryableBatch(parent interface{ Err() error }) func(error) bool {
	return func(err error) bool {
		if resilience.IsTransient(err) {
			return true
		}
		switch statusOf(err) {
		case http.StatusTooManyRequests:
			return true
		case http.StatusGatewayTimeout:
			return parent.Err() == nil
		}
		return false
	}
}

// runBatch fans the items out over the worker pool concurrently and
// reports per-item outcomes in request order. Items shed by the full
// queue fail individually with 429 — one oversized batch cannot wedge
// the daemon. Transient item failures are retried with exponential
// backoff and jitter, bounded by Config.BatchRetries; the per-item
// attempt count is reported so callers can see the retry spend.
// Returns a client error (to report whole-batch) or the item results.
func (s *Server) runBatch(w http.ResponseWriter, r *http.Request) ([]BatchItemV2, error) {
	var batch BatchRequest
	if err := s.decodeBody(w, r, &batch); err != nil {
		return nil, err
	}
	if len(batch.Requests) == 0 {
		return nil, badRequest("batch carries no requests")
	}
	if len(batch.Requests) > maxBatchItems {
		return nil, badRequest("batch carries %d requests (max %d)", len(batch.Requests), maxBatchItems)
	}
	policy := s.retryPolicy()
	classify := retryableBatch(r.Context())
	results := make([]BatchItemV2, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp *ResponseV2
			attempts, err := resilience.Retry(r.Context(), policy, classify, rand.Float64,
				func(attempt int) error {
					if attempt > 1 {
						s.obs.Retries.Inc()
					}
					var gerr error
					resp, gerr = s.GenerateV2(r.Context(), &batch.Requests[i])
					return gerr
				})
			if err != nil {
				results[i] = BatchItemV2{Error: err.Error(), Status: statusOf(err), Attempts: attempts}
				return
			}
			results[i] = BatchItemV2{Response: resp, Status: http.StatusOK, Attempts: attempts}
		}(i)
	}
	wg.Wait()
	return results, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	items, err := s.runBatch(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	out := BatchResponse{Results: make([]BatchItem, len(items))}
	for i, it := range items {
		out.Results[i] = it.V1()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	items, err := s.runBatch(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponseV2{Results: items})
}

// handleHealthz reports liveness plus an advisory health grade: the
// status degrades (still HTTP 200 — the daemon is alive and serving)
// when the queue is over 80% full or any panic has been recovered
// since start. Orchestrators that want to act on degradation read
// Status/Reasons instead of the HTTP code. The panic count and uptime
// come from the shared obs metric set, so healthz, /v1/stats and
// /metrics always agree.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued := s.pool.queued()
	panics := s.obs.Panics.Value()
	status := "ok"
	var reasons []string
	if s.cfg.QueueDepth > 0 && queued*5 > s.cfg.QueueDepth*4 {
		status = "degraded"
		reasons = append(reasons, fmt.Sprintf("queue %d/%d over 80%% full", queued, s.cfg.QueueDepth))
	}
	if panics > 0 {
		status = "degraded"
		reasons = append(reasons, fmt.Sprintf("%d panic(s) recovered since start", panics))
	}
	var sh *StoreHealth
	if s.cache.backend != nil {
		sh = &StoreHealth{
			Backend:    s.cache.backing,
			Entries:    s.cache.len(),
			Bytes:      s.cache.bytes(),
			DiskErrors: s.cache.diskErrors(),
		}
		if sh.DiskErrors > 0 {
			// The disk tier is misbehaving (I/O failures or corrupt
			// entries); requests still succeed — the memory tier and
			// recomputation keep serving — so this is advisory.
			status = "degraded"
			reasons = append(reasons, fmt.Sprintf(
				"store: %d disk error(s); memory tier still serving", sh.DiskErrors))
		}
	}
	fh := s.fleetHealth()
	if fh != nil && fh.Down > 0 {
		// Down peers are advisory for the same reason disk errors are:
		// their keys remap to live replicas, so requests still serve.
		status = "degraded"
		reasons = append(reasons, fmt.Sprintf(
			"fleet: %d peer(s) down; their keys remapped to live replicas", fh.Down))
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  status,
		Workers: s.cfg.Workers,
		Queue:   s.cfg.QueueDepth,
		Queued:  queued,
		Panics:  panics,
		Reasons: reasons,
		Store:   sh,
		Fleet:   fh,
		UptimeS: time.Since(s.stats.start()).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
