package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

// doRaw performs one request with full control over method and body.
func doRaw(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// checkEnvelope asserts one non-2xx response carries the unified
// error envelope: JSON {error, code, trace_id} with code repeating the
// HTTP status and the trace id duplicated in X-Netart-Trace-Id.
func checkEnvelope(t *testing.T, resp *http.Response, body []byte, wantStatus int) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var env ErrorResponse
	decode(t, body, &env)
	if env.Error == "" {
		t.Error("envelope carries no error message")
	}
	if env.Code != wantStatus {
		t.Errorf("envelope code %d, want %d", env.Code, wantStatus)
	}
	if env.TraceID == "" {
		t.Error("envelope carries no trace id")
	}
	if hdr := resp.Header.Get(traceHeader); hdr != env.TraceID {
		t.Errorf("trace header %q != envelope trace id %q", hdr, env.TraceID)
	}
}

// TestErrorEnvelope sweeps the error surface across /v1 and /v2: every
// non-2xx JSON response — wrong method, unknown path, malformed body,
// bad options, resource caps, oversized body, missing job — must carry
// the same {error, code, trace_id} envelope.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 2048})

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"method v1 generate", http.MethodGet, "/v1/generate", "", 405},
		{"method v2 generate", http.MethodDelete, "/v2/generate", "", 405},
		{"method v2 jobs", http.MethodDelete, "/v2/jobs", "", 405},
		{"method stats", http.MethodPost, "/v1/stats", "", 405},
		{"method job events", http.MethodPost, "/v2/jobs/abc/events", "", 405},
		{"unknown path", http.MethodGet, "/v3/rocket", "", 404},
		{"unknown job", http.MethodGet, "/v2/jobs/deadbeefdeadbeef", "", 404},
		{"unknown job delete", http.MethodDelete, "/v2/jobs/deadbeefdeadbeef", "", 404},
		{"unknown job events", http.MethodGet, "/v2/jobs/deadbeefdeadbeef/events", "", 404},
		{"malformed json", http.MethodPost, "/v1/generate", "{", 400},
		{"unknown field", http.MethodPost, "/v2/generate", `{"warpdrive":true}`, 400},
		{"unknown workload", http.MethodPost, "/v1/generate", `{"workload":"warp"}`, 400},
		{"bad placer", http.MethodPost, "/v2/jobs",
			`{"workload":"fig61","options":{"placer":"magic"}}`, 400},
		{"bad format", http.MethodPost, "/v2/jobs",
			`{"workload":"fig61","format":"hologram"}`, 400},
		{"chain cap", http.MethodPost, "/v1/generate",
			`{"workload":"chain","chain_length":4096}`, 422},
		{"oversized body", http.MethodPost, "/v1/generate",
			`{"netlist":"` + strings.Repeat("x", 4096) + `"}`, 413},
		{"empty batch", http.MethodPost, "/v1/batch", `{}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doRaw(t, tc.method, ts.URL+tc.path, tc.body)
			checkEnvelope(t, resp, body, tc.want)
			if tc.want == 405 && resp.Header.Get("Allow") == "" {
				t.Error("405 without an Allow header")
			}
		})
	}
}

// TestErrorEnvelopeOnShed covers the 429 path for both the sync and
// the async surface: with the lone worker wedged and the queue full,
// /v2/generate and /v2/jobs must shed with the envelope.
func TestErrorEnvelopeOnShed(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.testHook = func() { entered <- struct{}{}; <-release }
	defer close(release)

	// Wedge the worker with one job, fill the queue with another.
	resp, body := postJSON(t, ts.URL+"/v2/jobs", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wedge submit: %d %s", resp.StatusCode, body)
	}
	<-entered
	resp, body = postJSON(t, ts.URL+"/v2/jobs", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-fill submit: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.queued() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp, body = doRaw(t, http.MethodPost, ts.URL+"/v2/jobs", `{"workload":"fig61"}`)
	checkEnvelope(t, resp, body, 429)
	resp, body = doRaw(t, http.MethodPost, ts.URL+"/v2/generate", `{"workload":"fig61"}`)
	checkEnvelope(t, resp, body, 429)
}
