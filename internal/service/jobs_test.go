package service

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"netart/internal/gen"
	"netart/internal/jobs"
	"netart/internal/workload"
)

// This file is the async-API acceptance battery: job artwork must be
// byte-identical to the synchronous /v2/generate result, SSE net
// events must arrive strictly in the router's canonical commit order,
// and every lifecycle edge (cancel while queued, cancel mid-route,
// TTL eviction, SSE disconnect, restart against a disk store, fleet
// proxying, chaos) must resolve to a clean state.

// drainJob subscribes from the start of the job's event log and
// collects every event through the terminal state event.
func drainJob(t *testing.T, j *jobs.Job, timeout time.Duration) []jobs.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var out []jobs.Event
	sub := j.Subscribe()
	for {
		ev, err := sub.Next(ctx)
		if err == jobs.ErrDone {
			return out
		}
		if err != nil {
			t.Fatalf("draining events after %d: %v", len(out), err)
		}
		out = append(out, ev)
	}
}

// submitAndDrain runs one request through the async path end to end.
func submitAndDrain(t *testing.T, s *Server, req *Request) (*jobs.Job, []jobs.Event) {
	t.Helper()
	sub, err := s.SubmitJob(context.Background(), req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := s.Jobs().Get(sub.JobID)
	if j == nil {
		t.Fatalf("job %s vanished right after submit", sub.JobID)
	}
	return j, drainJob(t, j, 5*time.Minute)
}

// netEvents extracts the "net" event payloads in log order.
func netEvents(events []jobs.Event) []jobNet {
	var out []jobNet
	for _, ev := range events {
		if ev.Type == "net" {
			out = append(out, ev.Data.(jobNet))
		}
	}
	return out
}

func reportOf(t *testing.T, events []jobs.Event) *ResponseV2 {
	t.Helper()
	for _, ev := range events {
		if ev.Type == "report" {
			return ev.Data.(*ResponseV2)
		}
	}
	t.Fatal("no report event in the job stream")
	return nil
}

// TestJobMatchesSyncAcrossCorpus is the tentpole identity check: for
// every golden-corpus workload, the artwork a job streams and stores
// is byte-identical to what the synchronous /v2/generate path serves
// for the same request, and the event log is well-formed — one
// placement before any net, per-attempt net indices strictly
// increasing from zero, report before the terminal state event.
func TestJobMatchesSyncAcrossCorpus(t *testing.T) {
	s := New(Config{Workers: 2,
		DefaultTimeout: 5 * time.Minute, MaxTimeout: 5 * time.Minute})
	defer s.Close()

	names := []string{"fig61", "quickstart", "datapath"}
	if !testing.Short() {
		names = append(names, "cpu", "life")
	}
	for _, w := range names {
		t.Run(w, func(t *testing.T) {
			req := &Request{Workload: w, Format: FormatJSON}
			if w == "life" {
				// Figure 6.7 spacing: the dense LIFE fabric needs it.
				req.Options = GenOptions{PartSize: 5, BoxSize: 5,
					ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}
			}
			sync, err := s.GenerateV2(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}

			j, events := submitAndDrain(t, s, req)
			if got := j.State(); got != jobs.StateDone {
				t.Fatalf("terminal state %q, want done", got)
			}

			// Log shape: state(running) first, state(done) last.
			if len(events) < 4 {
				t.Fatalf("only %d events for a computed job", len(events))
			}
			first, last := events[0], events[len(events)-1]
			if first.Type != "state" || first.Data.(jobs.StateChange).State != jobs.StateRunning {
				t.Errorf("first event %q %+v, want state running", first.Type, first.Data)
			}
			if last.Type != "state" || last.Data.(jobs.StateChange).State != jobs.StateDone {
				t.Errorf("last event %q %+v, want state done", last.Type, last.Data)
			}
			for i, ev := range events {
				if ev.Seq != i {
					t.Fatalf("event %d carries seq %d", i, ev.Seq)
				}
			}

			// Placement precedes every net event; nets commit strictly
			// in order within their attempt.
			placedAt, firstNetAt := -1, -1
			lastIdx, lastAttempt := -1, ""
			for i, ev := range events {
				switch ev.Type {
				case "placement":
					placedAt = i
				case "net":
					if firstNetAt < 0 {
						firstNetAt = i
					}
					jn := ev.Data.(jobNet)
					if jn.Attempt != lastAttempt {
						lastAttempt, lastIdx = jn.Attempt, -1
					}
					if jn.Index != lastIdx+1 {
						t.Fatalf("attempt %q: net %q at index %d after %d — commit order broken",
							jn.Attempt, jn.Net, jn.Index, lastIdx)
					}
					lastIdx = jn.Index
				}
			}
			if placedAt < 0 {
				t.Fatal("no placement event")
			}
			if firstNetAt >= 0 && firstNetAt < placedAt {
				t.Fatal("net event before the placement event")
			}

			// Identity: the streamed report, the retained result and the
			// synchronous response all carry the same artwork bytes.
			rep := reportOf(t, events)
			res, ok := j.Result().(*ResponseV2)
			if !ok {
				t.Fatalf("job result is %T", j.Result())
			}
			if rep != res {
				t.Error("report event and retained result diverge")
			}
			if rep.Diagram != sync.Diagram {
				t.Errorf("job artwork differs from /v2/generate for %s", w)
			}
			if rep.CacheKey != sync.CacheKey {
				t.Errorf("cache key drift: job %s vs sync %s", rep.CacheKey, sync.CacheKey)
			}
			if rep.Metrics != sync.Metrics || rep.Unrouted != sync.Unrouted {
				t.Errorf("metrics drift: job %+v vs sync %+v", rep.Metrics, sync.Metrics)
			}
		})
	}
}

// TestJobNetOrderCanonical pins the stream order to the pipeline's own
// canonical commit order: the reference is gen.Run with a Progress
// hook, and both the sequential and the speculative parallel router
// must stream the same net sequence for the same request.
func TestJobNetOrderCanonical(t *testing.T) {
	opts, err := (GenOptions{}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	opts.Progress = func(ev gen.ProgressEvent) {
		if ev.Kind == gen.ProgressNet {
			want = append(want, ev.Net.Net.Name)
		}
	}
	if _, err := gen.Run(context.Background(), workload.Datapath16(), opts); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference run emitted no net events")
	}

	s := New(Config{Workers: 2})
	defer s.Close()
	for _, workers := range []int{1, 3} {
		req := &Request{Workload: "datapath", Options: GenOptions{RouteWorkers: workers}}
		_, events := submitAndDrain(t, s, req)
		var got []string
		for _, jn := range netEvents(events) {
			got = append(got, jn.Net)
		}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("route_workers=%d: stream order %v, want canonical %v", workers, got, want)
		}
	}
}

// TestJobCancelWhileQueued wedges the single worker, queues a second
// job behind it, and cancels the queued one over HTTP DELETE: the
// queued job must flip to canceled immediately, never start, and the
// wedged job must still complete once released.
func TestJobCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHook = func() { entered <- struct{}{}; <-release }
	defer close(release)

	resp, body := postJSON(t, ts.URL+"/v2/jobs", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %d %s", resp.StatusCode, body)
	}
	var subA SubmitResponse
	decode(t, body, &subA)
	<-entered // A is running and wedged on the hook.

	resp, body = postJSON(t, ts.URL+"/v2/jobs", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %d %s", resp.StatusCode, body)
	}
	var subB SubmitResponse
	decode(t, body, &subB)
	if st := s.Jobs().Get(subB.JobID).State(); st != jobs.StateQueued {
		t.Fatalf("job B state %q, want queued behind the wedged worker", st)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+subB.StatusURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", dresp.StatusCode, dbody)
	}
	var stB JobStatus
	decode(t, dbody, &stB)
	if stB.State != string(jobs.StateCanceled) {
		t.Fatalf("canceled-while-queued job reports %q", stB.State)
	}

	// Release the worker: A completes, B must never transition again.
	release <- struct{}{}
	jA := s.Jobs().Get(subA.JobID)
	select {
	case <-jA.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job A did not finish after release")
	}
	if st := jA.State(); st != jobs.StateDone {
		t.Fatalf("job A terminal state %q, want done", st)
	}
	if st := s.Jobs().Get(subB.JobID).State(); st != jobs.StateCanceled {
		t.Fatalf("job B state drifted to %q after cancel", st)
	}
	js := s.Stats().Jobs
	if js == nil || js.Done != 1 || js.Canceled != 1 {
		t.Errorf("job stats %+v, want done=1 canceled=1", js)
	}
}

// TestJobCancelMidRoute cancels a LIFE job after its first committed
// net: the cancellation must propagate through the wavefront loops,
// unwind as canceled (not failed), and close the event stream with a
// terminal state event.
func TestJobCancelMidRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("LIFE routing is expensive")
	}
	s := New(Config{Workers: 1,
		DefaultTimeout: 5 * time.Minute, MaxTimeout: 5 * time.Minute})
	defer s.Close()

	sub, err := s.SubmitJob(context.Background(), &Request{
		Workload: "life",
		Options: GenOptions{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	j := s.Jobs().Get(sub.JobID)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	events := j.Subscribe()
	canceled := false
	for {
		ev, err := events.Next(ctx)
		if err == jobs.ErrDone {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if ev.Type == "net" && !canceled {
			canceled = true
			j.Cancel()
		}
	}
	if !canceled {
		t.Fatal("stream finished before any net event — nothing was canceled mid-route")
	}
	if st := j.State(); st != jobs.StateCanceled {
		t.Fatalf("terminal state %q, want canceled", st)
	}
	doc := s.jobStatus(j)
	if doc.Error != "canceled by client" {
		t.Errorf("status error %q", doc.Error)
	}
	if doc.Result != nil {
		t.Error("canceled job retained a result")
	}
}

// TestJobTTLEviction: terminal jobs expire after JobsTTL and later
// lookups answer 404; live jobs are untouched by the sweep.
func TestJobTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobsTTL: 10 * time.Millisecond})

	j, _ := submitAndDrain(t, s, &Request{Workload: "fig61"})
	id := j.ID()
	deadline := time.Now().Add(5 * time.Second)
	for s.Jobs().Get(id) != nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Jobs().Get(id) != nil {
		t.Fatal("terminal job survived its TTL")
	}
	resp, body := getJSON(t, ts.URL+jobStatusURL(id))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job status %d: %s", resp.StatusCode, body)
	}
	if js := s.Stats().Jobs; js == nil || js.Evicted == 0 {
		t.Errorf("eviction not counted: %+v", js)
	}
}

// TestJobSSEDisconnect: a client that opens the SSE stream and drops
// mid-run must not block the publisher or the worker — the job runs
// to completion and the full event log is retained for re-reads.
func TestJobSSEDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHook = func() { entered <- struct{}{}; <-release }
	defer close(release)

	resp, body := postJSON(t, ts.URL+"/v2/jobs", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	decode(t, body, &sub)
	<-entered // wedged mid-run: the stream below is live, not a replay

	sctx, scancel := context.WithCancel(context.Background())
	sreq, err := http.NewRequestWithContext(sctx, http.MethodGet, ts.URL+sub.StreamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	// Read the first frame (state running), then vanish.
	br := bufio.NewReader(sresp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "id: 0") {
		t.Fatalf("first frame line %q (%v)", line, err)
	}
	scancel()
	sresp.Body.Close()

	release <- struct{}{}
	j := s.Jobs().Get(sub.JobID)
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish after SSE disconnect")
	}
	if st := j.State(); st != jobs.StateDone {
		t.Fatalf("terminal state %q, want done", st)
	}
	// The full log survived the disconnect and replays over HTTP.
	frames := readSSE(t, ts.URL+sub.StreamURL, "")
	if len(frames) < 4 {
		t.Fatalf("replay after disconnect holds %d frames", len(frames))
	}
	if last := frames[len(frames)-1]; last.event != "state" || !strings.Contains(last.data, "done") {
		t.Errorf("replay ends with %q %q, want terminal state done", last.event, last.data)
	}
}

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	id    int
	event string
	data  string
}

// readSSE reads one SSE stream to completion. lastEventID, when
// non-empty, is sent as the Last-Event-ID resume header.
func readSSE(t *testing.T, url, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var frames []sseFrame
	cur := sseFrame{id: -1}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{id: -1}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(line[4:])
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return frames
}

// TestJobSSEResume checks the Last-Event-ID contract over real HTTP:
// a full read, then a resume from midway that must replay exactly the
// suffix with contiguous ids.
func TestJobSSEResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v2/jobs", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	decode(t, body, &sub)

	full := readSSE(t, ts.URL+sub.StreamURL, "")
	if len(full) < 4 {
		t.Fatalf("full stream holds %d frames", len(full))
	}
	for i, f := range full {
		if f.id != i {
			t.Fatalf("frame %d has id %d", i, f.id)
		}
	}
	if f := full[len(full)-1]; f.event != "state" || !strings.Contains(f.data, `"done"`) {
		t.Fatalf("stream ends with %q %q", f.event, f.data)
	}
	var kinds []string
	for _, f := range full {
		kinds = append(kinds, f.event)
	}
	order := strings.Join(kinds, ",")
	if !strings.HasPrefix(order, "state,placement,attempt,net") ||
		!strings.HasSuffix(order, "net,report,state") {
		t.Errorf("event order %s", order)
	}

	// Resume after frame 1: replay starts at id 2.
	tail := readSSE(t, ts.URL+sub.StreamURL, "1")
	if len(tail) != len(full)-2 {
		t.Fatalf("resume replayed %d frames, want %d", len(tail), len(full)-2)
	}
	for i, f := range tail {
		if f.id != i+2 || f.event != full[i+2].event || f.data != full[i+2].data {
			t.Fatalf("resumed frame %d diverges: %+v vs %+v", i, f, full[i+2])
		}
	}
}

// TestJobRestartServedFromStore: a job result written through the
// disk store survives a restart — resubmitting the same request to a
// fresh server answers from the store, byte-identical and without
// recomputation (no net events).
func TestJobRestartServedFromStore(t *testing.T) {
	cfg := Config{Workers: 1, CacheEntries: 8,
		StoreBackend: "tiered", StoreDir: t.TempDir()}

	s1 := New(cfg)
	req := &Request{Workload: "fig61", Format: FormatJSON}
	_, events1 := submitAndDrain(t, s1, req)
	first := reportOf(t, events1)
	if first.Cached {
		t.Fatal("first job reported cached")
	}
	s1.Close()

	s2 := New(cfg)
	defer s2.Close()
	_, events2 := submitAndDrain(t, s2, req)
	revived := reportOf(t, events2)
	if !revived.Cached {
		t.Fatal("restarted server recomputed instead of serving the stored job result")
	}
	if nets := netEvents(events2); len(nets) != 0 {
		t.Errorf("store-served job streamed %d net events, want 0", len(nets))
	}
	if a, b := normalizeResp(t, first), normalizeResp(t, revived); string(a) != string(b) {
		t.Fatalf("artwork changed across restart:\n%s\n%s", a, b)
	}
}

// TestJobFleetProxied: in a 3-replica fleet, a job submitted to any
// replica computes on the key's rendezvous owner — the two non-owner
// replicas proxy — and every replica's job serves identical artwork.
func TestJobFleetProxied(t *testing.T) {
	reps := startFleet(t, 3, Config{Workers: 2, CacheEntries: 64})

	var diagrams, keys []string
	for ri, r := range reps {
		resp, body := postJSON(t, r.url+"/v2/jobs",
			Request{Workload: "fig61", Format: FormatSummary})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("replica %d submit: %d %s", ri, resp.StatusCode, body)
		}
		var sub SubmitResponse
		decode(t, body, &sub)

		var doc JobStatus
		deadline := time.Now().Add(30 * time.Second)
		for {
			sresp, sbody := getJSON(t, r.url+sub.StatusURL)
			if sresp.StatusCode != http.StatusOK {
				t.Fatalf("replica %d status: %d %s", ri, sresp.StatusCode, sbody)
			}
			decode(t, sbody, &doc)
			if jobs.State(doc.State).Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d job stuck in %q", ri, doc.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if doc.State != string(jobs.StateDone) {
			t.Fatalf("replica %d job ended %q: %s", ri, doc.State, doc.Error)
		}
		if doc.Result == nil {
			t.Fatalf("replica %d done job carries no result", ri)
		}
		diagrams = append(diagrams, doc.Result.Diagram)
		keys = append(keys, doc.Result.CacheKey)
	}
	for i := 1; i < 3; i++ {
		if diagrams[i] != diagrams[0] || keys[i] != keys[0] {
			t.Fatalf("replica %d served different artwork for the same job request", i)
		}
	}
	// Exactly the two non-owner replicas proxy. The owner's own job may
	// be a plain cache hit (an earlier proxied compute already filled
	// its cache), so PeerSelf is 1 only when the owner was asked first.
	var self, proxied uint64
	for _, r := range reps {
		s, p, _, _ := peerOutcomes(r.srv)
		self += s
		proxied += p
	}
	if proxied != 2 || self > 1 {
		t.Errorf("fleet outcomes self=%d proxied=%d, want 2 proxies and at most 1 owner compute", self, proxied)
	}
}

// TestChaosJobsSSE is the async chaos gate: with faults armed at every
// pipeline site, the job HTTP surface must never answer anything but
// 202/429 on submit and 200 on status and SSE — pipeline failures
// become failed *job states*, not 5xx responses — and every accepted
// job must reach a terminal state with a complete event stream.
func TestChaosJobsSSE(t *testing.T) {
	inj := mustInjector(t,
		"parse:error:0.10;place.box:panic:0.02;route.wavefront:error:0.05;"+
			"render:panic:0.05;parse:latency:0.10:2ms", 43)
	s, ts := newTestServer(t, Config{
		Workers:       4,
		QueueDepth:    64,
		Inject:        inj,
		DegradeMode:   gen.DegradeBestEffort,
		VerifyRouting: true,
		RouteWorkers:  2,
	})

	workloads := []string{"fig61", "chain", "datapath"}
	formats := []string{"summary", "ascii", "json", "svg"}
	type outcome struct {
		submit int
		state  string
		code   int
	}
	results := make(chan outcome, 40)
	for i := 0; i < 40; i++ {
		go func(i int) {
			// A helper Fatal inside this goroutine exits via Goexit; the
			// deferred send keeps the collector loop from starving.
			out := outcome{submit: -1}
			defer func() { results <- out }()
			req := Request{
				Workload:    workloads[i%len(workloads)],
				ChainLength: 4 + i%8,
				Format:      formats[i%len(formats)],
				TimeoutMs:   10000,
			}
			resp, body := postJSON(t, ts.URL+"/v2/jobs", req)
			if resp.StatusCode != http.StatusAccepted {
				out = outcome{submit: resp.StatusCode}
				return
			}
			var sub SubmitResponse
			decode(t, body, &sub)
			// Stream to completion: the stream itself must be clean 200
			// even when the job inside fails.
			frames := readSSE(t, ts.URL+sub.StreamURL, "")
			if len(frames) == 0 {
				t.Errorf("job %d: empty SSE stream", i)
			}
			sresp, sbody := getJSON(t, ts.URL+sub.StatusURL)
			if sresp.StatusCode != http.StatusOK {
				t.Errorf("job %d: status endpoint %d: %s", i, sresp.StatusCode, sbody)
			}
			var doc JobStatus
			decode(t, sbody, &doc)
			out = outcome{submit: http.StatusAccepted, state: doc.State, code: doc.Code}
		}(i)
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		out := <-results
		switch out.submit {
		case -1:
			continue // helper already reported the failure
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			counts["shed"]++
			continue
		default:
			t.Errorf("submit answered %d — the async surface leaked a non-shed error", out.submit)
			continue
		}
		counts[out.state]++
		switch jobs.State(out.state) {
		case jobs.StateDone:
		case jobs.StateFailed:
			if out.code != 500 && out.code != 504 && out.code != 422 {
				t.Errorf("failed job carries code %d", out.code)
			}
		default:
			t.Errorf("job ended in state %q", out.state)
		}
	}
	t.Logf("chaos jobs: %v (panics=%d)", counts, s.Stats().Panics)
	if counts[string(jobs.StateDone)] == 0 {
		t.Error("no job survived chaos — injector drowned the battery")
	}
}
