package service

import (
	"context"
	"strings"
	"testing"
)

// Tests for the place_workers knob, the placement twin of
// routeworkers_test.go: it must reach the placement engine, must not
// change the artwork, and — because it cannot change the artwork —
// must share cache entries with sequential requests.

// TestPlaceWorkersByteIdenticalResponse renders the same workload
// sequentially and in parallel on independent servers (no shared
// cache) and asserts the responses are byte-identical.
func TestPlaceWorkersByteIdenticalResponse(t *testing.T) {
	run := func(workers int) *Response {
		s := New(Config{Workers: 1, CacheEntries: 0, VerifyRouting: true})
		defer s.Close()
		resp, err := s.Generate(context.Background(),
			&Request{Workload: "datapath", Format: "ascii",
				Options: GenOptions{PlaceWorkers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	seq := run(1)
	for _, w := range []int{2, 4} {
		par := run(w)
		if par.Diagram != seq.Diagram {
			t.Errorf("place_workers=%d: diagram diverges from sequential", w)
		}
		if par.CacheKey != seq.CacheKey {
			t.Errorf("place_workers=%d: cache key %s != sequential %s — the knob must not enter the key",
				w, par.CacheKey, seq.CacheKey)
		}
		if par.Unrouted != seq.Unrouted {
			t.Errorf("place_workers=%d: unrouted %d != %d", w, par.Unrouted, seq.Unrouted)
		}
	}
}

// TestPlaceWorkersSharesCacheEntry: a parallel-placement request after
// an identical sequential one must hit the cache (and vice versa),
// because place_workers is an execution hint, not a result parameter.
func TestPlaceWorkersSharesCacheEntry(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 16})
	defer s.Close()
	ctx := context.Background()

	seq, err := s.Generate(ctx, &Request{Workload: "quickstart", Format: "ascii"})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cached {
		t.Fatal("first request reported cached")
	}
	par, err := s.Generate(ctx, &Request{Workload: "quickstart", Format: "ascii",
		Options: GenOptions{PlaceWorkers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Cached {
		t.Error("parallel request missed the cache despite the byte-identity contract")
	}
	if par.Diagram != seq.Diagram {
		t.Error("cached parallel response diverges from sequential original")
	}
	// Both knobs at once still map onto the same entry.
	both, err := s.Generate(ctx, &Request{Workload: "quickstart", Format: "ascii",
		Options: GenOptions{PlaceWorkers: 2, RouteWorkers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !both.Cached {
		t.Error("place+route workers request missed the cache")
	}
}

// TestPlaceWorkersServerDefault: a server-wide PlaceWorkers default
// applies to requests that don't pick their own, and a request
// override wins.
func TestPlaceWorkersServerDefault(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0, PlaceWorkers: 4, VerifyRouting: true})
	defer s.Close()
	if _, err := s.Generate(context.Background(),
		&Request{Workload: "datapath", Format: "summary"}); err != nil {
		t.Fatalf("server-default parallel placement failed: %v", err)
	}
	if _, err := s.Generate(context.Background(),
		&Request{Workload: "datapath", Format: "summary",
			Options: GenOptions{PlaceWorkers: 1}}); err != nil {
		t.Fatalf("request override to sequential failed: %v", err)
	}
}

// TestPlaceWorkersMetrics: a parallel-placement request must surface
// the scheduler's work on the Prometheus surface — committed tasks in
// netart_place_speculation_total and per-worker busy samples in the
// netart_place_worker_busy_seconds histogram.
func TestPlaceWorkersMetrics(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0, PlaceWorkers: 4})
	defer s.Close()
	if _, err := s.Generate(context.Background(),
		&Request{Workload: "datapath", Format: "summary"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.obs.Reg.WritePrometheus(&sb)
	text := sb.String()
	if !strings.Contains(text, `netart_place_speculation_total{outcome="committed"}`) {
		t.Error(`netart_place_speculation_total{outcome="committed"} missing from /metrics`)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `netart_place_speculation_total{outcome="committed"}`) &&
			strings.HasSuffix(line, " 0") {
			t.Errorf("committed counter stayed zero after a parallel placement: %s", line)
		}
	}
	if !strings.Contains(text, "netart_place_worker_busy_seconds_count") {
		t.Error("netart_place_worker_busy_seconds histogram missing from /metrics")
	}
}

// TestPlaceWorkersRejectsNegative pins the 400 on a nonsense value.
func TestPlaceWorkersRejectsNegative(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	_, err := s.Generate(context.Background(),
		&Request{Workload: "fig61", Options: GenOptions{PlaceWorkers: -2}})
	se, ok := err.(*svcError)
	if !ok || se.status != 400 {
		t.Fatalf("negative place_workers: got %v, want 400 svcError", err)
	}
}
