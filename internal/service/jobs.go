package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"netart/internal/gen"
	"netart/internal/jobs"
	"netart/internal/obs"
	"netart/internal/resilience"
	"netart/internal/store/cluster"
)

// This file is the async half of the generate API: POST /v2/jobs
// submits a request and returns immediately with a job id; the job
// then runs through the exact same bounded pool, cache, singleflight
// and fleet layers as the synchronous path — process() is shared — so
// the final artwork is byte-identical to what /v2/generate would have
// served. Progress streams over GET /v2/jobs/{id}/events as SSE:
// placement geometry first, then one event per routed net strictly in
// the router's canonical commit order, then the full report.

// SubmitResponse is the 202 body of POST /v2/jobs.
type SubmitResponse struct {
	JobID     string `json:"job_id"`
	Status    string `json:"status"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// JobStatus is the body of GET /v2/jobs/{id} (and of the DELETE
// response): the state machine position, live progress derived from
// the run's span tree, and — once done — the full result.
type JobStatus struct {
	JobID    string `json:"job_id"`
	State    string `json:"state"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Events is the current event-log length; an SSE client that saw
	// fewer has catching up to do.
	Events int `json:"events"`
	// Stage is the coarse position of a running job; NetsRouted/
	// NetsTotal count the router's committed nets (main pass).
	Stage      string `json:"stage,omitempty"`
	NetsRouted int    `json:"nets_routed,omitempty"`
	NetsTotal  int    `json:"nets_total,omitempty"`
	// Stages snapshots the live span tree: one entry per pipeline
	// stage that has started, open stages with outcome "open".
	Stages []JobStage `json:"stages,omitempty"`
	Error  string     `json:"error,omitempty"`
	// Code is the HTTP status the synchronous twin of a failed job
	// would have answered.
	Code      int         `json:"code,omitempty"`
	Result    *ResponseV2 `json:"result,omitempty"`
	StatusURL string      `json:"status_url"`
	StreamURL string      `json:"stream_url"`
}

// JobStage is one pipeline stage in a job status document.
type JobStage struct {
	Stage     string  `json:"stage"`
	Outcome   string  `json:"outcome"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// jobPlacement is the Data of the "placement" SSE event: the placed
// geometry in design order, mirroring the json render format so SSE
// consumers and format=json consumers share one vocabulary.
type jobPlacement struct {
	Bounds  [4]int       `json:"bounds"` // minX, minY, maxX, maxY
	Modules []jsonModule `json:"modules"`
}

// jobAttempt is the Data of the "attempt" SSE event, opening one rung
// of the degradation ladder.
type jobAttempt struct {
	Name string `json:"name"`
}

// jobNet is the Data of one "net" SSE event: the net's outcome at the
// router's ordered-commit point, emitted strictly in canonical commit
// order within its attempt.
type jobNet struct {
	Net      string   `json:"net"`
	Index    int      `json:"index"`
	Total    int      `json:"total"`
	Attempt  string   `json:"attempt"`
	OK       bool     `json:"ok"`
	Failed   []string `json:"failed,omitempty"`
	Segments [][4]int `json:"segments"`
}

// SubmitJob validates and enqueues one async generation job. The ctx
// only carries submission-time values (the peer-hop marker); the job
// itself runs on a detached context bounded by the request's timeout
// budget, so it survives the submitting HTTP connection. Returned
// errors are *svcError: malformed requests fail synchronously with
// the same statuses the synchronous path would use, and a full job
// ring or worker queue sheds with 429.
func (s *Server) SubmitJob(ctx context.Context, req *Request) (*SubmitResponse, error) {
	s.obs.Requests.Inc()
	if err := s.preGuard(req); err != nil {
		s.obs.Rejected.Inc()
		return nil, err
	}
	// Validate what the pipeline would reject immediately, so option
	// typos are a synchronous 400, not a failed job.
	if _, err := resolveFormat(req.Format); err != nil {
		s.obs.Failed.Inc()
		return nil, err
	}
	if _, err := req.Options.resolve(); err != nil {
		s.obs.Failed.Inc()
		return nil, badRequest("%v", err)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	base := context.Background()
	if peerHopped(ctx) {
		base = withPeerHop(base)
	}
	// The job context is detached from the HTTP request (the submitter
	// may disconnect immediately) but keeps the same timeout budget the
	// synchronous path would have enforced. Its cancel func doubles as
	// the DELETE hook: explicit cancellation yields context.Canceled,
	// deadline expiry yields DeadlineExceeded, and runJob tells the two
	// apart when classifying the unwind.
	jctx, jcancel := context.WithTimeout(base, timeout)
	j, err := s.jobs.Create(jcancel)
	if err != nil {
		jcancel()
		s.obs.Shed.Inc()
		return nil, &svcError{status: 429, msg: err.Error()}
	}
	done, serr := s.pool.submit(jctx, func(ctx context.Context) {
		s.runJob(ctx, j, req)
	})
	if serr != nil {
		s.jobs.Remove(j.ID())
		jcancel()
		s.obs.Shed.Inc()
		return nil, &svcError{status: 429, msg: serr.Error()}
	}
	s.obs.JobsSubmitted.Inc()
	// The pool always closes done, even for tasks it skipped because
	// their context expired in the queue. This watcher turns such a
	// skip into the 504 the synchronous path would have served, and a
	// task aborted by the pool's last-resort recovery into a 500 —
	// without it, those jobs would sit "queued"/"running" until TTL.
	go func() {
		<-done
		defer jcancel()
		switch j.State() {
		case jobs.StateQueued:
			s.obs.Timeouts.Inc()
			j.Fail(http.StatusGatewayTimeout, "deadline expired while queued")
		case jobs.StateRunning:
			j.Fail(http.StatusInternalServerError, "internal: generation task aborted")
		}
	}()
	return &SubmitResponse{
		JobID:     j.ID(),
		Status:    string(jobs.StateQueued),
		StatusURL: jobStatusURL(j.ID()),
		StreamURL: jobStreamURL(j.ID()),
	}, nil
}

// runJob executes one job on a pool worker. It mirrors the outcome
// accounting of GenerateV2 — the same counters increment for the same
// reasons — and additionally drives the job state machine and event
// log.
func (s *Server) runJob(ctx context.Context, j *jobs.Job, req *Request) {
	if !j.Start() {
		// Canceled between the worker's context check and here.
		return
	}
	o := obs.NewObserver(s.obs, "request")
	// The live observer rides on the record so GET /v2/jobs/{id} can
	// snapshot the span tree mid-run (safe: span mutation is locked).
	j.Attach(o)

	progress := func(ev gen.ProgressEvent) {
		switch ev.Kind {
		case gen.ProgressPlaced:
			j.SetProgress("route", 0, 0)
			pr := ev.Placement
			pl := jobPlacement{Bounds: [4]int{
				pr.Bounds.Min.X, pr.Bounds.Min.Y, pr.Bounds.Max.X, pr.Bounds.Max.Y}}
			for _, m := range pr.Design.Modules {
				pm, ok := pr.Mods[m]
				if !ok {
					continue
				}
				w, h := pm.Size()
				pl.Modules = append(pl.Modules, jsonModule{
					Name:     m.Name,
					Template: m.Template,
					X:        pm.Pos.X,
					Y:        pm.Pos.Y,
					W:        w,
					H:        h,
					Orient:   pm.Orient.String(),
				})
			}
			j.Publish("placement", pl)
		case gen.ProgressAttempt:
			j.Publish("attempt", jobAttempt{Name: ev.Attempt})
		case gen.ProgressNet:
			rn := ev.Net
			jn := jobNet{
				Net:      rn.Net.Name,
				Index:    ev.Index,
				Total:    ev.Total,
				Attempt:  ev.Attempt,
				OK:       rn.OK(),
				Segments: make([][4]int, 0, len(rn.Segments)),
			}
			for _, sg := range rn.Segments {
				jn.Segments = append(jn.Segments, [4]int{sg.A.X, sg.A.Y, sg.B.X, sg.B.Y})
			}
			for _, t := range rn.Failed {
				jn.Failed = append(jn.Failed, t.Label())
			}
			j.Publish("net", jn)
			j.SetProgress("route", ev.Index+1, ev.Total)
		}
	}

	var resp *ResponseV2
	err := resilience.Recover("pipeline", func() error {
		if s.testHook != nil {
			s.testHook()
		}
		var perr error
		resp, perr = s.processObserved(ctx, req, o, progress)
		return perr
	})
	if err != nil {
		if errors.Is(ctx.Err(), context.Canceled) {
			// A client DELETE canceled the job context; the terminal
			// counter rides on the manager's OnFinish hook.
			j.FinishCanceled("canceled by client")
			return
		}
		se := s.mapError(ctx, err)
		j.Fail(se.status, se.msg)
		return
	}
	if resp == nil {
		s.obs.Failed.Inc()
		j.Fail(http.StatusInternalServerError, "internal: generation task aborted")
		return
	}
	if resp.Report.Degraded != nil {
		s.obs.Degraded.Inc()
	}
	s.obs.OK.Inc()
	// The report event carries the complete response, so an SSE-only
	// consumer never needs the status endpoint; Finish then appends the
	// terminal state event and retains the result for GET.
	j.Publish("report", resp)
	j.Finish(resp)
}

func jobStatusURL(id string) string { return "/v2/jobs/" + id }
func jobStreamURL(id string) string { return "/v2/jobs/" + id + "/events" }

// jobStatus builds the status document from the record plus — for
// running jobs — a live snapshot of the attached observer's span tree.
func (s *Server) jobStatus(j *jobs.Job) JobStatus {
	st := j.Status()
	doc := JobStatus{
		JobID:      st.ID,
		State:      string(st.State),
		Created:    st.Created.UTC().Format(time.RFC3339Nano),
		Events:     st.Events,
		Stage:      st.Stage,
		NetsRouted: st.NetsRouted,
		NetsTotal:  st.NetsTotal,
		Error:      st.Error,
		Code:       st.Code,
		StatusURL:  jobStatusURL(st.ID),
		StreamURL:  jobStreamURL(st.ID),
	}
	if !st.Started.IsZero() {
		doc.Started = st.Started.UTC().Format(time.RFC3339Nano)
	}
	if !st.Finished.IsZero() {
		doc.Finished = st.Finished.UTC().Format(time.RFC3339Nano)
	}
	if resp, ok := st.Result.(*ResponseV2); ok {
		doc.Result = resp
	}
	if o, ok := j.Attachment().(*obs.Observer); ok {
		if td := o.Snapshot(); td != nil && td.Root != nil {
			for _, sp := range td.Root.Children {
				doc.Stages = append(doc.Stages, JobStage{
					Stage:     sp.Stage,
					Outcome:   sp.Outcome,
					ElapsedMs: float64(sp.ElapsedUs) / 1000.0,
				})
			}
		}
	}
	return doc
}

// handleJobs is POST /v2/jobs: submit, answer 202 with the job id and
// the two URLs to observe it.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	if r.Header.Get(cluster.HopHeader) != "" {
		ctx = withPeerHop(ctx)
	}
	resp, err := s.SubmitJob(ctx, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleJob is GET (status document) and DELETE (cancel, then the
// resulting status document) of /v2/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.Get(r.PathValue("id"))
	if j == nil {
		writeErrorStatus(w, http.StatusNotFound, "unknown job (expired, evicted, or never existed)")
		return
	}
	if r.Method == http.MethodDelete {
		j.Cancel()
	}
	writeJSON(w, http.StatusOK, s.jobStatus(j))
}

// handleJobEvents is GET /v2/jobs/{id}/events: the job's event log as
// an SSE stream — replayed from the start (or from Last-Event-ID+1 on
// reconnect), then followed live until the terminal state event. Each
// subscriber owns its cursor, so a slow or stalled client only delays
// itself; a disconnect ends this handler without touching the job.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.Get(r.PathValue("id"))
	if j == nil {
		writeErrorStatus(w, http.StatusNotFound, "unknown job (expired, evicted, or never existed)")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErrorStatus(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	from := 0
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if n, err := strconv.Atoi(lei); err == nil && n >= 0 {
			from = n + 1
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := j.SubscribeFrom(from)
	for {
		ev, err := sub.Next(r.Context())
		if err != nil {
			// ErrDone (stream complete) or the client went away.
			return
		}
		data, merr := json.Marshal(ev.Data)
		if merr != nil {
			data = []byte(`{}`)
		}
		if _, werr := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); werr != nil {
			return
		}
		fl.Flush()
	}
}
