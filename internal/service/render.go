package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"netart/internal/schematic"
)

// The output formats of POST /v1/generate.
const (
	FormatSVG     = "svg"
	FormatESCHER  = "escher"
	FormatASCII   = "ascii"
	FormatJSON    = "json"
	FormatSummary = "summary"
)

func resolveFormat(f string) (string, error) {
	switch f {
	case "":
		return FormatSummary, nil
	case FormatSVG, FormatESCHER, FormatASCII, FormatJSON, FormatSummary:
		return f, nil
	default:
		return "", badRequest("unknown format %q (svg, escher, ascii, json, summary)", f)
	}
}

// jsonModule is one placed symbol in the json rendering.
type jsonModule struct {
	Name     string `json:"name"`
	Template string `json:"template,omitempty"`
	X        int    `json:"x"`
	Y        int    `json:"y"`
	W        int    `json:"w"`
	H        int    `json:"h"`
	Orient   string `json:"orient"`
}

// jsonNet is one routed net: segments as [x1,y1,x2,y2] quadruples.
type jsonNet struct {
	Name     string   `json:"name"`
	Segments [][4]int `json:"segments"`
	Failed   []string `json:"failed,omitempty"`
}

type jsonTerm struct {
	Name string `json:"name"`
	Type string `json:"type"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

type jsonDiagram struct {
	Name     string            `json:"name"`
	Bounds   [4]int            `json:"bounds"` // minX, minY, maxX, maxY
	Modules  []jsonModule      `json:"modules"`
	SysTerms []jsonTerm        `json:"sys_terms,omitempty"`
	Nets     []jsonNet         `json:"nets"`
	Metrics  schematic.Metrics `json:"metrics"`
}

// renderDiagram serializes a finished diagram in the requested format.
func renderDiagram(dg *schematic.Diagram, format string) (string, error) {
	switch format {
	case FormatSummary:
		return dg.Summary(), nil
	case FormatASCII:
		return dg.ASCII(), nil
	case FormatSVG:
		var b strings.Builder
		if err := dg.WriteSVG(&b); err != nil {
			return "", fmt.Errorf("render svg: %w", err)
		}
		return b.String(), nil
	case FormatESCHER:
		var b strings.Builder
		if err := schematic.WriteESCHER(&b, dg, "userlib"); err != nil {
			return "", fmt.Errorf("render escher: %w", err)
		}
		return b.String(), nil
	case FormatJSON:
		return renderJSON(dg)
	default:
		return "", badRequest("unknown format %q", format)
	}
}

func renderJSON(dg *schematic.Diagram) (string, error) {
	pr := dg.Placement
	out := jsonDiagram{
		Name: dg.Design.Name,
		Bounds: [4]int{pr.Bounds.Min.X, pr.Bounds.Min.Y,
			pr.Bounds.Max.X, pr.Bounds.Max.Y},
		Metrics: dg.Metrics(),
	}
	for _, m := range dg.Design.Modules {
		pm, ok := pr.Mods[m]
		if !ok {
			continue
		}
		w, h := pm.Size()
		out.Modules = append(out.Modules, jsonModule{
			Name:     m.Name,
			Template: m.Template,
			X:        pm.Pos.X,
			Y:        pm.Pos.Y,
			W:        w,
			H:        h,
			Orient:   pm.Orient.String(),
		})
	}
	for _, st := range dg.Design.SysTerms {
		p, ok := pr.SysPos[st]
		if !ok {
			continue
		}
		out.SysTerms = append(out.SysTerms, jsonTerm{
			Name: st.Name, Type: st.Type.String(), X: p.X, Y: p.Y,
		})
	}
	if dg.Routing != nil {
		for _, rn := range dg.Routing.Nets {
			jn := jsonNet{Name: rn.Net.Name, Segments: make([][4]int, 0, len(rn.Segments))}
			for _, s := range rn.Segments {
				jn.Segments = append(jn.Segments, [4]int{s.A.X, s.A.Y, s.B.X, s.B.Y})
			}
			for _, t := range rn.Failed {
				jn.Failed = append(jn.Failed, t.Label())
			}
			out.Nets = append(out.Nets, jn)
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		return "", fmt.Errorf("render json: %w", err)
	}
	return string(b), nil
}
