package service

import (
	"fmt"
	"time"

	"netart/internal/obs"
	"netart/internal/resilience"
)

// This file is the JSON view over the obs metric set. Since the
// observability redesign the daemon keeps exactly one copy of every
// counter and histogram — the obs.Pipeline registered for /metrics —
// and /v1/stats plus /v1/healthz are snapshots of those same values,
// so the two surfaces can never drift.

// HistogramSnapshot is the JSON view of one stage's latency histogram.
type HistogramSnapshot struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	// Buckets[i] counts observations in (2^(i-1), 2^i] microseconds.
	Buckets []uint64 `json:"buckets"`
}

func histogramSnapshot(d obs.HistogramData) HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   d.Count,
		TotalMs: float64(d.SumUs) / 1000.0,
		MaxMs:   float64(d.MaxUs) / 1000.0,
		Buckets: append([]uint64(nil), d.Buckets[:]...),
	}
	if s.Count > 0 {
		s.MeanMs = s.TotalMs / float64(s.Count)
		s.P50Ms = d.QuantileMs(0.50)
		s.P99Ms = d.QuantileMs(0.99)
	}
	return s
}

// PanicInfo is the JSON view of one recovered panic: the stage it
// escaped from, its rendered cause, when it happened, and a trimmed
// stack — enough to file a bug from /v1/stats alone.
type PanicInfo struct {
	Stage string `json:"stage"`
	Cause string `json:"cause"`
	Time  string `json:"time"`
	Stack string `json:"stack,omitempty"`
}

// maxRecentPanics bounds the retained panic ring.
const maxRecentPanics = 8

// serverStats couples the shared metric set with the bounded ring of
// recent panic details (counts live in the metric set; the ring keeps
// the stacks, which have no Prometheus representation).
type serverStats struct {
	m      *obs.Pipeline
	recent *obs.Ring[PanicInfo]
}

func newServerStats(m *obs.Pipeline) *serverStats {
	return &serverStats{m: m, recent: obs.NewRing[PanicInfo](maxRecentPanics)}
}

// start returns the process start time (uptime anchor).
func (st *serverStats) start() time.Time { return st.m.Start }

// recordPanic counts one recovered panic and remembers it in the
// bounded recent ring served at /v1/stats.
func (st *serverStats) recordPanic(se *resilience.StageError) {
	st.m.Panics.Inc()
	st.recent.Append(PanicInfo{
		Stage: se.Stage,
		Cause: fmt.Sprint(se.Cause),
		Time:  time.Now().UTC().Format(time.RFC3339Nano),
		Stack: se.Stack,
	})
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeS  float64    `json:"uptime_s"`
	Requests uint64     `json:"requests"`
	OK       uint64     `json:"ok"`
	Failed   uint64     `json:"failed"`
	Shed     uint64     `json:"shed"`
	Timeouts uint64     `json:"timeouts"`
	Rejected uint64     `json:"rejected"`
	Degraded uint64     `json:"degraded"`
	Retries  uint64     `json:"retries"`
	Inflight int64      `json:"inflight"`
	Queued   int        `json:"queued"`
	Workers  int        `json:"workers"`
	Cache    CacheStats `json:"cache"`
	// Store is the per-tier view of the pluggable result store (nil
	// when caching is disabled); Cache above stays the request-level
	// wire shape the pre-store-tier daemon served.
	Store *StoreStats `json:"store,omitempty"`
	// Fleet is this replica's view of peer health (nil outside a
	// fleet) — the same snapshot /v1/healthz serves.
	Fleet *FleetHealth `json:"fleet,omitempty"`
	// Jobs summarizes the async job subsystem (/v2/jobs).
	Jobs *JobsStats `json:"jobs,omitempty"`

	// Panics counts panics converted into StageErrors by the isolation
	// layer; RecentPanics holds the last few with stage + trimmed stack.
	Panics       uint64      `json:"panics"`
	RecentPanics []PanicInfo `json:"recent_panics,omitempty"`

	Stages map[string]HistogramSnapshot `json:"stages"`
}

// JobsStats is the /v1/stats view of the async job ring: lifetime
// counters from the shared metric set plus the ring's current shape.
type JobsStats struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Evicted   uint64 `json:"evicted"`
	Events    uint64 `json:"events"`
	// Tracked counts records currently in the ring; Active counts the
	// queued-or-running subset.
	Tracked int `json:"tracked"`
	Active  int `json:"active"`
}

func (st *serverStats) snapshot() StatsResponse {
	stages := make(map[string]HistogramSnapshot, len(obs.StageNames))
	for name, d := range st.m.StageSnapshots() {
		stages[name] = histogramSnapshot(d)
	}
	return StatsResponse{
		UptimeS:      time.Since(st.m.Start).Seconds(),
		Requests:     st.m.Requests.Value(),
		OK:           st.m.OK.Value(),
		Failed:       st.m.Failed.Value(),
		Shed:         st.m.Shed.Value(),
		Timeouts:     st.m.Timeouts.Value(),
		Rejected:     st.m.Rejected.Value(),
		Degraded:     st.m.Degraded.Value(),
		Retries:      st.m.Retries.Value(),
		Inflight:     st.m.Inflight.Value(),
		Panics:       st.m.Panics.Value(),
		RecentPanics: st.recent.Snapshot(),
		Stages:       stages,
	}
}
