package service

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netart/internal/resilience"
)

// histBuckets is the bucket count of the latency histograms: bucket i
// holds observations with ceil(log2(µs)) == i, so the range spans 1µs
// to ~2.2s with the last bucket catching everything slower.
const histBuckets = 22

// latencyHistogram is a lock-free log2 histogram over microseconds.
// All fields are atomics: observation is one Add per field, snapshots
// are torn-read tolerant (counters only ever grow, and /v1/stats is
// diagnostic, not transactional).
type latencyHistogram struct {
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func bucketFor(us uint64) int {
	b := 0
	for v := us; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	return b
}

func (h *latencyHistogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUs.Add(us)
	h.buckets[bucketFor(us)].Add(1)
	for {
		old := h.maxUs.Load()
		if us <= old || h.maxUs.CompareAndSwap(old, us) {
			return
		}
	}
}

// HistogramSnapshot is the JSON view of one stage's latency histogram.
type HistogramSnapshot struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	// Buckets[i] counts observations in (2^(i-1), 2^i] microseconds.
	Buckets []uint64 `json:"buckets"`
}

// quantile returns the upper bound (in ms) of the bucket holding the
// q-th observation — a log2-resolution estimate, good enough for a
// stats endpoint.
func quantileMs(buckets []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range buckets {
		seen += c
		if seen >= rank {
			return float64(uint64(1)<<uint(i)) / 1000.0
		}
	}
	return float64(uint64(1)<<uint(len(buckets)-1)) / 1000.0
}

func (h *latencyHistogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		TotalMs: float64(h.sumUs.Load()) / 1000.0,
		MaxMs:   float64(h.maxUs.Load()) / 1000.0,
		Buckets: make([]uint64, histBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.MeanMs = s.TotalMs / float64(s.Count)
		s.P50Ms = quantileMs(s.Buckets, s.Count, 0.50)
		s.P99Ms = quantileMs(s.Buckets, s.Count, 0.99)
	}
	return s
}

// PanicInfo is the JSON view of one recovered panic: the stage it
// escaped from, its rendered cause, when it happened, and a trimmed
// stack — enough to file a bug from /v1/stats alone.
type PanicInfo struct {
	Stage string `json:"stage"`
	Cause string `json:"cause"`
	Time  string `json:"time"`
	Stack string `json:"stack,omitempty"`
}

// maxRecentPanics bounds the retained panic ring.
const maxRecentPanics = 8

// serverStats aggregates the daemon-wide counters: request outcomes,
// in-flight gauge, recovered panics, and one latency histogram per
// pipeline stage.
type serverStats struct {
	start time.Time

	requests atomic.Uint64 // accepted generation requests (incl. batch items)
	ok       atomic.Uint64
	failed   atomic.Uint64 // generation/parse errors
	shed     atomic.Uint64 // 429s from the full queue
	timeouts atomic.Uint64 // deadline/cancellation aborts
	rejected atomic.Uint64 // 422s from the resource guards
	degraded atomic.Uint64 // 200s that carried a Degraded report
	retries  atomic.Uint64 // extra attempts spent by batch retry
	panics   atomic.Uint64 // panics recovered by the isolation layer
	inflight atomic.Int64

	panicMu sync.Mutex
	recent  []PanicInfo // ring, newest last, ≤ maxRecentPanics

	parse  latencyHistogram
	place  latencyHistogram
	route  latencyHistogram
	render latencyHistogram
	total  latencyHistogram
}

func newServerStats() *serverStats {
	return &serverStats{start: time.Now()}
}

// recordPanic counts one recovered panic and remembers it in the
// bounded recent ring served at /v1/stats.
func (st *serverStats) recordPanic(se *resilience.StageError) {
	st.panics.Add(1)
	info := PanicInfo{
		Stage: se.Stage,
		Cause: fmt.Sprint(se.Cause),
		Time:  time.Now().UTC().Format(time.RFC3339Nano),
		Stack: se.Stack,
	}
	st.panicMu.Lock()
	st.recent = append(st.recent, info)
	if len(st.recent) > maxRecentPanics {
		st.recent = st.recent[len(st.recent)-maxRecentPanics:]
	}
	st.panicMu.Unlock()
}

func (st *serverStats) recentPanics() []PanicInfo {
	st.panicMu.Lock()
	defer st.panicMu.Unlock()
	return append([]PanicInfo(nil), st.recent...)
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeS  float64    `json:"uptime_s"`
	Requests uint64     `json:"requests"`
	OK       uint64     `json:"ok"`
	Failed   uint64     `json:"failed"`
	Shed     uint64     `json:"shed"`
	Timeouts uint64     `json:"timeouts"`
	Rejected uint64     `json:"rejected"`
	Degraded uint64     `json:"degraded"`
	Retries  uint64     `json:"retries"`
	Inflight int64      `json:"inflight"`
	Queued   int        `json:"queued"`
	Workers  int        `json:"workers"`
	Cache    CacheStats `json:"cache"`

	// Panics counts panics converted into StageErrors by the isolation
	// layer; RecentPanics holds the last few with stage + trimmed stack.
	Panics       uint64      `json:"panics"`
	RecentPanics []PanicInfo `json:"recent_panics,omitempty"`

	Stages map[string]HistogramSnapshot `json:"stages"`
}

func (st *serverStats) snapshot() StatsResponse {
	return StatsResponse{
		UptimeS:      time.Since(st.start).Seconds(),
		Requests:     st.requests.Load(),
		OK:           st.ok.Load(),
		Failed:       st.failed.Load(),
		Shed:         st.shed.Load(),
		Timeouts:     st.timeouts.Load(),
		Rejected:     st.rejected.Load(),
		Degraded:     st.degraded.Load(),
		Retries:      st.retries.Load(),
		Inflight:     st.inflight.Load(),
		Panics:       st.panics.Load(),
		RecentPanics: st.recentPanics(),
		Stages: map[string]HistogramSnapshot{
			"parse":  st.parse.snapshot(),
			"place":  st.place.snapshot(),
			"route":  st.route.snapshot(),
			"render": st.render.snapshot(),
			"total":  st.total.snapshot(),
		},
	}
}
