package service

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"netart/internal/gen"
	"netart/internal/library"
	"netart/internal/netlist"
	"netart/internal/workload"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of concurrent generation goroutines
	// (default GOMAXPROCS). Generation is CPU-bound, so more workers
	// than cores only adds scheduling pressure.
	Workers int
	// QueueDepth is the number of requests that may wait behind the
	// busy workers before the server sheds load with 429 (default
	// 4×Workers).
	QueueDepth int
	// CacheEntries caps the content-addressed result cache; 0 disables
	// caching, negative uses the default (256).
	CacheEntries int
	// DefaultTimeout bounds requests that carry no timeout_ms (default
	// 30s); MaxTimeout clips requests that ask for more (default 2min).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	return c
}

// Server is the schematic-generation daemon: a worker pool, a result
// cache, the stats registry, and the pre-parsed built-in workloads.
type Server struct {
	cfg   Config
	pool  *workerPool
	cache *resultCache
	stats *serverStats
	lib   *library.Library

	// builtins maps workload names to designs parsed once at startup.
	// Placement mutates designs through their pointers, so requests
	// never touch these directly: process() hands a Clone to the
	// pipeline (see netlist.(*Design).Clone).
	builtins map[string]*netlist.Design

	// testHook, when non-nil, runs inside every pooled task before the
	// pipeline; tests use it to hold workers busy deterministically.
	testHook func()
}

// New builds a Server (no listener; pair Handler() with http.Serve or
// call Generate directly).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  newWorkerPool(cfg.Workers, cfg.QueueDepth),
		cache: newResultCache(cfg.CacheEntries),
		stats: newServerStats(),
		lib:   library.Builtin(),
		builtins: map[string]*netlist.Design{
			"fig61":    workload.Fig61(),
			"datapath": workload.Datapath16(),
			"cpu":      workload.CPU(),
			"life":     workload.Life27(),
		},
	}
	return s
}

// Close drains the worker pool. In-flight requests finish; queued
// requests whose contexts expire are skipped.
func (s *Server) Close() { s.pool.close() }

// Stats returns the current counters (also served at /v1/stats).
func (s *Server) Stats() StatsResponse {
	sr := s.stats.snapshot()
	sr.Cache = s.cache.stats()
	sr.Queued = s.pool.queued()
	sr.Workers = s.cfg.Workers
	return sr
}

// svcError pairs an error message with the HTTP status it maps to.
type svcError struct {
	status int
	msg    string
}

func (e *svcError) Error() string { return e.msg }

func badRequest(format string, args ...any) *svcError {
	return &svcError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// Generate runs one request through the bounded worker pool and waits
// for its completion. It is the programmatic entry the HTTP handlers
// and the benchmarks share. Returned errors are *svcError with an
// embedded HTTP status.
func (s *Server) Generate(ctx context.Context, req *Request) (*Response, error) {
	s.stats.requests.Add(1)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var (
		resp *Response
		err  error
		ran  bool
	)
	done, serr := s.pool.submit(ctx, func(ctx context.Context) {
		ran = true
		if s.testHook != nil {
			s.testHook()
		}
		resp, err = s.process(ctx, req)
	})
	if serr != nil {
		s.stats.shed.Add(1)
		return nil, &svcError{status: 429, msg: serr.Error()}
	}
	<-done
	if !ran {
		// Deadline expired while the task sat in the queue.
		s.stats.timeouts.Add(1)
		return nil, &svcError{status: 504, msg: ctx.Err().Error()}
	}
	if err != nil {
		if ctx.Err() != nil {
			s.stats.timeouts.Add(1)
			return nil, &svcError{status: 504, msg: err.Error()}
		}
		s.stats.failed.Add(1)
		if se, ok := err.(*svcError); ok {
			return nil, se
		}
		return nil, &svcError{status: 500, msg: err.Error()}
	}
	s.stats.ok.Add(1)
	return resp, nil
}

// process executes the pipeline on a worker goroutine: resolve/parse,
// cache lookup, place+route, render, cache fill. Every stage feeds its
// latency histogram.
func (s *Server) process(ctx context.Context, req *Request) (*Response, error) {
	t0 := time.Now()
	s.stats.inflight.Add(1)
	defer s.stats.inflight.Add(-1)

	format, err := resolveFormat(req.Format)
	if err != nil {
		return nil, err
	}
	opts, err := req.Options.resolve()
	if err != nil {
		return nil, badRequest("%v", err)
	}

	// Parse stage: obtain a request-private design plus its canonical
	// serialization (the cache-key half derived from the network).
	tp := time.Now()
	design, canonical, err := s.resolveDesign(req)
	parseDur := time.Since(tp)
	s.stats.parse.observe(parseDur)
	if err != nil {
		return nil, err
	}

	key := makeCacheKey(canonical, req.Options.canonical(), format)
	if hit, ok := s.cache.get(key); ok {
		hit.Cached = true
		hit.ElapsedMs = msSince(t0)
		s.stats.total.observe(time.Since(t0))
		return &hit, nil
	}

	dg, stages, err := gen.GenerateTimedCtx(ctx, design, opts)
	if stages.Place > 0 {
		s.stats.place.observe(stages.Place)
	}
	if err != nil {
		// Route did not finish: only placement latency is meaningful.
		return nil, err
	}
	s.stats.route.observe(stages.Route)

	tr := time.Now()
	rendered, err := renderDiagram(dg, format)
	renderDur := time.Since(tr)
	s.stats.render.observe(renderDur)
	if err != nil {
		return nil, err
	}

	m := dg.Metrics()
	resp := Response{
		Name:     design.Name,
		Format:   format,
		Diagram:  rendered,
		Metrics:  m,
		Unrouted: m.Unrouted,
		CacheKey: key.String(),
		Stages: StageTimings{
			ParseMs:  durMs(parseDur),
			PlaceMs:  durMs(stages.Place),
			RouteMs:  durMs(stages.Route),
			RenderMs: durMs(renderDur),
		},
	}
	resp.ElapsedMs = msSince(t0)
	s.cache.put(key, resp)
	s.stats.total.observe(time.Since(t0))
	return &resp, nil
}

func durMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000.0
}

func msSince(t time.Time) float64 {
	return durMs(time.Since(t))
}

// resolveDesign turns a request into a private *netlist.Design plus
// its canonical serialization. Built-in workloads are cloned from the
// startup parse; inline Appendix A text is parsed against the builtin
// library.
func (s *Server) resolveDesign(req *Request) (*netlist.Design, string, error) {
	hasInline := req.Netlist != "" || req.Calls != "" || req.IO != ""
	switch {
	case req.Workload != "" && hasInline:
		return nil, "", badRequest("request carries both a workload name and inline netlist text")
	case req.Workload != "":
		if req.Workload == "chain" {
			n := req.ChainLength
			if n <= 0 {
				n = 16
			}
			if n > 1024 {
				return nil, "", badRequest("chain_length %d too large (max 1024)", n)
			}
			d := workload.Chain(n)
			return d, canonicalDesign(d), nil
		}
		base, ok := s.builtins[req.Workload]
		if !ok {
			return nil, "", badRequest("unknown workload %q (fig61, datapath, cpu, life, chain)", req.Workload)
		}
		// The base is shared across requests and placement mutates
		// through design pointers: clone before generating.
		return base.Clone(), canonicalDesign(base), nil
	case req.Netlist == "" || req.Calls == "":
		return nil, "", badRequest("request needs either workload or both netlist and calls")
	default:
		name := req.Name
		if name == "" {
			name = "design"
		}
		var ioR io.Reader
		if req.IO != "" {
			ioR = strings.NewReader(req.IO)
		}
		d, err := netlist.Load(name, strings.NewReader(req.Calls), strings.NewReader(req.Netlist), ioR, s.lib)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if err := d.Validate(1); err != nil {
			return nil, "", badRequest("%v", err)
		}
		return d, canonicalDesign(d), nil
	}
}

// canonicalDesign serializes a design into the cache-key form: module
// geometry in insertion order, then the io and net-list records in the
// writers' deterministic order. Two inline netlists differing only in
// record order, comments or whitespace canonicalize identically; see
// DESIGN.md "Service result cache".
func canonicalDesign(d *netlist.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", d.Name)
	for _, m := range d.Modules {
		fmt.Fprintf(&b, "mod %s tpl=%s %dx%d\n", m.Name, m.Template, m.W, m.H)
		for _, t := range m.Terms {
			fmt.Fprintf(&b, " t %s %d %d,%d\n", t.Name, int(t.Type), t.Pos.X, t.Pos.Y)
		}
	}
	_ = netlist.WriteIOFile(&b, d)
	_ = netlist.WriteNetListFile(&b, d)
	return b.String()
}
