package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"netart/internal/gen"
	"netart/internal/library"
	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/resilience"
	"netart/internal/route"
	"netart/internal/workload"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of concurrent generation goroutines
	// (default GOMAXPROCS). Generation is CPU-bound, so more workers
	// than cores only adds scheduling pressure.
	Workers int
	// QueueDepth is the number of requests that may wait behind the
	// busy workers before the server sheds load with 429 (default
	// 4×Workers).
	QueueDepth int
	// CacheEntries caps the content-addressed result cache; 0 disables
	// caching, negative uses the default (256).
	CacheEntries int
	// DefaultTimeout bounds requests that carry no timeout_ms (default
	// 30s); MaxTimeout clips requests that ask for more (default 2min).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxBodyBytes caps request bodies; oversized bodies get a clean
	// 413 before any decoding (default 8 MiB).
	MaxBodyBytes int64
	// MaxModules / MaxNets / MaxPlaneArea are the resource guards:
	// designs beyond these caps are rejected with 422 before (counts)
	// or instead of (plane area) consuming a routing plane. Zero uses
	// the defaults (4096 modules, 16384 nets, 4M plane points);
	// negative disables the corresponding guard.
	MaxModules   int
	MaxNets      int
	MaxPlaneArea int

	// DegradeMode is the server-wide default degradation policy for
	// requests that do not pick their own (see gen.DegradeMode).
	DegradeMode gen.DegradeMode

	// RouteWorkers is the server-wide default for the router's
	// speculative parallelism (route.Options.Workers); requests that
	// carry their own route_workers override it. 0/1 routes
	// sequentially. Parallel and sequential routing produce
	// byte-identical results, so this only trades CPU for latency.
	RouteWorkers int

	// PlaceWorkers is the server-wide default for the placement
	// engine's parallelism (place.Options.Workers); requests that carry
	// their own place_workers override it. 0/1 places sequentially.
	// Parallel and sequential placement produce byte-identical results,
	// so this only trades CPU for latency.
	PlaceWorkers int

	// VerifyRouting re-derives every response's net connectivity from
	// the routed wire geometry and rejects the response if it does not
	// match the netlist (route.VerifyEquivalence). A failed check is a
	// router invariant violation, served as a 500 and never cached.
	// Chaos and CI deployments turn this on; the check is O(wire
	// points) per request.
	VerifyRouting bool

	// BatchRetries is the number of extra attempts a transient /v1/batch
	// item failure may consume (default 2; negative disables retry).
	// RetryBase/RetryMax shape the exponential backoff between attempts
	// (defaults 10ms/250ms; jitter is always applied).
	BatchRetries int
	RetryBase    time.Duration
	RetryMax     time.Duration

	// Inject arms the fault-injection sites across the whole pipeline
	// (chaos testing; see resilience.ParseSpec). While any rule is
	// armed the result cache is bypassed so injected failures cannot
	// poison cached artwork. Nil disables injection at zero cost.
	Inject *resilience.Injector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	switch {
	case c.MaxModules == 0:
		c.MaxModules = 4096
	case c.MaxModules < 0:
		c.MaxModules = 0
	}
	switch {
	case c.MaxNets == 0:
		c.MaxNets = 16384
	case c.MaxNets < 0:
		c.MaxNets = 0
	}
	switch {
	case c.MaxPlaneArea == 0:
		c.MaxPlaneArea = 4 << 20
	case c.MaxPlaneArea < 0:
		c.MaxPlaneArea = 0
	}
	if c.BatchRetries == 0 {
		c.BatchRetries = 2
	} else if c.BatchRetries < 0 {
		c.BatchRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	return c
}

// guards derives the resilience caps from the config.
func (c Config) guards() resilience.Guards {
	return resilience.Guards{
		MaxModules:   c.MaxModules,
		MaxNets:      c.MaxNets,
		MaxPlaneArea: c.MaxPlaneArea,
	}
}

// Server is the schematic-generation daemon: a worker pool, a result
// cache, the stats registry, and the pre-parsed built-in workloads.
type Server struct {
	cfg   Config
	pool  *workerPool
	cache *resultCache
	stats *serverStats
	obs   *obs.Pipeline
	lib   *library.Library

	// builtins maps workload names to designs parsed once at startup.
	// Placement mutates designs through their pointers, so requests
	// never touch these directly: process() hands a Clone to the
	// pipeline (see netlist.(*Design).Clone).
	builtins map[string]*netlist.Design

	// testHook, when non-nil, runs inside every pooled task before the
	// pipeline; tests use it to hold workers busy deterministically.
	testHook func()
}

// New builds a Server (no listener; pair Handler() with http.Serve or
// call Generate directly).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := obs.NewPipeline()
	s := &Server{
		cfg:   cfg,
		pool:  newWorkerPool(cfg.Workers, cfg.QueueDepth),
		cache: newResultCache(cfg.CacheEntries, m),
		stats: newServerStats(m),
		obs:   m,
		lib:   library.Builtin(),
		builtins: map[string]*netlist.Design{
			"fig61":      workload.Fig61(),
			"quickstart": workload.Quickstart(),
			"datapath":   workload.Datapath16(),
			"cpu":        workload.CPU(),
			"life":       workload.Life27(),
		},
	}
	// Pool/cache shape gauges are sampled live at scrape time.
	m.Reg.GaugeFunc("netart_queued_requests",
		"Requests waiting behind the busy workers.", "",
		func() float64 { return float64(s.pool.queued()) })
	m.Reg.GaugeFunc("netart_workers", "Configured worker goroutines.", "",
		func() float64 { return float64(s.cfg.Workers) })
	m.Reg.GaugeFunc("netart_cache_entries", "Result cache entries.", "",
		func() float64 { return float64(s.cache.len()) })
	m.Reg.GaugeFunc("netart_cache_capacity", "Result cache capacity.", "",
		func() float64 { return float64(s.cfg.CacheEntries) })
	// Panics that escape a task (outside the per-request Recover) are
	// still counted and surfaced in /v1/stats.
	s.pool.onPanic = s.stats.recordPanic
	return s
}

// Metrics exposes the server's obs metric set (the /metrics registry);
// tests and embedding daemons read counters through it.
func (s *Server) Metrics() *obs.Pipeline { return s.obs }

// Close drains the worker pool. In-flight requests finish; queued
// requests whose contexts expire are skipped.
func (s *Server) Close() { s.pool.close() }

// Stats returns the current counters (also served at /v1/stats).
func (s *Server) Stats() StatsResponse {
	sr := s.stats.snapshot()
	sr.Cache = s.cache.stats()
	sr.Queued = s.pool.queued()
	sr.Workers = s.cfg.Workers
	return sr
}

// svcError pairs an error message with the HTTP status it maps to.
// cause, when set, preserves the underlying pipeline error so the
// batch retry layer can classify transience through errors.Unwrap.
type svcError struct {
	status int
	msg    string
	cause  error
}

func (e *svcError) Error() string { return e.msg }
func (e *svcError) Unwrap() error { return e.cause }

func badRequest(format string, args ...any) *svcError {
	return &svcError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// unprocessable is the 422 of the resource guards: the request parses
// fine but exceeds this deployment's caps, so retrying it unchanged is
// pointless.
func unprocessable(format string, args ...any) *svcError {
	return &svcError{status: 422, msg: fmt.Sprintf(format, args...)}
}

// preGuard sheds obviously pathological requests before they occupy a
// queue slot: the caps are checked cheaply on the raw text (line
// counts can only overestimate module/net counts by comments and blank
// lines, so the bound is doubled; the authoritative post-parse check
// runs inside the pool).
func (s *Server) preGuard(req *Request) error {
	if req.ChainLength > maxChainLength {
		return unprocessable("chain_length %d exceeds limit %d", req.ChainLength, maxChainLength)
	}
	if s.cfg.MaxModules > 0 {
		if lines := countLines(req.Calls); lines > 2*s.cfg.MaxModules+16 {
			return unprocessable("call records (%d lines) exceed module limit %d", lines, s.cfg.MaxModules)
		}
	}
	if s.cfg.MaxNets > 0 {
		if lines := countLines(req.Netlist); lines > 16*s.cfg.MaxNets {
			return unprocessable("net-list records (%d lines) exceed net limit %d", lines, s.cfg.MaxNets)
		}
	}
	return nil
}

func countLines(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n") + 1
}

// Generate runs one request and adapts the result to the /v1 wire
// shape. Programmatic callers that want the full report (timings,
// degradation, trace) use GenerateV2.
func (s *Server) Generate(ctx context.Context, req *Request) (*Response, error) {
	v2, err := s.GenerateV2(ctx, req)
	if err != nil {
		return nil, err
	}
	return v2.V1(), nil
}

// GenerateV2 runs one request through the bounded worker pool and
// waits for its completion. It is the programmatic entry the HTTP
// handlers and the benchmarks share. Returned errors are *svcError
// with an embedded HTTP status.
//
// The pipeline closure runs under resilience.Recover: a panic in any
// stage becomes a *resilience.StageError, is recorded in /v1/stats
// and /metrics, and maps to a 500 for this request alone — the
// daemon, the worker goroutine, and every other queued request keep
// going.
func (s *Server) GenerateV2(ctx context.Context, req *Request) (*ResponseV2, error) {
	s.obs.Requests.Inc()

	if err := s.preGuard(req); err != nil {
		s.obs.Rejected.Inc()
		return nil, err
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var (
		resp *ResponseV2
		err  error
		ran  bool
	)
	done, serr := s.pool.submit(ctx, func(ctx context.Context) {
		ran = true
		err = resilience.Recover("pipeline", func() error {
			if s.testHook != nil {
				s.testHook()
			}
			var perr error
			resp, perr = s.process(ctx, req)
			return perr
		})
	})
	if serr != nil {
		s.obs.Shed.Inc()
		return nil, &svcError{status: 429, msg: serr.Error()}
	}
	<-done
	if !ran {
		// Deadline expired while the task sat in the queue.
		s.obs.Timeouts.Inc()
		return nil, &svcError{status: 504, msg: ctx.Err().Error()}
	}
	if err == nil && resp == nil {
		// Defensive: a task that was aborted by the pool's last-resort
		// recovery leaves neither a response nor an error behind.
		err = &svcError{status: 500, msg: "internal: generation task aborted"}
	}
	if err != nil {
		return nil, s.mapError(ctx, err)
	}
	if resp.Report.Degraded != nil {
		s.obs.Degraded.Inc()
	}
	s.obs.OK.Inc()
	return resp, nil
}

// mapError classifies a pipeline error into the *svcError the HTTP
// layer serves, updating the outcome counters on the way:
//
//	panic (StageError)        → 500, counted + ringed in /v1/stats
//	resource cap (LimitError) → 422
//	unroutable (strict modes) → 422
//	context deadline          → 504
//	anything else             → its svcError status, or 500
func (s *Server) mapError(ctx context.Context, err error) *svcError {
	if se, ok := resilience.AsStageError(err); ok {
		s.stats.recordPanic(se)
		s.obs.Failed.Inc()
		return &svcError{status: 500, msg: se.Error(), cause: se}
	}
	if le, ok := resilience.AsLimitError(err); ok {
		s.obs.Rejected.Inc()
		return unprocessable("%v", le)
	}
	var ue *gen.UnroutableError
	if errors.As(err, &ue) {
		s.obs.Failed.Inc()
		return unprocessable("%v", ue)
	}
	if ctx.Err() != nil {
		s.obs.Timeouts.Inc()
		return &svcError{status: 504, msg: err.Error(), cause: err}
	}
	s.obs.Failed.Inc()
	if se, ok := err.(*svcError); ok {
		return se
	}
	return &svcError{status: 500, msg: err.Error(), cause: err}
}

// process executes the pipeline on a worker goroutine: resolve/parse,
// cache lookup, place+route, render, cache fill. One obs.Observer is
// threaded through all of it: every stage appears as a span under the
// "request" root (feeding the per-stage latency histograms on span
// end) and runs under its own resilience.Recover so a panic is
// attributed to the stage it escaped from.
func (s *Server) process(ctx context.Context, req *Request) (*ResponseV2, error) {
	t0 := time.Now()
	s.obs.Inflight.Add(1)
	defer s.obs.Inflight.Add(-1)

	o := obs.NewObserver(s.obs, "request")

	format, err := resolveFormat(req.Format)
	if err != nil {
		return nil, err
	}
	opts, err := req.Options.resolve()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	// Server-side resilience and observability wiring: the effective
	// degradation policy (request override wins), the fault injector,
	// the plane-area guard, and the observer all ride on gen.Options.
	if req.Options.DegradeMode == "" {
		opts.Degrade = s.cfg.DegradeMode
	}
	if req.Options.RouteWorkers == 0 {
		opts.RouteWorkers = s.cfg.RouteWorkers
	}
	if req.Options.PlaceWorkers == 0 {
		opts.PlaceWorkers = s.cfg.PlaceWorkers
	}
	opts.Inject = s.cfg.Inject
	opts.Observer = o
	if opts.Route.MaxPlaneArea == 0 {
		opts.Route.MaxPlaneArea = s.cfg.MaxPlaneArea
	}

	// Parse stage: obtain a request-private design plus its canonical
	// serialization (the cache-key half derived from the network).
	psp := o.StartSpan("parse")
	var (
		design    *netlist.Design
		canonical string
	)
	err = resilience.Recover("parse", func() error {
		if ferr := s.cfg.Inject.Fire(resilience.SiteParse); ferr != nil {
			return ferr
		}
		var perr error
		design, canonical, perr = s.resolveDesign(req)
		return perr
	})
	if err != nil {
		endSpanError(psp, err)
		return nil, err
	}
	psp.SetAttr("modules", int64(len(design.Modules)))
	psp.SetAttr("nets", int64(len(design.Nets)))
	psp.End()
	// Authoritative resource guard, now that real counts exist.
	if err := s.cfg.guards().CheckCounts(len(design.Modules), len(design.Nets)); err != nil {
		return nil, err
	}

	// While faults are armed the cache is bypassed entirely: a degraded
	// or injected-failure artwork must never be served to a later clean
	// request (and chaos runs must not be masked by earlier hits).
	useCache := !s.cfg.Inject.Enabled()

	key := makeCacheKey(canonical, req.Options.canonical(opts.Degrade), format)
	if useCache {
		if hit, ok := s.cache.get(key); ok {
			hit.Cached = true
			hit.ElapsedMs = msSince(t0)
			// The cached report keeps the original run's timings and
			// attempts, but the trace must describe *this* request:
			// root + parse, nothing recomputed.
			hit.Report.Trace = o.Snapshot()
			s.obs.Traces.Inc()
			s.obs.StageObserve("total", time.Since(t0))
			return &hit, nil
		}
	}

	rep, err := gen.Run(ctx, design, opts)
	if err != nil {
		return nil, err
	}

	if s.cfg.VerifyRouting && rep.Routing != nil {
		// Machine-check the artwork before serving it: the electrical
		// connectivity re-derived from the routed wires alone must match
		// the input netlist. A violation here is a router bug, not a bad
		// request — it maps to 500 and is never cached.
		vsp := o.StartSpan("verify")
		if verr := route.VerifyEquivalence(rep.Routing); verr != nil {
			endSpanError(vsp, verr)
			return nil, &svcError{status: 500,
				msg: fmt.Sprintf("routing equivalence check failed: %v", verr), cause: verr}
		}
		vsp.End()
	}

	rsp := o.StartSpan("render")
	var rendered string
	err = resilience.Recover("render", func() error {
		if ferr := s.cfg.Inject.Fire(resilience.SiteRender); ferr != nil {
			return ferr
		}
		var rerr error
		rendered, rerr = renderDiagram(rep.Diagram, format)
		return rerr
	})
	if err != nil {
		endSpanError(rsp, err)
		return nil, err
	}
	rsp.SetAttr("bytes", int64(len(rendered)))
	rsp.End()

	timings := rep.Timings
	timings.Parse = spanDur(o, "parse")
	timings.Render = spanDur(o, "render")

	m := rep.Diagram.Metrics()
	resp := ResponseV2{
		Name:     design.Name,
		Format:   format,
		Diagram:  rendered,
		Metrics:  m,
		Unrouted: m.Unrouted,
		CacheKey: key.String(),
		Report: Report{
			Timings:  timings,
			Attempts: rep.Attempts,
			Search:   rep.Search,
			Degraded: degradedReport(rep.Degraded),
		},
	}
	resp.ElapsedMs = msSince(t0)
	resp.Report.Trace = o.Snapshot()
	s.obs.Traces.Inc()
	if useCache {
		s.cache.put(key, resp)
	}
	s.obs.StageObserve("total", time.Since(t0))
	return &resp, nil
}

// endSpanError closes a stage span with the right outcome: panic for
// recovered panics, error otherwise.
func endSpanError(sp *obs.Span, err error) {
	if se, ok := resilience.AsStageError(err); ok {
		sp.EndPanic(se.Cause)
		return
	}
	sp.EndError(err)
}

// spanDur reads a stage duration back from the observer's span tree
// (the span is the single timing source; no second stopwatch).
func spanDur(o *obs.Observer, stage string) time.Duration {
	td := o.Snapshot()
	if sp := td.Find(stage); sp != nil {
		return time.Duration(sp.ElapsedUs) * time.Microsecond
	}
	return 0
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000.0
}

// maxChainLength caps the synthetic chain workload.
const maxChainLength = 1024

// resolveDesign turns a request into a private *netlist.Design plus
// its canonical serialization. Built-in workloads are cloned from the
// startup parse; inline Appendix A text is parsed against the builtin
// library.
func (s *Server) resolveDesign(req *Request) (*netlist.Design, string, error) {
	hasInline := req.Netlist != "" || req.Calls != "" || req.IO != ""
	switch {
	case req.Workload != "" && hasInline:
		return nil, "", badRequest("request carries both a workload name and inline netlist text")
	case req.Workload != "":
		if req.Workload == "chain" {
			n := req.ChainLength
			if n <= 0 {
				n = 16
			}
			if n > maxChainLength {
				return nil, "", unprocessable("chain_length %d exceeds limit %d", n, maxChainLength)
			}
			d := workload.Chain(n)
			return d, canonicalDesign(d), nil
		}
		base, ok := s.builtins[req.Workload]
		if !ok {
			return nil, "", badRequest("unknown workload %q (fig61, datapath, cpu, life, chain)", req.Workload)
		}
		// The base is shared across requests and placement mutates
		// through design pointers: clone before generating.
		return base.Clone(), canonicalDesign(base), nil
	case req.Netlist == "" || req.Calls == "":
		return nil, "", badRequest("request needs either workload or both netlist and calls")
	default:
		name := req.Name
		if name == "" {
			name = "design"
		}
		var ioR io.Reader
		if req.IO != "" {
			ioR = strings.NewReader(req.IO)
		}
		d, err := netlist.Load(name, strings.NewReader(req.Calls), strings.NewReader(req.Netlist), ioR, s.lib)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if err := d.Validate(1); err != nil {
			return nil, "", badRequest("%v", err)
		}
		return d, canonicalDesign(d), nil
	}
}

// canonicalDesign serializes a design into the cache-key form: module
// geometry in insertion order, then the io and net-list records in the
// writers' deterministic order. Two inline netlists differing only in
// record order, comments or whitespace canonicalize identically; see
// DESIGN.md "Service result cache".
func canonicalDesign(d *netlist.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", d.Name)
	for _, m := range d.Modules {
		fmt.Fprintf(&b, "mod %s tpl=%s %dx%d\n", m.Name, m.Template, m.W, m.H)
		for _, t := range m.Terms {
			fmt.Fprintf(&b, " t %s %d %d,%d\n", t.Name, int(t.Type), t.Pos.X, t.Pos.Y)
		}
	}
	_ = netlist.WriteIOFile(&b, d)
	_ = netlist.WriteNetListFile(&b, d)
	return b.String()
}
