package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"netart/internal/gen"
	"netart/internal/jobs"
	"netart/internal/library"
	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/resilience"
	"netart/internal/route"
	"netart/internal/store"
	"netart/internal/store/cluster"
	"netart/internal/store/singleflight"
	"netart/internal/workload"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of concurrent generation goroutines
	// (default GOMAXPROCS). Generation is CPU-bound, so more workers
	// than cores only adds scheduling pressure.
	Workers int
	// QueueDepth is the number of requests that may wait behind the
	// busy workers before the server sheds load with 429 (default
	// 4×Workers).
	QueueDepth int
	// CacheEntries caps the content-addressed result cache; 0 disables
	// caching, negative uses the default (256).
	CacheEntries int
	// DefaultTimeout bounds requests that carry no timeout_ms (default
	// 30s); MaxTimeout clips requests that ask for more (default 2min).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// JobsMax caps the async job ring (/v2/jobs): at most this many job
	// records are tracked at once, and a submission that cannot make
	// room (every record is live) is shed with 429 exactly like a full
	// worker queue (default 256). JobsTTL is how long a finished job's
	// record — status document and event log — stays fetchable before
	// eviction (default 15min). The rendered artwork itself outlives the
	// record through the result store.
	JobsMax int
	JobsTTL time.Duration

	// MaxBodyBytes caps request bodies; oversized bodies get a clean
	// 413 before any decoding (default 8 MiB).
	MaxBodyBytes int64
	// MaxModules / MaxNets / MaxPlaneArea are the resource guards:
	// designs beyond these caps are rejected with 422 before (counts)
	// or instead of (plane area) consuming a routing plane. Zero uses
	// the defaults (4096 modules, 16384 nets, 4M plane points);
	// negative disables the corresponding guard.
	MaxModules   int
	MaxNets      int
	MaxPlaneArea int

	// DegradeMode is the server-wide default degradation policy for
	// requests that do not pick their own (see gen.DegradeMode).
	DegradeMode gen.DegradeMode

	// RouteWorkers is the server-wide default for the router's
	// speculative parallelism (route.Options.Workers); requests that
	// carry their own route_workers override it. 0/1 routes
	// sequentially. Parallel and sequential routing produce
	// byte-identical results, so this only trades CPU for latency.
	RouteWorkers int

	// PlaceWorkers is the server-wide default for the placement
	// engine's parallelism (place.Options.Workers); requests that carry
	// their own place_workers override it. 0/1 places sequentially.
	// Parallel and sequential placement produce byte-identical results,
	// so this only trades CPU for latency.
	PlaceWorkers int

	// VerifyRouting re-derives every response's net connectivity from
	// the routed wire geometry and rejects the response if it does not
	// match the netlist (route.VerifyEquivalence). A failed check is a
	// router invariant violation, served as a 500 and never cached.
	// Chaos and CI deployments turn this on; the check is O(wire
	// points) per request.
	VerifyRouting bool

	// BatchRetries is the number of extra attempts a transient /v1/batch
	// item failure may consume (default 2; negative disables retry).
	// RetryBase/RetryMax shape the exponential backoff between attempts
	// (defaults 10ms/250ms; jitter is always applied).
	BatchRetries int
	RetryBase    time.Duration
	RetryMax     time.Duration

	// Inject arms the fault-injection sites across the whole pipeline
	// (chaos testing; see resilience.ParseSpec). While any rule is
	// armed the result cache is bypassed so injected failures cannot
	// poison cached artwork. Nil disables injection at zero cost.
	Inject *resilience.Injector

	// StoreBackend selects the result-store composition: "mem" (the
	// in-process LRU; default), "disk" (content-addressed files under
	// StoreDir, survives restarts), or "tiered" (memory over disk with
	// write-through and promotion on hit). "disk" and "tiered" require
	// StoreDir.
	StoreBackend string
	// StoreDir is the disk store root; entries live under
	// <StoreDir>/<key version>.
	StoreDir string
	// StoreMaxBytes bounds the disk tier; least-recently-used entries
	// are garbage-collected beyond it (default 256 MiB; negative
	// disables the bound).
	StoreMaxBytes int64

	// Peers is the static replica list of a netartd fleet (base URLs).
	// When it names more than one replica, each design hash gets a
	// consistent-hash owner: cold requests for keys owned elsewhere
	// are proxied to the owner (single hop, local-compute fallback
	// when it is unreachable). SelfURL must be this replica's own base
	// URL as the peers see it; it is added to Peers if absent.
	Peers   []string
	SelfURL string

	// PeerProbeInterval paces the fleet health prober: each remote
	// peer's /v1/healthz is probed on a jittered schedule, and the
	// results drive a per-peer circuit breaker that removes dead peers
	// from the ownership set (their keys remap to live replicas and
	// remap back on recovery). 0 uses the default (2s); negative
	// disables active probing — breakers then open on proxy failures
	// only and never recover until restart. Only meaningful with Peers.
	PeerProbeInterval time.Duration
	// PeerFailThreshold is the consecutive-transport-failure count
	// that opens a peer's breaker (default 3).
	PeerFailThreshold int
	// ProxyHedgeAfter, when positive, hedges a proxied request: if the
	// key's owner has not answered within the delay, the same request
	// is sent to the next-ranked live peer and the first response wins
	// (the loser is canceled). Deterministic generation makes this
	// safe — both peers produce byte-identical artwork. 0 disables.
	ProxyHedgeAfter time.Duration
	// PeerTimeout is an overall client-side bound per proxied call in
	// addition to the per-request context (0 = context only).
	PeerTimeout time.Duration
	// PeerFaults injects seeded network-layer faults (error / latency
	// / blackhole / 5xx per peer) into all peer traffic, probes
	// included — the fleet half of chaos testing. Nil disables.
	PeerFaults *cluster.FaultPlan
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.JobsMax <= 0 {
		c.JobsMax = 256
	}
	if c.JobsTTL <= 0 {
		c.JobsTTL = 15 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	switch {
	case c.MaxModules == 0:
		c.MaxModules = 4096
	case c.MaxModules < 0:
		c.MaxModules = 0
	}
	switch {
	case c.MaxNets == 0:
		c.MaxNets = 16384
	case c.MaxNets < 0:
		c.MaxNets = 0
	}
	switch {
	case c.MaxPlaneArea == 0:
		c.MaxPlaneArea = 4 << 20
	case c.MaxPlaneArea < 0:
		c.MaxPlaneArea = 0
	}
	if c.BatchRetries == 0 {
		c.BatchRetries = 2
	} else if c.BatchRetries < 0 {
		c.BatchRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.StoreBackend == "" {
		c.StoreBackend = "mem"
	}
	switch {
	case c.PeerProbeInterval == 0:
		c.PeerProbeInterval = 2 * time.Second
	case c.PeerProbeInterval < 0:
		c.PeerProbeInterval = 0
	}
	if c.PeerFailThreshold <= 0 {
		c.PeerFailThreshold = 3
	}
	switch {
	case c.StoreMaxBytes == 0:
		c.StoreMaxBytes = 256 << 20
	case c.StoreMaxBytes < 0:
		c.StoreMaxBytes = 0
	}
	return c
}

// guards derives the resilience caps from the config.
func (c Config) guards() resilience.Guards {
	return resilience.Guards{
		MaxModules:   c.MaxModules,
		MaxNets:      c.MaxNets,
		MaxPlaneArea: c.MaxPlaneArea,
	}
}

// Server is the schematic-generation daemon: a worker pool, a result
// store, the singleflight group, the optional fleet view, the stats
// registry, and the pre-parsed built-in workloads.
type Server struct {
	cfg    Config
	pool   *workerPool
	cache  *resultStore
	flight *singleflight.Group
	fleet  *cluster.Fleet
	stats  *serverStats
	obs    *obs.Pipeline
	lib    *library.Library
	jobs   *jobs.Manager

	// builtins maps workload names to designs parsed once at startup.
	// Placement mutates designs through their pointers, so requests
	// never touch these directly: process() hands a Clone to the
	// pipeline (see netlist.(*Design).Clone).
	builtins map[string]*netlist.Design

	// testHook, when non-nil, runs inside every pooled task before the
	// pipeline; tests use it to hold workers busy deterministically.
	// flightHook runs inside a singleflight leader before it computes;
	// tests use it to hold the leader until every follower has joined.
	testHook   func()
	flightHook func()
}

// New builds a Server (no listener; pair Handler() with http.Serve or
// call Generate directly). It panics on a config error — only
// possible with disk-backed stores or a bad peer list, so callers
// using those pass through NewServer instead.
func New(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic(fmt.Sprintf("service: %v", err))
	}
	return s
}

// buildStore assembles the configured store composition. A zero
// CacheEntries disables the memory tier (and with backend "mem",
// caching entirely), preserving the old cache semantics.
func buildStore(cfg Config, rec store.Recorder) (store.Store, error) {
	newDisk := func() (store.Store, error) {
		return store.NewDisk(cfg.StoreDir, store.DiskOptions{
			Namespace: keyVersion,
			MaxBytes:  cfg.StoreMaxBytes,
			Recorder:  rec,
		})
	}
	switch cfg.StoreBackend {
	case "mem":
		if cfg.CacheEntries <= 0 {
			return nil, nil // caching disabled
		}
		return store.NewMem(cfg.CacheEntries, rec), nil
	case "disk":
		return newDisk()
	case "tiered":
		disk, err := newDisk()
		if err != nil {
			return nil, err
		}
		if cfg.CacheEntries <= 0 {
			return disk, nil // no memory tier to put on top
		}
		return store.NewTiered(store.NewMem(cfg.CacheEntries, rec), disk, rec), nil
	default:
		return nil, fmt.Errorf("unknown store backend %q (mem, disk, tiered)", cfg.StoreBackend)
	}
}

// NewServer builds a Server, surfacing store/fleet config errors.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	m := obs.NewPipeline()
	// The recorder bridges backend events into the shared metric set;
	// memory-tier evictions additionally feed the legacy cache counter
	// so the pre-store-tier /v1/stats wire meaning is preserved.
	rec := func(tier, event string) {
		m.StoreEvent(tier, event)
		if tier == "mem" && event == store.EventEvict {
			m.CacheEvictions.Inc()
		}
	}
	backend, err := buildStore(cfg, rec)
	if err != nil {
		return nil, err
	}
	var fleet *cluster.Fleet
	if len(cfg.Peers) > 0 {
		copts := cluster.Options{
			Timeout:          cfg.PeerTimeout,
			MaxResponseBytes: cfg.MaxBodyBytes,
			HedgeAfter:       cfg.ProxyHedgeAfter,
			OnEvent: func(ev string) {
				switch ev {
				case cluster.EventProxyRetry:
					m.ProxyRetries.Inc()
				case cluster.EventHedgeLaunched:
					m.HedgeLaunched.Inc()
				case cluster.EventHedgeWon:
					m.HedgeWon.Inc()
				}
			},
			// Breakers are always on for a fleet; PeerProbeInterval 0
			// (a negative config value) merely disables the prober.
			Probe: &cluster.HealthOptions{
				ProbeInterval: cfg.PeerProbeInterval,
				FailThreshold: cfg.PeerFailThreshold,
				OnTransition: func(peer string, from, to cluster.State) {
					switch to {
					case cluster.StateOpen:
						m.PeerOpened.Inc()
					case cluster.StateHalfOpen:
						m.PeerHalfOpened.Inc()
					default:
						m.PeerClosed.Inc()
					}
				},
			},
		}
		if cfg.PeerFaults != nil {
			copts.Transport = &cluster.FaultTransport{Plan: cfg.PeerFaults}
		}
		fleet, err = cluster.New(cfg.SelfURL, cfg.Peers, copts)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:    cfg,
		pool:   newWorkerPool(cfg.Workers, cfg.QueueDepth),
		cache:  newResultStore(backend, cfg.StoreBackend, cfg.Inject, m),
		flight: new(singleflight.Group),
		fleet:  fleet,
		stats:  newServerStats(m),
		obs:    m,
		lib:    library.Builtin(),
		builtins: map[string]*netlist.Design{
			"fig61":      workload.Fig61(),
			"quickstart": workload.Quickstart(),
			"datapath":   workload.Datapath16(),
			"cpu":        workload.CPU(),
			"life":       workload.Life27(),
		},
		// Terminal-state, eviction, and event-log activity of the job
		// ring feeds the shared metric set, so /metrics, /v1/stats and
		// job status documents always agree.
		jobs: jobs.NewManager(cfg.JobsMax, cfg.JobsTTL, jobs.Hooks{
			OnEvent: func() { m.JobsEvents.Inc() },
			OnFinish: func(st jobs.State) {
				switch st {
				case jobs.StateDone:
					m.JobsDone.Inc()
				case jobs.StateFailed:
					m.JobsFailed.Inc()
				default:
					m.JobsCanceled.Inc()
				}
			},
			OnEvict: func() { m.JobsEvicted.Inc() },
		}),
	}
	// Pool/cache shape gauges are sampled live at scrape time.
	m.Reg.GaugeFunc("netart_queued_requests",
		"Requests waiting behind the busy workers.", "",
		func() float64 { return float64(s.pool.queued()) })
	m.Reg.GaugeFunc("netart_workers", "Configured worker goroutines.", "",
		func() float64 { return float64(s.cfg.Workers) })
	m.Reg.GaugeFunc("netart_cache_entries", "Result cache entries.", "",
		func() float64 { return float64(s.cache.len()) })
	m.Reg.GaugeFunc("netart_cache_capacity", "Result cache capacity.", "",
		func() float64 { return float64(s.cfg.CacheEntries) })
	m.Reg.GaugeFunc("netart_store_bytes", "Bytes held across all store tiers.", "",
		func() float64 { return float64(s.cache.bytes()) })
	m.Reg.GaugeFunc("netart_jobs_tracked", "Job records currently held in the ring.", "",
		func() float64 { tracked, _ := s.jobs.Counts(); return float64(tracked) })
	m.Reg.GaugeFunc("netart_jobs_active", "Jobs currently queued or running.", "",
		func() float64 { _, live := s.jobs.Counts(); return float64(live) })
	// One breaker-state gauge per fleet peer, sampled at scrape time:
	// 1 closed (live), 0.5 half-open (probing), 0 open (down).
	if s.fleet.Enabled() {
		for _, ps := range s.fleet.PeerStates() {
			peer := ps.URL
			m.Reg.GaugeFunc("netart_peer_state",
				"Per-peer circuit-breaker state: 1 closed (live), 0.5 half-open (probing), 0 open (down).",
				`peer="`+peer+`"`,
				func() float64 { return s.fleet.StateOf(peer).GaugeValue() })
		}
	}
	// Panics that escape a task (outside the per-request Recover) are
	// still counted and surfaced in /v1/stats.
	s.pool.onPanic = s.stats.recordPanic
	return s, nil
}

// Metrics exposes the server's obs metric set (the /metrics registry);
// tests and embedding daemons read counters through it.
func (s *Server) Metrics() *obs.Pipeline { return s.obs }

// Fleet exposes the live fleet view (nil outside a fleet); benches
// and tests read ownership and breaker states through it.
func (s *Server) Fleet() *cluster.Fleet { return s.fleet }

// Jobs exposes the async job ring; benches and tests submit through
// SubmitJob and observe through the manager.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// fleetHealth snapshots the fleet section of /v1/healthz and
// /v1/stats; nil when this daemon is not part of a fleet.
func (s *Server) fleetHealth() *FleetHealth {
	if !s.fleet.Enabled() {
		return nil
	}
	fh := &FleetHealth{Self: s.fleet.Self()}
	for _, ps := range s.fleet.PeerStates() {
		live := ps.State == cluster.StateClosed
		fh.Peers = append(fh.Peers, PeerHealth{
			URL:   ps.URL,
			State: ps.State.String(),
			Live:  live,
		})
		if !live {
			fh.Down++
		}
	}
	return fh
}

// Close drains the worker pool, then closes the result store and the
// fleet client. Ordering matters for graceful persistence: in-flight
// requests finish (and write through to disk) before the store is
// released, so a daemon stopped mid-traffic restarts warm.
func (s *Server) Close() {
	s.pool.close()
	s.cache.close()
	s.fleet.Close()
}

// Stats returns the current counters (also served at /v1/stats).
func (s *Server) Stats() StatsResponse {
	sr := s.stats.snapshot()
	sr.Cache = s.cache.stats(s.cfg.CacheEntries, s.obs.CacheEvictions)
	sr.Store = s.cache.storeStats()
	sr.Fleet = s.fleetHealth()
	sr.Queued = s.pool.queued()
	sr.Workers = s.cfg.Workers
	tracked, live := s.jobs.Counts()
	sr.Jobs = &JobsStats{
		Submitted: s.obs.JobsSubmitted.Value(),
		Done:      s.obs.JobsDone.Value(),
		Failed:    s.obs.JobsFailed.Value(),
		Canceled:  s.obs.JobsCanceled.Value(),
		Evicted:   s.obs.JobsEvicted.Value(),
		Events:    s.obs.JobsEvents.Value(),
		Tracked:   tracked,
		Active:    live,
	}
	return sr
}

// svcError pairs an error message with the HTTP status it maps to.
// cause, when set, preserves the underlying pipeline error so the
// batch retry layer can classify transience through errors.Unwrap.
type svcError struct {
	status int
	msg    string
	cause  error
}

func (e *svcError) Error() string { return e.msg }
func (e *svcError) Unwrap() error { return e.cause }

func badRequest(format string, args ...any) *svcError {
	return &svcError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// unprocessable is the 422 of the resource guards: the request parses
// fine but exceeds this deployment's caps, so retrying it unchanged is
// pointless.
func unprocessable(format string, args ...any) *svcError {
	return &svcError{status: 422, msg: fmt.Sprintf(format, args...)}
}

// preGuard sheds obviously pathological requests before they occupy a
// queue slot: the caps are checked cheaply on the raw text (line
// counts can only overestimate module/net counts by comments and blank
// lines, so the bound is doubled; the authoritative post-parse check
// runs inside the pool).
func (s *Server) preGuard(req *Request) error {
	if req.ChainLength > maxChainLength {
		return unprocessable("chain_length %d exceeds limit %d", req.ChainLength, maxChainLength)
	}
	if s.cfg.MaxModules > 0 {
		if lines := countLines(req.Calls); lines > 2*s.cfg.MaxModules+16 {
			return unprocessable("call records (%d lines) exceed module limit %d", lines, s.cfg.MaxModules)
		}
	}
	if s.cfg.MaxNets > 0 {
		if lines := countLines(req.Netlist); lines > 16*s.cfg.MaxNets {
			return unprocessable("net-list records (%d lines) exceed net limit %d", lines, s.cfg.MaxNets)
		}
	}
	return nil
}

func countLines(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n") + 1
}

// Generate runs one request and adapts the result to the /v1 wire
// shape. Programmatic callers that want the full report (timings,
// degradation, trace) use GenerateV2.
func (s *Server) Generate(ctx context.Context, req *Request) (*Response, error) {
	v2, err := s.GenerateV2(ctx, req)
	if err != nil {
		return nil, err
	}
	return v2.V1(), nil
}

// GenerateV2 runs one request through the bounded worker pool and
// waits for its completion. It is the programmatic entry the HTTP
// handlers and the benchmarks share. Returned errors are *svcError
// with an embedded HTTP status.
//
// The pipeline closure runs under resilience.Recover: a panic in any
// stage becomes a *resilience.StageError, is recorded in /v1/stats
// and /metrics, and maps to a 500 for this request alone — the
// daemon, the worker goroutine, and every other queued request keep
// going.
func (s *Server) GenerateV2(ctx context.Context, req *Request) (*ResponseV2, error) {
	s.obs.Requests.Inc()

	if err := s.preGuard(req); err != nil {
		s.obs.Rejected.Inc()
		return nil, err
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var (
		resp *ResponseV2
		err  error
		ran  bool
	)
	done, serr := s.pool.submit(ctx, func(ctx context.Context) {
		ran = true
		err = resilience.Recover("pipeline", func() error {
			if s.testHook != nil {
				s.testHook()
			}
			var perr error
			resp, perr = s.process(ctx, req)
			return perr
		})
	})
	if serr != nil {
		s.obs.Shed.Inc()
		return nil, &svcError{status: 429, msg: serr.Error()}
	}
	<-done
	if !ran {
		// Deadline expired while the task sat in the queue.
		s.obs.Timeouts.Inc()
		return nil, &svcError{status: 504, msg: ctx.Err().Error()}
	}
	if err == nil && resp == nil {
		// Defensive: a task that was aborted by the pool's last-resort
		// recovery leaves neither a response nor an error behind.
		err = &svcError{status: 500, msg: "internal: generation task aborted"}
	}
	if err != nil {
		return nil, s.mapError(ctx, err)
	}
	if resp.Report.Degraded != nil {
		s.obs.Degraded.Inc()
	}
	s.obs.OK.Inc()
	return resp, nil
}

// mapError classifies a pipeline error into the *svcError the HTTP
// layer serves, updating the outcome counters on the way:
//
//	panic (StageError)        → 500, counted + ringed in /v1/stats
//	resource cap (LimitError) → 422
//	unroutable (strict modes) → 422
//	context deadline          → 504
//	anything else             → its svcError status, or 500
func (s *Server) mapError(ctx context.Context, err error) *svcError {
	if se, ok := resilience.AsStageError(err); ok {
		s.stats.recordPanic(se)
		s.obs.Failed.Inc()
		return &svcError{status: 500, msg: se.Error(), cause: se}
	}
	if le, ok := resilience.AsLimitError(err); ok {
		s.obs.Rejected.Inc()
		return unprocessable("%v", le)
	}
	var ue *gen.UnroutableError
	if errors.As(err, &ue) {
		s.obs.Failed.Inc()
		return unprocessable("%v", ue)
	}
	if ctx.Err() != nil {
		s.obs.Timeouts.Inc()
		return &svcError{status: 504, msg: err.Error(), cause: err}
	}
	s.obs.Failed.Inc()
	if se, ok := err.(*svcError); ok {
		return se
	}
	return &svcError{status: 500, msg: err.Error(), cause: err}
}

// process executes the pipeline on a worker goroutine: resolve/parse,
// cache lookup, place+route, render, cache fill. One obs.Observer is
// threaded through all of it: every stage appears as a span under the
// "request" root (feeding the per-stage latency histograms on span
// end) and runs under its own resilience.Recover so a panic is
// attributed to the stage it escaped from.
func (s *Server) process(ctx context.Context, req *Request) (*ResponseV2, error) {
	return s.processObserved(ctx, req, obs.NewObserver(s.obs, "request"), nil)
}

// processObserved is process with the observer and an optional
// progress tap supplied by the caller: async jobs pre-create both so
// the job's status document can snapshot the live span tree and its
// event stream can relay pipeline progress. Progress events fire only
// when the pipeline actually runs here — a cache hit, a singleflight
// follower, and a fleet-proxied request produce none (their jobs jump
// straight to the final report).
func (s *Server) processObserved(ctx context.Context, req *Request, o *obs.Observer, progress gen.ProgressFunc) (*ResponseV2, error) {
	t0 := time.Now()
	s.obs.Inflight.Add(1)
	defer s.obs.Inflight.Add(-1)

	format, err := resolveFormat(req.Format)
	if err != nil {
		return nil, err
	}
	opts, err := req.Options.resolve()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	// Server-side resilience and observability wiring: the effective
	// degradation policy (request override wins), the fault injector,
	// the plane-area guard, and the observer all ride on gen.Options.
	if req.Options.DegradeMode == "" {
		opts.Degrade = s.cfg.DegradeMode
	}
	if req.Options.RouteWorkers == 0 {
		opts.RouteWorkers = s.cfg.RouteWorkers
	}
	if req.Options.PlaceWorkers == 0 {
		opts.PlaceWorkers = s.cfg.PlaceWorkers
	}
	opts.Inject = s.cfg.Inject
	opts.Observer = o
	opts.Progress = progress
	if opts.Route.MaxPlaneArea == 0 {
		opts.Route.MaxPlaneArea = s.cfg.MaxPlaneArea
	}

	// Parse stage: obtain a request-private design plus its canonical
	// serialization (the cache-key half derived from the network).
	psp := o.StartSpan("parse")
	var (
		design    *netlist.Design
		canonical string
	)
	err = resilience.Recover("parse", func() error {
		if ferr := s.cfg.Inject.Fire(resilience.SiteParse); ferr != nil {
			return ferr
		}
		var perr error
		design, canonical, perr = s.resolveDesign(req)
		return perr
	})
	if err != nil {
		endSpanError(psp, err)
		return nil, err
	}
	psp.SetAttr("modules", int64(len(design.Modules)))
	psp.SetAttr("nets", int64(len(design.Nets)))
	psp.End()
	// Authoritative resource guard, now that real counts exist.
	if err := s.cfg.guards().CheckCounts(len(design.Modules), len(design.Nets)); err != nil {
		return nil, err
	}

	key := makeCacheKey(canonical, req.Options.canonical(opts.Degrade), format)
	// The fault-injection bypass lives inside the store wrapper (see
	// resultStore.faultsArmed): while faults are armed, get and put
	// are no-ops for every backend, so a degraded or injected-failure
	// artwork is never served to a later clean request and chaos runs
	// are not masked by earlier hits.
	if hit, ok := s.cache.get(ctx, key); ok {
		hit.Cached = true
		hit.ElapsedMs = msSince(t0)
		// The cached report keeps the original run's timings and
		// attempts, but the trace must describe *this* request:
		// root + parse, nothing recomputed.
		hit.Report.Trace = o.Snapshot()
		s.obs.Traces.Inc()
		s.obs.StageObserve("total", time.Since(t0))
		return &hit, nil
	}

	// Cold path. Concurrent identical requests collapse into one
	// execution: the singleflight leader fetches (from the key's fleet
	// owner) or computes, followers share its finished response
	// verbatim — identical bodies, one pipeline run. The collapse is
	// disabled while faults are armed for the same reason the cache
	// is: each chaos request must independently meet the injector.
	if s.cache.faultsArmed() {
		return s.fetchOrCompute(ctx, t0, o, req, design, opts, format, key)
	}
	v, outcome, err := s.flight.Do(ctx, key.String(), func(ctx context.Context) (any, error) {
		if s.flightHook != nil {
			s.flightHook()
		}
		return s.fetchOrCompute(ctx, t0, o, req, design, opts, format, key)
	})
	switch outcome {
	case singleflight.Shared:
		s.obs.SFShared.Inc()
		if err != nil {
			return nil, err
		}
		// Copy the leader's (immutable, shared) response by value so
		// handler-side mutation stays request-private.
		resp := *(v.(*ResponseV2))
		return &resp, nil
	case singleflight.Canceled:
		s.obs.SFCanceled.Inc()
		return nil, err // the follower's own ctx error → 504 via mapError
	default:
		s.obs.SFLeader.Inc()
		if err != nil {
			return nil, err
		}
		return v.(*ResponseV2), nil
	}
}

// fetchOrCompute resolves a cold key: if a fleet is configured and a
// peer owns the key, the request is proxied there (single hop, local
// fallback); otherwise the pipeline runs locally.
func (s *Server) fetchOrCompute(ctx context.Context, t0 time.Time, o *obs.Observer,
	req *Request, design *netlist.Design, opts gen.Options, format string, key cacheKey) (*ResponseV2, error) {
	if s.fleet.Enabled() && !s.cache.faultsArmed() {
		if peerHopped(ctx) {
			// A peer already forwarded this request here: compute
			// locally no matter who the hash says owns it, so a stale
			// or disagreeing peer list cannot bounce a request around.
			s.obs.PeerReceived.Inc()
		} else if owner := s.fleet.Owner(key.String()); owner != s.fleet.Self() {
			// The single Owner call above is the routing decision:
			// ownership is live-set dependent now, so recomputing it
			// (as OwnedBySelf would) could race a breaker transition
			// and disagree with the owner actually proxied to.
			if resp, err, handled := s.proxyToOwner(ctx, o, key.String(), owner, req); handled {
				return resp, err
			}
			// Owner unreachable: the fleet degrades to independent
			// replicas — compute locally rather than fail.
			s.obs.PeerFallback.Inc()
		} else {
			s.obs.PeerSelf.Inc()
		}
	}
	return s.compute(ctx, t0, o, req, design, opts, format, key)
}

// proxyToOwner forwards the request to the key's owner and serves its
// answer verbatim. handled=false means transport-level failure (the
// caller falls back to local compute); an owner-side 4xx is handled —
// it is the request's own verdict, reached faster elsewhere.
func (s *Server) proxyToOwner(ctx context.Context, o *obs.Observer, key, owner string, req *Request) (*ResponseV2, error, bool) {
	psp := o.StartSpan("peer")
	psp.SetAttr("owner_len", int64(len(owner))) // attr values are int64; the URL itself rides on the log
	body, err := json.Marshal(req)
	if err != nil {
		psp.EndError(err)
		return nil, err, true
	}
	out, status, err := s.fleet.Proxy(ctx, key, owner, body)
	if err != nil {
		psp.EndError(err)
		if ctx.Err() != nil {
			// The request deadline expired mid-proxy: surface it
			// rather than burning the remaining budget locally.
			return nil, &svcError{status: 504, msg: ctx.Err().Error(), cause: ctx.Err()}, true
		}
		return nil, nil, false
	}
	if status != 200 {
		var ep ErrorResponse
		msg := fmt.Sprintf("owner %s answered %d", owner, status)
		if jerr := json.Unmarshal(out, &ep); jerr == nil && ep.Error != "" {
			msg = ep.Error
		}
		psp.End()
		s.obs.PeerProxied.Inc()
		return nil, &svcError{status: status, msg: msg}, true
	}
	var resp ResponseV2
	if uerr := json.Unmarshal(out, &resp); uerr != nil {
		psp.EndError(uerr)
		return nil, nil, false
	}
	psp.End()
	s.obs.PeerProxied.Inc()
	return &resp, nil, true
}

// compute runs the generation pipeline locally and fills the store.
func (s *Server) compute(ctx context.Context, t0 time.Time, o *obs.Observer,
	req *Request, design *netlist.Design, opts gen.Options, format string, key cacheKey) (*ResponseV2, error) {
	rep, err := gen.Run(ctx, design, opts)
	if err != nil {
		return nil, err
	}

	if s.cfg.VerifyRouting && rep.Routing != nil {
		// Machine-check the artwork before serving it: the electrical
		// connectivity re-derived from the routed wires alone must match
		// the input netlist. A violation here is a router bug, not a bad
		// request — it maps to 500 and is never cached.
		vsp := o.StartSpan("verify")
		if verr := route.VerifyEquivalence(rep.Routing); verr != nil {
			endSpanError(vsp, verr)
			return nil, &svcError{status: 500,
				msg: fmt.Sprintf("routing equivalence check failed: %v", verr), cause: verr}
		}
		vsp.End()
	}

	rsp := o.StartSpan("render")
	var rendered string
	err = resilience.Recover("render", func() error {
		if ferr := s.cfg.Inject.Fire(resilience.SiteRender); ferr != nil {
			return ferr
		}
		var rerr error
		rendered, rerr = renderDiagram(rep.Diagram, format)
		return rerr
	})
	if err != nil {
		endSpanError(rsp, err)
		return nil, err
	}
	rsp.SetAttr("bytes", int64(len(rendered)))
	rsp.End()

	timings := rep.Timings
	timings.Parse = spanDur(o, "parse")
	timings.Render = spanDur(o, "render")

	m := rep.Diagram.Metrics()
	resp := ResponseV2{
		Name:     design.Name,
		Format:   format,
		Diagram:  rendered,
		Metrics:  m,
		Unrouted: m.Unrouted,
		CacheKey: key.String(),
		Report: Report{
			Timings:  timings,
			Attempts: rep.Attempts,
			Search:   rep.Search,
			Degraded: degradedReport(rep.Degraded),
		},
	}
	resp.ElapsedMs = msSince(t0)
	resp.Report.Trace = o.Snapshot()
	s.obs.Traces.Inc()
	s.cache.put(ctx, key, resp)
	s.obs.StageObserve("total", time.Since(t0))
	return &resp, nil
}

// peerHopKey marks a request context as already forwarded once by a
// peer (the handler sets it from cluster.HopHeader).
type peerHopKey struct{}

func withPeerHop(ctx context.Context) context.Context {
	return context.WithValue(ctx, peerHopKey{}, true)
}

func peerHopped(ctx context.Context) bool {
	v, _ := ctx.Value(peerHopKey{}).(bool)
	return v
}

// endSpanError closes a stage span with the right outcome: panic for
// recovered panics, error otherwise.
func endSpanError(sp *obs.Span, err error) {
	if se, ok := resilience.AsStageError(err); ok {
		sp.EndPanic(se.Cause)
		return
	}
	sp.EndError(err)
}

// spanDur reads a stage duration back from the observer's span tree
// (the span is the single timing source; no second stopwatch).
func spanDur(o *obs.Observer, stage string) time.Duration {
	td := o.Snapshot()
	if sp := td.Find(stage); sp != nil {
		return time.Duration(sp.ElapsedUs) * time.Microsecond
	}
	return 0
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000.0
}

// maxChainLength caps the synthetic chain workload.
const maxChainLength = 1024

// resolveDesign turns a request into a private *netlist.Design plus
// its canonical serialization. Built-in workloads are cloned from the
// startup parse; inline Appendix A text is parsed against the builtin
// library.
func (s *Server) resolveDesign(req *Request) (*netlist.Design, string, error) {
	hasInline := req.Netlist != "" || req.Calls != "" || req.IO != ""
	switch {
	case req.Workload != "" && hasInline:
		return nil, "", badRequest("request carries both a workload name and inline netlist text")
	case req.Workload != "":
		if req.Workload == "chain" {
			n := req.ChainLength
			if n <= 0 {
				n = 16
			}
			if n > maxChainLength {
				return nil, "", unprocessable("chain_length %d exceeds limit %d", n, maxChainLength)
			}
			d := workload.Chain(n)
			return d, canonicalDesign(d), nil
		}
		base, ok := s.builtins[req.Workload]
		if !ok {
			return nil, "", badRequest("unknown workload %q (fig61, datapath, cpu, life, chain)", req.Workload)
		}
		// The base is shared across requests and placement mutates
		// through design pointers: clone before generating.
		return base.Clone(), canonicalDesign(base), nil
	case req.Netlist == "" || req.Calls == "":
		return nil, "", badRequest("request needs either workload or both netlist and calls")
	default:
		name := req.Name
		if name == "" {
			name = "design"
		}
		var ioR io.Reader
		if req.IO != "" {
			ioR = strings.NewReader(req.IO)
		}
		d, err := netlist.Load(name, strings.NewReader(req.Calls), strings.NewReader(req.Netlist), ioR, s.lib)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if err := d.Validate(1); err != nil {
			return nil, "", badRequest("%v", err)
		}
		return d, canonicalDesign(d), nil
	}
}

// canonicalDesign serializes a design into the cache-key form: module
// geometry in insertion order, then the io and net-list records in the
// writers' deterministic order. Two inline netlists differing only in
// record order, comments or whitespace canonicalize identically; see
// DESIGN.md "Service result cache".
func canonicalDesign(d *netlist.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", d.Name)
	for _, m := range d.Modules {
		fmt.Fprintf(&b, "mod %s tpl=%s %dx%d\n", m.Name, m.Template, m.W, m.H)
		for _, t := range m.Terms {
			fmt.Fprintf(&b, " t %s %d %d,%d\n", t.Name, int(t.Type), t.Pos.X, t.Pos.Y)
		}
	}
	_ = netlist.WriteIOFile(&b, d)
	_ = netlist.WriteNetListFile(&b, d)
	return b.String()
}
