package service

import (
	"reflect"
	"strings"
	"testing"
)

// cacheKeyExempt names the GenOptions fields that deliberately do NOT
// participate in the cache key: execution hints whose outputs are
// byte-identical to their sequential counterparts (enforced by the
// determinism batteries in internal/route, internal/place and
// internal/gen). Adding a field here without such a battery is a
// cache-poisoning bug.
var cacheKeyExempt = map[string]bool{
	"RouteWorkers": true,
	"PlaceWorkers": true,
	// Windowed and full-plane searches produce byte-identical results —
	// guaranteed by the routing exactness ladder and enforced by the
	// windowed≡full property battery in internal/route.
	"RouteWindow": true,
}

// nonDefaultFor returns a valid non-default value for one GenOptions
// field, chosen so resolve() still accepts the options.
func nonDefaultFor(t *testing.T, f reflect.StructField, fv reflect.Value) {
	t.Helper()
	switch f.Name {
	case "Placer":
		fv.SetString("epitaxial")
	case "Algorithm":
		fv.SetString("lee-bends")
	case "DegradeMode":
		fv.SetString("strict")
	case "RouteOrder":
		fv.SetString("design")
	case "RouteWindow":
		fv.SetString("off")
	default:
		switch fv.Kind() {
		case reflect.Int:
			fv.SetInt(3)
		case reflect.Bool:
			fv.SetBool(true)
		default:
			t.Fatalf("GenOptions.%s has kind %v — teach this test a value for it", f.Name, fv.Kind())
		}
	}
}

// TestGenOptionsCacheKeyCoverage walks every GenOptions field by
// reflection: flipping a field to a non-default value must change the
// canonical cache key unless the field is a declared execution hint —
// and hints must never leak into the key. A new field added without a
// canonical() entry (or without an exemption above) fails here, which
// is exactly the drift this table-of-truth test exists to catch.
func TestGenOptionsCacheKeyCoverage(t *testing.T) {
	base := GenOptions{}
	bopts, err := base.resolve()
	if err != nil {
		t.Fatal(err)
	}
	baseKey := base.canonical(bopts.Degrade)

	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		t.Run(f.Name, func(t *testing.T) {
			v := reflect.New(rt).Elem()
			nonDefaultFor(t, f, v.Field(i))
			o := v.Interface().(GenOptions)
			opts, err := o.resolve()
			if err != nil {
				t.Fatalf("non-default %s rejected by resolve: %v", f.Name, err)
			}
			changed := o.canonical(opts.Degrade) != baseKey
			if cacheKeyExempt[f.Name] && changed {
				t.Errorf("execution hint %s leaked into the cache key", f.Name)
			}
			if !cacheKeyExempt[f.Name] && !changed {
				t.Errorf("result-affecting field %s does not participate in the cache key", f.Name)
			}
		})
	}
}

// TestGenOptionsJSONTagTable pins the flag ↔ JSON naming contract:
// each GenOptions field's JSON tag is the snake_case twin of the CLI
// flag documented in DESIGN.md's naming table. Renames must update
// table, tag and docs together.
func TestGenOptionsJSONTagTable(t *testing.T) {
	want := map[string]string{
		"Placer":         "placer",
		"PartSize":       "part_size",
		"BoxSize":        "box_size",
		"MaxConnections": "max_connections",
		"PartSpacing":    "part_spacing",
		"BoxSpacing":     "box_spacing",
		"ModSpacing":     "mod_spacing",
		"Algorithm":      "algorithm",
		"NoClaimpoints":  "no_claimpoints",
		"SwapObjective":  "swap_objective",
		"RouteOrder":     "route_order",
		"RouteWindow":    "route_window",
		"RipUp":          "rip_up",
		"DualFront":      "dual_front",
		"Margin":         "margin",
		"DegradeMode":    "degrade_mode",
		"RouteWorkers":   "route_workers",
		"PlaceWorkers":   "place_workers",
	}
	rt := reflect.TypeOf(GenOptions{})
	if rt.NumField() != len(want) {
		t.Fatalf("GenOptions has %d fields, the naming table lists %d — update both together",
			rt.NumField(), len(want))
	}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag != want[f.Name] {
			t.Errorf("GenOptions.%s json tag %q, naming table says %q", f.Name, tag, want[f.Name])
		}
	}
}
