package service

import (
	"context"
	"errors"
	"sync"

	"netart/internal/resilience"
)

// ErrQueueFull is returned by submit when the bounded queue cannot
// accept another task; the HTTP layer maps it to 429 Too Many Requests
// (load shedding instead of unbounded buffering).
var ErrQueueFull = errors.New("service: worker queue full")

// errPoolClosed is returned for submissions after Close.
var errPoolClosed = errors.New("service: pool closed")

// task is one queued unit of work. run executes on a worker goroutine;
// the submitter waits on done (the worker always closes it), so result
// hand-off needs no extra synchronization beyond the closure.
type task struct {
	ctx  context.Context
	run  func(ctx context.Context)
	done chan struct{}
}

// workerPool is a fixed set of workers draining a bounded queue.
// Capping the workers keeps heavy generation requests from starving
// the scheduler; capping the queue converts overload into fast 429s.
type workerPool struct {
	queue chan *task
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	workers int
	depth   int

	// onPanic, when set, observes panics that escape a task. The pool
	// always survives them: one poisoned request must never take down
	// the worker goroutine, let alone the daemon.
	onPanic func(*resilience.StageError)
}

// newWorkerPool starts `workers` goroutines behind a queue of `depth`
// waiting slots (in addition to the tasks being executed).
func newWorkerPool(workers, depth int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &workerPool{
		queue:   make(chan *task, depth),
		workers: workers,
		depth:   depth,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		// A task whose deadline expired while queued is not worth
		// starting; its waiter still gets woken via done.
		if t.ctx.Err() == nil {
			// Last-resort panic isolation: tasks are expected to carry
			// their own Recover (for accurate stage labels), but
			// anything that still escapes is converted here so the
			// worker goroutine — and with it every queued request —
			// survives.
			if err := resilience.Recover("pool", func() error {
				t.run(t.ctx)
				return nil
			}); err != nil {
				if se, ok := resilience.AsStageError(err); ok && p.onPanic != nil {
					p.onPanic(se)
				}
			}
		}
		close(t.done)
	}
}

// submit enqueues fn without blocking. It returns ErrQueueFull when all
// waiting slots are taken. On success the returned channel closes when
// the task has finished (or was skipped because its context expired).
func (p *workerPool) submit(ctx context.Context, fn func(ctx context.Context)) (<-chan struct{}, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	t := &task{ctx: ctx, run: fn, done: make(chan struct{})}
	select {
	case p.queue <- t:
		p.mu.Unlock()
		return t.done, nil
	default:
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// queued reports how many tasks are waiting (not yet picked up).
func (p *workerPool) queued() int { return len(p.queue) }

// close stops accepting work and waits for in-flight tasks to drain.
func (p *workerPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
