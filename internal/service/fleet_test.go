package service

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"netart/internal/store/cluster"
)

// replica is one in-process fleet member: a service.Server behind a
// real TCP listener, so peer proxying exercises genuine HTTP.
type replica struct {
	srv  *Server
	http *http.Server
	ln   net.Listener
	url  string
}

// startFleet boots n replicas that all share the same peer list.
// Listeners are bound first so every replica knows the full URL set
// before any server is constructed.
func startFleet(t *testing.T, n int, cfg Config) []*replica {
	t.Helper()
	reps := make([]*replica, n)
	urls := make([]string, n)
	for i := range reps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &replica{ln: ln, url: "http://" + ln.Addr().String()}
		urls[i] = reps[i].url
	}
	for _, r := range reps {
		c := cfg
		c.Peers = urls
		c.SelfURL = r.url
		// Dead-peer detection must be fast in tests; the default client
		// would wait on the OS connect timeout.
		if c.PeerTimeout == 0 {
			c.PeerTimeout = 5 * time.Second
		}
		srv, err := NewServer(c)
		if err != nil {
			t.Fatal(err)
		}
		r.srv = srv
		r.http = &http.Server{Handler: srv.Handler()}
		go r.http.Serve(r.ln)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.stop()
		}
	})
	return reps
}

func (r *replica) stop() {
	if r.http != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = r.http.Shutdown(ctx)
		cancel()
		r.http = nil
		r.srv.Close()
	}
}

// peerOutcomes sums a replica's netart_peer_requests_total children.
func peerOutcomes(s *Server) (self, proxied, fallback, received uint64) {
	return s.obs.PeerSelf.Value(), s.obs.PeerProxied.Value(),
		s.obs.PeerFallback.Value(), s.obs.PeerReceived.Value()
}

// TestFleetOwnership is the tentpole acceptance check: across a
// 3-replica fleet, each content hash is computed and cached on exactly
// one replica — its consistent-hash owner — no matter which replica
// receives the request.
func TestFleetOwnership(t *testing.T) {
	reps := startFleet(t, 3, Config{Workers: 2, CacheEntries: 64})
	ctx := context.Background()

	// Distinct designs → distinct keys, spread over the owners.
	requests := []*Request{
		{Workload: "fig61", Format: FormatSummary},
		{Workload: "quickstart", Format: FormatSummary},
		{Workload: "chain", ChainLength: 4, Format: FormatSummary},
		{Workload: "chain", ChainLength: 6, Format: FormatSummary},
		{Workload: "chain", ChainLength: 8, Format: FormatSummary},
	}
	keyOf := make(map[int]string)
	for ki, req := range requests {
		var bodies [][]byte
		for ri, r := range reps {
			resp, err := r.srv.GenerateV2(ctx, req)
			if err != nil {
				t.Fatalf("request %d via replica %d: %v", ki, ri, err)
			}
			keyOf[ki] = resp.CacheKey
			bodies = append(bodies, normalizeResp(t, resp))
		}
		for ri := 1; ri < len(bodies); ri++ {
			if string(bodies[ri]) != string(bodies[0]) {
				t.Fatalf("request %d: replica %d served different artwork", ki, ri)
			}
		}
	}

	// Ownership check: every key is cached on exactly the replica the
	// hash names, and nowhere else (proxied results are not re-cached).
	fleet, err := cluster.New(reps[0].url, []string{reps[0].url, reps[1].url, reps[2].url})
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	for _, k := range keyOf {
		owned[fleet.Owner(k)]++
	}
	var totalCached int
	for _, r := range reps {
		got := r.srv.Stats().Cache.Entries
		want := owned[r.url]
		if got != want {
			t.Errorf("replica %s caches %d entries, owns %d keys", r.url, got, want)
		}
		totalCached += got
	}
	if totalCached != len(requests) {
		t.Errorf("fleet caches %d entries total, want %d (each key exactly once)", totalCached, len(requests))
	}

	// The pipeline ran once per key fleet-wide: every replica's route
	// count equals the number of keys it owns, and the peer counters
	// add up — 15 requests: 5 computed by their owner directly or via
	// proxy, 10 served as proxied cache hits.
	var sumSelf, sumProxied, sumReceived uint64
	for _, r := range reps {
		self, proxied, _, received := peerOutcomes(r.srv)
		sumSelf += self
		sumProxied += proxied
		sumReceived += received
		if route := r.srv.Stats().Stages["route"].Count; int(route) != owned[r.url] {
			t.Errorf("replica %s ran the pipeline %d times, owns %d keys", r.url, route, owned[r.url])
		}
	}
	if sumProxied == 0 {
		t.Error("no request was proxied in a 3-replica fleet")
	}
	if sumSelf+sumReceived == 0 {
		t.Error("no owner ever computed")
	}
}

// TestFleetDegradesWhenOwnerDies: killing a replica must not fail
// requests for the keys it owned — survivors fall back to local
// computation.
func TestFleetDegradesWhenOwnerDies(t *testing.T) {
	reps := startFleet(t, 3, Config{Workers: 2, CacheEntries: 64})
	ctx := context.Background()

	// Find a request whose owner is NOT replica 0, so replica 0 must
	// first proxy and later fall back.
	fleet, err := cluster.New(reps[0].url, []string{reps[0].url, reps[1].url, reps[2].url})
	if err != nil {
		t.Fatal(err)
	}
	var req *Request
	var owner *replica
	for n := 2; n < 64; n++ {
		cand := &Request{Workload: "chain", ChainLength: n, Format: FormatSummary}
		resp, gerr := reps[0].srv.GenerateV2(ctx, cand)
		if gerr != nil {
			t.Fatal(gerr)
		}
		if u := fleet.Owner(resp.CacheKey); u != reps[0].url {
			req = cand
			for _, r := range reps {
				if r.url == u {
					owner = r
				}
			}
			break
		}
	}
	if req == nil {
		t.Fatal("no key owned by another replica found")
	}
	if _, proxied, _, _ := peerOutcomes(reps[0].srv); proxied == 0 {
		t.Fatal("probe request was not proxied to its owner")
	}

	owner.stop()

	// The dead owner's keys must still be served — locally.
	resp, err := reps[0].srv.GenerateV2(ctx, req)
	if err != nil {
		t.Fatalf("request failed after owner died: %v", err)
	}
	if resp.Diagram == "" {
		t.Fatal("empty artwork from fallback compute")
	}
	if _, _, fallback, _ := peerOutcomes(reps[0].srv); fallback == 0 {
		t.Error("owner death not recorded as a fallback")
	}
}

// TestFleetTwoReplicaProxy is the small in-process fleet exercised by
// ci.sh: two replicas, a key owned by exactly one, the other proxies.
func TestFleetTwoReplicaProxy(t *testing.T) {
	reps := startFleet(t, 2, Config{Workers: 2, CacheEntries: 64})
	ctx := context.Background()
	req := &Request{Workload: "fig61", Format: FormatSummary}

	r0, err := reps[0].srv.GenerateV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := reps[1].srv.GenerateV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if string(normalizeResp(t, r0)) != string(normalizeResp(t, r1)) {
		t.Fatal("replicas served different artwork for one key")
	}
	var sumSelf, sumProxied, sumReceived uint64
	for _, r := range reps {
		self, proxied, _, received := peerOutcomes(r.srv)
		sumSelf += self
		sumProxied += proxied
		sumReceived += received
	}
	// Exactly one cold compute happened, on the owner (self if the
	// owner got the request first, received if it arrived by proxy),
	// and exactly one of the two requests was proxied across — the
	// other was either the owner's own or a warm hit that never
	// reached the routing decision.
	if sumSelf+sumReceived != 1 {
		t.Errorf("self=%d received=%d, want exactly one owner-side cold compute", sumSelf, sumReceived)
	}
	if sumProxied != 1 {
		t.Errorf("proxied=%d, want exactly 1", sumProxied)
	}
	// The pipeline ran exactly once fleet-wide.
	total := reps[0].srv.Stats().Stages["route"].Count + reps[1].srv.Stats().Stages["route"].Count
	if total != 1 {
		t.Errorf("pipeline ran %d times fleet-wide, want 1", total)
	}
}

// TestFleetHopLoopProtection: a request already forwarded once (hop
// header set) is computed locally even by a non-owner, so disagreeing
// peer lists cannot bounce requests around.
func TestFleetHopLoopProtection(t *testing.T) {
	reps := startFleet(t, 2, Config{Workers: 2, CacheEntries: 64})

	// Find the non-owner of fig61's key.
	ctx := context.Background()
	probe, err := reps[0].srv.GenerateV2(ctx, &Request{Workload: "fig61", Format: FormatSummary})
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := cluster.New(reps[0].url, []string{reps[0].url, reps[1].url})
	nonOwner := reps[0]
	if fleet.Owner(probe.CacheKey) == reps[0].url {
		nonOwner = reps[1]
	}

	// A distinct (cold) request with the hop header straight at the
	// non-owner: it must compute locally instead of forwarding.
	body := `{"workload":"chain","chain_length":5,"format":"summary"}`
	hreq, _ := http.NewRequest(http.MethodPost, nonOwner.url+"/v2/generate", strings.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(cluster.HopHeader, "1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("hopped request answered %d", resp.StatusCode)
	}
	if _, _, _, received := peerOutcomes(nonOwner.srv); received == 0 {
		// The chain-5 key might be owned by nonOwner itself, in which
		// case the hop marker short-circuits before the self check —
		// received must count either way, because hopped requests skip
		// the ownership decision entirely.
		t.Error("hopped request not counted as received")
	}
	if fb := nonOwner.srv.obs.PeerProxied.Value(); fb > 1 {
		t.Errorf("non-owner proxied %d times; the hopped request must not forward", fb)
	}
}
