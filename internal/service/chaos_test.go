package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"netart/internal/gen"
	"netart/internal/resilience"
)

// This file is the chaos suite demanded by the robustness work: the
// daemon is bombarded with mixed traffic while the fault injector
// forces errors, panics and latency at every pipeline site. The only
// acceptable outcomes are clean HTTP statuses — the process must never
// crash, a worker goroutine must never die, and panics must be visible
// in /v1/stats rather than in a core dump.

func decode(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %T from %q: %v", v, body, err)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func mustInjector(t *testing.T, spec string, seed int64) *resilience.Injector {
	t.Helper()
	inj, err := resilience.ParseSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestChaosMixedTraffic drives 100 mixed requests (singles and batch
// items, several workloads and formats) through a server with faults
// armed at every site: 10% injected errors and 5% injected panics at
// parse/place/route/render plus a small latency tax. Every request
// must complete with a sane status and the daemon must stay healthy.
func TestChaosMixedTraffic(t *testing.T) {
	inj := mustInjector(t,
		"parse:error:0.10;place.box:panic:0.02;route.wavefront:error:0.05;"+
			"render:panic:0.05;parse:latency:0.10:2ms", 42)
	s, ts := newTestServer(t, Config{
		Workers:      4,
		QueueDepth:   64,
		Inject:       inj,
		DegradeMode:  gen.DegradeBestEffort,
		BatchRetries: 1,
		RetryBase:    time.Millisecond,
		RetryMax:     4 * time.Millisecond,
		// Every successful response under chaos is machine-checked: the
		// wire geometry must realize the netlist even when the pipeline
		// is being shot at (degraded partials included — failed nets are
		// exempt from connectivity but never from isolation).
		VerifyRouting: true,
		// And half the traffic routes in parallel, so injected faults
		// also fly through the speculation scheduler.
		RouteWorkers: 2,
	})

	workloads := []string{"fig61", "chain", "fig61", "datapath"}
	formats := []string{"summary", "ascii", "json", "svg"}
	allowed := map[int]bool{200: true, 429: true, 500: true, 504: true}

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	record := func(code int) {
		mu.Lock()
		statuses[code]++
		mu.Unlock()
	}

	const singles = 80
	for i := 0; i < singles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{
				Workload:    workloads[i%len(workloads)],
				ChainLength: 4 + i%8,
				Format:      formats[i%len(formats)],
				TimeoutMs:   5000,
			}
			resp, _ := postJSON(t, ts.URL+"/v1/generate", req)
			if !allowed[resp.StatusCode] {
				t.Errorf("single %d: unexpected status %d", i, resp.StatusCode)
			}
			record(resp.StatusCode)
		}(i)
	}
	// Four batches of five items round the traffic out to 100 requests.
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			batch := BatchRequest{}
			for j := 0; j < 5; j++ {
				batch.Requests = append(batch.Requests, Request{
					Workload:  workloads[(b+j)%len(workloads)],
					Format:    formats[j%len(formats)],
					TimeoutMs: 5000,
				})
			}
			resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch %d: status %d: %s", b, resp.StatusCode, body)
				return
			}
			record(resp.StatusCode)
		}(b)
	}
	wg.Wait()

	// The server survived (we are still talking to it); the stats must
	// show the chaos rather than hide it.
	st := s.Stats()
	if st.Requests < 100 {
		t.Errorf("stats lost requests: %d < 100", st.Requests)
	}
	if st.Panics == 0 {
		t.Error("no panics recovered — injector was not exercised")
	}
	if len(st.RecentPanics) == 0 {
		t.Error("recent panic ring is empty")
	}
	for _, p := range st.RecentPanics {
		if p.Stage == "" || p.Cause == "" {
			t.Errorf("panic record missing stage/cause: %+v", p)
		}
	}
	// A healthy service after recovered panics reports degraded, and
	// /v1/stats itself must still be served.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats endpoint died after chaos: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats status %d after chaos", resp.StatusCode)
	}
	t.Logf("chaos outcome: statuses=%v panics=%d degraded=%d retries=%d",
		statuses, st.Panics, st.Degraded, st.Retries)
}

// TestBestEffortDegradation forces every wavefront search to fail and
// asks for best-effort: the request must still succeed (HTTP 200) with
// a partial diagram whose degradation report names the unrouted nets —
// the paper's "incomplete artwork is still artwork" stance, upgraded
// with observability.
func TestBestEffortDegradation(t *testing.T) {
	inj := mustInjector(t, "route.wavefront:error:1", 7)
	// VerifyRouting on: even a best-effort partial routing must pass the
	// equivalence check (unconnected nets are exempt from connectivity,
	// but any wire that was laid must still be electrically sound).
	_, ts := newTestServer(t, Config{Workers: 2, Inject: inj, VerifyRouting: true})

	req := Request{
		Workload: "fig61",
		Format:   "ascii",
		Options:  GenOptions{DegradeMode: "best-effort"},
	}
	resp, body := postJSON(t, ts.URL+"/v1/generate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("best-effort status = %d, want 200: %s", resp.StatusCode, body)
	}
	var out Response
	decode(t, body, &out)
	if out.Degraded == nil {
		t.Fatal("forced routing failure: response carries no degradation report")
	}
	if out.Unrouted == 0 || len(out.Degraded.Unrouted) == 0 {
		t.Errorf("degraded response lists no unrouted nets: unrouted=%d report=%v",
			out.Unrouted, out.Degraded.Unrouted)
	}
	if len(out.Degraded.Attempts) == 0 {
		t.Error("degradation report names no routing attempts")
	}
	if !strings.Contains(out.Diagram, "DEGRADED") {
		t.Error("ascii diagram does not carry the DEGRADED block")
	}

	// The same forced failure under strict mode must refuse with 422.
	req.Options.DegradeMode = "strict"
	resp, body = postJSON(t, ts.URL+"/v1/generate", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("strict status = %d, want 422: %s", resp.StatusCode, body)
	}
}

// TestEscalationLadder: under escalate the server climbs the rungs but
// still refuses incomplete results; under best-effort with a clean
// router the ladder is never entered and the result is not degraded.
func TestEscalationLadder(t *testing.T) {
	s := New(Config{Workers: 1, DegradeMode: gen.DegradeBestEffort})
	defer s.Close()
	resp, err := s.Generate(context.Background(), &Request{Workload: "fig61",
		Options: GenOptions{PartSize: 6, BoxSize: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded != nil {
		t.Errorf("clean routing marked degraded: %+v", resp.Degraded)
	}
}

// TestPanicVisibleInStats injects a deterministic parse panic and
// checks the full observability path: 500 to the caller, counter and
// ring entry in /v1/stats, and a degraded (but 200) healthz.
func TestPanicVisibleInStats(t *testing.T) {
	inj := mustInjector(t, "parse:panic:1:x1", 1)
	s, ts := newTestServer(t, Config{Workers: 1, Inject: inj})

	resp, body := postJSON(t, ts.URL+"/v1/generate", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic status = %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Errorf("error body hides the panic: %s", body)
	}

	st := s.Stats()
	if st.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", st.Panics)
	}
	if len(st.RecentPanics) != 1 || st.RecentPanics[0].Stage != "parse" {
		t.Errorf("recent panics = %+v, want one entry at stage parse", st.RecentPanics)
	}

	// The x1-capped rule is spent: the next request must succeed, which
	// proves the worker goroutine survived the panic.
	resp, body = postJSON(t, ts.URL+"/v1/generate", Request{Workload: "fig61"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic = %d, want 200: %s", resp.StatusCode, body)
	}

	// Healthz: alive, but honest about the panic.
	hr, hbody := getJSON(t, ts.URL+"/v1/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", hr.StatusCode)
	}
	var health HealthResponse
	decode(t, hbody, &health)
	if health.Status != "degraded" || health.Panics != 1 {
		t.Errorf("healthz after panic = %+v, want degraded with 1 panic", health)
	}
	if len(health.Reasons) == 0 {
		t.Error("degraded healthz gives no reasons")
	}
}

// TestHealthzDegradedOnFullQueue wedges the single worker and fills
// the queue past 80%: healthz must stay 200 but report degraded.
func TestHealthzDegradedOnFullQueue(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 5})

	release := make(chan struct{})
	var once sync.Once
	s.testHook = func() { <-release }
	defer once.Do(func() { close(release) })

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ { // 1 running + 5 queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Generate(context.Background(), &Request{Workload: "fig61"})
		}()
	}
	// Wait for the queue to actually fill.
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.queued() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	hr, hbody := getJSON(t, ts.URL+"/v1/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", hr.StatusCode)
	}
	var health HealthResponse
	decode(t, hbody, &health)
	if health.Status != "degraded" {
		t.Errorf("healthz with full queue = %q (queued=%d), want degraded", health.Status, health.Queued)
	}

	once.Do(func() { close(release) })
	wg.Wait()

	_, hbody = getJSON(t, ts.URL+"/v1/healthz")
	var after HealthResponse
	decode(t, hbody, &after)
	if after.Status != "ok" {
		t.Errorf("healthz after drain = %q, want ok", after.Status)
	}
}

// TestBodyTooLarge checks the MaxBytesReader satellite: a body over
// the configured cap yields a clean 413, not a JSON parse error.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})
	req := Request{Workload: "fig61", Netlist: strings.Repeat("x", 1024)}
	resp, body := postJSON(t, ts.URL+"/v1/generate", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Errorf("413 body unhelpful: %s", body)
	}
	// Batch path shares the cap.
	resp, _ = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: []Request{req}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d, want 413", resp.StatusCode)
	}
}

// TestResourceGuards covers the 422 surface: chain length, module
// count, net count (pre- and post-parse) and routing plane area.
func TestResourceGuards(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxModules: 8, MaxNets: 16, MaxPlaneArea: 512})

	cases := []struct {
		name string
		req  Request
	}{
		{"chain cap", Request{Workload: "chain", ChainLength: 4096}},
		{"module cap", Request{Workload: "chain", ChainLength: 64}},
		{"plane area", Request{Workload: "chain", ChainLength: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/generate", tc.req)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Errorf("status = %d, want 422: %s", resp.StatusCode, body)
			}
		})
	}

	// An inline netlist with too many raw records is shed before parse.
	var nets strings.Builder
	for i := 0; i < 16*16+32; i++ {
		fmt.Fprintf(&nets, "n%d a Y\n", i)
	}
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		Request{Calls: "a INV", Netlist: nets.String()})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("net-record flood status = %d, want 422: %s", resp.StatusCode, body)
	}

	// Within caps everything still works.
	resp, body = postJSON(t, ts.URL+"/v1/generate", Request{Workload: "chain", ChainLength: 4})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("within-caps request status = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestBatchRetryTransient arms a one-shot injected parse error: the
// first attempt of the lone batch item fails transiently, the retry
// succeeds, and the item reports both the recovery and its cost.
func TestBatchRetryTransient(t *testing.T) {
	inj := mustInjector(t, "parse:error:1:x1", 3)
	s, ts := newTestServer(t, Config{
		Workers:      1,
		Inject:       inj,
		BatchRetries: 2,
		RetryBase:    time.Millisecond,
		RetryMax:     2 * time.Millisecond,
	})

	resp, body := postJSON(t, ts.URL+"/v1/batch",
		BatchRequest{Requests: []Request{{Workload: "fig61"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	decode(t, body, &out)
	if len(out.Results) != 1 {
		t.Fatalf("batch results = %d, want 1", len(out.Results))
	}
	item := out.Results[0]
	if item.Status != http.StatusOK || item.Response == nil {
		t.Fatalf("item did not recover: %+v (%s)", item, item.Error)
	}
	if item.Attempts != 2 {
		t.Errorf("item attempts = %d, want 2 (one transient failure, one success)", item.Attempts)
	}
	if got := s.Stats().Retries; got != 1 {
		t.Errorf("stats retries = %d, want 1", got)
	}
}

// TestBatchNoRetryOnPermanent: a malformed request must fail its item
// on the first attempt; retrying a 400 would only burn workers.
func TestBatchNoRetryOnPermanent(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, BatchRetries: 3,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})

	resp, body := postJSON(t, ts.URL+"/v1/batch",
		BatchRequest{Requests: []Request{{Workload: "warp-core"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	decode(t, body, &out)
	item := out.Results[0]
	if item.Status != http.StatusBadRequest {
		t.Fatalf("item status = %d, want 400", item.Status)
	}
	if item.Attempts != 1 {
		t.Errorf("permanent failure retried: attempts = %d, want 1", item.Attempts)
	}
	if got := s.Stats().Retries; got != 0 {
		t.Errorf("stats retries = %d, want 0", got)
	}
}

// TestInjectorBypassesCache: with faults armed the cache must not
// serve (or store) results, so a degraded artwork can never leak into
// a later clean run.
func TestInjectorBypassesCache(t *testing.T) {
	inj := mustInjector(t, "route.wavefront:error:1", 5)
	s := New(Config{Workers: 1, Inject: inj, DegradeMode: gen.DegradeBestEffort})
	defer s.Close()
	req := &Request{Workload: "fig61", Options: GenOptions{PartSize: 6, BoxSize: 6}}
	r1, err := s.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Degraded == nil {
		t.Fatal("expected a degraded result under forced routing failure")
	}
	r2, err := s.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Error("degraded result was served from cache")
	}
	if cs := s.cache.stats(s.cfg.CacheEntries, s.obs.CacheEvictions); cs.Entries != 0 {
		t.Errorf("cache holds %d entries while injector armed, want 0", cs.Entries)
	}
}
