package route

import "context"

// cancelCheck amortizes context cancellation polling over the router's
// hot loops. Checking ctx.Done() involves a channel select, which is
// far too expensive per swept cell; the checker polls the channel only
// once every cancelPollInterval ticks and latches the result, so the
// per-cell cost in the common (non-cancelled) case is one increment and
// one mask. A nil *cancelCheck is valid and never cancels, which keeps
// the background-context path allocation-free.
type cancelCheck struct {
	done  <-chan struct{}
	ticks uint32
	fired bool
}

// cancelPollInterval is the number of tick() calls between real channel
// polls. Expansion sweeps cost tens of nanoseconds per cell, so 1024
// bounds the cancellation latency to well under a millisecond of work.
const cancelPollInterval = 1024

// newCancelCheck returns a checker for ctx, or nil when ctx can never
// be cancelled (context.Background / nil), so the hot loops pay nothing.
func newCancelCheck(ctx context.Context) *cancelCheck {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return &cancelCheck{done: done}
}

// tick is the amortized per-iteration check used inside wavefront and
// cell-sweep loops.
func (c *cancelCheck) tick() bool {
	if c == nil {
		return false
	}
	if c.fired {
		return true
	}
	c.ticks++
	if c.ticks&(cancelPollInterval-1) != 0 {
		return false
	}
	return c.poll()
}

// poll checks the channel immediately: used at wave and per-net
// boundaries where the check is infrequent anyway.
func (c *cancelCheck) poll() bool {
	if c == nil {
		return false
	}
	if c.fired {
		return true
	}
	select {
	case <-c.done:
		c.fired = true
		return true
	default:
		return false
	}
}
