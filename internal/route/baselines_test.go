package route

import (
	"testing"

	"netart/internal/geom"
	"netart/internal/place"
	"netart/internal/workload"
)

func TestHightowerStraight(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 20, 20))
	a, b := geom.Pt(2, 5), geom.Pt(15, 5)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	segs, ok := hightowerSearch(pl, 1, a, b, pl.Bounds)
	if !ok {
		t.Fatal("straight connection not found")
	}
	if got := segBends(segs); got != 0 {
		t.Errorf("%d bends on a straight shot: %v", got, segs)
	}
	checkEndpoints(t, segs, a, b)
}

func TestHightowerLShape(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 20, 20))
	a, b := geom.Pt(2, 2), geom.Pt(15, 12)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	segs, ok := hightowerSearch(pl, 1, a, b, pl.Bounds)
	if !ok {
		t.Fatal("L connection not found")
	}
	if got := segBends(segs); got != 1 {
		t.Errorf("%d bends, Hightower should find the minimum-bend L: %v", got, segs)
	}
	checkLegalPath(t, pl, 1, segs)
}

func TestHightowerAroundObstacle(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 30, 30))
	pl.BlockRect(geom.Pt(10, 0), geom.Pt(12, 20))
	a, b := geom.Pt(2, 5), geom.Pt(25, 5)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	segs, ok := hightowerSearch(pl, 1, a, b, pl.Bounds)
	if !ok {
		t.Fatal("detour not found")
	}
	checkEndpoints(t, segs, a, b)
	checkLegalPath(t, pl, 1, segs)
}

func TestHightowerCanFail(t *testing.T) {
	// A walled-in target: failure must be reported, not looped.
	pl := NewPlane(geom.R(0, 0, 20, 20))
	pl.BlockRect(geom.Pt(8, 8), geom.Pt(16, 10))
	pl.BlockRect(geom.Pt(8, 10), geom.Pt(10, 16))
	pl.BlockRect(geom.Pt(8, 16), geom.Pt(16, 18))
	pl.BlockRect(geom.Pt(16, 8), geom.Pt(18, 18)) // pocket sealed
	a, b := geom.Pt(2, 2), geom.Pt(12, 12)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	if _, ok := hightowerSearch(pl, 1, a, b, pl.Bounds); ok {
		t.Error("found a path into a sealed pocket")
	}
}

func TestLeeLengthObjective(t *testing.T) {
	// Classic Lee minimizes length even at the cost of bends.
	pl := NewPlane(geom.R(0, 0, 30, 30))
	a, b := geom.Pt(2, 2), geom.Pt(20, 10)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	dirs := []geom.Dir{geom.Left, geom.Right, geom.Up, geom.Down}
	segs, ok := leeSearch(pl, 1, a, dirs, func(q geom.Point) bool { return q == b }, LengthFirst, pl.Bounds, pl.Bounds, nil)
	if !ok {
		t.Fatal("no path")
	}
	if got := totalLen(segs); got != a.Manhattan(b) {
		t.Errorf("length %d, want the Manhattan optimum %d", got, a.Manhattan(b))
	}
}

func TestRouteWithBaselineAlgorithms(t *testing.T) {
	for _, algo := range []Algo{AlgoLee, AlgoLeeLength, AlgoHightower} {
		d := workload.Fig61()
		pr, err := place.Place(d, place.Options{PartSize: 6, BoxSize: 6})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Route(pr, Options{Algorithm: algo, Claimpoints: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		// On the simple string network every engine should succeed.
		if got := res.UnroutedCount(); got != 0 {
			t.Errorf("%v: %d unrouted nets on fig 6.1", algo, got)
		}
	}
}

func TestAlgoString(t *testing.T) {
	for _, a := range []Algo{AlgoLineExpansion, AlgoLee, AlgoLeeLength, AlgoHightower, Algo(9)} {
		if a.String() == "" {
			t.Error("empty Algo string")
		}
	}
}

func TestBuildIntervals(t *testing.T) {
	pins := []ChannelPin{
		{X: 1, Net: 1, Top: true}, {X: 5, Net: 1},
		{X: 3, Net: 2, Top: true}, {X: 8, Net: 2}, {X: 6, Net: 2},
	}
	ivs, err := BuildIntervals(pins)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("%d intervals", len(ivs))
	}
	if ivs[0] != (ChannelInterval{1, 1, 5}) || ivs[1] != (ChannelInterval{2, 3, 8}) {
		t.Errorf("intervals: %+v", ivs)
	}
	if _, err := BuildIntervals([]ChannelPin{{X: 1, Net: 9}}); err == nil {
		t.Error("single-pin net accepted")
	}
}

func TestLeftEdgePacking(t *testing.T) {
	ivs := []ChannelInterval{
		{1, 0, 4}, {2, 5, 9}, {3, 2, 7}, {4, 8, 12}, {5, 10, 14},
	}
	tracks := LeftEdge(ivs)
	// Track 1: [0,4],[5,9],[10,14]; track 2: [2,7],[8,12].
	if len(tracks) != 2 {
		t.Fatalf("%d tracks, want 2: %+v", len(tracks), tracks)
	}
	if len(tracks[0]) != 3 || len(tracks[1]) != 2 {
		t.Errorf("track fill: %+v", tracks)
	}
	// No overlap within a track.
	for _, tr := range tracks {
		for i := 1; i < len(tr); i++ {
			if tr[i].Left <= tr[i-1].Right {
				t.Errorf("overlap in track: %+v", tr)
			}
		}
	}
	// All intervals assigned exactly once.
	n := 0
	for _, tr := range tracks {
		n += len(tr)
	}
	if n != len(ivs) {
		t.Errorf("%d of %d intervals assigned", n, len(ivs))
	}
}

func TestChannelDensityLowerBound(t *testing.T) {
	ivs := []ChannelInterval{{1, 0, 10}, {2, 2, 6}, {3, 4, 8}, {4, 12, 15}}
	if got := ChannelDensity(ivs); got != 3 {
		t.Errorf("density %d, want 3", got)
	}
	tracks := LeftEdge(ivs)
	if len(tracks) < 3 {
		t.Errorf("left edge used %d tracks, below density bound", len(tracks))
	}
}

func TestLeftEdgeNeverBelowDensity(t *testing.T) {
	// Property on deterministic pseudo-random instances.
	for seed := 0; seed < 20; seed++ {
		var ivs []ChannelInterval
		x := seed
		for n := 1; n <= 12; n++ {
			x = (x*1103515245 + 12345) & 0x7fffffff
			lo := x % 30
			x = (x*1103515245 + 12345) & 0x7fffffff
			w := 1 + x%10
			ivs = append(ivs, ChannelInterval{n, lo, lo + w})
		}
		tracks := LeftEdge(ivs)
		if len(tracks) < ChannelDensity(ivs) {
			t.Fatalf("seed %d: %d tracks below density %d", seed, len(tracks), ChannelDensity(ivs))
		}
		assigned := map[int]bool{}
		for _, tr := range tracks {
			for i, iv := range tr {
				if assigned[iv.Net] {
					t.Fatalf("net %d assigned twice", iv.Net)
				}
				assigned[iv.Net] = true
				if i > 0 && iv.Left <= tr[i-1].Right {
					t.Fatalf("seed %d: overlap in track", seed)
				}
			}
		}
		if len(assigned) != len(ivs) {
			t.Fatalf("seed %d: lost intervals", seed)
		}
	}
}
