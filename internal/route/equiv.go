package route

import (
	"fmt"

	"netart/internal/geom"
)

// This file implements the netlist↔diagram equivalence checker: it
// rebuilds electrical connectivity from the routed wire geometry alone
// and asserts it matches the input netlist. The idea follows the
// machine-checked-equivalence stance of verified netlist-to-schematic
// work: a router must not merely claim its output connects the right
// terminals — the claim has to be re-derivable from the geometry it
// actually drew. The checker is independent of the router's own
// bookkeeping (it never consults the Plane), so a bug in the plane
// occupancy logic cannot hide a bug in the wires.
//
// Three properties are verified:
//
//  1. Connectivity: for every net, all terminals the router reports
//     as connected (not in Failed) are joined by one connected
//     component of that net's own wire geometry.
//  2. Isolation: wires of different nets never connect. Two nets may
//     share a point only as a perpendicular crossing — both passing
//     straight through, neither ending nor bending there. Same-axis
//     overlap, or a wire end/corner touching a foreign wire, is an
//     electrical short.
//  3. Terminal integrity: no wire passes through another net's
//     terminal point.

// EquivalenceError describes one violated equivalence property.
type EquivalenceError struct {
	Net    string // primary net involved
	Other  string // second net for isolation violations, "" otherwise
	Point  geom.Point
	Reason string
}

// Error implements error.
func (e *EquivalenceError) Error() string {
	if e.Other != "" {
		return fmt.Sprintf("route: equivalence violation at %v: nets %q and %q: %s",
			e.Point, e.Net, e.Other, e.Reason)
	}
	return fmt.Sprintf("route: equivalence violation at %v: net %q: %s", e.Point, e.Net, e.Reason)
}

// axis flags for geometry reconstruction.
const (
	axH = 1 << iota
	axV
)

// netGeom is the reconstructed geometry of one net.
type netGeom struct {
	name string
	// axes maps each wire point to the axes the net's wires run along
	// through it.
	axes map[geom.Point]uint8
	// stops marks points where the net's wire ends or turns (segment
	// endpoints): touching a foreign wire there is a junction, not a
	// crossing.
	stops map[geom.Point]bool
}

// VerifyEquivalence rebuilds net connectivity from the wire geometry
// of a routing result and checks it against the input netlist. It
// returns the first violation found, or nil when the geometry realizes
// exactly the connectivity the result claims.
func VerifyEquivalence(rr *Result) error {
	// Reconstruct per-net geometry from segments alone.
	geoms := make([]netGeom, len(rr.Nets))
	for i, rn := range rr.Nets {
		g := netGeom{name: rn.Net.Name, axes: map[geom.Point]uint8{}, stops: map[geom.Point]bool{}}
		for _, s := range rn.Segments {
			if s.A == s.B {
				continue // degenerate: no geometry
			}
			ax := uint8(axV)
			if s.Horizontal() {
				ax = axH
			}
			for _, p := range s.Points() {
				g.axes[p] |= ax
			}
			g.stops[s.A] = true
			g.stops[s.B] = true
		}
		// A corner (both axes at one point) is a stop even when no
		// segment happens to end exactly there.
		for p, ax := range g.axes {
			if ax == axH|axV {
				g.stops[p] = true
			}
		}
		geoms[i] = g
	}

	// Terminal points per net, and a global terminal → net index.
	termPts := make([][]geom.Point, len(rr.Nets))
	termOwner := map[geom.Point]int{}
	for i, rn := range rr.Nets {
		for _, t := range rn.Net.Terms {
			p, err := rr.Placement.TermPos(t)
			if err != nil {
				return fmt.Errorf("route: equivalence: net %q: %w", rn.Net.Name, err)
			}
			termPts[i] = append(termPts[i], p)
			termOwner[p] = i
		}
	}

	// Isolation + terminal integrity: index every wire point globally.
	type occupant struct {
		net int
		ax  uint8
	}
	occ := map[geom.Point][]occupant{}
	for i := range geoms {
		for p, ax := range geoms[i].axes {
			occ[p] = append(occ[p], occupant{i, ax})
		}
	}
	for p, os := range occ {
		for _, o := range os {
			if ti, ok := termOwner[p]; ok && ti != o.net {
				return &EquivalenceError{Net: geoms[o.net].name, Other: rr.Nets[ti].Net.Name,
					Point: p, Reason: "wire passes through a foreign terminal"}
			}
		}
		if len(os) < 2 {
			continue
		}
		if len(os) > 2 {
			return &EquivalenceError{Net: geoms[os[0].net].name, Other: geoms[os[1].net].name,
				Point: p, Reason: fmt.Sprintf("%d nets share one point", len(os))}
		}
		a, b := os[0], os[1]
		if a.ax&b.ax != 0 {
			return &EquivalenceError{Net: geoms[a.net].name, Other: geoms[b.net].name,
				Point: p, Reason: "same-axis wire overlap (short)"}
		}
		if a.ax == axH|axV || b.ax == axH|axV {
			return &EquivalenceError{Net: geoms[a.net].name, Other: geoms[b.net].name,
				Point: p, Reason: "corner touches a foreign wire (short)"}
		}
		if geoms[a.net].stops[p] || geoms[b.net].stops[p] {
			return &EquivalenceError{Net: geoms[a.net].name, Other: geoms[b.net].name,
				Point: p, Reason: "wire end touches a foreign wire (junction short)"}
		}
	}

	// Connectivity: the terminals each net claims connected must lie in
	// one component of its own geometry.
	for i, rn := range rr.Nets {
		if err := verifyNetConnectivity(rn, geoms[i], termPts[i]); err != nil {
			return err
		}
	}
	return nil
}

// verifyNetConnectivity floods the net's wire graph from the first
// claimed-connected terminal and checks every other claimed terminal
// is reached. Wire adjacency is rebuilt from the points: two wire
// points are adjacent when they are grid neighbours along an axis the
// wire actually runs on through both.
func verifyNetConnectivity(rn *RoutedNet, g netGeom, terms []geom.Point) error {
	// Build the claimed-connected terminal list. Failed terminals are
	// exempt from connectivity: that is the router's own claim — it
	// could not connect them, and the caller surfaces them separately.
	var want []geom.Point
	for idx, t := range rn.Net.Terms {
		isFailed := false
		for _, ft := range rn.Failed {
			if t == ft {
				isFailed = true
				break
			}
		}
		if !isFailed {
			want = append(want, terms[idx])
		}
	}
	if len(want) < 2 {
		return nil // zero or one connected terminal: nothing to join
	}
	if len(g.axes) == 0 {
		return &EquivalenceError{Net: g.name, Point: want[0],
			Reason: fmt.Sprintf("claims %d connected terminals but has no wires", len(want))}
	}
	// Flood from the first claimed terminal. Terminal points are part
	// of the wire graph (wires end on them).
	start := want[0]
	if g.axes[start] == 0 {
		return &EquivalenceError{Net: g.name, Point: start,
			Reason: "claimed-connected terminal has no wire on it"}
	}
	seen := map[geom.Point]bool{start: true}
	queue := []geom.Point{start}
	dirs := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 1), geom.Pt(0, -1)}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			q := p.Add(d)
			if seen[q] || g.axes[q] == 0 {
				continue
			}
			ax := uint8(axH)
			if d.X == 0 {
				ax = axV
			}
			// The step is electrical only when the wire runs along the
			// step axis through both endpoints of the step.
			if g.axes[p]&ax == 0 || g.axes[q]&ax == 0 {
				continue
			}
			seen[q] = true
			queue = append(queue, q)
		}
	}
	for _, w := range want {
		if !seen[w] {
			return &EquivalenceError{Net: g.name, Point: w,
				Reason: "claimed-connected terminal unreachable through the net's wires"}
		}
	}
	return nil
}
