// Package route implements the routing phase of the schematic diagram
// generator (Koster & Stok §5): a line-expansion router that finds, for
// every net, a path with a minimum number of bends, and among those the
// one with minimum wire crossings and then minimum wire length. The
// claimpoint and prerouted-net extensions of §5.7 are included, as are
// the surveyed baseline routers (Lee maze runner, Hightower line
// router, left-edge channel router) used in the comparison benches.
package route

import (
	"fmt"

	"netart/internal/geom"
)

// Segment is one axis-aligned piece of a routed wire, endpoints
// inclusive.
type Segment struct {
	A, B geom.Point
}

// Horizontal reports whether the segment runs along x.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

// Len returns the track length of the segment.
func (s Segment) Len() int { return s.A.Manhattan(s.B) }

// Canon returns the segment with endpoints ordered by (x, y), so equal
// segments compare equal.
func (s Segment) Canon() Segment {
	if s.B.X < s.A.X || (s.B.X == s.A.X && s.B.Y < s.A.Y) {
		return Segment{s.B, s.A}
	}
	return s
}

// Points enumerates the grid points of the segment, inclusive.
func (s Segment) Points() []geom.Point {
	d := geom.Pt(sign(s.B.X-s.A.X), sign(s.B.Y-s.A.Y))
	var out []geom.Point
	p := s.A
	for {
		out = append(out, p)
		if p == s.B {
			return out
		}
		p = p.Add(d)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// Plane is the routing plane: a dense point grid carrying the obstacle
// configuration of §5.6.2. Instead of the paper's two obstacle sets
// (horizontal-segments / vertical-segments) it stores per-point
// occupancy, which answers the same queries in O(1):
//
//   - blocked points (module outlines and interiors, plane border,
//     foreign system terminals, claimpoints),
//   - per-direction wire occupancy (a point carrying a horizontal wire
//     of net k blocks horizontal wires of other nets but may be crossed
//     vertically),
//   - bends of routed nets, which block every expansion (the paper:
//     "the expansion is blocked only by modules, bends in nets and the
//     border of the plane").
type Plane struct {
	// Bounds is the inclusive point region [Min.X..Max.X] x
	// [Min.Y..Max.Y]. Note this differs from geom.Rect cell semantics:
	// Max is a valid point.
	Bounds geom.Rect

	w, h    int
	blocked []bool
	termNet []int32 // net id (1-based) whose terminal sits here; 0 none
	hNet    []int32 // net id of wire running horizontally through here
	vNet    []int32
	bend    []bool
	claim   []int32 // net id holding a claimpoint here

	// claimOf indexes claim placements: every plane index ever claimed
	// by a net, appended on setClaim and never removed (entries whose
	// claim has since cleared are skipped on release). Claims are placed
	// once before routing and only removed afterwards, so the index stays
	// tiny and lets ReleaseClaims run in O(net's claims) instead of a
	// full-plane scan per net.
	claimOf map[int32][]int32

	// stops caches, per point, one bit per condition the expansion
	// engine's escape sweep tests (stop* constants). It is derived state,
	// recomputed on every mutating write, so the hot sweep reads one byte
	// instead of five arrays; the slow accessors stay authoritative.
	stops []uint8

	// sp is the copy-on-write speculation journal (spec.go). Nil on
	// ordinary planes; attached by enableSpec on the private per-worker
	// snapshots of the parallel router.
	sp *planeSpec
}

// stops bits. stopHWire/stopVWire mean "a wire of some net runs through
// here on that axis" — whether that stops or merely crosses an escape
// depends on the escape's direction and net, which the sweep decides.
const (
	stopBlocked uint8 = 1 << iota
	stopBend
	stopClaim
	stopHWire
	stopVWire
)

// refreshStops recomputes the derived stop bits of point i.
func (pl *Plane) refreshStops(i int) {
	var m uint8
	if pl.blocked[i] {
		m |= stopBlocked
	}
	if pl.bend[i] {
		m |= stopBend
	}
	if pl.claim[i] != 0 {
		m |= stopClaim
	}
	if pl.hNet[i] != 0 {
		m |= stopHWire
	}
	if pl.vNet[i] != 0 {
		m |= stopVWire
	}
	pl.stops[i] = m
}

// NewPlane returns an empty plane over the inclusive point region.
func NewPlane(bounds geom.Rect) *Plane {
	w := bounds.Max.X - bounds.Min.X + 1
	h := bounds.Max.Y - bounds.Min.Y + 1
	if w < 1 || h < 1 {
		w, h = 1, 1
	}
	n := w * h
	return &Plane{
		Bounds:  bounds,
		w:       w,
		h:       h,
		blocked: make([]bool, n),
		termNet: make([]int32, n),
		hNet:    make([]int32, n),
		vNet:    make([]int32, n),
		bend:    make([]bool, n),
		claim:   make([]int32, n),
		claimOf: make(map[int32][]int32),
		stops:   make([]uint8, n),
	}
}

// InBounds reports whether p is a point of the plane.
func (pl *Plane) InBounds(p geom.Point) bool {
	return p.X >= pl.Bounds.Min.X && p.X <= pl.Bounds.Max.X &&
		p.Y >= pl.Bounds.Min.Y && p.Y <= pl.Bounds.Max.Y
}

func (pl *Plane) idx(p geom.Point) int {
	return (p.Y-pl.Bounds.Min.Y)*pl.w + (p.X - pl.Bounds.Min.X)
}

// BlockRect blocks every point on the outline and interior of the
// inclusive point rectangle (a module symbol of size w x h at pos
// occupies points pos..pos+(w,h)).
func (pl *Plane) BlockRect(min, max geom.Point) {
	for y := geom.Max(min.Y, pl.Bounds.Min.Y); y <= geom.Min(max.Y, pl.Bounds.Max.Y); y++ {
		for x := geom.Max(min.X, pl.Bounds.Min.X); x <= geom.Min(max.X, pl.Bounds.Max.X); x++ {
			i := pl.idx(geom.Pt(x, y))
			pl.blocked[i] = true
			pl.stops[i] |= stopBlocked
		}
	}
}

// BlockPoint blocks a single point.
func (pl *Plane) BlockPoint(p geom.Point) {
	if pl.InBounds(p) {
		i := pl.idx(p)
		pl.blocked[i] = true
		pl.stops[i] |= stopBlocked
	}
}

// SetTerminal marks p as a terminal of the given net (1-based id). The
// point stays blocked for every other net but is a legal wire endpoint
// for its own.
func (pl *Plane) SetTerminal(p geom.Point, net int32) error {
	if !pl.InBounds(p) {
		return fmt.Errorf("route: terminal %v outside plane %v", p, pl.Bounds)
	}
	i := pl.idx(p)
	if pl.termNet[i] != 0 && pl.termNet[i] != net {
		return fmt.Errorf("route: terminal conflict at %v: nets %d and %d", p, pl.termNet[i], net)
	}
	pl.termNet[i] = net
	return nil
}

// Terminal returns the terminal net id at p (0 if none).
func (pl *Plane) Terminal(p geom.Point) int32 {
	if !pl.InBounds(p) {
		return 0
	}
	return pl.termNet[pl.idx(p)]
}

// Blocked reports whether p is a hard obstacle point (module, border
// handled by InBounds, or explicit block).
func (pl *Plane) Blocked(p geom.Point) bool {
	return !pl.InBounds(p) || pl.blocked[pl.idx(p)]
}

// HNet and VNet return the wire occupancy at p per axis.
func (pl *Plane) HNet(p geom.Point) int32 {
	if !pl.InBounds(p) {
		return 0
	}
	i := pl.idx(p)
	pl.noteRead(i)
	return pl.hNet[i]
}

// VNet returns the net whose wire runs vertically through p.
func (pl *Plane) VNet(p geom.Point) int32 {
	if !pl.InBounds(p) {
		return 0
	}
	i := pl.idx(p)
	pl.noteRead(i)
	return pl.vNet[i]
}

// Bend reports whether a routed net has a corner or junction at p.
func (pl *Plane) Bend(p geom.Point) bool {
	if !pl.InBounds(p) {
		return false
	}
	i := pl.idx(p)
	pl.noteRead(i)
	return pl.bend[i]
}

// Claimpoint returns the net holding a claim at p (0 if none).
func (pl *Plane) Claimpoint(p geom.Point) int32 {
	if !pl.InBounds(p) {
		return 0
	}
	i := pl.idx(p)
	pl.noteRead(i)
	return pl.claim[i]
}

// Claim reserves p for the given net (§5.7). It is a no-op if the point
// is blocked or already carries a wire or another claim: claimpoints
// are best effort.
func (pl *Plane) Claim(p geom.Point, net int32) {
	if !pl.InBounds(p) {
		return
	}
	i := pl.idx(p)
	if pl.blocked[i] || pl.hNet[i] != 0 || pl.vNet[i] != 0 || pl.claim[i] != 0 || pl.termNet[i] != 0 {
		return
	}
	pl.setClaim(i, net)
}

// ReleaseClaims removes every claimpoint of the given net ("when the
// routing of A and B starts, both their claimpoints are removed").
//
// The claimOf index lookup is deliberately not read-tracked: a
// speculation only ever releases its own net's claims, and no commit
// ever *adds* a claim during routing (claims are placed once before
// routeAll and only removed after), so the set of points this releases
// cannot be changed by an intervening commit.
func (pl *Plane) ReleaseClaims(net int32) {
	for _, i := range pl.claimOf[net] {
		if pl.claim[i] == net {
			pl.setClaim(int(i), 0)
		}
	}
}

// releaseClaimsList is ReleaseClaims returning the plane indices it
// released, so a speculation can record the exact claim writes for
// ordered replay against the master plane.
func (pl *Plane) releaseClaimsList(net int32) []int32 {
	var out []int32
	for _, i := range pl.claimOf[net] {
		if pl.claim[i] == net {
			pl.setClaim(int(i), 0)
			out = append(out, i)
		}
	}
	return out
}

// ReleaseAllClaims removes every claimpoint, done before the final
// retry pass over unrouted nets.
func (pl *Plane) ReleaseAllClaims() {
	for _, idxs := range pl.claimOf {
		for _, i := range idxs {
			if pl.claim[i] != 0 {
				pl.setClaim(int(i), 0)
			}
		}
	}
}

// LayWire adds a routed wire to the obstacle configuration. Interior
// points of each segment get directional occupancy; segment joints
// (corners and junctions) are marked as bends, which block crossing.
// Endpoints on terminals stay crossable only by nothing — they get both
// directional marks.
func (pl *Plane) LayWire(net int32, segs []Segment) error {
	// Drop degenerate zero-length segments up front so they neither
	// mark occupancy nor fake junction endpoints.
	kept := segs[:0:0]
	for _, s := range segs {
		if s.A != s.B {
			kept = append(kept, s)
		}
	}
	segs = kept

	// First pass: validate.
	for _, s := range segs {
		if s.A.X != s.B.X && s.A.Y != s.B.Y {
			return fmt.Errorf("route: wire segment %v-%v not axis aligned", s.A, s.B)
		}
		for _, p := range s.Points() {
			if !pl.InBounds(p) {
				return fmt.Errorf("route: wire point %v outside plane", p)
			}
			i := pl.idx(p)
			pl.noteRead(i)
			if pl.blocked[i] && pl.termNet[i] != net {
				return fmt.Errorf("route: wire of net %d crosses obstacle at %v", net, p)
			}
			if pl.termNet[i] != 0 && pl.termNet[i] != net {
				return fmt.Errorf("route: wire of net %d touches foreign terminal at %v", net, p)
			}
			if s.Horizontal() {
				if h := pl.hNet[i]; h != 0 && h != net {
					return fmt.Errorf("route: horizontal overlap of nets %d and %d at %v", net, h, p)
				}
			} else {
				if v := pl.vNet[i]; v != 0 && v != net {
					return fmt.Errorf("route: vertical overlap of nets %d and %d at %v", net, v, p)
				}
			}
			if pl.bend[i] {
				// A segment may terminate on a bend of its own net (a
				// junction at an existing corner); it may never pass
				// through any bend, nor touch a foreign one.
				ownBend := pl.hNet[i] == net || pl.vNet[i] == net || pl.termNet[i] == net
				isEnd := p == s.A || p == s.B
				if !ownBend || !isEnd {
					return fmt.Errorf("route: wire of net %d crosses a bend at %v", net, p)
				}
			}
		}
	}
	pl.commitWire(net, segs)
	return nil
}

// commitWire applies a validated wire's occupancy and bend marks. It is
// the write half of LayWire, split out so the parallel router can
// replay a speculation's recorded wires against the master plane
// without re-validating (the ordered commit guarantees the plane is in
// the state the recording ran against). Callers must pass segments with
// degenerates already filtered.
func (pl *Plane) commitWire(net int32, segs []Segment) {
	for _, s := range segs {
		for _, p := range s.Points() {
			i := pl.idx(p)
			if s.Horizontal() && s.Len() > 0 {
				pl.setH(i, net)
			}
			if !s.Horizontal() && s.Len() > 0 {
				pl.setV(i, net)
			}
		}
	}
	// Corner / junction marking: a point owned by this net in both
	// directions, or a segment endpoint that is not a terminal, becomes
	// a bend obstacle.
	ends := map[geom.Point]int{}
	for _, s := range segs {
		ends[s.A]++
		ends[s.B]++
	}
	for p, n := range ends {
		i := pl.idx(p)
		both := pl.hNet[i] == net && pl.vNet[i] == net
		// Corners (wire in both axes), junctions (several segment ends)
		// and endpoints landing on previously laid wire of the same net
		// block crossing; a plain terminal endpoint reached by a single
		// straight segment needs no mark (its point is blocked anyway).
		if both || n > 1 || pl.termNet[i] != net {
			pl.setBend(i)
		}
	}
}
