package route

import "netart/internal/geom"

// This file implements the bounded-work machinery of the routing hot
// path (DESIGN.md §5i):
//
//   - search windows: every connection search is confined to the
//     bounding box of its interesting points (source terminal, target
//     hints, the net's laid geometry) plus an adaptive margin. A failed
//     windowed attempt widens the margin and retries, ending at the
//     full plane, so windowing can never lose a routable connection —
//     it only bounds the work of the common case, where the minimum
//     bend path lives near the terminals' bounding box.
//   - searchArena: the per-router scratch arena the line-expansion
//     engine draws its wavefront state from. The covered bitmap is
//     epoch-stamped so "clearing" it between searches is one counter
//     increment; actives are bump-allocated from slabs; the per-expand
//     advance/crossing buffers and the wavefront slices are reused.
//     Together these drop the router's per-net allocation cost to near
//     zero (the seed allocated an O(plane) covered array per search).
//
// Windows use inclusive point semantics throughout — both Min and Max
// are valid points, exactly like Plane.Bounds (and unlike geom.Rect's
// half-open cell reading), because windows are clamped subsets of the
// plane's point grid.

// winContains reports whether p lies inside the inclusive point
// rectangle r.
func winContains(r geom.Rect, p geom.Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// winExpand grows the inclusive rect by m points on every side, clamped
// to bounds.
func winExpand(r geom.Rect, m int, bounds geom.Rect) geom.Rect {
	r.Min.X = geom.Max(r.Min.X-m, bounds.Min.X)
	r.Min.Y = geom.Max(r.Min.Y-m, bounds.Min.Y)
	r.Max.X = geom.Min(r.Max.X+m, bounds.Max.X)
	r.Max.Y = geom.Min(r.Max.Y+m, bounds.Max.Y)
	return r
}

// ptBox returns the degenerate inclusive rect holding exactly p.
func ptBox(p geom.Point) geom.Rect { return geom.Rect{Min: p, Max: p} }

// boxAdd extends the inclusive rect to cover p.
func boxAdd(r geom.Rect, p geom.Point) geom.Rect {
	r.Min.X = geom.Min(r.Min.X, p.X)
	r.Min.Y = geom.Min(r.Min.Y, p.Y)
	r.Max.X = geom.Max(r.Max.X, p.X)
	r.Max.Y = geom.Max(r.Max.Y, p.Y)
	return r
}

// manhattanToBox returns the Manhattan distance from p to the nearest
// point of the inclusive rect (0 when p is inside). It is the admissible
// remaining-length heuristic of the Lee engine's A* prune: every target
// point lies inside the rect, so no path from p can reach a target in
// fewer steps.
func manhattanToBox(p geom.Point, r geom.Rect) int {
	d := 0
	if p.X < r.Min.X {
		d += r.Min.X - p.X
	} else if p.X > r.Max.X {
		d += p.X - r.Max.X
	}
	if p.Y < r.Min.Y {
		d += r.Min.Y - p.Y
	} else if p.Y > r.Max.Y {
		d += p.Y - r.Max.Y
	}
	return d
}

// Window widening schedule: the initial margin around the terminals'
// bounding box, and the factor each retry widens it by before the final
// full-plane attempt. The margin is a pure performance knob — a windowed
// outcome is only accepted when it is provably identical to the
// unwindowed search (lineexp.go exact) and is re-run wider otherwise, so
// the windowed≡full property battery (window_test.go) holds for any
// margin; the margin merely tunes how often the ladder pays a retry.
const (
	winMargin0     = 20
	winWidenFactor = 8
)

// winArea returns the point count of the inclusive rect.
func winArea(r geom.Rect) int {
	return (r.Max.X - r.Min.X + 1) * (r.Max.Y - r.Min.Y + 1)
}

// windows returns the widening schedule for one search whose interesting
// points span bbox: the bbox plus the initial margin, then the widened
// margin, then the full plane (deduplicated when clamping collapses
// steps). A rung whose area is already most of the next rung's is
// dropped — retrying at nearly the same size costs close to a full
// duplicate sweep on failure while saving almost nothing on success.
// Any schedule ending at the full plane preserves byte-identity (the
// ladder only accepts provably exact outcomes), so pruning is purely a
// performance decision. With Options.NoWindow the schedule is just the
// full plane, reproducing the seed router's behavior.
func (rt *router) windows(bbox geom.Rect) []geom.Rect {
	full := rt.plane.Bounds
	if rt.opts.NoWindow {
		return []geom.Rect{full}
	}
	rungs := [...]geom.Rect{
		winExpand(bbox, winMargin0, full),
		winExpand(bbox, winMargin0*winWidenFactor, full),
		full,
	}
	out := make([]geom.Rect, 0, len(rungs))
	for i, r := range rungs {
		if i < len(rungs)-1 && winArea(r)*4 >= winArea(rungs[i+1])*3 {
			continue
		}
		out = append(out, r)
	}
	return out
}

// coveredStampBits is the number of low bits of a covered word holding
// the per-cell search state — four direction bits plus the target bit;
// the rest is the search-epoch stamp.
const coveredStampBits = 5

// targetBit marks a cell as a member of the search's precomputed target
// set (lineSearch.setTargets), sharing the covered word so the hot sweep
// answers "target?" and "already swept?" with a single stamped load.
const targetBit = 1 << 4

// searchArena is the reusable scratch of the line-expansion engine. One
// arena serves one router (workers of the parallel scheduler each own
// one, created lazily for their private plane); a search acquires it by
// bumping the covered epoch, which invalidates every mark of the
// previous search in O(1).
type searchArena struct {
	// covered holds, per plane point, gen<<4 | direction bits: a cell
	// stops an escape only when it was already swept in the same
	// direction within the same search epoch. Stamps from older epochs
	// read as "not covered".
	covered []uint32
	gen     uint32

	// advance and crossAdv/crossOff are the per-expand escape profile
	// buffers: advance[k] is how far segment cell k's escape travelled,
	// and crossAdv[crossOff[k]:crossOff[k+1]] lists the advance values
	// (in travel order) at which that escape crossed a foreign wire.
	advance  []int
	crossAdv []int
	crossOff []int

	// blocks bump-allocates actives in place-stable slabs, reused across
	// searches (all actives of a search are dead once its path is
	// reconstructed).
	blocks [][]active
	blockI int
	cellI  int

	// waves ping-pongs the two wavefront slices of run().
	waves [2][]*active
}

func newSearchArena(cells int) *searchArena {
	return &searchArena{covered: make([]uint32, cells)}
}

// acquire starts a new search epoch: previous covered marks expire by
// stamp and the active slab resets. The stamp space (32-4 bits) is
// cleared for real on the rare wrap.
func (ar *searchArena) acquire() {
	ar.gen++
	if ar.gen >= 1<<(32-coveredStampBits) {
		clear(ar.covered)
		ar.gen = 1
	}
	ar.blockI, ar.cellI = 0, 0
}

// markTarget stamps idx as a target of the current epoch. Called before
// the search sweeps (setTargets), so overwriting the word loses nothing.
func (ar *searchArena) markTarget(idx int) {
	w := ar.covered[idx]
	if w>>coveredStampBits != ar.gen {
		w = ar.gen << coveredStampBits
	}
	ar.covered[idx] = w | targetBit
}

// isTarget reports whether idx was stamped by markTarget this epoch.
func (ar *searchArena) isTarget(idx int) bool {
	w := ar.covered[idx]
	return w>>coveredStampBits == ar.gen && w&targetBit != 0
}

// coveredBits returns the direction mask of the current epoch at idx.
func (ar *searchArena) coveredBits(idx int) uint8 {
	w := ar.covered[idx]
	if w>>coveredStampBits != ar.gen {
		return 0
	}
	return uint8(w) & allDirBits
}

// markCovered ors direction bits into the current epoch's mask at idx.
func (ar *searchArena) markCovered(idx int, bits uint8) {
	w := ar.covered[idx]
	if w>>coveredStampBits != ar.gen {
		w = ar.gen << coveredStampBits
	}
	ar.covered[idx] = w | uint32(bits)
}

// newActive bump-allocates an active from the slab.
func (ar *searchArena) newActive() *active {
	if ar.blockI == len(ar.blocks) {
		ar.blocks = append(ar.blocks, make([]active, 512))
	}
	b := ar.blocks[ar.blockI]
	a := &b[ar.cellI]
	ar.cellI++
	if ar.cellI == len(b) {
		ar.blockI++
		ar.cellI = 0
	}
	return a
}

// advanceBuf returns a zeroed advance buffer of n cells.
func (ar *searchArena) advanceBuf(n int) []int {
	if cap(ar.advance) < n {
		ar.advance = make([]int, n)
	}
	buf := ar.advance[:n]
	clear(buf)
	return buf
}

// crossOffBuf returns an uninitialized offset buffer of n entries.
func (ar *searchArena) crossOffBuf(n int) []int {
	if cap(ar.crossOff) < n {
		ar.crossOff = make([]int, n)
	}
	return ar.crossOff[:n]
}
