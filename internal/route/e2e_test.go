package route

import (
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/workload"
)

func placeAndRoute(t *testing.T, d *netlist.Design, po place.Options, ro Options) *Result {
	t.Helper()
	pr, err := place.Place(d, po)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := Route(pr, ro)
	if err != nil {
		t.Fatal(err)
	}
	// Every routed result must survive the geometry-level equivalence
	// check: connectivity, isolation and terminal integrity re-derived
	// from the wires alone (equiv.go).
	if err := VerifyEquivalence(res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEndToEndFig61(t *testing.T) {
	d := workload.Fig61()
	res := placeAndRoute(t, d, place.Options{PartSize: 6, BoxSize: 6},
		Options{Claimpoints: true})
	if got := res.UnroutedCount(); got != 0 {
		t.Fatalf("%d unrouted nets in fig 6.1", got)
	}
	for _, rn := range res.Nets {
		assertTreeConnectsTerminals(t, res, rn)
	}
	// Figure 6.1's point: with fixed level assignment the string nets
	// have minimal bends; in a placed string they should total very few.
	bends := 0
	for _, rn := range res.Nets {
		bends += segBends(rn.Segments)
	}
	if bends > 2*len(res.Nets) {
		t.Errorf("string routing has %d bends over %d nets; expected near-straight wires",
			bends, len(res.Nets))
	}
}

func TestEndToEndDatapath(t *testing.T) {
	d := workload.Datapath16()
	for _, po := range []place.Options{
		{PartSize: 1, BoxSize: 1},
		{PartSize: 5, BoxSize: 1},
		{PartSize: 7, BoxSize: 5},
	} {
		res := placeAndRoute(t, d, po, Options{Claimpoints: true})
		if got := res.UnroutedCount(); got > 2 {
			t.Errorf("p=%d b=%d: %d of %d nets unrouted",
				po.PartSize, po.BoxSize, got, len(res.Nets))
		}
		for _, rn := range res.Nets {
			if rn.OK() && len(rn.Net.Terms) >= 2 {
				assertTreeConnectsTerminals(t, res, rn)
			}
		}
		d = workload.Datapath16() // fresh design per run
	}
}

func TestEndToEndNoWireThroughModules(t *testing.T) {
	d := workload.Datapath16()
	res := placeAndRoute(t, d, place.Options{PartSize: 5, BoxSize: 5},
		Options{Claimpoints: true})
	for _, rn := range res.Nets {
		id := res.NetID[rn.Net]
		for _, sg := range rn.Segments {
			for _, p := range sg.Points() {
				for _, m := range d.Modules {
					pm := res.Placement.Mods[m]
					r := pm.Rect()
					// Interior points (strictly inside the outline) may
					// never carry wire.
					if p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y {
						t.Fatalf("net %d runs through module %s at %v", id, m.Name, p)
					}
				}
			}
		}
	}
}

func TestLifeHandPlacementRoutes(t *testing.T) {
	// Figure 6.6: the LIFE network with hand placement. The paper
	// reports 2 of 222 nets initially unroutable; our synthetic LIFE
	// should land in the same regime (a handful at most).
	if testing.Short() {
		t.Skip("LIFE routing is expensive")
	}
	d := workload.Life27()
	hp := workload.LifeHandPlacement()
	fixed := map[*netlist.Module]place.Fixed{}
	for _, m := range d.Modules {
		h := hp[m.Name]
		fixed[m] = place.Fixed{Pos: h.Pos, Orient: h.Orient}
	}
	pr, err := place.Place(d, place.Options{Fixed: fixed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(pr, Options{Claimpoints: true, Margin: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalence(res); err != nil {
		t.Fatal(err)
	}
	un := res.UnroutedCount()
	t.Logf("LIFE hand placement: %d of %d nets unrouted", un, len(res.Nets))
	if un > 22 { // 10% of nets; the paper had 2 of 222
		t.Errorf("too many unrouted nets: %d", un)
	}
	for _, rn := range res.Nets {
		if rn.OK() && len(rn.Net.Terms) >= 2 {
			assertTreeConnectsTerminals(t, res, rn)
		}
	}
}

func TestEscapeDirsSystemTerminal(t *testing.T) {
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("A", netlist.In, 0, 1))
	st := s.sys("IN", netlist.In, -3, 1)
	s.net("w", [2]string{"root", "IN"}, [2]string{"A", "A"})
	pr := s.finish()
	rt := &router{pl: pr, opts: Options{}, netID: map[*netlist.Net]int32{}}
	if err := rt.buildPlane(); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.escapeDirs(st)); got != 4 {
		t.Errorf("system terminal escapes %d directions, want 4", got)
	}
	sub := pr.Design.Module("A").Term("A")
	dirs := rt.escapeDirs(sub)
	if len(dirs) != 1 || dirs[0] != geom.Left {
		t.Errorf("subsystem terminal dirs = %v, want [left]", dirs)
	}
}

func TestRouteSingleTerminalNetSkipped(t *testing.T) {
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.net("dangling", [2]string{"A", "Y"})
	res := mustRoute(t, s.finish(), Options{})
	if res.UnroutedCount() != 0 {
		t.Error("single-terminal net should not count as unrouted")
	}
	if len(res.Nets[0].Segments) != 0 {
		t.Error("single-terminal net should have no geometry")
	}
}
