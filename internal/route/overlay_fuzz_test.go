package route

import (
	"fmt"
	"testing"

	"netart/internal/geom"
)

// FuzzPlaneOverlay is the property test of the speculation journal
// (spec.go): an arbitrary operation stream applied to a journaled
// plane must
//
//  1. produce exactly the cell state the same stream produces on a
//     flat, journal-free reference plane (the journal must never
//     change write semantics),
//  2. report every mutable-state read in specReadBits,
//  3. roll back to the exact pre-speculation state, and
//  4. behave identically on a second epoch over the same journal
//     (epoch reuse must not leak marks or dirty bits).
//
// The ops mirror what routing actually does to a plane: field reads,
// claim placement and release, LayWire (validated wires, error parity
// included), and the raw journaled setters.

// fuzzOps interprets data as an op stream against pl. reads, when
// non-nil, collects the plane indices of tracked mutable reads.
// LayWire outcomes are appended to errs so two runs can be compared.
func fuzzOps(pl *Plane, data []byte, reads map[int32]bool, errs *[]string) {
	w := pl.Bounds.Max.X - pl.Bounds.Min.X + 1
	h := pl.Bounds.Max.Y - pl.Bounds.Min.Y + 1
	pt := func(a, b byte) geom.Point {
		return geom.Pt(pl.Bounds.Min.X+int(a)%w, pl.Bounds.Min.Y+int(b)%h)
	}
	note := func(p geom.Point) {
		if reads != nil && pl.InBounds(p) {
			reads[int32(pl.idx(p))] = true
		}
	}
	for len(data) >= 4 {
		op, a, b, c := data[0], data[1], data[2], data[3]
		data = data[4:]
		p := pt(a, b)
		net := int32(c%4) + 1
		switch op % 10 {
		case 0:
			pl.HNet(p)
			note(p)
		case 1:
			pl.VNet(p)
			note(p)
		case 2:
			pl.Bend(p)
			note(p)
		case 3:
			pl.Claimpoint(p)
			note(p)
		case 4:
			pl.Claim(p, net)
		case 5:
			pl.ReleaseClaims(net)
		case 6:
			// LayWire of a 1..3-long segment from p along one axis.
			if len(data) < 1 {
				return
			}
			d := data[0]
			data = data[1:]
			q := p
			length := int(d%3) + 1
			if d%2 == 0 {
				q.X += length
			} else {
				q.Y += length
			}
			err := pl.LayWire(net, []Segment{{A: p, B: q}})
			// A committed wire's validation pass read every wire point;
			// a failed one stopped mid-segment, so only track the clean
			// case (under-approximating the expected read set is safe —
			// the property is bitmap ⊇ tracked reads).
			if err == nil && reads != nil {
				for _, wp := range (Segment{A: p, B: q}).Points() {
					note(wp)
				}
			}
			*errs = append(*errs, fmt.Sprint(err))
		case 7:
			pl.setH(pl.idx(p), net)
		case 8:
			pl.setV(pl.idx(p), net)
		case 9:
			pl.setBend(pl.idx(p))
		}
	}
}

func FuzzPlaneOverlay(f *testing.F) {
	f.Add(uint8(8), uint8(8), []byte{6, 1, 1, 0, 2, 0, 1, 1, 1, 4, 3, 3, 2})
	f.Add(uint8(4), uint8(6), []byte{7, 0, 0, 1, 9, 0, 0, 0, 2, 0, 0, 0})
	f.Add(uint8(12), uint8(3), []byte{4, 5, 1, 2, 5, 0, 0, 2, 3, 5, 1, 0})
	f.Add(uint8(1), uint8(1), []byte{6, 0, 0, 3, 0})
	f.Fuzz(func(t *testing.T, w, h uint8, data []byte) {
		width := int(w%16) + 1
		height := int(h%16) + 1
		bounds := geom.Rect{Min: geom.Pt(-1, -2),
			Max: geom.Pt(-1+width-1, -2+height-1)}

		// Static setup derived from the same bytes: a blocked rect and a
		// couple of terminals, so reads and LayWire validation have
		// texture to hit.
		base := NewPlane(bounds)
		if len(data) >= 4 {
			p1 := geom.Pt(bounds.Min.X+int(data[0])%width, bounds.Min.Y+int(data[1])%height)
			p2 := geom.Pt(bounds.Min.X+int(data[2])%width, bounds.Min.Y+int(data[3])%height)
			base.BlockPoint(p1)
			_ = base.SetTerminal(p2, 1)
		}

		// Reference run: flat clone, no journal.
		ref := base.Clone()
		var refErrs []string
		fuzzOps(ref, data, nil, &refErrs)

		// Journaled run.
		work := base.Clone()
		work.enableSpec()
		work.beginSpec()
		reads := map[int32]bool{}
		var workErrs []string
		fuzzOps(work, data, reads, &workErrs)

		// (1) Same writes, journal active or not.
		if !work.Equal(ref) {
			t.Fatal("journaled plane diverges from flat reference after identical ops")
		}
		// LayWire error parity: the journal must not change validation.
		if len(refErrs) != len(workErrs) {
			t.Fatalf("LayWire outcome count %d vs %d", len(refErrs), len(workErrs))
		}
		for i := range refErrs {
			if refErrs[i] != workErrs[i] {
				t.Fatalf("LayWire outcome %d: %q (flat) vs %q (journaled)", i, refErrs[i], workErrs[i])
			}
		}
		// (2) Every tracked read is in the bitmap and inside the read box.
		bits, rbox := work.specReadBits()
		for i := range reads {
			if bits[i>>6]&(1<<(uint(i)&63)) == 0 {
				t.Fatalf("read of plane index %d missing from specReadBits", i)
			}
			if g := geom.Pt(int(i)%work.w, int(i)/work.w); !winContains(rbox, g) {
				t.Fatalf("read of plane index %d outside read box %v", i, rbox)
			}
		}
		// (3) Rollback returns to the exact base state.
		work.rollbackSpec()
		if !work.Equal(base) {
			t.Fatal("rollback did not restore the pre-speculation state")
		}
		// (4) A second epoch over the reused journal behaves identically.
		work.beginSpec()
		var again []string
		fuzzOps(work, data, nil, &again)
		if !work.Equal(ref) {
			t.Fatal("second epoch diverges from the flat reference")
		}
		work.rollbackSpec()
		if !work.Equal(base) {
			t.Fatal("second rollback did not restore the base state")
		}
	})
}
