package route

import (
	"fmt"
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/workload"
)

// This file is the windowed≡full property battery. The bounded search
// windows of §5i (DESIGN.md) are a pure performance device: the
// exactness ladder — retry with a wider window whenever a clipped
// escape could have beaten the found solution, ending at the full
// plane — guarantees the windowed router returns byte-identical wire
// geometry to an unbounded search. These tests enforce that guarantee
// for every built-in workload and 20 seeded random designs, under both
// net orderings, at the route level (segments, plane cells, failures)
// and through VerifyEquivalence (the routed geometry really realizes
// the netlist).

// assertWindowedEqualsFull routes the design twice — windowed (the
// default) and full-plane (NoWindow) — and requires identical artwork,
// then machine-checks both results against the netlist.
func assertWindowedEqualsFull(t *testing.T, tag string, build func() *netlist.Design, po place.Options, ro Options) {
	t.Helper()
	ro.NoWindow = false
	win := routeFresh(t, build, po, ro)
	full := ro
	full.NoWindow = true
	fres := routeFresh(t, build, po, full)
	assertSameArtwork(t, tag, fres, win)
	if err := VerifyEquivalence(win); err != nil {
		t.Errorf("%s: windowed result fails equivalence: %v", tag, err)
	}
	if err := VerifyEquivalence(fres); err != nil {
		t.Errorf("%s: full-plane result fails equivalence: %v", tag, err)
	}
}

func TestWindowedMatchesFullWorkloads(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		po    place.Options
		slow  bool
	}{
		{"fig61", workload.Fig61, place.Options{PartSize: 6, BoxSize: 6}, false},
		{"datapath", workload.Datapath16, place.Options{PartSize: 7, BoxSize: 5}, false},
		{"cpu", workload.CPU, place.Options{PartSize: 7, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 1}, false},
		{"life", workload.Life27, place.Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}, true},
	}
	for _, tc := range cases {
		for _, ord := range batteryOrders {
			t.Run(tc.name+"/"+ord.name, func(t *testing.T) {
				if tc.slow && testing.Short() {
					t.Skip("life battery skipped in -short mode")
				}
				ro := Options{Claimpoints: true, OrderShortestFirst: ord.shortest}
				assertWindowedEqualsFull(t, tc.name+"/"+ord.name, tc.build, tc.po, ro)
			})
		}
	}
}

// TestWindowedMatchesFullSeeded drives the property over 20 seeded
// random designs (the internal/workload generator), under the
// shortest-first default ordering.
func TestWindowedMatchesFullSeeded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func() *netlist.Design { return workload.Random(12, seed) }
			po := place.Options{PartSize: 4, BoxSize: 2}
			ro := Options{Claimpoints: true, OrderShortestFirst: true}
			assertWindowedEqualsFull(t, fmt.Sprintf("seed%d", seed), build, po, ro)
		})
	}
}

// TestWindowLadderTerminates pins the window schedule's shape: rungs
// grow strictly, the last rung is always the full plane (the ladder's
// termination guarantee), and rungs within 3/4 of the next rung's area
// are pruned as not worth a retry.
func TestWindowLadderTerminates(t *testing.T) {
	full := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(499, 399)}
	rt := &router{plane: &Plane{Bounds: full}}
	cases := []struct {
		name string
		bbox geom.Rect
	}{
		{"tiny", geom.Rect{Min: geom.Pt(200, 200), Max: geom.Pt(205, 203)}},
		{"wide", geom.Rect{Min: geom.Pt(10, 180), Max: geom.Pt(490, 220)}},
		{"full", full},
		{"corner", geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(3, 3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rungs := rt.windows(tc.bbox)
			if len(rungs) == 0 {
				t.Fatal("empty window schedule")
			}
			last := rungs[len(rungs)-1]
			if last != full {
				t.Fatalf("last rung %v is not the full plane %v", last, full)
			}
			for i, r := range rungs {
				if !winContains(r, tc.bbox.Min) || !winContains(r, tc.bbox.Max) {
					t.Errorf("rung %d %v does not contain the terminal bbox %v", i, r, tc.bbox)
				}
				if i > 0 && winArea(r) <= winArea(rungs[i-1]) {
					t.Errorf("rung %d area %d does not grow over rung %d area %d",
						i, winArea(r), i-1, winArea(rungs[i-1]))
				}
				if i < len(rungs)-1 && winArea(r)*4 >= winArea(rungs[i+1])*3 {
					t.Errorf("rung %d area %d within 3/4 of next rung %d — should have been pruned",
						i, winArea(r), winArea(rungs[i+1]))
				}
			}
		})
	}
	t.Run("nowindow", func(t *testing.T) {
		rt := &router{plane: &Plane{Bounds: full}, opts: Options{NoWindow: true}}
		rungs := rt.windows(geom.Rect{Min: geom.Pt(5, 5), Max: geom.Pt(9, 9)})
		if len(rungs) != 1 || rungs[0] != full {
			t.Fatalf("NoWindow schedule %v, want just the full plane", rungs)
		}
	})
}
