package route

import (
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/workload"
)

// crossScene builds the two-track cross pattern where, without
// claimpoints, the first net's corners wall in the second net's
// terminals (the §5.7 motivation).
func crossScene(t *testing.T) (*place.Result, *netlist.Net, *netlist.Net) {
	s := newScene(t)
	s.mod("M0", 0, 0, 3, 4,
		term("A", netlist.Out, 3, 1),
		term("C", netlist.Out, 3, 3))
	s.mod("M1", 6, 0, 3, 4,
		term("B", netlist.In, 0, 3),
		term("D", netlist.In, 0, 1))
	n1 := s.net("n1", [2]string{"M0", "A"}, [2]string{"M1", "B"})
	n2 := s.net("n2", [2]string{"M0", "C"}, [2]string{"M1", "D"})
	return s.finish(), n1, n2
}

func TestRipUpRescuesFig65(t *testing.T) {
	// Figure 6.5 (controller pinned top-left, p=1 clustering) leaves
	// the din2 net unroutable under design order; the rip-up pass must
	// recover it by displacing the wires that pocket alu2.B.
	build := func() *place.Result {
		d := workload.Datapath16()
		fixed := map[*netlist.Module]place.Fixed{}
		for name, hp := range workload.Datapath16HandTweak() {
			fixed[d.Module(name)] = place.Fixed{Pos: hp.Pos, Orient: hp.Orient}
		}
		pr, err := place.Place(d, place.Options{PartSize: 1, BoxSize: 1, Fixed: fixed})
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	bare := mustRoute(t, build(), Options{Claimpoints: true})
	if bare.UnroutedCount() == 0 {
		t.Skip("baseline routed fully; nothing for rip-up to prove")
	}
	fixed := mustRoute(t, build(), Options{Claimpoints: true, RipUp: true})
	if got := fixed.UnroutedCount(); got != 0 {
		t.Errorf("rip-up left %d unrouted nets (baseline %d)", got, bare.UnroutedCount())
	}
	if fixed.UnroutedCount() > bare.UnroutedCount() {
		t.Error("rip-up made the routing worse")
	}
}

func TestRipUpNeverWorsensCrossScene(t *testing.T) {
	// The bare cross pattern is infeasible for greedy rip-up (one net
	// must voluntarily detour through the margin, which only the
	// claimpoint mechanism forces); the pass must leave the result no
	// worse and fully legal.
	pr, n1, n2 := crossScene(t)
	bare := mustRoute(t, pr, Options{Claimpoints: false, NoRetry: true})
	pr2, m1, m2 := crossScene(t)
	ripped := mustRoute(t, pr2, Options{Claimpoints: false, NoRetry: true, RipUp: true})
	if ripped.UnroutedCount() > bare.UnroutedCount() {
		t.Errorf("rip-up worsened: %d vs %d", ripped.UnroutedCount(), bare.UnroutedCount())
	}
	_, _, _, _ = n1, n2, m1, m2
}

func TestRipUpKeepsDiagramLegal(t *testing.T) {
	// After a rip-up pass the geometry must still be fully legal: the
	// rebuilt plane validated every wire, but double check via a
	// manual re-lay on a fresh plane.
	pr, _, _ := crossScene(t)
	res := mustRoute(t, pr, Options{Claimpoints: false, NoRetry: true, RipUp: true})
	fresh := NewPlane(res.Plane.Bounds)
	for _, m := range pr.Design.Modules {
		r := pr.Mods[m].Rect()
		fresh.BlockRect(r.Min, r.Max)
	}
	for _, n := range pr.Design.Nets {
		for _, tm := range n.Terms {
			p, _ := pr.TermPos(tm)
			if err := fresh.SetTerminal(p, res.NetID[n]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, rn := range res.Nets {
		if len(rn.Segments) == 0 {
			continue
		}
		if err := fresh.LayWire(res.NetID[rn.Net], rn.Segments); err != nil {
			t.Errorf("net %s geometry illegal after rip-up: %v", rn.Net.Name, err)
		}
	}
}

func TestRipUpNoopWhenComplete(t *testing.T) {
	// On a design that routes cleanly, the rip-up pass must not disturb
	// anything.
	d := workload.Fig61()
	pr, err := place.Place(d, place.Options{PartSize: 6, BoxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	with := mustRoute(t, pr, Options{Claimpoints: true, RipUp: true})
	if with.UnroutedCount() != 0 {
		t.Error("rip-up broke a complete routing")
	}
}
