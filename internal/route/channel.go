package route

import (
	"fmt"
	"sort"
)

// This file implements the left-edge channel router of §5.2.4 as a
// baseline: a channel has terminals on two opposite sides; each net
// becomes a horizontal interval spanning its pins; the algorithm fills
// one track at a time as densely as possible with non-overlapping
// intervals. It is very fast but limited — exactly the trade-off the
// paper cites when rejecting channel routing for schematics (channels
// would have to be constructed explicitly).

// ChannelPin is a terminal on the top or bottom edge of a channel.
type ChannelPin struct {
	X   int
	Net int
	Top bool
}

// ChannelInterval is the horizontal span a net occupies in the channel.
type ChannelInterval struct {
	Net         int
	Left, Right int
}

// BuildIntervals collapses pins into one interval per net. Nets with a
// single pin are rejected: a channel connection needs at least two.
func BuildIntervals(pins []ChannelPin) ([]ChannelInterval, error) {
	type span struct {
		lo, hi, n int
	}
	spans := map[int]*span{}
	order := []int{}
	for _, p := range pins {
		s, ok := spans[p.Net]
		if !ok {
			spans[p.Net] = &span{p.X, p.X, 1}
			order = append(order, p.Net)
			continue
		}
		if p.X < s.lo {
			s.lo = p.X
		}
		if p.X > s.hi {
			s.hi = p.X
		}
		s.n++
	}
	var out []ChannelInterval
	for _, net := range order {
		s := spans[net]
		if s.n < 2 {
			return nil, fmt.Errorf("route: channel net %d has a single pin", net)
		}
		out = append(out, ChannelInterval{Net: net, Left: s.lo, Right: s.hi})
	}
	return out, nil
}

// LeftEdge assigns intervals to tracks with the classic left-edge
// greedy: sort by left coordinate; fill the current track with the
// next non-overlapping interval until none fits, then open a new
// track. It returns the track assignment (track index per interval
// order of the result) and the channel density actually used.
func LeftEdge(intervals []ChannelInterval) (tracks [][]ChannelInterval) {
	rest := append([]ChannelInterval(nil), intervals...)
	sort.SliceStable(rest, func(i, j int) bool {
		if rest[i].Left != rest[j].Left {
			return rest[i].Left < rest[j].Left
		}
		return rest[i].Right < rest[j].Right
	})
	for len(rest) > 0 {
		var track []ChannelInterval
		var next []ChannelInterval
		edge := -1 << 62
		for _, iv := range rest {
			// Adjacent intervals may not share a column: a shared
			// column would overlap the vertical pin stubs.
			if iv.Left > edge {
				track = append(track, iv)
				edge = iv.Right
			} else {
				next = append(next, iv)
			}
		}
		tracks = append(tracks, track)
		rest = next
	}
	return tracks
}

// ChannelDensity returns the lower bound on the number of tracks: the
// maximum number of intervals covering any single column.
func ChannelDensity(intervals []ChannelInterval) int {
	type ev struct {
		x     int
		delta int
	}
	var evs []ev
	for _, iv := range intervals {
		evs = append(evs, ev{iv.Left, +1}, ev{iv.Right + 1, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].x != evs[j].x {
			return evs[i].x < evs[j].x
		}
		return evs[i].delta < evs[j].delta // close intervals before opening new ones
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}
