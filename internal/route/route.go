package route

import (
	"context"
	"fmt"
	"sort"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/resilience"
)

// Options mirrors the EUREKA command line of Appendix F plus the
// claimpoint extension of §5.7.
type Options struct {
	// Claimpoints enables the §5.7 extension: every connected subsystem
	// terminal reserves the first track cell in front of it; the claims
	// of a net are released when its routing starts, and a final retry
	// pass over failed nets runs with all claims gone.
	Claimpoints bool
	// SwapObjective (-s) ranks minimum-bend candidates by wire length
	// first and crossings second instead of the default order.
	SwapObjective bool
	// Margin is the number of free tracks added around the placement
	// for routing. Sides with a fixed border (-u -d -l -r) get none:
	// wires cannot pass beyond the bounding box there, which forces
	// outgoing nets perpendicular to that border.
	Margin int
	// FixedBorder[d] fixes the border on side d (the EUREKA options
	// -l, -r, -u, -d index as geom.Left, geom.Right, geom.Up, geom.Down).
	FixedBorder [4]bool
	// Prerouted supplies nets with already drawn (partial or complete)
	// paths; they are added as obstacles before routing starts and the
	// router only adds the missing connections (§5.7).
	Prerouted map[*netlist.Net][]Segment
	// NoRetry disables the post-pass over failed nets (used by the
	// claimpoint ablation bench).
	NoRetry bool
	// OrderShortestFirst routes nets in order of increasing estimated
	// length (half-perimeter of the terminal bounding box) instead of
	// design order. This implements the net-ordering criterion the
	// paper lists under "recommendations for further research" (§7).
	// The gen/service/cmd layers enable it by default (it routes all
	// 222 LIFE nets where design order strands obs7); the paper's
	// design order stays available behind -route-order=design.
	OrderShortestFirst bool
	// NoWindow disables the bounded search windows (window.go): every
	// search then sweeps the full plane, as the seed router did. The
	// zero value — windows on — is the production default; searches are
	// confined to the terminals' bounding box plus an adaptive margin
	// that widens on failure (ending at the full plane), so routability
	// is never lost. The flag exists for the windowed≡full property
	// battery and for A/B benching.
	NoWindow bool
	// RipUp enables a final rip-up-and-reroute pass (extension beyond
	// the paper): each still-failed net may displace one nearby routed
	// net, keeping the exchange only when both complete.
	RipUp bool
	// DualFront initiates point-to-point connections from both
	// terminals with alternating wavefronts (§5.5.3) instead of the
	// single source-to-target front. The found paths are equivalent;
	// the searched area roughly halves on long connections.
	DualFront bool
	// Algorithm selects the search engine. The default is the paper's
	// line-expansion router; the baselines of §5.2 are available for
	// the comparison benches.
	Algorithm Algo
	// MaxPlaneArea caps the routing-plane area in points (0 =
	// unlimited). Oversized planes are rejected with a
	// *resilience.LimitError before any allocation, so one pathological
	// placement cannot exhaust the process.
	MaxPlaneArea int
	// Workers sets the concurrency of the speculative parallel routing
	// scheduler (parallel.go): up to Workers nets are routed at the same
	// time against private plane snapshots and committed strictly in the
	// canonical net order, so the result is byte-identical to the
	// sequential router. 0 or 1 routes sequentially. Only the main
	// routeAll pass parallelizes; the retry, rip-up and prerouted phases
	// are sequential in either mode.
	Workers int
	// Inject, when non-nil, arms the resilience.SiteRouteWavefront
	// fault site: it is fired once per wavefront search, and an
	// injected error makes that search fail soft (the terminal is
	// reported unrouted, matching the paper's best-effort failure
	// model) while an injected panic propagates to the caller's
	// Recover boundary.
	Inject *resilience.Injector
	// OnCommit, when non-nil, is invoked once per net at the router's
	// ordered-commit point of the main routing pass, strictly in the
	// canonical routing order (routeOrder): the sequential loop and the
	// parallel speculation committer fire the identical sequence, so
	// observers see the same progression regardless of Workers. idx is
	// the net's position in the canonical order, total the number of
	// nets in the pass, and rn the outcome committed at that point.
	// The retry and rip-up passes may later improve a net reported
	// failed here; the returned Result holds the authoritative final
	// geometry. The callback runs on the routing goroutine: it must not
	// block for long and must not mutate routing state.
	OnCommit func(idx, total int, rn *RoutedNet)
}

// ParseOrder maps the -route-order flag (and the service's route_order
// option) onto Options.OrderShortestFirst. The empty string means the
// default, which is shortest-first; the paper's design order stays
// available as "design".
func ParseOrder(s string) (shortestFirst bool, err error) {
	switch s {
	case "", "shortest":
		return true, nil
	case "design":
		return false, nil
	default:
		return false, fmt.Errorf("route: unknown order %q (shortest, design)", s)
	}
}

// ParseWindow maps the -route-window flag (and the service's
// route_window option) onto Options.NoWindow. The empty string means
// the default, windows on.
func ParseWindow(s string) (noWindow bool, err error) {
	switch s {
	case "", "on":
		return false, nil
	case "off":
		return true, nil
	default:
		return false, fmt.Errorf("route: unknown window mode %q (on, off)", s)
	}
}

// Algo identifies a routing search engine.
type Algo int

// The available engines.
const (
	// AlgoLineExpansion is the paper's router (§5.5/§5.6).
	AlgoLineExpansion Algo = iota
	// AlgoLee is the Lee maze runner with the schematic objective
	// (bends first), §5.2.2 generalized with penalty costs.
	AlgoLee
	// AlgoLeeLength is the classic Lee router minimizing wire length.
	AlgoLeeLength
	// AlgoHightower is the Hightower line-search router (§5.2.3):
	// fast, but it may fail to find an existing connection.
	AlgoHightower
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoLineExpansion:
		return "line-expansion"
	case AlgoLee:
		return "lee-bends"
	case AlgoLeeLength:
		return "lee-length"
	case AlgoHightower:
		return "hightower"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

func (o Options) margin() int {
	if o.Margin <= 0 {
		return 6
	}
	return o.Margin
}

// RoutedNet is the outcome for one net.
type RoutedNet struct {
	Net      *netlist.Net
	Segments []Segment
	// Failed lists the terminals that could not be connected; empty
	// means fully routed.
	Failed []*netlist.Terminal
}

// OK reports whether the net routed completely.
func (rn *RoutedNet) OK() bool { return len(rn.Failed) == 0 }

// Result is the routing outcome for a whole placed design.
type Result struct {
	Placement *place.Result
	Plane     *Plane
	Nets      []*RoutedNet
	NetID     map[*netlist.Net]int32
	// Stats aggregates the line-expansion work counters over the run
	// (zero when a baseline algorithm handled the searches).
	Stats SearchStats
	// Speculation carries the parallel scheduler's bookkeeping when the
	// route ran with Options.Workers > 1; nil on sequential runs. It is
	// diagnostic metadata: every other Result field is byte-identical
	// between sequential and parallel runs of the same input.
	Speculation *SpecStats
	byNet       map[*netlist.Net]*RoutedNet
}

// Net returns the routing outcome for a specific net.
func (r *Result) Net(n *netlist.Net) *RoutedNet { return r.byNet[n] }

// UnroutedCount returns the number of nets with at least one
// unconnected terminal — the measure reported for figures 6.6/6.7.
func (r *Result) UnroutedCount() int {
	n := 0
	for _, rn := range r.Nets {
		if !rn.OK() {
			n++
		}
	}
	return n
}

// router carries the working state of one Route invocation. The
// parallel scheduler creates one shallow copy per worker that shares
// the read-only fields (pl, opts, netID) but has a private plane
// snapshot, stats sink, op recorder and cancellation checker.
type router struct {
	pl     *place.Result
	plane  *Plane
	opts   Options
	netID  map[*netlist.Net]int32
	result *Result
	cancel *cancelCheck
	ctx    context.Context // the RouteCtx context; workers derive their own cancel checkers from it

	// stats is where the search engines accumulate their counters. It
	// points at result.Stats on the main router; speculation workers
	// point it at a per-net local so only committed work is counted (in
	// commit order, keeping the totals identical to a sequential run).
	stats *SearchStats
	// rec, when non-nil, records every plane mutation routeNet makes
	// (claim releases, laid wires) so an ordered commit can replay them
	// against the master plane.
	rec *opRecord
	// ar is the lazily created search arena (window.go) reused across
	// every line-expansion search this router runs. Never shared between
	// routers: each parallel worker creates its own against its private
	// plane snapshot.
	ar *searchArena
}

// arena returns the router's search arena, creating it on first use.
func (rt *router) arena() *searchArena {
	if rt.ar == nil {
		rt.ar = newSearchArena(len(rt.plane.blocked))
	}
	return rt.ar
}

// Route runs the routing phase over a placement.
func Route(pr *place.Result, opts Options) (*Result, error) {
	return RouteCtx(context.Background(), pr, opts)
}

// RouteCtx runs the routing phase over a placement with cancellation:
// the deadline or cancel signal of ctx is polled inside the wavefront
// loops of every search engine (the hottest paths), between nets, and
// between the retry/rip-up passes, so a cancelled route returns within
// a bounded amount of residual work. On cancellation the partial result
// is discarded and ctx.Err() is returned.
func RouteCtx(ctx context.Context, pr *place.Result, opts Options) (*Result, error) {
	rt := &router{
		pl:     pr,
		opts:   opts,
		netID:  map[*netlist.Net]int32{},
		cancel: newCancelCheck(ctx),
		ctx:    ctx,
	}
	if err := rt.buildPlane(); err != nil {
		return nil, err
	}
	rt.result = &Result{
		Placement: pr,
		Plane:     rt.plane,
		NetID:     rt.netID,
		byNet:     map[*netlist.Net]*RoutedNet{},
	}
	rt.stats = &rt.result.Stats
	if err := rt.addPrerouted(); err != nil {
		return nil, err
	}
	if opts.Claimpoints {
		rt.placeClaims()
	}
	rt.routeAll()
	if !opts.NoRetry && !rt.cancel.poll() {
		rt.retryFailed()
	}
	if opts.RipUp && !rt.cancel.poll() {
		rt.plane.ReleaseAllClaims()
		rt.ripUpPass(4)
	}
	if rt.cancel.poll() {
		return nil, ctx.Err()
	}
	return rt.result, nil
}

// buildPlane sets up the obstacle configuration (ADD_OBSTACLE_BOUNDINGS):
// module outlines, system terminal points and the plane border.
func (rt *router) buildPlane() error {
	d := rt.pl.Design
	// Point bounds: a module rect of cells [min,max) occupies points
	// min..max inclusive.
	b := rt.pl.Bounds
	pb := geom.Rect{Min: b.Min, Max: b.Max} // already point-usable: Max row/col holds terminals
	m := rt.opts.margin()
	if !rt.opts.FixedBorder[geom.Left] {
		pb.Min.X -= m
	}
	if !rt.opts.FixedBorder[geom.Down] {
		pb.Min.Y -= m
	}
	if !rt.opts.FixedBorder[geom.Right] {
		pb.Max.X += m
	}
	if !rt.opts.FixedBorder[geom.Up] {
		pb.Max.Y += m
	}
	g := resilience.Guards{MaxPlaneArea: rt.opts.MaxPlaneArea}
	if err := g.CheckArea(pb.Max.X-pb.Min.X+1, pb.Max.Y-pb.Min.Y+1); err != nil {
		return fmt.Errorf("route: %w", err)
	}
	rt.plane = NewPlane(pb)

	for _, m := range d.Modules {
		pm, ok := rt.pl.Mods[m]
		if !ok {
			return fmt.Errorf("route: module %q not placed", m.Name)
		}
		r := pm.Rect()
		rt.plane.BlockRect(r.Min, r.Max)
	}
	for i, n := range d.Nets {
		rt.netID[n] = int32(i + 1)
	}
	// Terminal marks: connected terminals become endpoints of their
	// net; system terminal points are additionally blocked so no
	// foreign wire may overlap them.
	for _, n := range d.Nets {
		id := rt.netID[n]
		for _, t := range n.Terms {
			p, err := rt.pl.TermPos(t)
			if err != nil {
				return err
			}
			if err := rt.plane.SetTerminal(p, id); err != nil {
				return fmt.Errorf("route: net %q: %w", n.Name, err)
			}
		}
	}
	for _, st := range d.SysTerms {
		p := rt.pl.SysPos[st]
		rt.plane.BlockPoint(p)
	}
	return nil
}

// addPrerouted lays the supplied paths as obstacles and records which
// terminals they already connect.
func (rt *router) addPrerouted() error {
	// Deterministic order by net name.
	nets := make([]*netlist.Net, 0, len(rt.opts.Prerouted))
	for n := range rt.opts.Prerouted {
		nets = append(nets, n)
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i].Name < nets[j].Name })
	for _, n := range nets {
		id, ok := rt.netID[n]
		if !ok {
			return fmt.Errorf("route: prerouted net %q not in design", n.Name)
		}
		if err := rt.plane.LayWire(id, rt.opts.Prerouted[n]); err != nil {
			return fmt.Errorf("route: prerouted net %q: %w", n.Name, err)
		}
	}
	return nil
}

// placeClaims reserves, for every connected subsystem terminal, the
// first track cell in front of it (§5.7).
func (rt *router) placeClaims() {
	for _, n := range rt.pl.Design.Nets {
		id := rt.netID[n]
		for _, t := range n.Terms {
			if t.Module == nil {
				continue
			}
			p, err := rt.pl.TermPos(t)
			if err != nil {
				continue
			}
			side, err := rt.pl.TermSide(t)
			if err != nil {
				continue
			}
			rt.plane.Claim(p.Add(side.Delta()), id)
		}
	}
}

// routeAll routes every net (ROUTING). The default order is design
// order, as in the paper; OrderShortestFirst is the §7 extension.
// With Options.Workers > 1 the speculation scheduler (parallel.go)
// routes the same canonical order concurrently with ordered commit.
func (rt *router) routeAll() {
	if rt.opts.Workers > 1 {
		rt.routeAllParallel()
		return
	}
	order := rt.routeOrder()
	byNet := map[*netlist.Net]*RoutedNet{}
	for i, n := range order {
		if rt.cancel.poll() {
			break // abandoned run; RouteCtx discards the result
		}
		byNet[n] = rt.routeNet(n)
		if rt.opts.OnCommit != nil {
			rt.opts.OnCommit(i, len(order), byNet[n])
		}
	}
	rt.publish(byNet)
}

// routeOrder returns the canonical routing order: design order, or
// increasing estimated length with OrderShortestFirst. This order is
// the commit order of the parallel scheduler, which is why parallel
// results are identical to sequential ones.
func (rt *router) routeOrder() []*netlist.Net {
	order := append([]*netlist.Net(nil), rt.pl.Design.Nets...)
	if rt.opts.OrderShortestFirst {
		est := make(map[*netlist.Net]int, len(order))
		for _, n := range order {
			est[n] = rt.halfPerimeter(n)
		}
		sort.SliceStable(order, func(i, j int) bool { return est[order[i]] < est[order[j]] })
	}
	return order
}

// publish records the per-net outcomes into the result in design order
// regardless of routing order. Nets missing from byNet (cancelled run)
// are reported with all terminals failed.
func (rt *router) publish(byNet map[*netlist.Net]*RoutedNet) {
	for _, n := range rt.pl.Design.Nets {
		rn := byNet[n]
		if rn == nil {
			rn = &RoutedNet{Net: n, Failed: append([]*netlist.Terminal(nil), n.Terms...)}
		}
		rt.result.Nets = append(rt.result.Nets, rn)
		rt.result.byNet[n] = rn
	}
}

// layWire lays a routed wire on the router's plane and, when recording,
// journals the (degenerate-filtered) segment group for ordered replay.
func (rt *router) layWire(id int32, segs []Segment) error {
	if rt.rec == nil {
		return rt.plane.LayWire(id, segs)
	}
	kept := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if s.A != s.B {
			kept = append(kept, s)
		}
	}
	if err := rt.plane.LayWire(id, kept); err != nil {
		return err
	}
	rt.rec.wires = append(rt.rec.wires, kept)
	return nil
}

// releaseClaims removes the net's claimpoints, recording the released
// plane indices when an op recorder is attached.
func (rt *router) releaseClaims(id int32) {
	if rt.rec == nil {
		rt.plane.ReleaseClaims(id)
		return
	}
	rt.rec.claims = append(rt.rec.claims, rt.plane.releaseClaimsList(id)...)
}

// halfPerimeter estimates a net's routed length as the half-perimeter
// of its terminal bounding box.
func (rt *router) halfPerimeter(n *netlist.Net) int {
	first := true
	var lo, hi geom.Point
	for _, t := range n.Terms {
		p := rt.termPoint(t)
		if first {
			lo, hi, first = p, p, false
			continue
		}
		lo = geom.Pt(geom.Min(lo.X, p.X), geom.Min(lo.Y, p.Y))
		hi = geom.Pt(geom.Max(hi.X, p.X), geom.Max(hi.Y, p.Y))
	}
	return (hi.X - lo.X) + (hi.Y - lo.Y)
}

// termPoint resolves a terminal's plane point.
func (rt *router) termPoint(t *netlist.Terminal) geom.Point {
	p, _ := rt.pl.TermPos(t)
	return p
}

// escapeDirs returns the initial expansion directions for a terminal:
// the outward module side for subsystem terminals, all four directions
// for system terminals (INIT_ACTIVES).
func (rt *router) escapeDirs(t *netlist.Terminal) []geom.Dir {
	if t.Module == nil {
		return []geom.Dir{geom.Left, geom.Right, geom.Up, geom.Down}
	}
	side, err := rt.pl.TermSide(t)
	if err != nil {
		return nil
	}
	return []geom.Dir{side}
}

// routeNet routes one net: initiate with a point-to-point connection
// between the closest terminal pair, then attach every remaining
// terminal to the growing tree (INIT_NET / EXPAND_NET).
func (rt *router) routeNet(n *netlist.Net) *RoutedNet {
	rn := &RoutedNet{Net: n}
	id := rt.netID[n]
	rt.releaseClaims(id)

	if pre, ok := rt.opts.Prerouted[n]; ok {
		rn.Segments = append(rn.Segments, pre...)
	}
	if n.Degree() < 2 && len(rn.Segments) == 0 {
		return rn // nothing to connect
	}

	connected, pending := rt.splitConnected(n, rn.Segments)
	if len(connected) == 0 && len(pending) >= 2 {
		// Initiation: order candidate pairs by distance and take the
		// first routable one ("when no solution is found, another pair
		// of points has to be selected").
		pair, segs, ok := rt.initiate(pending, id)
		if !ok {
			rn.Failed = append(rn.Failed, pending...)
			return rn
		}
		rn.Segments = append(rn.Segments, segs...)
		connected = append(connected, pair[0], pair[1])
		pending = removeTerms(pending, pair[0], pair[1])
	}

	// Expansion: attach remaining terminals, closest to the tree first.
	for len(pending) > 0 {
		sort.SliceStable(pending, func(i, j int) bool {
			return rt.distToTree(pending[i], rn.Segments, connected) <
				rt.distToTree(pending[j], rn.Segments, connected)
		})
		t := pending[0]
		pending = pending[1:]
		segs, ok := rt.connectToTree(t, id, connected, rn.Segments)
		if !ok {
			rn.Failed = append(rn.Failed, t)
			continue
		}
		if err := rt.layWire(id, segs); err != nil {
			// Should not happen: the search only uses legal cells.
			rn.Failed = append(rn.Failed, t)
			continue
		}
		rn.Segments = append(rn.Segments, segs...)
		connected = append(connected, t)
	}
	return rn
}

// splitConnected partitions the net's terminals into those already on
// the prerouted geometry and those still pending.
func (rt *router) splitConnected(n *netlist.Net, pre []Segment) (connected, pending []*netlist.Terminal) {
	onWire := map[geom.Point]bool{}
	for _, s := range pre {
		for _, p := range s.Points() {
			onWire[p] = true
		}
	}
	for _, t := range n.Terms {
		if onWire[rt.termPoint(t)] {
			connected = append(connected, t)
		} else {
			pending = append(pending, t)
		}
	}
	return connected, pending
}

// initiate makes the first point-to-point connection of a net.
func (rt *router) initiate(terms []*netlist.Terminal, id int32) ([2]*netlist.Terminal, []Segment, bool) {
	type pair struct {
		a, b *netlist.Terminal
		d    int
	}
	var pairs []pair
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			pairs = append(pairs, pair{terms[i], terms[j],
				rt.termPoint(terms[i]).Manhattan(rt.termPoint(terms[j]))})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	const maxAttempts = 8
	for k, p := range pairs {
		if k >= maxAttempts {
			break
		}
		target := rt.termPoint(p.b)
		var segs []Segment
		var ok bool
		if rt.opts.DualFront && rt.opts.Algorithm == AlgoLineExpansion {
			if rt.opts.Inject.Fire(resilience.SiteRouteWavefront) != nil {
				continue // injected soft failure: try the next pair
			}
			from := rt.termPoint(p.a)
			wins := rt.windows(boxAdd(ptBox(from), target))
			for wi, win := range wins {
				if wi > 0 {
					rt.stats.Widened++
				}
				rt.stats.Searches++
				var exact bool
				segs, ok, exact = dualSearch(rt.plane, id,
					from, rt.escapeDirs(p.a),
					target, rt.escapeDirs(p.b),
					rt.opts.SwapObjective, win, rt.stats, rt.cancel)
				// Inexact outcomes (a clipped escape could have changed
				// the result) re-run on the next, wider rung; the last
				// rung is the full plane, exact by construction.
				if exact || wi == len(wins)-1 || rt.cancel.poll() {
					break
				}
			}
		} else {
			segs, ok = rt.search(p.a, id, func(q geom.Point) bool { return q == target },
				[]geom.Point{target}, nil)
		}
		if !ok {
			continue
		}
		if err := rt.layWire(id, segs); err != nil {
			continue
		}
		return [2]*netlist.Terminal{p.a, p.b}, segs, true
	}
	return [2]*netlist.Terminal{}, nil, false
}

// connectToTree searches from terminal t to any point of the net's
// existing geometry (wires or connected terminal points). tree is the
// net's laid geometry, used only to aim the search window — the target
// predicate itself reads the plane.
func (rt *router) connectToTree(t *netlist.Terminal, id int32, connected []*netlist.Terminal, tree []Segment) ([]Segment, bool) {
	connPts := map[geom.Point]bool{}
	for _, c := range connected {
		connPts[rt.termPoint(c)] = true
	}
	target := func(q geom.Point) bool {
		if connPts[q] {
			return true
		}
		return rt.plane.HNet(q) == id || rt.plane.VNet(q) == id
	}
	var hint []geom.Point
	for p := range connPts {
		hint = append(hint, p)
	}
	sort.Slice(hint, func(i, j int) bool {
		if hint[i].X != hint[j].X {
			return hint[i].X < hint[j].X
		}
		return hint[i].Y < hint[j].Y
	})
	return rt.search(t, id, target, hint, tree)
}

// search runs one search from a terminal using the selected engine,
// over the widening window ladder: the bounding box of the terminal,
// the hint points and the net's tree geometry plus an adaptive margin,
// retried wider on failure up to the full plane (window.go), so a
// windowed failure never loses a routable connection. hint lists known
// target points (for engines that need a concrete point, like
// Hightower); tree is the net's laid geometry. Every reachable target
// point must lie within the bbox of from/hint/tree — the Lee engine's
// A* bound relies on it.
func (rt *router) search(t *netlist.Terminal, id int32, target func(geom.Point) bool, hint []geom.Point, tree []Segment) ([]Segment, bool) {
	from := rt.termPoint(t)
	dirs := rt.escapeDirs(t)
	if len(dirs) == 0 {
		return nil, false
	}
	// Fault-injection site route.wavefront: one firing per search. An
	// injected error fails this search softly (the terminal is reported
	// unrouted and the degradation ladder decides what happens next); a
	// panic escapes to the nearest resilience.Recover.
	if rt.opts.Inject.Fire(resilience.SiteRouteWavefront) != nil {
		return nil, false
	}
	bbox := ptBox(from)
	for _, h := range hint {
		bbox = boxAdd(bbox, h)
	}
	for _, s := range tree {
		bbox = boxAdd(boxAdd(bbox, s.A), s.B)
	}
	wins := rt.windows(bbox)
	if rt.opts.Algorithm == AlgoLee || rt.opts.Algorithm == AlgoLeeLength || rt.opts.Algorithm == AlgoHightower {
		// The baselines always search the full plane: Lee already bounds
		// its work with the A* prune, Hightower's line probes are cheap,
		// and neither carries the clip tracking that makes a windowed
		// outcome provably exact.
		wins = wins[len(wins)-1:]
	}
	for wi, win := range wins {
		if wi > 0 {
			rt.stats.Widened++
		}
		segs, ok, exact := rt.searchIn(win, bbox, id, from, dirs, target, hint, tree)
		// Exact outcomes — success or failure — are what the unwindowed
		// search would have produced, so they are final. Inexact ones are
		// re-run on the next, wider rung; the last rung is the full plane,
		// which is exact by construction.
		if exact || wi == len(wins)-1 {
			return segs, ok
		}
		if rt.cancel.poll() {
			return nil, false
		}
	}
	return nil, false
}

// searchIn runs one engine invocation confined to the window win; tbox
// is the target bounding box the Lee A* prune uses. The third result
// reports whether the outcome is provably identical to an unwindowed
// search (lineexp.go exact); the baselines only ever run unwindowed.
// For the line-expansion engine the target set — the hint points plus
// the net's laid tree — is precomputed as arena marks, replacing the
// per-cell predicate on the hot sweep.
func (rt *router) searchIn(win, tbox geom.Rect, id int32, from geom.Point, dirs []geom.Dir, target func(geom.Point) bool, hint []geom.Point, tree []Segment) ([]Segment, bool, bool) {
	switch rt.opts.Algorithm {
	case AlgoLee:
		obj := BendsFirst
		if rt.opts.SwapObjective {
			obj = LengthCrossBends
		}
		segs, ok := leeSearch(rt.plane, id, from, dirs, target, obj, win, tbox, rt.cancel)
		return segs, ok, true
	case AlgoLeeLength:
		segs, ok := leeSearch(rt.plane, id, from, dirs, target, LengthFirst, win, tbox, rt.cancel)
		return segs, ok, true
	case AlgoHightower:
		// Hightower is point to point: aim at the nearest hint.
		best := geom.Point{}
		bestD := 1 << 30
		for _, h := range hint {
			if d := from.Manhattan(h); d < bestD {
				best, bestD = h, d
			}
		}
		if bestD == 1<<30 {
			return nil, false, true
		}
		segs, ok := hightowerSearch(rt.plane, id, from, best, win)
		return segs, ok, true
	default:
		ls := newLineSearch(rt.plane, id, target, rt.opts.SwapObjective, win, rt.arena())
		ls.stats = rt.stats
		ls.cancel = rt.cancel
		ls.setTargets(hint, tree)
		rt.stats.Searches++
		segs, ok := ls.run(terminalActives(from, dirs))
		return segs, ok, ls.exact()
	}
}

// distToTree estimates a terminal's distance to the net's current
// geometry for ordering (not correctness).
func (rt *router) distToTree(t *netlist.Terminal, segs []Segment, connected []*netlist.Terminal) int {
	p := rt.termPoint(t)
	best := 1 << 30
	for _, c := range connected {
		if d := p.Manhattan(rt.termPoint(c)); d < best {
			best = d
		}
	}
	for _, s := range segs {
		if d := distToSegment(p, s); d < best {
			best = d
		}
	}
	return best
}

func distToSegment(p geom.Point, s Segment) int {
	c := s.Canon()
	cx := geom.Min(geom.Max(p.X, c.A.X), c.B.X)
	cy := geom.Min(geom.Max(p.Y, c.A.Y), c.B.Y)
	return p.Manhattan(geom.Pt(cx, cy))
}

func removeTerms(terms []*netlist.Terminal, drop ...*netlist.Terminal) []*netlist.Terminal {
	out := terms[:0:0]
	for _, t := range terms {
		skip := false
		for _, d := range drop {
			if t == d {
				skip = true
			}
		}
		if !skip {
			out = append(out, t)
		}
	}
	return out
}

// retryFailed releases every remaining claimpoint and re-attempts the
// failed terminals ("all unconnected terminals should be tried again
// after all the claimpoints have been removed", §5.7).
func (rt *router) retryFailed() {
	rt.plane.ReleaseAllClaims()
	for _, rn := range rt.result.Nets {
		if rt.cancel.poll() {
			return
		}
		if rn.OK() {
			continue
		}
		rt.completePending(rn)
	}
}

// completePending re-attempts every failed terminal of rn on the
// current plane, initiating the net first when it has no geometry yet.
func (rt *router) completePending(rn *RoutedNet) {
	id := rt.netID[rn.Net]
	pending := rn.Failed
	rn.Failed = nil
	connected := connectedTerms(rn, rt)

	// A net that never initiated first needs a point-to-point seed.
	if len(connected) == 0 && len(rn.Segments) == 0 && len(pending) >= 2 {
		if pair, segs, ok := rt.initiate(pending, id); ok {
			rn.Segments = append(rn.Segments, segs...)
			connected = append(connected, pair[0], pair[1])
			pending = removeTerms(pending, pair[0], pair[1])
		}
	}
	for _, t := range pending {
		if len(connected) == 0 && len(rn.Segments) == 0 {
			rn.Failed = append(rn.Failed, t)
			continue
		}
		segs, ok := rt.connectToTree(t, id, connected, rn.Segments)
		if !ok {
			rn.Failed = append(rn.Failed, t)
			continue
		}
		if err := rt.layWire(id, segs); err != nil {
			rn.Failed = append(rn.Failed, t)
			continue
		}
		rn.Segments = append(rn.Segments, segs...)
		connected = append(connected, t)
	}
}

// connectedTerms recomputes which terminals of a net touch its laid
// geometry.
func connectedTerms(rn *RoutedNet, rt *router) []*netlist.Terminal {
	onWire := map[geom.Point]bool{}
	for _, s := range rn.Segments {
		for _, p := range s.Points() {
			onWire[p] = true
		}
	}
	var out []*netlist.Terminal
	for _, t := range rn.Net.Terms {
		if onWire[rt.termPoint(t)] {
			out = append(out, t)
		}
	}
	return out
}
