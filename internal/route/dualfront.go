package route

import (
	"netart/internal/geom"
)

// This file implements the dual-front initiation of §5.5.3: "The search
// for an interconnection is initiated by the algorithm in both points...
// This yields two initiated wavefronts... Alternatingly, the expansion
// procedure is applied to all active segments forming one of the
// wavefronts. The process continues until a solution is found. A
// solution is found when an active line of the other wavefront is
// reached."
//
// Compared to the single-front search it roughly halves the searched
// area for long point-to-point connections, at the cost of a joint
// bookkeeping step where the two partial paths meet. Route uses it for
// net initiation when Options.DualFront is set; tree connections keep
// the single front (their target is an area, not a point).

// cellOwner records which active segment of a front covered a cell (in
// the active's own frame), so the other front can reconstruct the
// partial path from the meeting point.
type cellOwner struct {
	a     *active
	i, j  int
	cross int // crossings accumulated along the front's path to the cell
}

// frontState is one of the two wavefronts.
type frontState struct {
	search *lineSearch
	owner  map[int]cellOwner
	wave   []*active
}

// joint is a candidate combined solution.
type joint struct {
	segs   []Segment
	bends  int
	cross  int
	length int
}

// dualSearch runs the alternating two-front expansion between two
// terminal points, confined to the inclusive window win (the caller's
// widen-and-retry ladder supplies the schedule). On success the
// combined path runs from the A start to the B start.
//
// The third result reports exactness: the outcome is provably what the
// unwindowed search would have produced. The joint construction couples
// the two fronts (a clip on either side can change the other front's
// contact set), so the rule is conservative — exact iff neither front
// was clipped at all. The full-plane rung clips nothing, terminating
// the caller's ladder.
//
// Each front owns a private arena: the two coverage maps must stay
// independent (both fronts may sweep the same cell), so the fronts
// cannot share one epoch-stamped array.
func dualSearch(pl *Plane, net int32, fromA geom.Point, dirsA []geom.Dir,
	fromB geom.Point, dirsB []geom.Dir, swap bool, win geom.Rect,
	stats *SearchStats, cancel *cancelCheck) ([]Segment, bool, bool) {

	mk := func(from geom.Point, dirs []geom.Dir) *frontState {
		ls := newLineSearch(pl, net, func(geom.Point) bool { return false }, swap, win, nil)
		ls.stats = stats
		ls.cancel = cancel
		f := &frontState{search: ls, owner: map[int]cellOwner{}}
		f.wave = terminalActives(from, dirs)
		for _, a := range f.wave {
			for i := a.iv.Lo; i <= a.iv.Hi; i++ {
				p := a.pt(i, a.index)
				if pl.InBounds(p) {
					ls.ar.markCovered(pl.idx(p), allDirBits)
					f.owner[pl.idx(p)] = cellOwner{a: a, i: i, j: a.index}
				}
			}
		}
		return f
	}
	fa := mk(fromA, dirsA)
	fb := mk(fromB, dirsB)

	var sols []joint
	for len(fa.wave) > 0 || len(fb.wave) > 0 {
		if cancel.poll() {
			return nil, false, true // abandoned search: caller checks ctx.Err()
		}
		if len(fa.wave) > 0 {
			expandFrontWave(pl, fa, fb, &sols, true, stats)
			if len(sols) > 0 {
				break
			}
		}
		if len(fb.wave) > 0 {
			expandFrontWave(pl, fb, fa, &sols, false, stats)
			if len(sols) > 0 {
				break
			}
		}
	}
	exact := fa.search.clipWave == noClip && fb.search.clipWave == noClip
	if len(sols) == 0 {
		return nil, false, exact
	}
	best := sols[0]
	for _, s := range sols[1:] {
		if betterJoint(s, best, swap) {
			best = s
		}
	}
	return best.segs, true, exact
}

func betterJoint(a, b joint, swap bool) bool {
	if a.bends != b.bends {
		return a.bends < b.bends
	}
	if swap {
		if a.length != b.length {
			return a.length < b.length
		}
		return a.cross < b.cross
	}
	if a.cross != b.cross {
		return a.cross < b.cross
	}
	return a.length < b.length
}

// expandFrontWave expands one full wave of `self`, records per-cell
// owners, and converts contacts with `other` into joint solutions.
func expandFrontWave(pl *Plane, self, other *frontState, sols *[]joint,
	selfIsA bool, stats *SearchStats) {

	self.search.target = func(p geom.Point) bool {
		if !pl.InBounds(p) {
			return false
		}
		_, met := other.owner[pl.idx(p)]
		return met
	}
	var next []*active
	stats.addWave()
	for _, a := range self.wave {
		stats.addActive()
		before := snapshotCovered(self.search)
		next = self.search.expand(a, next)
		recordOwners(pl, self, a, before)
	}
	for _, sol := range self.search.sols {
		p := sol.a.pt(sol.i, sol.j)
		o, ok := other.owner[pl.idx(p)]
		if !ok {
			continue
		}
		selfSegs := pathBack(sol.a, sol.i, sol.j)
		otherSegs := pathBack(o.a, o.i, o.j)
		var combined []Segment
		if selfIsA {
			combined = append(reversePath(selfSegs), otherSegs...)
		} else {
			combined = append(reversePath(otherSegs), selfSegs...)
		}
		combined = cleanSegments(combined)
		*sols = append(*sols, joint{
			segs:   combined,
			bends:  len(combined) - 1,
			cross:  sol.cross + o.cross,
			length: totalLen(combined),
		})
	}
	self.search.sols = nil
	self.wave = next
}

// reversePath flips a target→source segment list into source→target.
func reversePath(segs []Segment) []Segment {
	out := make([]Segment, len(segs))
	for i, s := range segs {
		out[len(segs)-1-i] = Segment{A: s.B, B: s.A}
	}
	return out
}

// snapshotCovered extracts the current epoch's coverage bits so newly
// covered cells can be attributed to the expanding active.
func snapshotCovered(ls *lineSearch) []uint8 {
	out := make([]uint8, len(ls.ar.covered))
	for i := range out {
		out[i] = ls.ar.coveredBits(i)
	}
	return out
}

// recordOwners attributes every cell newly covered by a's expansion to
// a (replaying the escape lines geometrically), tracking the crossing
// count along each escape.
func recordOwners(pl *Plane, f *frontState, a *active, before []uint8) {
	step := a.step()
	for i := a.iv.Lo; i <= a.iv.Hi; i++ {
		j := a.index
		c := a.cross
		for {
			nj := j + step
			p := a.pt(i, nj)
			if !pl.InBounds(p) {
				break
			}
			idx := pl.idx(p)
			if f.search.ar.coveredBits(idx)&dirBit(a.dir) == 0 || before[idx]&dirBit(a.dir) != 0 {
				break
			}
			if w := f.search.wireAcross(p, a.dir); w != 0 && w != f.search.net {
				c++
			}
			if _, dup := f.owner[idx]; !dup {
				f.owner[idx] = cellOwner{a: a, i: i, j: nj, cross: c}
			}
			j = nj
		}
	}
}
