package route

import (
	"sort"

	"netart/internal/geom"
)

// This file implements the copy-on-write speculation layer of the
// deterministic parallel router (see parallel.go): a per-plane journal
// that (a) records every *read* of mutable plane state made while a net
// is routed speculatively, so a later ordered commit can decide whether
// an intervening commit invalidated the speculation, and (b) records
// the *old value* of every mutable cell the speculation writes, so the
// speculative wires and claim releases can be rolled back in O(changes)
// and the worker's plane snapshot returns to the exact committed state.
//
// Only the four mutable-per-routing fields participate (hNet, vNet,
// bend, claim); blocked and termNet never change after buildPlane, so
// reads of them can never be invalidated and are not tracked. The
// tracking granularity is the plane point, not the field: a commit that
// writes any mutable field of a point a speculation read from counts
// as a conflict. That is conservative (it can only cause spurious
// re-routes, never wrong results) and keeps the hot-path cost at one
// nil check plus one epoch compare per query.

// Mutable plane fields, as journal tags.
const (
	fieldH uint8 = iota
	fieldV
	fieldBend
	fieldClaim
)

// undoEnt is one journaled write: the field's value at idx before the
// speculation touched it.
type undoEnt struct {
	idx   int32
	field uint8
	old   int32
}

// planeSpec is the speculation journal attached to a worker's private
// plane snapshot. It is enabled once per worker (enableSpec) and then
// cycled per net with beginSpec/rollbackSpec; the epoch counter makes
// the read-mark array reusable without clearing.
type planeSpec struct {
	active bool // between beginSpec and rollbackSpec

	// Read tracking: mark[i] == gen means point i was read this epoch.
	mark  []uint32
	gen   uint32
	reads []int32

	// Write journal: dirty[i] has a bit per mutable field that was
	// already journaled this speculation (so each (point, field) is
	// journaled at most once); undo lists the old values.
	dirty []uint8
	undo  []undoEnt
}

func (s *planeSpec) note(i int32) {
	if s.mark[i] != s.gen {
		s.mark[i] = s.gen
		s.reads = append(s.reads, i)
	}
}

func (s *planeSpec) journal(i int32, field uint8, old int32) {
	bit := uint8(1) << field
	if s.dirty[i]&bit == 0 {
		s.dirty[i] |= bit
		s.undo = append(s.undo, undoEnt{idx: i, field: field, old: old})
	}
}

// enableSpec attaches a speculation journal to the plane. Planes
// without a journal (the sequential router, the committed master plane)
// pay only a nil check on the query paths.
func (pl *Plane) enableSpec() {
	n := len(pl.blocked)
	pl.sp = &planeSpec{
		mark:  make([]uint32, n),
		dirty: make([]uint8, n),
	}
}

// beginSpec starts a fresh speculation epoch: the read set empties (by
// epoch bump, not by clearing) and writes start journaling.
func (pl *Plane) beginSpec() {
	s := pl.sp
	s.gen++
	if s.gen == 0 { // epoch wrapped: the mark array must really clear
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.gen = 1
	}
	s.reads = s.reads[:0]
	s.active = true
}

// specReadBits returns the plane points read since beginSpec as a
// fresh bitmap (one bit per plane index), plus the inclusive bounding
// rectangle of the read set in grid (column, row) coordinates. The
// bitmap form makes the committer's conflict check O(|writes|) bit
// tests instead of a scan over the read set — read sets span whole
// searched regions, so scanning them on the single committer goroutine
// would serialize the pipeline, while building the bitmap here costs
// the worker one pass it runs in parallel. The rectangle enables the
// committer's cheaper pre-filter: a commit whose write box does not
// intersect the read box cannot conflict, so the per-write bit tests
// are skipped entirely — with search windows, read boxes hug the net's
// window and most commit pairs are disjoint. A fresh allocation is
// required: the committer may still be validating while this worker
// starts its next epoch. An empty read set yields an inverted box
// (Min > Max), which intersects nothing.
func (pl *Plane) specReadBits() ([]uint64, geom.Rect) {
	s := pl.sp
	bits := make([]uint64, (len(pl.blocked)+63)/64)
	box := geom.Rect{Min: geom.Pt(1<<30, 1<<30), Max: geom.Pt(-1, -1)}
	for _, i := range s.reads {
		bits[i>>6] |= 1 << (uint(i) & 63)
		box = boxAdd(box, geom.Pt(int(i)%pl.w, int(i)/pl.w))
	}
	return bits, box
}

// rollbackSpec undoes every journaled write in reverse order, returning
// the plane to the exact state beginSpec saw, and stops journaling.
func (pl *Plane) rollbackSpec() {
	s := pl.sp
	for i := len(s.undo) - 1; i >= 0; i-- {
		e := s.undo[i]
		switch e.field {
		case fieldH:
			pl.hNet[e.idx] = e.old
		case fieldV:
			pl.vNet[e.idx] = e.old
		case fieldBend:
			pl.bend[e.idx] = e.old != 0
		case fieldClaim:
			pl.claim[e.idx] = e.old
		}
		pl.refreshStops(int(e.idx))
		s.dirty[e.idx] &^= 1 << e.field
	}
	s.undo = s.undo[:0]
	s.active = false
}

// Journal-aware mutable-field setters. All routing-time writes go
// through these so a speculation can be rolled back; with no active
// journal they compile down to the plain store.

func (pl *Plane) setH(i int, v int32) {
	if pl.sp != nil && pl.sp.active {
		pl.sp.journal(int32(i), fieldH, pl.hNet[i])
	}
	pl.hNet[i] = v
	pl.refreshStops(i)
}

func (pl *Plane) setV(i int, v int32) {
	if pl.sp != nil && pl.sp.active {
		pl.sp.journal(int32(i), fieldV, pl.vNet[i])
	}
	pl.vNet[i] = v
	pl.refreshStops(i)
}

func (pl *Plane) setBend(i int) {
	if pl.sp != nil && pl.sp.active {
		old := int32(0)
		if pl.bend[i] {
			old = 1
		}
		pl.sp.journal(int32(i), fieldBend, old)
	}
	pl.bend[i] = true
	pl.stops[i] |= stopBend
}

func (pl *Plane) setClaim(i int, v int32) {
	if pl.sp != nil && pl.sp.active {
		pl.sp.journal(int32(i), fieldClaim, pl.claim[i])
	}
	if v != 0 {
		pl.claimOf[v] = append(pl.claimOf[v], int32(i))
	}
	pl.claim[i] = v
	pl.refreshStops(i)
}

// noteRead records a mutable-state read at point index i (no-op without
// an active journal).
func (pl *Plane) noteRead(i int) {
	if pl.sp != nil && pl.sp.active {
		pl.sp.note(int32(i))
	}
}

// Clone returns a deep copy of the plane's cell state. The speculation
// journal is not cloned: the copy starts untracked.
func (pl *Plane) Clone() *Plane {
	cp := &Plane{Bounds: pl.Bounds, w: pl.w, h: pl.h}
	cp.blocked = append([]bool(nil), pl.blocked...)
	cp.termNet = append([]int32(nil), pl.termNet...)
	cp.hNet = append([]int32(nil), pl.hNet...)
	cp.vNet = append([]int32(nil), pl.vNet...)
	cp.bend = append([]bool(nil), pl.bend...)
	cp.claim = append([]int32(nil), pl.claim...)
	cp.claimOf = make(map[int32][]int32, len(pl.claimOf))
	for net, idxs := range pl.claimOf {
		cp.claimOf[net] = append([]int32(nil), idxs...)
	}
	cp.stops = append([]uint8(nil), pl.stops...)
	return cp
}

// Equal reports whether two planes carry byte-identical cell state
// (bounds and all six per-point arrays). Used by the determinism tests
// and the overlay fuzz target.
func (pl *Plane) Equal(o *Plane) bool {
	if pl.Bounds != o.Bounds || pl.w != o.w || pl.h != o.h {
		return false
	}
	for i := range pl.blocked {
		if pl.blocked[i] != o.blocked[i] || pl.termNet[i] != o.termNet[i] ||
			pl.hNet[i] != o.hNet[i] || pl.vNet[i] != o.vNet[i] ||
			pl.bend[i] != o.bend[i] || pl.claim[i] != o.claim[i] {
			return false
		}
	}
	return true
}

// opRecord is the replayable mutation log of one net's routing: the
// claim points it released followed by the wire groups it laid, in
// call order. Replaying an opRecord against a plane in the same state
// the recording ran against reproduces the exact same cell writes,
// which is how a validated speculation commits to the master plane and
// how worker snapshots sync to the committed prefix.
type opRecord struct {
	net    int32
	claims []int32     // plane indices whose claim was released
	wires  [][]Segment // LayWire calls, degenerate segments pre-filtered
}

// replayOps applies a recorded mutation log. The record must have been
// produced against a plane in this plane's current state (the ordered
// commit guarantees it), so no validation is needed.
func (pl *Plane) replayOps(r *opRecord) {
	for _, i := range r.claims {
		pl.setClaim(int(i), 0)
	}
	for _, segs := range r.wires {
		pl.commitWire(r.net, segs)
	}
}

// writeSet returns the sorted, deduplicated plane indices the record
// writes — released claims plus every wire point (bend marks land on
// segment endpoints, which are wire points) — and their inclusive
// bounding rectangle in grid (column, row) coordinates, matching the
// coordinate space of specReadBits' read box. This is the conflict set
// an ordered commit checks later speculations' read sets against; the
// box is the cheap first-stage filter. A record with no writes yields
// an inverted box, which intersects nothing.
func (r *opRecord) writeSet(pl *Plane) ([]int32, geom.Rect) {
	var out []int32
	out = append(out, r.claims...)
	for _, segs := range r.wires {
		for _, s := range segs {
			for _, p := range s.Points() {
				out = append(out, int32(pl.idx(p)))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedup in place.
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	out = out[:n]
	box := geom.Rect{Min: geom.Pt(1<<30, 1<<30), Max: geom.Pt(-1, -1)}
	for _, i := range out {
		box = boxAdd(box, geom.Pt(int(i)%pl.w, int(i)/pl.w))
	}
	return out, box
}
