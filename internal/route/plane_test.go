package route

import (
	"testing"

	"netart/internal/geom"
)

func TestPlaneBounds(t *testing.T) {
	pl := NewPlane(geom.R(-2, -2, 5, 5))
	if !pl.InBounds(geom.Pt(-2, -2)) || !pl.InBounds(geom.Pt(5, 5)) {
		t.Error("corner points should be in bounds (inclusive)")
	}
	if pl.InBounds(geom.Pt(6, 0)) || pl.InBounds(geom.Pt(0, -3)) {
		t.Error("outside points reported in bounds")
	}
	if !pl.Blocked(geom.Pt(99, 99)) {
		t.Error("outside must read as blocked")
	}
}

func TestPlaneBlockRect(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	pl.BlockRect(geom.Pt(2, 2), geom.Pt(4, 5))
	// Inclusive outline and interior.
	for _, p := range []geom.Point{{X: 2, Y: 2}, {X: 4, Y: 5}, {X: 3, Y: 3}} {
		if !pl.Blocked(p) {
			t.Errorf("%v should be blocked", p)
		}
	}
	for _, p := range []geom.Point{{X: 1, Y: 2}, {X: 5, Y: 5}, {X: 2, Y: 6}} {
		if pl.Blocked(p) {
			t.Errorf("%v should be free", p)
		}
	}
	// Clipping outside the plane must not panic.
	pl.BlockRect(geom.Pt(-5, -5), geom.Pt(20, 1))
}

func TestPlaneTerminals(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	p := geom.Pt(3, 3)
	if err := pl.SetTerminal(p, 7); err != nil {
		t.Fatal(err)
	}
	if pl.Terminal(p) != 7 {
		t.Error("Terminal lookup failed")
	}
	if err := pl.SetTerminal(p, 7); err != nil {
		t.Error("re-setting same net should be fine")
	}
	if err := pl.SetTerminal(p, 8); err == nil {
		t.Error("terminal conflict accepted")
	}
	if err := pl.SetTerminal(geom.Pt(99, 99), 1); err == nil {
		t.Error("out-of-plane terminal accepted")
	}
	if pl.Terminal(geom.Pt(99, 99)) != 0 {
		t.Error("out-of-plane Terminal should be 0")
	}
}

func TestPlaneClaims(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	p := geom.Pt(4, 4)
	pl.Claim(p, 3)
	if pl.Claimpoint(p) != 3 {
		t.Error("claim not recorded")
	}
	pl.Claim(p, 5) // already claimed: no-op
	if pl.Claimpoint(p) != 3 {
		t.Error("claim overwritten")
	}
	pl.ReleaseClaims(3)
	if pl.Claimpoint(p) != 0 {
		t.Error("claim not released")
	}
	// Claims on blocked or wired points are no-ops.
	pl.BlockPoint(geom.Pt(6, 6))
	pl.Claim(geom.Pt(6, 6), 1)
	if pl.Claimpoint(geom.Pt(6, 6)) != 0 {
		t.Error("claim on blocked point accepted")
	}
	if err := pl.LayWire(2, []Segment{{geom.Pt(0, 8), geom.Pt(5, 8)}}); err != nil {
		t.Fatal(err)
	}
	pl.Claim(geom.Pt(3, 8), 1)
	if pl.Claimpoint(geom.Pt(3, 8)) != 0 {
		t.Error("claim on wire accepted")
	}
	pl.Claim(geom.Pt(1, 1), 9)
	pl.Claim(geom.Pt(2, 2), 9)
	pl.ReleaseAllClaims()
	if pl.Claimpoint(geom.Pt(1, 1)) != 0 || pl.Claimpoint(geom.Pt(2, 2)) != 0 {
		t.Error("ReleaseAllClaims incomplete")
	}
	// Out-of-bounds claim is a no-op, not a panic.
	pl.Claim(geom.Pt(-5, -5), 1)
	if pl.Claimpoint(geom.Pt(-5, -5)) != 0 {
		t.Error("out-of-bounds claim recorded")
	}
}

func TestLayWireMarksOccupancy(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	segs := []Segment{
		{geom.Pt(1, 1), geom.Pt(5, 1)},
		{geom.Pt(5, 1), geom.Pt(5, 4)},
	}
	if err := pl.LayWire(1, segs); err != nil {
		t.Fatal(err)
	}
	if pl.HNet(geom.Pt(3, 1)) != 1 {
		t.Error("horizontal occupancy missing")
	}
	if pl.VNet(geom.Pt(5, 3)) != 1 {
		t.Error("vertical occupancy missing")
	}
	if !pl.Bend(geom.Pt(5, 1)) {
		t.Error("corner not marked as bend")
	}
	if pl.Bend(geom.Pt(3, 1)) {
		t.Error("straight cell marked as bend")
	}
	// Endpoints not on terminals are bend-marked too (future nets may
	// not cross a wire end).
	if !pl.Bend(geom.Pt(1, 1)) || !pl.Bend(geom.Pt(5, 4)) {
		t.Error("free-standing endpoints not marked")
	}
}

func TestLayWireTerminalEndpointNotBendMarked(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	a, b := geom.Pt(1, 1), geom.Pt(8, 1)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	if err := pl.LayWire(1, []Segment{{a, b}}); err != nil {
		t.Fatal(err)
	}
	if pl.Bend(a) || pl.Bend(b) {
		t.Error("terminal endpoints of a straight wire must not be bends")
	}
}

func TestLayWireRejections(t *testing.T) {
	mk := func() *Plane {
		pl := NewPlane(geom.R(0, 0, 10, 10))
		pl.BlockRect(geom.Pt(4, 4), geom.Pt(6, 6))
		_ = pl.SetTerminal(geom.Pt(2, 8), 5)
		_ = pl.LayWire(2, []Segment{{geom.Pt(0, 2), geom.Pt(9, 2)}})
		return pl
	}
	cases := []struct {
		name string
		segs []Segment
	}{
		{"diagonal", []Segment{{geom.Pt(0, 0), geom.Pt(3, 3)}}},
		{"outside", []Segment{{geom.Pt(0, 0), geom.Pt(0, -5)}}},
		{"through module", []Segment{{geom.Pt(3, 5), geom.Pt(8, 5)}}},
		{"foreign terminal", []Segment{{geom.Pt(0, 8), geom.Pt(5, 8)}}},
		{"horizontal overlap", []Segment{{geom.Pt(1, 2), geom.Pt(6, 2)}}},
		{"through bend", []Segment{{geom.Pt(0, 2), geom.Pt(0, 9)},
			{geom.Pt(0, 9), geom.Pt(9, 9)}}}, // second wire later crosses own endpoint? no: first passes (0,2) endpoint bend of net 2
	}
	for _, c := range cases {
		pl := mk()
		if err := pl.LayWire(1, c.segs); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestLayWireCrossingAllowed(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	if err := pl.LayWire(1, []Segment{{geom.Pt(0, 5), geom.Pt(10, 5)}}); err != nil {
		t.Fatal(err)
	}
	// A perpendicular wire of another net may cross mid-segment.
	if err := pl.LayWire(2, []Segment{{geom.Pt(5, 0), geom.Pt(5, 10)}}); err != nil {
		t.Fatalf("perpendicular crossing rejected: %v", err)
	}
	p := geom.Pt(5, 5)
	if pl.HNet(p) != 1 || pl.VNet(p) != 2 {
		t.Error("crossing occupancy wrong")
	}
}

func TestLayWireJunctionOnOwnBend(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	if err := pl.LayWire(1, []Segment{
		{geom.Pt(0, 0), geom.Pt(5, 0)},
		{geom.Pt(5, 0), geom.Pt(5, 5)},
	}); err != nil {
		t.Fatal(err)
	}
	// A later connection of the same net may terminate on the corner.
	if err := pl.LayWire(1, []Segment{{geom.Pt(9, 0), geom.Pt(5, 0)}}); err != nil {
		t.Errorf("junction on own corner rejected: %v", err)
	}
	// But a foreign wire may not pass through it.
	if err := pl.LayWire(2, []Segment{{geom.Pt(5, 3), geom.Pt(5, 8)}}); err == nil {
		t.Error("foreign wire overlapping vertical run accepted")
	}
}

func TestZeroSizePlane(t *testing.T) {
	pl := NewPlane(geom.Rect{})
	if !pl.InBounds(geom.Pt(0, 0)) {
		t.Error("degenerate plane should hold its single point")
	}
}
