package route

import (
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
)

// scene builds a design with hand-placed modules for routing tests.
type scene struct {
	t  *testing.T
	d  *netlist.Design
	pr *place.Result
}

func newScene(t *testing.T) *scene {
	d := netlist.NewDesign("scene")
	return &scene{
		t: t,
		d: d,
		pr: &place.Result{
			Design: d,
			Mods:   map[*netlist.Module]*place.PlacedModule{},
			SysPos: map[*netlist.Terminal]geom.Point{},
		},
	}
}

// mod adds a module at an absolute position.
func (s *scene) mod(name string, x, y, w, h int, terms ...netlist.TermSpec) *netlist.Module {
	s.t.Helper()
	m, err := s.d.AddModule(name, "", w, h, terms)
	if err != nil {
		s.t.Fatal(err)
	}
	s.pr.Mods[m] = &place.PlacedModule{Mod: m, Pos: geom.Pt(x, y)}
	return m
}

func (s *scene) sys(name string, typ netlist.TermType, x, y int) *netlist.Terminal {
	s.t.Helper()
	st, err := s.d.AddSysTerm(name, typ)
	if err != nil {
		s.t.Fatal(err)
	}
	s.pr.SysPos[st] = geom.Pt(x, y)
	return st
}

func (s *scene) net(name string, pins ...[2]string) *netlist.Net {
	s.t.Helper()
	for _, p := range pins {
		var err error
		if p[0] == "root" {
			err = s.d.ConnectSys(name, p[1])
		} else {
			err = s.d.Connect(name, p[0], p[1])
		}
		if err != nil {
			s.t.Fatal(err)
		}
	}
	return s.d.Net(name)
}

// finish computes the placement bounds.
func (s *scene) finish() *place.Result {
	var b geom.Rect
	first := true
	for _, pm := range s.pr.Mods {
		if first {
			b, first = pm.Rect(), false
		} else {
			b = b.Union(pm.Rect())
		}
	}
	s.pr.ModuleBounds = b
	for _, p := range s.pr.SysPos {
		b = b.Union(geom.Rect{Min: p, Max: p.Add(geom.Pt(1, 1))})
	}
	s.pr.Bounds = b
	return s.pr
}

func term(name string, typ netlist.TermType, x, y int) netlist.TermSpec {
	return netlist.TermSpec{Name: name, Type: typ, Pos: geom.Pt(x, y)}
}

// segBends counts corners in a cleaned segment list.
func segBends(segs []Segment) int {
	if len(segs) == 0 {
		return 0
	}
	return len(cleanSegments(append([]Segment(nil), segs...))) - 1
}

func mustRoute(t *testing.T, pr *place.Result, opts Options) *Result {
	t.Helper()
	res, err := Route(pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// pairScene: two 2x2 modules facing each other with a single net
// between an out and an in terminal, at the given offsets.
func pairScene(t *testing.T, bx, by int) (*place.Result, *netlist.Net) {
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", bx, by, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	return s.finish(), n
}

func TestStraightConnection(t *testing.T) {
	pr, n := pairScene(t, 6, 0) // B.A at (6,1), aligned with A.Y at (2,1)
	res := mustRoute(t, pr, Options{})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("net failed: %v", rn.Failed)
	}
	if got := segBends(rn.Segments); got != 0 {
		t.Errorf("straight connection has %d bends: %v", got, rn.Segments)
	}
	if got := totalLen(cleanSegments(rn.Segments)); got != 4 {
		t.Errorf("length %d, want 4", got)
	}
}

func TestOneBendConnection(t *testing.T) {
	// B's input on its bottom side: one L suffices.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", 4, 4, 2, 2, term("A", netlist.In, 1, 0)) // abs (5,4), faces down
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	res := mustRoute(t, s.finish(), Options{})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("net failed: %v", rn.Failed)
	}
	if got := segBends(rn.Segments); got != 1 {
		t.Errorf("%d bends, want 1: %v", got, rn.Segments)
	}
}

func TestDetourAroundObstacle(t *testing.T) {
	// Aligned terminals with a blocking wall between them: the U-shaped
	// detour around the wall needs exactly 4 bends, which is minimal.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("X", 4, -2, 2, 6) // wall straddling the straight path
	s.mod("B", 8, 0, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	res := mustRoute(t, s.finish(), Options{})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("net failed: %v", rn.Failed)
	}
	if got := segBends(rn.Segments); got != 4 {
		t.Errorf("%d bends, want 4: %v", got, rn.Segments)
	}
}

func TestTwoBendOffsetObstacle(t *testing.T) {
	// Offset terminals whose L path is blocked: a Z with 2 bends is
	// minimal.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", 8, 6, 2, 2, term("A", netlist.In, 0, 1)) // in at (8,7)
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	res := mustRoute(t, s.finish(), Options{})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("net failed: %v", rn.Failed)
	}
	if got := segBends(rn.Segments); got != 2 {
		t.Errorf("%d bends, want 2: %v", got, rn.Segments)
	}
}

func TestCrossingAllowed(t *testing.T) {
	// A vertical wire of net v crosses the straight path of net h; h
	// must still route straight (crossings are allowed, overlap not).
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", 8, 0, 2, 2, term("A", netlist.In, 0, 1))
	s.mod("C", 4, 4, 2, 2, term("Y", netlist.Out, 1, 0)) // bottom at (5,4)
	s.mod("D", 4, -6, 2, 2, term("A", netlist.In, 1, 2)) // top at (5,-4)
	v := s.net("v", [2]string{"C", "Y"}, [2]string{"D", "A"})
	h := s.net("h", [2]string{"A", "Y"}, [2]string{"B", "A"})
	res := mustRoute(t, s.finish(), Options{})
	for _, n := range []*netlist.Net{v, h} {
		if !res.Net(n).OK() {
			t.Fatalf("net %s failed", n.Name)
		}
	}
	if got := segBends(res.Net(h).Segments); got != 0 {
		t.Errorf("h should cross v straight, has %d bends: %v", got, res.Net(h).Segments)
	}
}

func TestOverlapForbidden(t *testing.T) {
	// Two nets whose natural straight paths share row 1. The first one
	// routed takes the row; the second must detour around it without
	// ever running on top of the first.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", 6, 0, 2, 2, term("A", netlist.In, 0, 1))
	s.mod("C", -8, 0, 2, 2, term("Y", netlist.Out, 2, 1)) // out at (-6,1)
	s.mod("D", 12, 0, 2, 2, term("A", netlist.In, 0, 1))  // in at (12,1)
	inner := s.net("inner", [2]string{"A", "Y"}, [2]string{"B", "A"})
	outer := s.net("outer", [2]string{"C", "Y"}, [2]string{"D", "A"})
	res := mustRoute(t, s.finish(), Options{})
	if !res.Net(inner).OK() {
		t.Fatalf("inner net failed: %v", res.Net(inner).Failed)
	}
	if !res.Net(outer).OK() {
		t.Fatalf("outer net failed: %v", res.Net(outer).Failed)
	}
	if got := segBends(res.Net(inner).Segments); got != 0 {
		t.Errorf("inner should be straight, has %d bends", got)
	}
	// The outer net must leave row 1 to pass the inner wire and the
	// modules: at least 4 bends, and no shared horizontal run on row 1.
	outSegs := res.Net(outer).Segments
	if got := segBends(outSegs); got < 4 {
		t.Errorf("outer detour has %d bends, want >= 4: %v", got, outSegs)
	}
	innerPts := map[geom.Point]bool{}
	for _, sg := range res.Net(inner).Segments {
		for _, p := range sg.Points() {
			innerPts[p] = true
		}
	}
	for _, sg := range outSegs {
		if !sg.Horizontal() {
			continue
		}
		for _, p := range sg.Points() {
			if innerPts[p] {
				t.Errorf("outer runs over inner at %v", p)
			}
		}
	}
}

func TestMultipointNet(t *testing.T) {
	// One output fans out to three inputs; the net must form a
	// connected tree touching all four terminals.
	s := newScene(t)
	s.mod("SRC", 0, 4, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("D1", 8, 8, 2, 2, term("A", netlist.In, 0, 1))
	s.mod("D2", 8, 4, 2, 2, term("A", netlist.In, 0, 1))
	s.mod("D3", 8, 0, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("fan", [2]string{"SRC", "Y"}, [2]string{"D1", "A"},
		[2]string{"D2", "A"}, [2]string{"D3", "A"})
	res := mustRoute(t, s.finish(), Options{})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("fanout failed: %v", rn.Failed)
	}
	assertTreeConnectsTerminals(t, res, rn)
}

// assertTreeConnectsTerminals checks that the union of the net's
// segment points forms one connected component containing every
// terminal point.
func assertTreeConnectsTerminals(t *testing.T, res *Result, rn *RoutedNet) {
	t.Helper()
	adj := map[geom.Point][]geom.Point{}
	nodes := map[geom.Point]bool{}
	for _, sg := range rn.Segments {
		pts := sg.Points()
		for i := range pts {
			nodes[pts[i]] = true
			if i > 0 {
				adj[pts[i-1]] = append(adj[pts[i-1]], pts[i])
				adj[pts[i]] = append(adj[pts[i]], pts[i-1])
			}
		}
	}
	if len(nodes) == 0 {
		t.Fatal("no wire geometry")
	}
	var start geom.Point
	for p := range nodes {
		start = p
		break
	}
	seen := map[geom.Point]bool{start: true}
	stack := []geom.Point{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range adj[p] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	for p := range nodes {
		if !seen[p] {
			t.Fatalf("wire geometry disconnected at %v", p)
		}
	}
	for _, tm := range rn.Net.Terms {
		p, err := res.Placement.TermPos(tm)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[p] {
			t.Errorf("terminal %s at %v not on the wire", tm.Label(), p)
		}
	}
}

func TestSystemTerminalRouting(t *testing.T) {
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("A", netlist.In, 0, 1))
	s.sys("IN", netlist.In, -3, 1)
	n := s.net("w", [2]string{"root", "IN"}, [2]string{"A", "A"})
	res := mustRoute(t, s.finish(), Options{})
	if !res.Net(n).OK() {
		t.Fatalf("system net failed: %v", res.Net(n).Failed)
	}
}

func TestBlockedByBendFailsWithoutRetryHelp(t *testing.T) {
	// A prerouted net with corners directly in front of both terminals
	// of the second net: the second net must fail (its only escape
	// cells hold bends).
	s := newScene(t)
	s.mod("M0", 0, 0, 3, 4,
		term("A", netlist.Out, 3, 1),
		term("C", netlist.Out, 3, 3))
	s.mod("M1", 5, 0, 3, 4,
		term("B", netlist.In, 0, 3),
		term("D", netlist.In, 0, 1))
	n1 := s.net("n1", [2]string{"M0", "A"}, [2]string{"M1", "B"})
	n2 := s.net("n2", [2]string{"M0", "C"}, [2]string{"M1", "D"})
	pre := []Segment{
		{geom.Pt(3, 1), geom.Pt(4, 1)},
		{geom.Pt(4, 1), geom.Pt(4, 3)},
		{geom.Pt(4, 3), geom.Pt(5, 3)},
	}
	res := mustRoute(t, s.finish(), Options{
		Prerouted: map[*netlist.Net][]Segment{n1: pre},
	})
	if !res.Net(n1).OK() {
		t.Fatalf("prerouted net reported failed")
	}
	rn2 := res.Net(n2)
	if rn2.OK() {
		t.Fatalf("n2 should be blocked by the bends at (4,1)/(4,3), got %v", rn2.Segments)
	}
}

func TestClaimpointsRescueCrossPattern(t *testing.T) {
	// Cross pattern in a two-track channel: without claimpoints (and
	// without the retry pass) the first net's corners block the second;
	// with the full §5.7 extension both route.
	build := func() (*place.Result, *netlist.Net, *netlist.Net) {
		s := newScene(t)
		s.mod("M0", 0, 0, 3, 4,
			term("A", netlist.Out, 3, 1),
			term("C", netlist.Out, 3, 3))
		s.mod("M1", 6, 0, 3, 4,
			term("B", netlist.In, 0, 3),
			term("D", netlist.In, 0, 1))
		n1 := s.net("n1", [2]string{"M0", "A"}, [2]string{"M1", "B"})
		n2 := s.net("n2", [2]string{"M0", "C"}, [2]string{"M1", "D"})
		return s.finish(), n1, n2
	}

	pr, n1, n2 := build()
	bare := mustRoute(t, pr, Options{Claimpoints: false, NoRetry: true})
	bareFailed := bare.UnroutedCount()

	pr2, m1, m2 := build()
	full := mustRoute(t, pr2, Options{Claimpoints: true})
	if !full.Net(m1).OK() || !full.Net(m2).OK() {
		t.Errorf("with claimpoints both nets should route: n1=%v n2=%v",
			full.Net(m1).Failed, full.Net(m2).Failed)
	}
	if full.UnroutedCount() > bareFailed {
		t.Errorf("claimpoints made things worse: %d vs %d failures",
			full.UnroutedCount(), bareFailed)
	}
	_ = n1
	_ = n2
}

func TestRouteDeterministic(t *testing.T) {
	run := func() []Segment {
		pr, n := pairScene(t, 8, 6)
		res := mustRoute(t, pr, Options{})
		return cleanSegments(res.Net(n).Segments)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic segment count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segment %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUnroutableReported(t *testing.T) {
	// A terminal completely walled in must be reported, not looped on.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	// Wall around B leaving no gap: B sits in a pocket of blockers.
	s.mod("WU", 6, 4, 6, 2)
	s.mod("WD", 6, -4, 6, 2)
	s.mod("WR", 12, -4, 2, 10)
	s.mod("WL", 6, -2, 2, 6) // left wall closing the pocket
	s.mod("B", 9, 0, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	res := mustRoute(t, s.finish(), Options{})
	rn := res.Net(n)
	if rn.OK() {
		t.Fatalf("walled net reported success: %v", rn.Segments)
	}
	if res.UnroutedCount() != 1 {
		t.Errorf("UnroutedCount = %d, want 1", res.UnroutedCount())
	}
}

func TestFixedBorder(t *testing.T) {
	// With all four borders fixed there is no margin; a connection that
	// needs the margin must fail, while an inside connection works.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", 6, 0, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	pr := s.finish()
	res := mustRoute(t, pr, Options{
		FixedBorder: [4]bool{true, true, true, true},
	})
	if !res.Net(n).OK() {
		t.Fatalf("inside connection failed with fixed borders: %v", res.Net(n).Failed)
	}
	// The wire stays within the bounding box.
	for _, sg := range res.Net(n).Segments {
		for _, p := range sg.Points() {
			if p.X < pr.Bounds.Min.X || p.X > pr.Bounds.Max.X ||
				p.Y < pr.Bounds.Min.Y || p.Y > pr.Bounds.Max.Y {
				t.Errorf("wire point %v outside fixed borders %v", p, pr.Bounds)
			}
		}
	}
}

func TestPreroutedPreserved(t *testing.T) {
	pr, n := pairScene(t, 6, 0)
	pre := []Segment{{geom.Pt(2, 1), geom.Pt(6, 1)}}
	res := mustRoute(t, pr, Options{
		Prerouted: map[*netlist.Net][]Segment{n: pre},
	})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("prerouted net failed")
	}
	if len(cleanSegments(rn.Segments)) != 1 {
		t.Errorf("prerouted net re-routed: %v", rn.Segments)
	}
}

func TestPreroutedUnknownNetRejected(t *testing.T) {
	pr, _ := pairScene(t, 6, 0)
	foreign := &netlist.Net{Name: "ghost"}
	_, err := Route(pr, Options{
		Prerouted: map[*netlist.Net][]Segment{foreign: {{geom.Pt(0, 0), geom.Pt(1, 0)}}},
	})
	if err == nil {
		t.Error("foreign prerouted net accepted")
	}
}

func TestSwapObjective(t *testing.T) {
	// Both objectives must produce a legal minimal-bend route; the
	// swap only reorders tie-breaking.
	pr, n := pairScene(t, 8, 6)
	res := mustRoute(t, pr, Options{SwapObjective: true})
	if !res.Net(n).OK() {
		t.Fatalf("swap objective failed the net")
	}
}
