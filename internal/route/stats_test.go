package route

import (
	"testing"

	"netart/internal/place"
	"netart/internal/workload"
)

func TestSearchStatsPopulated(t *testing.T) {
	d := workload.Datapath16()
	pr, err := place.Place(d, place.Options{PartSize: 7, BoxSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRoute(t, pr, Options{Claimpoints: true})
	st := res.Stats
	if st.Searches == 0 || st.Waves == 0 || st.Actives == 0 || st.Cells == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	// Sanity relations: at least one wave and one active per search;
	// cells dominate actives.
	if st.Waves < st.Searches || st.Actives < st.Searches {
		t.Errorf("implausible stats: %+v", st)
	}
	if st.Cells < st.Actives {
		t.Errorf("fewer cells than actives: %+v", st)
	}
}

func TestSearchStatsGrowWithCongestion(t *testing.T) {
	// §5.8: "the algorithm becomes slow [when] the number of bends is
	// large". A bad placement (p=1 clustering) needs strictly more
	// expansion work per search than the string placement.
	run := func(po place.Options) (wavesPerSearch float64) {
		d := workload.Datapath16()
		pr, err := place.Place(d, po)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRoute(t, pr, Options{Claimpoints: true})
		return float64(res.Stats.Waves) / float64(res.Stats.Searches)
	}
	clustered := run(place.Options{PartSize: 1, BoxSize: 1})
	strings := run(place.Options{PartSize: 7, BoxSize: 5})
	if clustered <= strings {
		t.Errorf("clustered placement needed %.2f waves/search, strings %.2f; expected deeper searches for the bad placement",
			clustered, strings)
	}
}

func TestBaselineAlgorithmsSkipLineStats(t *testing.T) {
	d := workload.Fig61()
	pr, err := place.Place(d, place.Options{PartSize: 6, BoxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRoute(t, pr, Options{Algorithm: AlgoLee, Claimpoints: true})
	if res.Stats.Actives != 0 {
		t.Errorf("Lee run recorded line-expansion actives: %+v", res.Stats)
	}
}
