package route

import (
	"math/rand"
	"testing"

	"netart/internal/geom"
)

// randomPlane builds a plane with random rectangular obstacles and
// random pre-laid wires, plus two reachable terminal points on
// obstacle-free cells. Returns nil when the dice produce a degenerate
// configuration.
func randomPlane(rng *rand.Rand) (*Plane, geom.Point, geom.Point) {
	pl := NewPlane(geom.R(0, 0, 24, 24))
	for i := 0; i < 5; i++ {
		x, y := rng.Intn(20), rng.Intn(20)
		w, h := 1+rng.Intn(4), 1+rng.Intn(4)
		pl.BlockRect(geom.Pt(x, y), geom.Pt(x+w, y+h))
	}
	// A few foreign wires with corners.
	for i := 0; i < 3; i++ {
		x0, y0 := rng.Intn(22), rng.Intn(22)
		x1, y1 := rng.Intn(22), rng.Intn(22)
		segs := []Segment{
			{geom.Pt(x0, y0), geom.Pt(x1, y0)},
			{geom.Pt(x1, y0), geom.Pt(x1, y1)},
		}
		_ = pl.LayWire(int32(10+i), segs) // best effort; conflicts skipped
	}
	free := func() (geom.Point, bool) {
		for tries := 0; tries < 60; tries++ {
			p := geom.Pt(rng.Intn(25), rng.Intn(25))
			i := pl.idx(p)
			if !pl.blocked[i] && pl.hNet[i] == 0 && pl.vNet[i] == 0 && pl.termNet[i] == 0 {
				return p, true
			}
		}
		return geom.Point{}, false
	}
	a, ok1 := free()
	if !ok1 {
		return nil, geom.Point{}, geom.Point{}
	}
	b, ok2 := free()
	if !ok2 || a == b {
		return nil, geom.Point{}, geom.Point{}
	}
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)
	return pl, a, b
}

// TestLineExpansionMatchesLee checks the guaranteed-solution property
// of §5.5.4 against an independent implementation: on random planes the
// line-expansion engine finds a connection exactly when the Lee
// reference does. Bend counts are compared too: line expansion can
// exceed the true minimum occasionally because same-wave zones cut each
// other off (the paper concedes this in §5.8, "finds in most cases the
// paths with a minimum number of bends"), so the test asserts the Lee
// minimum is never beaten, is matched most of the time, and the
// aggregate inflation stays small.
func TestLineExpansionMatchesLee(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tested, matched := 0, 0
	totalLE, totalLee := 0, 0
	for iter := 0; iter < 200; iter++ {
		pl, a, b := randomPlane(rng)
		if pl == nil {
			continue
		}
		allDirs := []geom.Dir{geom.Left, geom.Right, geom.Up, geom.Down}
		target := func(q geom.Point) bool { return q == b }

		ls := newLineSearch(pl, 1, target, false, pl.Bounds, nil)
		leSegs, leOK := ls.run(terminalActives(a, allDirs))

		leeSegs, leeOK := leeSearch(pl, 1, a, allDirs, target, BendsFirst, pl.Bounds, pl.Bounds, nil)

		if leOK != leeOK {
			t.Fatalf("iter %d: lineexp ok=%v, lee ok=%v (a=%v b=%v)", iter, leOK, leeOK, a, b)
		}
		if !leOK {
			continue
		}
		tested++
		lb, leeB := segBends(leSegs), segBends(leeSegs)
		if lb != leeB {
			t.Fatalf("iter %d: lineexp %d bends, Lee optimum %d (a=%v b=%v)\nlineexp=%v\nlee=%v",
				iter, lb, leeB, a, b, leSegs, leeSegs)
		}
		matched++
		totalLE += lb
		totalLee += leeB
		checkEndpoints(t, leSegs, a, b)
		checkLegalPath(t, pl, 1, leSegs)
		checkLegalPath(t, pl, 1, leeSegs)
	}
	if tested < 100 {
		t.Fatalf("only %d usable random planes", tested)
	}
	if matched != tested || totalLE != totalLee {
		t.Errorf("bend totals diverged: %d vs %d over %d runs", totalLE, totalLee, tested)
	}
}

func checkEndpoints(t *testing.T, segs []Segment, a, b geom.Point) {
	t.Helper()
	if len(segs) == 0 {
		t.Fatal("empty path")
	}
	first, last := segs[0].A, segs[len(segs)-1].B
	if !(first == a && last == b || first == b && last == a) {
		t.Fatalf("path endpoints %v,%v do not match terminals %v,%v", first, last, a, b)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].A != segs[i-1].B {
			t.Fatalf("path not contiguous at segment %d", i)
		}
	}
}

// checkLegalPath re-validates a found path against the plane rules.
func checkLegalPath(t *testing.T, pl *Plane, net int32, segs []Segment) {
	t.Helper()
	for _, s := range segs {
		if s.A.X != s.B.X && s.A.Y != s.B.Y {
			t.Fatalf("diagonal segment %v", s)
		}
		for _, p := range s.Points() {
			i := pl.idx(p)
			if pl.blocked[i] && pl.termNet[i] != net {
				t.Fatalf("path crosses obstacle at %v", p)
			}
			if s.Horizontal() && pl.hNet[i] != 0 && pl.hNet[i] != net {
				t.Fatalf("path overlaps horizontal wire at %v", p)
			}
			if !s.Horizontal() && pl.vNet[i] != 0 && pl.vNet[i] != net {
				t.Fatalf("path overlaps vertical wire at %v", p)
			}
		}
	}
}

func TestTerminalActives(t *testing.T) {
	p := geom.Pt(3, 7)
	as := terminalActives(p, []geom.Dir{geom.Up, geom.Left})
	if len(as) != 2 {
		t.Fatalf("%d actives", len(as))
	}
	up := as[0]
	if up.index != 7 || up.iv != geom.Iv(3, 3) || up.dir != geom.Up {
		t.Errorf("up active wrong: %+v", up)
	}
	left := as[1]
	if left.index != 3 || left.iv != geom.Iv(7, 7) || left.dir != geom.Left {
		t.Errorf("left active wrong: %+v", left)
	}
	if up.pt(3, 8) != geom.Pt(3, 8) {
		t.Errorf("up.pt wrong")
	}
	if left.pt(7, 2) != geom.Pt(2, 7) {
		t.Errorf("left.pt wrong")
	}
	if up.step() != 1 || left.step() != -1 {
		t.Errorf("steps wrong")
	}
}

func TestCleanSegments(t *testing.T) {
	segs := []Segment{
		{geom.Pt(0, 0), geom.Pt(3, 0)},
		{geom.Pt(3, 0), geom.Pt(3, 0)}, // degenerate
		{geom.Pt(3, 0), geom.Pt(5, 0)}, // collinear with first
		{geom.Pt(5, 0), geom.Pt(5, 4)},
	}
	got := cleanSegments(segs)
	want := []Segment{
		{geom.Pt(0, 0), geom.Pt(5, 0)},
		{geom.Pt(5, 0), geom.Pt(5, 4)},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("segment %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSegmentHelpers(t *testing.T) {
	s := Segment{geom.Pt(5, 2), geom.Pt(1, 2)}
	if !s.Horizontal() || s.Len() != 4 {
		t.Error("Horizontal/Len wrong")
	}
	c := s.Canon()
	if c.A != geom.Pt(1, 2) || c.B != geom.Pt(5, 2) {
		t.Errorf("Canon = %v", c)
	}
	pts := s.Points()
	if len(pts) != 5 || pts[0] != geom.Pt(5, 2) || pts[4] != geom.Pt(1, 2) {
		t.Errorf("Points = %v", pts)
	}
	v := Segment{geom.Pt(0, 0), geom.Pt(0, 3)}
	if v.Horizontal() {
		t.Error("vertical segment reported horizontal")
	}
}

func TestCrossingCountsInObjective(t *testing.T) {
	// Two same-bend candidate channels; one requires crossing a foreign
	// wire. The router must take the crossing-free one under the
	// default objective.
	pl := NewPlane(geom.R(0, 0, 20, 20))
	// Foreign vertical wire cutting the lower channel.
	if err := pl.LayWire(9, []Segment{{geom.Pt(10, 0), geom.Pt(10, 8)}}); err != nil {
		t.Fatal(err)
	}
	// Wall forcing the path to pick row 4 (crossing) or row 12 (free).
	pl.BlockRect(geom.Pt(4, 5), geom.Pt(16, 10))
	a, b := geom.Pt(2, 4), geom.Pt(18, 4)
	_ = pl.SetTerminal(a, 1)
	_ = pl.SetTerminal(b, 1)

	ls := newLineSearch(pl, 1, func(q geom.Point) bool { return q == b }, false, pl.Bounds, nil)
	segs, ok := ls.run(terminalActives(a, []geom.Dir{geom.Right}))
	if !ok {
		t.Fatal("no path found")
	}
	// Straight along row 4 crosses the foreign wire once with 0 bends;
	// that is minimal-bend and must win despite the crossing (bends
	// dominate crossings).
	if got := segBends(segs); got != 0 {
		t.Errorf("%d bends, want 0: %v", got, segs)
	}
	crossings := 0
	for _, s := range segs {
		for _, p := range s.Points() {
			if s.Horizontal() && pl.VNet(p) == 9 {
				crossings++
			}
		}
	}
	if crossings != 1 {
		t.Errorf("%d crossings, want 1", crossings)
	}
}

func TestFewerCrossingsPreferredAtEqualBends(t *testing.T) {
	// Joining an own-net wire: every column of the same wave reaches the
	// target wire with one bend, but columns right of the foreign
	// vertical wire pay a crossing. The engine must join at the
	// crossing-free column.
	pl := NewPlane(geom.R(0, 0, 20, 20))
	// The net's own existing wire along row 10.
	if err := pl.LayWire(1, []Segment{{geom.Pt(0, 10), geom.Pt(20, 10)}}); err != nil {
		t.Fatal(err)
	}
	// Foreign vertical wire at x=6 cutting rows 0..9.
	if err := pl.LayWire(9, []Segment{{geom.Pt(6, 0), geom.Pt(6, 9)}}); err != nil {
		t.Fatal(err)
	}
	a := geom.Pt(4, 2)
	_ = pl.SetTerminal(a, 1)
	target := func(q geom.Point) bool { return pl.HNet(q) == 1 || pl.VNet(q) == 1 }
	ls := newLineSearch(pl, 1, target, false, pl.Bounds, nil)
	segs, ok := ls.run(terminalActives(a, []geom.Dir{geom.Right}))
	if !ok {
		t.Fatal("no path")
	}
	if got := segBends(segs); got != 1 {
		t.Fatalf("%d bends, want 1: %v", got, segs)
	}
	// The vertical run must be at x=5: right of the source (one step),
	// left of the foreign wire (no crossing). Joining further right
	// would cost a crossing; the engine prefers zero.
	for _, s := range segs {
		if !s.Horizontal() && s.A.X != 5 {
			t.Errorf("joined at column %d, want 5 (crossing-free): %v", s.A.X, segs)
		}
	}
	// And under -s (length first) the shortest join is the same column
	// here, so it must also succeed.
	ls2 := newLineSearch(pl, 1, target, true, pl.Bounds, nil)
	if _, ok := ls2.run(terminalActives(a, []geom.Dir{geom.Right})); !ok {
		t.Error("swap objective failed")
	}
}
