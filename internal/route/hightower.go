package route

import (
	"netart/internal/geom"
)

// This file implements the Hightower line router of §5.2.3 as a
// baseline: escape lines are run from both terminals; for each line the
// algorithm finds perpendicular escape lines, repeating until a line
// from the A set intersects one from the B set. It is fast for simple
// mazes but — exactly as the paper notes — "does not guarantee a
// connection whenever it exists" and degrades on complicated mazes.
// The escape-point selection here is the common textbook variant: the
// endpoints of each blocked line and the point closest to the target.

// htLine is one escape line with its pivot (the point it was escaped
// through) and parent for path reconstruction.
type htLine struct {
	seg    Segment // maximal free segment, canonical order
	pivot  geom.Point
	parent *htLine
}

// hightowerSearch attempts a point-to-point connection, with escape
// lines confined to the inclusive window win. It returns ok false both
// when no path exists and when the heuristic gives up (the caller's
// widen-and-retry ladder then enlarges the window).
func hightowerSearch(pl *Plane, net int32, from, to geom.Point, win geom.Rect) ([]Segment, bool) {
	passable := func(p geom.Point, horizontal bool) bool {
		if p == to || p == from {
			return true
		}
		if !winContains(win, p) || pl.Blocked(p) || pl.Bend(p) {
			return false
		}
		if cl := pl.Claimpoint(p); cl != 0 && cl != net {
			return false
		}
		var along int32
		if horizontal {
			along = pl.HNet(p)
		} else {
			along = pl.VNet(p)
		}
		return along == 0 || along == net
	}
	turnable := func(p geom.Point) bool {
		// A pivot must not sit on a foreign wire (no turning on
		// crossings).
		return (pl.HNet(p) == 0 || pl.HNet(p) == net) &&
			(pl.VNet(p) == 0 || pl.VNet(p) == net)
	}
	maximal := func(p geom.Point, horizontal bool) Segment {
		d := geom.Pt(1, 0)
		if !horizontal {
			d = geom.Pt(0, 1)
		}
		lo := p
		for passable(lo.Sub(d), horizontal) {
			lo = lo.Sub(d)
		}
		hi := p
		for passable(hi.Add(d), horizontal) {
			hi = hi.Add(d)
		}
		return Segment{lo, hi}
	}

	mkLines := func(p geom.Point, parent *htLine) []*htLine {
		var out []*htLine
		for _, horizontal := range []bool{true, false} {
			seg := maximal(p, horizontal)
			if seg.A == seg.B && parent != nil {
				continue
			}
			out = append(out, &htLine{seg: seg.Canon(), pivot: p, parent: parent})
		}
		return out
	}

	aLines := mkLines(from, nil)
	bLines := mkLines(to, nil)
	seen := map[geom.Point]bool{from: true, to: true}

	intersect := func(a, b *htLine) (geom.Point, bool) {
		ha, hb := a.seg.Horizontal(), b.seg.Horizontal()
		if ha == hb {
			// Parallel collinear overlap: pick a shared point.
			if ha && a.seg.A.Y == b.seg.A.Y {
				lo := geom.Max(a.seg.A.X, b.seg.A.X)
				hi := geom.Min(a.seg.B.X, b.seg.B.X)
				if lo <= hi {
					return geom.Pt(lo, a.seg.A.Y), true
				}
			}
			if !ha && a.seg.A.X == b.seg.A.X {
				lo := geom.Max(a.seg.A.Y, b.seg.A.Y)
				hi := geom.Min(a.seg.B.Y, b.seg.B.Y)
				if lo <= hi {
					return geom.Pt(a.seg.A.X, lo), true
				}
			}
			return geom.Point{}, false
		}
		h, v := a, b
		if !ha {
			h, v = b, a
		}
		x, y := v.seg.A.X, h.seg.A.Y
		if x >= h.seg.A.X && x <= h.seg.B.X && y >= v.seg.A.Y && y <= v.seg.B.Y {
			return geom.Pt(x, y), true
		}
		return geom.Point{}, false
	}

	buildPath := func(l *htLine, p geom.Point) []Segment {
		var segs []Segment
		for l != nil {
			segs = append(segs, Segment{p, l.pivot})
			p = l.pivot
			l = l.parent
		}
		return segs
	}

	const maxIter = 400
	for iter := 0; iter < maxIter; iter++ {
		// Check for intersections.
		for _, la := range aLines {
			for _, lb := range bLines {
				p, ok := intersect(la, lb)
				if !ok || !turnable(p) {
					continue
				}
				segsA := buildPath(la, p)
				segsB := buildPath(lb, p)
				// Reverse A so the full path runs from 'from' to 'to'.
				var path []Segment
				for i := len(segsA) - 1; i >= 0; i-- {
					path = append(path, Segment{segsA[i].B, segsA[i].A})
				}
				path = append(path, reverseSegs(segsB)...)
				return cleanSegments(path), true
			}
		}
		// Expand the smaller set: pick escape points on its lines.
		expandA := len(aLines) <= len(bLines)
		lines := aLines
		goal := to
		if !expandA {
			lines = bLines
			goal = from
		}
		var added []*htLine
		for _, l := range lines {
			for _, p := range escapePoints(l, goal) {
				if seen[p] || !turnable(p) {
					continue
				}
				seen[p] = true
				added = append(added, mkLines(p, l)...)
			}
			if len(added) > 0 {
				break // one escape per iteration, like the original
			}
		}
		if len(added) == 0 {
			return nil, false // stuck: the heuristic gives up
		}
		if expandA {
			aLines = append(aLines, added...)
		} else {
			bLines = append(bLines, added...)
		}
	}
	return nil, false
}

func reverseSegs(segs []Segment) []Segment {
	// segsB runs joint->pivot...->terminal, which is already the tail
	// direction we want (joint to terminal b).
	return segs
}

// escapePoints proposes pivots on a line: the point nearest the goal
// and the two endpoints (classic escape-point heuristics).
func escapePoints(l *htLine, goal geom.Point) []geom.Point {
	var out []geom.Point
	c := l.seg.Canon()
	if c.Horizontal() {
		x := geom.Min(geom.Max(goal.X, c.A.X), c.B.X)
		out = append(out, geom.Pt(x, c.A.Y))
	} else {
		y := geom.Min(geom.Max(goal.Y, c.A.Y), c.B.Y)
		out = append(out, geom.Pt(c.A.X, y))
	}
	out = append(out, c.A, c.B)
	return out
}
