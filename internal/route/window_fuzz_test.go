package route

import (
	"context"
	"fmt"
	"testing"

	"netart/internal/geom"
)

// FuzzWindowedJournal is the property test of the windowed search
// engine running over the speculation journal with a reused arena —
// the exact configuration the parallel scheduler puts the hot path in.
// For an arbitrary obstacle field and terminal pairs it requires:
//
//  1. flat-reference parity: the windowed ladder on a journaled plane
//     finds exactly the segments (and search statistics) it finds on a
//     flat, journal-free clone, across several nets laid in sequence
//     through one shared arena;
//  2. read accounting: every cell on a found path was swept by the
//     engine, so it must appear in specReadBits' bitmap and fall
//     inside the read bounding box (the validation pre-filter's
//     window-scoped snapshot of the read set);
//  3. exact rollback after reuse: rollbackSpec restores the
//     pre-speculation plane, and a second journal epoch over the same
//     arena (generations bumped, buffers reused) reproduces the first
//     epoch byte for byte before rolling back just as cleanly.

// fuzzSearch runs the windowed ladder for a single point-to-point net,
// mirroring router.search without the netlist scaffolding.
func fuzzSearch(rt *router, id int32, from, to geom.Point) ([]Segment, bool) {
	target := func(p geom.Point) bool { return p == to }
	dirs := []geom.Dir{geom.Right, geom.Up, geom.Left, geom.Down}
	bbox := boxAdd(ptBox(from), to)
	wins := rt.windows(bbox)
	for wi, win := range wins {
		if wi > 0 {
			rt.stats.Widened++
		}
		segs, ok, exact := rt.searchIn(win, bbox, id, from, dirs, target, []geom.Point{to}, nil)
		if exact || wi == len(wins)-1 {
			return segs, ok
		}
	}
	return nil, false
}

// fuzzEpoch routes every terminal pair in order on pl, laying each
// found path, and returns one outcome line per net (segments or
// LayWire error) for cross-run comparison.
func fuzzEpoch(rt *router, pairs [][2]geom.Point) []string {
	var out []string
	for i, pr := range pairs {
		id := int32(i) + 1
		segs, ok := fuzzSearch(rt, id, pr[0], pr[1])
		if !ok {
			out = append(out, "unrouted")
			continue
		}
		err := rt.plane.LayWire(id, segs)
		out = append(out, fmt.Sprintf("%v lay=%v", segs, err))
	}
	return out
}

func FuzzWindowedJournal(f *testing.F) {
	f.Add(uint8(48), uint8(40), []byte{2, 2, 40, 30, 10, 28, 35, 5, 20, 20, 21, 20, 22, 20, 23, 20})
	f.Add(uint8(70), uint8(16), []byte{0, 0, 60, 10, 5, 5, 5, 6, 6, 5, 7, 7})
	f.Add(uint8(16), uint8(16), []byte{1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, w, h uint8, data []byte) {
		width := int(w%64) + 16
		height := int(h%64) + 16
		bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(width-1, height-1)}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		pt := func() geom.Point { a, b := next(), next(); return geom.Pt(int(a)%width, int(b)%height) }

		// Two point-to-point nets, then the remaining bytes scatter
		// obstacles (skipping the terminals so the nets stay plausible).
		pairs := [][2]geom.Point{{pt(), pt()}, {pt(), pt()}}
		isTerm := func(p geom.Point) bool {
			for _, pr := range pairs {
				if p == pr[0] || p == pr[1] {
					return true
				}
			}
			return false
		}
		base := NewPlane(bounds)
		for n := 0; n < 40 && len(data) >= 2; n++ {
			if p := pt(); !isTerm(p) {
				base.BlockPoint(p)
			}
		}

		newRT := func(pl *Plane) *router {
			return &router{plane: pl, cancel: newCancelCheck(context.Background()), stats: &SearchStats{}}
		}

		// Flat reference: no journal.
		ref := newRT(base.Clone())
		refOut := fuzzEpoch(ref, pairs)

		// Journaled run, epoch one.
		work := base.Clone()
		work.enableSpec()
		work.beginSpec()
		wrt := newRT(work)
		workOut := fuzzEpoch(wrt, pairs)

		// (1) Flat-reference parity: outcomes, plane state, statistics.
		if fmt.Sprint(refOut) != fmt.Sprint(workOut) {
			t.Fatalf("journaled outcomes diverge:\n  flat %v\n  spec %v", refOut, workOut)
		}
		if !work.Equal(ref.plane) {
			t.Fatal("journaled plane diverges from flat reference")
		}
		if *ref.stats != *wrt.stats {
			t.Fatalf("search stats diverge:\n  flat %+v\n  spec %+v", *ref.stats, *wrt.stats)
		}

		// (2) Every swept path cell is in the read bitmap and box.
		bits, rbox := work.specReadBits()
		for id := int32(1); id <= int32(len(pairs)); id++ {
			for i, v := range work.hNet {
				if v != id && work.vNet[i] != id {
					continue
				}
				p := geom.Pt(work.Bounds.Min.X+i%work.w, work.Bounds.Min.Y+i/work.w)
				if isTerm(p) && p == pairs[id-1][0] {
					// The start cell is entered before the sweep begins and
					// may legitimately go unread.
					continue
				}
				if bits[i>>6]&(1<<(uint(i)&63)) == 0 {
					t.Fatalf("net %d wire cell %v missing from specReadBits", id, p)
				}
				if g := geom.Pt(i%work.w, i/work.w); !winContains(rbox, g) {
					t.Fatalf("net %d wire cell %v outside read box %v", id, p, rbox)
				}
			}
		}

		// (3) Rollback restores the base, and a second epoch over the
		// reused journal and arena reproduces the first.
		work.rollbackSpec()
		if !work.Equal(base) {
			t.Fatal("rollback did not restore the pre-speculation state")
		}
		work.beginSpec()
		againOut := fuzzEpoch(wrt, pairs)
		if fmt.Sprint(againOut) != fmt.Sprint(workOut) {
			t.Fatalf("second epoch diverges:\n  first  %v\n  second %v", workOut, againOut)
		}
		if !work.Equal(ref.plane) {
			t.Fatal("second epoch plane diverges from flat reference")
		}
		work.rollbackSpec()
		if !work.Equal(base) {
			t.Fatal("second rollback did not restore the base state")
		}
	})
}
