package route

import (
	"context"
	"errors"
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
)

// buildRouter replicates RouteCtx's construction up through the base
// routing pass so tests can poke at the rip-up internals directly.
func buildRouter(t *testing.T, ctx context.Context, pr *place.Result, opts Options) *router {
	t.Helper()
	rt := &router{
		pl:     pr,
		opts:   opts,
		netID:  map[*netlist.Net]int32{},
		cancel: newCancelCheck(ctx),
	}
	if err := rt.buildPlane(); err != nil {
		t.Fatal(err)
	}
	rt.result = &Result{
		Placement: pr,
		Plane:     rt.plane,
		NetID:     rt.netID,
		byNet:     map[*netlist.Net]*RoutedNet{},
	}
	rt.stats = &rt.result.Stats
	if err := rt.addPrerouted(); err != nil {
		t.Fatal(err)
	}
	if opts.Claimpoints {
		rt.placeClaims()
	}
	rt.routeAll()
	return rt
}

func snapshotSegments(res *Result) map[*netlist.Net][]Segment {
	out := map[*netlist.Net][]Segment{}
	for _, rn := range res.Nets {
		out[rn.Net] = append([]Segment(nil), rn.Segments...)
	}
	return out
}

func sameSegments(t *testing.T, res *Result, want map[*netlist.Net][]Segment) {
	t.Helper()
	for _, rn := range res.Nets {
		saved := want[rn.Net]
		if len(saved) != len(rn.Segments) {
			t.Fatalf("net %s: segment count changed %d → %d", rn.Net.Name, len(saved), len(rn.Segments))
		}
		for i := range saved {
			if saved[i] != rn.Segments[i] {
				t.Fatalf("net %s: segment %d changed %v → %v", rn.Net.Name, i, saved[i], rn.Segments[i])
			}
		}
	}
}

// TestRipUpZeroCandidates: a failed net with no other routed net in its
// neighbourhood has nothing to displace — ripCandidates must return
// nil and ripUpOne must leave the result byte-for-byte unchanged.
func TestRipUpZeroCandidates(t *testing.T) {
	pr, n := pairScene(t, 6, 0)
	rt := buildRouter(t, context.Background(), pr, Options{Claimpoints: false, NoRetry: true})
	rn := rt.result.Net(n)
	if !rn.OK() {
		t.Fatal("pair scene should route cleanly")
	}
	// Simulate a failure on the only net in the design: every candidate
	// filter (self, unrouted, empty) now applies to the whole set.
	rn.Failed = []*netlist.Terminal{n.Terms[0]}
	if got := rt.ripCandidates(rn, 4); len(got) != 0 {
		t.Fatalf("ripCandidates on a one-net design: want none, got %d", len(got))
	}
	before := snapshotSegments(rt.result)
	rt.ripUpOne(rn, 4, 2)
	sameSegments(t, rt.result, before)
	if len(rn.Failed) != 1 {
		t.Error("ripUpOne without candidates must not touch the failure list")
	}
}

// TestRipUpDepthExhausted: the bounded recursion must refuse to do any
// work at depth 0, even when candidates exist — that is the property
// keeping victim-of-victim chains finite.
func TestRipUpDepthExhausted(t *testing.T) {
	pr, _, n2 := crossScene(t)
	rt := buildRouter(t, context.Background(), pr, Options{Claimpoints: false, NoRetry: true})
	failed := rt.result.Net(n2)
	if failed.OK() {
		// Net order is deterministic, but guard against either net
		// being the loser.
		for _, rn := range rt.result.Nets {
			if !rn.OK() {
				failed = rn
			}
		}
	}
	if failed.OK() {
		t.Skip("cross scene routed fully; no failure to exercise")
	}
	before := snapshotSegments(rt.result)
	rt.ripUpOne(failed, 4, 0)
	sameSegments(t, rt.result, before)
	if failed.OK() {
		t.Error("depth-0 rip-up cannot have completed the net")
	}
}

// TestRipUpPassCancelled: a cancellation that fires before the pass
// must make it return immediately without disturbing the routing, and
// RouteCtx must surface ctx.Err() instead of a partial result.
func TestRipUpPassCancelled(t *testing.T) {
	pr, _, _ := crossScene(t)
	rt := buildRouter(t, context.Background(), pr, Options{Claimpoints: false, NoRetry: true})
	before := snapshotSegments(rt.result)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt.cancel = newCancelCheck(ctx)
	rt.ripUpPass(4)
	sameSegments(t, rt.result, before)

	pr2, _, _ := crossScene(t)
	if _, err := RouteCtx(ctx, pr2, Options{Claimpoints: false, NoRetry: true, RipUp: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RouteCtx with rip-up: want context.Canceled, got %v", err)
	}
}

// TestRipUpCancelMidRotation: cancellation between candidate rotations
// rolls the in-progress exchange back instead of leaving the plane in
// a half-ripped state.
func TestRipUpCancelMidRotation(t *testing.T) {
	pr, _, n2 := crossScene(t)
	rt := buildRouter(t, context.Background(), pr, Options{Claimpoints: false, NoRetry: true})
	var failed *RoutedNet
	for _, rn := range rt.result.Nets {
		if !rn.OK() {
			failed = rn
		}
	}
	if failed == nil {
		t.Skip("cross scene routed fully; no failure to exercise")
	}
	before := snapshotSegments(rt.result)

	// Fire the cancellation exactly at the first rotation's poll.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt.cancel = newCancelCheck(ctx)
	rt.ripUpOne(failed, 4, 2)
	sameSegments(t, rt.result, before)
	_ = n2
}
