package route

import (
	"fmt"
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/workload"
)

// Positive half of the equivalence-checker tests: every result the
// router produces — sequential or parallel, any workload — must pass
// VerifyEquivalence. The negative half corrupts routed geometry in
// targeted ways and asserts the checker catches each class of
// violation, so the positive half is known not to pass vacuously.

func TestEquivalenceHoldsAcrossWorkloads(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		po    place.Options
	}{
		{"fig61", workload.Fig61, place.Options{PartSize: 6, BoxSize: 6}},
		{"datapath_tight", workload.Datapath16, place.Options{PartSize: 1, BoxSize: 1}},
		{"datapath_wide", workload.Datapath16, place.Options{PartSize: 7, BoxSize: 5}},
	}
	for _, tc := range cases {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/workers%d", tc.name, workers), func(t *testing.T) {
				res := placeAndRoute(t, tc.build(), tc.po,
					Options{Claimpoints: true, Workers: workers})
				if err := VerifyEquivalence(res); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestEquivalenceHoldsSeeded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := placeAndRoute(t, workload.Random(10, seed),
			place.Options{PartSize: 4, BoxSize: 2}, Options{Claimpoints: true})
		if err := VerifyEquivalence(res); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// tamperBase routes a small fixed design and returns the result for
// corruption. Helper failures are fatal: the negative tests are
// meaningless without a valid baseline.
func tamperBase(t *testing.T) *Result {
	t.Helper()
	res := placeAndRoute(t, workload.Fig61(),
		place.Options{PartSize: 6, BoxSize: 6}, Options{Claimpoints: true})
	if err := VerifyEquivalence(res); err != nil {
		t.Fatalf("baseline not equivalent: %v", err)
	}
	return res
}

// routedNet returns the first fully routed net with wire geometry.
func routedNet(t *testing.T, res *Result) *RoutedNet {
	t.Helper()
	for _, rn := range res.Nets {
		if rn.OK() && len(rn.Segments) > 0 && len(rn.Net.Terms) >= 2 {
			return rn
		}
	}
	t.Fatal("no routed net with geometry")
	return nil
}

// otherRoutedNet returns a routed net different from avoid.
func otherRoutedNet(t *testing.T, res *Result, avoid *RoutedNet) *RoutedNet {
	t.Helper()
	for _, rn := range res.Nets {
		if rn != avoid && rn.OK() && len(rn.Segments) > 0 {
			return rn
		}
	}
	t.Fatal("no second routed net")
	return nil
}

func wantViolation(t *testing.T, res *Result, reason string) {
	t.Helper()
	err := VerifyEquivalence(res)
	if err == nil {
		t.Fatalf("tampered result passed equivalence (wanted %q)", reason)
	}
	if _, ok := err.(*EquivalenceError); !ok {
		t.Fatalf("got %T (%v), want *EquivalenceError", err, err)
	}
	t.Logf("caught as expected: %v", err)
}

func TestEquivalenceCatchesMissingWire(t *testing.T) {
	res := tamperBase(t)
	rn := routedNet(t, res)
	rn.Segments = nil // net still claims all terminals connected
	wantViolation(t, res, "connectivity")
}

func TestEquivalenceCatchesBrokenTree(t *testing.T) {
	res := tamperBase(t)
	rn := routedNet(t, res)
	// Drop one segment: some claimed terminal becomes unreachable or
	// loses its wire entirely.
	rn.Segments = rn.Segments[:len(rn.Segments)-1]
	wantViolation(t, res, "connectivity")
}

func TestEquivalenceCatchesSameAxisShort(t *testing.T) {
	res := tamperBase(t)
	a := routedNet(t, res)
	b := otherRoutedNet(t, res, a)
	// Duplicate one of b's segments into a: same-axis overlap.
	a.Segments = append(a.Segments, b.Segments[0])
	wantViolation(t, res, "same-axis short")
}

func TestEquivalenceCatchesJunctionShort(t *testing.T) {
	res := tamperBase(t)
	a := routedNet(t, res)
	b := otherRoutedNet(t, res, a)
	// End a perpendicular stub of net a exactly on a point of net b's
	// wire: a junction short even though the axes differ.
	var bs Segment
	found := false
	for _, s := range b.Segments {
		if s.Len() >= 2 {
			bs, found = s, true
			break
		}
	}
	if !found {
		t.Skip("no segment long enough to host a stub")
	}
	mid := bs.Points()[1]
	var stub Segment
	if bs.Horizontal() {
		stub = Segment{A: geom.Pt(mid.X, mid.Y-2), B: mid}
	} else {
		stub = Segment{A: geom.Pt(mid.X-2, mid.Y), B: mid}
	}
	a.Segments = append(a.Segments, stub)
	wantViolation(t, res, "junction short")
}

func TestEquivalenceCatchesForeignTerminal(t *testing.T) {
	res := tamperBase(t)
	a := routedNet(t, res)
	b := otherRoutedNet(t, res, a)
	// Run a wire of net a straight through one of net b's terminals.
	tp, err := res.Placement.TermPos(b.Net.Terms[0])
	if err != nil {
		t.Fatal(err)
	}
	a.Segments = append(a.Segments,
		Segment{A: geom.Pt(tp.X-1, tp.Y), B: geom.Pt(tp.X+1, tp.Y)})
	wantViolation(t, res, "foreign terminal")
}

// TestEquivalenceAllowsCrossing pins down the one legal interaction:
// two nets sharing a point as a perpendicular crossing, both passing
// straight through. The checker must not flag it.
func TestEquivalenceAllowsCrossing(t *testing.T) {
	res := tamperBase(t)
	crossings := 0
	type seen struct{ h, v bool }
	pts := map[geom.Point]map[string]seen{}
	for _, rn := range res.Nets {
		for _, s := range rn.Segments {
			for _, p := range s.Points() {
				if pts[p] == nil {
					pts[p] = map[string]seen{}
				}
				v := pts[p][rn.Net.Name]
				if s.Horizontal() {
					v.h = true
				} else {
					v.v = true
				}
				pts[p][rn.Net.Name] = v
			}
		}
	}
	for _, nets := range pts {
		if len(nets) == 2 {
			crossings++
		}
	}
	// The routed fig 6.1 plane does contain crossings; if not, this
	// guard is vacuous and should say so rather than silently pass.
	t.Logf("fig61 has %d shared wire points across nets", crossings)
	if err := VerifyEquivalence(res); err != nil {
		t.Fatalf("legal crossings flagged: %v", err)
	}
}
