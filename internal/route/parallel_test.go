package route

import (
	"fmt"
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/workload"
)

// This file is the router half of the determinism battery: the
// parallel speculation scheduler must produce results byte-identical
// to the sequential router — same segments, same failures, same plane
// cell state, same search statistics — for every workload, seed and
// option combination. The rendered-output half (ASCII + SVG byte
// equality through the full pipeline) lives in internal/gen.

// assertSameResult compares every observable field of two routing
// results except the Speculation diagnostics block.
func assertSameResult(t *testing.T, tag string, seq, par *Result) {
	t.Helper()
	if seq.Stats != par.Stats {
		t.Errorf("%s: stats diverge:\n  seq %+v\n  par %+v", tag, seq.Stats, par.Stats)
	}
	assertSameArtwork(t, tag, seq, par)
}

// assertSameArtwork compares the routed artwork — wire geometry, plane
// cell state, failures — but not the search statistics: windowed and
// full-plane searches sweep different cell counts on the way to the
// same result.
func assertSameArtwork(t *testing.T, tag string, seq, par *Result) {
	t.Helper()
	if !seq.Plane.Equal(par.Plane) {
		t.Errorf("%s: plane cell state diverges", tag)
	}
	if seq.UnroutedCount() != par.UnroutedCount() {
		t.Errorf("%s: unrouted %d (seq) vs %d (par)", tag, seq.UnroutedCount(), par.UnroutedCount())
	}
	if len(seq.Nets) != len(par.Nets) {
		t.Fatalf("%s: net count %d vs %d", tag, len(seq.Nets), len(par.Nets))
	}
	for i := range seq.Nets {
		sn, pn := seq.Nets[i], par.Nets[i]
		if sn.Net.Name != pn.Net.Name {
			t.Fatalf("%s: net order diverges at %d: %s vs %s", tag, i, sn.Net.Name, pn.Net.Name)
		}
		if len(sn.Segments) != len(pn.Segments) {
			t.Errorf("%s: net %s: %d vs %d segments", tag, sn.Net.Name, len(sn.Segments), len(pn.Segments))
			continue
		}
		for j := range sn.Segments {
			if sn.Segments[j] != pn.Segments[j] {
				t.Errorf("%s: net %s: segment %d %v vs %v", tag, sn.Net.Name, j, sn.Segments[j], pn.Segments[j])
				break
			}
		}
		if len(sn.Failed) != len(pn.Failed) {
			t.Errorf("%s: net %s: %d vs %d failed terminals", tag, sn.Net.Name, len(sn.Failed), len(pn.Failed))
			continue
		}
		for j := range sn.Failed {
			if sn.Failed[j].Label() != pn.Failed[j].Label() {
				t.Errorf("%s: net %s: failed terminal %d %s vs %s",
					tag, sn.Net.Name, j, sn.Failed[j].Label(), pn.Failed[j].Label())
			}
		}
	}
}

// routeFresh builds the design and placement from scratch and routes
// it: each run must be fully independent so parallel runs cannot see
// sequential state through shared structures.
func routeFresh(t *testing.T, build func() *netlist.Design, po place.Options, ro Options) *Result {
	t.Helper()
	pr, err := place.Place(build(), po)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(pr, ro)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var batteryWorkers = []int{2, 4, 8}

// batteryOrders and batteryWindows span the full determinism matrix:
// {design, shortest-first} net ordering × {windowed, full-plane}
// search, each at worker counts {1 (the sequential baseline), 2, 4, 8}.
var batteryOrders = []struct {
	name     string
	shortest bool
}{
	{"design", false},
	{"shortest", true},
}

var batteryWindows = []struct {
	name     string
	noWindow bool
}{
	{"window", false},
	{"full", true},
}

func TestParallelMatchesSequentialWorkloads(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		po    place.Options
		slow  bool
	}{
		{"fig61", workload.Fig61, place.Options{PartSize: 6, BoxSize: 6}, false},
		{"datapath", workload.Datapath16, place.Options{PartSize: 7, BoxSize: 5}, false},
		{"life", workload.Life27, place.Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3}, true},
	}
	for _, tc := range cases {
		for _, ord := range batteryOrders {
			t.Run(tc.name+"/"+ord.name, func(t *testing.T) {
				if tc.slow && testing.Short() {
					t.Skip("life battery skipped in -short mode")
				}
				ro := Options{Claimpoints: true, OrderShortestFirst: ord.shortest}
				// One sequential baseline per window setting; the two
				// baselines must agree on the artwork (the windowed≡full
				// battery in window_test.go owns the exhaustive version
				// of that property).
				var baseline [2]*Result
				for wi, win := range batteryWindows {
					wro := ro
					wro.NoWindow = win.noWindow
					baseline[wi] = routeFresh(t, tc.build, tc.po, wro)
				}
				assertSameArtwork(t, tc.name+"/"+ord.name+"/window-vs-full", baseline[0], baseline[1])
				for wi, win := range batteryWindows {
					wro := ro
					wro.NoWindow = win.noWindow
					for _, w := range batteryWorkers {
						pro := wro
						pro.Workers = w
						par := routeFresh(t, tc.build, tc.po, pro)
						if par.Speculation == nil {
							t.Fatalf("%s workers=%d: no speculation stats on parallel result", win.name, w)
						}
						assertSameResult(t, fmt.Sprintf("%s/%s/%s workers=%d",
							tc.name, ord.name, win.name, w), baseline[wi], par)
					}
				}
			})
		}
	}
}

// TestParallelMatchesSequentialOptionMatrix exercises the scheduler
// under every router feature that interacts with the plane state:
// claimpoint release, shortest-first ordering, the rip-up pass, the
// dual-front engine and the Lee baseline.
func TestParallelMatchesSequentialOptionMatrix(t *testing.T) {
	variants := []struct {
		name string
		ro   Options
	}{
		{"plain", Options{}},
		{"claims", Options{Claimpoints: true}},
		{"shortest", Options{Claimpoints: true, OrderShortestFirst: true}},
		{"ripup", Options{Claimpoints: true, RipUp: true}},
		{"dualfront", Options{Claimpoints: true, DualFront: true}},
		{"swap", Options{Claimpoints: true, SwapObjective: true}},
		{"lee", Options{Claimpoints: true, Algorithm: AlgoLee}},
	}
	po := place.Options{PartSize: 5, BoxSize: 1}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			seq := routeFresh(t, workload.Datapath16, po, v.ro)
			for _, w := range batteryWorkers {
				pro := v.ro
				pro.Workers = w
				par := routeFresh(t, workload.Datapath16, po, pro)
				assertSameResult(t, fmt.Sprintf("%s workers=%d", v.name, w), seq, par)
			}
		})
	}
}

// TestParallelMatchesSequentialSeeded routes 20 seeded random designs
// (the internal/workload generator) at every battery worker count.
func TestParallelMatchesSequentialSeeded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func() *netlist.Design { return workload.Random(12, seed) }
			po := place.Options{PartSize: 4, BoxSize: 2}
			ro := Options{Claimpoints: true}
			seq := routeFresh(t, build, po, ro)
			for _, w := range batteryWorkers {
				pro := ro
				pro.Workers = w
				par := routeFresh(t, build, po, pro)
				assertSameResult(t, fmt.Sprintf("seed%d workers=%d", seed, w), seq, par)
			}
		})
	}
}

// TestParallelWorkerClamp: more workers than nets must clamp and still
// work (including the degenerate one-net design).
func TestParallelWorkerClamp(t *testing.T) {
	build := func() *netlist.Design { return workload.Random(3, 7) }
	po := place.Options{PartSize: 2, BoxSize: 1}
	seq := routeFresh(t, build, po, Options{Claimpoints: true})
	par := routeFresh(t, build, po, Options{Claimpoints: true, Workers: 64})
	assertSameResult(t, "clamp", seq, par)
	if par.Speculation.Workers > len(par.Nets) {
		t.Errorf("workers not clamped: %d workers for %d nets", par.Speculation.Workers, len(par.Nets))
	}
}

// TestParallelSpeculationAccounting: the scheduler's books must
// balance — every net is either a validated speculation or a requeue.
func TestParallelSpeculationAccounting(t *testing.T) {
	par := routeFresh(t, workload.Datapath16, place.Options{PartSize: 7, BoxSize: 5},
		Options{Claimpoints: true, Workers: 4})
	ss := par.Speculation
	if ss == nil {
		t.Fatal("no speculation stats")
	}
	if ss.Hits+ss.Misses != ss.Speculated {
		t.Errorf("hits %d + misses %d != speculated %d", ss.Hits, ss.Misses, ss.Speculated)
	}
	if ss.Misses != ss.Requeues {
		t.Errorf("misses %d != requeues %d under inline re-route", ss.Misses, ss.Requeues)
	}
	if ss.Hits+ss.Requeues != len(par.Nets) {
		t.Errorf("hits %d + requeues %d != %d nets", ss.Hits, ss.Requeues, len(par.Nets))
	}
	nets := 0
	for _, n := range ss.WorkerNets {
		nets += n
	}
	if nets != ss.Speculated {
		t.Errorf("per-worker nets %d != speculated %d", nets, ss.Speculated)
	}
}
