package route

import (
	"sync"
	"sync/atomic"
	"time"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// This file implements the deterministic parallel routing engine: a
// speculation scheduler that routes up to Options.Workers nets
// concurrently, each against a private snapshot of the routing plane
// with a copy-on-write journal (spec.go), and commits results strictly
// in the canonical net order. The construction mirrors software
// transactional memory with ordered commit:
//
//   - every worker owns a full clone of the plane, kept in sync with
//     the committed prefix by replaying the commit log;
//   - a speculation records its read set (every mutable plane cell the
//     search consulted) and its write log (claim releases and laid
//     wires), then rolls its writes back so the snapshot returns to
//     the committed prefix;
//   - the committer takes speculations in canonical order. A
//     speculation is valid iff no net committed after its snapshot
//     prefix wrote a cell it read: a deterministic search that
//     observed only unchanged cells makes exactly the decisions it
//     would have made sequentially, so replaying its write log yields
//     the sequential outcome (induction over the commit order).
//     Invalid speculations are discarded and the net is re-routed on
//     the master plane, which by construction is in the exact
//     sequential state.
//
// Dispatch is windowed by a token semaphore: at most Workers nets are
// claimed beyond the committed prefix, so a speculation never runs
// against a snapshot more than Workers-1 commits stale. That bounds
// both the validation window and the conflict probability.
//
// The result — paths, bends, plane state, stats, unrouted set — is
// byte-identical to the sequential router for every input and seed;
// the determinism battery (parallel_test.go) enforces this. The only
// observable difference is the Result.Speculation diagnostics block.
// One caveat: with an armed fault injector the *firing order* of
// fault sites differs between sequential and parallel runs, so
// injected-fault outcomes are reproducible only for a fixed worker
// count.

// SpecStats reports the parallel scheduler's work: how speculation
// fared and how the load spread over the workers. Purely diagnostic.
type SpecStats struct {
	// Workers is the worker count the route ran with (after clamping
	// to the net count).
	Workers int `json:"workers"`
	// Speculated counts speculations the committer examined.
	Speculated int `json:"speculated"`
	// Hits counts speculations that validated and committed as-is.
	Hits int `json:"hits"`
	// Misses counts speculations invalidated by a conflicting commit.
	Misses int `json:"misses"`
	// Requeues counts nets re-routed on the master plane after a miss
	// (equal to Misses under the current inline re-route policy; kept
	// separate so a re-dispatching scheduler can distinguish them).
	Requeues int `json:"requeues"`
	// WorkerNets is the number of speculations each worker produced.
	WorkerNets []int `json:"worker_nets"`
	// WorkerBusy is each worker's wall-clock busy time in seconds,
	// from first claim to exit.
	WorkerBusy []float64 `json:"worker_busy_seconds"`
}

// add accumulates a committed speculation's counters. All fields sum
// except MaxBends, which is a running maximum, so the total over the
// commit order equals the sequential total over the routing order.
func (st *SearchStats) add(o *SearchStats) {
	st.Searches += o.Searches
	st.Waves += o.Waves
	st.Actives += o.Actives
	st.Cells += o.Cells
	if o.MaxBends > st.MaxBends {
		st.MaxBends = o.MaxBends
	}
	st.RipUps += o.RipUps
	st.Widened += o.Widened
}

// specResult is what a worker hands the committer for one net.
type specResult struct {
	idx      int         // position in the canonical order
	syncedAt int         // committed prefix length the speculation ran against
	rn       *RoutedNet  // routing outcome (nil if the worker panicked)
	rec      *opRecord   // replayable write log
	reads    []uint64    // bitmap over plane indices of cells the speculation read
	rbox     geom.Rect   // bounding box of the read set (grid coords)
	stats    SearchStats // search work, accounted only if the speculation commits
	panicVal any         // recovered panic; the committer re-raises it
}

// commitEntry is one committed net in the log workers sync from.
type commitEntry struct {
	rec    *opRecord
	writes []int32   // sorted deduplicated cell indices rec writes
	wbox   geom.Rect // bounding box of writes (grid coords)
}

// routeAllParallel is the Workers>1 implementation of routeAll.
func (rt *router) routeAllParallel() {
	order := rt.routeOrder()
	n := len(order)
	workers := rt.opts.Workers
	if workers > n {
		workers = n
	}
	spec := &SpecStats{
		Workers:    workers,
		WorkerNets: make([]int, workers),
		WorkerBusy: make([]float64, workers),
	}
	rt.result.Speculation = spec
	if n == 0 {
		rt.publish(nil)
		return
	}

	var (
		sched = newSpecSched(n, workers)
		log   = make([]commitEntry, n)
	)
	// Snapshots are taken before the committer loop starts: the master
	// plane must not change while a clone is in progress.
	for w := 0; w < workers; w++ {
		wrt := &router{
			pl:     rt.pl,
			opts:   rt.opts,
			netID:  rt.netID,
			plane:  rt.plane.Clone(),
			cancel: newCancelCheck(rt.ctx),
		}
		wrt.plane.enableSpec()
		sched.wg.Add(1)
		go specWorker(w, wrt, order, log, sched, spec)
	}

	byNet := make(map[*netlist.Net]*RoutedNet, n)
	var panicked any
	commitOne := func(k int, res *specResult) {
		spec.Speculated++
		if rt.validate(log, res, k) {
			// Hit: replay the speculation's writes onto the master
			// plane (now in the exact state the validation proved the
			// speculation effectively ran against) and account its
			// search work in commit order.
			spec.Hits++
			rt.plane.replayOps(res.rec)
			rt.stats.add(&res.stats)
			writes, wbox := res.rec.writeSet(rt.plane)
			log[k] = commitEntry{rec: res.rec, writes: writes, wbox: wbox}
			byNet[order[k]] = res.rn
		} else {
			// Miss: the speculation observed cells a later commit
			// changed. Discard it (including its stats) and route the
			// net on the master plane, recording the ops so workers
			// can sync.
			spec.Misses++
			spec.Requeues++
			rec := &opRecord{net: rt.netID[order[k]]}
			rt.rec = rec
			byNet[order[k]] = rt.routeNet(order[k])
			rt.rec = nil
			writes, wbox := rec.writeSet(rt.plane)
			log[k] = commitEntry{rec: rec, writes: writes, wbox: wbox}
		}
		if rt.opts.OnCommit != nil {
			// The commit point: the master plane now reflects this net's
			// outcome, in canonical order — identical to the sequential
			// loop's per-net callback.
			rt.opts.OnCommit(k, n, byNet[order[k]])
		}
	}
	for k := 0; k < n && panicked == nil; {
		if rt.cancel.poll() {
			break // abandoned run; RouteCtx discards the result
		}
		res := <-sched.ready[k]
		// Batched commit: after the blocking receive, drain every
		// already-buffered consecutive speculation into the same batch
		// and publish once — one release-store of the committed length
		// and a burst of dispatch tokens — instead of a publish per net.
		// Each speculation is still validated against the log extended
		// by its batch predecessors, so the outcome is identical to the
		// one-at-a-time loop; batching only coalesces the coordination.
		batch := 0
		for {
			if res.panicVal != nil {
				panicked = res.panicVal
				break
			}
			commitOne(k+batch, res)
			batch++
			if k+batch >= n {
				break
			}
			var more bool
			select {
			case res = <-sched.ready[k+batch]:
				more = true
			default:
			}
			if !more {
				break
			}
		}
		if batch > 0 {
			sched.commit(k+batch, batch)
		}
		k += batch
	}
	sched.stop()
	sched.wg.Wait()
	if panicked != nil {
		// Surface worker panics on the calling goroutine so the
		// caller's resilience.Recover boundary sees them exactly as it
		// would from the sequential router.
		panic(panicked)
	}
	rt.publish(byNet)
}

// validate reports whether a speculation may commit at position k: no
// entry committed in [syncedAt, k) may have written a cell it read.
// Each log entry is first screened by rectangle intersection — a commit
// whose write box is disjoint from the speculation's read box cannot
// have written a read cell, so the bit tests are skipped. With search
// windows the read box hugs the net's window and most pairs screen
// out. Surviving entries pay a bit test per written cell —
// intentionally independent of the read-set size, which can span the
// whole searched region.
func (rt *router) validate(log []commitEntry, res *specResult, k int) bool {
	rb := res.rbox
	for j := res.syncedAt; j < k; j++ {
		e := &log[j]
		if e.wbox.Min.X > rb.Max.X || e.wbox.Max.X < rb.Min.X ||
			e.wbox.Min.Y > rb.Max.Y || e.wbox.Max.Y < rb.Min.Y {
			continue
		}
		for _, w := range e.writes {
			if res.reads[w>>6]&(1<<(uint(w)&63)) != 0 {
				return false
			}
		}
	}
	return true
}

// specSched is the coordination state between the committer and the
// speculation workers.
type specSched struct {
	// ready carries each net's speculation to the committer. Buffered
	// (cap 1) so a worker never blocks on a send: exactly one result is
	// produced per index.
	ready []chan *specResult
	// next is the dispatch counter: workers claim indices in canonical
	// order by fetch-and-add.
	next atomic.Int64
	// committedN is the length of the committed prefix of log. The
	// committer stores it (release) after writing the log entry;
	// workers load it (acquire) before reading log, which is the only
	// synchronization the log needs.
	committedN atomic.Int64
	// tokens windows the dispatch: a worker takes a token per claim,
	// the committer returns one per commit, so at most cap(tokens)
	// indices are in flight beyond the committed prefix.
	tokens chan struct{}
	// stopped is closed when the committer abandons the loop (cancel
	// or forwarded panic) so workers blocked on a token exit.
	stopped chan struct{}
	wg      sync.WaitGroup
}

func newSpecSched(n, workers int) *specSched {
	s := &specSched{
		ready:   make([]chan *specResult, n),
		tokens:  make(chan struct{}, workers),
		stopped: make(chan struct{}),
	}
	for i := range s.ready {
		s.ready[i] = make(chan *specResult, 1)
	}
	for i := 0; i < workers; i++ {
		s.tokens <- struct{}{}
	}
	return s
}

// commit publishes the log through entry newLen-1 to the workers and
// opens m dispatch slots (one per net of the batch). The caller must
// have written log[..newLen) before calling. The token sends cannot
// block: each returns a token a claim consumed, so in-channel tokens
// never exceed the channel's worker-count capacity.
func (s *specSched) commit(newLen, m int) {
	s.committedN.Store(int64(newLen))
	for i := 0; i < m; i++ {
		s.tokens <- struct{}{}
	}
}

// stop releases workers waiting for a dispatch slot. Idempotent use is
// not needed: the committer calls it exactly once.
func (s *specSched) stop() { close(s.stopped) }

// specWorker is one speculation goroutine: claim the next net in
// canonical order (window permitting), sync the private snapshot to
// the committed prefix, route the net under the journal, roll the
// writes back and hand the recording to the committer.
func specWorker(w int, wrt *router, order []*netlist.Net, log []commitEntry, sched *specSched, spec *SpecStats) {
	defer sched.wg.Done()
	start := time.Now()
	defer func() { spec.WorkerBusy[w] = time.Since(start).Seconds() }()
	synced := 0 // committed prefix this worker's snapshot reflects
	for {
		select {
		case <-sched.stopped:
			return
		case <-sched.tokens:
		}
		k := int(sched.next.Add(1) - 1)
		if k >= len(order) {
			return
		}
		res := &specResult{idx: k}
		func() {
			defer func() {
				if r := recover(); r != nil {
					// A panic (typically an injected fault) must not
					// crash the process from a bare goroutine; forward
					// it so the committer re-raises it on the caller's
					// stack, inside the caller's Recover boundary.
					res.panicVal = r
				}
			}()
			// Sync: replay commits the snapshot hasn't seen. The
			// acquire-load pairs with the committer's release-store,
			// so log[..c) is fully visible.
			c := int(sched.committedN.Load())
			for ; synced < c; synced++ {
				wrt.plane.replayOps(log[synced].rec)
			}
			res.syncedAt = synced
			// Speculate under the journal, then roll back so the
			// snapshot returns to the committed prefix.
			rec := &opRecord{net: wrt.netID[order[k]]}
			wrt.rec = rec
			wrt.stats = &res.stats
			wrt.plane.beginSpec()
			res.rn = wrt.routeNet(order[k])
			res.reads, res.rbox = wrt.plane.specReadBits()
			wrt.plane.rollbackSpec()
			res.rec = rec
			spec.WorkerNets[w]++
		}()
		sched.ready[k] <- res
		if res.panicVal != nil {
			return // snapshot state is undefined; retire the worker
		}
	}
}
