package route

import (
	"context"
	"errors"
	"testing"
	"time"

	"netart/internal/place"
	"netart/internal/workload"
)

func placedDatapath(t testing.TB) *place.Result {
	t.Helper()
	pr, err := place.Place(workload.Datapath16(), place.Options{PartSize: 7, BoxSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestRouteCtxCancelled asserts a pre-cancelled context aborts the run
// and surfaces ctx.Err() instead of a partial result.
func TestRouteCtxCancelled(t *testing.T) {
	pr := placedDatapath(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rr, err := RouteCtx(ctx, pr, Options{Claimpoints: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (result=%v)", err, rr)
	}
	if rr != nil {
		t.Fatal("cancelled route must not return a result")
	}
}

// TestRouteCtxDeadline asserts an already-expired deadline surfaces as
// DeadlineExceeded from every engine.
func TestRouteCtxDeadline(t *testing.T) {
	pr := placedDatapath(t)
	for _, algo := range []Algo{AlgoLineExpansion, AlgoLee, AlgoLeeLength} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		rr, err := RouteCtx(ctx, pr, Options{Claimpoints: true, Algorithm: algo})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: want DeadlineExceeded, got %v (result=%v)", algo, err, rr)
		}
	}
	// Dual-front initiation shares the same cancellation plumbing.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RouteCtx(ctx, pr, Options{Claimpoints: true, DualFront: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("dual-front: want DeadlineExceeded, got %v", err)
	}
}

// TestRouteCtxBackgroundMatchesRoute asserts the context plumbing does
// not change results: RouteCtx with a background context routes exactly
// what Route does.
func TestRouteCtxBackgroundMatchesRoute(t *testing.T) {
	pr := placedDatapath(t)
	a, err := Route(pr, Options{Claimpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	prB := placedDatapath(t)
	b, err := RouteCtx(context.Background(), prB, Options{Claimpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.UnroutedCount() != b.UnroutedCount() {
		t.Fatalf("unrouted mismatch: Route=%d RouteCtx=%d", a.UnroutedCount(), b.UnroutedCount())
	}
	if len(a.Nets) != len(b.Nets) {
		t.Fatalf("net count mismatch: %d vs %d", len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		if la, lb := totalLen(a.Nets[i].Segments), totalLen(b.Nets[i].Segments); la != lb {
			t.Errorf("net %q wire length mismatch: %d vs %d", a.Nets[i].Net.Name, la, lb)
		}
	}
}
