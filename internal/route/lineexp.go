package route

import (
	"sort"

	"netart/internal/geom"
)

// This file implements the line-expansion principle of §5.5/§5.6
// (after Heyns, Sansen & Beke [7]): whole active segments are expanded
// perpendicular to their direction; the borders of each expansion zone
// become the next wave's active segments. Waves are processed in order
// of their bend count, so the first wave that reaches the target yields
// a path with the minimum number of bends; scanning the complete wave
// before committing lets the router pick, among the minimum-bend
// solutions, the one with the fewest wire crossings and then the
// smallest wire length (§5.6.1; the -s option of Appendix F swaps the
// last two criteria).

// active is the ten-tuple of §5.6.2 in struct form: a segment of
// already-reached cells together with its expansion direction, wave
// (bend) number, per-cell crossing counts, and its originator for the
// trace-back.
type active struct {
	index  int           // the fixed coordinate: row for horizontal segments (dir up/down), column for vertical
	iv     geom.Interval // cell range along the segment
	dir    geom.Dir      // expansion direction, perpendicular to the segment
	bends  int           // wave number b
	cross  []int         // crossings c per cell (parallel to iv)
	parent *active       // originator
}

// pt maps segment coordinates to plane points: i runs along the
// segment, j along the expansion axis.
func (a *active) pt(i, j int) geom.Point {
	if a.dir == geom.Up || a.dir == geom.Down {
		return geom.Pt(i, j)
	}
	return geom.Pt(j, i)
}

// step is the signed unit of the expansion axis.
func (a *active) step() int {
	if a.dir == geom.Up || a.dir == geom.Right {
		return 1
	}
	return -1
}

// solution records one contact with the target set.
type solution struct {
	a      *active
	i, j   int // contact coordinates in a's frame
	cross  int
	length int
	segs   []Segment
}

// lineSearch is one invocation of the expansion engine: route from a
// set of initial actives to a target predicate over plane points.
type lineSearch struct {
	pl  *Plane
	net int32
	// covered holds one bit per expansion direction: a cell stops an
	// escape only when it was already swept in the same direction.
	// This mirrors the paper's directional obstacle bookkeeping (new
	// vertical actives are added to vertical-segments and block only
	// horizontal escapes, and vice versa) and preserves the minimum
	// bend guarantee: when an escape is stopped by a same-direction
	// mark, every cell beyond it was already covered at an equal or
	// lower wave number by the sweep that made the mark.
	covered []uint8
	target  func(geom.Point) bool
	sols    []solution
	swap    bool         // -s: compare length before crossings
	stats   *SearchStats // optional counters; nil disables
	cancel  *cancelCheck // optional cancellation; nil never cancels
}

// SearchStats counts the work the expansion engine performs — the
// quantities the §5.8 complexity discussion reasons about ("if the
// number of bends is small then a path will be found in no time
// because the number of possible paths will be small").
type SearchStats struct {
	Searches int `json:"searches"`  // individual connection searches run
	Waves    int `json:"waves"`     // wavefronts processed (one per bend level per search)
	Actives  int `json:"actives"`   // active segments expanded
	Cells    int `json:"cells"`     // escape-line cells swept
	MaxBends int `json:"max_bends"` // deepest wave that produced a solution
	RipUps   int `json:"rip_ups"`   // failed nets the rip-up pass attempted to fix
}

func (st *SearchStats) addWave() {
	if st != nil {
		st.Waves++
	}
}

func (st *SearchStats) addActive() {
	if st != nil {
		st.Actives++
	}
}

func (st *SearchStats) addCells(n int) {
	if st != nil {
		st.Cells += n
	}
}

func dirBit(d geom.Dir) uint8 { return 1 << uint(d) }

const allDirBits = 0x0f

func newLineSearch(pl *Plane, net int32, target func(geom.Point) bool, swap bool) *lineSearch {
	return &lineSearch{
		pl:      pl,
		net:     net,
		covered: make([]uint8, len(pl.blocked)),
		target:  target,
		swap:    swap,
	}
}

// terminalActives builds the initial wave for a terminal at p escaping
// in the given directions (one outward direction for subsystem
// terminals, all four for system terminals, per INIT_ACTIVES).
func terminalActives(p geom.Point, dirs []geom.Dir) []*active {
	out := make([]*active, 0, len(dirs))
	for _, d := range dirs {
		a := &active{dir: d, bends: 0, cross: []int{0}}
		if d == geom.Up || d == geom.Down {
			a.index = p.Y
			a.iv = geom.Iv(p.X, p.X)
		} else {
			a.index = p.X
			a.iv = geom.Iv(p.Y, p.Y)
		}
		out = append(out, a)
	}
	return out
}

// run processes waves in bend order until a wave produces solutions or
// the frontier dies out. It returns the winning path as cleaned
// segments ordered target→source.
func (s *lineSearch) run(starts []*active) ([]Segment, bool) {
	if len(starts) == 0 {
		return nil, false
	}
	// Mark the start cells covered so escapes do not re-enter them.
	for _, a := range starts {
		for i := a.iv.Lo; i <= a.iv.Hi; i++ {
			p := a.pt(i, a.index)
			if s.pl.InBounds(p) {
				s.covered[s.pl.idx(p)] = allDirBits
			}
		}
	}
	wave := starts
	bends := 0
	for len(wave) > 0 {
		if s.cancel.poll() {
			return nil, false // abandoned search: caller checks ctx.Err()
		}
		s.stats.addWave()
		var next []*active
		for _, a := range wave {
			s.stats.addActive()
			next = append(next, s.expand(a)...)
		}
		if len(s.sols) > 0 {
			if s.stats != nil && bends > s.stats.MaxBends {
				s.stats.MaxBends = bends
			}
			best := s.best()
			return cleanSegments(best.segs), true
		}
		wave = next
		bends++
	}
	return nil, false
}

// best picks the winning solution of the current wave: minimum
// crossings then minimum length, or the reverse under -s. Ties resolve
// to the earliest found, which is deterministic.
func (s *lineSearch) best() solution {
	sort.SliceStable(s.sols, func(x, y int) bool {
		a, b := s.sols[x], s.sols[y]
		if s.swap {
			if a.length != b.length {
				return a.length < b.length
			}
			return a.cross < b.cross
		}
		if a.cross != b.cross {
			return a.cross < b.cross
		}
		return a.length < b.length
	})
	return s.sols[0]
}

// expand implements EXPAND_SEGMENT with a per-cell sweep: every cell of
// the active segment sends an escape line in the expansion direction
// until it is stopped by an obstacle, a previously searched zone, or
// the target. The stop profile then yields the perpendicular border
// segments as the next wave (NEW_ACTIVES).
func (s *lineSearch) expand(a *active) []*active {
	step := a.step()
	n := a.iv.Len()
	// advance[k]: how many cells the escape from segment cell k
	// travelled. crossPos[k]: expansion-axis positions (j) of the
	// foreign wires crossed, in travel order. passable cells that are
	// crossings cannot join new actives.
	advance := make([]int, n)
	crossPos := make([][]int, n)

	for k := 0; k < n; k++ {
		i := a.iv.Lo + k
		c := a.cross[k]
		j := a.index
		for {
			if s.cancel.tick() {
				return nil // abandoned sweep; run's wave poll ends the search
			}
			nj := j + step
			p := a.pt(i, nj)
			if s.target(p) {
				segs := pathBack(a, i, nj)
				s.sols = append(s.sols, solution{
					a: a, i: i, j: nj,
					cross:  c,
					length: totalLen(segs),
					segs:   segs,
				})
				break
			}
			if s.stopsEscape(p) {
				break
			}
			// A wire running along the escape axis can never be shared:
			// nets may cross, not overlap (§5.3). Own-net wires were
			// already handled by the target predicate above.
			if s.wireAlong(p, a.dir) != 0 {
				break
			}
			idx := s.pl.idx(p)
			if s.covered[idx]&dirBit(a.dir) != 0 {
				break
			}
			// Perpendicular foreign wire: cross it (cell is passed but
			// unusable as a turning point).
			crossing := false
			if w := s.wireAcross(p, a.dir); w != 0 && w != s.net {
				crossing = true
				c++
			}
			s.covered[idx] |= dirBit(a.dir)
			s.stats.addCells(1)
			advance[k]++
			if crossing {
				crossPos[k] = append(crossPos[k], nj)
			}
			j = nj
		}
	}
	return s.newActives(a, advance, crossPos)
}

// stopsEscape reports whether the escape line must halt before entering
// p: plane border, blocked point (module, foreign terminal), a bend of
// a routed net, a claimpoint of another net, or a wire running along
// the escape direction (overlap is never allowed, §5.3).
func (s *lineSearch) stopsEscape(p geom.Point) bool {
	if s.pl.Blocked(p) {
		return true
	}
	if s.pl.Bend(p) {
		return true
	}
	if cl := s.pl.Claimpoint(p); cl != 0 && cl != s.net {
		return true
	}
	return false
}

// wireAcross returns the net of a wire perpendicular to the expansion
// direction at p (the crossable kind); wireAlong would be the same-axis
// wire, which stopsEscape treats as blocking through stops in expand.
func (s *lineSearch) wireAcross(p geom.Point, d geom.Dir) int32 {
	if d == geom.Up || d == geom.Down {
		return s.pl.HNet(p) // vertical escape crosses horizontal wires
	}
	return s.pl.VNet(p)
}

func (s *lineSearch) wireAlong(p geom.Point, d geom.Dir) int32 {
	if d == geom.Up || d == geom.Down {
		return s.pl.VNet(p)
	}
	return s.pl.HNet(p)
}

// newActives builds the perpendicular borders of the expansion zone.
// Between neighbouring escape columns with different advances, the
// taller column's extra cells border unexplored territory on the
// shorter side; they form a new active segment expanding toward it,
// with one more bend (NEW_ACTIVES).
func (s *lineSearch) newActives(a *active, advance []int, crossPos [][]int) []*active {
	step := a.step()
	n := len(advance)
	adv := func(k int) int {
		if k < 0 || k >= n {
			return 0
		}
		return advance[k]
	}
	var out []*active

	// decDir/incDir: the direction along the segment axis.
	var decDir, incDir geom.Dir
	if a.dir == geom.Up || a.dir == geom.Down {
		decDir, incDir = geom.Left, geom.Right
	} else {
		decDir, incDir = geom.Down, geom.Up
	}

	emit := func(k, fromAdv, toAdv int, dir geom.Dir) {
		// Border cells of column k from advance fromAdv+1 .. toAdv,
		// split around crossing cells.
		i := a.iv.Lo + k
		isCross := map[int]bool{}
		for _, j := range crossPos[k] {
			isCross[j] = true
		}
		baseCross := a.cross[k]
		crossUpTo := func(j int) int {
			c := baseCross
			for _, cj := range crossPos[k] {
				if (cj-a.index)*step <= (j-a.index)*step {
					c++
				}
			}
			return c
		}
		flush := func(loAdv, hiAdv int) {
			if loAdv > hiAdv {
				return
			}
			jLo := a.index + step*loAdv
			jHi := a.index + step*hiAdv
			na := &active{
				index:  i,
				iv:     geom.Iv(jLo, jHi),
				dir:    dir,
				bends:  a.bends + 1,
				parent: a,
			}
			na.cross = make([]int, na.iv.Len())
			for j := na.iv.Lo; j <= na.iv.Hi; j++ {
				na.cross[j-na.iv.Lo] = crossUpTo(j)
			}
			out = append(out, na)
		}
		runLo := fromAdv + 1
		for advPos := fromAdv + 1; advPos <= toAdv; advPos++ {
			j := a.index + step*advPos
			if isCross[j] {
				flush(runLo, advPos-1)
				runLo = advPos + 1
			}
		}
		flush(runLo, toAdv)
	}

	for k := 0; k <= n; k++ {
		left, right := adv(k-1), adv(k)
		if left < right {
			// Column k reaches further: its upper cells border column
			// k-1's side; they expand toward decreasing segment axis.
			emit(k, left, right, decDir)
		} else if left > right {
			emit(k-1, right, left, incDir)
		}
	}
	return out
}

// pathBack reconstructs the route from a contact at (i, j) in a's frame
// back to the source terminal (RECONSTRUCT_PATH): each hop runs along
// the escape to the originator segment, then jumps into the
// originator's frame.
func pathBack(a *active, i, j int) []Segment {
	var segs []Segment
	for {
		from := a.pt(i, j)
		to := a.pt(i, a.index)
		if from != to {
			segs = append(segs, Segment{from, to})
		}
		if a.parent == nil {
			return segs
		}
		i, j = a.index, i
		a = a.parent
	}
}

func totalLen(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Len()
	}
	return n
}

// cleanSegments merges adjacent collinear segments and drops degenerate
// ones, yielding the minimal corner representation of the path.
func cleanSegments(segs []Segment) []Segment {
	var out []Segment
	for _, s := range segs {
		if s.A == s.B {
			continue
		}
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.B == s.A && last.Horizontal() == s.Horizontal() {
				last.B = s.B
				continue
			}
		}
		out = append(out, s)
	}
	return out
}
