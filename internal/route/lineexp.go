package route

import (
	"sort"

	"netart/internal/geom"
)

// This file implements the line-expansion principle of §5.5/§5.6
// (after Heyns, Sansen & Beke [7]): whole active segments are expanded
// perpendicular to their direction; the borders of each expansion zone
// become the next wave's active segments. Waves are processed in order
// of their bend count, so the first wave that reaches the target yields
// a path with the minimum number of bends; scanning the complete wave
// before committing lets the router pick, among the minimum-bend
// solutions, the one with the fewest wire crossings and then the
// smallest wire length (§5.6.1; the -s option of Appendix F swaps the
// last two criteria).

// active is the ten-tuple of §5.6.2 in struct form: a segment of
// already-reached cells together with its expansion direction, wave
// (bend) number, crossing count, and its originator for the trace-back.
//
// The crossing count is a single value, not the paper's per-cell list:
// new actives are split at crossing cells (a crossing cannot be a
// turning point), so every cell of one active was reached across the
// same set of foreign wires and carries the same count.
type active struct {
	index  int           // the fixed coordinate: row for horizontal segments (dir up/down), column for vertical
	iv     geom.Interval // cell range along the segment
	dir    geom.Dir      // expansion direction, perpendicular to the segment
	bends  int           // wave number b
	cross  int           // crossings c on the path to every cell
	parent *active       // originator
}

// pt maps segment coordinates to plane points: i runs along the
// segment, j along the expansion axis.
func (a *active) pt(i, j int) geom.Point {
	if a.dir == geom.Up || a.dir == geom.Down {
		return geom.Pt(i, j)
	}
	return geom.Pt(j, i)
}

// step is the signed unit of the expansion axis.
func (a *active) step() int {
	if a.dir == geom.Up || a.dir == geom.Right {
		return 1
	}
	return -1
}

// solution records one contact with the target set.
type solution struct {
	a      *active
	i, j   int // contact coordinates in a's frame
	cross  int
	length int
	segs   []Segment
}

// lineSearch is one invocation of the expansion engine: route from a
// set of initial actives to a target predicate over plane points.
//
// Coverage bookkeeping lives in the arena: one bit per expansion
// direction per cell — a cell stops an escape only when it was already
// swept in the same direction. This mirrors the paper's directional
// obstacle sets (new vertical actives are added to vertical-segments
// and block only horizontal escapes, and vice versa) and preserves the
// minimum bend guarantee: when an escape is stopped by a same-direction
// mark, every cell beyond it was already covered at an equal or lower
// wave number by the sweep that made the mark.
type lineSearch struct {
	pl     *Plane
	net    int32
	ar     *searchArena // covered marks + wavefront scratch; never nil
	win    geom.Rect    // inclusive search window; escapes stop at its edge
	target func(geom.Point) bool
	marks  bool // target set precomputed as arena marks (setTargets)
	sols   []solution
	swap   bool         // -s: compare length before crossings
	stats  *SearchStats // optional counters; nil disables
	cancel *cancelCheck // optional cancellation; nil never cancels

	// clipWave is the lowest wave at which an escape was cut short by
	// the window edge (noClip if never): the cut cell was passable, so
	// an unwindowed search would have swept on. solWave is the wave the
	// solutions were found at (-1 on failure). Together they decide
	// exactness — see exact().
	clipWave int
	solWave  int
}

// noClip marks a search whose escapes all stopped naturally (obstacle,
// covered zone, wire) before the window edge.
const noClip = 1 << 30

// exact reports whether the search outcome is provably identical to an
// unwindowed search from the same state. The window is a rectangle, so
// a path that leaves it can only re-enter (and reach a target, which
// always lies inside) after at least two further bends beyond the wave
// where it crossed the edge. Hence:
//
//   - a solution at wave W is exact when no escape was clipped at wave
//     <= W-2: every outside detour would finish at a wave > W, and the
//     wave-W tie-break pool (crossings, then length) is identical to
//     the unwindowed one;
//   - a failed search is exact when no escape was clipped at all: the
//     window never constrained the expansion, so the unwindowed search
//     would have died out identically.
//
// Inexact outcomes are re-run by the caller on a wider window (ending
// at the full plane, which clips nothing), making windowed ≡ unwindowed
// a guarantee of the ladder rather than an empirical accident.
func (s *lineSearch) exact() bool {
	if s.solWave < 0 {
		return s.clipWave == noClip
	}
	return s.clipWave >= s.solWave-1
}

// SearchStats counts the work the expansion engine performs — the
// quantities the §5.8 complexity discussion reasons about ("if the
// number of bends is small then a path will be found in no time
// because the number of possible paths will be small").
type SearchStats struct {
	Searches int `json:"searches"`  // individual connection searches run
	Waves    int `json:"waves"`     // wavefronts processed (one per bend level per search)
	Actives  int `json:"actives"`   // active segments expanded
	Cells    int `json:"cells"`     // escape-line cells swept
	MaxBends int `json:"max_bends"` // deepest wave that produced a solution
	RipUps   int `json:"rip_ups"`   // failed nets the rip-up pass attempted to fix
	Widened  int `json:"widened"`   // search-window widening retries (window.go)
}

func (st *SearchStats) addWave() {
	if st != nil {
		st.Waves++
	}
}

func (st *SearchStats) addActive() {
	if st != nil {
		st.Actives++
	}
}

func (st *SearchStats) addCells(n int) {
	if st != nil {
		st.Cells += n
	}
}

func dirBit(d geom.Dir) uint8 { return 1 << uint(d) }

const allDirBits = 0x0f

// newLineSearch prepares one search epoch. A nil arena gets a private
// one (used by callers without a router, like the dual-front fronts);
// a shared arena is acquired here, expiring the previous search's marks.
func newLineSearch(pl *Plane, net int32, target func(geom.Point) bool, swap bool, win geom.Rect, ar *searchArena) *lineSearch {
	if ar == nil {
		ar = newSearchArena(len(pl.blocked))
	}
	ar.acquire()
	return &lineSearch{
		pl:       pl,
		net:      net,
		ar:       ar,
		win:      win,
		target:   target,
		swap:     swap,
		clipWave: noClip,
		solWave:  -1,
	}
}

// setTargets precomputes the target set as arena marks: the given
// points plus every point of the tree segments. This replaces the
// per-cell target closure of the hot sweep with one stamped-array load.
// It is only valid when the predicate is exactly "a listed point or the
// net's own laid geometry": the tree segments are the wires the net has
// laid, so the mark set equals the cells where the plane reports the
// net's own wires — and since no other net can ever write those values,
// dropping the plane reads keeps speculative read-set validation sound.
func (s *lineSearch) setTargets(pts []geom.Point, tree []Segment) {
	for _, p := range pts {
		if s.pl.InBounds(p) {
			s.ar.markTarget(s.pl.idx(p))
		}
	}
	for _, sg := range tree {
		c := sg.Canon()
		for y := c.A.Y; y <= c.B.Y; y++ {
			for x := c.A.X; x <= c.B.X; x++ {
				s.ar.markTarget(s.pl.idx(geom.Pt(x, y)))
			}
		}
	}
	s.marks = true
}

// terminalActives builds the initial wave for a terminal at p escaping
// in the given directions (one outward direction for subsystem
// terminals, all four for system terminals, per INIT_ACTIVES).
func terminalActives(p geom.Point, dirs []geom.Dir) []*active {
	out := make([]*active, 0, len(dirs))
	for _, d := range dirs {
		a := &active{dir: d, bends: 0}
		if d == geom.Up || d == geom.Down {
			a.index = p.Y
			a.iv = geom.Iv(p.X, p.X)
		} else {
			a.index = p.X
			a.iv = geom.Iv(p.Y, p.Y)
		}
		out = append(out, a)
	}
	return out
}

// run processes waves in bend order until a wave produces solutions or
// the frontier dies out. It returns the winning path as cleaned
// segments ordered target→source.
func (s *lineSearch) run(starts []*active) ([]Segment, bool) {
	if len(starts) == 0 {
		return nil, false
	}
	// Mark the start cells covered so escapes do not re-enter them.
	for _, a := range starts {
		for i := a.iv.Lo; i <= a.iv.Hi; i++ {
			p := a.pt(i, a.index)
			if s.pl.InBounds(p) {
				s.ar.markCovered(s.pl.idx(p), allDirBits)
			}
		}
	}
	wave := starts
	bends := 0
	for len(wave) > 0 {
		if bends >= s.clipWave+2 {
			// Any solution from this wave on would be inexact (see
			// exact): an outside detour through the wave-clipWave clip
			// could tie or beat it. Stop the doomed search now and let
			// the caller's ladder widen instead.
			return nil, false
		}
		if s.cancel.poll() {
			return nil, false // abandoned search: caller checks ctx.Err()
		}
		s.stats.addWave()
		// The two wavefront buffers ping-pong out of the arena: next
		// never aliases wave (starts is the caller's, and consecutive
		// waves use alternating buffers).
		next := s.ar.waves[bends&1][:0]
		for _, a := range wave {
			s.stats.addActive()
			next = s.expand(a, next)
		}
		s.ar.waves[bends&1] = next[:0]
		if len(s.sols) > 0 {
			s.solWave = bends
			if s.stats != nil && bends > s.stats.MaxBends {
				s.stats.MaxBends = bends
			}
			best := s.best()
			return cleanSegments(best.segs), true
		}
		wave = next
		bends++
	}
	return nil, false
}

// best picks the winning solution of the current wave: minimum
// crossings then minimum length, or the reverse under -s. Ties resolve
// to the earliest found, which is deterministic.
func (s *lineSearch) best() solution {
	sort.SliceStable(s.sols, func(x, y int) bool {
		a, b := s.sols[x], s.sols[y]
		if s.swap {
			if a.length != b.length {
				return a.length < b.length
			}
			return a.cross < b.cross
		}
		if a.cross != b.cross {
			return a.cross < b.cross
		}
		return a.length < b.length
	})
	return s.sols[0]
}

// expand implements EXPAND_SEGMENT with a per-cell sweep: every cell of
// the active segment sends an escape line in the expansion direction
// until it is stopped by the window edge, an obstacle, a previously
// searched zone, or the target. The stop profile then yields the
// perpendicular border segments, appended to out as the next wave
// (NEW_ACTIVES).
func (s *lineSearch) expand(a *active, out []*active) []*active {
	step := a.step()
	n := a.iv.Len()
	ar := s.ar
	pl := s.pl
	// advance[k]: how many cells the escape from segment cell k
	// travelled. crossAdv flat-stores, per cell, the advance values at
	// which the escape crossed a foreign wire, in travel order (offsets
	// in crossOff). Passable cells that are crossings cannot join new
	// actives.
	advance := ar.advanceBuf(n)
	crossAdv := ar.crossAdv[:0]
	crossOff := ar.crossOffBuf(n + 1)

	// The escape moves one cell at a time along one axis, so the plane
	// index advances by a constant and every per-cell plane query reads
	// the derived stops byte plus the stamped covered word — two loads —
	// instead of five arrays. The window (a clamped subset of the plane)
	// is the only geometric guard needed.
	vertical := a.dir == geom.Up || a.dir == geom.Down
	didx := step
	across := pl.vNet // horizontal escape: crossing wires are vertical
	alongBit, acrossBit := stopHWire, stopVWire
	if vertical {
		didx = step * pl.w
		across = pl.hNet
		alongBit, acrossBit = stopVWire, stopHWire
	}
	spec := pl.sp != nil && pl.sp.active
	dbit := uint32(dirBit(a.dir))
	stamp := ar.gen << coveredStampBits

	// During one escape only the expansion-axis coordinate changes, so
	// the window test reduces to one equality: the escape exits the
	// window exactly when nj reaches wcut (the first coordinate past the
	// window edge in the travel direction). The cross-axis coordinate is
	// inside the window by construction — actives are emitted from swept
	// (in-window) cells and start cells lie in the window's core bbox.
	var wlo, whi int
	if vertical {
		wlo, whi = s.win.Min.Y, s.win.Max.Y
	} else {
		wlo, whi = s.win.Min.X, s.win.Max.X
	}
	wcut := whi + 1
	if step < 0 {
		wcut = wlo - 1
	}

	covered := ar.covered
	stops := pl.stops
	claim := pl.claim
	gen := ar.gen
	marks := s.marks
	net := s.net

	swept := 0
	for k := 0; k < n; k++ {
		if s.cancel.tick() {
			ar.crossAdv = crossAdv
			s.stats.addCells(swept)
			return out // abandoned sweep; run's wave poll ends the search
		}
		crossOff[k] = len(crossAdv)
		i := a.iv.Lo + k
		c := a.cross
		j := a.index
		idx := pl.idx(a.pt(i, j))
		adv := 0
		for {
			nj := j + step
			// The window edge stops escapes exactly like an obstacle.
			// Targets always lie inside the window (they span the bbox
			// the window was grown from), so no contact is missed. The
			// edge counts as a clip only when the cell would have been
			// passable — a boundary coinciding with a natural stop hides
			// nothing (the accessor-based reads here keep the clip
			// decision in the speculative read set).
			if nj == wcut {
				p := a.pt(i, nj)
				if a.bends < s.clipWave && !s.stopsEscape(p) && s.wireAlong(p, a.dir) == 0 {
					s.clipWave = a.bends
				}
				break
			}
			nidx := idx + didx
			if spec {
				// One read note covers every field of the cell: the
				// journal tracks whole points, so this subsumes the
				// per-accessor notes of the generic path.
				pl.sp.note(int32(nidx))
			}
			cw := covered[nidx]
			if cw>>coveredStampBits != gen {
				cw = stamp
			}
			if uint32(stops[nidx])|(cw&(dbit|targetBit)) != 0 || !marks {
				// Slow path: some condition bit is set (or targets are a
				// closure) — decide hit / stop / crossing explicitly.
				var hit bool
				if marks {
					hit = cw&targetBit != 0
				} else {
					hit = s.target(a.pt(i, nj))
				}
				if hit {
					segs := pathBack(a, i, nj)
					s.sols = append(s.sols, solution{
						a: a, i: i, j: nj,
						cross:  c,
						length: totalLen(segs),
						segs:   segs,
					})
					break
				}
				m := stops[nidx]
				if m&(stopBlocked|stopBend) != 0 {
					break
				}
				if m&stopClaim != 0 && claim[nidx] != net {
					break
				}
				// A wire running along the escape axis can never be
				// shared: nets may cross, not overlap (§5.3). Own-net
				// wires were already handled by the target test above.
				if m&alongBit != 0 {
					break
				}
				if cw&dbit != 0 {
					break
				}
				// Perpendicular foreign wire: cross it (cell is passed
				// but unusable as a turning point).
				if m&acrossBit != 0 && across[nidx] != net {
					c++
					covered[nidx] = cw | dbit
					adv++
					crossAdv = append(crossAdv, adv)
					j = nj
					idx = nidx
					continue
				}
			}
			covered[nidx] = cw | dbit
			adv++
			j = nj
			idx = nidx
		}
		advance[k] = adv
		swept += adv
	}
	crossOff[n] = len(crossAdv)
	ar.crossAdv = crossAdv
	s.stats.addCells(swept)
	return s.newActives(a, advance, crossAdv, crossOff, out)
}

// stopsEscape reports whether the escape line must halt before entering
// p: plane border, blocked point (module, foreign terminal), a bend of
// a routed net, a claimpoint of another net, or a wire running along
// the escape direction (overlap is never allowed, §5.3).
func (s *lineSearch) stopsEscape(p geom.Point) bool {
	if s.pl.Blocked(p) {
		return true
	}
	if s.pl.Bend(p) {
		return true
	}
	if cl := s.pl.Claimpoint(p); cl != 0 && cl != s.net {
		return true
	}
	return false
}

// wireAcross returns the net of a wire perpendicular to the expansion
// direction at p (the crossable kind); wireAlong would be the same-axis
// wire, which stopsEscape treats as blocking through stops in expand.
func (s *lineSearch) wireAcross(p geom.Point, d geom.Dir) int32 {
	if d == geom.Up || d == geom.Down {
		return s.pl.HNet(p) // vertical escape crosses horizontal wires
	}
	return s.pl.VNet(p)
}

func (s *lineSearch) wireAlong(p geom.Point, d geom.Dir) int32 {
	if d == geom.Up || d == geom.Down {
		return s.pl.VNet(p)
	}
	return s.pl.HNet(p)
}

// newActives builds the perpendicular borders of the expansion zone.
// Between neighbouring escape columns with different advances, the
// taller column's extra cells border unexplored territory on the
// shorter side; they form a new active segment expanding toward it,
// with one more bend (NEW_ACTIVES). Border runs are split at crossing
// cells with a single monotone walk over each column's crossing list;
// each run's crossing count is the crossings at or before its first
// cell, uniform over the run because runs never contain a crossing.
func (s *lineSearch) newActives(a *active, advance, crossAdv, crossOff []int, out []*active) []*active {
	step := a.step()
	n := len(advance)
	adv := func(k int) int {
		if k < 0 || k >= n {
			return 0
		}
		return advance[k]
	}

	// decDir/incDir: the direction along the segment axis.
	var decDir, incDir geom.Dir
	if a.dir == geom.Up || a.dir == geom.Down {
		decDir, incDir = geom.Left, geom.Right
	} else {
		decDir, incDir = geom.Down, geom.Up
	}

	flush := func(i, loAdv, hiAdv, cross int, dir geom.Dir) {
		if loAdv > hiAdv {
			return
		}
		na := s.ar.newActive()
		*na = active{
			index:  i,
			iv:     geom.Iv(a.index+step*loAdv, a.index+step*hiAdv),
			dir:    dir,
			bends:  a.bends + 1,
			cross:  cross,
			parent: a,
		}
		out = append(out, na)
	}
	emit := func(k, fromAdv, toAdv int, dir geom.Dir) {
		// Border cells of column k from advance fromAdv+1 .. toAdv.
		i := a.iv.Lo + k
		cj := crossAdv[crossOff[k]:crossOff[k+1]]
		c := a.cross
		for len(cj) > 0 && cj[0] <= fromAdv {
			c++
			cj = cj[1:]
		}
		runLo := fromAdv + 1
		for len(cj) > 0 && cj[0] <= toAdv {
			flush(i, runLo, cj[0]-1, c, dir)
			c++
			runLo = cj[0] + 1
			cj = cj[1:]
		}
		flush(i, runLo, toAdv, c, dir)
	}

	for k := 0; k <= n; k++ {
		left, right := adv(k-1), adv(k)
		if left < right {
			// Column k reaches further: its upper cells border column
			// k-1's side; they expand toward decreasing segment axis.
			emit(k, left, right, decDir)
		} else if left > right {
			emit(k-1, right, left, incDir)
		}
	}
	return out
}

// pathBack reconstructs the route from a contact at (i, j) in a's frame
// back to the source terminal (RECONSTRUCT_PATH): each hop runs along
// the escape to the originator segment, then jumps into the
// originator's frame.
func pathBack(a *active, i, j int) []Segment {
	var segs []Segment
	for {
		from := a.pt(i, j)
		to := a.pt(i, a.index)
		if from != to {
			segs = append(segs, Segment{from, to})
		}
		if a.parent == nil {
			return segs
		}
		i, j = a.index, i
		a = a.parent
	}
}

func totalLen(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Len()
	}
	return n
}

// cleanSegments merges adjacent collinear segments and drops degenerate
// ones, yielding the minimal corner representation of the path.
func cleanSegments(segs []Segment) []Segment {
	var out []Segment
	for _, s := range segs {
		if s.A == s.B {
			continue
		}
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.B == s.A && last.Horizontal() == s.Horizontal() {
				last.B = s.B
				continue
			}
		}
		out = append(out, s)
	}
	return out
}
