package route

import (
	"math/rand"
	"testing"

	"netart/internal/geom"
	"netart/internal/place"
	"netart/internal/workload"
)

// TestDualFrontMatchesSingleFront checks the §5.5.3 dual-front
// initiation against the single-front engine on random planes: identical
// solvability and identical minimum bend counts, with legal contiguous
// paths.
func TestDualFrontMatchesSingleFront(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tested := 0
	var stats SearchStats
	for iter := 0; iter < 200; iter++ {
		pl, a, b := randomPlane(rng)
		if pl == nil {
			continue
		}
		allDirs := []geom.Dir{geom.Left, geom.Right, geom.Up, geom.Down}

		single := newLineSearch(pl, 1, func(q geom.Point) bool { return q == b }, false, pl.Bounds, nil)
		sSegs, sOK := single.run(terminalActives(a, allDirs))

		dSegs, dOK, _ := dualSearch(pl, 1, a, allDirs, b, allDirs, false, pl.Bounds, &stats, nil)

		if sOK != dOK {
			t.Fatalf("iter %d: single ok=%v dual ok=%v (a=%v b=%v)", iter, sOK, dOK, a, b)
		}
		if !sOK {
			continue
		}
		tested++
		sb, db := segBends(sSegs), segBends(dSegs)
		if db != sb {
			t.Fatalf("iter %d: dual %d bends, single %d (a=%v b=%v)\ndual=%v\nsingle=%v",
				iter, db, sb, a, b, dSegs, sSegs)
		}
		checkEndpoints(t, dSegs, a, b)
		checkLegalPath(t, pl, 1, dSegs)
	}
	if tested < 100 {
		t.Fatalf("only %d usable planes", tested)
	}
	if stats.Cells == 0 {
		t.Error("dual-front stats not recorded")
	}
}

func TestDualFrontRouteOption(t *testing.T) {
	// End-to-end with DualFront on: same completion as the default on
	// the §6 workloads.
	for _, mk := range []struct {
		name string
		opts place.Options
	}{
		{"fig61", place.Options{PartSize: 6, BoxSize: 6}},
		{"datapath", place.Options{PartSize: 7, BoxSize: 5}},
	} {
		d := workload.Fig61()
		if mk.name == "datapath" {
			d = workload.Datapath16()
		}
		pr, err := place.Place(d, mk.opts)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRoute(t, pr, Options{Claimpoints: true, DualFront: true})
		if got := res.UnroutedCount(); got != 0 {
			t.Errorf("%s: %d unrouted with dual front", mk.name, got)
		}
		for _, rn := range res.Nets {
			if rn.OK() && rn.Net.Degree() >= 2 {
				assertTreeConnectsTerminals(t, res, rn)
			}
		}
	}
}

func TestDualFrontSearchesLess(t *testing.T) {
	// On a long empty-plane connection the dual front must sweep fewer
	// cells than the single front.
	mkPlane := func() (*Plane, geom.Point, geom.Point) {
		pl := NewPlane(geom.R(0, 0, 120, 120))
		a, b := geom.Pt(5, 60), geom.Pt(115, 61)
		_ = pl.SetTerminal(a, 1)
		_ = pl.SetTerminal(b, 1)
		return pl, a, b
	}
	allDirs := []geom.Dir{geom.Left, geom.Right, geom.Up, geom.Down}

	pl1, a1, b1 := mkPlane()
	var sStats SearchStats
	single := newLineSearch(pl1, 1, func(q geom.Point) bool { return q == b1 }, false, pl1.Bounds, nil)
	single.stats = &sStats
	if _, ok := single.run(terminalActives(a1, allDirs)); !ok {
		t.Fatal("single failed")
	}

	pl2, a2, b2 := mkPlane()
	var dStats SearchStats
	if _, ok, _ := dualSearch(pl2, 1, a2, allDirs, b2, allDirs, false, pl2.Bounds, &dStats, nil); !ok {
		t.Fatal("dual failed")
	}
	if dStats.Cells >= sStats.Cells {
		t.Errorf("dual front swept %d cells, single %d; expected a reduction",
			dStats.Cells, sStats.Cells)
	}
}
