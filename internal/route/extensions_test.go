package route

import (
	"testing"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/place"
)

// TestRetryPassRescuesBlockedNet reproduces the figure 5.14/5.15
// situation: net ab cannot route while claimpoints of later nets block
// its only corridors, but after every net has been attempted and all
// claims are gone, the final retry pass connects it.
func TestRetryPassRescuesBlockedNet(t *testing.T) {
	// Geometry: module M0 with A on its right side between two other
	// terminal pairs whose claims initially pinch A's escape corridor.
	build := func() (*place.Result, map[string]*netlist.Net) {
		s := newScene(t)
		s.mod("M0", 0, 0, 3, 8,
			term("C", netlist.Out, 3, 6),
			term("A", netlist.Out, 3, 4),
			term("E", netlist.Out, 3, 2))
		s.mod("M1", 7, 0, 3, 8,
			term("D", netlist.In, 0, 6),
			term("B", netlist.In, 0, 4),
			term("F", netlist.In, 0, 2))
		nets := map[string]*netlist.Net{
			"ab": s.net("ab", [2]string{"M0", "A"}, [2]string{"M1", "B"}),
			"cd": s.net("cd", [2]string{"M0", "C"}, [2]string{"M1", "D"}),
			"ef": s.net("ef", [2]string{"M0", "E"}, [2]string{"M1", "F"}),
		}
		return s.finish(), nets
	}
	pr, nets := build()
	res := mustRoute(t, pr, Options{Claimpoints: true})
	for name, n := range nets {
		if !res.Net(n).OK() {
			t.Errorf("net %s unrouted despite retry pass", name)
		}
	}
}

func TestFixedBorderPerSide(t *testing.T) {
	// Fix only the top border; the wire may still use the side and
	// bottom margins but never rise above the bounding box.
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("X", 4, -2, 2, 6)
	s.mod("B", 8, 0, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	pr := s.finish()
	var fixed [4]bool
	fixed[geom.Up] = true
	res := mustRoute(t, pr, Options{FixedBorder: fixed})
	rn := res.Net(n)
	if !rn.OK() {
		t.Fatalf("net failed with top border fixed: %v", rn.Failed)
	}
	for _, sg := range rn.Segments {
		for _, p := range sg.Points() {
			if p.Y > pr.Bounds.Max.Y {
				t.Errorf("wire point %v above the fixed top border %d", p, pr.Bounds.Max.Y)
			}
		}
	}
	// The detour must have gone below (the only open side around the
	// wall).
	sawBelow := false
	for _, sg := range rn.Segments {
		for _, p := range sg.Points() {
			if p.Y < 0 {
				sawBelow = true
			}
		}
	}
	if !sawBelow {
		t.Error("expected the detour to use the bottom margin")
	}
}

func TestShortestFirstOrdering(t *testing.T) {
	// With shortest-first, the short net routes before the long one
	// even though the design order says otherwise. Observable effect:
	// the short pair's straight row is taken by the short net, and both
	// still route.
	s := newScene(t)
	// Long pair created FIRST (design order), short pair second.
	s.mod("L1", 0, 10, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("L2", 30, 10, 2, 2, term("A", netlist.In, 0, 1))
	s.mod("S1", 10, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("S2", 16, 0, 2, 2, term("A", netlist.In, 0, 1))
	long := s.net("long", [2]string{"L1", "Y"}, [2]string{"L2", "A"})
	short := s.net("short", [2]string{"S1", "Y"}, [2]string{"S2", "A"})
	res := mustRoute(t, s.finish(), Options{OrderShortestFirst: true})
	if !res.Net(long).OK() || !res.Net(short).OK() {
		t.Fatal("nets failed")
	}
	if got := segBends(res.Net(short).Segments); got != 0 {
		t.Errorf("short net has %d bends; shortest-first should route it straight", got)
	}
	// Reporting order stays design order regardless of routing order.
	if res.Nets[0].Net != long || res.Nets[1].Net != short {
		t.Error("result order does not follow design order")
	}
}

func TestHalfPerimeterEstimate(t *testing.T) {
	s := newScene(t)
	s.mod("A", 0, 0, 2, 2, term("Y", netlist.Out, 2, 1))
	s.mod("B", 10, 6, 2, 2, term("A", netlist.In, 0, 1))
	n := s.net("w", [2]string{"A", "Y"}, [2]string{"B", "A"})
	pr := s.finish()
	rt := &router{pl: pr, opts: Options{}, netID: map[*netlist.Net]int32{}}
	if err := rt.buildPlane(); err != nil {
		t.Fatal(err)
	}
	// Terminals at (2,1) and (10,7): half perimeter = 8 + 6.
	if got := rt.halfPerimeter(n); got != 14 {
		t.Errorf("halfPerimeter = %d, want 14", got)
	}
}

func TestClaimReleasedOnlyForOwnNet(t *testing.T) {
	pl := NewPlane(geom.R(0, 0, 10, 10))
	pl.Claim(geom.Pt(2, 2), 1)
	pl.Claim(geom.Pt(3, 3), 2)
	pl.ReleaseClaims(1)
	if pl.Claimpoint(geom.Pt(2, 2)) != 0 {
		t.Error("own claim not released")
	}
	if pl.Claimpoint(geom.Pt(3, 3)) != 2 {
		t.Error("foreign claim released")
	}
}
